// trace_lint — validates a rebench trace JSONL file.
//
//   $ trace_lint trace.jsonl
//   trace OK: 9 spans, 4 events, 12 metrics
//   $ trace_lint trace.jsonl --store DIR
//   trace OK: ...
//   history OK: 6 record(s) in 3 segment(s)
//
// Exit 0 when the trace satisfies every structural invariant the writer
// guarantees (known schema version, monotone timestamps, parented spans,
// no orphan events, span attribute contracts incl. history.append /
// history.query and the postproc.columnar.* engine spans, which must
// account for their work: rows always, chunks for convert/merge, inputs
// for merge, kernel + skipped_chunks for kernels); exit 1 with one
// message per violation otherwise.
// With --store DIR the store's history chain is also checked: every
// record must cite a campaign manifest that exists under DIR/manifests.
// ctest runs this over the trace the quickstart example produces.
#include <filesystem>
#include <iostream>
#include <string>

#include "core/history/history.hpp"
#include "core/obs/trace_reader.hpp"
#include "core/store/object_store.hpp"
#include "core/util/error.hpp"

namespace {

/// Walks the store's history chain and verifies manifest references.
/// Returns the number of problems found (printed to stderr).
int lintHistory(const std::string& storeDir) {
  namespace fs = std::filesystem;
  rebench::store::ObjectStore store(storeDir);
  rebench::history::HistoryIndex index(store);
  const auto records = index.readAll();
  int problems = 0;
  for (const rebench::history::HistoryRecord& record : records) {
    if (record.manifestHash.empty()) {
      std::cerr << "trace_lint: history record seq " << record.seq
                << " (" << record.test << " @ " << record.target
                << ") cites no manifest\n";
      ++problems;
      continue;
    }
    const fs::path manifest = fs::path(storeDir) / "manifests" /
                              ("campaign-" + record.manifestHash + ".json");
    if (!fs::exists(manifest)) {
      std::cerr << "trace_lint: history record seq " << record.seq
                << " cites missing manifest '" << manifest.string() << "'\n";
      ++problems;
    }
  }
  if (problems == 0) {
    std::cout << "history OK: " << records.size() << " record(s) in "
              << index.segmentCount() << " segment(s)\n";
  }
  return problems;
}

}  // namespace

int main(int argc, char** argv) {
  std::string tracePath;
  std::string storeDir;
  bool usageError = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--store" && i + 1 < argc) {
      storeDir = argv[++i];
    } else if (tracePath.empty()) {
      tracePath = arg;
    } else {
      usageError = true;
      break;
    }
  }
  if (tracePath.empty() || usageError) {
    std::cerr << "usage: trace_lint <trace.jsonl> [--store DIR]\n";
    return 2;
  }
  try {
    const rebench::obs::TraceFile trace =
        rebench::obs::readTraceFile(tracePath);
    const std::vector<std::string> issues = rebench::obs::lintTrace(trace);
    for (const std::string& issue : issues) {
      std::cerr << "trace_lint: " << issue << "\n";
    }
    int problems = static_cast<int>(issues.size());
    if (problems == 0) {
      const std::size_t metrics = trace.counters.size() +
                                  trace.gauges.size() +
                                  trace.histograms.size();
      std::cout << "trace OK: " << trace.spans.size() << " spans, "
                << trace.events.size() << " events, " << metrics
                << " metrics\n";
    }
    if (!storeDir.empty()) problems += lintHistory(storeDir);
    return problems == 0 ? 0 : 1;
  } catch (const rebench::Error& e) {
    std::cerr << "trace_lint: " << e.what() << "\n";
    return 1;
  }
}
