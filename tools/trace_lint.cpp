// trace_lint — validates a rebench trace JSONL file.
//
//   $ trace_lint trace.jsonl
//   trace OK: 9 spans, 4 events, 12 metrics
//
// Exit 0 when the trace satisfies every structural invariant the writer
// guarantees (known schema version, monotone timestamps, parented spans,
// no orphan events); exit 1 with one message per violation otherwise.
// ctest runs this over the trace the quickstart example produces.
#include <iostream>

#include "core/obs/trace_reader.hpp"
#include "core/util/error.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: trace_lint <trace.jsonl>\n";
    return 2;
  }
  try {
    const rebench::obs::TraceFile trace =
        rebench::obs::readTraceFile(argv[1]);
    const std::vector<std::string> issues = rebench::obs::lintTrace(trace);
    if (!issues.empty()) {
      for (const std::string& issue : issues) {
        std::cerr << "trace_lint: " << issue << "\n";
      }
      return 1;
    }
    const std::size_t metrics = trace.counters.size() +
                                trace.gauges.size() +
                                trace.histograms.size();
    std::cout << "trace OK: " << trace.spans.size() << " spans, "
              << trace.events.size() << " events, " << metrics
              << " metrics\n";
    return 0;
  } catch (const rebench::Error& e) {
    std::cerr << "trace_lint: " << e.what() << "\n";
    return 1;
  }
}
