// Calibration utility (not a deliverable bench): finds the per-system
// (platformEfficiency, launchOverheadSeconds) pair that reproduces the
// paper's Table 4 l0/l2 rates under the HPGMG execution model.
#include <cstdio>
#include "hpgmg/driver.hpp"
#include "sim/machine.hpp"

using namespace rebench;

int main() {
  struct Target { const char* system; const char* machine; double l0, l1, l2; };
  const Target targets[] = {
      {"archer2", "rome-7742", 95.36, 83.43, 62.18},
      {"cosma8", "rome-7h12", 81.67, 72.96, 75.09},
      {"csd3", "clx-8276", 126.10, 94.39, 49.40},
      {"isambard-macs", "clx-6230", 30.59, 25.55, 17.55},
  };
  hpgmg::HpgmgConfig config;  // paper defaults: 7 8, 8 ranks
  for (const Target& t : targets) {
    const MachineModel& m = builtinMachines().get(t.machine);
    double bestP = 0.1, bestO = 3e-5, bestErr = 1e30;
    for (double p = 0.02; p <= 0.9; p *= 1.05) {
      for (double o = 1e-6; o <= 3e-3; o *= 1.15) {
        const auto r = hpgmg::runModeled(config, m, p, o, 32);
        const double e0 = r.foms[0].mdofPerSec / t.l0 - 1.0;
        const double e1 = r.foms[1].mdofPerSec / t.l1 - 1.0;
        const double e2 = r.foms[2].mdofPerSec / t.l2 - 1.0;
        const double err = e0*e0 + e1*e1 + e2*e2;
        if (err < bestErr) { bestErr = err; bestP = p; bestO = o; }
      }
    }
    const auto r = hpgmg::runModeled(config, m, bestP, bestO, 32);
    std::printf("%s: peff=%.4f oh=%.2e -> l0=%.2f l1=%.2f l2=%.2f (err %.4f)\n",
                t.system, bestP, bestO, r.foms[0].mdofPerSec,
                r.foms[1].mdofPerSec, r.foms[2].mdofPerSec, bestErr);
  }
  return 0;
}
