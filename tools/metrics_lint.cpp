// metrics_lint — validates an OpenMetrics text exposition file.
//
//   $ metrics_lint metrics.om
//   metrics OK: 12 families, 48 samples
//
// Exit 0 when the file satisfies the invariants rebench's exporter
// guarantees (and the OpenMetrics format requires); exit 1 with one
// message per violation otherwise:
//
//   * every non-comment line parses as `name{labels} value` with a
//     finite decimal value,
//   * every sample belongs to the most recent `# TYPE` family: counters
//     expose exactly `<family>_total`, gauges expose `<family>` (plus
//     the derived `<family>_max` sibling the exporter emits), histograms
//     expose `<family>_bucket` / `<family>_sum` / `<family>_count`,
//   * labels inside a sample are sorted by name and properly quoted,
//   * a family is declared by at most one `# TYPE` line,
//   * within a run of equal-type declarations, family names are sorted
//     lexicographically (derived gauge siblings `<base>_max` and
//     `<base>_quantile` are anchored to their base family and skipped),
//   * `_total` appears on counter samples and nowhere else,
//   * the final line is the single `# EOF` marker.
//
// ctest runs this over the --metrics-out exports of run, suite and
// serve, and over the live /metrics endpoint body.
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

namespace {

struct Lint {
  std::vector<std::string> issues;
  int families = 0;
  int samples = 0;

  void problem(std::size_t lineNo, const std::string& message) {
    issues.push_back("line " + std::to_string(lineNo) + ": " + message);
  }
};

bool validMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == ':')) {
      return false;
    }
  }
  return !std::isdigit(static_cast<unsigned char>(name[0]));
}

/// Derived gauge siblings the exporter anchors to a base family (`foo`'s
/// running maximum `foo_max`, a histogram's `foo_quantile` estimates).
/// They interleave with their base's section, so the family-order check
/// ignores them entirely.
bool isDerivedSibling(const std::string& family) {
  for (const std::string suffix : {"_max", "_quantile"}) {
    if (family.size() > suffix.size() &&
        family.compare(family.size() - suffix.size(), suffix.size(),
                       suffix) == 0) {
      return true;
    }
  }
  return false;
}

/// Parses `{name="value",...}`; returns false on malformed syntax.
bool parseLabels(const std::string& text, std::vector<std::string>* names) {
  std::size_t i = 0;
  while (i < text.size()) {
    const std::size_t eq = text.find('=', i);
    if (eq == std::string::npos) return false;
    const std::string name = text.substr(i, eq - i);
    if (!validMetricName(name)) return false;
    names->push_back(name);
    if (eq + 1 >= text.size() || text[eq + 1] != '"') return false;
    std::size_t j = eq + 2;
    while (j < text.size() && text[j] != '"') {
      if (text[j] == '\\') ++j;  // escaped char inside the value
      ++j;
    }
    if (j >= text.size()) return false;  // unterminated value
    i = j + 1;
    if (i < text.size()) {
      if (text[i] != ',') return false;
      ++i;
      if (i >= text.size()) return false;  // trailing comma
    }
  }
  return true;
}

void lintFile(std::istream& in, Lint* lint) {
  std::string line;
  std::size_t lineNo = 0;
  std::string currentFamily;
  std::string currentType;
  std::string previousSection;   // base family of the previous TYPE line
  std::string previousTypeKind;  // its type, for per-type-run ordering
  std::set<std::string> declared;
  bool sawEof = false;

  while (std::getline(in, line)) {
    ++lineNo;
    if (sawEof) {
      lint->problem(lineNo, "content after '# EOF'");
      sawEof = false;  // report once, keep linting
    }
    if (line.empty()) {
      lint->problem(lineNo, "empty line");
      continue;
    }
    if (line == "# EOF") {
      sawEof = true;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string rest = line.substr(7);
      const std::size_t space = rest.find(' ');
      if (space == std::string::npos) {
        lint->problem(lineNo, "malformed TYPE line");
        continue;
      }
      const std::string family = rest.substr(0, space);
      const std::string type = rest.substr(space + 1);
      if (!validMetricName(family)) {
        lint->problem(lineNo, "invalid family name '" + family + "'");
      }
      if (type != "counter" && type != "gauge" && type != "histogram") {
        lint->problem(lineNo, "unknown metric type '" + type + "'");
      }
      if (!declared.insert(family).second) {
        lint->problem(lineNo,
                      "family '" + family + "' declared more than once");
      }
      // Families are emitted in lexicographic order inside each run of
      // equal-type declarations.  Derived gauge siblings don't take part:
      // they interleave with their base's section by design.  A type
      // change resets the run — the exporter emits counters, gauges,
      // histograms, then the caller-supplied extras section, and the two
      // gauge sections each sort independently.
      if (!isDerivedSibling(family)) {
        if (type == previousTypeKind && family < previousSection) {
          lint->problem(lineNo, "family '" + family +
                                    "' out of order (after '" +
                                    previousSection + "')");
        }
        previousSection = family;
        previousTypeKind = type;
      }
      currentFamily = family;
      currentType = type;
      ++lint->families;
      continue;
    }
    if (line[0] == '#') {
      lint->problem(lineNo, "unexpected comment '" + line + "'");
      continue;
    }

    // Sample line: name[{labels}] value
    const std::size_t brace = line.find('{');
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) {
      lint->problem(lineNo, "sample without a value");
      continue;
    }
    std::string name;
    std::vector<std::string> labelNames;
    if (brace != std::string::npos && brace < space) {
      const std::size_t close = line.rfind('}', space);
      if (close == std::string::npos || close < brace) {
        lint->problem(lineNo, "unbalanced label braces");
        continue;
      }
      name = line.substr(0, brace);
      const std::string labels = line.substr(brace + 1, close - brace - 1);
      if (!parseLabels(labels, &labelNames)) {
        lint->problem(lineNo, "malformed labels '{" + labels + "}'");
      }
    } else {
      name = line.substr(0, space);
    }
    if (!validMetricName(name)) {
      lint->problem(lineNo, "invalid sample name '" + name + "'");
      continue;
    }
    if (!std::is_sorted(labelNames.begin(), labelNames.end())) {
      lint->problem(lineNo, "labels of '" + name + "' not sorted by name");
    }
    const std::string valueText = line.substr(space + 1);
    char* end = nullptr;
    const double value = std::strtod(valueText.c_str(), &end);
    if (valueText.empty() || end == nullptr || *end != '\0' ||
        !std::isfinite(value)) {
      lint->problem(lineNo, "non-finite or unparseable value '" + valueText +
                                "' for '" + name + "'");
    }
    ++lint->samples;

    if (currentFamily.empty()) {
      lint->problem(lineNo, "sample '" + name + "' before any TYPE line");
      continue;
    }
    // The sample must expose the declared family under the suffix rules
    // of its type.
    bool belongs = false;
    if (currentType == "counter") {
      belongs = name == currentFamily + "_total";
      if (!belongs && name == currentFamily) {
        lint->problem(lineNo, "counter sample '" + name +
                                  "' missing the '_total' suffix");
        continue;
      }
    } else if (currentType == "gauge") {
      belongs = name == currentFamily;
    } else if (currentType == "histogram") {
      belongs = name == currentFamily + "_bucket" ||
                name == currentFamily + "_sum" ||
                name == currentFamily + "_count";
    }
    if (!belongs) {
      lint->problem(lineNo, "sample '" + name +
                                "' does not belong to '# TYPE " +
                                currentFamily + " " + currentType + "'");
      continue;
    }
    if (currentType != "counter" &&
        name.size() > 6 &&
        name.compare(name.size() - 6, 6, "_total") == 0) {
      lint->problem(lineNo,
                    "non-counter sample '" + name + "' uses '_total'");
    }
  }

  if (!sawEof) {
    lint->issues.push_back("missing '# EOF' terminator on the last line");
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: metrics_lint <metrics.om>\n";
    return 2;
  }
  std::ifstream in(argv[1], std::ios::binary);
  if (!in) {
    std::cerr << "metrics_lint: cannot read '" << argv[1] << "'\n";
    return 1;
  }
  Lint lint;
  lintFile(in, &lint);
  for (const std::string& issue : lint.issues) {
    std::cerr << "metrics_lint: " << issue << "\n";
  }
  if (!lint.issues.empty()) return 1;
  std::cout << "metrics OK: " << lint.families << " families, "
            << lint.samples << " samples\n";
  return 0;
}
