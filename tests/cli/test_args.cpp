#include "cli/args.hpp"

#include <gtest/gtest.h>

#include "core/util/error.hpp"

namespace rebench::cli {
namespace {

Args parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "rebench");
  return Args::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(CliArgs, SubcommandAndPositionals) {
  const Args args = parse({"spec", "hpgmg%gcc"});
  EXPECT_EQ(args.subcommand(), "spec");
  ASSERT_EQ(args.positionals().size(), 1u);
  EXPECT_EQ(args.positionals()[0], "hpgmg%gcc");
}

TEST(CliArgs, EmptyCommandLine) {
  const Args args = parse({});
  EXPECT_TRUE(args.subcommand().empty());
}

TEST(CliArgs, OptionWithSeparateValue) {
  const Args args = parse({"run", "--system", "archer2"});
  EXPECT_EQ(args.optionOr("system", "local"), "archer2");
}

TEST(CliArgs, OptionWithEqualsValue) {
  const Args args = parse({"run", "--system=noctua2"});
  EXPECT_EQ(args.optionOr("system", "local"), "noctua2");
}

TEST(CliArgs, MissingOptionFallsBack) {
  const Args args = parse({"run"});
  EXPECT_FALSE(args.option("system").has_value());
  EXPECT_EQ(args.optionOr("system", "local"), "local");
}

TEST(CliArgs, FlagWithoutValue) {
  const Args args = parse({"run", "--verbose", "--system", "csd3"});
  EXPECT_TRUE(args.hasFlag("verbose"));
  EXPECT_FALSE(args.hasFlag("quiet"));
  EXPECT_EQ(args.optionOr("system", ""), "csd3");
}

TEST(CliArgs, TrailingOptionIsFlag) {
  const Args args = parse({"history", "--detect"});
  EXPECT_TRUE(args.hasFlag("detect"));
}

TEST(CliArgs, SettingsCollectInOrder) {
  const Args args =
      parse({"run", "-S", "model=omp", "-S", "array_size=1024"});
  ASSERT_EQ(args.settings().size(), 2u);
  EXPECT_EQ(args.settings()[0].first, "model");
  EXPECT_EQ(args.settings()[0].second, "omp");
  EXPECT_EQ(args.settings()[1].first, "array_size");
  EXPECT_EQ(args.settings()[1].second, "1024");
}

TEST(CliArgs, PaperStyleInvocation) {
  // Mirrors the appendix: -S spack_spec='babelstream%gcc@9.2.0 +omp'
  const Args args = parse({"run", "--benchmark", "babelstream",
                           "--system=isambard-macs:cascadelake", "-S",
                           "model=omp", "--repeats", "3"});
  EXPECT_EQ(args.optionOr("benchmark", ""), "babelstream");
  EXPECT_EQ(args.optionOr("system", ""), "isambard-macs:cascadelake");
  EXPECT_EQ(args.intOptionOr("repeats", 1), 3);
}

TEST(CliArgs, IntOptionValidation) {
  const Args args = parse({"run", "--repeats", "banana"});
  EXPECT_THROW(args.intOptionOr("repeats", 1), ParseError);
  EXPECT_EQ(parse({"run"}).intOptionOr("repeats", 7), 7);
}

TEST(CliArgs, MalformedSettings) {
  EXPECT_THROW(parse({"run", "-S"}), ParseError);
  EXPECT_THROW(parse({"run", "-S", "noequals"}), ParseError);
  EXPECT_THROW(parse({"run", "--"}), ParseError);
}

TEST(CliArgs, NegativeNumbersAreNotOptionValues) {
  // '--key' followed by '-1' treats --key as a flag (values must not
  // start with '-'); this is documented CLI behaviour.
  const Args args = parse({"run", "--window", "-S", "a=b"});
  EXPECT_TRUE(args.hasFlag("window"));
  EXPECT_EQ(args.settings().size(), 1u);
}

}  // namespace
}  // namespace rebench::cli
