#include "osu/osu.hpp"

#include <gtest/gtest.h>

#include "core/framework/pipeline.hpp"
#include "core/util/error.hpp"
#include "core/util/strings.hpp"
#include "osu/testcase.hpp"

namespace rebench::osu {
namespace {

OsuConfig smallConfig(OsuBenchmark benchmark) {
  OsuConfig config;
  config.benchmark = benchmark;
  config.minBytes = 8;
  config.maxBytes = 1 << 14;
  config.iterations = 20;
  config.numRanks = 4;
  return config;
}

TEST(OsuNative, LatencyProducesPositiveMonotoneSizes) {
  const OsuResult result = runNative(smallConfig(OsuBenchmark::kLatency));
  ASSERT_GE(result.points.size(), 3u);
  for (const SizePoint& point : result.points) {
    EXPECT_GT(point.value, 0.0) << point.messageBytes;
  }
  // Message sizes strictly increase and end at the requested maximum.
  for (std::size_t i = 1; i < result.points.size(); ++i) {
    EXPECT_GT(result.points[i].messageBytes,
              result.points[i - 1].messageBytes);
  }
  EXPECT_EQ(result.points.back().messageBytes, std::size_t{1} << 14);
}

TEST(OsuNative, BandwidthPositive) {
  const OsuResult result = runNative(smallConfig(OsuBenchmark::kBandwidth));
  for (const SizePoint& point : result.points) {
    EXPECT_GT(point.value, 0.0);
  }
  // Large messages should move more MB/s than tiny ones in-process.
  EXPECT_GT(result.points.back().value, result.points.front().value);
}

TEST(OsuNative, AllreduceRunsAcrossRanks) {
  const OsuResult result = runNative(smallConfig(OsuBenchmark::kAllreduce));
  EXPECT_EQ(result.numRanks, 4);
  for (const SizePoint& point : result.points) {
    EXPECT_GT(point.value, 0.0);
  }
}

TEST(OsuResultAccess, AtFindsAndThrows) {
  OsuResult result;
  result.points = {{8, 1.5}, {32, 2.0}};
  EXPECT_DOUBLE_EQ(result.at(8), 1.5);
  EXPECT_THROW(result.at(64), NotFoundError);
}

TEST(OsuModeled, LatencyMatchesNetworkModel) {
  NetworkModel network{2.0e-6, 10.0};
  OsuConfig config = smallConfig(OsuBenchmark::kLatency);
  const OsuResult result = runModeled(config, network, "test");
  // 8-byte one-way latency ~ 2 us (+2% noise).
  EXPECT_NEAR(result.at(8), 2.0, 0.15);
  // 16 KiB adds 16384/10e9 s = 1.64 us.
  EXPECT_NEAR(result.at(1 << 14), 2.0 + 1.64, 0.3);
}

TEST(OsuModeled, BandwidthApproachesLinkRate) {
  NetworkModel network{1.5e-6, 12.5};
  OsuConfig config;
  config.benchmark = OsuBenchmark::kBandwidth;
  config.maxBytes = 1 << 20;
  const OsuResult result = runModeled(config, network, "bw");
  // 1 MiB transfers should run near 12.5 GB/s = 12500 MB/s.
  EXPECT_NEAR(result.at(1 << 20), 12500.0, 800.0);
  // 8-byte messages are latency-bound, far below the link rate.
  EXPECT_LT(result.at(8), 1000.0);
}

TEST(OsuModeled, AllreduceScalesLogarithmically) {
  NetworkModel network{2.0e-6, 12.5};
  OsuConfig config = smallConfig(OsuBenchmark::kAllreduce);
  config.numRanks = 8;
  const double eight = runModeled(config, network, "a").at(8);
  config.numRanks = 64;
  const double sixtyFour = runModeled(config, network, "a").at(8);
  // log2(64)/log2(8) = 2x, not 8x.
  EXPECT_NEAR(sixtyFour / eight, 2.0, 0.15);
}

TEST(OsuModeled, Deterministic) {
  NetworkModel network{1.5e-6, 12.5};
  const OsuConfig config = smallConfig(OsuBenchmark::kLatency);
  EXPECT_DOUBLE_EQ(runModeled(config, network, "k").at(8),
                   runModeled(config, network, "k").at(8));
}

TEST(OsuOutput, FormatMatchesOsuShape) {
  NetworkModel network{1.5e-6, 12.5};
  const OsuResult result =
      runModeled(smallConfig(OsuBenchmark::kLatency), network, "fmt");
  const std::string out = formatOutput(result);
  EXPECT_TRUE(str::contains(out, "# OSU MPI Latency Test"));
  EXPECT_TRUE(str::contains(out, "# complete"));
  EXPECT_TRUE(str::contains(out, "\n8 "));
}

TEST(OsuPipeline, RunsOnModeledSystems) {
  const SystemRegistry systems = builtinSystems();
  const PackageRepository repo = builtinRepository();
  Pipeline pipeline(systems, repo);
  OsuTestOptions options;
  options.benchmark = OsuBenchmark::kLatency;
  const TestRunResult result =
      pipeline.runOne(makeOsuTest(options), "archer2");
  EXPECT_TRUE(result.passed) << result.failure.stage << " "
                             << result.failure.detail;
  // Slingshot-class latency at 8 bytes: a couple of microseconds.
  EXPECT_GT(result.foms.at("small"), 0.5);
  EXPECT_LT(result.foms.at("small"), 10.0);
}

TEST(OsuPipeline, InterconnectsDifferentiateSystems) {
  const SystemRegistry systems = builtinSystems();
  const PackageRepository repo = builtinRepository();
  Pipeline pipeline(systems, repo);
  OsuTestOptions options;
  options.benchmark = OsuBenchmark::kBandwidth;
  const RegressionTest test = makeOsuTest(options);
  const double cosma =
      pipeline.runOne(test, "cosma8").foms.at("large");     // HDR200
  const double isambard =
      pipeline.runOne(test, "isambard:xci").foms.at("large");  // Aries
  EXPECT_GT(cosma, 1.5 * isambard);
}

TEST(OsuPipeline, NativeRunOnLocal) {
  const SystemRegistry systems = builtinSystems();
  const PackageRepository repo = builtinRepository();
  Pipeline pipeline(systems, repo);
  OsuTestOptions options;
  options.benchmark = OsuBenchmark::kLatency;
  options.nativeIterations = 10;
  const TestRunResult result =
      pipeline.runOne(makeOsuTest(options), "local");
  EXPECT_TRUE(result.passed) << result.failure.detail;
  EXPECT_GT(result.foms.at("small"), 0.0);
}

}  // namespace
}  // namespace rebench::osu
