#include "hpcg/mg_preconditioner.hpp"

#include <gtest/gtest.h>

#include "core/util/rng.hpp"
#include "hpcg/cg.hpp"

namespace rebench::hpcg {
namespace {

Geometry cube(int n) {
  Geometry g;
  g.nx = g.ny = g.nzLocal = g.nzGlobal = n;
  return g;
}

std::vector<double> onesRhs(const Operator& A) {
  std::vector<double> ones(A.n(), 1.0);
  std::vector<double> b(A.n());
  A.apply(ones, HaloView{}, b);
  return b;
}

TEST(MgPreconditioner, HierarchyDepthFollowsGeometry) {
  // 32 -> 16 -> 8 -> 4 (HPCG's own default depth of 4).
  EXPECT_EQ(MgPreconditioner(Variant::kCsr, cube(32)).numLevels(), 4);
  // maxLevels caps the depth.
  EXPECT_EQ(MgPreconditioner(Variant::kCsr, cube(32), 2).numLevels(), 2);
  // Odd sizes cannot coarsen at all.
  EXPECT_EQ(MgPreconditioner(Variant::kCsr, cube(9)).numLevels(), 1);
}

TEST(MgPreconditioner, ApplyReducesResidual) {
  const Geometry g = cube(16);
  for (Variant v : {Variant::kCsr, Variant::kMatrixFree, Variant::kLfric}) {
    SCOPED_TRACE(std::string(variantName(v)));
    const auto A = makeOperator(v, g);
    MgPreconditioner mg(v, g);
    ASSERT_GE(mg.numLevels(), 2);

    Rng rng(3);
    std::vector<double> r(A->n());
    for (double& value : r) value = rng.uniform(-1.0, 1.0);
    std::vector<double> z(A->n());
    mg.apply(*A, r, z);

    std::vector<double> Az(A->n());
    A->apply(z, HaloView{}, Az);
    double before = 0.0, after = 0.0;
    for (std::size_t i = 0; i < A->n(); ++i) {
      before += r[i] * r[i];
      after += (r[i] - Az[i]) * (r[i] - Az[i]);
    }
    EXPECT_LT(after, 0.6 * before);
  }
}

TEST(MgPreconditioner, IsSymmetricEnoughForCg) {
  // <u, M v> == <v, M u> within floating tolerance; CG requires this.
  const Geometry g = cube(16);
  const auto A = makeOperator(Variant::kCsr, g);
  MgPreconditioner mg(Variant::kCsr, g);
  Rng rng(5);
  std::vector<double> u(A->n()), v(A->n()), Mu(A->n()), Mv(A->n());
  for (std::size_t i = 0; i < A->n(); ++i) {
    u[i] = rng.uniform(-1.0, 1.0);
    v[i] = rng.uniform(-1.0, 1.0);
  }
  mg.apply(*A, u, Mu);
  mg.apply(*A, v, Mv);
  double uMv = 0.0, vMu = 0.0;
  for (std::size_t i = 0; i < A->n(); ++i) {
    uMv += u[i] * Mv[i];
    vMu += v[i] * Mu[i];
  }
  EXPECT_NEAR(uMv, vMu, 1e-9 * std::abs(uMv));
}

TEST(MgPreconditioner, CountersAccumulate) {
  const Geometry g = cube(16);
  const auto A = makeOperator(Variant::kCsr, g);
  MgPreconditioner mg(Variant::kCsr, g);
  std::vector<double> r(A->n(), 1.0), z(A->n());
  MgCounters counters;
  mg.apply(*A, r, z, &counters);
  EXPECT_GT(counters.flops, 0.0);
  EXPECT_GT(counters.bytes, 0.0);
  // Two smooths per non-coarsest level + one on the coarsest.
  EXPECT_EQ(counters.smootherSweeps, 2 * (mg.numLevels() - 1) + 1);
  EXPECT_GT(mg.applyBytes(), 0.0);
  EXPECT_GT(mg.applyFlops(), 0.0);
}

TEST(MgCg, MultigridBeatsSingleLevelSymgs) {
  // The point of HPCG's MG: fewer CG iterations to a fixed tolerance.
  const Geometry g = cube(32);
  const auto A = makeOperator(Variant::kCsr, g);
  const std::vector<double> b = onesRhs(*A);

  CgOptions symgs;
  symgs.maxIterations = 200;
  symgs.tolerance = 1e-9;
  CgOptions mg = symgs;
  mg.useMultigrid = true;

  const CgResult symgsResult = conjugateGradient(*A, b, symgs);
  const CgResult mgResult = conjugateGradient(*A, b, mg);
  EXPECT_TRUE(symgsResult.converged);
  EXPECT_TRUE(mgResult.converged);
  EXPECT_LT(mgResult.counters.iterations, symgsResult.counters.iterations);
}

TEST(MgCg, SolutionStillExact) {
  const Geometry g = cube(16);
  const auto A = makeOperator(Variant::kMatrixFree, g);
  const std::vector<double> b = onesRhs(*A);
  CgOptions options;
  options.maxIterations = 100;
  options.tolerance = 1e-10;
  options.useMultigrid = true;
  const CgResult result = conjugateGradient(*A, b, options);
  EXPECT_TRUE(result.converged);
  double err = 0.0;
  for (double xi : result.x) err = std::max(err, std::abs(xi - 1.0));
  EXPECT_LT(err, 1e-7);
}

TEST(MgCg, FallsBackToSymgsOnSmallGrids) {
  // 10^3 cannot coarsen (odd halves); useMultigrid must not break CG.
  const Geometry g = cube(10);
  const auto A = makeOperator(Variant::kCsr, g);
  const std::vector<double> b = onesRhs(*A);
  CgOptions options;
  options.maxIterations = 60;
  options.tolerance = 1e-9;
  options.useMultigrid = true;
  EXPECT_TRUE(conjugateGradient(*A, b, options).converged);
}

TEST(MgCg, DistributedMultigridConverges) {
  // Rank-local MG smoothing composes with distributed CG.
  minimpi::run(2, [](minimpi::Comm& comm) {
    const Geometry g = Geometry::slab(16, comm.rank(), comm.size());
    const auto A = makeOperator(Variant::kCsr, g);
    HaloExchanger halos(g, &comm);
    std::vector<double> ones(A->n(), 1.0), b(A->n());
    const HaloView halo = halos.exchange(ones, 70);
    A->apply(ones, halo, b);

    CgOptions options;
    options.maxIterations = 100;
    options.tolerance = 1e-9;
    options.useMultigrid = true;
    const CgResult result = conjugateGradient(*A, b, options, &comm);
    EXPECT_TRUE(result.converged);
    double err = 0.0;
    for (double xi : result.x) err = std::max(err, std::abs(xi - 1.0));
    EXPECT_LT(err, 1e-6);
  });
}

}  // namespace
}  // namespace rebench::hpcg
