#include "hpcg/driver.hpp"

#include <gtest/gtest.h>

#include <regex>

#include "core/util/error.hpp"
#include "core/util/strings.hpp"

namespace rebench::hpcg {
namespace {

const MachineModel& clx() { return builtinMachines().get("clx-6230"); }
const MachineModel& rome() { return builtinMachines().get("rome-7742"); }

TEST(HpcgNative, SingleRankRunsAndValidates) {
  HpcgConfig config;
  config.variant = Variant::kCsr;
  config.gridSize = 16;
  config.numRanks = 1;
  config.iterations = 30;
  const HpcgResult result = runNative(config);
  EXPECT_TRUE(result.validated);
  EXPECT_GT(result.gflops, 0.0);
  EXPECT_LT(result.solutionError, 0.5);
  EXPECT_EQ(result.iterations, 30);
}

TEST(HpcgNative, TwoRankRunValidates) {
  HpcgConfig config;
  config.variant = Variant::kMatrixFree;
  config.gridSize = 12;
  config.numRanks = 2;
  config.iterations = 30;
  const HpcgResult result = runNative(config);
  EXPECT_TRUE(result.validated);
}

TEST(HpcgModeled, Table2ShapeOnCascadeLake) {
  HpcgConfig config;
  config.gridSize = 104;
  config.numRanks = 40;  // Table 2: 40 MPI ranks on CLX
  config.iterations = 50;

  std::map<Variant, double> gflops;
  for (Variant v : {Variant::kCsr, Variant::kCsrOpt, Variant::kMatrixFree,
                    Variant::kLfric}) {
    config.variant = v;
    gflops[v] = runModeled(config, clx(), /*calibrationGrid=*/16).gflops;
  }
  // Paper ordering on Cascade Lake: matrix-free > intel-avx2 > csr > lfric.
  EXPECT_GT(gflops[Variant::kMatrixFree], gflops[Variant::kCsrOpt]);
  EXPECT_GT(gflops[Variant::kCsrOpt], gflops[Variant::kCsr]);
  EXPECT_GT(gflops[Variant::kCsr], gflops[Variant::kLfric]);
}

TEST(HpcgModeled, Table2ShapeOnRome) {
  HpcgConfig config;
  config.gridSize = 104;
  config.numRanks = 128;  // Table 2: 128 MPI ranks on Rome
  config.iterations = 50;

  config.variant = Variant::kCsr;
  const double csr = runModeled(config, rome(), 16).gflops;
  config.variant = Variant::kMatrixFree;
  const double mf = runModeled(config, rome(), 16).gflops;
  config.variant = Variant::kLfric;
  const double lfric = runModeled(config, rome(), 16).gflops;
  // Paper ordering on Rome: matrix-free > lfric > csr.
  EXPECT_GT(mf, lfric);
  EXPECT_GT(lfric, csr);
}

TEST(HpcgModeled, VendorVariantUnavailableOnRome) {
  // Table 2: Intel-avx2 is "N/A" on AMD Rome.
  EXPECT_FALSE(variantAvailable(Variant::kCsrOpt, rome()));
  EXPECT_TRUE(variantAvailable(Variant::kCsrOpt, clx()));
  HpcgConfig config;
  config.variant = Variant::kCsrOpt;
  EXPECT_THROW(runModeled(config, rome()), NotFoundError);
}

TEST(HpcgModeled, Equation1RatiosInPaperBallpark) {
  HpcgConfig config;
  config.gridSize = 104;
  config.numRanks = 40;
  config.iterations = 50;

  config.variant = Variant::kCsr;
  const double orig = runModeled(config, clx(), 16).gflops;
  config.variant = Variant::kCsrOpt;
  const double intel = runModeled(config, clx(), 16).gflops;
  config.variant = Variant::kMatrixFree;
  const double mf = runModeled(config, clx(), 16).gflops;

  const double eI = intel / orig;  // paper: 1.625
  const double eA = mf / orig;     // paper: 2.125
  EXPECT_GT(eI, 1.2);
  EXPECT_LT(eI, 2.2);
  EXPECT_GT(eA, 1.5);
  EXPECT_LT(eA, 3.5);
  // The paper's headline: the algorithmic gain exceeds the
  // implementation gain.
  EXPECT_GT(eA, eI);
}

TEST(HpcgModeled, RomeAlgorithmicGainLargerThanCascadeLake) {
  // Paper: E_A = matrix-free/csr = 2.125 on CLX but 3.168 on Rome.
  HpcgConfig config;
  config.gridSize = 104;
  config.iterations = 50;

  config.numRanks = 40;
  config.variant = Variant::kCsr;
  const double clxCsr = runModeled(config, clx(), 16).gflops;
  config.variant = Variant::kMatrixFree;
  const double clxMf = runModeled(config, clx(), 16).gflops;

  config.numRanks = 128;
  config.variant = Variant::kCsr;
  const double romeCsr = runModeled(config, rome(), 16).gflops;
  config.variant = Variant::kMatrixFree;
  const double romeMf = runModeled(config, rome(), 16).gflops;

  EXPECT_GT(romeMf / romeCsr, clxMf / clxCsr);
}

TEST(HpcgFormatOutput, RegexableAndComplete) {
  HpcgConfig config;
  config.variant = Variant::kCsr;
  config.gridSize = 16;
  config.numRanks = 1;
  config.iterations = 20;
  const HpcgResult result = runNative(config);
  const std::string out = formatOutput(result);
  EXPECT_TRUE(str::contains(out, "Variant: csr"));
  const std::regex fom(R"(GFLOP/s rating of ([0-9]+\.[0-9]+))");
  std::smatch match;
  ASSERT_TRUE(std::regex_search(out, match, fom));
  EXPECT_NEAR(std::stod(match[1].str()), result.gflops, 0.01);
  EXPECT_TRUE(str::contains(out, "VALID"));
}

TEST(HpcgModeled, Deterministic) {
  HpcgConfig config;
  config.variant = Variant::kCsr;
  config.gridSize = 104;
  config.numRanks = 40;
  const double a = runModeled(config, clx(), 16).gflops;
  const double b = runModeled(config, clx(), 16).gflops;
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace rebench::hpcg
