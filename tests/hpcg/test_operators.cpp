#include "hpcg/operator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/util/error.hpp"
#include "core/util/rng.hpp"

namespace rebench::hpcg {
namespace {

Geometry smallGeo(int n = 8) {
  Geometry g;
  g.nx = g.ny = g.nzLocal = g.nzGlobal = n;
  return g;
}

std::vector<double> randomVector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

TEST(VariantNames, RoundTrip) {
  for (Variant v : {Variant::kCsr, Variant::kCsrOpt, Variant::kMatrixFree,
                    Variant::kLfric}) {
    EXPECT_EQ(variantFromName(variantName(v)), v);
  }
  EXPECT_THROW(variantFromName("ellpack"), NotFoundError);
}

TEST(Operators, ApplyOnConstantVectorInterior) {
  // Away from boundaries a constant vector x=1 gives (26 - 26)*1 = 0 for
  // the 27-point operator; boundary rows give positive values (truncated
  // stencil keeps diagonal dominance).
  const Geometry g = smallGeo(6);
  const auto A = makeOperator(Variant::kCsr, g);
  std::vector<double> x(g.localPoints(), 1.0);
  std::vector<double> y(g.localPoints(), -1.0);
  A->apply(x, HaloView{}, y);
  // Centre cell: fully interior in x/y but z boundaries exist at k=0 and
  // k=nz-1 of the global domain... pick the exact centre (3,3,3) of 6^3:
  // all 26 neighbours exist except none (3 +/- 1 within [0,5]): zero.
  EXPECT_NEAR(y[g.index(3, 3, 3)], 0.0, 1e-12);
  // A corner loses 19 of its 26 neighbours: y = 26 - 7 = 19.
  EXPECT_NEAR(y[g.index(0, 0, 0)], 19.0, 1e-12);
}

/// All 27-point variants must implement the *same* matrix.
TEST(Operators, CsrVariantsAgreeWithMatrixFree) {
  const Geometry g = smallGeo(7);
  const auto csr = makeOperator(Variant::kCsr, g);
  const auto opt = makeOperator(Variant::kCsrOpt, g);
  const auto mf = makeOperator(Variant::kMatrixFree, g);
  const auto x = randomVector(g.localPoints(), 42);
  std::vector<double> yCsr(x.size()), yOpt(x.size()), yMf(x.size());
  csr->apply(x, HaloView{}, yCsr);
  opt->apply(x, HaloView{}, yOpt);
  mf->apply(x, HaloView{}, yMf);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(yCsr[i], yOpt[i], 1e-11) << i;
    EXPECT_NEAR(yCsr[i], yMf[i], 1e-11) << i;
  }
}

TEST(Operators, HaloPlanesEnterTheStencil) {
  const Geometry g = [] {
    Geometry gg;
    gg.nx = gg.ny = 5;
    gg.nzLocal = 3;
    gg.nzGlobal = 9;  // slab in the middle: both halos exist
    gg.zOffset = 3;
    return gg;
  }();
  const auto A = makeOperator(Variant::kCsr, g);
  const std::vector<double> x(g.localPoints(), 0.0);
  std::vector<double> lo(g.planePoints(), 1.0);
  std::vector<double> y(g.localPoints());
  HaloView halo;
  halo.lo = lo.data();
  A->apply(x, halo, y);
  // Interior cell (2,2,0): 9 neighbours in the lo plane, each -1: y = -9.
  EXPECT_NEAR(y[g.index(2, 2, 0)], -9.0, 1e-12);
  // A cell one plane up is untouched by the lo halo.
  EXPECT_NEAR(y[g.index(2, 2, 1)], 0.0, 1e-12);
}

template <typename Op>
void checkSymmetry(const Op& A, int seedA, int seedB) {
  const std::size_t n = A.n();
  const auto u = randomVector(n, seedA);
  const auto v = randomVector(n, seedB);
  std::vector<double> Au(n), Av(n);
  A.apply(u, HaloView{}, Au);
  A.apply(v, HaloView{}, Av);
  double uAv = 0.0, vAu = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    uAv += u[i] * Av[i];
    vAu += v[i] * Au[i];
  }
  EXPECT_NEAR(uAv, vAu, 1e-9 * std::abs(uAv) + 1e-9);
}

TEST(Operators, AllVariantsAreSymmetric) {
  const Geometry g = smallGeo(6);
  for (Variant v : {Variant::kCsr, Variant::kCsrOpt, Variant::kMatrixFree,
                    Variant::kLfric}) {
    SCOPED_TRACE(std::string(variantName(v)));
    checkSymmetry(*makeOperator(v, g), 1, 2);
  }
}

TEST(Operators, AllVariantsArePositiveDefinite) {
  const Geometry g = smallGeo(6);
  for (Variant v : {Variant::kCsr, Variant::kCsrOpt, Variant::kMatrixFree,
                    Variant::kLfric}) {
    SCOPED_TRACE(std::string(variantName(v)));
    const auto A = makeOperator(v, g);
    for (int seed = 0; seed < 5; ++seed) {
      const auto x = randomVector(A->n(), 100 + seed);
      std::vector<double> Ax(A->n());
      A->apply(x, HaloView{}, Ax);
      double xAx = 0.0;
      for (std::size_t i = 0; i < A->n(); ++i) xAx += x[i] * Ax[i];
      EXPECT_GT(xAx, 0.0);
    }
  }
}

TEST(Operators, PreconditionerReducesResidual) {
  // One SYMGS application of z ~ A^{-1} r must shrink ||r - A z|| vs ||r||.
  const Geometry g = smallGeo(8);
  for (Variant v : {Variant::kCsr, Variant::kCsrOpt, Variant::kMatrixFree,
                    Variant::kLfric}) {
    SCOPED_TRACE(std::string(variantName(v)));
    const auto A = makeOperator(v, g);
    const auto r = randomVector(A->n(), 7);
    std::vector<double> z(A->n());
    A->precondition(r, z);
    std::vector<double> Az(A->n());
    A->apply(z, HaloView{}, Az);
    double before = 0.0, after = 0.0;
    for (std::size_t i = 0; i < A->n(); ++i) {
      before += r[i] * r[i];
      after += (r[i] - Az[i]) * (r[i] - Az[i]);
    }
    EXPECT_LT(after, 0.5 * before);
  }
}

TEST(Operators, CountersArePositiveAndOrdered) {
  const Geometry g = smallGeo(16);
  const auto csr = makeOperator(Variant::kCsr, g);
  const auto opt = makeOperator(Variant::kCsrOpt, g);
  const auto mf = makeOperator(Variant::kMatrixFree, g);
  const auto lfric = makeOperator(Variant::kLfric, g);
  for (const Operator* op :
       {csr.get(), opt.get(), mf.get(), lfric.get()}) {
    EXPECT_GT(op->applyBytes(), 0.0);
    EXPECT_GT(op->applyFlops(), 0.0);
    EXPECT_GT(op->precondBytes(), 0.0);
    EXPECT_GT(op->precondFlops(), 0.0);
  }
  // The whole point of the variants: CSR moves the most data per apply,
  // the vendor-optimised CSR less, matrix-free the least.
  EXPECT_GT(csr->applyBytes(), opt->applyBytes());
  EXPECT_GT(opt->applyBytes(), mf->applyBytes());
  // LFRic streams coefficient fields: more than matrix-free, less than CSR.
  EXPECT_GT(lfric->applyBytes(), mf->applyBytes());
  EXPECT_LT(lfric->applyBytes(), csr->applyBytes());
}

TEST(Geometry, SlabPartitioningCoversDomain) {
  const int n = 13, ranks = 4;
  int covered = 0;
  for (int r = 0; r < ranks; ++r) {
    const Geometry g = Geometry::slab(n, r, ranks);
    EXPECT_EQ(g.nx, n);
    EXPECT_EQ(g.nzGlobal, n);
    EXPECT_EQ(g.zOffset, covered);
    covered += g.nzLocal;
  }
  EXPECT_EQ(covered, n);
}

TEST(Geometry, NeighborFlags) {
  const Geometry first = Geometry::slab(8, 0, 2);
  EXPECT_FALSE(first.hasLowerNeighbor());
  EXPECT_TRUE(first.hasUpperNeighbor());
  const Geometry last = Geometry::slab(8, 1, 2);
  EXPECT_TRUE(last.hasLowerNeighbor());
  EXPECT_FALSE(last.hasUpperNeighbor());
}

}  // namespace
}  // namespace rebench::hpcg
