#include "hpcg/cg.hpp"

#include <gtest/gtest.h>

#include <mutex>

#include "core/util/rng.hpp"

namespace rebench::hpcg {
namespace {

Geometry cube(int n) {
  Geometry g;
  g.nx = g.ny = g.nzLocal = g.nzGlobal = n;
  return g;
}

std::vector<double> onesRhs(const Operator& A) {
  std::vector<double> ones(A.n(), 1.0);
  std::vector<double> b(A.n());
  A.apply(ones, HaloView{}, b);
  return b;
}

TEST(ConjugateGradient, SolvesToExactSolution) {
  const auto A = makeOperator(Variant::kCsr, cube(12));
  const std::vector<double> b = onesRhs(*A);
  CgOptions options;
  options.maxIterations = 60;
  options.tolerance = 1e-10;
  const CgResult result = conjugateGradient(*A, b, options);
  EXPECT_TRUE(result.converged);
  double err = 0.0;
  for (double xi : result.x) err = std::max(err, std::abs(xi - 1.0));
  EXPECT_LT(err, 1e-7);
}

TEST(ConjugateGradient, AllVariantsConverge) {
  for (Variant v : {Variant::kCsr, Variant::kCsrOpt, Variant::kMatrixFree,
                    Variant::kLfric}) {
    SCOPED_TRACE(std::string(variantName(v)));
    const auto A = makeOperator(v, cube(10));
    const std::vector<double> b = onesRhs(*A);
    CgOptions options;
    options.maxIterations = 50;
    options.tolerance = 1e-9;
    const CgResult result = conjugateGradient(*A, b, options);
    EXPECT_TRUE(result.converged);
    EXPECT_LT(result.finalResidualNorm,
              1e-8 * result.initialResidualNorm + 1e-12);
  }
}

TEST(ConjugateGradient, ResidualHistoryDecreasesOverall) {
  const auto A = makeOperator(Variant::kCsr, cube(10));
  const std::vector<double> b = onesRhs(*A);
  CgOptions options;
  options.maxIterations = 20;
  const CgResult result = conjugateGradient(*A, b, options);
  ASSERT_GE(result.residualHistory.size(), 10u);
  EXPECT_LT(result.residualHistory.back(),
            0.01 * result.initialResidualNorm);
}

TEST(ConjugateGradient, PreconditioningCutsIterations) {
  const auto A = makeOperator(Variant::kCsr, cube(14));
  const std::vector<double> b = onesRhs(*A);
  CgOptions precond;
  precond.maxIterations = 200;
  precond.tolerance = 1e-8;
  CgOptions plain = precond;
  plain.preconditioned = false;
  const CgResult fast = conjugateGradient(*A, b, precond);
  const CgResult slow = conjugateGradient(*A, b, plain);
  EXPECT_TRUE(fast.converged);
  EXPECT_TRUE(slow.converged);
  EXPECT_LT(fast.counters.iterations, slow.counters.iterations);
}

TEST(ConjugateGradient, FixedIterationModeRunsExactlyMaxIterations) {
  const auto A = makeOperator(Variant::kCsr, cube(8));
  const std::vector<double> b = onesRhs(*A);
  CgOptions options;
  options.maxIterations = 50;  // HPCG style: tolerance 0
  const CgResult result = conjugateGradient(*A, b, options);
  EXPECT_EQ(result.counters.iterations, 50);
}

TEST(ConjugateGradient, CountersAccumulate) {
  const auto A = makeOperator(Variant::kCsr, cube(8));
  const std::vector<double> b = onesRhs(*A);
  CgOptions options;
  options.maxIterations = 10;
  const CgResult result = conjugateGradient(*A, b, options);
  EXPECT_GT(result.counters.flops, 0.0);
  EXPECT_GT(result.counters.bytes, result.counters.flops);
  EXPECT_EQ(result.counters.iterations, 10);
  // Without a communicator nothing is exchanged or reduced.
  EXPECT_EQ(result.counters.haloExchanges, 0);
  EXPECT_EQ(result.counters.allreduces, 0);
}

TEST(ConjugateGradient, DistributedMatchesSingleRank) {
  // Solve the same 12^3 global problem on 1 and on 3 ranks.  The SYMGS
  // preconditioner is rank-local (block-Jacobi across ranks, exactly like
  // real HPCG), so only the *unpreconditioned* trajectory is
  // decomposition-independent — that is what we compare.
  const int n = 12;
  const auto singleA = makeOperator(Variant::kCsr, cube(n));
  CgOptions options;
  options.maxIterations = 25;
  options.preconditioned = false;
  const CgResult single =
      conjugateGradient(*singleA, onesRhs(*singleA), options);

  std::vector<double> distResiduals;
  std::mutex m;
  minimpi::run(3, [&](minimpi::Comm& comm) {
    const Geometry g = Geometry::slab(n, comm.rank(), comm.size());
    const auto A = makeOperator(Variant::kCsr, g);
    // Build b = A*ones with real halo exchange.
    HaloExchanger halos(g, &comm);
    std::vector<double> ones(A->n(), 1.0);
    std::vector<double> b(A->n());
    const HaloView halo = halos.exchange(ones, 90);
    A->apply(ones, halo, b);

    const CgResult result = conjugateGradient(*A, b, options, &comm);
    double err = 0.0;
    for (double xi : result.x) err = std::max(err, std::abs(xi - 1.0));
    EXPECT_LT(err, 1e-6);
    if (comm.rank() == 0) {
      std::lock_guard lock(m);
      distResiduals = result.residualHistory;
    }
  });
  ASSERT_EQ(distResiduals.size(), single.residualHistory.size());
  for (std::size_t i = 0; i < distResiduals.size(); ++i) {
    EXPECT_NEAR(distResiduals[i], single.residualHistory[i],
                1e-8 * (1.0 + single.residualHistory[i]))
        << "iteration " << i;
  }
}

TEST(HaloExchangerTest, ExchangesPlanesBetweenRanks) {
  const int n = 6;
  minimpi::run(2, [&](minimpi::Comm& comm) {
    const Geometry g = Geometry::slab(n, comm.rank(), comm.size());
    std::vector<double> x(g.localPoints(),
                          static_cast<double>(comm.rank() + 1));
    HaloExchanger halos(g, &comm);
    const HaloView halo = halos.exchange(x, 30);
    if (comm.rank() == 0) {
      EXPECT_EQ(halo.lo, nullptr);
      ASSERT_NE(halo.hi, nullptr);
      EXPECT_DOUBLE_EQ(halo.hi[0], 2.0);  // rank 1's bottom plane
    } else {
      EXPECT_EQ(halo.hi, nullptr);
      ASSERT_NE(halo.lo, nullptr);
      EXPECT_DOUBLE_EQ(halo.lo[0], 1.0);  // rank 0's top plane
    }
  });
}

}  // namespace
}  // namespace rebench::hpcg
