#include "babelstream/run.hpp"

#include <gtest/gtest.h>

#include <regex>

#include "core/util/error.hpp"
#include "core/util/strings.hpp"

namespace rebench::babelstream {
namespace {

const MachineModel& machine(const char* id) {
  return builtinMachines().get(id);
}

TEST(RunNative, SerialValidatesAndTimes) {
  const StreamResult result = runNative("serial", 1 << 14, 5);
  EXPECT_TRUE(result.validated);
  EXPECT_EQ(result.timings.size(), 5u);
  for (const auto& [kernel, timing] : result.timings) {
    EXPECT_GT(timing.minSeconds, 0.0);
    EXPECT_LE(timing.minSeconds, timing.avgSeconds);
    EXPECT_LE(timing.avgSeconds, timing.maxSeconds);
    EXPECT_GT(timing.mbytesPerSec, 0.0);
  }
  EXPECT_GT(result.triadGBs(), 0.0);
}

TEST(RunNative, UnknownBackendThrows) {
  EXPECT_THROW(runNative("cuda", 1024, 2), NotFoundError);
}

TEST(RunModeled, SupportedComboProducesResult) {
  const auto result = runModeled("omp", machine("clx-6230"), 1 << 25, 10);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->validated);
  // Modelled Triad should land between 60% and 100% of Table 1 peak.
  const double efficiency = result->triadGBs() / 281.568;
  EXPECT_GT(efficiency, 0.60);
  EXPECT_LT(efficiency, 1.0);
}

TEST(RunModeled, UnsupportedComboIsNullopt) {
  EXPECT_FALSE(runModeled("cuda", machine("clx-6230"), 1 << 25, 10));
  EXPECT_FALSE(unsupportedReason("cuda", machine("clx-6230")).empty());
  EXPECT_TRUE(unsupportedReason("cuda", machine("v100")).empty());
}

TEST(RunModeled, RepeatSaltVariesResults) {
  // Repeats draw fresh (deterministic) noise; the first run's empty salt
  // matches the unsalted call exactly.
  const auto base = runModeled("omp", machine("clx-6230"), 1 << 25, 10);
  const auto rep0 =
      runModeled("omp", machine("clx-6230"), 1 << 25, 10, 4096, "");
  const auto rep1 =
      runModeled("omp", machine("clx-6230"), 1 << 25, 10, 4096, ":rep1");
  ASSERT_TRUE(base && rep0 && rep1);
  EXPECT_DOUBLE_EQ(base->triadGBs(), rep0->triadGBs());
  EXPECT_NE(base->triadGBs(), rep1->triadGBs());
  EXPECT_NEAR(rep1->triadGBs() / base->triadGBs(), 1.0, 0.1);
}

TEST(RunModeled, DeterministicAcrossCalls) {
  const auto a = runModeled("omp", machine("milan-7763"), 1 << 29, 5);
  const auto b = runModeled("omp", machine("milan-7763"), 1 << 29, 5);
  ASSERT_TRUE(a && b);
  EXPECT_DOUBLE_EQ(a->triadGBs(), b->triadGBs());
}

TEST(RunModeled, V100BeatsCpusOnTriad) {
  const auto gpu = runModeled("omp", machine("v100"), 1 << 25, 5);
  const auto cpu = runModeled("omp", machine("clx-6230"), 1 << 25, 5);
  ASSERT_TRUE(gpu && cpu);
  EXPECT_GT(gpu->triadGBs(), 2.0 * cpu->triadGBs());
}

TEST(RunModeled, StdRangesFarBelowOmp) {
  // Figure 2: std-ranges is single-threaded and lands near the bottom.
  const auto ranges =
      runModeled("std-ranges", machine("clx-6230"), 1 << 25, 5);
  const auto omp = runModeled("omp", machine("clx-6230"), 1 << 25, 5);
  ASSERT_TRUE(ranges && omp);
  EXPECT_LT(ranges->triadGBs(), 0.2 * omp->triadGBs());
}

TEST(PaperArraySize, MilanGetsTwoPow29OthersTwoPow25) {
  // §3.1's sizing rule.
  EXPECT_EQ(paperArraySize(machine("milan-7763")), std::size_t{1} << 29);
  EXPECT_EQ(paperArraySize(machine("rome-7742")), std::size_t{1} << 29);
  EXPECT_EQ(paperArraySize(machine("clx-6230")), std::size_t{1} << 25);
  EXPECT_EQ(paperArraySize(machine("thunderx2")), std::size_t{1} << 25);
  EXPECT_EQ(paperArraySize(machine("v100")), std::size_t{1} << 25);
}

TEST(FormatOutput, MatchesBabelstreamShape) {
  const auto result = runModeled("omp", machine("milan-7763"),
                                 std::size_t{1} << 29, 10);
  ASSERT_TRUE(result.has_value());
  const std::string out = formatOutput(*result);
  EXPECT_TRUE(str::contains(out, "BabelStream"));
  // The 2^29 sizes quoted in §3.1 verbatim:
  EXPECT_TRUE(str::contains(out, "Array size: 4295.0 MB (=4.3 GB)"));
  EXPECT_TRUE(str::contains(out, "Total size: 12884.9 MB (=12.9 GB)"));
  EXPECT_TRUE(str::contains(out, "Validation: PASSED"));
  // The framework's Triad regex must match.
  const std::regex triad(R"(Triad\s+([0-9]+\.[0-9]+))");
  std::smatch match;
  ASSERT_TRUE(std::regex_search(out, match, triad));
  const double mbs = std::stod(match[1].str());
  EXPECT_NEAR(mbs / 1000.0, result->triadGBs(), 0.01);
}

TEST(FormatOutput, FailedValidationVisible) {
  StreamResult result;
  result.model = "omp";
  result.arraySize = 1024;
  result.ntimes = 1;
  result.validated = false;
  for (Kernel k : kAllKernels) result.timings[k] = KernelTiming{1, 1, 1, 1};
  EXPECT_TRUE(str::contains(formatOutput(result), "Validation: FAILED"));
}

}  // namespace
}  // namespace rebench::babelstream
