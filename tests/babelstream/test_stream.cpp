#include "babelstream/stream.hpp"

#include <gtest/gtest.h>

#include "babelstream/backend.hpp"

namespace rebench::babelstream {
namespace {

TEST(KernelMeta, NamesAndTraffic) {
  EXPECT_EQ(kernelName(Kernel::kTriad), "Triad");
  EXPECT_EQ(kernelName(Kernel::kDot), "Dot");
  // Triad streams two reads + one write of doubles.
  EXPECT_DOUBLE_EQ(kernelBytesPerElement(Kernel::kTriad), 24.0);
  EXPECT_DOUBLE_EQ(kernelBytesPerElement(Kernel::kCopy), 16.0);
  EXPECT_DOUBLE_EQ(kernelFlopsPerElement(Kernel::kCopy), 0.0);
  EXPECT_DOUBLE_EQ(kernelFlopsPerElement(Kernel::kTriad), 2.0);
}

TEST(GoldValues, MatchesManualIteration) {
  GoldValues gold;
  gold.stepIteration();
  // copy: c=0.1; mul: b=0.04; add: c=0.14; triad: a=0.04+0.4*0.14=0.096
  EXPECT_DOUBLE_EQ(gold.c, 0.14);
  EXPECT_DOUBLE_EQ(gold.b, 0.04);
  EXPECT_DOUBLE_EQ(gold.a, 0.096);
}

TEST(Validation, FreshArraysFailForNonzeroIterations) {
  const StreamArrays arrays(128);
  EXPECT_FALSE(validate(arrays, 1, 0.0).passed);
}

TEST(Validation, SerialBackendPassesAfterAnyIterationCount) {
  for (int ntimes : {1, 3, 10}) {
    StreamArrays arrays(256);
    auto backend = makeNativeBackend("serial");
    double dot = 0.0;
    for (int i = 0; i < ntimes; ++i) {
      backend->iteration(arrays);
      dot = backend->dot(arrays);
    }
    const ValidationResult result = validate(arrays, ntimes, dot);
    EXPECT_TRUE(result.passed) << "ntimes=" << ntimes
                               << " errA=" << result.errA;
  }
}

TEST(Validation, CorruptedArrayDetected) {
  StreamArrays arrays(256);
  auto backend = makeNativeBackend("serial");
  backend->iteration(arrays);
  const double dot = backend->dot(arrays);
  arrays.c[100] += 0.5;  // inject a fault
  EXPECT_FALSE(validate(arrays, 1, dot).passed);
}

TEST(Validation, WrongDotDetected) {
  StreamArrays arrays(256);
  auto backend = makeNativeBackend("serial");
  backend->iteration(arrays);
  const double dot = backend->dot(arrays);
  EXPECT_FALSE(validate(arrays, 1, dot * 1.01).passed);
  EXPECT_TRUE(validate(arrays, 1, dot).passed);
}

class BackendCorrectness : public ::testing::TestWithParam<std::string> {};

TEST_P(BackendCorrectness, ProducesValidatedResults) {
  auto backend = makeNativeBackend(GetParam());
  ASSERT_NE(backend, nullptr) << GetParam();
  EXPECT_EQ(backend->name(), GetParam());
  StreamArrays arrays(1000);  // non-power-of-two exercises chunk edges
  double dot = 0.0;
  for (int i = 0; i < 5; ++i) {
    backend->iteration(arrays);
    dot = backend->dot(arrays);
  }
  const ValidationResult result = validate(arrays, 5, dot);
  EXPECT_TRUE(result.passed)
      << "errA=" << result.errA << " errB=" << result.errB
      << " errC=" << result.errC << " errDot=" << result.errDot;
}

INSTANTIATE_TEST_SUITE_P(AllNativeBackends, BackendCorrectness,
                         ::testing::ValuesIn(nativeBackendIds()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(BackendRegistry, GpuModelsHaveNoNativeBackend) {
  EXPECT_EQ(makeNativeBackend("cuda"), nullptr);
  EXPECT_EQ(makeNativeBackend("ocl"), nullptr);
  EXPECT_EQ(makeNativeBackend("sycl"), nullptr);
  EXPECT_EQ(makeNativeBackend("bogus"), nullptr);
}

TEST(BackendRegistry, AllBackendsAgreeOnDot) {
  StreamArrays reference(512);
  auto serial = makeNativeBackend("serial");
  serial->iteration(reference);
  const double expected = serial->dot(reference);

  for (const std::string& id : nativeBackendIds()) {
    StreamArrays arrays(512);
    auto backend = makeNativeBackend(id);
    backend->iteration(arrays);
    EXPECT_NEAR(backend->dot(arrays), expected, 1e-9) << id;
  }
}

}  // namespace
}  // namespace rebench::babelstream
