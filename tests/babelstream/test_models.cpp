#include "babelstream/models.hpp"

#include <gtest/gtest.h>

#include "core/util/error.hpp"

namespace rebench::babelstream {
namespace {

const MachineModel& machine(const char* id) {
  return builtinMachines().get(id);
}

TEST(Figure2Models, NineRowsInOrder) {
  const auto& models = figure2Models();
  ASSERT_EQ(models.size(), 9u);
  EXPECT_EQ(models.front().id, "omp");
  EXPECT_EQ(models.back().id, "std-ranges");
}

TEST(Figure2Models, LookupById) {
  EXPECT_EQ(modelById("cuda").displayName, "CUDA");
  EXPECT_EQ(modelById("serial").id, "serial");
  EXPECT_THROW(modelById("fortran"), NotFoundError);
}

TEST(SupportMatrix, OpenMpWorksOnAllDevices) {
  // §3.1: "OpenMP works on all devices".
  for (const char* id : {"clx-6230", "thunderx2", "milan-7763", "v100"}) {
    EXPECT_TRUE(modelById("omp").supportOn(machine(id)).supported) << id;
  }
}

TEST(SupportMatrix, CudaOnlyOnNvidiaGpus) {
  // §3.1: "incompatibilities (CUDA on CPUs)".
  EXPECT_TRUE(modelById("cuda").supportOn(machine("v100")).supported);
  for (const char* id : {"clx-6230", "thunderx2", "milan-7763"}) {
    const ModelSupport s = modelById("cuda").supportOn(machine(id));
    EXPECT_FALSE(s.supported) << id;
    EXPECT_FALSE(s.reason.empty());
  }
}

TEST(SupportMatrix, TbbNotOnThunderX2) {
  // §3.1: "incompatibilities (... Intel-TBB on Thunder)".
  EXPECT_FALSE(modelById("tbb").supportOn(machine("thunderx2")).supported);
  EXPECT_TRUE(modelById("tbb").supportOn(machine("clx-6230")).supported);
  EXPECT_TRUE(modelById("tbb").supportOn(machine("milan-7763")).supported);
}

TEST(SupportMatrix, TbbDisparityBetweenMilanAndCascadeLake) {
  // §3.1: "evident between paderborn-milan and isambard-macs:cascadelake
  // TBB execution results".
  const auto milan = modelById("tbb").supportOn(machine("milan-7763"));
  const auto clx = modelById("tbb").supportOn(machine("clx-6230"));
  EXPECT_GT(milan.efficiency.bandwidthFraction,
            clx.efficiency.bandwidthFraction + 0.1);
}

TEST(SupportMatrix, StdRangesIsSingleThreaded) {
  // §3.1: std-ranges "only executes in a single thread".
  const auto s = modelById("std-ranges").supportOn(machine("clx-6230"));
  ASSERT_TRUE(s.supported);
  EXPECT_EQ(s.efficiency.coresUsed, 1);
}

TEST(SupportMatrix, StdDataSerialWithoutTbbOnArm) {
  // §3.1: std-data/std-indices degrade on isambard-xci (no TBB backend).
  const auto arm = modelById("std-data").supportOn(machine("thunderx2"));
  ASSERT_TRUE(arm.supported);
  EXPECT_EQ(arm.efficiency.coresUsed, 1);
  const auto x86 = modelById("std-data").supportOn(machine("clx-6230"));
  ASSERT_TRUE(x86.supported);
  EXPECT_EQ(x86.efficiency.coresUsed, 0);  // full machine
}

TEST(SupportMatrix, VoltaBestWithCudaAndOpenCL) {
  // §3.1: "The NVIDIA Volta GPU is close to the peak maximum bandwidth
  // ... when executing benchmarks with OpenCL and CUDA".
  const auto& v100 = machine("v100");
  const double cuda =
      modelById("cuda").supportOn(v100).efficiency.bandwidthFraction;
  const double ocl =
      modelById("ocl").supportOn(v100).efficiency.bandwidthFraction;
  const double omp =
      modelById("omp").supportOn(v100).efficiency.bandwidthFraction;
  EXPECT_GT(cuda, 0.95);
  EXPECT_GT(ocl, 0.95);
  EXPECT_LT(omp, ocl);
}

TEST(SupportMatrix, CompilerLabelsPresentWhenSupported) {
  for (const ProgrammingModel& model : figure2Models()) {
    for (const char* id : {"clx-6230", "thunderx2", "milan-7763", "v100"}) {
      const ModelSupport s = model.supportOn(machine(id));
      if (s.supported) {
        EXPECT_FALSE(s.compilerLabel.empty()) << model.id << " on " << id;
      } else {
        EXPECT_FALSE(s.reason.empty()) << model.id << " on " << id;
      }
    }
  }
}

TEST(SupportMatrix, EveryModelRunsSomewhere) {
  for (const ProgrammingModel& model : figure2Models()) {
    bool anywhere = false;
    for (const char* id : {"clx-6230", "thunderx2", "milan-7763", "v100"}) {
      anywhere |= model.supportOn(machine(id)).supported;
    }
    EXPECT_TRUE(anywhere) << model.id;
  }
}

TEST(SupportMatrix, SomeCellsAreMissing) {
  // Figure 2 has white boxes: the matrix must not be fully supported.
  int unsupported = 0;
  for (const ProgrammingModel& model : figure2Models()) {
    for (const char* id : {"clx-6230", "thunderx2", "milan-7763", "v100"}) {
      if (!model.supportOn(machine(id)).supported) ++unsupported;
    }
  }
  EXPECT_GE(unsupported, 5);
}

}  // namespace
}  // namespace rebench::babelstream
