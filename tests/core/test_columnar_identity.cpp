// Byte-identity gate: every DataFrame operation must reproduce the frozen
// row engine (legacy::RowFrame) bit-for-bit.  The corpus generator is a
// plain LCG so both engines see the same rows on every platform; the
// comparisons diff rendered CSV text, which is how downstream tooling
// consumes frames — identical bytes here means identical reports.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/framework/perflog.hpp"
#include "core/postproc/dataframe.hpp"
#include "core/postproc/legacy_rowframe.hpp"
#include "core/postproc/perflog_reader.hpp"

namespace rebench {
namespace {

/// Deterministic corpus shared by both engines: repeated labels (so
/// group-by and pivot have real groups), duplicated values (so stable
/// sort order matters) and a value stream with enough digits to expose
/// any accumulation-order drift in mean/sum.
struct Corpus {
  std::vector<std::string> systems;
  std::vector<std::string> tests;
  std::vector<std::string> foms;
  std::vector<double> values;
};

Corpus makeCorpus(std::size_t rows) {
  const char* kSystems[] = {"archer2", "csd3", "cirrus", "isambard"};
  const char* kTests[] = {"stream", "hpgmg", "sombrero"};
  const char* kFoms[] = {"bw", "latency"};
  Corpus corpus;
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < rows; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    corpus.systems.push_back(kSystems[(state >> 33) % 4]);
    corpus.tests.push_back(kTests[(state >> 21) % 3]);
    corpus.foms.push_back(kFoms[(state >> 11) % 2]);
    // ~1/8 of rows repeat an exact value so sorts exercise stability.
    const double value = (state % 8 == 0)
                             ? 42.5
                             : static_cast<double>(state % 1000000) / 733.0;
    corpus.values.push_back(value);
  }
  return corpus;
}

DataFrame columnarFrame(const Corpus& corpus) {
  DataFrame frame;
  frame.addStrings("system", corpus.systems);
  frame.addStrings("test", corpus.tests);
  frame.addStrings("fom", corpus.foms);
  frame.addNumeric("value", corpus.values);
  return frame;
}

legacy::RowFrame rowFrame(const Corpus& corpus) {
  legacy::RowFrame frame;
  frame.addStrings("system", corpus.systems);
  frame.addStrings("test", corpus.tests);
  frame.addStrings("fom", corpus.foms);
  frame.addNumeric("value", corpus.values);
  return frame;
}

constexpr std::size_t kRows = 2000;

TEST(ColumnarIdentity, ToCsvBytesMatch) {
  const Corpus corpus = makeCorpus(kRows);
  EXPECT_EQ(columnarFrame(corpus).toCsv(), rowFrame(corpus).toCsv());
}

TEST(ColumnarIdentity, DescribeBytesMatch) {
  const Corpus corpus = makeCorpus(kRows);
  EXPECT_EQ(columnarFrame(corpus).describe().toCsv(),
            rowFrame(corpus).describe().toCsv());
}

TEST(ColumnarIdentity, GroupByBytesMatchForEveryAggregate) {
  const Corpus corpus = makeCorpus(kRows);
  const DataFrame columnar = columnarFrame(corpus);
  const legacy::RowFrame rows = rowFrame(corpus);
  const std::vector<std::string> keys = {"system", "fom"};
  for (const Agg agg : {Agg::kMean, Agg::kMin, Agg::kMax, Agg::kSum,
                        Agg::kCount, Agg::kFirst}) {
    SCOPED_TRACE(static_cast<int>(agg));
    EXPECT_EQ(columnar.groupBy(keys, "value", agg).toCsv(),
              rows.groupBy(keys, "value", agg).toCsv());
  }
}

TEST(ColumnarIdentity, SortByBytesMatchBothDirections) {
  const Corpus corpus = makeCorpus(kRows);
  const DataFrame columnar = columnarFrame(corpus);
  const legacy::RowFrame rows = rowFrame(corpus);
  // Duplicate values + a string sort: both exercise stable-order identity.
  EXPECT_EQ(columnar.sortBy("value", true).toCsv(),
            rows.sortBy("value", true).toCsv());
  EXPECT_EQ(columnar.sortBy("value", false).toCsv(),
            rows.sortBy("value", false).toCsv());
  EXPECT_EQ(columnar.sortBy("system", true).toCsv(),
            rows.sortBy("system", true).toCsv());
}

TEST(ColumnarIdentity, FilterAndSelectBytesMatch) {
  const Corpus corpus = makeCorpus(kRows);
  const DataFrame columnar = columnarFrame(corpus);
  const legacy::RowFrame rows = rowFrame(corpus);
  EXPECT_EQ(columnar.filterEquals("system", "csd3").toCsv(),
            rows.filterEquals("system", "csd3").toCsv());
  const std::vector<std::string> cols = {"fom", "value"};
  EXPECT_EQ(columnar.selectColumns(cols).toCsv(),
            rows.selectColumns(cols).toCsv());
}

TEST(ColumnarIdentity, PivotMatchesLabelsAndCells) {
  const Corpus corpus = makeCorpus(kRows);
  const PivotTable a =
      columnarFrame(corpus).pivot("system", "test", "value", Agg::kMean);
  const PivotTable b =
      rowFrame(corpus).pivot("system", "test", "value", Agg::kMean);
  EXPECT_EQ(a.rowLabels, b.rowLabels);
  EXPECT_EQ(a.colLabels, b.colLabels);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t r = 0; r < a.cells.size(); ++r) {
    ASSERT_EQ(a.cells[r].size(), b.cells[r].size());
    for (std::size_t c = 0; c < a.cells[r].size(); ++c) {
      ASSERT_EQ(a.cells[r][c].has_value(), b.cells[r][c].has_value());
      if (a.cells[r][c]) {
        // Bit-for-bit, not approximately: same accumulation order.
        EXPECT_EQ(*a.cells[r][c], *b.cells[r][c]);
      }
    }
  }
}

TEST(ColumnarIdentity, CsvRoundTripMatchesIncludingQuoting) {
  // Cells with commas, quotes, leading spaces and number-like text hit
  // every branch of the quoting and type-sniffing rules.
  DataFrame columnar;
  legacy::RowFrame rows;
  const std::vector<std::string> awkward = {
      "plain", "with,comma", "with\"quote", " leading space", "123abc"};
  const std::vector<std::string> numericText = {"1", "2.5", "-3e2", "0",
                                                "7"};
  columnar.addStrings("label", awkward);
  columnar.addStrings("reading", numericText);
  rows.addStrings("label", awkward);
  rows.addStrings("reading", numericText);

  const std::string csvA = columnar.toCsv();
  const std::string csvB = rows.toCsv();
  EXPECT_EQ(csvA, csvB);

  // Both parsers must sniff "reading" numeric and re-render identically.
  const DataFrame reparsedA = DataFrame::fromCsv(csvA);
  const legacy::RowFrame reparsedB = legacy::RowFrame::fromCsv(csvB);
  EXPECT_TRUE(reparsedA.isNumeric("reading"));
  EXPECT_TRUE(reparsedB.isNumeric("reading"));
  EXPECT_EQ(reparsedA.toCsv(), reparsedB.toCsv());
}

TEST(ColumnarIdentity, PerflogBridgeBytesMatch) {
  std::vector<PerfLogEntry> entries;
  const Corpus corpus = makeCorpus(200);
  for (std::size_t i = 0; i < corpus.values.size(); ++i) {
    PerfLogEntry entry;
    entry.timestamp = std::to_string(i);
    entry.system = corpus.systems[i];
    entry.partition = "standard";
    entry.environ = "gcc@11.2.0";
    entry.testName = corpus.tests[i];
    entry.spec = corpus.tests[i] + "@1.0";
    entry.fomName = corpus.foms[i];
    entry.value = corpus.values[i];
    entry.unit = Unit::kSeconds;
    entry.result = i % 7 == 0 ? "fail" : "pass";
    entries.push_back(entry);
  }
  EXPECT_EQ(perflogToDataFrame(entries).toCsv(),
            legacy::rowFrameFromPerflog(entries).toCsv());
}

TEST(ColumnarIdentity, DerivedFrameChainsStayIdentical) {
  // Chain filter -> groupBy -> sort, the report pipeline's actual shape.
  const Corpus corpus = makeCorpus(kRows);
  const std::vector<std::string> keys = {"test"};
  const std::string a = columnarFrame(corpus)
                            .filterEquals("fom", "bw")
                            .groupBy(keys, "value", Agg::kMean)
                            .sortBy("value", false)
                            .toCsv();
  const std::string b = rowFrame(corpus)
                            .filterEquals("fom", "bw")
                            .groupBy(keys, "value", Agg::kMean)
                            .sortBy("value", false)
                            .toCsv();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace rebench
