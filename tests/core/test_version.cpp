#include "core/util/version.hpp"

#include <gtest/gtest.h>

#include "core/util/error.hpp"

namespace rebench {
namespace {

TEST(Version, ParseAndPrintRoundTrip) {
  for (const char* text : {"1", "1.2", "8.1.23", "2023.1.0", "2.3.6",
                           "1.2.3rc1", "4.0.01"}) {
    EXPECT_EQ(Version::parse(text).toString(), text) << text;
  }
}

TEST(Version, ParseRejectsGarbage) {
  EXPECT_THROW(Version::parse(""), ParseError);
  EXPECT_THROW(Version::parse("abc"), ParseError);
  EXPECT_THROW(Version::parse("1."), ParseError);
  EXPECT_THROW(Version::parse("1..2"), ParseError);
}

TEST(Version, OrderingIsComponentwise) {
  EXPECT_LT(Version::parse("9.2.0"), Version::parse("10.3.0"));
  EXPECT_LT(Version::parse("2.7.15"), Version::parse("3.7.5"));
  EXPECT_LT(Version::parse("4.0.3"), Version::parse("4.0.4"));
  EXPECT_LT(Version::parse("8.1.15"), Version::parse("8.1.23"));
  EXPECT_EQ(Version::parse("1.2.3"), Version::parse("1.2.3"));
}

TEST(Version, ShorterSortsBeforeExtended) {
  EXPECT_LT(Version::parse("1.2"), Version::parse("1.2.0"));
}

TEST(Version, PreReleaseSortsBeforeRelease) {
  EXPECT_LT(Version::parse("1.2rc1"), Version::parse("1.2"));
}

TEST(Version, PrefixMatching) {
  EXPECT_TRUE(Version::parse("1.2.3").hasPrefix(Version::parse("1.2")));
  EXPECT_TRUE(Version::parse("1.2").hasPrefix(Version::parse("1.2")));
  EXPECT_FALSE(Version::parse("1.20").hasPrefix(Version::parse("1.2")));
  EXPECT_FALSE(Version::parse("1").hasPrefix(Version::parse("1.2")));
}

TEST(VersionConstraint, AnyAcceptsEverything) {
  const VersionConstraint any;
  EXPECT_TRUE(any.isAny());
  EXPECT_TRUE(any.satisfiedBy(Version::parse("0.1")));
  EXPECT_TRUE(any.satisfiedBy(Version::parse("99.99")));
}

TEST(VersionConstraint, ExactUsesPrefixSemantics) {
  const auto c = VersionConstraint::parse("9.2");
  EXPECT_TRUE(c.satisfiedBy(Version::parse("9.2")));
  EXPECT_TRUE(c.satisfiedBy(Version::parse("9.2.0")));
  EXPECT_FALSE(c.satisfiedBy(Version::parse("9.3")));
}

TEST(VersionConstraint, StrictExactDisablesPrefix) {
  const auto c = VersionConstraint::parse("=9.2");
  EXPECT_TRUE(c.satisfiedBy(Version::parse("9.2")));
  EXPECT_FALSE(c.satisfiedBy(Version::parse("9.2.0")));
}

TEST(VersionConstraint, Ranges) {
  const auto c = VersionConstraint::parse("4.0:4.9");
  EXPECT_TRUE(c.satisfiedBy(Version::parse("4.0.3")));
  EXPECT_TRUE(c.satisfiedBy(Version::parse("4.9.9")));  // prefix of high end
  EXPECT_FALSE(c.satisfiedBy(Version::parse("5.0")));
  EXPECT_FALSE(c.satisfiedBy(Version::parse("3.9")));

  const auto atLeast = VersionConstraint::parse("10.3:");
  EXPECT_TRUE(atLeast.satisfiedBy(Version::parse("11.2.0")));
  EXPECT_FALSE(atLeast.satisfiedBy(Version::parse("9.2.0")));

  const auto atMost = VersionConstraint::parse(":2");
  EXPECT_TRUE(atMost.satisfiedBy(Version::parse("2.7.15")));
  EXPECT_FALSE(atMost.satisfiedBy(Version::parse("3.0")));
}

TEST(VersionConstraint, EmptyRangeRejected) {
  EXPECT_THROW(VersionConstraint::parse("2.0:1.0"), ParseError);
}

TEST(VersionConstraint, IntersectRanges) {
  const auto a = VersionConstraint::parse("1.0:3.0");
  const auto b = VersionConstraint::parse("2.0:4.0");
  const auto meet = a.intersect(b);
  ASSERT_TRUE(meet.has_value());
  EXPECT_TRUE(meet->satisfiedBy(Version::parse("2.5")));
  EXPECT_FALSE(meet->satisfiedBy(Version::parse("1.5")));
  EXPECT_FALSE(meet->satisfiedBy(Version::parse("3.5")));
}

TEST(VersionConstraint, IntersectDisjointIsEmpty) {
  const auto a = VersionConstraint::parse("1.0:2.0");
  const auto b = VersionConstraint::parse("3.0:4.0");
  EXPECT_FALSE(a.intersect(b).has_value());
}

TEST(VersionConstraint, IntersectWithExact) {
  const auto range = VersionConstraint::parse("4.0:");
  const auto exact = VersionConstraint::parse("4.0.4");
  const auto meet = range.intersect(exact);
  ASSERT_TRUE(meet.has_value());
  EXPECT_TRUE(meet->satisfiedBy(Version::parse("4.0.4")));
  EXPECT_FALSE(meet->satisfiedBy(Version::parse("4.1")));
}

TEST(VersionConstraint, ToStringRoundTrip) {
  for (const char* text : {"1.2", "=1.2", "1.2:", ":1.9", "1.2:1.9", ""}) {
    EXPECT_EQ(VersionConstraint::parse(text).toString(), text) << text;
  }
}

}  // namespace
}  // namespace rebench
