// Executor-facing thread-pool contracts: FIFO dispatch, exception
// propagation through wait()/futures/groups, nested parallel regions,
// and the REBENCH_THREADS sizing policy.  The data-parallel loop tests
// live in tests/parallel/test_thread_pool.cpp; this file covers the
// guarantees the campaign executor leans on.
#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <future>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

namespace rebench {
namespace {

TEST(ThreadPoolOrder, SingleThreadPoolRunsFifo) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::mutex m;
  for (int i = 0; i < 32; ++i) {
    pool.submit([&order, &m, i] {
      std::lock_guard lock(m);
      order.push_back(i);
    });
  }
  pool.wait();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPoolErrors, WaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  try {
    pool.wait();
    FAIL() << "wait() should rethrow the task's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // The error is consumed: the pool is usable again afterwards.
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolErrors, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallelFor(pool, 0, 100,
                           [](std::size_t i) {
                             if (i == 37) throw std::runtime_error("index 37");
                           }),
               std::runtime_error);
}

TEST(ThreadPoolErrors, GroupErrorDoesNotLeakToOtherWaiters) {
  ThreadPool pool(2);
  TaskGroup failing(pool);
  TaskGroup healthy(pool);
  std::atomic<int> ok{0};
  failing.run([] { throw std::logic_error("group fault"); });
  healthy.run([&ok] { ok.fetch_add(1); });
  EXPECT_THROW(failing.wait(), std::logic_error);
  healthy.wait();  // must not rethrow the other group's error
  EXPECT_EQ(ok.load(), 1);
  pool.wait();  // plain wait() must not see group-owned errors either
}

TEST(ThreadPoolFutures, SubmitTaskReturnsValue) {
  ThreadPool pool(2);
  std::future<int> result = pool.submitTask([] { return 6 * 7; });
  EXPECT_EQ(result.get(), 42);
}

TEST(ThreadPoolFutures, SubmitTaskRoutesExceptionThroughFuture) {
  ThreadPool pool(2);
  std::future<int> result =
      pool.submitTask([]() -> int { throw std::runtime_error("via future"); });
  EXPECT_THROW(result.get(), std::runtime_error);
  pool.wait();  // a packaged_task exception must NOT surface here
}

TEST(ThreadPoolNesting, NestedParallelForFromWorkerCompletes) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  parallelFor(pool, 0, 4, [&](std::size_t) {
    parallelFor(pool, 0, 8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPoolNesting, GroupWaitFromInsideWorkerHelps) {
  // A worker that waits on a group it spawned must help drain the queue
  // rather than deadlock — even on a one-thread pool.
  ThreadPool pool(1);
  std::atomic<int> inner{0};
  TaskGroup outer(pool);
  outer.run([&pool, &inner] {
    TaskGroup nested(pool);
    for (int i = 0; i < 4; ++i) nested.run([&inner] { inner.fetch_add(1); });
    nested.wait();
  });
  outer.wait();
  EXPECT_EQ(inner.load(), 4);
}

TEST(ThreadPoolEnv, GlobalSizeParsesRebenchThreads) {
  // 0 means "host default": the ThreadPool constructor resolves it to
  // hardware_concurrency.
  ::setenv("REBENCH_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::globalSizeFromEnv(), 3u);
  ::setenv("REBENCH_THREADS", "0", 1);
  EXPECT_EQ(ThreadPool::globalSizeFromEnv(), 0u);
  ::setenv("REBENCH_THREADS", "not-a-number", 1);
  EXPECT_EQ(ThreadPool::globalSizeFromEnv(), 0u);
  ::unsetenv("REBENCH_THREADS");
  EXPECT_EQ(ThreadPool::globalSizeFromEnv(), 0u);
  ThreadPool resolved(ThreadPool::globalSizeFromEnv());
  EXPECT_GE(resolved.size(), 1u);
}

TEST(ThreadPoolLanes, WorkersSeeTheirLaneAndOutsidersSeeMinusOne) {
  // Off-pool threads (including the test body) have no lane.
  EXPECT_EQ(ThreadPool::currentLane(), -1);

  ThreadPool pool(4);
  std::mutex m;
  std::set<int> seen;
  for (int i = 0; i < 64; ++i) {
    pool.submit([&m, &seen] {
      const int lane = ThreadPool::currentLane();
      std::lock_guard lock(m);
      seen.insert(lane);
    });
  }
  pool.wait();
  // Observed lanes are worker indices, or -1 when the waiting caller
  // helped drain the queue (helpers keep their off-pool lane).
  ASSERT_FALSE(seen.empty());
  for (const int lane : seen) {
    EXPECT_GE(lane, -1);
    EXPECT_LT(lane, static_cast<int>(pool.size()));
  }
  // Still no lane once back outside the pool.
  EXPECT_EQ(ThreadPool::currentLane(), -1);
}

}  // namespace
}  // namespace rebench
