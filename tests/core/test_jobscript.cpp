// Job-script rendering (the Principle-5 artefact) and DataFrame::describe.
#include <gtest/gtest.h>

#include "core/sched/launcher.hpp"
#include "core/postproc/dataframe.hpp"
#include "core/sysconfig/system_config.hpp"
#include "core/util/strings.hpp"

namespace rebench {
namespace {

JobScriptRequest hpgmgRequest() {
  JobScriptRequest request;
  request.jobName = "HpgmgFvBenchmark";
  request.numTasks = 8;
  request.tasksPerNode = 2;
  request.cpusPerTask = 8;
  request.timeLimitSeconds = 3600.0;
  request.account = "ec999";
  request.moduleLoads = {"cray-mpich/8.1.23", "cray-python/3.10.12"};
  request.launchCommand =
      "srun --ntasks=8 --ntasks-per-node=2 --cpus-per-task=8 hpgmg-fv 7 8";
  return request;
}

TEST(JobScript, SlurmHeadersComplete) {
  const SystemRegistry systems = builtinSystems();
  const PartitionConfig& part = *systems.resolve("archer2").second;
  const std::string script = renderJobScript(part, hpgmgRequest());
  EXPECT_TRUE(str::startsWith(script, "#!/bin/bash\n"));
  EXPECT_TRUE(str::contains(script, "#SBATCH --nodes=4"));
  EXPECT_TRUE(str::contains(script, "#SBATCH --ntasks=8"));
  EXPECT_TRUE(str::contains(script, "#SBATCH --ntasks-per-node=2"));
  EXPECT_TRUE(str::contains(script, "#SBATCH --cpus-per-task=8"));
  EXPECT_TRUE(str::contains(script, "#SBATCH --time=01:00:00"));
  EXPECT_TRUE(str::contains(script, "#SBATCH --account=ec999"));
  EXPECT_TRUE(str::contains(script, "#SBATCH --qos=standard"));
  EXPECT_TRUE(str::contains(script, "module load cray-mpich/8.1.23"));
  EXPECT_TRUE(str::contains(script, "srun --ntasks=8"));
}

TEST(JobScript, PbsHeadersComplete) {
  const SystemRegistry systems = builtinSystems();
  const PartitionConfig& part =
      *systems.resolve("isambard-macs:cascadelake").second;
  JobScriptRequest request = hpgmgRequest();
  request.account.clear();
  const std::string script = renderJobScript(part, request);
  EXPECT_TRUE(str::contains(script, "#PBS -N HpgmgFvBenchmark"));
  EXPECT_TRUE(
      str::contains(script, "#PBS -l select=4:mpiprocs=2:ncpus=16"));
  EXPECT_TRUE(str::contains(script, "#PBS -l walltime=01:00:00"));
  EXPECT_FALSE(str::contains(script, "#PBS -A"));
}

TEST(JobScript, LocalHasNoSchedulerHeaders) {
  const SystemRegistry systems = builtinSystems();
  const PartitionConfig& part = *systems.resolve("local").second;
  const std::string script = renderJobScript(part, hpgmgRequest());
  EXPECT_FALSE(str::contains(script, "#SBATCH"));
  EXPECT_FALSE(str::contains(script, "#PBS"));
  EXPECT_TRUE(str::contains(script, "srun --ntasks=8"));  // launch preserved
}

TEST(JobScript, WalltimeFormatting) {
  const SystemRegistry systems = builtinSystems();
  const PartitionConfig& part = *systems.resolve("csd3").second;
  JobScriptRequest request = hpgmgRequest();
  request.timeLimitSeconds = 2.0 * 3600 + 34 * 60 + 56;
  EXPECT_TRUE(str::contains(renderJobScript(part, request),
                            "--time=02:34:56"));
}

TEST(DataFrameDescribe, SummarizesNumericColumnsOnly) {
  DataFrame frame;
  frame.addStrings("system", {"a", "b", "c", "d"});
  frame.addNumeric("value", {1.0, 2.0, 3.0, 4.0});
  frame.addNumeric("other", {10.0, 10.0, 10.0, 10.0});
  const DataFrame described = frame.describe();
  ASSERT_EQ(described.rowCount(), 2u);  // two numeric columns
  EXPECT_EQ(described.strings("column")[0], "value");
  EXPECT_DOUBLE_EQ(described.numeric("count")[0], 4.0);
  EXPECT_DOUBLE_EQ(described.numeric("mean")[0], 2.5);
  EXPECT_DOUBLE_EQ(described.numeric("min")[0], 1.0);
  EXPECT_DOUBLE_EQ(described.numeric("max")[0], 4.0);
  EXPECT_DOUBLE_EQ(described.numeric("median")[0], 2.5);
  EXPECT_DOUBLE_EQ(described.numeric("std")[1], 0.0);  // constant column
}

TEST(DataFrameDescribe, EmptyFrameYieldsEmptyDescription) {
  EXPECT_EQ(DataFrame{}.describe().rowCount(), 0u);
}

}  // namespace
}  // namespace rebench
