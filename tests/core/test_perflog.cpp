#include "core/framework/perflog.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/util/error.hpp"

namespace rebench {
namespace {

PerfLogEntry sampleEntry() {
  PerfLogEntry entry;
  entry.timestamp = "T42";
  entry.system = "archer2";
  entry.partition = "compute";
  entry.environ = "gcc@11.2.0";
  entry.testName = "HpgmgFvBenchmark";
  entry.spec = "hpgmg@0.4%gcc@11.2.0+fv";
  entry.specHash = "abcdefg";
  entry.binaryId = "0011223344556677";
  entry.jobId = "17";
  entry.fomName = "l0";
  entry.value = 95.36;
  entry.unit = Unit::kMDofPerSec;
  entry.reference = 95.0;
  entry.lowerThresh = -0.10;
  entry.upperThresh = 0.10;
  entry.result = "pass";
  entry.extras["num_tasks"] = "8";
  return entry;
}

TEST(PerfLogEntry, SerializeParseRoundTrip) {
  const PerfLogEntry original = sampleEntry();
  const PerfLogEntry parsed = PerfLogEntry::parse(original.serialize());
  EXPECT_EQ(parsed.timestamp, original.timestamp);
  EXPECT_EQ(parsed.system, original.system);
  EXPECT_EQ(parsed.partition, original.partition);
  EXPECT_EQ(parsed.environ, original.environ);
  EXPECT_EQ(parsed.testName, original.testName);
  EXPECT_EQ(parsed.spec, original.spec);
  EXPECT_EQ(parsed.specHash, original.specHash);
  EXPECT_EQ(parsed.fomName, original.fomName);
  EXPECT_NEAR(parsed.value, original.value, 1e-6);
  EXPECT_EQ(parsed.unit, original.unit);
  ASSERT_TRUE(parsed.reference.has_value());
  EXPECT_NEAR(*parsed.reference, 95.0, 1e-6);
  EXPECT_EQ(parsed.result, "pass");
  EXPECT_EQ(parsed.extras.at("num_tasks"), "8");
}

TEST(PerfLogEntry, SpecialCharactersEscape) {
  PerfLogEntry entry = sampleEntry();
  entry.extras["launch"] = "srun --ntasks=8 | tee out%log\nnext";
  const PerfLogEntry parsed = PerfLogEntry::parse(entry.serialize());
  EXPECT_EQ(parsed.extras.at("launch"), entry.extras.at("launch"));
  // The serialized line must stay single-line.
  EXPECT_EQ(entry.serialize().find('\n'), std::string::npos);
}

TEST(PerfLogEntry, MissingReferenceStaysAbsent) {
  PerfLogEntry entry = sampleEntry();
  entry.reference.reset();
  const PerfLogEntry parsed = PerfLogEntry::parse(entry.serialize());
  EXPECT_FALSE(parsed.reference.has_value());
}

TEST(PerfLogEntry, MalformedLineThrows) {
  EXPECT_THROW(PerfLogEntry::parse("not a perflog line"), ParseError);
  EXPECT_THROW(PerfLogEntry::parse("bogus_key=1"), ParseError);
}

TEST(PerfLog, InMemoryAppend) {
  PerfLog log;
  log.append(sampleEntry());
  log.append(sampleEntry());
  EXPECT_EQ(log.size(), 2u);
  const auto entries = PerfLog::parseLines(log.lines());
  EXPECT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].system, "archer2");
}

TEST(PerfLog, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "rebench_perflog_test.log")
          .string();
  std::remove(path.c_str());
  {
    PerfLog log(path);
    PerfLogEntry a = sampleEntry();
    log.append(a);
    a.fomName = "l1";
    a.value = 83.43;
    log.append(a);
  }
  const auto entries = PerfLog::readFile(path);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[1].fomName, "l1");
  EXPECT_NEAR(entries[1].value, 83.43, 1e-6);
  std::remove(path.c_str());
}

TEST(PerfLog, ReadMissingFileThrows) {
  EXPECT_THROW(PerfLog::readFile("/nonexistent/rebench.log"), Error);
}

}  // namespace
}  // namespace rebench
