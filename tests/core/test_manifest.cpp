// Layer-2 manifest tests: schema-versioned render/parse roundtrip,
// replay artifact comparison and the stale-artifact hygiene cross-check.
#include <gtest/gtest.h>

#include "core/postproc/hygiene.hpp"
#include "core/store/manifest.hpp"
#include "core/store/object_store.hpp"
#include "core/util/error.hpp"

namespace rebench::store {
namespace {

CampaignManifest sampleManifest() {
  CampaignManifest manifest;
  manifest.invocation.mode = "run";
  manifest.invocation.system = "noctua2";
  manifest.invocation.repeats = 2;
  manifest.invocation.benchmark = "babelstream";
  manifest.invocation.ntimes = 10;
  manifest.invocation.settings = {{"model", "omp"}};
  manifest.invocation.faults = "seed=7,crash=0.1";
  manifest.invocation.retries = 3;
  manifest.invocation.withStore = true;

  RunManifest run;
  run.test = "BabelstreamTest_omp";
  run.target = "noctua2:normal";
  run.repeat = 0;
  run.environ = "gcc@12.1.0";
  run.spec = "babelstream@4.0%gcc@12.1.0";
  run.specHash = "abc123";
  run.planHash = "def456";
  run.binaryId = "bin789";
  run.buildSteps = {"spack install babelstream", "module load gcc"};
  run.launchCommand = "srun -n 1 ./babelstream";
  run.jobId = "42";
  run.outcome = "pass";
  run.attempts = 2;
  manifest.runs.push_back(run);

  ArtifactRecord perflog;
  perflog.name = "perflog";
  perflog.hash = ObjectStore::hashBytes("line1\nline2\n");
  perflog.bytes = 12;
  manifest.artifacts.push_back(perflog);
  return manifest;
}

TEST(ManifestTest, RenderParseRoundtrip) {
  const CampaignManifest manifest = sampleManifest();
  const CampaignManifest parsed = CampaignManifest::parse(manifest.render());
  EXPECT_EQ(parsed.schema, kManifestSchema);
  EXPECT_EQ(parsed.invocation.mode, "run");
  EXPECT_EQ(parsed.invocation.system, "noctua2");
  EXPECT_EQ(parsed.invocation.repeats, 2);
  EXPECT_EQ(parsed.invocation.benchmark, "babelstream");
  EXPECT_EQ(parsed.invocation.ntimes, 10);
  ASSERT_EQ(parsed.invocation.settings.size(), 1u);
  EXPECT_EQ(parsed.invocation.settings[0].first, "model");
  EXPECT_EQ(parsed.invocation.settings[0].second, "omp");
  EXPECT_EQ(parsed.invocation.faults, "seed=7,crash=0.1");
  EXPECT_EQ(parsed.invocation.retries, 3);
  EXPECT_TRUE(parsed.invocation.withStore);
  EXPECT_TRUE(parsed.invocation.cache);

  ASSERT_EQ(parsed.runs.size(), 1u);
  const RunManifest& run = parsed.runs[0];
  EXPECT_EQ(run.test, "BabelstreamTest_omp");
  EXPECT_EQ(run.target, "noctua2:normal");
  EXPECT_EQ(run.specHash, "abc123");
  EXPECT_EQ(run.planHash, "def456");
  EXPECT_EQ(run.binaryId, "bin789");
  ASSERT_EQ(run.buildSteps.size(), 2u);
  EXPECT_EQ(run.buildSteps[0], "spack install babelstream");
  EXPECT_EQ(run.outcome, "pass");
  EXPECT_EQ(run.attempts, 2);

  ASSERT_EQ(parsed.artifacts.size(), 1u);
  EXPECT_EQ(parsed.artifacts[0].name, "perflog");
  EXPECT_EQ(parsed.artifacts[0].bytes, 12u);

  // Deterministic rendering: parse -> render is a fixed point.
  EXPECT_EQ(parsed.render(), manifest.render());
  EXPECT_EQ(parsed.contentHash(), manifest.contentHash());
}

TEST(ManifestTest, SchemaMismatchThrows) {
  CampaignManifest manifest = sampleManifest();
  manifest.schema = "rebench.manifest/999";
  EXPECT_THROW(CampaignManifest::parse(manifest.render()), Error);
}

TEST(ManifestTest, MalformedJsonThrows) {
  EXPECT_THROW(CampaignManifest::parse("{\"schema\":"), ParseError);
  EXPECT_THROW(CampaignManifest::parse("[1,2,3]"), ParseError);
}

TEST(ManifestTest, CompareArtifactsReportsDivergence) {
  CampaignManifest manifest;
  manifest.artifacts.push_back(
      {"perflog", ObjectStore::hashBytes("recorded bytes"), 14});
  manifest.artifacts.push_back(
      {"trace", ObjectStore::hashBytes("trace bytes"), 11});

  // Exact reproduction.
  const ReplayComparison exact = compareArtifacts(
      manifest,
      {{"perflog", "recorded bytes"}, {"trace", "trace bytes"}});
  EXPECT_TRUE(exact.allExact());
  const std::string exactReport = renderReplayReport(exact);
  EXPECT_NE(exactReport.find("2/2 artifact(s) byte-exact"),
            std::string::npos);

  // One artifact drifted, one was never regenerated.
  const ReplayComparison diverged =
      compareArtifacts(manifest, {{"perflog", "different bytes"}});
  EXPECT_FALSE(diverged.allExact());
  ASSERT_EQ(diverged.artifacts.size(), 1u);
  EXPECT_FALSE(diverged.artifacts[0].exact);
  ASSERT_EQ(diverged.missing.size(), 1u);
  EXPECT_EQ(diverged.missing[0], "trace");
  const std::string report = renderReplayReport(diverged);
  EXPECT_NE(report.find("DIVERGENT"), std::string::npos);
  EXPECT_NE(report.find("MISSING"), std::string::npos);
  EXPECT_NE(report.find("0/2 artifact(s) byte-exact"), std::string::npos);
}

PerfLogEntry entryWith(const std::string& binaryId,
                       const std::string& specHash) {
  PerfLogEntry entry;
  entry.system = "noctua2";
  entry.partition = "normal";
  entry.testName = "BabelstreamTest_omp";
  entry.fomName = "Triad";
  entry.value = 100.0;
  entry.result = "pass";
  entry.binaryId = binaryId;
  entry.specHash = specHash;
  return entry;
}

TEST(ManifestTest, StaleArtifactAuditFlagsMismatchedProvenance) {
  const CampaignManifest manifest = sampleManifest();

  // Matching provenance: clean.
  const std::vector<PerfLogEntry> fresh{entryWith("bin789", "abc123")};
  EXPECT_TRUE(auditAgainstManifest(fresh, manifest).empty());

  // A result carried over from an older build: stale.
  const std::vector<PerfLogEntry> stale{entryWith("oldbinary", "abc123")};
  const auto findings = auditAgainstManifest(stale, manifest);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, HygieneRule::kStaleArtifact);
  EXPECT_EQ(findings[0].subject, "BabelstreamTest_omp@noctua2:normal");
  EXPECT_NE(findings[0].detail.find("stale artifact"), std::string::npos);
  EXPECT_EQ(hygieneRuleName(HygieneRule::kStaleArtifact), "stale-artifact");

  // Spec-hash drift is stale too, even with a familiar binary id.
  const std::vector<PerfLogEntry> driftedSpec{entryWith("bin789", "zzz")};
  EXPECT_EQ(auditAgainstManifest(driftedSpec, manifest).size(), 1u);

  // Tuples the manifest never ran are out of scope.
  std::vector<PerfLogEntry> other{entryWith("whatever", "whatever")};
  other[0].testName = "SomeOtherTest";
  EXPECT_TRUE(auditAgainstManifest(other, manifest).empty());

  // Error entries are skipped (they carry no reportable result).
  std::vector<PerfLogEntry> errored{entryWith("oldbinary", "abc123")};
  errored[0].result = "error";
  EXPECT_TRUE(auditAgainstManifest(errored, manifest).empty());
}

}  // namespace
}  // namespace rebench::store
