// The trace profiling engine: canonical lane-schedule reconstruction,
// critical-path extraction with self/child attribution, Chrome trace
// export, and trace diffing — plus the contract that ties them to the
// campaign executor: the profile of a --jobs N trace is the same for
// every N, and its makespan matches the campaign report's.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/framework/pipeline.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/trace.hpp"
#include "core/obs/trace_reader.hpp"
#include "core/postproc/chrome_export.hpp"
#include "core/postproc/critical_path.hpp"
#include "core/postproc/profile.hpp"
#include "core/postproc/trace_report.hpp"
#include "core/util/error.hpp"
#include "core/util/strings.hpp"

namespace rebench::postproc {
namespace {

RegressionTest streamTest(std::string name, double runSeconds) {
  RegressionTest test;
  test.name = std::move(name);
  test.spackSpec = "stream%gcc";
  test.numTasks = 1;
  test.numTasksPerNode = 1;
  test.sanityPattern = "Solution Validates";
  test.perfPatterns = {{"Triad", R"(Triad:\s+([0-9.]+))", Unit::kMBperSec}};
  test.run = [runSeconds](const RunContext&) {
    return RunOutput{"Triad: 100000.0 MB/s\nSolution Validates\n",
                     runSeconds, false, ""};
  };
  return test;
}

/// Runs a three-test suite (distinct simulated durations) at `jobs`
/// workers / `lanes` profile lanes and returns the parsed trace.
obs::TraceFile campaignTrace(int jobs, int lanes, CampaignReport* report) {
  const SystemRegistry systems = builtinSystems();
  const PackageRepository repo = builtinRepository();
  PipelineOptions options;
  options.jobs = jobs;
  options.profileLanes = lanes;
  options.numRepeats = 2;
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  options.tracer = &tracer;
  options.metrics = &metrics;
  Pipeline pipeline(systems, repo, options);
  const std::vector<RegressionTest> tests{streamTest("ProfA", 8.0),
                                          streamTest("ProfB", 20.0),
                                          streamTest("ProfC", 3.0)};
  const std::vector<std::string> targets{"archer2"};
  pipeline.runAll(tests, targets, nullptr, nullptr, report);
  return obs::parseTraceJsonl(tracer.toJsonl(&metrics));
}

TEST(Profile, ScheduleMatchesCampaignReportWhenLanesEqualJobs) {
  CampaignReport report;
  const obs::TraceFile trace = campaignTrace(/*jobs=*/3, /*lanes=*/3,
                                             &report);
  const TraceProfile profile = profileTrace(trace);
  EXPECT_TRUE(profile.fromWorkerSpans);
  ASSERT_EQ(profile.units.size(), report.executed);
  // The stamps are str::fixed(.., 6), so the reconstruction agrees with
  // the report's full-precision greedy schedule to rounding.
  EXPECT_NEAR(profile.makespanSeconds, report.simulatedMakespanSeconds,
              1e-4);
  EXPECT_NEAR(profile.serialSeconds, report.simulatedSerialSeconds, 1e-4);
  ASSERT_EQ(profile.lanes.size(), 3u);
  double busy = 0.0;
  for (const LaneStats& lane : profile.lanes) {
    busy += lane.busySeconds;
    EXPECT_NEAR(lane.busySeconds + lane.idleSeconds,
                profile.makespanSeconds, 1e-9);
  }
  EXPECT_NEAR(busy, profile.serialSeconds, 1e-9);
}

TEST(Profile, ProfileIsIdenticalAcrossJobCounts) {
  CampaignReport r1, r8;
  const obs::TraceFile t1 = campaignTrace(/*jobs=*/1, /*lanes=*/4, &r1);
  const obs::TraceFile t8 = campaignTrace(/*jobs=*/8, /*lanes=*/4, &r8);
  const TraceProfile p1 = profileTrace(t1);
  const TraceProfile p8 = profileTrace(t8);
  EXPECT_EQ(renderProfile(p1), renderProfile(p8));
  EXPECT_EQ(profileJson(p1), profileJson(p8));
  EXPECT_EQ(renderChromeTrace(t1, p1), renderChromeTrace(t8, p8));
  const CriticalPathReport c1 = extractCriticalPath(t1, p1);
  const CriticalPathReport c8 = extractCriticalPath(t8, p8);
  EXPECT_EQ(renderCriticalPath(c1), renderCriticalPath(c8));
}

TEST(CriticalPath, LengthEqualsMakespanAndAttributionIsConsistent) {
  CampaignReport report;
  const obs::TraceFile trace = campaignTrace(/*jobs=*/2, /*lanes=*/2,
                                             &report);
  const TraceProfile profile = profileTrace(trace);
  const CriticalPathReport critical = extractCriticalPath(trace, profile);
  // The busiest lane has no idle gaps, so its chain *is* the makespan.
  EXPECT_DOUBLE_EQ(critical.lengthSeconds, profile.makespanSeconds);
  ASSERT_FALSE(critical.steps.empty());
  for (const CriticalPathReport::Step& step : critical.steps) {
    EXPECT_EQ(step.unit.lane, critical.lane);
    ASSERT_FALSE(step.attribution.empty());
    EXPECT_EQ(step.attribution.front().name, "exec.worker");
    for (const SpanAttribution& attr : step.attribution) {
      EXPECT_NEAR(attr.selfSeconds + attr.childSeconds, attr.totalSeconds,
                  1e-9);
      EXPECT_GE(attr.selfSeconds, 0.0);
    }
    // Dominant descent only ever goes deeper.
    for (std::size_t i = 1; i < step.attribution.size(); ++i) {
      EXPECT_EQ(step.attribution[i].depth,
                step.attribution[i - 1].depth + 1);
    }
  }
}

// ---- synthetic traces ----------------------------------------------------

/// One stamped exec.worker root with the given lane/sim_seconds.
void addWorkerSpan(obs::Tracer& tracer, const std::string& test, int lane,
                   double simSeconds, double blockedSeconds = 0.0) {
  const std::string id = tracer.beginSpan("exec.worker");
  tracer.setAttr("campaign", "0");
  tracer.setAttr("test", test);
  tracer.setAttr("target", "sys:part");
  tracer.setAttr("repeat", "0");
  if (blockedSeconds > 0.0) {
    tracer.beginSpan("store.singleflight");
    tracer.setAttr("key", "k");
    tracer.setAttr("role", "follower");
    tracer.clock().advance(blockedSeconds);
    tracer.endSpan();
  }
  tracer.clock().advance(simSeconds);
  tracer.endSpan();
  tracer.annotateCompleted(id, "lane", std::to_string(lane));
  tracer.annotateCompleted(id, "sim_seconds", str::fixed(simSeconds, 6));
}

TEST(Profile, ReplaysStampedLaneChainsAndBlockedTime) {
  obs::Tracer tracer;
  addWorkerSpan(tracer, "A", 0, 10.0);
  addWorkerSpan(tracer, "B", 1, 4.0, /*blockedSeconds=*/1.5);
  addWorkerSpan(tracer, "C", 0, 2.0);
  const obs::TraceFile trace = obs::parseTraceJsonl(tracer.toJsonl());
  const TraceProfile profile = profileTrace(trace);
  ASSERT_EQ(profile.units.size(), 3u);
  EXPECT_EQ(profile.units[0].label, "A@sys:part r0");
  EXPECT_DOUBLE_EQ(profile.units[0].start, 0.0);
  EXPECT_DOUBLE_EQ(profile.units[0].end, 10.0);
  EXPECT_DOUBLE_EQ(profile.units[2].start, 10.0);  // chains after A
  EXPECT_DOUBLE_EQ(profile.units[2].end, 12.0);
  EXPECT_DOUBLE_EQ(profile.makespanSeconds, 12.0);
  EXPECT_DOUBLE_EQ(profile.serialSeconds, 16.0);
  ASSERT_EQ(profile.lanes.size(), 2u);
  EXPECT_DOUBLE_EQ(profile.lanes[0].busySeconds, 12.0);
  EXPECT_DOUBLE_EQ(profile.lanes[1].busySeconds, 4.0);
  EXPECT_DOUBLE_EQ(profile.lanes[1].idleSeconds, 8.0);
  EXPECT_NEAR(profile.units[1].blockedSeconds, 1.5, 1e-5);

  const CriticalPathReport critical = extractCriticalPath(trace, profile);
  EXPECT_EQ(critical.lane, 0);
  EXPECT_EQ(critical.steps.size(), 2u);
  EXPECT_DOUBLE_EQ(critical.lengthSeconds, 12.0);
}

TEST(Profile, RunModeTracesFallBackToOneSequentialLane) {
  obs::Tracer tracer;
  for (const char* name : {"R0", "R1"}) {
    tracer.beginSpan("test_run");
    tracer.setAttr("test", name);
    tracer.setAttr("target", "sys:part");
    tracer.setAttr("repeat", "0");
    tracer.clock().advance(5.0);
    tracer.endSpan();
  }
  const obs::TraceFile trace = obs::parseTraceJsonl(tracer.toJsonl());
  const TraceProfile profile = profileTrace(trace);
  EXPECT_FALSE(profile.fromWorkerSpans);
  ASSERT_EQ(profile.units.size(), 2u);
  ASSERT_EQ(profile.lanes.size(), 1u);
  EXPECT_DOUBLE_EQ(profile.units[1].start, profile.units[0].end);
  EXPECT_NEAR(profile.makespanSeconds, 10.0, 1e-4);
}

TEST(Profile, RejectsWorkerSpansWithoutStampsAndEmptyTraces) {
  obs::Tracer unstamped;
  unstamped.beginSpan("exec.worker");
  unstamped.endSpan();
  EXPECT_THROW(
      profileTrace(obs::parseTraceJsonl(unstamped.toJsonl())), Error);

  obs::Tracer empty;
  empty.beginSpan("concretize");
  empty.endSpan();
  EXPECT_THROW(profileTrace(obs::parseTraceJsonl(empty.toJsonl())), Error);
}

// ---- chrome export -------------------------------------------------------

TEST(ChromeExport, EmitsBothProcessGroupsDeterministically) {
  obs::Tracer tracer;
  addWorkerSpan(tracer, "A", 0, 10.0);
  addWorkerSpan(tracer, "B", 1, 4.0);
  const obs::TraceFile trace = obs::parseTraceJsonl(tracer.toJsonl());
  const TraceProfile profile = profileTrace(trace);
  const std::string chrome = renderChromeTrace(trace, profile);
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("recorded timeline"), std::string::npos);
  EXPECT_NE(chrome.find("scheduled lanes"), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  // Durations are integer microseconds: lane 0's unit is 10 s.
  EXPECT_NE(chrome.find("\"dur\":10000000"), std::string::npos);
  EXPECT_EQ(chrome, renderChromeTrace(trace, profile));
}

// ---- trace diff ----------------------------------------------------------

TEST(TraceDiff, SelfDiffIsIdenticalWithZeroRegressions) {
  CampaignReport report;
  const obs::TraceFile trace = campaignTrace(/*jobs=*/2, /*lanes=*/2,
                                             &report);
  const TraceDiff diff = diffTraces(trace, trace, 0.05);
  EXPECT_TRUE(diff.identical());
  EXPECT_EQ(diff.regressions(), 0u);
  EXPECT_TRUE(diff.counters.empty());
  EXPECT_NE(renderDiff(diff).find("traces identical"), std::string::npos);
}

TEST(TraceDiff, FlagsDurationRegressionsAboveThresholdByNamePath) {
  auto makeTrace = [](double buildSeconds) {
    obs::Tracer tracer;
    tracer.beginSpan("test_run");
    tracer.beginSpan("build");
    tracer.clock().advance(buildSeconds);
    tracer.endSpan();
    tracer.beginSpan("run");
    tracer.clock().advance(5.0);
    tracer.endSpan();
    tracer.endSpan();
    return obs::parseTraceJsonl(tracer.toJsonl());
  };
  const obs::TraceFile a = makeTrace(10.0);
  const obs::TraceFile b = makeTrace(12.0);  // build 20% slower
  const TraceDiff diff = diffTraces(a, b, 0.05);
  EXPECT_FALSE(diff.identical());
  EXPECT_EQ(diff.regressions(), 2u);  // test_run/build and the root total
  bool sawBuild = false;
  for (const TraceDiff::PathDelta& delta : diff.paths) {
    if (delta.path == "test_run/build") {
      sawBuild = true;
      EXPECT_TRUE(delta.regression);
      EXPECT_NEAR(delta.totalA, 10.0, 1e-4);
      EXPECT_NEAR(delta.totalB, 12.0, 1e-4);
    }
    if (delta.path == "test_run/run") {
      EXPECT_FALSE(delta.regression);
    }
  }
  EXPECT_TRUE(sawBuild);
  // A 25% threshold tolerates the 20% growth.
  EXPECT_EQ(diffTraces(a, b, 0.25).regressions(), 0u);
  // Reversed, nothing grew: improvements are never regressions.
  EXPECT_EQ(diffTraces(b, a, 0.05).regressions(), 0u);
}

TEST(TraceDiff, ReportsNewPathsAndCounterDeltas) {
  obs::Tracer ta;
  ta.beginSpan("stage");
  ta.endSpan();
  obs::MetricsRegistry ma;
  ma.counter("runs").inc(2);

  obs::Tracer tb;
  tb.beginSpan("stage");
  tb.endSpan();
  tb.beginSpan("extra");
  tb.clock().advance(1.0);
  tb.endSpan();
  obs::MetricsRegistry mb;
  mb.counter("runs").inc(3);
  mb.counter("retries").inc(1);

  const TraceDiff diff =
      diffTraces(obs::parseTraceJsonl(ta.toJsonl(&ma)),
                 obs::parseTraceJsonl(tb.toJsonl(&mb)), 0.05);
  bool sawExtra = false;
  for (const TraceDiff::PathDelta& delta : diff.paths) {
    if (delta.path == "extra") {
      sawExtra = true;
      EXPECT_EQ(delta.countA, 0u);
      EXPECT_EQ(delta.countB, 1u);
      EXPECT_TRUE(delta.regression);  // appeared = regression
    }
  }
  EXPECT_TRUE(sawExtra);
  ASSERT_EQ(diff.counters.size(), 2u);  // sorted: retries, runs
  EXPECT_EQ(diff.counters[0].name, "retries");
  EXPECT_EQ(diff.counters[0].a, 0u);
  EXPECT_EQ(diff.counters[0].b, 1u);
  EXPECT_EQ(diff.counters[1].name, "runs");
}

// ---- shared JSON renderers ----------------------------------------------

TEST(ReportJson, StageAndMetricsFragmentsAreWellFormedAndShared) {
  CampaignReport report;
  const obs::TraceFile trace = campaignTrace(/*jobs=*/2, /*lanes=*/2,
                                             &report);
  const std::string stages = stageTableJson(trace);
  EXPECT_EQ(stages.front(), '[');
  EXPECT_EQ(stages.back(), ']');
  EXPECT_NE(stages.find("\"stage\":\"exec.worker\""), std::string::npos);
  const std::string metrics = metricsJson(trace);
  EXPECT_EQ(metrics.front(), '{');
  EXPECT_NE(metrics.find("\"counters\""), std::string::npos);
  const TraceProfile profile = profileTrace(trace);
  const std::string profileFragment = profileJson(profile);
  EXPECT_NE(profileFragment.find("\"makespan_s\""), std::string::npos);
  const std::string criticalFragment =
      criticalPathJson(extractCriticalPath(trace, profile));
  EXPECT_NE(criticalFragment.find("\"length_s\""), std::string::npos);
}

}  // namespace
}  // namespace rebench::postproc
