#include "core/util/hash.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace rebench {
namespace {

TEST(Hasher, DeterministicAcrossInstances) {
  Hasher a, b;
  a.update("babelstream").update(std::uint64_t{42});
  b.update("babelstream").update(std::uint64_t{42});
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.hex(), b.hex());
}

TEST(Hasher, OrderMatters) {
  Hasher ab, ba;
  ab.update("a").update("b");
  ba.update("b").update("a");
  EXPECT_NE(ab.digest(), ba.digest());
}

TEST(Hasher, ConcatenationAmbiguityAvoided) {
  Hasher split, joined;
  split.update("ab").update("c");
  joined.update("a").update("bc");
  EXPECT_NE(split.digest(), joined.digest());
}

TEST(Hasher, HexIsSixteenLowercaseChars) {
  const std::string hex = Hasher{}.update("x").hex();
  EXPECT_EQ(hex.size(), 16u);
  for (char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
}

TEST(Hasher, ShortHashIsSevenBase32Chars) {
  const std::string h = Hasher{}.update("hpgmg").shortHash();
  EXPECT_EQ(h.size(), 7u);
  for (char c : h) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '2' && c <= '7')) << c;
  }
}

TEST(Hasher, DoubleUpdatesDistinguishBitPatterns) {
  Hasher a, b;
  a.update(1.0);
  b.update(-1.0);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Fnv1a, FewCollisionsOnSmallKeySet) {
  std::set<std::uint64_t> digests;
  for (int i = 0; i < 1000; ++i) {
    digests.insert(fnv1a("key-" + std::to_string(i)));
  }
  EXPECT_EQ(digests.size(), 1000u);
}

}  // namespace
}  // namespace rebench
