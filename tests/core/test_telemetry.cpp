#include "core/framework/telemetry.hpp"

#include <gtest/gtest.h>

namespace rebench {
namespace {

const MachineModel& rome() { return builtinMachines().get("rome-7742"); }

TEST(Telemetry, SeriesCoversDuration) {
  const TelemetrySeries series =
      sampleTelemetry(rome(), {}, 30.0, "key", {.intervalSeconds = 1.0});
  EXPECT_GE(series.samples.size(), 30u);
  EXPECT_NEAR(series.duration(), 30.0, 1.01);
  EXPECT_DOUBLE_EQ(series.samples.front().timeSeconds, 0.0);
}

TEST(Telemetry, DeterministicPerKey) {
  const TelemetrySeries a = sampleTelemetry(rome(), {}, 10.0, "same");
  const TelemetrySeries b = sampleTelemetry(rome(), {}, 10.0, "same");
  const TelemetrySeries c = sampleTelemetry(rome(), {}, 10.0, "other");
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.samples[i].powerWatts, b.samples[i].powerWatts);
  }
  EXPECT_NE(a.samples[1].powerWatts, c.samples[1].powerWatts);
}

TEST(Telemetry, PowerBoundedByIdleAndTdp) {
  const TelemetrySeries series =
      sampleTelemetry(rome(), {.memoryIntensity = 1.0, .cpuIntensity = 1.0},
                      20.0, "power");
  for (const TelemetrySample& s : series.samples) {
    EXPECT_GE(s.powerWatts, rome().idlePowerWatts() * 0.9);
    EXPECT_LE(s.powerWatts, rome().maxPowerWatts() * 1.1);
  }
}

TEST(Telemetry, IdleJobDrawsLessThanBusyJob) {
  WorkloadProfile idle{.memoryIntensity = 0.05, .cpuIntensity = 0.05};
  WorkloadProfile busy{.memoryIntensity = 0.95, .cpuIntensity = 1.0};
  const double idleP =
      sampleTelemetry(rome(), idle, 20.0, "i").meanPowerWatts();
  const double busyP =
      sampleTelemetry(rome(), busy, 20.0, "b").meanPowerWatts();
  EXPECT_GT(busyP, 1.5 * idleP);
}

TEST(Telemetry, EnergyIsPowerTimesTime) {
  const TelemetrySeries series = sampleTelemetry(rome(), {}, 100.0, "e");
  const double joules = series.energyJoules();
  EXPECT_GT(joules, 0.0);
  // Energy ~ meanPower * duration within trapezoid edge effects.
  EXPECT_NEAR(joules, series.meanPowerWatts() * series.duration(),
              0.05 * joules);
}

TEST(Telemetry, UtilisationClamped) {
  WorkloadProfile overdriven{.memoryIntensity = 5.0, .cpuIntensity = 5.0};
  const TelemetrySeries series =
      sampleTelemetry(rome(), overdriven, 10.0, "clamp");
  for (const TelemetrySample& s : series.samples) {
    EXPECT_LE(s.cpuUtilisation, 1.0);
    EXPECT_LE(s.memoryBandwidthUtil, 1.0);
  }
}

TEST(Telemetry, ContentionFlagsFireOnBusySystems) {
  // A heavily-loaded shared system must show contended samples over a
  // long window; a quiet one far fewer.
  TelemetryOptions busy{.intervalSeconds = 1.0, .backgroundLoad = 0.9};
  TelemetryOptions quiet{.intervalSeconds = 1.0, .backgroundLoad = 0.0};
  const auto busySeries = sampleTelemetry(rome(), {}, 200.0, "busy", busy);
  const auto quietSeries =
      sampleTelemetry(rome(), {}, 200.0, "quiet", quiet);
  EXPECT_GT(contendedSamples(busySeries).size(),
            contendedSamples(quietSeries).size());
}

TEST(Telemetry, EmptySeriesSafe) {
  TelemetrySeries series;
  EXPECT_DOUBLE_EQ(series.energyJoules(), 0.0);
  EXPECT_DOUBLE_EQ(series.meanPowerWatts(), 0.0);
  EXPECT_DOUBLE_EQ(series.duration(), 0.0);
  EXPECT_TRUE(contendedSamples(series).empty());
}

TEST(Telemetry, ZeroDurationStillYieldsTwoSamples) {
  const TelemetrySeries series = sampleTelemetry(rome(), {}, 0.0, "z");
  EXPECT_GE(series.samples.size(), 2u);
}

}  // namespace
}  // namespace rebench
