#include "core/util/table.hpp"

#include <gtest/gtest.h>

#include "core/util/strings.hpp"

namespace rebench {
namespace {

TEST(AsciiTable, RendersHeaderSeparatorAndRows) {
  AsciiTable table("Table 2: HPCG variants");
  table.setHeader({"HPCG Variant", "Intel Cascade Lake", "AMD Rome"});
  table.addRow({"Original (CSR)", "24.0", "39.2"});
  table.addRow({"Matrix-free", "51.0", "124.2"});
  const std::string out = table.render();

  const auto lines = str::split(out, '\n');
  ASSERT_GE(lines.size(), 5u);
  EXPECT_EQ(lines[0], "Table 2: HPCG variants");
  EXPECT_TRUE(str::contains(lines[1], "HPCG Variant"));
  EXPECT_TRUE(lines[2].find_first_not_of('-') == std::string::npos);
  EXPECT_TRUE(str::contains(out, "24.0"));
  EXPECT_TRUE(str::contains(out, "124.2"));
}

TEST(AsciiTable, ColumnsAlign) {
  AsciiTable table;
  table.setHeader({"name", "value"});
  table.addRow({"a", "1"});
  table.addRow({"long-name", "100"});
  const auto lines = str::split(table.render(), '\n');
  // All non-separator lines are equally wide after right-padding of the
  // first column and right-alignment of the rest.
  EXPECT_EQ(lines[1].size(), lines[3].size());
}

TEST(AsciiTable, ValueColumnsRightAligned) {
  AsciiTable table;
  table.setHeader({"label", "value"});
  table.addRow({"x", "7"});
  table.addRow({"y", "1234"});
  const auto lines = str::split(table.render(), '\n');
  // "7" should end at the same column as "1234".
  EXPECT_EQ(lines[2].size(), lines[3].size());
  EXPECT_EQ(lines[2].back(), '7');
  EXPECT_EQ(lines[3].back(), '4');
}

TEST(AsciiTable, MissingCellsRenderEmpty) {
  AsciiTable table;
  table.setHeader({"a", "b", "c"});
  table.addRow({"only"});
  EXPECT_NO_THROW(table.render());
}

TEST(AsciiTable, NoHeaderNoSeparator) {
  AsciiTable table;
  table.addRow({"x", "y"});
  const std::string out = table.render();
  EXPECT_FALSE(str::contains(out, "---"));
}

TEST(AsciiTable, RowCount) {
  AsciiTable table;
  EXPECT_EQ(table.rowCount(), 0u);
  table.addRow({"x"});
  table.addRow({"y"});
  EXPECT_EQ(table.rowCount(), 2u);
}

}  // namespace
}  // namespace rebench
