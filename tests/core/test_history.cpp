// Unit tests for the longitudinal history subsystem: segment
// serialization, the hash-chained store-backed index (pinning, broken
// chains), FOM aggregation, changepoint detection, trend rendering and
// the regression gate.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/framework/pipeline.hpp"
#include "core/history/changepoint.hpp"
#include "core/history/history.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/trace.hpp"
#include "core/obs/trace_reader.hpp"
#include "core/store/object_store.hpp"
#include "core/util/error.hpp"

namespace rebench::history {
namespace {

namespace fs = std::filesystem;

HistoryRecord makeRecord(const std::string& test, const std::string& fom,
                         double mean) {
  HistoryRecord record;
  record.test = test;
  record.target = "archer2:compute";
  record.fom = fom;
  record.manifestHash = "0123456789abcdef";
  record.envFingerprint = "fedcba9876543210";
  record.specHash = "00ff00ff00ff00ff";
  record.mean = mean;
  record.min = mean - 1.0;
  record.max = mean + 1.0;
  record.repeats = 3;
  record.simTimestamp = 12.5;
  return record;
}

class HistoryIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("rebench-history-test-" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST(HistorySegmentTest, SerializeParseRoundTrip) {
  std::vector<HistoryRecord> records{makeRecord("StreamTest", "Triad", 100.5),
                                     makeRecord("StreamTest", "Copy", 90.25)};
  records[0].seq = 7;
  records[1].seq = 8;
  const std::string blob = serializeSegment(records, "cafecafecafecafe", 3, 7);
  std::string prev;
  std::uint64_t seq = 0;
  const auto parsed = parseSegment(blob, &prev, &seq);
  EXPECT_EQ(prev, "cafecafecafecafe");
  EXPECT_EQ(seq, 3u);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].seq, 7u);
  EXPECT_EQ(parsed[0].test, "StreamTest");
  EXPECT_EQ(parsed[0].fom, "Triad");
  EXPECT_EQ(parsed[0].manifestHash, "0123456789abcdef");
  EXPECT_EQ(parsed[0].envFingerprint, "fedcba9876543210");
  EXPECT_EQ(parsed[0].specHash, "00ff00ff00ff00ff");
  EXPECT_DOUBLE_EQ(parsed[0].mean, 100.5);
  EXPECT_DOUBLE_EQ(parsed[1].mean, 90.25);
  EXPECT_EQ(parsed[1].repeats, 3);
}

TEST(HistorySegmentTest, ParseRejectsWrongSchema) {
  EXPECT_THROW(parseSegment("{\"kind\":\"meta\",\"schema\":\"bogus/9\"}\n"),
               Error);
}

TEST(HistorySegmentTest, ParseRejectsMissingMeta) {
  EXPECT_THROW(parseSegment("{\"kind\":\"record\",\"seq\":0}\n"), Error);
}

TEST_F(HistoryIndexTest, AppendAssignsMonotoneSequenceAcrossSegments) {
  store::ObjectStore store(dir_);
  HistoryIndex index(store);
  EXPECT_EQ(index.appendSegment({}), "");
  std::vector<HistoryRecord> first{makeRecord("A", "Triad", 100.0),
                                   makeRecord("B", "Triad", 50.0)};
  std::vector<HistoryRecord> second{makeRecord("A", "Triad", 101.0)};
  const std::string h1 = index.appendSegment(first);
  const std::string h2 = index.appendSegment(second);
  EXPECT_NE(h1, "");
  EXPECT_NE(h2, h1);
  EXPECT_TRUE(store.pinned(h1));
  EXPECT_TRUE(store.pinned(h2));
  EXPECT_EQ(index.segmentCount(), 2u);

  const auto all = index.readAll();
  ASSERT_EQ(all.size(), 3u);
  for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i].seq, i);
  EXPECT_EQ(all[2].test, "A");
  EXPECT_DOUBLE_EQ(all[2].mean, 101.0);

  // The chain and its sequence numbering survive a reopen.
  store::ObjectStore reopened(dir_);
  HistoryIndex reopenedIndex(reopened);
  const auto again = reopenedIndex.readAll();
  ASSERT_EQ(again.size(), 3u);
  EXPECT_EQ(again[2].seq, 2u);
  const std::string h3 =
      reopenedIndex.appendSegment({{makeRecord("C", "Triad", 10.0)}});
  EXPECT_EQ(reopenedIndex.readAll().back().seq, 3u);
  EXPECT_TRUE(reopened.pinned(h3));
}

TEST_F(HistoryIndexTest, QueryFiltersByTestTargetAndFom) {
  store::ObjectStore store(dir_);
  HistoryIndex index(store);
  std::vector<HistoryRecord> records{makeRecord("A", "Triad", 1.0),
                                     makeRecord("A", "Copy", 2.0),
                                     makeRecord("B", "Triad", 3.0)};
  records[2].target = "noctua2:gpu";
  index.appendSegment(records);

  EXPECT_EQ(index.query("A").size(), 2u);
  EXPECT_EQ(index.query("A", "archer2:compute", "Copy").size(), 1u);
  EXPECT_EQ(index.query("", "noctua2:gpu").size(), 1u);
  EXPECT_EQ(index.query("", "", "Triad").size(), 2u);
  EXPECT_EQ(index.query("Missing").size(), 0u);
}

TEST_F(HistoryIndexTest, PinnedSegmentsSurviveEvictionAndUnpinnedBreak) {
  store::ObjectStore store(dir_, {.maxBytes = 4096});
  HistoryIndex index(store);
  const std::string h1 =
      index.appendSegment({{makeRecord("A", "Triad", 1.0)}});
  const std::string h2 =
      index.appendSegment({{makeRecord("A", "Triad", 2.0)}});
  // Pinned segments ride out pressure that evicts everything else.
  store.put(std::string(8192, 'x'));
  EXPECT_EQ(index.readAll().size(), 2u);

  // An unpinned middle segment is fair game — and its loss is loud.
  store.unpin(h1);
  store.put(std::string(8192, 'y'));
  EXPECT_FALSE(store.contains(h1));
  EXPECT_TRUE(store.contains(h2));
  EXPECT_THROW(index.readAll(), Error);
  try {
    index.readAll();
    FAIL() << "expected broken-chain error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(h1), std::string::npos);
  }
}

TEST_F(HistoryIndexTest, AppendAndQueryEmitContractCompliantSpans) {
  store::ObjectStore store(dir_);
  HistoryIndex index(store);
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  index.setObservability(&tracer, &metrics);
  index.appendSegment({{makeRecord("A", "Triad", 1.0),
                        makeRecord("B", "Copy", 2.0)}});
  index.query("A", "archer2:compute");

  ASSERT_EQ(tracer.spans().size(), 3u);
  EXPECT_EQ(tracer.spans()[0].name, "history.append");
  EXPECT_EQ(tracer.spans()[0].attrs.at("test"), "A");
  EXPECT_EQ(tracer.spans()[0].attrs.at("records"), "2");
  EXPECT_EQ(tracer.spans()[2].name, "history.query");
  EXPECT_EQ(tracer.spans()[2].attrs.at("fom"), "*");
  EXPECT_EQ(tracer.spans()[2].attrs.at("records"), "1");
  EXPECT_EQ(metrics.counter("history.append").value(), 2u);
  EXPECT_EQ(metrics.counter("history.query").value(), 1u);

  // The emitted trace satisfies the trace_lint span contract.
  const obs::TraceFile trace = obs::parseTraceJsonl(tracer.toJsonl(&metrics));
  EXPECT_TRUE(obs::lintTrace(trace).empty());
}

TEST(HistoryLintTest, HistorySpanMissingAttributesIsFlagged) {
  obs::Tracer tracer;
  tracer.beginSpan("history.append");
  tracer.setAttr("test", "A");  // target/fom/records missing
  tracer.endSpan();
  const obs::TraceFile trace = obs::parseTraceJsonl(tracer.toJsonl());
  EXPECT_FALSE(obs::lintTrace(trace).empty());
}

TEST(HistoryAggregateTest, AggregatesPerTestTargetFomInCanonicalOrder) {
  std::vector<TestRunResult> results(4);
  results[0].testName = "StreamTest";
  results[0].system = "archer2";
  results[0].partition = "compute";
  results[0].foms = {{"Triad", 100.0}, {"Copy", 80.0}};
  results[1] = results[0];
  results[1].foms = {{"Triad", 110.0}, {"Copy", 70.0}};
  results[2].testName = "HpcgTest";
  results[2].system = "noctua2";
  results[2].partition = "gpu";
  results[2].foms = {{"GFLOPs", 42.0}};
  results[3] = results[2];       // quarantined runs drop out
  results[3].quarantined = true;

  const auto aggregates = aggregateFoms(results);
  ASSERT_EQ(aggregates.size(), 3u);
  EXPECT_EQ(aggregates[0].test, "HpcgTest");
  EXPECT_EQ(aggregates[0].fom, "GFLOPs");
  EXPECT_EQ(aggregates[0].repeats, 1);
  EXPECT_EQ(aggregates[1].fom, "Copy");
  EXPECT_DOUBLE_EQ(aggregates[1].mean, 75.0);
  EXPECT_DOUBLE_EQ(aggregates[1].min, 70.0);
  EXPECT_DOUBLE_EQ(aggregates[1].max, 80.0);
  EXPECT_EQ(aggregates[2].fom, "Triad");
  EXPECT_DOUBLE_EQ(aggregates[2].mean, 105.0);
  EXPECT_EQ(aggregates[2].repeats, 2);
}

TEST(ChangepointTest, DetectsSeededMeanShiftOnce) {
  // A 6% drop: a partially-overlapping after-window shifts the mean by
  // only 2% / 4%, so the single flag lands exactly on the boundary.
  std::vector<double> series;
  for (int i = 0; i < 20; ++i) series.push_back(i < 12 ? 100.0 : 94.0);
  const auto flags = detectChangepoints(series, {});
  ASSERT_EQ(flags.size(), 1u);
  EXPECT_EQ(flags[0].index, 12u);
  EXPECT_LT(flags[0].shift, 0.0);
  EXPECT_DOUBLE_EQ(flags[0].meanBefore, 100.0);
  EXPECT_DOUBLE_EQ(flags[0].meanAfter, 94.0);
  // Deterministic: the same series always yields the same flags.
  const auto again = detectChangepoints(series, {});
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0].index, flags[0].index);
}

TEST(ChangepointTest, FlatAndNoisySeriesYieldNoFlags) {
  EXPECT_TRUE(detectChangepoints(std::vector<double>(16, 5.0), {}).empty());
  // Wobble below both the relative threshold and the sigma floor.
  std::vector<double> noisy;
  for (int i = 0; i < 16; ++i) noisy.push_back(100.0 + 0.5 * (i % 4));
  EXPECT_TRUE(detectChangepoints(noisy, {}).empty());
  EXPECT_TRUE(detectChangepoints(std::vector<double>{1.0, 2.0}, {}).empty());
}

TEST(ChangepointTest, RollingStatsAndSparkline) {
  const std::vector<double> values{2.0, 4.0, 6.0, 8.0};
  EXPECT_DOUBLE_EQ(rollingMean(values, 0, 3), 2.0);
  EXPECT_DOUBLE_EQ(rollingMean(values, 2, 3), 4.0);
  EXPECT_DOUBLE_EQ(rollingMean(values, 3, 2), 7.0);
  EXPECT_DOUBLE_EQ(rollingStddev(values, 0, 3), 0.0);
  EXPECT_NEAR(rollingStddev(values, 3, 2), 1.0, 1e-12);

  EXPECT_EQ(sparkline(std::vector<double>{1.0, 1.0, 1.0}), "+++");
  const std::string art = sparkline(values);
  ASSERT_EQ(art.size(), 4u);
  EXPECT_EQ(art.front(), ' ');
  EXPECT_EQ(art.back(), '@');
  EXPECT_TRUE(sparkline({}).empty());
}

TEST(ChangepointTest, SeriesShorterThanTwoWindowsYieldsNoFlags) {
  // A boundary needs a full `window` on each side, so anything shorter
  // than 2*window has no candidate boundary at all — even with a clear
  // regime shift inside it.
  const ChangepointOptions options;  // window = 3
  EXPECT_TRUE(detectChangepoints({}, options).empty());
  EXPECT_TRUE(
      detectChangepoints(std::vector<double>{100.0}, options).empty());
  EXPECT_TRUE(
      detectChangepoints(std::vector<double>(5, 100.0), options).empty());
  EXPECT_TRUE(detectChangepoints(
                  std::vector<double>{100.0, 100.0, 50.0, 50.0, 50.0},
                  options)
                  .empty());
}

TEST(ChangepointTest, ConstantSeriesNeverFlags) {
  // Identical values at any length: zero shift, zero stddev — the
  // detector must not divide by the zero noise floor or flag anything.
  for (const std::size_t n : {6u, 7u, 16u, 64u}) {
    EXPECT_TRUE(
        detectChangepoints(std::vector<double>(n, 42.0), {}).empty());
  }
}

TEST(ChangepointTest, SinglePointShiftAtFinalRecordCannotFlag) {
  // The newest record dropping alone cannot be flagged: the last full
  // after-window dilutes the one shifted point to a third of its
  // magnitude, below the relative threshold.  (That is the regression
  // gate's job — see HistoryGateTest — not the changepoint scan's.)
  std::vector<double> series(12, 100.0);
  series.back() = 94.0;
  EXPECT_TRUE(detectChangepoints(series, {}).empty());
}

TEST(HistoryRenderTest, TextViewShowsTrendTableAndChangepoints) {
  std::vector<HistoryRecord> records;
  for (int i = 0; i < 12; ++i) {
    auto record = makeRecord("StreamTest", "Triad", i < 8 ? 100.0 : 94.0);
    record.seq = static_cast<std::uint64_t>(i);
    records.push_back(record);
  }
  const std::string text = renderHistory(records, {});
  EXPECT_NE(text.find("== StreamTest @ archer2:compute · Triad (12 records)"),
            std::string::npos);
  EXPECT_NE(text.find("trend |"), std::string::npos);
  EXPECT_NE(text.find("roll_mean"), std::string::npos);
  EXPECT_NE(text.find("changepoint @ seq 8"), std::string::npos);
  EXPECT_EQ(text, renderHistory(records, {}));  // byte-deterministic

  const std::string json = renderHistory(records, {.json = true});
  EXPECT_NE(json.find("\"schema\":\"rebench.history/1\""), std::string::npos);
  EXPECT_NE(json.find("\"changepoint\":true"), std::string::npos);
  EXPECT_NE(json.find("\"changepoints\":[{\"index\":8"), std::string::npos);

  const std::string empty = renderHistory({}, {});
  EXPECT_NE(empty.find("no matching records"), std::string::npos);
}

TEST(HistoryGateTest, FlagsDropsBeyondThresholdOnly) {
  std::vector<HistoryRecord> records;
  for (double mean : {100.0, 102.0, 98.0, 100.0}) {
    records.push_back(makeRecord("A", "Triad", mean));
  }
  auto verdicts = checkRegression(records, {});
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_FALSE(verdicts[0].regression);
  EXPECT_FALSE(verdicts[0].insufficient);
  EXPECT_DOUBLE_EQ(verdicts[0].baseline, 100.0);
  EXPECT_DOUBLE_EQ(verdicts[0].latest, 100.0);

  records.push_back(makeRecord("A", "Triad", 80.0));
  verdicts = checkRegression(records, {});
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_TRUE(verdicts[0].regression);
  EXPECT_LT(verdicts[0].delta, -0.05);

  // An *improvement* of the same magnitude is not a regression.
  records.back().mean = 120.0;
  verdicts = checkRegression(records, {});
  EXPECT_FALSE(verdicts[0].regression);

  // A tighter window ignores older points.
  records.back().mean = 97.0;
  verdicts = checkRegression(records, {.window = 1, .threshold = 0.05});
  EXPECT_DOUBLE_EQ(verdicts[0].baseline, 100.0);
  EXPECT_FALSE(verdicts[0].regression);
}

TEST(HistoryGateTest, SingleRecordSeriesIsInsufficientNotFailing) {
  std::vector<HistoryRecord> records{makeRecord("A", "Triad", 100.0),
                                     makeRecord("B", "Triad", 50.0),
                                     makeRecord("B", "Triad", 30.0)};
  const auto verdicts = checkRegression(records, {});
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_TRUE(verdicts[0].insufficient);
  EXPECT_FALSE(verdicts[0].regression);
  EXPECT_TRUE(verdicts[1].regression);
}

}  // namespace
}  // namespace rebench::history
