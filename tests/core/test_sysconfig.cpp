#include "core/sysconfig/system_config.hpp"

#include <gtest/gtest.h>

#include "core/util/error.hpp"

namespace rebench {
namespace {

TEST(SystemRegistry, ContainsPaperSystems) {
  const SystemRegistry reg = builtinSystems();
  for (const char* name : {"archer2", "cosma8", "csd3", "isambard",
                           "isambard-macs", "noctua2", "local"}) {
    EXPECT_TRUE(reg.has(name)) << name;
  }
  EXPECT_FALSE(reg.has("summit"));
  EXPECT_THROW(reg.get("summit"), NotFoundError);
}

TEST(SystemRegistry, ResolveSystemColonPartition) {
  const SystemRegistry reg = builtinSystems();
  const auto [sys, part] = reg.resolve("isambard-macs:cascadelake");
  EXPECT_EQ(sys->name, "isambard-macs");
  EXPECT_EQ(part->name, "cascadelake");
  const auto [sys2, part2] = reg.resolve("isambard-macs:volta");
  EXPECT_EQ(part2->name, "volta");
  EXPECT_TRUE(part2->processor.isGpu);
}

TEST(SystemRegistry, ResolveDefaultsToFirstPartition) {
  const SystemRegistry reg = builtinSystems();
  const auto [sys, part] = reg.resolve("archer2");
  EXPECT_EQ(part->name, "compute");
}

TEST(SystemRegistry, ResolveUnknownPartitionThrows) {
  const SystemRegistry reg = builtinSystems();
  EXPECT_THROW(reg.resolve("archer2:gpu"), NotFoundError);
}

TEST(BuiltinSystems, ProcessorDetailsMatchTable5) {
  const SystemRegistry reg = builtinSystems();

  const auto& archer2 = reg.resolve("archer2").second->processor;
  EXPECT_EQ(archer2.coresPerSocket, 64);
  EXPECT_EQ(archer2.sockets, 2);
  EXPECT_DOUBLE_EQ(archer2.baseClockGhz, 2.25);

  const auto& tx2 = reg.resolve("isambard:xci").second->processor;
  EXPECT_EQ(tx2.coresPerSocket, 32);
  EXPECT_DOUBLE_EQ(tx2.baseClockGhz, 2.5);

  const auto& clx = reg.resolve("isambard-macs:cascadelake").second->processor;
  EXPECT_EQ(clx.coresPerSocket, 20);
  EXPECT_DOUBLE_EQ(clx.baseClockGhz, 2.1);

  const auto& csd3 = reg.resolve("csd3").second->processor;
  EXPECT_EQ(csd3.coresPerSocket, 28);

  const auto& milan = reg.resolve("noctua2").second->processor;
  EXPECT_EQ(milan.coresPerSocket, 64);
  EXPECT_DOUBLE_EQ(milan.baseClockGhz, 2.45);
}

TEST(BuiltinSystems, TotalCores) {
  const SystemRegistry reg = builtinSystems();
  EXPECT_EQ(reg.resolve("archer2").second->processor.totalCores(), 128);
  EXPECT_EQ(reg.resolve("isambard-macs:cascadelake")
                .second->processor.totalCores(),
            40);
}

TEST(BuiltinSystems, SchedulersAndLaunchersConfigured) {
  const SystemRegistry reg = builtinSystems();
  EXPECT_EQ(reg.resolve("archer2").second->scheduler, SchedulerKind::kSlurm);
  EXPECT_EQ(reg.resolve("archer2").second->launcher, LauncherKind::kSrun);
  EXPECT_EQ(reg.resolve("isambard").second->scheduler, SchedulerKind::kPbs);
  EXPECT_EQ(reg.resolve("local").second->scheduler, SchedulerKind::kLocal);
}

TEST(BuiltinSystems, Archer2RequiresAccount) {
  const SystemRegistry reg = builtinSystems();
  EXPECT_TRUE(reg.resolve("archer2").second->requiresAccount);
  EXPECT_FALSE(reg.resolve("local").second->requiresAccount);
}

TEST(BuiltinSystems, IsambardMacsOnlyHasGcc920) {
  // §3.1: "GCC compiler version used for Isambard-MACS:Volta is 9.2.0
  // since the build system has conflicts with newer versions".
  const SystemRegistry reg = builtinSystems();
  const auto& env = reg.get("isambard-macs").environment;
  auto best = env.bestCompiler("gcc", VersionConstraint::any());
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->version.toString(), "9.2.0");
}

TEST(BuiltinSystems, MachineModelsAssigned) {
  const SystemRegistry reg = builtinSystems();
  EXPECT_EQ(reg.resolve("archer2").second->machineModel, "rome-7742");
  EXPECT_EQ(reg.resolve("noctua2").second->machineModel, "milan-7763");
  EXPECT_EQ(reg.resolve("isambard-macs:volta").second->machineModel, "v100");
  EXPECT_TRUE(reg.resolve("local").second->machineModel.empty());
}

TEST(SystemEnvironment, BestCompilerPicksHighestSatisfying) {
  const SystemRegistry reg = builtinSystems();
  const auto& env = reg.get("archer2").environment;
  auto any = env.bestCompiler("gcc", VersionConstraint::any());
  ASSERT_TRUE(any.has_value());
  EXPECT_EQ(any->version.toString(), "11.2.0");
  auto old = env.bestCompiler("gcc", VersionConstraint::parse(":10"));
  ASSERT_TRUE(old.has_value());
  EXPECT_EQ(old->version.toString(), "10.3.0");
  EXPECT_FALSE(env.bestCompiler("gcc", VersionConstraint::parse("13:"))
                   .has_value());
  EXPECT_FALSE(env.bestCompiler("icx", VersionConstraint::any()).has_value());
}

TEST(SystemEnvironment, ExternalsNamedSortedBestFirst) {
  SystemEnvironment env;
  ExternalEntry older;
  older.name = "python";
  older.version = Version::parse("3.8.2");
  ExternalEntry newer;
  newer.name = "python";
  newer.version = Version::parse("3.10.12");
  env.externals = {older, newer};
  const auto found = env.externalsNamed("python");
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0]->version.toString(), "3.10.12");
}

}  // namespace
}  // namespace rebench
