#include "core/postproc/efficiency.hpp"

#include <gtest/gtest.h>

#include <array>

#include "core/util/error.hpp"

namespace rebench {
namespace {

TEST(Efficiency, Architectural) {
  // Figure 2's cell semantics: achieved Triad / Table-1 peak.
  EXPECT_NEAR(architecturalEfficiency(240.0, 282.0), 0.851, 1e-3);
  EXPECT_THROW(architecturalEfficiency(1.0, 0.0), Error);
}

TEST(Efficiency, Equation1FromTable2) {
  // E_I = Intel-avx2 / Original = 39.0 / 24.0 = 1.625.
  EXPECT_NEAR(applicationEfficiency(39.0, 24.0), 1.625, 1e-9);
  // E_A = Matrix-free / Original = 51.0 / 24.0 = 2.125.
  EXPECT_NEAR(applicationEfficiency(51.0, 24.0), 2.125, 1e-9);
  // AMD Rome: E_A = 124.2 / 39.2 = 3.168...
  EXPECT_NEAR(applicationEfficiency(124.2, 39.2), 3.168, 1e-3);
  EXPECT_THROW(applicationEfficiency(1.0, 0.0), Error);
}

TEST(PerformancePortability, HarmonicMean) {
  const std::array<std::optional<double>, 2> effs{0.5, 1.0};
  // Harmonic mean of {0.5, 1.0} = 2/(2+1) = 0.666...
  EXPECT_NEAR(performancePortability(effs), 2.0 / 3.0, 1e-12);
}

TEST(PerformancePortability, SinglePlatformIsItsEfficiency) {
  const std::array<std::optional<double>, 1> effs{0.8};
  EXPECT_NEAR(performancePortability(effs), 0.8, 1e-12);
}

TEST(PerformancePortability, UnsupportedPlatformZeroesMetric) {
  const std::array<std::optional<double>, 3> effs{0.9, std::nullopt, 0.8};
  EXPECT_DOUBLE_EQ(performancePortability(effs), 0.0);
}

TEST(PerformancePortability, EmptySetIsZero) {
  EXPECT_DOUBLE_EQ(performancePortability({}), 0.0);
}

TEST(PerformancePortability, BoundedByMinAndMax) {
  const std::array<std::optional<double>, 3> effs{0.3, 0.6, 0.9};
  const double pp = performancePortability(effs);
  EXPECT_GE(pp, 0.3);
  EXPECT_LE(pp, 0.9);
  // Harmonic mean <= arithmetic mean.
  EXPECT_LE(pp, (0.3 + 0.6 + 0.9) / 3.0);
}

TEST(AnalyzePortability, FullReport) {
  const std::array<EfficiencyObservation, 3> obs{
      EfficiencyObservation{"clx", 0.75},
      EfficiencyObservation{"tx2", std::nullopt},
      EfficiencyObservation{"v100", 0.95},
  };
  const PortabilityReport report = analyzePortability(obs);
  EXPECT_EQ(report.totalPlatforms, 3u);
  EXPECT_EQ(report.supportedPlatforms, 2u);
  EXPECT_DOUBLE_EQ(report.pp, 0.0);  // one unsupported platform
  EXPECT_DOUBLE_EQ(report.minEfficiency, 0.75);
  EXPECT_DOUBLE_EQ(report.maxEfficiency, 0.95);
}

TEST(AnalyzePortability, AllSupported) {
  const std::array<EfficiencyObservation, 2> obs{
      EfficiencyObservation{"a", 0.5},
      EfficiencyObservation{"b", 1.0},
  };
  const PortabilityReport report = analyzePortability(obs);
  EXPECT_NEAR(report.pp, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(report.supportedPlatforms, 2u);
}

}  // namespace
}  // namespace rebench
