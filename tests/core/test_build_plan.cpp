#include "core/pkg/build_plan.hpp"

#include <gtest/gtest.h>

#include "core/concretizer/concretizer.hpp"
#include "core/sysconfig/system_config.hpp"

namespace rebench {
namespace {

class BuildPlanFixture : public ::testing::Test {
 protected:
  BuildPlanFixture()
      : repo_(builtinRepository()), systems_(builtinSystems()) {}

  std::shared_ptr<const ConcreteSpec> concretize(std::string_view system,
                                                 std::string_view spec) {
    Concretizer c(repo_, systems_.get(system).environment);
    return c.concretize(Spec::parse(spec)).root;
  }

  PackageRepository repo_;
  SystemRegistry systems_;
};

TEST_F(BuildPlanFixture, DependenciesComeFirst) {
  const auto root = concretize("archer2", "hpgmg%gcc");
  const BuildPlan plan = makeBuildPlan(*root);
  ASSERT_GE(plan.steps.size(), 3u);  // mpi, python, hpgmg at least
  // The root is always the final step.
  EXPECT_EQ(plan.steps.back().packageName, "hpgmg");
  // Every dependency index precedes the root index.
  for (std::size_t i = 0; i + 1 < plan.steps.size(); ++i) {
    EXPECT_NE(plan.steps[i].packageName, "hpgmg");
  }
}

TEST_F(BuildPlanFixture, ExternalsRenderAsModuleLoads) {
  const auto root = concretize("archer2", "hpgmg%gcc");
  const BuildPlan plan = makeBuildPlan(*root);
  bool sawModuleLoad = false;
  for (const BuildStep& step : plan.steps) {
    if (step.external) {
      EXPECT_TRUE(step.command.starts_with("module load "));
      sawModuleLoad = true;
    } else {
      EXPECT_TRUE(step.command.starts_with("spack install "));
    }
  }
  EXPECT_TRUE(sawModuleLoad);
}

TEST_F(BuildPlanFixture, PlanHashStableAndSpecSensitive) {
  const auto a = concretize("archer2", "hpgmg%gcc");
  const auto b = concretize("archer2", "hpgmg%gcc");
  EXPECT_EQ(makeBuildPlan(*a).planHash(), makeBuildPlan(*b).planHash());

  const auto c = concretize("csd3", "hpgmg%gcc");
  EXPECT_NE(makeBuildPlan(*a).planHash(), makeBuildPlan(*c).planHash());
}

TEST_F(BuildPlanFixture, ScriptMentionsEveryStep) {
  const auto root = concretize("csd3", "hpgmg%gcc");
  const BuildPlan plan = makeBuildPlan(*root);
  const std::string script = plan.renderScript();
  for (const BuildStep& step : plan.steps) {
    EXPECT_NE(script.find(step.command), std::string::npos);
  }
  EXPECT_NE(script.find(plan.rootHash), std::string::npos);
}

TEST_F(BuildPlanFixture, RebuildEveryRunExecutesEveryStep) {
  const auto root = concretize("archer2", "babelstream +omp");
  const BuildPlan plan = makeBuildPlan(*root);
  Builder builder(/*rebuildEveryRun=*/true);
  const BuildRecord first = builder.build(plan);
  const BuildRecord second = builder.build(plan);
  EXPECT_EQ(first.stepsExecuted, static_cast<int>(plan.steps.size()));
  EXPECT_EQ(second.stepsExecuted, static_cast<int>(plan.steps.size()));
  // Principle 3 guarantees reproducibility: same plan, same binary.
  EXPECT_EQ(first.binaryId, second.binaryId);
  EXPECT_GT(first.buildSeconds, 0.0);
}

TEST_F(BuildPlanFixture, CachedBuilderSkipsSecondBuild) {
  const auto root = concretize("archer2", "babelstream +omp");
  const BuildPlan plan = makeBuildPlan(*root);
  Builder builder(/*rebuildEveryRun=*/false);
  const BuildRecord first = builder.build(plan);
  const BuildRecord second = builder.build(plan);
  EXPECT_GT(first.stepsExecuted, 0);
  EXPECT_EQ(second.stepsExecuted, 0);
  EXPECT_EQ(second.stepsReusedFromCache,
            static_cast<int>(plan.steps.size()));
  EXPECT_EQ(first.binaryId, second.binaryId);
}

TEST_F(BuildPlanFixture, DifferentSpecsDifferentBinaries) {
  Builder builder;
  const auto omp = concretize("archer2", "babelstream model=omp");
  const auto tbbSpec = concretize("noctua2", "babelstream model=tbb");
  const BuildRecord a = builder.build(makeBuildPlan(*omp));
  const BuildRecord b = builder.build(makeBuildPlan(*tbbSpec));
  EXPECT_NE(a.binaryId, b.binaryId);
}

TEST(SimulatedBuildCost, DeterministicAndBounded) {
  BuildStep step;
  step.specHash = "abcdefg";
  step.external = false;
  const double a = simulatedBuildCost(step);
  const double b = simulatedBuildCost(step);
  EXPECT_EQ(a, b);
  EXPECT_GE(a, 10.0);
  EXPECT_LE(a, 130.0);
  step.external = true;
  EXPECT_LT(simulatedBuildCost(step), 1.0);
}

}  // namespace
}  // namespace rebench
