#include "core/sched/launcher.hpp"

#include <gtest/gtest.h>

namespace rebench {
namespace {

Allocation makeAlloc(int tasks, int perNode, int cpus,
                     std::vector<int> nodes) {
  Allocation alloc;
  alloc.numTasks = tasks;
  alloc.tasksPerNode = perNode;
  alloc.cpusPerTask = cpus;
  alloc.nodeIds = std::move(nodes);
  return alloc;
}

TEST(RankLayout, BlockDistribution) {
  const auto layout = computeRankLayout(makeAlloc(8, 2, 8, {0, 1, 2, 3}));
  ASSERT_EQ(layout.size(), 8u);
  EXPECT_EQ(layout[0].nodeId, 0);
  EXPECT_EQ(layout[1].nodeId, 0);
  EXPECT_EQ(layout[2].nodeId, 1);
  EXPECT_EQ(layout[7].nodeId, 3);
  // Second rank on a node starts after the first rank's cpus.
  EXPECT_EQ(layout[0].firstCpu, 0);
  EXPECT_EQ(layout[1].firstCpu, 8);
  EXPECT_EQ(layout[1].numCpus, 8);
}

TEST(RankLayout, RanksAreSequential) {
  const auto layout = computeRankLayout(makeAlloc(5, 2, 1, {0, 1, 2}));
  for (int r = 0; r < 5; ++r) EXPECT_EQ(layout[r].rank, r);
}

TEST(LaunchCommand, SrunMatchesReFrameStyle) {
  const std::string cmd = renderLaunchCommand(
      LauncherKind::kSrun, makeAlloc(8, 2, 8, {0, 1, 2, 3}), "hpgmg-fv",
      {"7", "8"});
  EXPECT_EQ(cmd,
            "srun --ntasks=8 --ntasks-per-node=2 --cpus-per-task=8 "
            "hpgmg-fv 7 8");
}

TEST(LaunchCommand, MpirunUsesMapBy) {
  const std::string cmd = renderLaunchCommand(
      LauncherKind::kMpirun, makeAlloc(40, 40, 1, {0}), "xhpcg", {});
  EXPECT_NE(cmd.find("mpirun -np 40"), std::string::npos);
  EXPECT_NE(cmd.find("ppr:40:node"), std::string::npos);
}

TEST(LaunchCommand, AprunForPbs) {
  const std::string cmd = renderLaunchCommand(
      LauncherKind::kAprun, makeAlloc(64, 64, 1, {0}), "babelstream", {});
  EXPECT_NE(cmd.find("aprun -n 64 -N 64"), std::string::npos);
}

TEST(LaunchCommand, LocalIsBareExecutable) {
  const std::string cmd = renderLaunchCommand(
      LauncherKind::kLocal, makeAlloc(1, 1, 1, {0}), "quickstart",
      {"--n", "1000"});
  EXPECT_EQ(cmd, "quickstart --n 1000");
}

TEST(LauncherNames, AllKindsNamed) {
  EXPECT_EQ(launcherName(LauncherKind::kSrun), "srun");
  EXPECT_EQ(launcherName(LauncherKind::kMpirun), "mpirun");
  EXPECT_EQ(launcherName(LauncherKind::kAprun), "aprun");
  EXPECT_EQ(launcherName(LauncherKind::kLocal), "local");
  EXPECT_EQ(schedulerName(SchedulerKind::kSlurm), "slurm");
  EXPECT_EQ(schedulerName(SchedulerKind::kPbs), "pbs");
  EXPECT_EQ(schedulerName(SchedulerKind::kLocal), "local");
}

}  // namespace
}  // namespace rebench
