// Continuous-benchmarking daemon tests (ISSUE 7): spool-dir queue
// semantics, the write-ahead service journal, run-level memoization,
// crash-resume at every journal checkpoint, watchdogs, quarantine and
// degraded mode — all in-process via an injected synthetic TestResolver.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/fault/watchdog.hpp"
#include "core/framework/pipeline.hpp"
#include "core/history/history.hpp"
#include "core/obs/trace.hpp"
#include "core/obs/trace_reader.hpp"
#include "core/service/journal.hpp"
#include "core/service/queue.hpp"
#include "core/service/record.hpp"
#include "core/service/service.hpp"
#include "core/store/object_store.hpp"
#include "core/store/run_cache.hpp"
#include "core/util/error.hpp"

namespace rebench::service {
namespace {

namespace fs = std::filesystem;

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

RegressionTest syntheticTest(const std::string& name = "SyntheticTest") {
  RegressionTest test;
  test.name = name;
  test.spackSpec = "stream";
  test.numTasks = 1;
  test.numTasksPerNode = 1;
  test.sanityPattern = "RESULT OK";
  test.perfPatterns = {{"rate", R"(rate\s+([0-9.]+))", Unit::kGBperSec}};
  test.run = [](const RunContext&) {
    return RunOutput{"RESULT OK\nrate 123.5 GB/s\n", 2.0};
  };
  return test;
}

/// A fixture owning scratch queue/store directories plus the registries
/// the daemon needs; makeOptions()/makeService() wire a resolver that
/// always returns the synthetic test.
class ServiceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string stem =
        "rebench-service-test-" + std::string(::testing::UnitTest::GetInstance()
                                                  ->current_test_info()
                                                  ->name());
    root_ = (fs::temp_directory_path() / stem).string();
    fs::remove_all(root_);
    queue_ = root_ + "/queue";
    store_ = root_ + "/store";
    systems_ = builtinSystems();
    repo_ = builtinRepository();
  }
  void TearDown() override { fs::remove_all(root_); }

  store::CampaignInvocation invocation(const std::string& benchmark = "synthetic") {
    store::CampaignInvocation inv;
    inv.mode = "run";
    inv.system = "archer2";
    inv.benchmark = benchmark;
    inv.repeats = 2;
    inv.withStore = true;
    return inv;
  }

  ServeOptions makeOptions() {
    ServeOptions options;
    options.queueDir = queue_;
    options.storeDir = store_;
    options.once = true;
    return options;
  }

  ServeReport serve(ServeOptions options) {
    Service daemon(systems_, repo_, std::move(options),
                   [](const store::CampaignInvocation&) {
                     return std::vector<RegressionTest>{syntheticTest()};
                   });
    return daemon.run();
  }

  std::string root_;
  std::string queue_;
  std::string store_;
  SystemRegistry systems_;
  PackageRepository repo_;
};

// ---------------------------------------------------------------- queue

TEST_F(ServiceFixture, EnqueueIsIdempotentByContentHash) {
  const Submission first = enqueueSubmission(queue_, invocation());
  const Submission second = enqueueSubmission(queue_, invocation());
  EXPECT_EQ(first.id, second.id);
  EXPECT_EQ(first.path, second.path);
  const auto scanned = scanQueue(queue_);
  ASSERT_EQ(scanned.size(), 1u);
  EXPECT_TRUE(scanned[0].valid);
  EXPECT_EQ(scanned[0].id, first.id);
  EXPECT_EQ(scanned[0].invocation.benchmark, "synthetic");
  EXPECT_EQ(scanned[0].invocation.repeats, 2);
}

TEST_F(ServiceFixture, ScanFlagsTamperedSubmissions) {
  const Submission sub = enqueueSubmission(queue_, invocation());
  std::ofstream(sub.path, std::ios::app) << "tampered\n";
  const auto scanned = scanQueue(queue_);
  ASSERT_EQ(scanned.size(), 1u);
  EXPECT_FALSE(scanned[0].valid);
  EXPECT_NE(scanned[0].error.find("hash"), std::string::npos);
}

TEST_F(ServiceFixture, VerdictSerializationRoundtrips) {
  Verdict verdict;
  verdict.submission = "abc123";
  verdict.verdict = "ran:regressed";
  verdict.key = "deadbeef";
  verdict.manifestHash = "cafe1234";
  verdict.degraded = true;
  verdict.detail = "1 series regressed";
  const Verdict parsed = Verdict::parse(verdict.serialize());
  EXPECT_EQ(parsed.submission, verdict.submission);
  EXPECT_EQ(parsed.verdict, verdict.verdict);
  EXPECT_EQ(parsed.key, verdict.key);
  EXPECT_EQ(parsed.manifestHash, verdict.manifestHash);
  EXPECT_EQ(parsed.degraded, verdict.degraded);
  EXPECT_EQ(parsed.detail, verdict.detail);
}

// ------------------------------------------------------------ run cache

TEST_F(ServiceFixture, RunRecordRoundtripsAndRejectsWrongSchema) {
  store::RunRecord record;
  record.key = "k1";
  record.verdict = "ran:clean";
  record.manifestHash = "m1";
  record.perflogHash = "p1";
  record.runs = 4;
  record.regressions = 1;
  const store::RunRecord parsed = store::RunRecord::parse(record.serialize());
  EXPECT_EQ(parsed.key, "k1");
  EXPECT_EQ(parsed.verdict, "ran:clean");
  EXPECT_EQ(parsed.manifestHash, "m1");
  EXPECT_EQ(parsed.perflogHash, "p1");
  EXPECT_EQ(parsed.runs, 4);
  EXPECT_EQ(parsed.regressions, 1);
  EXPECT_THROW(store::RunRecord::parse("{\"schema\":\"bogus/9\"}"),
               rebench::Error);
}

TEST_F(ServiceFixture, RunCacheDistinguishesMissHitAndStale) {
  store::ObjectStore objects(store_);
  store::RunCache cache(objects);
  EXPECT_EQ(cache.lookup("nope").outcome, store::RunCache::Outcome::kMiss);

  // A record citing a manifest that exists on disk is a hit...
  store::RunRecord record;
  record.key = "k1";
  record.verdict = "ran:clean";
  record.manifestHash = "feedface";
  fs::create_directories(objects.dir() + "/manifests");
  std::ofstream(objects.dir() + "/manifests/campaign-feedface.json") << "{}";
  cache.insert(record);
  const auto hit = cache.lookup("k1");
  ASSERT_TRUE(hit.hit());
  EXPECT_EQ(hit.record->manifestHash, "feedface");

  // ...and turns stale once the cited manifest disappears.
  fs::remove(objects.dir() + "/manifests/campaign-feedface.json");
  EXPECT_EQ(cache.lookup("k1").outcome, store::RunCache::Outcome::kStale);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().stale, 1u);
}

// -------------------------------------------------------------- journal

TEST_F(ServiceFixture, ServiceJournalReplaysStateAcrossReopen) {
  fs::create_directories(queue_);
  {
    ServiceJournal journal(queue_);
    journal.recordClaim("s1", "key1");
    ExecutedRecord outcome;
    outcome.key = "key1";
    outcome.manifestHash = "m1";
    outcome.simSeconds = 0.1 + 0.2;  // exercise exact double round-trip
    outcome.aggregates.push_back(
        {"T", "archer2", "rate", "spec1", 123.456789012345, 120.0, 125.0, 2});
    journal.recordExecuted("s1", outcome);
  }
  {
    ServiceJournal journal(queue_);
    EXPECT_EQ(journal.state("s1"), ServiceJournal::State::kExecuted);
    const ExecutedRecord* outcome = journal.executed("s1");
    ASSERT_NE(outcome, nullptr);
    EXPECT_EQ(outcome->manifestHash, "m1");
    EXPECT_EQ(outcome->simSeconds, 0.1 + 0.2);  // bit-exact, not approx
    ASSERT_EQ(outcome->aggregates.size(), 1u);
    EXPECT_EQ(outcome->aggregates[0].mean, 123.456789012345);
    VerdictRecord verdict{"ran:clean", "key1", "m1", false, ""};
    journal.recordVerdict("s1", verdict);
    journal.recordDone("s1");
  }
  ServiceJournal journal(queue_);
  EXPECT_EQ(journal.state("s1"), ServiceJournal::State::kDone);
  EXPECT_EQ(journal.crashedClaims("s1"), 0);
}

TEST_F(ServiceFixture, ServiceJournalCountsCrashedClaims) {
  fs::create_directories(queue_);
  { ServiceJournal journal(queue_); journal.recordClaim("s1", "k"); }
  { ServiceJournal journal(queue_); journal.recordClaim("s1", "k"); }
  ServiceJournal journal(queue_);
  EXPECT_EQ(journal.crashedClaims("s1"), 2);
  EXPECT_EQ(journal.state("s1"), ServiceJournal::State::kClaimed);
}

TEST_F(ServiceFixture, ServiceJournalTruncatesTornTail) {
  fs::create_directories(queue_);
  { ServiceJournal journal(queue_); journal.recordClaim("s1", "k"); }
  // Simulate a crash mid-append: a torn, unparseable final line.
  std::ofstream(ServiceJournal::pathFor(queue_), std::ios::app)
      << "{\"kind\":\"executed\",\"subm";
  ServiceJournal journal(queue_);
  EXPECT_EQ(journal.corruptLines(), 1u);
  EXPECT_EQ(journal.state("s1"), ServiceJournal::State::kClaimed);
  // The rewrite dropped the torn tail: a fresh replay sees a clean file.
  ServiceJournal again(queue_);
  EXPECT_EQ(again.corruptLines(), 0u);
}

TEST_F(ServiceFixture, FormatExactRoundtripsDoubles) {
  for (const double value : {0.1, 1.0 / 3.0, 123456.789012345, 2.5e-17}) {
    EXPECT_EQ(std::stod(formatExact(value)), value);
  }
}

// ------------------------------------------------------- serve semantics

TEST_F(ServiceFixture, ServeExecutesThenAnswersFromRunCache) {
  enqueueSubmission(queue_, invocation());
  const ServeReport first = serve(makeOptions());
  EXPECT_EQ(first.processed, 1);
  EXPECT_EQ(first.executed, 1);
  EXPECT_EQ(first.clean, 1);
  EXPECT_EQ(first.cached, 0);

  const ServeReport second = serve(makeOptions());
  EXPECT_EQ(second.processed, 1);
  EXPECT_EQ(second.executed, 0);
  EXPECT_EQ(second.cached, 1);

  // The cached pass appended nothing: history still holds one campaign.
  store::ObjectStore objects(store_);
  history::HistoryIndex index(objects);
  EXPECT_EQ(index.readAll().size(), 1u);

  const auto scanned = scanQueue(queue_);
  ASSERT_EQ(scanned.size(), 1u);
  const Verdict verdict =
      Verdict::parse(readFile(verdictPath(queue_, scanned[0].id)));
  EXPECT_EQ(verdict.verdict, "cached");
  EXPECT_FALSE(verdict.degraded);
}

TEST_F(ServiceFixture, CrashResumeConvergesAtEveryCheckpoint) {
  for (const std::string checkpoint : {"claim", "executed", "verdict"}) {
    SCOPED_TRACE(checkpoint);
    const std::string controlQueue = root_ + "/cq-" + checkpoint;
    const std::string controlStore = root_ + "/cs-" + checkpoint;
    const std::string crashQueue = root_ + "/xq-" + checkpoint;
    const std::string crashStore = root_ + "/xs-" + checkpoint;
    const Submission sub = enqueueSubmission(controlQueue, invocation());
    enqueueSubmission(crashQueue, invocation());

    ServeOptions control = makeOptions();
    control.queueDir = controlQueue;
    control.storeDir = controlStore;
    const ServeReport controlReport = serve(control);
    EXPECT_EQ(controlReport.executed, 1);

    ServeOptions crash = makeOptions();
    crash.queueDir = crashQueue;
    crash.storeDir = crashStore;
    crash.crashAfter = checkpoint;
    const ServeReport crashed = serve(crash);
    EXPECT_TRUE(crashed.crashed);

    ServeOptions resume = makeOptions();
    resume.queueDir = crashQueue;
    resume.storeDir = crashStore;
    const ServeReport resumed = serve(resume);
    EXPECT_FALSE(resumed.crashed);
    // Exactly-once: only a crash before 'executed' may re-run the
    // campaign in the resume pass.
    EXPECT_EQ(resumed.executed, checkpoint == "claim" ? 1 : 0);
    EXPECT_EQ(resumed.clean, 1);

    // Verdict bytes and history bytes converge on the control's.
    EXPECT_EQ(readFile(verdictPath(crashQueue, sub.id)),
              readFile(verdictPath(controlQueue, sub.id)));
    store::ObjectStore controlObjects(controlStore);
    store::ObjectStore crashObjects(crashStore);
    const auto controlHistory =
        history::HistoryIndex(controlObjects).readAll();
    const auto crashHistory = history::HistoryIndex(crashObjects).readAll();
    ASSERT_EQ(controlHistory.size(), 1u);
    ASSERT_EQ(crashHistory.size(), 1u);
    EXPECT_EQ(crashHistory[0].mean, controlHistory[0].mean);
    EXPECT_EQ(crashHistory[0].manifestHash, controlHistory[0].manifestHash);
  }
}

TEST_F(ServiceFixture, RepeatedCrashLoopsQuarantineTheSubmission) {
  const Submission sub = enqueueSubmission(queue_, invocation());
  for (int i = 0; i < 2; ++i) {
    ServeOptions options = makeOptions();
    options.crashAfter = "claim";
    EXPECT_TRUE(serve(std::move(options)).crashed);
  }
  ServeOptions options = makeOptions();
  options.quarantineAfter = 2;
  const ServeReport report = serve(std::move(options));
  EXPECT_EQ(report.quarantined, 1);
  EXPECT_EQ(report.executed, 0);
  const Verdict verdict =
      Verdict::parse(readFile(verdictPath(queue_, sub.id)));
  EXPECT_EQ(verdict.verdict, "failed:quarantined");
}

TEST_F(ServiceFixture, MalformedSubmissionGetsPermanentFailureVerdict) {
  const Submission sub = enqueueSubmission(queue_, invocation());
  std::ofstream(sub.path, std::ios::app) << "tampered\n";
  const ServeReport report = serve(makeOptions());
  EXPECT_EQ(report.malformed, 1);
  EXPECT_EQ(report.failed, 1);
  EXPECT_EQ(report.executed, 0);
  const Verdict verdict =
      Verdict::parse(readFile(verdictPath(queue_, sub.id)));
  EXPECT_EQ(verdict.verdict, "failed:permanent");
}

TEST_F(ServiceFixture, DrainSentinelStopsBeforeProcessing) {
  enqueueSubmission(queue_, invocation());
  requestDrain(queue_);
  const ServeReport report = serve(makeOptions());
  EXPECT_TRUE(report.drained);
  EXPECT_EQ(report.processed, 0);
  EXPECT_EQ(report.queueDepth, 1);
  const std::string health = readFile(queue_ + "/health.json");
  EXPECT_NE(health.find("rebench.serve_health/1"), std::string::npos);
  EXPECT_NE(health.find("\"drained\":true"), std::string::npos);
  clearDrainRequest(queue_);
  EXPECT_EQ(serve(makeOptions()).executed, 1);
}

TEST_F(ServiceFixture, ShutdownRequestActsLikeDrain) {
  enqueueSubmission(queue_, invocation());
  Service::requestShutdown();  // cleared when run() starts
  EXPECT_EQ(serve(makeOptions()).executed, 1);
}

TEST_F(ServiceFixture, BrokenHistoryHeadDegradesButStillExecutes) {
  enqueueSubmission(queue_, invocation());
  EXPECT_EQ(serve(makeOptions()).clean, 1);
  {  // Corrupt the head segment blob: the verified read fails, so the
    // history chain is unreadable at append/gate time.
    store::ObjectStore objects(store_);
    const auto head = objects.ref(history::kHeadRef);
    ASSERT_TRUE(head.has_value());
    std::ofstream(objects.objectPath(*head), std::ios::binary) << "garbage";
  }
  const Submission fresh = enqueueSubmission(queue_, invocation("other"));
  const ServeReport report = serve(makeOptions());
  EXPECT_EQ(report.executed, 1);
  EXPECT_EQ(report.degraded, 1);
  const Verdict verdict =
      Verdict::parse(readFile(verdictPath(queue_, fresh.id)));
  EXPECT_TRUE(verdict.degraded);
  EXPECT_EQ(verdict.verdict, "ran:clean");

  // Degraded outcomes are never memoized: with the corrupt segment
  // disposed of (the store deleted it on the failed read) the history
  // is healthy again, so the submission re-executes — this time with
  // full guarantees — instead of serving stale degraded state.
  const ServeReport again = serve(makeOptions());
  EXPECT_EQ(again.executed, 1);
  EXPECT_EQ(again.cached, 1);  // the first submission stays memoized
  EXPECT_EQ(again.degraded, 0);
}

TEST_F(ServiceFixture, SubmissionWatchdogClassifiesSlowCampaigns) {
  enqueueSubmission(queue_, invocation());
  ServeOptions options = makeOptions();
  options.submissionTimeout = 0.001;  // simulated seconds — trivially blown
  const ServeReport report = serve(std::move(options));
  EXPECT_EQ(report.failed, 1);
  EXPECT_GE(report.watchdogFires, 1);
  const auto scanned = scanQueue(queue_);
  const Verdict verdict =
      Verdict::parse(readFile(verdictPath(queue_, scanned[0].id)));
  EXPECT_EQ(verdict.verdict, "failed:infrastructure");
  EXPECT_NE(verdict.detail.find("watchdog"), std::string::npos);
}

TEST_F(ServiceFixture, ServeTraceLintsClean) {
  enqueueSubmission(queue_, invocation());
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  ServeOptions options = makeOptions();
  options.tracer = &tracer;
  options.metrics = &metrics;
  serve(std::move(options));
  serve([&] {  // second pass exercises the store.runcache hit span
    ServeOptions cached = makeOptions();
    cached.tracer = &tracer;
    cached.metrics = &metrics;
    return cached;
  }());
  const std::string bytes = tracer.toJsonl(&metrics);
  EXPECT_NE(bytes.find("serve.submission"), std::string::npos);
  EXPECT_NE(bytes.find("store.runcache"), std::string::npos);
  const std::vector<std::string> problems =
      obs::lintTrace(obs::parseTraceJsonl(bytes));
  EXPECT_TRUE(problems.empty())
      << (problems.empty() ? "" : problems.front());
}

// ------------------------------------------------- pipeline watchdog

TEST_F(ServiceFixture, PipelineStageTimeoutIsInfrastructureFailure) {
  PipelineOptions options;
  // Deadline on the run stage only (the synthetic run takes 2 simulated
  // seconds); the build stage keeps its own budget.
  options.watchdog.stageOverrides["run"] = 1.0;
  Pipeline pipeline(systems_, repo_, options);
  const TestRunResult result = pipeline.runOne(syntheticTest(), "archer2");
  EXPECT_FALSE(result.passed);
  EXPECT_EQ(result.failure.stage, "run");
  EXPECT_EQ(result.failure.klass, FailureClass::kInfrastructure);
  EXPECT_NE(result.failure.detail.find("watchdog"), std::string::npos);
}

TEST_F(ServiceFixture, StageTimeoutFlowsFromInvocationToVerdict) {
  store::CampaignInvocation inv = invocation();
  inv.stageTimeout = 1.0;
  enqueueSubmission(queue_, inv);
  const ServeReport report = serve(makeOptions());
  EXPECT_EQ(report.failed, 1);
  const auto scanned = scanQueue(queue_);
  const Verdict verdict =
      Verdict::parse(readFile(verdictPath(queue_, scanned[0].id)));
  EXPECT_EQ(verdict.verdict, "failed:infrastructure");
}

// --------------------------------------------------------- run-memo key

TEST_F(ServiceFixture, RunKeyTracksEverythingThatChangesBytes) {
  const std::vector<RegressionTest> tests{syntheticTest()};
  const std::string base = runKeyFor(invocation(), systems_, repo_, tests);
  EXPECT_EQ(runKeyFor(invocation(), systems_, repo_, tests), base);

  store::CampaignInvocation repeats = invocation();
  repeats.repeats = 7;
  EXPECT_NE(runKeyFor(repeats, systems_, repo_, tests), base);

  store::CampaignInvocation target = invocation();
  target.system = "cosma8";
  EXPECT_NE(runKeyFor(target, systems_, repo_, tests), base);

  // A different concretized DAG (new spec) drifts the key even when the
  // invocation bytes are identical.
  std::vector<RegressionTest> otherSpec{syntheticTest()};
  otherSpec[0].spackSpec = "hpgmg";
  EXPECT_NE(runKeyFor(invocation(), systems_, repo_, otherSpec), base);
}

}  // namespace
}  // namespace rebench::service
