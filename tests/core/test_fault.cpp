// Unit tests for the rebench::fault subsystem: fault configuration and
// injector determinism, the failure taxonomy, retry backoff, the
// quarantine circuit breaker, the resumable run journal, and the lenient
// perflog reader that survives corrupted campaign logs.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/fault/failure.hpp"
#include "core/fault/fault.hpp"
#include "core/fault/journal.hpp"
#include "core/fault/quarantine.hpp"
#include "core/fault/retry.hpp"
#include "core/fault/watchdog.hpp"
#include "core/framework/perflog.hpp"
#include "core/util/error.hpp"
#include "core/util/strings.hpp"

namespace rebench {
namespace {

TEST(FaultConfig, ParsesFullSpec) {
  const FaultConfig config = FaultConfig::parse(
      "seed=42, crash=0.2, node=0.1, preempt=0.1, build=0.25, corrupt=0.05, "
      "teldrop=0.3");
  EXPECT_EQ(config.seed, 42u);
  EXPECT_DOUBLE_EQ(config.jobCrashProb, 0.2);
  EXPECT_DOUBLE_EQ(config.nodeFailProb, 0.1);
  EXPECT_DOUBLE_EQ(config.preemptProb, 0.1);
  EXPECT_DOUBLE_EQ(config.buildFlakeProb, 0.25);
  EXPECT_DOUBLE_EQ(config.stdoutCorruptProb, 0.05);
  EXPECT_DOUBLE_EQ(config.telemetryDropProb, 0.3);
  EXPECT_TRUE(config.enabled());
}

TEST(FaultConfig, DefaultIsDisabled) {
  EXPECT_FALSE(FaultConfig{}.enabled());
  EXPECT_FALSE(FaultConfig::parse("seed=7").enabled());
}

TEST(FaultConfig, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultConfig::parse("bogus=0.1"), ParseError);
  EXPECT_THROW(FaultConfig::parse("crash"), ParseError);
  EXPECT_THROW(FaultConfig::parse("crash=1.5"), ParseError);
  EXPECT_THROW(FaultConfig::parse("crash=-0.1"), ParseError);
  EXPECT_THROW(FaultConfig::parse("crash=abc"), ParseError);
  EXPECT_THROW(FaultConfig::parse("seed=xyz"), ParseError);
  // Job-level fault probabilities partition one draw; they cannot sum > 1.
  EXPECT_THROW(FaultConfig::parse("crash=0.5,node=0.4,preempt=0.2"),
               ParseError);
}

TEST(FaultConfig, LoadsFromFileWithComments) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "faults.conf").string();
  {
    std::ofstream out(path);
    out << "# campaign chaos profile\n"
        << "seed=99\n"
        << "crash=0.2  # transient crashes\n"
        << "node=0.1\n";
  }
  const FaultConfig config = loadFaultConfig(path);
  EXPECT_EQ(config.seed, 99u);
  EXPECT_DOUBLE_EQ(config.jobCrashProb, 0.2);
  EXPECT_DOUBLE_EQ(config.nodeFailProb, 0.1);
  std::filesystem::remove(path);
  // A non-file argument parses as an inline spec.
  EXPECT_DOUBLE_EQ(loadFaultConfig("crash=0.5").jobCrashProb, 0.5);
}

TEST(FaultInjector, DecisionsAreDeterministicPerKey) {
  FaultConfig config;
  config.seed = 42;
  config.jobCrashProb = 0.5;
  config.buildFlakeProb = 0.5;
  const FaultInjector a(config);
  const FaultInjector b(config);
  for (int i = 0; i < 50; ++i) {
    const std::string key = "Test|sys:part|0|" + std::to_string(i);
    EXPECT_EQ(a.buildFlake(key), b.buildFlake(key)) << key;
    EXPECT_EQ(a.jobFault(key).kind, b.jobFault(key).kind) << key;
    EXPECT_DOUBLE_EQ(a.jobFault(key).atFraction, b.jobFault(key).atFraction);
  }
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultConfig c1;
  c1.seed = 1;
  c1.jobCrashProb = 0.5;
  FaultConfig c2 = c1;
  c2.seed = 2;
  const FaultInjector a(c1);
  const FaultInjector b(c2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    const std::string key = "k" + std::to_string(i);
    if (a.jobFault(key).kind != b.jobFault(key).kind) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjector, ProbabilitiesRoughlyRespected) {
  FaultConfig config;
  config.seed = 7;
  config.nodeFailProb = 0.2;
  const FaultInjector injector(config);
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    if (injector.jobFault("key" + std::to_string(i)).kind ==
        JobFaultDecision::Kind::kNodeFailure) {
      ++fired;
    }
  }
  EXPECT_GT(fired, 120);
  EXPECT_LT(fired, 280);
}

TEST(FaultInjector, StrikeFractionStaysInsideTheRun) {
  FaultConfig config;
  config.seed = 3;
  config.nodeFailProb = 1.0;
  const FaultInjector injector(config);
  for (int i = 0; i < 100; ++i) {
    const JobFaultDecision decision =
        injector.jobFault("k" + std::to_string(i));
    ASSERT_EQ(decision.kind, JobFaultDecision::Kind::kNodeFailure);
    EXPECT_GT(decision.atFraction, 0.0);
    EXPECT_LT(decision.atFraction, 1.0);
  }
}

TEST(FaultInjector, CorruptTextIsDeterministicAndMarked) {
  FaultConfig config;
  config.seed = 11;
  config.stdoutCorruptProb = 1.0;
  const FaultInjector injector(config);
  const std::string text = "line one\nline two\nline three\n";
  const std::string c1 = injector.corruptText(text, "k");
  const std::string c2 = injector.corruptText(text, "k");
  EXPECT_EQ(c1, c2);
  EXPECT_TRUE(str::contains(c1, "CORRUPTED OUTPUT"));
  EXPECT_NE(injector.corruptText(text, "other"), c1);
}

TEST(FailureTaxonomy, ClassifiesPerStage) {
  EXPECT_EQ(classifyFailure("concretize", "no such package"),
            FailureClass::kPermanent);
  EXPECT_EQ(classifyFailure("submit", "Invalid account"),
            FailureClass::kPermanent);
  EXPECT_EQ(classifyFailure("build", "injected transient build failure"),
            FailureClass::kTransient);
  EXPECT_EQ(classifyFailure("build", "compile error"),
            FailureClass::kPermanent);
  EXPECT_EQ(classifyFailure("run", "NODE_FAIL"),
            FailureClass::kInfrastructure);
  EXPECT_EQ(classifyFailure("run", "TIMEOUT"),
            FailureClass::kInfrastructure);
  EXPECT_EQ(classifyFailure("run", "FAILED"), FailureClass::kTransient);
  EXPECT_EQ(classifyFailure("run", "model 'cuda' not supported"),
            FailureClass::kPermanent);
  EXPECT_EQ(classifyFailure("sanity", "pattern not found"),
            FailureClass::kTransient);
  EXPECT_EQ(classifyFailure("performance", "FOM not found"),
            FailureClass::kTransient);
  EXPECT_EQ(classifyFailure("reference", "outside bounds"),
            FailureClass::kPermanent);
  EXPECT_EQ(classifyFailure("quarantine", "circuit open"),
            FailureClass::kInfrastructure);
}

TEST(FailureTaxonomy, Names) {
  EXPECT_EQ(failureClassName(FailureClass::kTransient), "transient");
  EXPECT_EQ(failureClassName(FailureClass::kPermanent), "permanent");
  EXPECT_EQ(failureClassName(FailureClass::kInfrastructure),
            "infrastructure");
}

TEST(RetryPolicy, PerStageBudgetsOverrideTheDefault) {
  RetryPolicy policy;
  policy.maxRetries = 2;
  policy.stageBudgets["run"] = 5;
  policy.stageBudgets["sanity"] = 0;
  EXPECT_EQ(policy.budgetFor("run"), 5);
  EXPECT_EQ(policy.budgetFor("sanity"), 0);
  EXPECT_EQ(policy.budgetFor("build"), 2);
}

TEST(RetryPolicy, BackoffGrowsExponentiallyAndClamps) {
  RetryPolicy policy;
  policy.backoffBase = 1.0;
  policy.backoffMultiplier = 2.0;
  policy.backoffMax = 8.0;
  policy.jitterFrac = 0.0;
  EXPECT_DOUBLE_EQ(policy.backoffSeconds("k", 1), 1.0);
  EXPECT_DOUBLE_EQ(policy.backoffSeconds("k", 2), 2.0);
  EXPECT_DOUBLE_EQ(policy.backoffSeconds("k", 3), 4.0);
  EXPECT_DOUBLE_EQ(policy.backoffSeconds("k", 4), 8.0);
  EXPECT_DOUBLE_EQ(policy.backoffSeconds("k", 10), 8.0);  // clamped
}

TEST(RetryPolicy, JitterIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.backoffBase = 10.0;
  policy.jitterFrac = 0.1;
  policy.seed = 42;
  const double first = policy.backoffSeconds("key", 1);
  EXPECT_DOUBLE_EQ(first, policy.backoffSeconds("key", 1));
  EXPECT_GE(first, 9.0);
  EXPECT_LE(first, 11.0);
  // Distinct keys and retry indices jitter independently.
  EXPECT_NE(first, policy.backoffSeconds("other", 1));
  EXPECT_NE(policy.backoffSeconds("key", 2),
            2.0 * policy.backoffSeconds("key", 1));
}

TEST(CircuitBreaker, OpensAtThresholdAndResetsOnSuccess) {
  CircuitBreaker breaker(3);
  EXPECT_TRUE(breaker.allows("a"));
  EXPECT_FALSE(breaker.recordFailure("a"));
  EXPECT_FALSE(breaker.recordFailure("a"));
  EXPECT_TRUE(breaker.allows("a"));
  // A success wipes the streak.
  breaker.recordSuccess("a");
  EXPECT_EQ(breaker.consecutiveFailures("a"), 0);
  EXPECT_FALSE(breaker.recordFailure("a"));
  EXPECT_FALSE(breaker.recordFailure("a"));
  EXPECT_TRUE(breaker.recordFailure("a"));  // third in a row opens it
  EXPECT_FALSE(breaker.allows("a"));
  EXPECT_TRUE(breaker.allows("b"));  // independent keys
  EXPECT_EQ(breaker.openKeys(), std::vector<std::string>{"a"});
}

TEST(CircuitBreaker, NonPositiveThresholdDisables) {
  CircuitBreaker breaker(0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(breaker.recordFailure("a"));
  EXPECT_TRUE(breaker.allows("a"));
}

TEST(RunJournal, RecordsAndReloads) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "journal_rt").string();
  std::filesystem::remove_all(dir);
  {
    RunJournal journal(dir);
    EXPECT_EQ(journal.size(), 0u);
    EXPECT_FALSE(journal.contains("T", "sys", 0));
    journal.record("T", "sys", 0, "pass", "", 1);
    journal.record("T", "sys", 1, "fail", "sanity", 3);
    EXPECT_TRUE(journal.contains("T", "sys", 0));
    EXPECT_TRUE(journal.contains("T", "sys", 1));
    EXPECT_FALSE(journal.contains("T", "sys", 2));
  }
  // A fresh instance loads the same tuples back.
  RunJournal reloaded(dir);
  EXPECT_EQ(reloaded.size(), 2u);
  EXPECT_TRUE(reloaded.contains("T", "sys", 0));
  EXPECT_TRUE(reloaded.contains("T", "sys", 1));
  EXPECT_FALSE(reloaded.contains("Other", "sys", 0));
  EXPECT_EQ(reloaded.corruptLines(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(RunJournal, ToleratesTruncatedTailLine) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "journal_trunc")
          .string();
  std::filesystem::remove_all(dir);
  {
    RunJournal journal(dir);
    journal.record("T", "sys", 0, "pass", "", 1);
  }
  {
    // Simulate the kill mid-append that --resume exists for.
    std::ofstream out(RunJournal::pathFor(dir), std::ios::app);
    out << "{\"kind\":\"run\",\"test\":\"T\",\"ta";
  }
  RunJournal journal(dir);
  EXPECT_EQ(journal.size(), 1u);
  EXPECT_EQ(journal.corruptLines(), 1u);
  EXPECT_TRUE(journal.contains("T", "sys", 0));
  std::filesystem::remove_all(dir);
}

TEST(RunJournal, TruncatesCorruptTailOnDisk) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "journal_rewrite")
          .string();
  std::filesystem::remove_all(dir);
  {
    RunJournal journal(dir);
    journal.record("T", "sys", 0, "pass", "", 1);
  }
  {
    std::ofstream out(RunJournal::pathFor(dir), std::ios::app);
    out << "{\"kind\":\"run\",\"test\":\"T\",\"ta";
  }
  // Opening truncates the torn tail away on disk (tmp + atomic rename),
  // so the next crash cannot stack corruption on top of corruption: a
  // second open sees a fully intact file.
  {
    RunJournal journal(dir);
    EXPECT_EQ(journal.corruptLines(), 1u);
  }
  RunJournal clean(dir);
  EXPECT_EQ(clean.corruptLines(), 0u);
  EXPECT_EQ(clean.size(), 1u);
  EXPECT_TRUE(clean.contains("T", "sys", 0));
  std::filesystem::remove_all(dir);
}

TEST(Watchdog, LimitResolutionAndFiring) {
  WatchdogPolicy policy;
  EXPECT_FALSE(policy.enabled());
  EXPECT_FALSE(checkStageDeadline(policy, "run", 1e9).has_value());

  policy.stageTimeoutSeconds = 10.0;
  policy.stageOverrides["build"] = 2.0;
  EXPECT_TRUE(policy.enabled());
  EXPECT_EQ(policy.limitFor("run"), 10.0);
  EXPECT_EQ(policy.limitFor("build"), 2.0);

  // Finishing exactly on the deadline is within budget.
  EXPECT_FALSE(checkStageDeadline(policy, "run", 10.0).has_value());
  const auto fired = checkStageDeadline(policy, "build", 2.5);
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(fired->stage, "build");
  EXPECT_EQ(fired->limitSeconds, 2.0);
  EXPECT_EQ(fired->elapsedSeconds, 2.5);
}

TEST(Watchdog, FireClassifiesAsInfrastructure) {
  WatchdogPolicy policy;
  policy.stageTimeoutSeconds = 1.0;
  const auto fired = checkStageDeadline(policy, "run", 3.0);
  ASSERT_TRUE(fired.has_value());
  const FailureInfo failure = fired->failure();
  EXPECT_EQ(failure.klass, FailureClass::kInfrastructure);
  EXPECT_EQ(failureClassName(failure.klass), "infrastructure");
  EXPECT_NE(failure.detail.find("watchdog"), std::string::npos);
}

TEST(Watchdog, StatefulWrapperCountsFires) {
  WatchdogPolicy policy;
  policy.stageTimeoutSeconds = 1.0;
  StageWatchdog watchdog(policy);
  EXPECT_FALSE(watchdog.check("run", 0.5).has_value());
  EXPECT_TRUE(watchdog.check("run", 1.5).has_value());
  EXPECT_TRUE(watchdog.check("build", 2.0).has_value());
  EXPECT_EQ(watchdog.fires(), 2u);
}

TEST(PerfLogLenient, SkipsAndCountsCorruptLines) {
  PerfLogEntry good;
  good.testName = "T";
  good.fomName = "Triad";
  good.value = 1.5;
  good.result = "pass";
  const std::vector<std::string> lines = {
      good.serialize(),
      "#### CORRUPTED OUTPUT ####",
      "system=x|value=not_a_number",  // truncated mid-value
      good.serialize(),
  };
  EXPECT_THROW(PerfLog::parseLines(lines), ParseError);
  const PerfLog::LenientParse parsed = PerfLog::parseLinesLenient(lines);
  EXPECT_EQ(parsed.entries.size(), 2u);
  EXPECT_EQ(parsed.corruptLines, 2u);
  EXPECT_EQ(parsed.entries[0].testName, "T");
}

}  // namespace
}  // namespace rebench
