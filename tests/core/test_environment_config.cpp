#include <gtest/gtest.h>

#include "core/concretizer/concretizer.hpp"
#include "core/concretizer/environment.hpp"
#include "core/sysconfig/system_config.hpp"
#include "core/util/error.hpp"

namespace rebench {
namespace {

TEST(EnvironmentConfig, RoundTripEveryBuiltinSystem) {
  const SystemRegistry systems = builtinSystems();
  for (const std::string& name : systems.systemNames()) {
    const SystemEnvironment& original = systems.get(name).environment;
    const SystemEnvironment parsed =
        parseEnvironmentConfig(original.renderConfig());

    EXPECT_EQ(parsed.systemName, original.systemName);
    EXPECT_EQ(parsed.defaultCompiler, original.defaultCompiler);
    ASSERT_EQ(parsed.compilers.size(), original.compilers.size()) << name;
    for (std::size_t i = 0; i < parsed.compilers.size(); ++i) {
      EXPECT_EQ(parsed.compilers[i].name, original.compilers[i].name);
      EXPECT_EQ(parsed.compilers[i].version, original.compilers[i].version);
      EXPECT_EQ(parsed.compilers[i].modules, original.compilers[i].modules);
    }
    ASSERT_EQ(parsed.externals.size(), original.externals.size()) << name;
    for (std::size_t i = 0; i < parsed.externals.size(); ++i) {
      EXPECT_EQ(parsed.externals[i].name, original.externals[i].name);
      EXPECT_EQ(parsed.externals[i].version, original.externals[i].version);
      EXPECT_EQ(parsed.externals[i].origin, original.externals[i].origin);
      EXPECT_EQ(parsed.externals[i].compilerName,
                original.externals[i].compilerName);
    }
    EXPECT_EQ(parsed.preferredProviders, original.preferredProviders);
  }
}

TEST(EnvironmentConfig, ParsedEnvironmentDrivesConcretizer) {
  // The Table 3 ARCHER2 result must be reachable from a parsed config —
  // a user-authored file is a first-class system definition.
  const SystemRegistry systems = builtinSystems();
  const SystemEnvironment parsed = parseEnvironmentConfig(
      systems.get("archer2").environment.renderConfig());
  const PackageRepository repo = builtinRepository();
  Concretizer concretizer(repo, parsed);
  const auto result = concretizer.concretize(Spec::parse("hpgmg%gcc"));
  EXPECT_EQ(result.root->compilerVersion.toString(), "11.2.0");
  const ConcreteSpec* mpi = result.root->find("cray-mpich");
  ASSERT_NE(mpi, nullptr);
  EXPECT_EQ(mpi->version.toString(), "8.1.23");
}

TEST(EnvironmentConfig, HandAuthoredMinimalConfig) {
  const std::string config = R"(# my new testbed
system: mybox
default_compiler: gcc
compilers:
  - gcc@13.1.0    # module: gcc/13
externals:
  - spec: openmpi@4.1.4%gcc@13.1.0
    origin: openmpi/4.1.4
preferred_providers:
  mpi: [openmpi]
)";
  const SystemEnvironment env = parseEnvironmentConfig(config);
  EXPECT_EQ(env.systemName, "mybox");
  ASSERT_EQ(env.compilers.size(), 1u);
  EXPECT_EQ(env.compilers[0].modules, "gcc/13");
  ASSERT_EQ(env.externals.size(), 1u);
  EXPECT_EQ(env.externals[0].compilerName, "gcc");
  EXPECT_EQ(env.externals[0].origin, "openmpi/4.1.4");
  ASSERT_TRUE(env.preferredProviders.contains("mpi"));
  EXPECT_EQ(env.preferredProviders.at("mpi"),
            (std::vector<std::string>{"openmpi"}));
}

TEST(EnvironmentConfig, MalformedInputsRejected) {
  EXPECT_THROW(parseEnvironmentConfig("compilers:\n  - gcc\n"), ParseError);
  EXPECT_THROW(parseEnvironmentConfig("externals:\n  - gcc@1.0\n"),
               ParseError);
  EXPECT_THROW(parseEnvironmentConfig("  - orphan@1.0\n"), ParseError);
  EXPECT_THROW(parseEnvironmentConfig("origin: nowhere\n"), ParseError);
  EXPECT_THROW(
      parseEnvironmentConfig("preferred_providers:\n  mpi: openmpi\n"),
      ParseError);
  EXPECT_THROW(parseEnvironmentConfig("what is this\n"), ParseError);
}

TEST(EnvironmentConfig, EmptyDocumentIsEmptyEnvironment) {
  const SystemEnvironment env = parseEnvironmentConfig("# nothing\n\n");
  EXPECT_TRUE(env.compilers.empty());
  EXPECT_TRUE(env.externals.empty());
}

}  // namespace
}  // namespace rebench
