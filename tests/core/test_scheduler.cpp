#include "core/sched/scheduler.hpp"

#include <gtest/gtest.h>

#include "core/util/error.hpp"

namespace rebench {
namespace {

JobRequest simpleJob(std::string name, double runtime, int tasks = 1,
                     int tasksPerNode = 0, int cpusPerTask = 1) {
  JobRequest req;
  req.name = std::move(name);
  req.numTasks = tasks;
  req.numTasksPerNode = tasksPerNode;
  req.numCpusPerTask = cpusPerTask;
  req.payload = [runtime](const Allocation&) {
    return JobOutcome{true, runtime, "ok\n"};
  };
  return req;
}

TEST(Scheduler, SingleJobCompletes) {
  SchedulerSim sim({.numNodes = 2, .coresPerNode = 8});
  const JobId id = sim.submit(simpleJob("j1", 10.0));
  sim.drain();
  const JobInfo& job = sim.query(id);
  EXPECT_EQ(job.state, JobState::kCompleted);
  EXPECT_GE(job.startTime, 0.0);
  EXPECT_NEAR(job.endTime - job.startTime, 10.0, 1e-9);
  EXPECT_EQ(job.outcome.stdoutText, "ok\n");
}

TEST(Scheduler, AccountRequiredRejection) {
  ClusterOptions opts{.numNodes = 1, .coresPerNode = 4};
  opts.requireAccount = true;
  SchedulerSim sim(opts);
  EXPECT_THROW(sim.submit(simpleJob("noacct", 1.0)), SchedulerError);
  JobRequest withAccount = simpleJob("acct", 1.0);
  withAccount.account = "ec999";
  EXPECT_NO_THROW(sim.submit(std::move(withAccount)));
}

TEST(Scheduler, InvalidQosRejected) {
  SchedulerSim sim({.numNodes = 1, .coresPerNode = 4});
  JobRequest req = simpleJob("badqos", 1.0);
  req.qos = "gold";
  EXPECT_THROW(sim.submit(std::move(req)), SchedulerError);
}

TEST(Scheduler, OversizedJobRejectedAtSubmit) {
  SchedulerSim sim({.numNodes = 2, .coresPerNode = 8});
  // 4 tasks/node x 4 cpus = 16 cores/node > 8.
  EXPECT_THROW(sim.submit(simpleJob("toofat", 1.0, 8, 4, 4)), SchedulerError);
  // Needs 8 nodes at 1 task/node but only 2 exist.
  EXPECT_THROW(sim.submit(simpleJob("toowide", 1.0, 8, 1, 1)),
               SchedulerError);
}

TEST(Scheduler, PayloadRequired) {
  SchedulerSim sim({.numNodes = 1, .coresPerNode = 4});
  JobRequest req;
  req.name = "empty";
  EXPECT_THROW(sim.submit(std::move(req)), SchedulerError);
}

TEST(Scheduler, TimeLimitEnforced) {
  SchedulerSim sim({.numNodes = 1, .coresPerNode = 4});
  JobRequest req = simpleJob("slow", 100.0);
  req.timeLimit = 10.0;
  const JobId id = sim.submit(std::move(req));
  sim.drain();
  const JobInfo& job = sim.query(id);
  EXPECT_EQ(job.state, JobState::kTimeout);
  EXPECT_NEAR(job.endTime - job.startTime, 10.0, 1e-9);
}

TEST(Scheduler, FailedPayloadReported) {
  SchedulerSim sim({.numNodes = 1, .coresPerNode = 4});
  JobRequest req;
  req.name = "crash";
  req.payload = [](const Allocation&) {
    return JobOutcome{false, 1.0, "segfault\n"};
  };
  const JobId id = sim.submit(std::move(req));
  sim.drain();
  EXPECT_EQ(sim.query(id).state, JobState::kFailed);
}

TEST(Scheduler, JobsQueueWhenClusterFull) {
  SchedulerSim sim({.numNodes = 1, .coresPerNode = 4});
  // Each job takes the whole node.
  const JobId a = sim.submit(simpleJob("a", 10.0, 1, 1, 4));
  const JobId b = sim.submit(simpleJob("b", 10.0, 1, 1, 4));
  sim.drain();
  const JobInfo& ja = sim.query(a);
  const JobInfo& jb = sim.query(b);
  EXPECT_EQ(ja.state, JobState::kCompleted);
  EXPECT_EQ(jb.state, JobState::kCompleted);
  // b started only after a finished.
  EXPECT_GE(jb.startTime, ja.endTime);
}

TEST(Scheduler, SmallJobBackfillsAroundBlockedHead) {
  SchedulerSim sim({.numNodes = 2, .coresPerNode = 4});
  // "big" fills one node; "wide" needs both nodes and must wait for big;
  // "small" fits on the second node immediately and backfills past wide.
  const JobId big = sim.submit(simpleJob("big", 20.0, 1, 1, 4));
  const JobId wide = sim.submit(simpleJob("wide", 5.0, 2, 1, 4));
  const JobId small = sim.submit(simpleJob("small", 5.0, 1, 1, 1));
  sim.drain();
  EXPECT_LT(sim.query(small).startTime, sim.query(wide).startTime);
  EXPECT_EQ(sim.query(big).state, JobState::kCompleted);
  EXPECT_EQ(sim.query(wide).state, JobState::kCompleted);
}

TEST(Scheduler, NodesConservedAfterDrain) {
  SchedulerSim sim({.numNodes = 3, .coresPerNode = 8});
  for (int i = 0; i < 10; ++i) {
    sim.submit(simpleJob("j" + std::to_string(i), 2.0 + i, 2, 2, 3));
  }
  sim.drain();
  EXPECT_EQ(sim.idleCores(), sim.totalCores());
}

TEST(Scheduler, CancelPendingJob) {
  SchedulerSim sim({.numNodes = 1, .coresPerNode = 4});
  const JobId a = sim.submit(simpleJob("a", 50.0, 1, 1, 4));
  const JobId b = sim.submit(simpleJob("b", 50.0, 1, 1, 4));
  sim.advance(5.0);  // a running, b pending
  sim.cancel(b);
  sim.drain();
  EXPECT_EQ(sim.query(a).state, JobState::kCompleted);
  EXPECT_EQ(sim.query(b).state, JobState::kCancelled);
}

TEST(Scheduler, CancelRunningJobFreesNodes) {
  SchedulerSim sim({.numNodes = 1, .coresPerNode = 4});
  const JobId a = sim.submit(simpleJob("a", 1000.0, 1, 1, 4));
  sim.advance(5.0);
  ASSERT_EQ(sim.query(a).state, JobState::kRunning);
  sim.cancel(a);
  EXPECT_EQ(sim.query(a).state, JobState::kCancelled);
  EXPECT_EQ(sim.idleCores(), sim.totalCores());
}

TEST(Scheduler, AccountingTracksCoreSeconds) {
  ClusterOptions opts{.numNodes = 2, .coresPerNode = 8};
  opts.requireAccount = true;
  SchedulerSim sim(opts);
  JobRequest req = simpleJob("acct", 10.0, 2, 1, 4);  // 2 nodes x 4 cores
  req.account = "ec999";
  sim.submit(std::move(req));
  sim.drain();
  const auto usage = sim.accountingCoreSeconds();
  ASSERT_TRUE(usage.contains("ec999"));
  EXPECT_NEAR(usage.at("ec999"), 10.0 * 8.0, 1e-6);
}

TEST(Scheduler, QueryUnknownJobThrows) {
  SchedulerSim sim({.numNodes = 1, .coresPerNode = 1});
  EXPECT_THROW(sim.query(1), SchedulerError);
  EXPECT_THROW(sim.query(0), SchedulerError);
}

TEST(Scheduler, PackingDefaultsUsesWholeNode) {
  SchedulerSim sim({.numNodes = 1, .coresPerNode = 8});
  // tasksPerNode=0 => pack 8/2 = 4 tasks per node.
  const JobId id = sim.submit(simpleJob("pack", 1.0, 4, 0, 2));
  sim.drain();
  EXPECT_EQ(sim.query(id).allocation.tasksPerNode, 4);
  EXPECT_EQ(sim.query(id).allocation.nodeIds.size(), 1u);
}

TEST(Scheduler, SchedulingLatencyDelaysStart) {
  ClusterOptions opts{.numNodes = 1, .coresPerNode = 4};
  opts.schedulingLatency = 7.5;
  SchedulerSim sim(opts);
  const JobId id = sim.submit(simpleJob("delayed", 1.0));
  sim.drain();
  EXPECT_GE(sim.query(id).startTime, 7.5);
}

TEST(Scheduler, PaperGeometryEightTasksTwoPerNode) {
  // HPGMG-FV in §3.3: 8 tasks, 2 tasks per node, 8 cpus per task.
  SchedulerSim sim({.numNodes = 4, .coresPerNode = 128});
  const JobId id = sim.submit(simpleJob("hpgmg", 60.0, 8, 2, 8));
  sim.drain();
  const JobInfo& job = sim.query(id);
  EXPECT_EQ(job.state, JobState::kCompleted);
  EXPECT_EQ(job.allocation.nodeIds.size(), 4u);
  EXPECT_EQ(job.allocation.tasksPerNode, 2);
  EXPECT_EQ(job.allocation.cpusPerTask, 8);
}

}  // namespace
}  // namespace rebench
