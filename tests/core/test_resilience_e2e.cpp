// End-to-end resilience: scheduler-level fault execution (node failures,
// preemption, bounds checking), fault-injected pipeline campaigns with
// retries and backoff, circuit-breaker quarantine, resumable suites, and
// byte-level determinism of fault-injected runs.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/framework/pipeline.hpp"
#include "core/framework/suite.hpp"
#include "core/obs/trace.hpp"
#include "core/obs/trace_reader.hpp"
#include "core/sched/scheduler.hpp"
#include "core/util/error.hpp"
#include "core/util/strings.hpp"

namespace rebench {
namespace {

JobRequest simpleJob(std::string name, double runtime) {
  JobRequest req;
  req.name = std::move(name);
  req.numTasks = 1;
  req.payload = [runtime](const Allocation&) {
    return JobOutcome{true, runtime, "ok\n"};
  };
  return req;
}

TEST(SchedulerFaults, NodeFailureKillsJobAndDrainsNode) {
  SchedulerSim sim({.numNodes = 2, .coresPerNode = 4});
  JobRequest req = simpleJob("victim", 10.0);
  req.fault = InjectedJobFault{InjectedJobFault::Kind::kNodeFailure, 0.5};
  const JobId id = sim.submit(std::move(req));
  sim.drain();  // must terminate
  const JobInfo& job = sim.query(id);
  EXPECT_EQ(job.state, JobState::kNodeFail);
  EXPECT_FALSE(job.outcome.success);
  // The fault struck mid-run, not at the end.
  EXPECT_LT(job.endTime - job.startTime, 10.0);
  EXPECT_EQ(sim.downNodes(), 1);
  // The cluster keeps scheduling around the drained node.
  const JobId next = sim.submit(simpleJob("survivor", 1.0));
  sim.drain();
  EXPECT_EQ(sim.query(next).state, JobState::kCompleted);
}

TEST(SchedulerFaults, PreemptionRequeuesAndReruns) {
  SchedulerSim sim({.numNodes = 1, .coresPerNode = 4});
  JobRequest req = simpleJob("preempted", 10.0);
  req.fault = InjectedJobFault{InjectedJobFault::Kind::kPreemption, 0.5};
  const JobId id = sim.submit(std::move(req));
  sim.drain();
  const JobInfo& job = sim.query(id);
  EXPECT_EQ(job.state, JobState::kCompleted);
  EXPECT_EQ(job.requeues, 1);
  // First execution ran to the strike point, the rerun from scratch:
  // total elapsed exceeds one clean execution.
  EXPECT_GT(job.endTime - job.submitTime, 10.0);
}

TEST(SchedulerFaults, AllNodesDownStillTerminates) {
  SchedulerSim sim({.numNodes = 1, .coresPerNode = 4});
  JobRequest req = simpleJob("killer", 10.0);
  req.fault = InjectedJobFault{InjectedJobFault::Kind::kNodeFailure, 0.5};
  sim.submit(std::move(req));
  const JobId second = sim.submit(simpleJob("starved", 1.0));
  sim.drain();  // capacity is gone; drain must still return
  EXPECT_EQ(sim.downNodes(), 1);
  EXPECT_NE(sim.query(second).state, JobState::kRunning);
}

TEST(SchedulerBounds, QueryAndCancelRejectInvalidIds) {
  SchedulerSim sim({.numNodes = 1, .coresPerNode = 4});
  EXPECT_THROW(sim.query(0), SchedulerError);
  EXPECT_THROW(sim.query(1), SchedulerError);  // nothing submitted yet
  EXPECT_THROW(sim.cancel(0), SchedulerError);
  EXPECT_THROW(sim.cancel(42), SchedulerError);
  const JobId id = sim.submit(simpleJob("real", 1.0));
  EXPECT_NO_THROW(sim.query(id));
  EXPECT_THROW(sim.query(id + 1), SchedulerError);
}

RegressionTest streamTest() {
  RegressionTest test;
  test.name = "ResilienceStream";
  test.spackSpec = "stream%gcc";
  test.numTasks = 1;
  test.numTasksPerNode = 1;
  test.sanityPattern = "Solution Validates";
  test.perfPatterns = {{"Triad", R"(Triad:\s+([0-9.]+))", Unit::kMBperSec}};
  test.run = [](const RunContext&) {
    return RunOutput{"Triad: 100000.0 MB/s\nSolution Validates\n", 12.0};
  };
  return test;
}

class ResilienceFixture : public ::testing::Test {
 protected:
  ResilienceFixture()
      : systems_(builtinSystems()), repo_(builtinRepository()) {}
  SystemRegistry systems_;
  PackageRepository repo_;
};

TEST_F(ResilienceFixture, InjectedCrashesAreRetriedWithBackoffSpans) {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  PipelineOptions options;
  options.faults.seed = 42;
  options.faults.jobCrashProb = 1.0;  // every attempt crashes
  options.retry.maxRetries = 2;
  options.retry.seed = options.faults.seed;
  options.tracer = &tracer;
  options.metrics = &metrics;
  Pipeline pipeline(systems_, repo_, options);
  const TestRunResult result = pipeline.runOne(streamTest(), "archer2");
  EXPECT_FALSE(result.passed);
  EXPECT_EQ(result.attempts, 3);  // 1 + 2 retries, all crashed
  EXPECT_EQ(result.failure.stage, "run");
  EXPECT_EQ(result.failure.klass, FailureClass::kTransient);
  EXPECT_EQ(result.failure.detail, "FAILED");

  // Backoff consumed simulated time and is visible as spans with the
  // attributes trace_lint requires.
  std::size_t backoffs = 0;
  for (const obs::SpanRecord& span : tracer.spans()) {
    if (span.name != "backoff") continue;
    ++backoffs;
    EXPECT_GT(span.duration(), 0.0);
    EXPECT_FALSE(span.attrs.at("attempt").empty());
    EXPECT_FALSE(span.attrs.at("seconds").empty());
    EXPECT_EQ(span.attrs.at("stage"), "run");
  }
  EXPECT_EQ(backoffs, 2u);
  EXPECT_EQ(metrics.counter("pipeline.retries").value(), 2u);
  EXPECT_EQ(metrics.counter("fault.injected/job_crash").value(), 3u);

  // fault.inject events carry their contract attributes and the whole
  // trace passes the lint.
  std::size_t injectEvents = 0;
  for (const obs::EventRecord& event : tracer.events()) {
    if (event.name != "fault.inject") continue;
    ++injectEvents;
    EXPECT_EQ(event.attrs.at("kind"), "job_crash");
    EXPECT_FALSE(event.attrs.at("key").empty());
  }
  EXPECT_EQ(injectEvents, 3u);
  const obs::TraceFile trace = obs::parseTraceJsonl(tracer.toJsonl(&metrics));
  EXPECT_TRUE(obs::lintTrace(trace).empty());
}

TEST_F(ResilienceFixture, SameSeedProducesIdenticalPerflogAndTraceBytes) {
  auto campaign = [&]() {
    obs::Tracer tracer;
    obs::MetricsRegistry metrics;
    PipelineOptions options;
    options.faults.seed = 1234;
    options.faults.jobCrashProb = 0.3;
    options.faults.buildFlakeProb = 0.2;
    options.faults.stdoutCorruptProb = 0.2;
    options.faults.telemetryDropProb = 0.2;
    options.retry.maxRetries = 2;
    options.retry.seed = options.faults.seed;
    options.numRepeats = 3;
    options.tracer = &tracer;
    options.metrics = &metrics;
    Pipeline pipeline(systems_, repo_, options);
    PerfLog perflog;
    const std::vector<RegressionTest> tests{streamTest()};
    const std::vector<std::string> targets{"archer2", "csd3"};
    pipeline.runAll(tests, targets, &perflog);
    std::string joined;
    for (const std::string& line : perflog.lines()) joined += line + "\n";
    return std::pair{joined, tracer.toJsonl(&metrics)};
  };
  const auto [perflog1, trace1] = campaign();
  const auto [perflog2, trace2] = campaign();
  EXPECT_FALSE(perflog1.empty());
  EXPECT_EQ(perflog1, perflog2);
  EXPECT_EQ(trace1, trace2);
}

TEST_F(ResilienceFixture, QuarantineOpensAfterThresholdAndIsReported) {
  obs::Tracer tracer;
  PipelineOptions options;
  options.faults.seed = 5;
  options.faults.nodeFailProb = 1.0;  // every run is an infrastructure loss
  options.breaker.pairThreshold = 2;
  options.numRepeats = 5;
  options.tracer = &tracer;
  Pipeline pipeline(systems_, repo_, options);
  const std::vector<RegressionTest> tests{streamTest()};
  const std::vector<std::string> targets{"archer2"};
  CampaignReport report;
  const auto results =
      pipeline.runAll(tests, targets, nullptr, nullptr, &report);
  ASSERT_EQ(results.size(), 5u);
  EXPECT_EQ(report.executed, 2u);
  EXPECT_EQ(report.quarantined, 3u);
  ASSERT_EQ(report.quarantinedKeys.size(), 1u);
  EXPECT_EQ(report.quarantinedKeys[0], "ResilienceStream@archer2:compute");
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_FALSE(results[i].quarantined);
    EXPECT_EQ(results[i].failure.klass, FailureClass::kInfrastructure);
    EXPECT_EQ(results[i].failure.detail, "NODE_FAIL");
  }
  for (std::size_t i = 2; i < 5; ++i) {
    EXPECT_TRUE(results[i].quarantined);
    EXPECT_EQ(results[i].failure.stage, "quarantine");
    EXPECT_EQ(results[i].attempts, 0);
  }
  // The quarantine decisions are trace events with the required key attr.
  std::size_t quarantineEvents = 0;
  for (const obs::EventRecord& event : tracer.events()) {
    if (event.name != "fault.quarantine") continue;
    ++quarantineEvents;
    EXPECT_EQ(event.attrs.at("key"), "ResilienceStream@archer2:compute");
  }
  EXPECT_EQ(quarantineEvents, 3u);

  // Suite-level rendering surfaces the quarantine instead of cascading
  // failures, while keeping the "N/M passed" first line.
  const std::string summary =
      renderCampaignSummary(summarizeCampaign(results), &report);
  EXPECT_TRUE(str::startsWith(summary, "0/5 passed\n"));
  EXPECT_TRUE(str::contains(summary, "quarantined: 3"));
  EXPECT_TRUE(str::contains(summary, "ResilienceStream@archer2:compute"));
}

TEST_F(ResilienceFixture, ResumeSkipsEverythingAlreadyJournaled) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "resume_e2e").string();
  std::filesystem::remove_all(dir);
  PipelineOptions options;
  options.numRepeats = 3;
  const std::vector<RegressionTest> tests{streamTest()};
  const std::vector<std::string> targets{"archer2", "csd3"};
  {
    Pipeline pipeline(systems_, repo_, options);
    RunJournal journal(dir);
    CampaignReport report;
    const auto results =
        pipeline.runAll(tests, targets, nullptr, &journal, &report);
    EXPECT_EQ(results.size(), 6u);
    EXPECT_EQ(report.executed, 6u);
    EXPECT_EQ(report.skippedJournaled, 0u);
    EXPECT_EQ(journal.size(), 6u);
  }
  {
    // The rerun finds everything journaled and executes nothing.
    Pipeline pipeline(systems_, repo_, options);
    RunJournal journal(dir);
    CampaignReport report;
    const auto results =
        pipeline.runAll(tests, targets, nullptr, &journal, &report);
    EXPECT_TRUE(results.empty());
    EXPECT_EQ(report.executed, 0u);
    EXPECT_EQ(report.skippedJournaled, 6u);
    const std::string summary =
        renderCampaignSummary(summarizeCampaign(results), &report);
    EXPECT_TRUE(str::contains(summary, "6 tuple(s) already journaled"));
  }
  std::filesystem::remove_all(dir);
}

TEST_F(ResilienceFixture, PartialCampaignResumesWhereItStopped) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "resume_partial")
          .string();
  std::filesystem::remove_all(dir);
  PipelineOptions options;
  options.numRepeats = 4;
  const std::vector<RegressionTest> tests{streamTest()};
  const std::vector<std::string> targets{"archer2"};
  {
    // Simulate a campaign killed after two repeats: journal them by hand.
    RunJournal journal(dir);
    journal.record("ResilienceStream", "archer2", 0, "pass", "", 1);
    journal.record("ResilienceStream", "archer2", 1, "pass", "", 1);
  }
  Pipeline pipeline(systems_, repo_, options);
  RunJournal journal(dir);
  CampaignReport report;
  const auto results =
      pipeline.runAll(tests, targets, nullptr, &journal, &report);
  EXPECT_EQ(results.size(), 2u);  // only repeats 2 and 3 ran
  EXPECT_EQ(report.executed, 2u);
  EXPECT_EQ(report.skippedJournaled, 2u);
  EXPECT_EQ(journal.size(), 4u);  // now complete
  std::filesystem::remove_all(dir);
}

TEST_F(ResilienceFixture, FaultyCampaignCompletesWithoutCrashing) {
  // A chaos-heavy suite run: every fault type active at once.  The
  // campaign must terminate and classify everything it could not run.
  PipelineOptions options;
  options.faults.seed = 2026;
  options.faults.jobCrashProb = 0.2;
  options.faults.nodeFailProb = 0.1;
  options.faults.preemptProb = 0.1;
  options.faults.buildFlakeProb = 0.2;
  options.faults.stdoutCorruptProb = 0.2;
  options.faults.telemetryDropProb = 0.2;
  options.retry.maxRetries = 1;
  options.retry.seed = options.faults.seed;
  options.numRepeats = 6;
  Pipeline pipeline(systems_, repo_, options);
  const std::vector<RegressionTest> tests{streamTest()};
  const std::vector<std::string> targets{"archer2", "csd3"};
  CampaignReport report;
  const auto results =
      pipeline.runAll(tests, targets, nullptr, nullptr, &report);
  EXPECT_EQ(results.size(), 12u);
  for (const TestRunResult& result : results) {
    if (result.passed || result.quarantined) continue;
    EXPECT_FALSE(result.failure.stage.empty());
    EXPECT_FALSE(result.failure.detail.empty());
  }
}

}  // namespace
}  // namespace rebench
