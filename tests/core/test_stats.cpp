#include "core/postproc/stats.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "core/util/error.hpp"
#include "core/util/rng.hpp"
#include "core/util/strings.hpp"

namespace rebench {
namespace {

TEST(Stats, EmptySampleThrows) {
  EXPECT_THROW(summarize({}), Error);
}

TEST(Stats, SingleSample) {
  const std::array<double, 1> one{7.0};
  const SummaryStats stats = summarize(one);
  EXPECT_EQ(stats.count, 1u);
  EXPECT_DOUBLE_EQ(stats.mean, 7.0);
  EXPECT_DOUBLE_EQ(stats.median, 7.0);
  EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
  EXPECT_DOUBLE_EQ(stats.ci95, 0.0);
  EXPECT_TRUE(str::contains(renderStats(stats), "NOT statistically"));
}

TEST(Stats, KnownSmallSample) {
  // 1..5: mean 3, median 3, sample stddev sqrt(2.5).
  const std::array<double, 5> samples{1, 2, 3, 4, 5};
  const SummaryStats stats = summarize(samples);
  EXPECT_DOUBLE_EQ(stats.mean, 3.0);
  EXPECT_DOUBLE_EQ(stats.median, 3.0);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 5.0);
  EXPECT_NEAR(stats.stddev, std::sqrt(2.5), 1e-12);
  // CI95 = t(4)=2.776 * stddev/sqrt(5).
  EXPECT_NEAR(stats.ci95, 2.776 * std::sqrt(2.5) / std::sqrt(5.0), 1e-9);
  EXPECT_DOUBLE_EQ(stats.q1, 2.0);
  EXPECT_DOUBLE_EQ(stats.q3, 4.0);
}

TEST(Stats, OrderInvariant) {
  const std::array<double, 5> a{5, 1, 4, 2, 3};
  const std::array<double, 5> b{1, 2, 3, 4, 5};
  const SummaryStats sa = summarize(a);
  const SummaryStats sb = summarize(b);
  EXPECT_DOUBLE_EQ(sa.median, sb.median);
  EXPECT_DOUBLE_EQ(sa.stddev, sb.stddev);
}

TEST(Stats, MedianRobustToOutlier) {
  // H&B's point: one slow run skews the mean, not the median.
  const std::array<double, 5> clean{10, 10, 10, 10, 10};
  const std::array<double, 5> outlier{10, 10, 10, 10, 100};
  EXPECT_DOUBLE_EQ(summarize(clean).median, summarize(outlier).median);
  EXPECT_GT(summarize(outlier).mean, summarize(clean).mean + 10.0);
}

TEST(Stats, PercentileInterpolation) {
  const std::array<double, 4> samples{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(percentile(samples, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 50), 2.5);
  EXPECT_THROW(percentile({}, 50.0), Error);
}

TEST(Stats, CiShrinksWithMoreSamples) {
  Rng rng(99);
  std::vector<double> few, many;
  for (int i = 0; i < 5; ++i) few.push_back(100.0 * rng.noiseFactor(0.05));
  for (int i = 0; i < 100; ++i) {
    many.push_back(100.0 * rng.noiseFactor(0.05));
  }
  EXPECT_LT(summarize(many).ci95, summarize(few).ci95);
}

TEST(Stats, CiCoversTrueMeanUsually) {
  // Draw many samples of n=10 around mean 50; the 95% CI should cover 50
  // in the vast majority of trials.
  int covered = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    Rng rng(1000 + t);
    std::vector<double> samples;
    for (int i = 0; i < 10; ++i) {
      samples.push_back(50.0 + 5.0 * rng.normal());
    }
    const SummaryStats stats = summarize(samples);
    if (std::abs(stats.mean - 50.0) <= stats.ci95) ++covered;
  }
  EXPECT_GT(covered, trials * 0.88);
  EXPECT_LE(covered, trials);
}

TEST(Stats, Reportability) {
  std::vector<double> quiet(10, 100.0);
  quiet[0] = 101.0;
  EXPECT_TRUE(isReportable(summarize(quiet)));
  // Too few runs.
  const std::array<double, 2> few{100, 101};
  EXPECT_FALSE(isReportable(summarize(few)));
  // Too noisy.
  const std::array<double, 8> noisy{50, 150, 60, 140, 70, 130, 80, 120};
  EXPECT_FALSE(isReportable(summarize(noisy)));
}

TEST(Stats, RenderContainsEverything) {
  const std::array<double, 5> samples{1, 2, 3, 4, 5};
  const std::string text = renderStats(summarize(samples));
  EXPECT_TRUE(str::contains(text, "median 3.00"));
  EXPECT_TRUE(str::contains(text, "95% CI"));
  EXPECT_TRUE(str::contains(text, "n=5"));
  EXPECT_TRUE(str::contains(text, "CV"));
}

}  // namespace
}  // namespace rebench
