#include "core/postproc/dataframe.hpp"

#include <gtest/gtest.h>

#include <array>

#include "core/util/error.hpp"

namespace rebench {
namespace {

DataFrame sampleFrame() {
  DataFrame frame;
  frame.addStrings("system", {"archer2", "archer2", "csd3", "csd3"});
  frame.addStrings("fom", {"l0", "l1", "l0", "l1"});
  frame.addNumeric("value", {95.36, 83.43, 126.10, 94.39});
  return frame;
}

TEST(DataFrame, BasicShape) {
  const DataFrame frame = sampleFrame();
  EXPECT_EQ(frame.rowCount(), 4u);
  EXPECT_EQ(frame.columnCount(), 3u);
  EXPECT_TRUE(frame.hasColumn("system"));
  EXPECT_FALSE(frame.hasColumn("nope"));
  EXPECT_TRUE(frame.isNumeric("value"));
  EXPECT_FALSE(frame.isNumeric("system"));
}

TEST(DataFrame, MismatchedColumnLengthThrows) {
  DataFrame frame;
  frame.addStrings("a", {"x", "y"});
  EXPECT_THROW(frame.addNumeric("b", {1.0}), Error);
}

TEST(DataFrame, TypedAccessChecks) {
  const DataFrame frame = sampleFrame();
  EXPECT_THROW(frame.numeric("system"), Error);
  EXPECT_THROW(frame.strings("value"), Error);
  EXPECT_THROW(frame.numeric("missing"), NotFoundError);
}

TEST(DataFrame, FilterEquals) {
  const DataFrame filtered = sampleFrame().filterEquals("system", "csd3");
  EXPECT_EQ(filtered.rowCount(), 2u);
  EXPECT_DOUBLE_EQ(filtered.numeric("value")[0], 126.10);
}

TEST(DataFrame, FilterPredicate) {
  const DataFrame frame = sampleFrame();
  const auto& values = frame.numeric("value");
  const DataFrame big =
      frame.filter([&](std::size_t i) { return values[i] > 90.0; });
  EXPECT_EQ(big.rowCount(), 3u);
}

TEST(DataFrame, FilterThenFilterComposes) {
  // Property: filter(p) then filter(q) == filter(p && q).
  const DataFrame frame = sampleFrame();
  const auto& values = frame.numeric("value");
  const DataFrame chained =
      frame.filterEquals("system", "archer2")
          .filter([](std::size_t) { return true; })
          .filterEquals("fom", "l0");
  const DataFrame direct = frame.filter([&](std::size_t i) {
    return frame.strings("system")[i] == "archer2" &&
           frame.strings("fom")[i] == "l0";
  });
  ASSERT_EQ(chained.rowCount(), direct.rowCount());
  EXPECT_DOUBLE_EQ(chained.numeric("value")[0], direct.numeric("value")[0]);
  (void)values;
}

TEST(DataFrame, SelectColumns) {
  const std::array<std::string, 2> wanted{"fom", "value"};
  const DataFrame projected = sampleFrame().selectColumns(wanted);
  EXPECT_EQ(projected.columnCount(), 2u);
  EXPECT_EQ(projected.rowCount(), 4u);
  EXPECT_FALSE(projected.hasColumn("system"));
}

TEST(DataFrame, SortByNumericDescending) {
  const DataFrame sorted = sampleFrame().sortBy("value", false);
  const auto& values = sorted.numeric("value");
  for (std::size_t i = 1; i < values.size(); ++i) {
    EXPECT_GE(values[i - 1], values[i]);
  }
}

TEST(DataFrame, SortIsStableOnStrings) {
  const DataFrame sorted = sampleFrame().sortBy("system", true);
  const auto& foms = sorted.strings("fom");
  // Within archer2 rows, original l0-then-l1 order preserved.
  EXPECT_EQ(foms[0], "l0");
  EXPECT_EQ(foms[1], "l1");
}

TEST(DataFrame, ConcatMergesRows) {
  const DataFrame a = sampleFrame();
  const DataFrame b = sampleFrame();
  const std::array<DataFrame, 2> frames{a, b};
  const DataFrame merged = DataFrame::concat(frames);
  EXPECT_EQ(merged.rowCount(), 8u);
  EXPECT_EQ(merged.columnCount(), 3u);
}

TEST(DataFrame, ConcatRejectsSchemaMismatch) {
  DataFrame other;
  other.addStrings("different", {"x"});
  const std::array<DataFrame, 2> frames{sampleFrame(), other};
  EXPECT_THROW(DataFrame::concat(frames), Error);
}

TEST(DataFrame, ConcatEmptyListIsEmptyFrame) {
  EXPECT_TRUE(DataFrame::concat({}).empty());
}

TEST(DataFrame, GroupByMean) {
  const std::array<std::string, 1> keys{"system"};
  const DataFrame grouped = sampleFrame().groupBy(keys, "value", Agg::kMean);
  EXPECT_EQ(grouped.rowCount(), 2u);
  EXPECT_EQ(grouped.strings("system")[0], "archer2");
  EXPECT_NEAR(grouped.numeric("value")[0], (95.36 + 83.43) / 2, 1e-9);
  EXPECT_NEAR(grouped.numeric("value")[1], (126.10 + 94.39) / 2, 1e-9);
}

TEST(DataFrame, GroupByAggregations) {
  const std::array<std::string, 1> keys{"system"};
  const DataFrame frame = sampleFrame();
  EXPECT_NEAR(frame.groupBy(keys, "value", Agg::kMin).numeric("value")[0],
              83.43, 1e-9);
  EXPECT_NEAR(frame.groupBy(keys, "value", Agg::kMax).numeric("value")[0],
              95.36, 1e-9);
  EXPECT_NEAR(frame.groupBy(keys, "value", Agg::kSum).numeric("value")[0],
              95.36 + 83.43, 1e-9);
  EXPECT_NEAR(frame.groupBy(keys, "value", Agg::kCount).numeric("value")[0],
              2.0, 1e-9);
  EXPECT_NEAR(frame.groupBy(keys, "value", Agg::kFirst).numeric("value")[0],
              95.36, 1e-9);
}

TEST(DataFrame, GroupBySumEqualsTotalAcrossGroups) {
  // Property: group sums partition the overall sum.
  const DataFrame frame = sampleFrame();
  const std::array<std::string, 1> keys{"system"};
  const DataFrame grouped = frame.groupBy(keys, "value", Agg::kSum);
  double total = 0.0;
  for (double v : frame.numeric("value")) total += v;
  double groupTotal = 0.0;
  for (double v : grouped.numeric("value")) groupTotal += v;
  EXPECT_NEAR(total, groupTotal, 1e-9);
}

TEST(DataFrame, PivotShapesMatrix) {
  const PivotTable table = sampleFrame().pivot("fom", "system", "value");
  ASSERT_EQ(table.rowLabels.size(), 2u);
  ASSERT_EQ(table.colLabels.size(), 2u);
  ASSERT_TRUE(table.cells[0][0].has_value());
  EXPECT_NEAR(*table.cells[0][0], 95.36, 1e-9);   // l0 x archer2
  EXPECT_NEAR(*table.cells[1][1], 94.39, 1e-9);   // l1 x csd3
}

TEST(DataFrame, PivotLeavesHolesForMissingCombos) {
  DataFrame frame;
  frame.addStrings("model", {"omp", "cuda"});
  frame.addStrings("platform", {"clx", "v100"});
  frame.addNumeric("value", {0.7, 0.9});
  const PivotTable table = frame.pivot("model", "platform", "value");
  EXPECT_TRUE(table.cells[0][0].has_value());   // omp x clx
  EXPECT_FALSE(table.cells[0][1].has_value());  // omp x v100: no data
  EXPECT_FALSE(table.cells[1][0].has_value());  // cuda x clx: no data
}

TEST(DataFrame, CsvRoundTrip) {
  const DataFrame frame = sampleFrame();
  const DataFrame reparsed = DataFrame::fromCsv(frame.toCsv());
  EXPECT_EQ(reparsed.rowCount(), frame.rowCount());
  EXPECT_EQ(reparsed.columnNames(), frame.columnNames());
  EXPECT_TRUE(reparsed.isNumeric("value"));
  EXPECT_NEAR(reparsed.numeric("value")[2], 126.10, 1e-6);
  EXPECT_EQ(reparsed.strings("system")[3], "csd3");
}

TEST(DataFrame, CsvQuotingHandlesCommas) {
  DataFrame frame;
  frame.addStrings("launch", {"srun --ntasks=8, --exact", "plain"});
  frame.addNumeric("v", {1.0, 2.0});
  const DataFrame reparsed = DataFrame::fromCsv(frame.toCsv());
  EXPECT_EQ(reparsed.strings("launch")[0], "srun --ntasks=8, --exact");
}

TEST(DataFrame, CsvRaggedRowThrows) {
  EXPECT_THROW(DataFrame::fromCsv("a,b\n1\n"), ParseError);
}

TEST(DataFrame, CellText) {
  const DataFrame frame = sampleFrame();
  EXPECT_EQ(frame.cellText("system", 0), "archer2");
  EXPECT_EQ(frame.cellText("value", 0).substr(0, 5), "95.36");
}

TEST(DataFrame, ConcatErrorNamesFirstMismatchingColumnName) {
  DataFrame other;
  other.addStrings("system", {"x"});
  other.addStrings("different", {"y"});
  other.addNumeric("value", {1.0});
  const std::array<DataFrame, 2> frames{sampleFrame(), other};
  try {
    (void)DataFrame::concat(frames);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()),
              "cannot concat frames: column 2 is 'different' in frame 2 "
              "but 'fom' in frame 1");
  }
}

TEST(DataFrame, ConcatErrorNamesFirstMismatchingColumnType) {
  DataFrame other;
  other.addStrings("system", {"x"});
  other.addStrings("fom", {"l0"});
  other.addStrings("value", {"not-a-number"});
  const std::array<DataFrame, 2> frames{sampleFrame(), other};
  try {
    (void)DataFrame::concat(frames);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()),
              "cannot concat frames: column 'value' is string in frame 2 "
              "but numeric in frame 1");
  }
}

TEST(DataFrame, ConcatErrorReportsColumnCountFirst) {
  DataFrame narrow;
  narrow.addStrings("system", {"x"});
  const std::array<DataFrame, 2> frames{sampleFrame(), narrow};
  try {
    (void)DataFrame::concat(frames);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()),
              "cannot concat frames: frame 2 has 1 column(s), frame 1 has 3");
  }
}

TEST(DataFrame, DescribeOnEmptyFrameHasHeaderAndNoRows) {
  const DataFrame described = DataFrame().describe();
  EXPECT_EQ(described.rowCount(), 0u);
  EXPECT_EQ(described.columnNames(),
            (std::vector<std::string>{"column", "count", "mean", "std",
                                      "min", "median", "max"}));
}

TEST(DataFrame, DescribeSkipsAllNullNumericColumns) {
  DataFrame frame;
  frame.addNumericWithNulls("ghost", {1.0, 2.0}, {false, false});
  frame.addNumeric("real", {3.0, 5.0});
  const DataFrame described = frame.describe();
  ASSERT_EQ(described.rowCount(), 1u);  // only "real" has a valid sample
  EXPECT_EQ(described.strings("column")[0], "real");
  EXPECT_DOUBLE_EQ(described.numeric("mean")[0], 4.0);
}

TEST(DataFrame, DescribeExcludesNullsFromAggregates) {
  DataFrame frame;
  frame.addNumericWithNulls("v", {10.0, 999.0, 20.0}, {true, false, true});
  const DataFrame described = frame.describe();
  ASSERT_EQ(described.rowCount(), 1u);
  EXPECT_DOUBLE_EQ(described.numeric("count")[0], 2.0);
  EXPECT_DOUBLE_EQ(described.numeric("mean")[0], 15.0);
  EXPECT_DOUBLE_EQ(described.numeric("max")[0], 20.0);
}

TEST(DataFrame, PivotOnZeroRowFrameIsEmptyMatrix) {
  DataFrame frame;
  frame.addStrings("model", {});
  frame.addStrings("platform", {});
  frame.addNumeric("value", {});
  const PivotTable table = frame.pivot("model", "platform", "value");
  EXPECT_TRUE(table.rowLabels.empty());
  EXPECT_TRUE(table.colLabels.empty());
  EXPECT_TRUE(table.cells.empty());
}

TEST(DataFrame, GroupByHandlesSingleRowGroups) {
  DataFrame frame;
  frame.addStrings("system", {"a", "b", "c"});
  frame.addNumeric("value", {1.0, 2.0, 3.0});
  const std::array<std::string, 1> keys{"system"};
  const DataFrame grouped = frame.groupBy(keys, "value", Agg::kMean);
  ASSERT_EQ(grouped.rowCount(), 3u);
  EXPECT_DOUBLE_EQ(grouped.numeric("value")[1], 2.0);
}

TEST(DataFrame, GroupPercentilesEmitsLabeledColumns) {
  DataFrame frame;
  frame.addStrings("system", {"a", "a", "a", "a", "b"});
  frame.addNumeric("value", {4.0, 1.0, 3.0, 2.0, 7.0});
  const std::array<std::string, 1> keys{"system"};
  const std::array<double, 2> percentiles{50.0, 99.9};
  const DataFrame result = frame.groupPercentiles(keys, "value", percentiles);
  EXPECT_EQ(result.columnNames(),
            (std::vector<std::string>{"system", "p50", "p99.9"}));
  ASSERT_EQ(result.rowCount(), 2u);
  EXPECT_DOUBLE_EQ(result.numeric("p50")[0], 2.5);  // median of 1..4
  EXPECT_DOUBLE_EQ(result.numeric("p50")[1], 7.0);  // single-row group
}

TEST(DataFrame, FilterRangeIsInclusiveAndSkipsNulls) {
  DataFrame frame;
  frame.addNumericWithNulls("v", {1.0, 2.0, 3.0, 4.0},
                            {true, true, false, true});
  const DataFrame mid = frame.filterRange("v", 2.0, 4.0);
  ASSERT_EQ(mid.rowCount(), 2u);  // 2 and 4; the null 3-slot is excluded
  EXPECT_DOUBLE_EQ(mid.numeric("v")[0], 2.0);
  EXPECT_DOUBLE_EQ(mid.numeric("v")[1], 4.0);
  EXPECT_THROW(frame.filterRange("missing", 0.0, 1.0), NotFoundError);
}

TEST(DataFrame, AddNumericWithNullsValidatesLengths) {
  DataFrame frame;
  EXPECT_THROW(frame.addNumericWithNulls("v", {1.0, 2.0}, {true}), Error);
}

}  // namespace
}  // namespace rebench
