// The observability subsystem: clocks, spans, metrics, JSONL round-trip
// and the structural lint.
#include <gtest/gtest.h>

#include "core/obs/json.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/trace.hpp"
#include "core/obs/trace_reader.hpp"
#include "core/util/error.hpp"
#include "core/util/strings.hpp"

namespace rebench::obs {
namespace {

// ---- clocks --------------------------------------------------------------

TEST(SimClock, ReadingsAreStrictlyIncreasing) {
  SimClock clock;
  const double a = clock.now();
  const double b = clock.now();
  const double c = clock.now();
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(SimClock, PeekHasNoSideEffect) {
  SimClock clock;
  clock.advance(5.0);
  EXPECT_DOUBLE_EQ(clock.peek(), 5.0);
  EXPECT_DOUBLE_EQ(clock.peek(), 5.0);
}

TEST(SimClock, AdvanceToNeverStepsBackwards) {
  SimClock clock;
  clock.advance(10.0);
  clock.advanceTo(3.0);  // behind: no-op
  EXPECT_DOUBLE_EQ(clock.peek(), 10.0);
  clock.advanceTo(12.5);
  EXPECT_DOUBLE_EQ(clock.peek(), 12.5);
}

TEST(SimClock, IsDeterministicAndKindSim) {
  SimClock a, b;
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(a.now(), b.now());
  EXPECT_TRUE(a.deterministic());
  EXPECT_EQ(a.kind(), "sim");
}

TEST(WallClock, AdvancesOnItsOwnAndIsNotDeterministic) {
  WallClock clock;
  EXPECT_FALSE(clock.deterministic());
  EXPECT_EQ(clock.kind(), "wall");
  const double a = clock.now();
  clock.advance(100.0);  // simulated seconds are ignored
  EXPECT_LT(clock.peek(), 50.0);
  EXPECT_GE(clock.now(), a);
}

// ---- spans ---------------------------------------------------------------

TEST(Tracer, HierarchicalIdsFollowNesting) {
  Tracer tracer;
  EXPECT_EQ(tracer.beginSpan("root"), "1");
  EXPECT_EQ(tracer.beginSpan("childA"), "1.1");
  tracer.endSpan();
  EXPECT_EQ(tracer.beginSpan("childB"), "1.2");
  EXPECT_EQ(tracer.beginSpan("grandchild"), "1.2.1");
  tracer.endSpan();
  tracer.endSpan();
  tracer.endSpan();
  EXPECT_EQ(tracer.beginSpan("second root"), "2");
  tracer.endSpan();
  EXPECT_EQ(tracer.openSpans(), 0u);

  ASSERT_EQ(tracer.spans().size(), 5u);
  // Spans land in end order; parents carry the hierarchical prefix.
  EXPECT_EQ(tracer.spans()[0].id, "1.1");
  EXPECT_EQ(tracer.spans()[0].parent, "1");
  EXPECT_EQ(tracer.spans()[1].id, "1.2.1");
  EXPECT_EQ(tracer.spans()[1].parent, "1.2");
  EXPECT_EQ(tracer.spans()[4].id, "2");
  EXPECT_EQ(tracer.spans()[4].parent, "");
}

TEST(Tracer, SpanTimesNestWithinParents) {
  Tracer tracer;
  tracer.beginSpan("outer");
  tracer.beginSpan("inner");
  tracer.clock().advance(2.0);
  tracer.endSpan();
  tracer.endSpan();
  const SpanRecord& inner = tracer.spans()[0];
  const SpanRecord& outer = tracer.spans()[1];
  EXPECT_GE(inner.start, outer.start);
  EXPECT_LE(inner.end, outer.end);
  EXPECT_GT(inner.duration(), 2.0 - 1e-9);
}

TEST(Tracer, SetAttrOnReachesAncestors) {
  Tracer tracer;
  tracer.beginSpan("outer");
  tracer.beginSpan("inner");
  tracer.setAttrOn("1", "outcome", "fail");
  tracer.setAttr("local", "yes");
  tracer.endSpan();
  tracer.endSpan();
  EXPECT_EQ(tracer.spans()[0].attrs.at("local"), "yes");
  EXPECT_EQ(tracer.spans()[1].attrs.at("outcome"), "fail");
  EXPECT_THROW(tracer.setAttrOn("1", "k", "v"), InternalError);  // closed
}

TEST(Tracer, EventsAttachToInnermostOpenSpan) {
  Tracer tracer;
  tracer.beginSpan("root");
  tracer.event("first");
  tracer.beginSpan("child");
  tracer.event("second", {{"key", "value"}});
  tracer.endSpan();
  tracer.endSpan();
  ASSERT_EQ(tracer.events().size(), 2u);
  EXPECT_EQ(tracer.events()[0].span, "1");
  EXPECT_EQ(tracer.events()[1].span, "1.1");
  EXPECT_EQ(tracer.events()[1].attrs.at("key"), "value");
}

TEST(Tracer, EventAtBehindClockStaysMonotone) {
  Tracer tracer;
  tracer.beginSpan("root");
  tracer.clock().advance(10.0);
  tracer.event("late");
  tracer.eventAt(2.0, "early-by-its-own-timeline");
  tracer.endSpan();
  EXPECT_GT(tracer.events()[1].time, tracer.events()[0].time);
}

TEST(ScopedSpan, RaiiEndsOnScopeExitAndIsNullSafe) {
  Tracer tracer;
  {
    ScopedSpan outer(&tracer, "outer");
    outer.attr("k", "v");
    { ScopedSpan inner(&tracer, "inner"); }
    EXPECT_EQ(tracer.openSpans(), 1u);
  }
  EXPECT_EQ(tracer.openSpans(), 0u);
  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.spans()[1].attrs.at("k"), "v");

  // Null tracer: every operation is a no-op.
  ScopedSpan null(nullptr, "nothing");
  null.attr("k", "v");
  null.end();
  EXPECT_EQ(null.id(), "");
}

TEST(ScopedSpan, EndIsIdempotentAndObservesHistogram) {
  Tracer tracer;
  Histogram hist({1.0, 60.0});
  {
    ScopedSpan span(&tracer, "stage", &hist);
    tracer.clock().advance(5.0);
    span.end();
    span.end();  // idempotent
  }
  EXPECT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_EQ(hist.counts()[1], 1u);  // 5 s lands in (1, 60]
}

// ---- metrics -------------------------------------------------------------

TEST(Metrics, CounterAccumulates) {
  Counter counter;
  counter.inc();
  counter.inc(4);
  EXPECT_EQ(counter.value(), 5u);
}

TEST(Metrics, GaugeTracksMaximum) {
  Gauge gauge;
  gauge.set(3.0);
  gauge.set(7.0);
  gauge.set(2.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.0);
  EXPECT_DOUBLE_EQ(gauge.max(), 7.0);
}

TEST(Metrics, HistogramBucketsAreInclusiveUpperBounds) {
  Histogram hist({1.0, 10.0, 100.0});
  ASSERT_EQ(hist.counts().size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(hist.bucketFor(0.5), 0u);
  EXPECT_EQ(hist.bucketFor(1.0), 0u);  // boundary is inclusive ("le")
  EXPECT_EQ(hist.bucketFor(1.0000001), 1u);
  EXPECT_EQ(hist.bucketFor(10.0), 1u);
  EXPECT_EQ(hist.bucketFor(100.0), 2u);
  EXPECT_EQ(hist.bucketFor(1e9), 3u);  // overflow bucket

  hist.observe(0.5);
  hist.observe(1.0);
  hist.observe(50.0);
  hist.observe(1000.0);
  EXPECT_EQ(hist.counts()[0], 2u);
  EXPECT_EQ(hist.counts()[2], 1u);
  EXPECT_EQ(hist.counts()[3], 1u);
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_DOUBLE_EQ(hist.sum(), 1051.5);
}

TEST(Metrics, RegistryReturnsStableHandles) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  a.inc();
  registry.counter("y").inc(10);  // may rebalance the map
  EXPECT_EQ(&registry.counter("x"), &a);
  EXPECT_EQ(registry.counter("x").value(), 1u);

  Histogram& h = registry.histogram("h", stageSecondsBounds());
  // Later lookups reuse the instrument; new bounds are ignored.
  const double other[] = {42.0};
  EXPECT_EQ(&registry.histogram("h", other), &h);
  EXPECT_EQ(h.bounds().size(), stageSecondsBounds().size());
}

// ---- JSON ----------------------------------------------------------------

TEST(Json, EscapeRoundTripsThroughParse) {
  const std::string nasty = "a\"b\\c\nd\te\rf\x01g";
  const json::Value parsed = json::parse(json::quote(nasty));
  ASSERT_TRUE(parsed.isString());
  EXPECT_EQ(parsed.text, nasty);
}

TEST(Json, ParseRejectsGarbage) {
  EXPECT_THROW(json::parse("{\"a\":}"), ParseError);
  EXPECT_THROW(json::parse("{} trailing"), ParseError);
  EXPECT_THROW(json::parse(""), ParseError);
}

TEST(Json, EscapePassesUtf8ThroughUntouched) {
  // Multi-byte UTF-8 (é, 日本語, ✓) is not control or structural: the
  // writer must leave the bytes alone rather than \u-escaping them.
  const std::string utf8 = "r\xc3\xa9sum\xc3\xa9 \xe6\x97\xa5\xe6\x9c\xac "
                           "\xe2\x9c\x93";
  EXPECT_EQ(json::escape(utf8), utf8);
  const json::Value parsed = json::parse(json::quote(utf8));
  ASSERT_TRUE(parsed.isString());
  EXPECT_EQ(parsed.text, utf8);
}

TEST(Json, EscapeEmitsU00XXForBareControlCharacters) {
  // \n, \r, \t get their shorthands; every other C0 control character
  // (including \b and \f, which the writer does not shorthand) becomes a
  // four-digit \u00XX escape the parser maps straight back.
  EXPECT_EQ(json::escape("\x01"), "\\u0001");
  EXPECT_EQ(json::escape("\x1f"), "\\u001f");
  EXPECT_EQ(json::escape("\b\f"), "\\u0008\\u000c");
  EXPECT_EQ(json::escape("\n\r\t"), "\\n\\r\\t");
  const std::string controls = "a\x01b\x02\x03\x1f";
  const json::Value parsed = json::parse(json::quote(controls));
  ASSERT_TRUE(parsed.isString());
  EXPECT_EQ(parsed.text, controls);
  // The parser also accepts the \b and \f shorthands it never writes.
  EXPECT_EQ(json::parse("\"\\b\\f\"").text, "\b\f");
}

TEST(Json, EmbeddedNulSurvivesTheRoundTrip) {
  std::string withNul = "ab";
  withNul.push_back('\0');
  withNul += "cd";
  ASSERT_EQ(withNul.size(), 5u);
  EXPECT_EQ(json::escape(withNul), "ab\\u0000cd");
  const json::Value parsed = json::parse(json::quote(withNul));
  ASSERT_TRUE(parsed.isString());
  EXPECT_EQ(parsed.text.size(), 5u);
  EXPECT_EQ(parsed.text, withNul);
}

TEST(Json, LoneSurrogateBytesPassThroughAsRawBytes) {
  // WTF-8 encoding of the unpaired surrogate U+D800 (ED A0 80): invalid
  // UTF-8, but the writer treats strings as byte sequences — every byte
  // is >= 0x20, so the three bytes pass through and round-trip intact.
  const std::string lone = "x\xed\xa0\x80y";
  EXPECT_EQ(json::escape(lone), lone);
  const json::Value parsed = json::parse(json::quote(lone));
  ASSERT_TRUE(parsed.isString());
  EXPECT_EQ(parsed.text, lone);
}

TEST(Json, ParserRejectsEscapesTheWriterCannotProduce) {
  // The writer only emits \u00XX, so the parser declines multilingual
  // \uXXXX escapes instead of silently guessing at UTF-16 surrogates.
  EXPECT_EQ(json::parse("\"\\u00ff\"").text, "\xff");
  EXPECT_THROW(json::parse("\"\\u0100\""), ParseError);
  EXPECT_THROW(json::parse("\"\\ud800\""), ParseError);
  EXPECT_THROW(json::parse("\"\\uZZZZ\""), ParseError);
}

TEST(TraceJsonl, NastyAttrValuesSurviveTheTraceRoundTrip) {
  // The same edge cases, end to end through the tracer's JSONL writer
  // and trace_reader's parser — what perflog/trace consumers actually do.
  std::string nasty = "caf\xc3\xa9\n\x01";
  nasty.push_back('\0');
  nasty += "\xed\xa0\x80 end";
  Tracer tracer;
  {
    ScopedSpan span(&tracer, "escape_probe");
    span.attr("payload", nasty);
    tracer.event("note", {{"payload", nasty}});
  }
  const TraceFile trace = parseTraceJsonl(tracer.toJsonl());
  ASSERT_EQ(trace.spans.size(), 1u);
  ASSERT_EQ(trace.events.size(), 1u);
  EXPECT_EQ(trace.spans[0].attrs.at("payload"), nasty);
  EXPECT_EQ(trace.events[0].attrs.at("payload"), nasty);
}

// ---- JSONL round-trip ----------------------------------------------------

Tracer makeSampleTrace(MetricsRegistry* metrics) {
  Tracer tracer;
  {
    ScopedSpan root(&tracer, "test_run");
    root.attr("test", "Sample");
    {
      ScopedSpan child(&tracer, "build");
      tracer.clock().advance(30.0);
      tracer.event("step", {{"cmd", "make -j"}});
    }
    metrics->counter("pipeline.runs").inc();
    metrics->gauge("sched.queue_depth").set(2.0);
    metrics->histogram("stage", stageSecondsBounds()).observe(30.0);
  }
  return tracer;
}

TEST(TraceJsonl, RoundTripsSpansEventsAndMetrics) {
  MetricsRegistry metrics;
  const Tracer tracer = makeSampleTrace(&metrics);
  const TraceFile trace = parseTraceJsonl(tracer.toJsonl(&metrics));

  EXPECT_EQ(trace.schema, kTraceSchema);
  EXPECT_EQ(trace.clockKind, "sim");
  ASSERT_EQ(trace.spans.size(), 2u);
  EXPECT_EQ(trace.spans[0].name, "build");
  EXPECT_EQ(trace.spans[0].parent, "1");
  EXPECT_EQ(trace.spans[1].attrs.at("test"), "Sample");
  ASSERT_EQ(trace.events.size(), 1u);
  EXPECT_EQ(trace.events[0].attrs.at("cmd"), "make -j");
  EXPECT_EQ(trace.counters.at("pipeline.runs"), 1u);
  EXPECT_DOUBLE_EQ(trace.gauges.at("sched.queue_depth").max, 2.0);
  EXPECT_EQ(trace.histograms.at("stage").count, 1u);
  EXPECT_TRUE(lintTrace(trace).empty());
}

TEST(TraceJsonl, IdenticalOperationsSerializeByteIdentically) {
  MetricsRegistry m1, m2;
  const std::string a = makeSampleTrace(&m1).toJsonl(&m1);
  const std::string b = makeSampleTrace(&m2).toJsonl(&m2);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

// ---- lint ----------------------------------------------------------------

TEST(TraceLint, FlagsStructuralViolations) {
  TraceFile trace;
  trace.schema = "rebench.trace/999";  // unknown version
  trace.clockKind = "sim";
  SpanRecord span;
  span.id = "1";
  span.name = "backwards";
  span.start = 5.0;
  span.end = 1.0;  // end before start
  trace.spans.push_back(span);
  SpanRecord orphan;
  orphan.id = "7.1";
  orphan.parent = "7";  // no such parent
  orphan.name = "orphan";
  trace.spans.push_back(orphan);
  EventRecord event;
  event.span = "42";  // no such span
  event.name = "lost";
  trace.events.push_back(event);
  trace.timeline = {{"span", 5.0}, {"span", 0.0}};  // not monotone

  const std::vector<std::string> issues = lintTrace(trace);
  EXPECT_GE(issues.size(), 4u);
  const std::string all = str::join(issues, "\n");
  EXPECT_TRUE(str::contains(all, "schema"));
  EXPECT_TRUE(str::contains(all, "backwards"));
  EXPECT_TRUE(str::contains(all, "7.1"));
  EXPECT_TRUE(str::contains(all, "42"));
}

TEST(TraceLint, CleanTracePasses) {
  Tracer tracer;
  {
    ScopedSpan root(&tracer, "root");
    ScopedSpan child(&tracer, "child");
    tracer.event("tick");
  }
  const TraceFile trace = parseTraceJsonl(tracer.toJsonl());
  EXPECT_TRUE(lintTrace(trace).empty());
}

// ---- absorb (the canonical-merge primitive) -------------------------------

TEST(TracerAbsorb, EmptyShardIsANoOp) {
  Tracer tracer;
  tracer.beginSpan("before");
  tracer.endSpan();
  const std::string before = tracer.toJsonl();

  Tracer empty;
  tracer.absorb(empty);
  EXPECT_EQ(tracer.toJsonl(), before);
  EXPECT_EQ(tracer.beginSpan("after"), "2");  // root numbering unchanged
  tracer.endSpan();
}

TEST(TracerAbsorb, RemapsDeeplyNestedShardRootsPastOurs) {
  Tracer tracer;
  tracer.beginSpan("host1");
  tracer.endSpan();
  tracer.beginSpan("host2");
  tracer.endSpan();

  Tracer shard;  // two roots, one deeply nested
  shard.beginSpan("shardroot1");
  shard.beginSpan("mid");
  shard.beginSpan("deep");
  shard.beginSpan("deeper");
  shard.endSpan();
  shard.endSpan();
  shard.endSpan();
  shard.endSpan();
  shard.beginSpan("shardroot2");
  shard.endSpan();

  tracer.absorb(shard);
  // Shard roots 1, 2 become 3, 4; nested ids keep their suffixes.
  std::map<std::string, std::string> parents;
  std::map<std::string, std::string> names;
  for (const SpanRecord& span : tracer.spans()) {
    parents[span.id] = span.parent;
    names[span.id] = span.name;
  }
  EXPECT_EQ(names.at("3"), "shardroot1");
  EXPECT_EQ(names.at("3.1.1.1"), "deeper");
  EXPECT_EQ(parents.at("3.1.1.1"), "3.1.1");
  EXPECT_EQ(names.at("4"), "shardroot2");
  // The merged trace is structurally clean.
  EXPECT_TRUE(lintTrace(parseTraceJsonl(tracer.toJsonl())).empty());
  // And the next root continues after the absorbed ones.
  EXPECT_EQ(tracer.beginSpan("next"), "5");
  tracer.endSpan();
}

TEST(TracerAbsorb, OffsetsShardTimesByOurClockAndAdvancesPastShardEnd) {
  Tracer tracer;
  tracer.clock().advance(100.0);

  Tracer shard;
  shard.beginSpan("work");
  shard.clock().advance(7.0);
  shard.endSpan();
  const double shardStart = shard.spans()[0].start;
  const double shardEnd = shard.spans()[0].end;

  tracer.absorb(shard);
  const SpanRecord& merged = tracer.spans().back();
  // The shard's timeline is replayed relative to our clock position.
  EXPECT_DOUBLE_EQ(merged.start, 100.0 + shardStart);
  EXPECT_DOUBLE_EQ(merged.end, 100.0 + shardEnd);
  // Our clock moved past the shard: the next reading cannot overlap it.
  EXPECT_GE(tracer.clock().peek(), merged.end);
}

TEST(TracerAbsorb, RequiresBothTracersToHaveNoOpenSpans) {
  Tracer open;
  open.beginSpan("still-open");
  Tracer closed;
  EXPECT_THROW(open.absorb(closed), InternalError);

  Tracer host;
  Tracer openShard;
  openShard.beginSpan("unfinished");
  EXPECT_THROW(host.absorb(openShard), InternalError);
}

TEST(TracerAnnotateCompleted, StampsEndedSpansAndRejectsUnknownIds) {
  Tracer tracer;
  const std::string id = tracer.beginSpan("exec.worker");
  tracer.endSpan();
  tracer.annotateCompleted(id, "lane", "3");
  EXPECT_EQ(tracer.spans()[0].attrs.at("lane"), "3");
  EXPECT_THROW(tracer.annotateCompleted("99", "lane", "0"), InternalError);
}

// ---- metrics merge hardening ---------------------------------------------

TEST(Metrics, HistogramMergeRejectsMismatchedBoundsWithClearError) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 5.0});
  a.observe(0.5);
  b.observe(4.0);
  try {
    a.merge(b);
    FAIL() << "merge accepted mismatched bounds";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_TRUE(str::contains(what, "mismatched bucket bounds"));
    EXPECT_TRUE(str::contains(what, "2"));  // our bound...
    EXPECT_TRUE(str::contains(what, "5"));  // ...vs theirs
  }
  // The failed merge corrupted nothing.
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.sum(), 0.5);
}

TEST(Metrics, RegistryMergeNamesTheOffendingHistogram) {
  MetricsRegistry ours, theirs;
  const std::vector<double> boundsA{0.1, 1.0};
  const std::vector<double> boundsB{0.5, 2.0};
  ours.histogram("stage_seconds", boundsA).observe(0.05);
  theirs.histogram("stage_seconds", boundsB).observe(0.7);
  try {
    ours.merge(theirs);
    FAIL() << "merge accepted mismatched bounds";
  } catch (const Error& e) {
    EXPECT_TRUE(str::contains(e.what(), "stage_seconds"));
    EXPECT_TRUE(str::contains(e.what(), "mismatched bucket bounds"));
  }
}

// ---- profiling lint contracts --------------------------------------------

TEST(TraceLint, ExecWorkerSpansRequireLaneAndSimSecondsStamps) {
  Tracer tracer;
  const std::string id = tracer.beginSpan("exec.worker");
  tracer.setAttr("campaign", "0");
  tracer.setAttr("test", "T");
  tracer.setAttr("target", "sys:part");
  tracer.setAttr("repeat", "0");
  tracer.endSpan();

  // Unstamped: both profiling attributes are reported missing.
  {
    const std::vector<std::string> issues =
        lintTrace(parseTraceJsonl(tracer.toJsonl()));
    const std::string all = str::join(issues, "\n");
    EXPECT_TRUE(str::contains(all, "lane"));
    EXPECT_TRUE(str::contains(all, "sim_seconds"));
  }
  // A non-numeric lane is rejected...
  tracer.annotateCompleted(id, "lane", "fast");
  tracer.annotateCompleted(id, "sim_seconds", "1.000000");
  {
    const std::vector<std::string> issues =
        lintTrace(parseTraceJsonl(tracer.toJsonl()));
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_TRUE(str::contains(issues[0], "lane"));
  }
  // ...and a properly stamped worker span passes.
  tracer.annotateCompleted(id, "lane", "2");
  EXPECT_TRUE(lintTrace(parseTraceJsonl(tracer.toJsonl())).empty());
}

TEST(TraceLint, ColumnarKernelSpansMustAccountForTheirWork) {
  Tracer tracer;
  const std::string id = tracer.beginSpan("postproc.columnar.kernel");
  tracer.endSpan();

  // Bare span: kernel name, row count and skip count all missing.
  {
    const std::vector<std::string> issues =
        lintTrace(parseTraceJsonl(tracer.toJsonl()));
    const std::string all = str::join(issues, "\n");
    EXPECT_TRUE(str::contains(all, "'kernel'"));
    EXPECT_TRUE(str::contains(all, "'rows'"));
    EXPECT_TRUE(str::contains(all, "'skipped_chunks'"));
  }
  // Non-numeric counts are rejected...
  tracer.annotateCompleted(id, "kernel", "group_by");
  tracer.annotateCompleted(id, "rows", "lots");
  tracer.annotateCompleted(id, "skipped_chunks", "0");
  {
    const std::vector<std::string> issues =
        lintTrace(parseTraceJsonl(tracer.toJsonl()));
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_TRUE(str::contains(issues[0], "non-numeric rows 'lots'"));
  }
  // ...and a fully stamped kernel span passes.
  tracer.annotateCompleted(id, "rows", "1000000");
  EXPECT_TRUE(lintTrace(parseTraceJsonl(tracer.toJsonl())).empty());
}

TEST(TraceLint, ColumnarMergeSpansRequireInputsAndChunks) {
  Tracer tracer;
  const std::string id = tracer.beginSpan("postproc.columnar.merge");
  tracer.setAttr("rows", "128");
  tracer.endSpan();
  {
    const std::vector<std::string> issues =
        lintTrace(parseTraceJsonl(tracer.toJsonl()));
    const std::string all = str::join(issues, "\n");
    EXPECT_TRUE(str::contains(all, "'inputs'"));
    EXPECT_TRUE(str::contains(all, "'chunks'"));
  }
  tracer.annotateCompleted(id, "inputs", "4");
  tracer.annotateCompleted(id, "chunks", "4");
  EXPECT_TRUE(lintTrace(parseTraceJsonl(tracer.toJsonl())).empty());
}

TEST(TraceLint, ColumnarConvertSpansRequireRowsAndChunks) {
  Tracer tracer;
  tracer.beginSpan("postproc.columnar.convert");
  tracer.setAttr("rows", "64");
  tracer.setAttr("chunks", "1");
  tracer.endSpan();
  EXPECT_TRUE(lintTrace(parseTraceJsonl(tracer.toJsonl())).empty());

  Tracer bare;
  bare.beginSpan("postproc.columnar.convert");
  bare.endSpan();
  const std::vector<std::string> issues =
      lintTrace(parseTraceJsonl(bare.toJsonl()));
  const std::string all = str::join(issues, "\n");
  EXPECT_TRUE(str::contains(all, "'rows'"));
  EXPECT_TRUE(str::contains(all, "'chunks'"));
}

TEST(TraceLint, FlagsNonMonotoneRootIdsAfterMerge) {
  // Hand-build a trace whose roots appear out of order — what a broken
  // absorb (or a hand-edited file) would produce.
  TraceFile trace;
  trace.schema = std::string(kTraceSchema);
  trace.clockKind = "sim";
  SpanRecord second;
  second.id = "2";
  second.name = "later";
  trace.spans.push_back(second);
  SpanRecord first;
  first.id = "1";
  first.name = "earlier";
  trace.spans.push_back(first);
  trace.timeline = {{"span", 0.0}, {"span", 0.0}};

  const std::vector<std::string> issues = lintTrace(trace);
  const std::string all = str::join(issues, "\n");
  EXPECT_TRUE(str::contains(all, "non-monotone root ids"));
}

TEST(TraceLint, AbsorbedShardsKeepRootIdsUniqueAndMonotone) {
  Tracer host;
  std::vector<Tracer> shards(3);
  for (std::size_t i = 0; i < shards.size(); ++i) {
    shards[i].beginSpan("exec.worker");
    shards[i].setAttr("campaign", std::to_string(i));
    shards[i].setAttr("test", "T" + std::to_string(i));
    shards[i].setAttr("target", "sys:part");
    shards[i].setAttr("repeat", "0");
    shards[i].clock().advance(1.0);
    shards[i].endSpan();
    shards[i].annotateCompleted("1", "lane", std::to_string(i));
    shards[i].annotateCompleted("1", "sim_seconds", "1.000000");
  }
  for (const Tracer& shard : shards) host.absorb(shard);
  const TraceFile merged = parseTraceJsonl(host.toJsonl());
  EXPECT_TRUE(lintTrace(merged).empty());
  ASSERT_EQ(merged.spans.size(), 3u);
  EXPECT_EQ(merged.spans[0].id, "1");
  EXPECT_EQ(merged.spans[1].id, "2");
  EXPECT_EQ(merged.spans[2].id, "3");
}

}  // namespace
}  // namespace rebench::obs
