// The observability subsystem: clocks, spans, metrics, JSONL round-trip
// and the structural lint.
#include <gtest/gtest.h>

#include "core/obs/json.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/trace.hpp"
#include "core/obs/trace_reader.hpp"
#include "core/util/error.hpp"
#include "core/util/strings.hpp"

namespace rebench::obs {
namespace {

// ---- clocks --------------------------------------------------------------

TEST(SimClock, ReadingsAreStrictlyIncreasing) {
  SimClock clock;
  const double a = clock.now();
  const double b = clock.now();
  const double c = clock.now();
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(SimClock, PeekHasNoSideEffect) {
  SimClock clock;
  clock.advance(5.0);
  EXPECT_DOUBLE_EQ(clock.peek(), 5.0);
  EXPECT_DOUBLE_EQ(clock.peek(), 5.0);
}

TEST(SimClock, AdvanceToNeverStepsBackwards) {
  SimClock clock;
  clock.advance(10.0);
  clock.advanceTo(3.0);  // behind: no-op
  EXPECT_DOUBLE_EQ(clock.peek(), 10.0);
  clock.advanceTo(12.5);
  EXPECT_DOUBLE_EQ(clock.peek(), 12.5);
}

TEST(SimClock, IsDeterministicAndKindSim) {
  SimClock a, b;
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(a.now(), b.now());
  EXPECT_TRUE(a.deterministic());
  EXPECT_EQ(a.kind(), "sim");
}

TEST(WallClock, AdvancesOnItsOwnAndIsNotDeterministic) {
  WallClock clock;
  EXPECT_FALSE(clock.deterministic());
  EXPECT_EQ(clock.kind(), "wall");
  const double a = clock.now();
  clock.advance(100.0);  // simulated seconds are ignored
  EXPECT_LT(clock.peek(), 50.0);
  EXPECT_GE(clock.now(), a);
}

// ---- spans ---------------------------------------------------------------

TEST(Tracer, HierarchicalIdsFollowNesting) {
  Tracer tracer;
  EXPECT_EQ(tracer.beginSpan("root"), "1");
  EXPECT_EQ(tracer.beginSpan("childA"), "1.1");
  tracer.endSpan();
  EXPECT_EQ(tracer.beginSpan("childB"), "1.2");
  EXPECT_EQ(tracer.beginSpan("grandchild"), "1.2.1");
  tracer.endSpan();
  tracer.endSpan();
  tracer.endSpan();
  EXPECT_EQ(tracer.beginSpan("second root"), "2");
  tracer.endSpan();
  EXPECT_EQ(tracer.openSpans(), 0u);

  ASSERT_EQ(tracer.spans().size(), 5u);
  // Spans land in end order; parents carry the hierarchical prefix.
  EXPECT_EQ(tracer.spans()[0].id, "1.1");
  EXPECT_EQ(tracer.spans()[0].parent, "1");
  EXPECT_EQ(tracer.spans()[1].id, "1.2.1");
  EXPECT_EQ(tracer.spans()[1].parent, "1.2");
  EXPECT_EQ(tracer.spans()[4].id, "2");
  EXPECT_EQ(tracer.spans()[4].parent, "");
}

TEST(Tracer, SpanTimesNestWithinParents) {
  Tracer tracer;
  tracer.beginSpan("outer");
  tracer.beginSpan("inner");
  tracer.clock().advance(2.0);
  tracer.endSpan();
  tracer.endSpan();
  const SpanRecord& inner = tracer.spans()[0];
  const SpanRecord& outer = tracer.spans()[1];
  EXPECT_GE(inner.start, outer.start);
  EXPECT_LE(inner.end, outer.end);
  EXPECT_GT(inner.duration(), 2.0 - 1e-9);
}

TEST(Tracer, SetAttrOnReachesAncestors) {
  Tracer tracer;
  tracer.beginSpan("outer");
  tracer.beginSpan("inner");
  tracer.setAttrOn("1", "outcome", "fail");
  tracer.setAttr("local", "yes");
  tracer.endSpan();
  tracer.endSpan();
  EXPECT_EQ(tracer.spans()[0].attrs.at("local"), "yes");
  EXPECT_EQ(tracer.spans()[1].attrs.at("outcome"), "fail");
  EXPECT_THROW(tracer.setAttrOn("1", "k", "v"), InternalError);  // closed
}

TEST(Tracer, EventsAttachToInnermostOpenSpan) {
  Tracer tracer;
  tracer.beginSpan("root");
  tracer.event("first");
  tracer.beginSpan("child");
  tracer.event("second", {{"key", "value"}});
  tracer.endSpan();
  tracer.endSpan();
  ASSERT_EQ(tracer.events().size(), 2u);
  EXPECT_EQ(tracer.events()[0].span, "1");
  EXPECT_EQ(tracer.events()[1].span, "1.1");
  EXPECT_EQ(tracer.events()[1].attrs.at("key"), "value");
}

TEST(Tracer, EventAtBehindClockStaysMonotone) {
  Tracer tracer;
  tracer.beginSpan("root");
  tracer.clock().advance(10.0);
  tracer.event("late");
  tracer.eventAt(2.0, "early-by-its-own-timeline");
  tracer.endSpan();
  EXPECT_GT(tracer.events()[1].time, tracer.events()[0].time);
}

TEST(ScopedSpan, RaiiEndsOnScopeExitAndIsNullSafe) {
  Tracer tracer;
  {
    ScopedSpan outer(&tracer, "outer");
    outer.attr("k", "v");
    { ScopedSpan inner(&tracer, "inner"); }
    EXPECT_EQ(tracer.openSpans(), 1u);
  }
  EXPECT_EQ(tracer.openSpans(), 0u);
  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.spans()[1].attrs.at("k"), "v");

  // Null tracer: every operation is a no-op.
  ScopedSpan null(nullptr, "nothing");
  null.attr("k", "v");
  null.end();
  EXPECT_EQ(null.id(), "");
}

TEST(ScopedSpan, EndIsIdempotentAndObservesHistogram) {
  Tracer tracer;
  Histogram hist({1.0, 60.0});
  {
    ScopedSpan span(&tracer, "stage", &hist);
    tracer.clock().advance(5.0);
    span.end();
    span.end();  // idempotent
  }
  EXPECT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_EQ(hist.counts()[1], 1u);  // 5 s lands in (1, 60]
}

// ---- metrics -------------------------------------------------------------

TEST(Metrics, CounterAccumulates) {
  Counter counter;
  counter.inc();
  counter.inc(4);
  EXPECT_EQ(counter.value(), 5u);
}

TEST(Metrics, GaugeTracksMaximum) {
  Gauge gauge;
  gauge.set(3.0);
  gauge.set(7.0);
  gauge.set(2.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.0);
  EXPECT_DOUBLE_EQ(gauge.max(), 7.0);
}

TEST(Metrics, HistogramBucketsAreInclusiveUpperBounds) {
  Histogram hist({1.0, 10.0, 100.0});
  ASSERT_EQ(hist.counts().size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(hist.bucketFor(0.5), 0u);
  EXPECT_EQ(hist.bucketFor(1.0), 0u);  // boundary is inclusive ("le")
  EXPECT_EQ(hist.bucketFor(1.0000001), 1u);
  EXPECT_EQ(hist.bucketFor(10.0), 1u);
  EXPECT_EQ(hist.bucketFor(100.0), 2u);
  EXPECT_EQ(hist.bucketFor(1e9), 3u);  // overflow bucket

  hist.observe(0.5);
  hist.observe(1.0);
  hist.observe(50.0);
  hist.observe(1000.0);
  EXPECT_EQ(hist.counts()[0], 2u);
  EXPECT_EQ(hist.counts()[2], 1u);
  EXPECT_EQ(hist.counts()[3], 1u);
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_DOUBLE_EQ(hist.sum(), 1051.5);
}

TEST(Metrics, RegistryReturnsStableHandles) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  a.inc();
  registry.counter("y").inc(10);  // may rebalance the map
  EXPECT_EQ(&registry.counter("x"), &a);
  EXPECT_EQ(registry.counter("x").value(), 1u);

  Histogram& h = registry.histogram("h", stageSecondsBounds());
  // Later lookups reuse the instrument; new bounds are ignored.
  const double other[] = {42.0};
  EXPECT_EQ(&registry.histogram("h", other), &h);
  EXPECT_EQ(h.bounds().size(), stageSecondsBounds().size());
}

// ---- JSON ----------------------------------------------------------------

TEST(Json, EscapeRoundTripsThroughParse) {
  const std::string nasty = "a\"b\\c\nd\te\rf\x01g";
  const json::Value parsed = json::parse(json::quote(nasty));
  ASSERT_TRUE(parsed.isString());
  EXPECT_EQ(parsed.text, nasty);
}

TEST(Json, ParseRejectsGarbage) {
  EXPECT_THROW(json::parse("{\"a\":}"), ParseError);
  EXPECT_THROW(json::parse("{} trailing"), ParseError);
  EXPECT_THROW(json::parse(""), ParseError);
}

// ---- JSONL round-trip ----------------------------------------------------

Tracer makeSampleTrace(MetricsRegistry* metrics) {
  Tracer tracer;
  {
    ScopedSpan root(&tracer, "test_run");
    root.attr("test", "Sample");
    {
      ScopedSpan child(&tracer, "build");
      tracer.clock().advance(30.0);
      tracer.event("step", {{"cmd", "make -j"}});
    }
    metrics->counter("pipeline.runs").inc();
    metrics->gauge("sched.queue_depth").set(2.0);
    metrics->histogram("stage", stageSecondsBounds()).observe(30.0);
  }
  return tracer;
}

TEST(TraceJsonl, RoundTripsSpansEventsAndMetrics) {
  MetricsRegistry metrics;
  const Tracer tracer = makeSampleTrace(&metrics);
  const TraceFile trace = parseTraceJsonl(tracer.toJsonl(&metrics));

  EXPECT_EQ(trace.schema, kTraceSchema);
  EXPECT_EQ(trace.clockKind, "sim");
  ASSERT_EQ(trace.spans.size(), 2u);
  EXPECT_EQ(trace.spans[0].name, "build");
  EXPECT_EQ(trace.spans[0].parent, "1");
  EXPECT_EQ(trace.spans[1].attrs.at("test"), "Sample");
  ASSERT_EQ(trace.events.size(), 1u);
  EXPECT_EQ(trace.events[0].attrs.at("cmd"), "make -j");
  EXPECT_EQ(trace.counters.at("pipeline.runs"), 1u);
  EXPECT_DOUBLE_EQ(trace.gauges.at("sched.queue_depth").max, 2.0);
  EXPECT_EQ(trace.histograms.at("stage").count, 1u);
  EXPECT_TRUE(lintTrace(trace).empty());
}

TEST(TraceJsonl, IdenticalOperationsSerializeByteIdentically) {
  MetricsRegistry m1, m2;
  const std::string a = makeSampleTrace(&m1).toJsonl(&m1);
  const std::string b = makeSampleTrace(&m2).toJsonl(&m2);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

// ---- lint ----------------------------------------------------------------

TEST(TraceLint, FlagsStructuralViolations) {
  TraceFile trace;
  trace.schema = "rebench.trace/999";  // unknown version
  trace.clockKind = "sim";
  SpanRecord span;
  span.id = "1";
  span.name = "backwards";
  span.start = 5.0;
  span.end = 1.0;  // end before start
  trace.spans.push_back(span);
  SpanRecord orphan;
  orphan.id = "7.1";
  orphan.parent = "7";  // no such parent
  orphan.name = "orphan";
  trace.spans.push_back(orphan);
  EventRecord event;
  event.span = "42";  // no such span
  event.name = "lost";
  trace.events.push_back(event);
  trace.timeline = {{"span", 5.0}, {"span", 0.0}};  // not monotone

  const std::vector<std::string> issues = lintTrace(trace);
  EXPECT_GE(issues.size(), 4u);
  const std::string all = str::join(issues, "\n");
  EXPECT_TRUE(str::contains(all, "schema"));
  EXPECT_TRUE(str::contains(all, "backwards"));
  EXPECT_TRUE(str::contains(all, "7.1"));
  EXPECT_TRUE(str::contains(all, "42"));
}

TEST(TraceLint, CleanTracePasses) {
  Tracer tracer;
  {
    ScopedSpan root(&tracer, "root");
    ScopedSpan child(&tracer, "child");
    tracer.event("tick");
  }
  const TraceFile trace = parseTraceJsonl(tracer.toJsonl());
  EXPECT_TRUE(lintTrace(trace).empty());
}

}  // namespace
}  // namespace rebench::obs
