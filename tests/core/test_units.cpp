#include "core/util/units.hpp"

#include <gtest/gtest.h>

#include "core/util/error.hpp"

namespace rebench {
namespace {

TEST(Units, NamesRoundTrip) {
  for (Unit u : {Unit::kNone, Unit::kSeconds, Unit::kGBperSec,
                 Unit::kMBperSec, Unit::kGFlopPerSec, Unit::kMDofPerSec,
                 Unit::kCount, Unit::kJoules, Unit::kWatts}) {
    EXPECT_EQ(unitFromName(unitName(u)), u);
  }
}

TEST(Units, UnknownNameThrows) {
  EXPECT_THROW(unitFromName("furlongs/fortnight"), ParseError);
}

TEST(Units, Direction) {
  EXPECT_TRUE(higherIsBetter(Unit::kGBperSec));
  EXPECT_TRUE(higherIsBetter(Unit::kGFlopPerSec));
  EXPECT_TRUE(higherIsBetter(Unit::kMDofPerSec));
  EXPECT_FALSE(higherIsBetter(Unit::kSeconds));
  EXPECT_FALSE(higherIsBetter(Unit::kJoules));
}

TEST(Units, FormatQuantity) {
  EXPECT_EQ(formatQuantity(282.0, Unit::kGBperSec), "282.00 GB/s");
  EXPECT_EQ(formatQuantity(24.0, Unit::kGFlopPerSec), "24.00 GFlop/s");
  EXPECT_EQ(formatQuantity(3.0, Unit::kCount), "3 count");
  EXPECT_EQ(formatQuantity(0.5, Unit::kNone), "0.50");
}

TEST(Units, FormatMegabytesMatchesPaperStyle) {
  // §3.1: 2^29 doubles = 4295.0 MB per array.
  const double bytes = 8.0 * (1ull << 29);
  EXPECT_EQ(formatMegabytes(bytes), "4295.0 MB");
  // and a total of three arrays = 12884.9 MB.
  EXPECT_EQ(formatMegabytes(3 * bytes), "12884.9 MB");
}

}  // namespace
}  // namespace rebench
