#include "core/postproc/hygiene.hpp"

#include <gtest/gtest.h>

#include "core/util/strings.hpp"

namespace rebench {
namespace {

PerfLogEntry entry(const std::string& system, const std::string& test,
                   const std::string& fom, double value,
                   const std::string& binary = "bin0",
                   const std::string& spec = "babelstream@4.0 model=omp") {
  PerfLogEntry e;
  e.system = system;
  e.partition = "compute";
  e.testName = test;
  e.fomName = fom;
  e.value = value;
  e.unit = Unit::kMBperSec;
  e.result = "pass";
  e.binaryId = binary;
  e.spec = spec;
  e.reference = value;
  return e;
}

std::vector<PerfLogEntry> healthyLog() {
  std::vector<PerfLogEntry> entries;
  for (int i = 0; i < 3; ++i) {
    entries.push_back(entry("archer2", "t", "Triad", 100.0 + i));
    entries.push_back(entry("csd3", "t", "Triad", 80.0 + i));
  }
  return entries;
}

TEST(Hygiene, HealthyLogIsClean) {
  const auto findings = auditPerflog(healthyLog());
  EXPECT_TRUE(findings.empty()) << renderHygieneReport(findings);
}

TEST(Hygiene, MissingUnitFlagged) {
  auto entries = healthyLog();
  entries[0].unit = Unit::kNone;
  const auto findings = auditPerflog(entries);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, HygieneRule::kMissingUnit);
}

TEST(Hygiene, SingleSampleFlagged) {
  std::vector<PerfLogEntry> entries = healthyLog();
  entries.push_back(entry("noctua2", "t", "Triad", 120.0));  // 1 sample
  const auto findings = auditPerflog(entries);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, HygieneRule::kSingleSample);
  EXPECT_TRUE(str::contains(findings[0].subject, "noctua2"));
}

TEST(Hygiene, MinSamplesConfigurable) {
  std::vector<PerfLogEntry> entries{entry("archer2", "t", "Triad", 1.0)};
  HygieneOptions lax;
  lax.minSamples = 1;
  EXPECT_TRUE(auditPerflog(entries, lax).empty());
}

TEST(Hygiene, MixedBinariesFlagged) {
  // Bailey's "secretly optimised" trap: the binary changed mid-series.
  auto entries = healthyLog();
  entries[2].binaryId = "bin-DIFFERENT";
  const auto findings = auditPerflog(entries);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, HygieneRule::kMixedBinaries);
}

TEST(Hygiene, CrossSystemSpecMismatchFlagged) {
  auto entries = healthyLog();
  // csd3 quietly ran a different problem variant.
  for (PerfLogEntry& e : entries) {
    if (e.system == "csd3") e.spec = "babelstream@4.0 model=tbb";
  }
  const auto findings = auditPerflog(entries);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, HygieneRule::kNotLikeForLike);
}

TEST(Hygiene, CompilerDifferencesAreNotSpecMismatches) {
  // Toolchains legitimately differ per system (Table 3!); only the
  // benchmark/problem part must match.
  auto entries = healthyLog();
  for (PerfLogEntry& e : entries) {
    e.spec = e.system == "archer2" ? "babelstream@4.0%gcc@11.2.0 model=omp"
                                   : "babelstream@4.0%gcc@9.2.0 model=omp";
  }
  EXPECT_TRUE(auditPerflog(entries).empty());
}

TEST(Hygiene, NoReferenceOnlyWhenRequired) {
  auto entries = healthyLog();
  for (PerfLogEntry& e : entries) e.reference.reset();
  EXPECT_TRUE(auditPerflog(entries).empty());
  HygieneOptions strict;
  strict.requireReferences = true;
  const auto findings = auditPerflog(entries, strict);
  ASSERT_EQ(findings.size(), 2u);  // one per series
  EXPECT_EQ(findings[0].rule, HygieneRule::kNoReference);
}

TEST(Hygiene, HighFailureRateFlagged) {
  auto entries = healthyLog();
  for (int i = 0; i < 4; ++i) {
    PerfLogEntry failed = entry("archer2", "t", "run", 0.0);
    failed.result = "error";
    entries.push_back(failed);
  }
  const auto findings = auditPerflog(entries);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, HygieneRule::kHighFailureRate);
}

TEST(Hygiene, ReportRendersAllFindings) {
  auto entries = healthyLog();
  entries[0].unit = Unit::kNone;
  entries[2].binaryId = "other";
  const auto findings = auditPerflog(entries);
  const std::string report = renderHygieneReport(findings);
  EXPECT_TRUE(str::contains(report, "missing-unit"));
  EXPECT_TRUE(str::contains(report, "mixed-binaries"));
  EXPECT_TRUE(str::contains(renderHygieneReport({}), "clean"));
}

TEST(Hygiene, RuleNamesDistinct) {
  std::set<std::string_view> names;
  for (HygieneRule rule :
       {HygieneRule::kMissingUnit, HygieneRule::kSingleSample,
        HygieneRule::kMixedBinaries, HygieneRule::kNotLikeForLike,
        HygieneRule::kNoReference, HygieneRule::kHighFailureRate}) {
    names.insert(hygieneRuleName(rule));
  }
  EXPECT_EQ(names.size(), 6u);
}

}  // namespace
}  // namespace rebench
