// The parallel campaign executor's contracts: single-flight build
// deduplication (exactly one build per cold key no matter how many
// campaigns need it), and byte-identical perflog/trace output for every
// --jobs value even when worker completion order is adversarial or the
// campaign quarantines under injected infrastructure faults.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/framework/pipeline.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/trace.hpp"
#include "core/store/object_store.hpp"
#include "core/util/strings.hpp"

namespace rebench {
namespace {

RegressionTest streamTest(std::string name, double triad = 100000.0,
                          int sleepMillis = 0) {
  RegressionTest test;
  test.name = std::move(name);
  test.spackSpec = "stream%gcc";
  test.numTasks = 1;
  test.numTasksPerNode = 1;
  test.sanityPattern = "Solution Validates";
  test.perfPatterns = {{"Triad", R"(Triad:\s+([0-9.]+))", Unit::kMBperSec}};
  test.run = [triad, sleepMillis](const RunContext&) {
    if (sleepMillis > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleepMillis));
    }
    return RunOutput{"Triad: " + str::fixed(triad, 1) +
                         " MB/s\nSolution Validates\n",
                     12.0, false, ""};
  };
  return test;
}

std::string tempDir(const std::string& leaf) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / leaf).string();
  std::filesystem::remove_all(dir);
  return dir;
}

class ParallelExecutorFixture : public ::testing::Test {
 protected:
  ParallelExecutorFixture()
      : systems_(builtinSystems()), repo_(builtinRepository()) {}
  SystemRegistry systems_;
  PackageRepository repo_;
};

TEST_F(ParallelExecutorFixture, SingleFlightBuildsColdKeyExactlyOnce) {
  // Four concurrent repeats of the same campaign share one build key;
  // the leader builds it once and the other three wait instead of
  // rebuilding.
  const std::string dir = tempDir("sf_dedup_store");
  store::ObjectStore store(dir);
  PipelineOptions options;
  options.numRepeats = 4;
  options.jobs = 4;
  options.store = &store;
  Pipeline pipeline(systems_, repo_, options);
  const std::vector<RegressionTest> tests{streamTest("SfDedup")};
  const std::vector<std::string> targets{"archer2"};
  CampaignReport report;
  const auto results =
      pipeline.runAll(tests, targets, nullptr, nullptr, &report);
  ASSERT_EQ(results.size(), 4u);
  for (const TestRunResult& result : results) EXPECT_TRUE(result.passed);

  EXPECT_EQ(report.executed, 4u);
  EXPECT_EQ(report.uniqueBuilds, 1u);
  EXPECT_EQ(report.dedupedBuilds, 3u);
  ASSERT_NE(pipeline.buildCache(), nullptr);
  const store::BuildCache::Stats stats = pipeline.buildCache()->stats();
  EXPECT_EQ(stats.misses, 1u);  // the leader's one real build
  EXPECT_EQ(stats.hits, 3u);    // each follower reuses the published record
  EXPECT_EQ(stats.singleFlightDeduped, 3u);
  std::filesystem::remove_all(dir);
}

TEST_F(ParallelExecutorFixture, AdversarialCompletionOrderIsByteInvariant) {
  // Three campaigns whose real-time durations are inverse to their
  // canonical order: under jobs=3 the *last* campaign finishes first, so
  // any completion-order leak in the merge would reorder the output.
  auto campaign = [&](int jobs) {
    obs::Tracer tracer;
    obs::MetricsRegistry metrics;
    PipelineOptions options;
    options.jobs = jobs;
    options.tracer = &tracer;
    options.metrics = &metrics;
    Pipeline pipeline(systems_, repo_, options);
    const std::vector<RegressionTest> tests{
        streamTest("ShuffleA", 100000.0, 120),
        streamTest("ShuffleB", 110000.0, 60),
        streamTest("ShuffleC", 120000.0, 0),
    };
    const std::vector<std::string> targets{"archer2"};
    PerfLog perflog;
    pipeline.runAll(tests, targets, &perflog);
    std::string joined;
    for (const std::string& line : perflog.lines()) joined += line + "\n";
    return std::pair{joined, tracer.toJsonl(&metrics)};
  };
  const auto [perflogSerial, traceSerial] = campaign(1);
  const auto [perflogParallel, traceParallel] = campaign(3);
  EXPECT_FALSE(perflogSerial.empty());
  EXPECT_EQ(perflogSerial, perflogParallel);
  EXPECT_EQ(traceSerial, traceParallel);
  // Canonical order: ShuffleA's lines precede ShuffleC's even though
  // ShuffleC finished first under jobs=3.
  EXPECT_LT(perflogParallel.find("ShuffleA"), perflogParallel.find("ShuffleC"));
}

TEST_F(ParallelExecutorFixture, FaultedQuarantiningCampaignIsJobsInvariant) {
  // Node faults plus a low breaker threshold: speculative campaigns race
  // ahead of quarantine decisions under jobs=4 and must be discarded /
  // repaired back to exactly the serial bytes — including which breaker
  // keys opened, in which order.
  auto campaign = [&](int jobs) {
    obs::Tracer tracer;
    obs::MetricsRegistry metrics;
    PipelineOptions options;
    options.faults.seed = 7;
    options.faults.nodeFailProb = 0.9;
    options.retry.seed = options.faults.seed;
    options.breaker.pairThreshold = 2;
    options.numRepeats = 3;
    options.jobs = jobs;
    options.tracer = &tracer;
    options.metrics = &metrics;
    Pipeline pipeline(systems_, repo_, options);
    const std::vector<RegressionTest> tests{streamTest("QuarShuffle")};
    const std::vector<std::string> targets{"isambard-macs:cascadelake",
                                           "isambard-macs:volta"};
    PerfLog perflog;
    CampaignReport report;
    pipeline.runAll(tests, targets, &perflog, nullptr, &report);
    std::string joined;
    for (const std::string& line : perflog.lines()) joined += line + "\n";
    return std::tuple{joined, tracer.toJsonl(&metrics), report};
  };
  const auto [perflogSerial, traceSerial, reportSerial] = campaign(1);
  const auto [perflogParallel, traceParallel, reportParallel] = campaign(4);
  EXPECT_EQ(perflogSerial, perflogParallel);
  EXPECT_EQ(traceSerial, traceParallel);
  EXPECT_EQ(reportSerial.executed, reportParallel.executed);
  EXPECT_EQ(reportSerial.quarantined, reportParallel.quarantined);
  EXPECT_EQ(reportSerial.quarantinedKeys, reportParallel.quarantinedKeys);
  EXPECT_GT(reportSerial.quarantined, 0u);  // the breaker actually opened
}

}  // namespace
}  // namespace rebench
