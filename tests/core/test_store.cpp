// Layer-1/3 store tests: content addressing, LRU eviction under a size
// cap, verified (corruption-rejecting) reads, index persistence and the
// provenance-keyed build cache's hit/drift behaviour.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/concretizer/concretizer.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/trace.hpp"
#include "core/pkg/build_plan.hpp"
#include "core/store/build_cache.hpp"
#include "core/store/object_store.hpp"
#include "core/sysconfig/system_config.hpp"
#include "core/util/error.hpp"

namespace rebench::store {
namespace {

namespace fs = std::filesystem;

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("rebench-store-test-" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(StoreTest, PutGetRoundtrip) {
  ObjectStore store(dir_);
  const std::string hash = store.put("hello, artifacts");
  EXPECT_EQ(hash, ObjectStore::hashBytes("hello, artifacts"));
  EXPECT_TRUE(store.contains(hash));
  const auto bytes = store.get(hash);
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(*bytes, "hello, artifacts");
  EXPECT_EQ(store.objectCount(), 1u);
  EXPECT_EQ(store.totalBytes(), 16u);
}

TEST_F(StoreTest, DoublePutIsIdempotent) {
  ObjectStore store(dir_);
  const std::string first = store.put("same bytes");
  const std::string second = store.put("same bytes");
  EXPECT_EQ(first, second);
  EXPECT_EQ(store.objectCount(), 1u);
  EXPECT_EQ(store.stats().puts, 2u);
  EXPECT_EQ(store.stats().dedupedPuts, 1u);
}

// Two handles on the same directory (the closest a deterministic test
// gets to concurrent writers) both put the same bytes; the blob exists
// once and both handles can read it back.
TEST_F(StoreTest, TwoHandlesDoublePut) {
  ObjectStore a(dir_);
  ObjectStore b(dir_);
  const std::string ha = a.put("shared blob");
  const std::string hb = b.put("shared blob");
  EXPECT_EQ(ha, hb);
  EXPECT_TRUE(a.get(ha).has_value());
  EXPECT_TRUE(b.get(hb).has_value());
  ObjectStore reopened(dir_);
  EXPECT_EQ(reopened.objectCount(), 1u);
}

TEST_F(StoreTest, PersistsAcrossReopen) {
  std::string hash;
  {
    ObjectStore store(dir_);
    hash = store.put("durable");
    store.setRef("latest", hash);
  }
  ObjectStore reopened(dir_);
  EXPECT_EQ(reopened.objectCount(), 1u);
  ASSERT_TRUE(reopened.get(hash).has_value());
  ASSERT_TRUE(reopened.ref("latest").has_value());
  EXPECT_EQ(*reopened.ref("latest"), hash);
}

TEST_F(StoreTest, EvictsLeastRecentlyUsedUnderSizeCap) {
  ObjectStore store(dir_, {.maxBytes = 30});
  const std::string a = store.put(std::string(10, 'a'));
  const std::string b = store.put(std::string(10, 'b'));
  const std::string c = store.put(std::string(10, 'c'));
  EXPECT_EQ(store.objectCount(), 3u);
  // Touch `a` so `b` becomes the LRU victim.
  EXPECT_TRUE(store.get(a).has_value());
  const std::string d = store.put(std::string(10, 'd'));
  EXPECT_EQ(store.objectCount(), 3u);
  EXPECT_EQ(store.stats().evictions, 1u);
  EXPECT_FALSE(store.contains(b));
  EXPECT_TRUE(store.contains(a));
  EXPECT_TRUE(store.contains(c));
  EXPECT_TRUE(store.contains(d));
  EXPECT_LE(store.totalBytes(), 30u);
}

TEST_F(StoreTest, OversizedPutNeverEvictsItself) {
  ObjectStore store(dir_, {.maxBytes = 8});
  const std::string big = store.put("way more than eight bytes");
  EXPECT_TRUE(store.contains(big));
  // The next put evicts the oversized blob, not itself.
  const std::string small = store.put("tiny");
  EXPECT_TRUE(store.contains(small));
  EXPECT_FALSE(store.contains(big));
}

TEST_F(StoreTest, RefToEvictedObjectReadsUnset) {
  ObjectStore store(dir_, {.maxBytes = 12});
  const std::string hash = store.put("pinned bytes");
  store.setRef("build/key", hash);
  ASSERT_TRUE(store.ref("build/key").has_value());
  store.put("replacement bytes longer");
  EXPECT_FALSE(store.contains(hash));
  EXPECT_FALSE(store.ref("build/key").has_value());
}

TEST_F(StoreTest, TruncatedBlobIsRejectedAndDeleted) {
  ObjectStore store(dir_);
  const std::string hash = store.put("bytes that will be truncated");
  {
    std::ofstream out(store.objectPath(hash), std::ios::trunc);
    out << "bytes";
  }
  EXPECT_FALSE(store.get(hash).has_value());
  EXPECT_EQ(store.stats().corrupt, 1u);
  EXPECT_FALSE(store.contains(hash));
  EXPECT_FALSE(fs::exists(store.objectPath(hash)));
}

TEST_F(StoreTest, CorruptBlobEmitsCounter) {
  obs::MetricsRegistry metrics;
  ObjectStore store(dir_);
  store.setObservability(nullptr, &metrics);
  const std::string hash = store.put("tamper target");
  {
    std::ofstream out(store.objectPath(hash), std::ios::trunc);
    out << "tampered!";
  }
  EXPECT_FALSE(store.get(hash).has_value());
  EXPECT_EQ(metrics.counter("store.corrupt").value(), 1u);
}

TEST_F(StoreTest, IndexSchemaMismatchThrows) {
  fs::create_directories(dir_);
  {
    std::ofstream out(fs::path(dir_) / "index.jsonl");
    out << "{\"kind\":\"meta\",\"schema\":\"rebench.store/999\"}\n";
  }
  EXPECT_THROW(ObjectStore{dir_}, Error);
}

TEST_F(StoreTest, ToleratesTruncatedIndexTail) {
  std::string hash;
  {
    ObjectStore store(dir_);
    hash = store.put("survives a crash");
  }
  {
    std::ofstream out(fs::path(dir_) / "index.jsonl", std::ios::app);
    out << "{\"kind\":\"pu";  // crash mid-append
  }
  ObjectStore reopened(dir_);
  EXPECT_TRUE(reopened.get(hash).has_value());
}

TEST_F(StoreTest, PinnedObjectSurvivesEvictionPressure) {
  ObjectStore store(dir_, {.maxBytes = 30});
  const std::string pinned = store.put(std::string(10, 'a'));
  store.pin(pinned);
  EXPECT_TRUE(store.pinned(pinned));
  // Three younger puts would normally push `pinned` (the LRU entry) out.
  store.put(std::string(10, 'b'));
  store.put(std::string(10, 'c'));
  store.put(std::string(10, 'd'));
  EXPECT_TRUE(store.contains(pinned));
  EXPECT_GT(store.stats().evictions, 0u);
}

TEST_F(StoreTest, UnpinMakesObjectEvictableAgain) {
  ObjectStore store(dir_, {.maxBytes = 30});
  const std::string hash = store.put(std::string(10, 'a'));
  store.pin(hash);
  store.put(std::string(10, 'b'));
  store.put(std::string(10, 'c'));
  store.put(std::string(10, 'd'));
  EXPECT_TRUE(store.contains(hash));
  store.unpin(hash);
  EXPECT_FALSE(store.pinned(hash));
  store.put(std::string(10, 'e'));
  EXPECT_FALSE(store.contains(hash));
}

TEST_F(StoreTest, EvictionStopsWhenOnlyPinnedObjectsRemain) {
  ObjectStore store(dir_, {.maxBytes = 12});
  const std::string a = store.put("first pinned");
  store.pin(a);
  // Over the cap with no unpinned victim: the put must still land and
  // the pinned object must still be there.
  const std::string b = store.put("second blob over cap");
  EXPECT_TRUE(store.contains(a));
  EXPECT_TRUE(store.contains(b));
}

TEST_F(StoreTest, PinPersistsAcrossReopen) {
  std::string hash;
  {
    ObjectStore store(dir_, {.maxBytes = 30});
    hash = store.put(std::string(10, 'a'));
    store.pin(hash);
  }
  ObjectStore reopened(dir_, {.maxBytes = 30});
  EXPECT_TRUE(reopened.pinned(hash));
  reopened.put(std::string(10, 'b'));
  reopened.put(std::string(10, 'c'));
  reopened.put(std::string(10, 'd'));
  EXPECT_TRUE(reopened.contains(hash));
}

TEST_F(StoreTest, CompactIndexPreservesEntriesRefsPinsAndLruOrder) {
  ObjectStore store(dir_, {.maxBytes = 0});
  const std::string a = store.put("object a");
  const std::string b = store.put("object b");
  const std::string c = store.put("object c");
  store.setRef("latest", c);
  store.pin(b);
  // Touch `a` so it is the *newest* entry; after compaction + reopen the
  // LRU victim under pressure must still be `c` (oldest unpinned).
  EXPECT_TRUE(store.get(a).has_value());
  const std::size_t lines = store.compactIndex();
  // meta + 3 puts + 1 ref + 1 pin.
  EXPECT_EQ(lines, 6u);

  ObjectStore reopened(dir_, {.maxBytes = 26});
  EXPECT_EQ(reopened.objectCount(), 3u);
  EXPECT_TRUE(reopened.pinned(b));
  ASSERT_TRUE(reopened.ref("latest").has_value());
  EXPECT_EQ(*reopened.ref("latest"), c);
  reopened.put("object d!");
  EXPECT_FALSE(reopened.contains(c));
  EXPECT_TRUE(reopened.contains(a));
  EXPECT_TRUE(reopened.contains(b));
}

TEST_F(StoreTest, CompactIndexDropsTouchAndEvictChurn) {
  ObjectStore store(dir_);
  const std::string hash = store.put("churny object");
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(store.get(hash).has_value());
  const auto sizeBefore = fs::file_size(fs::path(dir_) / "index.jsonl");
  EXPECT_EQ(store.compactIndex(), 2u);  // meta + one put
  const auto sizeAfter = fs::file_size(fs::path(dir_) / "index.jsonl");
  EXPECT_LT(sizeAfter, sizeBefore);
  ObjectStore reopened(dir_);
  EXPECT_TRUE(reopened.get(hash).has_value());
}

class BuildCacheTest : public StoreTest {
 protected:
  BuildPlan planFor(const std::string& system) {
    const SystemRegistry systems = builtinSystems();
    Concretizer concretizer(repo_, systems.get(system).environment);
    return makeBuildPlan(
        *concretizer.concretize(Spec::parse("hpgmg%gcc")).root);
  }
  PackageRepository repo_ = builtinRepository();
};

TEST_F(BuildCacheTest, MissThenHitReusesEveryStep) {
  ObjectStore store(dir_);
  BuildCache cache(store, nullptr, nullptr);
  const BuildPlan plan = planFor("archer2");
  const std::string key = BuildCache::cacheKey(plan.rootHash, "env-fp",
                                               plan.planHash());
  EXPECT_FALSE(cache.lookup(key, plan).has_value());

  Builder builder(/*rebuildEveryRun=*/true);
  const BuildRecord record = builder.build(plan, &cache, "env-fp");
  EXPECT_GT(record.stepsExecuted, 0);

  const BuildRecord reused = builder.build(plan, &cache, "env-fp");
  EXPECT_EQ(reused.stepsExecuted, 0);
  EXPECT_EQ(reused.stepsReusedFromCache,
            static_cast<int>(plan.steps.size()));
  EXPECT_EQ(reused.binaryId, record.binaryId);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST_F(BuildCacheTest, EnvironmentDriftForcesRebuild) {
  ObjectStore store(dir_);
  BuildCache cache(store, nullptr, nullptr);
  const BuildPlan plan = planFor("archer2");
  Builder builder(/*rebuildEveryRun=*/true);
  builder.build(plan, &cache, "env-before");
  const BuildRecord rebuilt = builder.build(plan, &cache, "env-after");
  EXPECT_GT(rebuilt.stepsExecuted, 0);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST_F(BuildCacheTest, RecipeDriftForcesRebuild) {
  ObjectStore store(dir_);
  BuildCache cache(store, nullptr, nullptr);
  const BuildPlan archer = planFor("archer2");
  const BuildPlan cosma = planFor("cosma8");
  ASSERT_NE(archer.planHash(), cosma.planHash());
  Builder builder(/*rebuildEveryRun=*/true);
  builder.build(archer, &cache, "fp");
  const BuildRecord rebuilt = builder.build(cosma, &cache, "fp");
  EXPECT_GT(rebuilt.stepsExecuted, 0);
  EXPECT_EQ(cache.stats().hits, 0u);
}

// A record whose stored provenance disagrees with the plan (simulated by
// wiring one key at another plan's record) is drift, not a hit.
TEST_F(BuildCacheTest, MismatchedRecordIsDriftNotHit) {
  ObjectStore store(dir_);
  BuildCache cache(store, nullptr, nullptr);
  const BuildPlan archer = planFor("archer2");
  const BuildPlan cosma = planFor("cosma8");
  Builder builder(/*rebuildEveryRun=*/true);
  builder.build(archer, &cache, "fp");
  const std::string cosmaKey =
      BuildCache::cacheKey(cosma.rootHash, "fp", cosma.planHash());
  const std::string archerKey =
      BuildCache::cacheKey(archer.rootHash, "fp", archer.planHash());
  store.setRef("build/" + cosmaKey, *store.ref("build/" + archerKey));
  EXPECT_FALSE(cache.lookup(cosmaKey, cosma).has_value());
}

TEST_F(BuildCacheTest, LookupEmitsSpanAndCounters) {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  ObjectStore store(dir_);
  BuildCache cache(store, &tracer, &metrics);
  const BuildPlan plan = planFor("archer2");
  Builder builder(/*rebuildEveryRun=*/true);
  builder.build(plan, &cache, "fp");
  builder.build(plan, &cache, "fp");
  EXPECT_EQ(metrics.counter("store.miss").value(), 1u);
  EXPECT_EQ(metrics.counter("store.hit").value(), 1u);
  const std::string jsonl = tracer.toJsonl(&metrics);
  EXPECT_NE(jsonl.find("store.lookup"), std::string::npos);
  EXPECT_NE(jsonl.find("\"outcome\":\"hit\""), std::string::npos);
  EXPECT_NE(jsonl.find("store.put"), std::string::npos);
}

TEST_F(BuildCacheTest, RecordRoundtrip) {
  BuildRecord record;
  record.rootHash = "roothash";
  record.planHash = "planhash";
  record.binaryId = "binid";
  record.buildSeconds = 12.5;
  record.stepsExecuted = 4;
  const auto parsed = BuildCache::parseRecord(BuildCache::serializeRecord(record));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->rootHash, "roothash");
  EXPECT_EQ(parsed->planHash, "planhash");
  EXPECT_EQ(parsed->binaryId, "binid");
  EXPECT_DOUBLE_EQ(parsed->buildSeconds, 12.5);
  EXPECT_EQ(parsed->stepsExecuted, 4);
  EXPECT_FALSE(BuildCache::parseRecord("not json").has_value());
  EXPECT_FALSE(BuildCache::parseRecord("{\"kind\":\"other\"}").has_value());
}

}  // namespace
}  // namespace rebench::store
