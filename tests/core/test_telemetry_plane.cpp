// Live telemetry plane tests (ISSUE 10): the bounded event bus and its
// flight-record dump, the deterministic sim resource probe, the
// TelemetryPlane's HTTP routing, and a real StatusServer round-trip on
// an ephemeral port via the in-test httpGet client.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/obs/json.hpp"
#include "core/telemetry/bus.hpp"
#include "core/telemetry/http.hpp"
#include "core/telemetry/plane.hpp"
#include "core/telemetry/probe.hpp"
#include "core/util/error.hpp"

namespace rebench::telemetry {
namespace {

namespace fs = std::filesystem;

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---- event bus -----------------------------------------------------------

TEST(EventBus, SequenceNumbersAreMonotoneFromOne) {
  EventBus bus(8);
  EXPECT_EQ(bus.lastSeq(), 0u);
  EXPECT_EQ(bus.publish("service", "", "start"), 1u);
  EXPECT_EQ(bus.publish("journal", "abc", "claim"), 2u);
  EXPECT_EQ(bus.publish("verdict", "abc", "passed"), 3u);
  EXPECT_EQ(bus.lastSeq(), 3u);
  EXPECT_EQ(bus.dropped(), 0u);
}

TEST(EventBus, RingDropsOldestBeyondCapacity) {
  EventBus bus(4);
  for (int i = 0; i < 10; ++i) {
    bus.publish("exec", "", "step-" + std::to_string(i));
  }
  EXPECT_EQ(bus.lastSeq(), 10u);
  EXPECT_EQ(bus.dropped(), 6u);
  const std::vector<TelemetryEvent> ring = bus.snapshot();
  ASSERT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.front().seq, 7u);  // oldest survivor
  EXPECT_EQ(ring.back().seq, 10u);
  EXPECT_EQ(ring.back().stage, "step-9");
}

TEST(EventBus, SinceFiltersBySequence) {
  EventBus bus;
  bus.publish("a", "", "one");
  bus.publish("b", "", "two");
  bus.publish("c", "", "three");
  const std::vector<TelemetryEvent> tail = bus.since(1);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].kind, "b");
  EXPECT_EQ(tail[1].kind, "c");
  EXPECT_TRUE(bus.since(3).empty());
}

TEST(EventBus, WallSecondsAreNonDecreasing) {
  EventBus bus;
  double first = -1.0;
  double second = -1.0;
  bus.publish("a", "", "one", {}, &first);
  bus.publish("a", "", "two", {}, &second);
  EXPECT_GE(first, 0.0);
  EXPECT_GE(second, first);
}

TEST(EventBus, RenderEventIsParseableJsonWithSortedAttrs) {
  EventBus bus;
  bus.publish("journal", "deadbeef", "executed",
              {{"runs", "4"}, {"key", "k1"}});
  const std::vector<TelemetryEvent> ring = bus.snapshot();
  ASSERT_EQ(ring.size(), 1u);
  const std::string line = renderEvent(ring[0]);
  const obs::json::Value parsed = obs::json::parse(line);
  ASSERT_TRUE(parsed.isObject());
  EXPECT_EQ(parsed.stringOr("kind", ""), "journal");
  EXPECT_EQ(parsed.stringOr("submission", ""), "deadbeef");
  EXPECT_EQ(parsed.stringOr("stage", ""), "executed");
  EXPECT_EQ(parsed.numberOr("seq", 0), 1.0);
  // AttrMap is a std::map, so attrs land key-sorted in the rendering.
  EXPECT_LT(line.find("\"key\""), line.find("\"runs\""));
}

// ---- flight recorder -----------------------------------------------------

TEST(FlightRecord, DumpWritesMetaLineThenEventsOldestFirst) {
  const std::string dir =
      (fs::temp_directory_path() / "rebench-flightrec-test").string();
  fs::remove_all(dir);
  fs::create_directories(dir);

  EventBus bus(4);
  for (int i = 0; i < 6; ++i) {
    bus.publish("exec", "sub", "step-" + std::to_string(i));
  }
  const std::string path = dumpFlightRecord(dir, bus);
  EXPECT_EQ(path, dir + "/flightrec-6.jsonl");
  ASSERT_TRUE(fs::exists(path));

  std::istringstream in(readFile(path));
  std::string metaLine;
  ASSERT_TRUE(std::getline(in, metaLine));
  const obs::json::Value meta = obs::json::parse(metaLine);
  EXPECT_EQ(meta.stringOr("schema", ""), std::string(kFlightRecordSchema));
  EXPECT_EQ(meta.numberOr("events", 0), 4.0);
  EXPECT_EQ(meta.numberOr("dropped", 0), 2.0);

  std::string line;
  std::uint64_t previousSeq = 0;
  int events = 0;
  while (std::getline(in, line)) {
    const obs::json::Value event = obs::json::parse(line);
    const auto seq = static_cast<std::uint64_t>(event.numberOr("seq", 0));
    EXPECT_GT(seq, previousSeq);
    previousSeq = seq;
    ++events;
  }
  EXPECT_EQ(events, 4);
  EXPECT_EQ(previousSeq, 6u);  // last line is the newest event
  fs::remove_all(dir);
}

TEST(FlightRecord, EmptyBusWritesNothing) {
  const std::string dir =
      (fs::temp_directory_path() / "rebench-flightrec-empty").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  EventBus bus;
  EXPECT_EQ(dumpFlightRecord(dir, bus), "");
  EXPECT_TRUE(fs::is_empty(dir));
  fs::remove_all(dir);
}

// ---- resource probe ------------------------------------------------------

TEST(ResourceProbe, ModeNamesRoundTripAndRejectUnknown) {
  ProbeMode mode = ProbeMode::kReal;
  EXPECT_TRUE(probeModeFromName("", &mode));
  EXPECT_EQ(mode, ProbeMode::kOff);
  EXPECT_TRUE(probeModeFromName("sim", &mode));
  EXPECT_EQ(mode, ProbeMode::kSim);
  EXPECT_TRUE(probeModeFromName("real", &mode));
  EXPECT_EQ(mode, ProbeMode::kReal);
  EXPECT_FALSE(probeModeFromName("bogus", &mode));
  EXPECT_EQ(mode, ProbeMode::kReal);  // unchanged on reject
  EXPECT_EQ(probeModeName(ProbeMode::kSim), "sim");
}

TEST(ResourceProbe, OffModeIsInactiveAndSamplesZero) {
  ResourceProbe probe(ProbeMode::kOff);
  EXPECT_FALSE(probe.active());
  const ResourceSample sample = probe.delta(probe.mark(), "any", 1.0);
  EXPECT_EQ(sample.userMs, 0.0);
  EXPECT_EQ(sample.maxRssKb, 0);
}

TEST(ResourceProbe, SimModeIsAPureFunctionOfKeyAndSeconds) {
  ResourceProbe probe(ProbeMode::kSim);
  EXPECT_TRUE(probe.active());
  const std::string key = "StreamTest|cpu|0|1|run";
  const ResourceSample a = probe.delta(probe.mark(), key, 2.5);
  const ResourceSample b = probe.delta(probe.mark(), key, 2.5);
  EXPECT_EQ(a.userMs, b.userMs);
  EXPECT_EQ(a.sysMs, b.sysMs);
  EXPECT_EQ(a.maxRssKb, b.maxRssKb);
  EXPECT_EQ(a.minorFaults, b.minorFaults);
  EXPECT_EQ(a.ioBlocks, b.ioBlocks);
  // Plausible shape: non-negative, RSS present.
  EXPECT_GE(a.userMs, 0.0);
  EXPECT_GT(a.maxRssKb, 0);

  const ResourceSample other =
      probe.delta(probe.mark(), "StreamTest|cpu|1|1|run", 2.5);
  EXPECT_TRUE(other.userMs != a.userMs || other.maxRssKb != a.maxRssKb)
      << "distinct stage keys should produce distinct samples";
}

TEST(ResourceProbe, RealModeObservesThisProcess) {
  ResourceProbe probe(ProbeMode::kReal);
  const ResourceProbe::Mark mark = probe.mark();
  // Burn a little CPU so the delta has something to see.
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink = sink + static_cast<double>(i) * 1e-9;
  const ResourceSample sample = probe.delta(mark, "ignored", 0.0);
  EXPECT_GE(sample.userMs, 0.0);
  EXPECT_GE(sample.sysMs, 0.0);
  EXPECT_GT(sample.maxRssKb, 0);  // peak RSS of a live process is never 0
}

// ---- telemetry plane -----------------------------------------------------

TEST(TelemetryPlane, HealthJsonMirrorsStatsAndInflight) {
  TelemetryPlane plane;
  plane.setStat("processed", 3);
  plane.setStat("cached", 1);
  plane.setQueueDepth(2);
  plane.setWatchdogArms(2);
  plane.noteRunCache(true);
  plane.noteRunCache(false);
  plane.noteStage("abc123", "journal", "claim");

  const obs::json::Value health = obs::json::parse(plane.healthJson());
  ASSERT_TRUE(health.isObject());
  EXPECT_EQ(health.stringOr("schema", ""), "rebench.serve_health_live/1");
  EXPECT_EQ(health.numberOr("processed", -1), 3.0);
  EXPECT_EQ(health.numberOr("cached", -1), 1.0);
  EXPECT_EQ(health.numberOr("queue_depth", -1), 2.0);
  EXPECT_EQ(health.numberOr("watchdog_arms", -1), 2.0);
  EXPECT_EQ(health.numberOr("runcache_hits", -1), 1.0);
  EXPECT_EQ(health.numberOr("runcache_misses", -1), 1.0);
  EXPECT_EQ(health.stringOr("inflight_submission", ""), "abc123");
  EXPECT_EQ(health.stringOr("inflight_stage", ""), "claim");
  EXPECT_GE(health.numberOr("seq", -1), 1.0);

  plane.clearInflight();
  const obs::json::Value idle = obs::json::parse(plane.healthJson());
  EXPECT_EQ(idle.stringOr("inflight_submission", "x"), "");
}

TEST(TelemetryPlane, VerdictStreamSupportsSinceCursor) {
  TelemetryPlane plane;
  const std::uint64_t first = plane.noteVerdict("s1", "passed", false, "");
  const std::uint64_t second =
      plane.noteVerdict("s2", "failed:regression", true, "slow");
  EXPECT_GT(second, first);

  std::istringstream all(plane.verdictsJsonl(0));
  std::string line;
  std::vector<obs::json::Value> rows;
  while (std::getline(all, line)) rows.push_back(obs::json::parse(line));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].stringOr("submission", ""), "s1");
  EXPECT_EQ(rows[0].stringOr("verdict", ""), "passed");
  EXPECT_EQ(rows[1].stringOr("verdict", ""), "failed:regression");
  EXPECT_EQ(rows[1].stringOr("detail", ""), "slow");

  const std::string tail = plane.verdictsJsonl(first);
  EXPECT_EQ(tail.find("s1"), std::string::npos);
  EXPECT_NE(tail.find("s2"), std::string::npos);
  EXPECT_TRUE(plane.verdictsJsonl(second).empty());
}

TEST(TelemetryPlane, SubmissionTimelineRecordsStageHistory) {
  TelemetryPlane plane;
  plane.noteStage("abc", "journal", "claim");
  plane.noteStage("abc", "exec", "campaign");
  plane.noteStage("abc", "journal", "executed");
  plane.noteVerdict("abc", "passed", false, "");

  std::string out;
  ASSERT_TRUE(plane.submissionJson("abc", &out));
  const obs::json::Value doc = obs::json::parse(out);
  ASSERT_TRUE(doc.isObject());
  EXPECT_EQ(doc.stringOr("submission", ""), "abc");
  const auto it = doc.object.find("timeline");
  ASSERT_NE(it, doc.object.end());
  ASSERT_TRUE(it->second.isArray());
  ASSERT_GE(it->second.array.size(), 3u);
  EXPECT_EQ(it->second.array[0].stringOr("stage", ""), "claim");

  EXPECT_FALSE(plane.submissionJson("unknown", &out));
}

TEST(TelemetryPlane, MetricsTextIsOpenMetricsShaped) {
  TelemetryPlane plane;
  plane.setStat("processed", 5);
  plane.noteRunCache(true);
  const std::string text = plane.metricsText();
  EXPECT_NE(text.find("# TYPE rebench_service_"), std::string::npos);
  EXPECT_NE(text.find("rebench_service_report_total{sub=\"processed\"}"),
            std::string::npos);
  EXPECT_NE(text.find("rebench_service_runcache_hit_ratio"),
            std::string::npos);
  const std::string tail = "# EOF\n";
  ASSERT_GE(text.size(), tail.size());
  EXPECT_EQ(text.substr(text.size() - tail.size()), tail);
}

TEST(TelemetryPlane, HandleRoutesAndRejects) {
  TelemetryPlane plane;
  plane.noteStage("abc", "journal", "claim");
  plane.noteVerdict("abc", "passed", false, "");

  EXPECT_EQ(plane.handle({"GET", "/health", ""}).status, 200);
  const HttpResponse metrics = plane.handle({"GET", "/metrics", ""});
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.contentType.find("openmetrics"), std::string::npos);

  const HttpResponse verdicts = plane.handle({"GET", "/verdicts", "since=0"});
  EXPECT_EQ(verdicts.status, 200);
  EXPECT_NE(verdicts.body.find("\"passed\""), std::string::npos);
  EXPECT_EQ(plane.handle({"GET", "/verdicts", "since=banana"}).status, 400);

  EXPECT_EQ(plane.handle({"GET", "/submissions/abc", ""}).status, 200);
  EXPECT_EQ(plane.handle({"GET", "/submissions/nope", ""}).status, 404);
  const HttpResponse lost = plane.handle({"GET", "/teapot", ""});
  EXPECT_EQ(lost.status, 404);
  EXPECT_NE(lost.body.find("/health"), std::string::npos)
      << "404 body should advertise the routes";
}

// ---- status server -------------------------------------------------------

TEST(StatusServer, EphemeralPortRoundTripViaHttpGet) {
  TelemetryPlane plane;
  plane.setStat("processed", 7);
  StatusServer server(
      [&plane](const HttpRequest& request) { return plane.handle(request); });
  server.start("127.0.0.1:0");
  ASSERT_TRUE(server.running());
  const std::string address = server.boundAddress();
  ASSERT_NE(address.find("127.0.0.1:"), std::string::npos);
  ASSERT_NE(address, "127.0.0.1:0") << "ephemeral port must be resolved";

  const std::string body = httpGet(address, "/health");
  const obs::json::Value health = obs::json::parse(body);
  EXPECT_EQ(health.numberOr("processed", -1), 7.0);

  EXPECT_THROW(httpGet(address, "/teapot"), Error);  // 404 → throw
  EXPECT_EQ(server.requestCount(), 2u);

  server.stop();
  server.stop();  // idempotent
  EXPECT_FALSE(server.running());
  EXPECT_THROW(httpGet(address, "/health"), Error);  // socket gone

  // Every request became a serve.endpoint span on the server's tracer.
  const std::string trace = server.tracer().toJsonl();
  EXPECT_NE(trace.find("serve.endpoint"), std::string::npos);
  EXPECT_NE(trace.find("/teapot"), std::string::npos);
}

}  // namespace
}  // namespace rebench::telemetry
