// Retry semantics (ReFrame's --max-retries) and the Principle-4
// environment-capture artefact.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "core/framework/pipeline.hpp"
#include "core/util/strings.hpp"

namespace rebench {
namespace {

RegressionTest flakyTest(std::shared_ptr<std::atomic<int>> calls,
                         int failuresBeforeSuccess) {
  RegressionTest test;
  test.name = "FlakyTest";
  test.spackSpec = "stream";
  test.numTasks = 1;
  test.numTasksPerNode = 1;
  test.sanityPattern = "OK";
  test.perfPatterns = {{"rate", R"(rate ([0-9.]+))", Unit::kGBperSec}};
  test.run = [calls, failuresBeforeSuccess](const RunContext&) {
    const int attempt = calls->fetch_add(1);
    if (attempt < failuresBeforeSuccess) {
      // A transient node fault: garbage output, failing sanity.
      return RunOutput{"NODE FAILURE xid 62\n", 1.0};
    }
    return RunOutput{"OK\nrate 42.0\n", 1.0};
  };
  return test;
}

class RetryFixture : public ::testing::Test {
 protected:
  RetryFixture() : systems_(builtinSystems()), repo_(builtinRepository()) {}
  SystemRegistry systems_;
  PackageRepository repo_;
};

TEST_F(RetryFixture, NoRetriesByDefault) {
  auto calls = std::make_shared<std::atomic<int>>(0);
  Pipeline pipeline(systems_, repo_);
  const TestRunResult result =
      pipeline.runOne(flakyTest(calls, 1), "csd3");
  EXPECT_FALSE(result.passed);
  EXPECT_EQ(result.failure.stage, "sanity");
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(calls->load(), 1);
}

TEST_F(RetryFixture, RetriesRecoverTransientFailures) {
  auto calls = std::make_shared<std::atomic<int>>(0);
  PipelineOptions options;
  options.retry.maxRetries = 3;
  Pipeline pipeline(systems_, repo_, options);
  const TestRunResult result =
      pipeline.runOne(flakyTest(calls, 2), "csd3");
  EXPECT_TRUE(result.passed) << result.failure.detail;
  EXPECT_EQ(result.attempts, 3);  // 2 failures + 1 success
  EXPECT_NEAR(result.foms.at("rate"), 42.0, 1e-9);
}

TEST_F(RetryFixture, RetriesExhaustedStaysFailed) {
  auto calls = std::make_shared<std::atomic<int>>(0);
  PipelineOptions options;
  options.retry.maxRetries = 2;
  Pipeline pipeline(systems_, repo_, options);
  const TestRunResult result =
      pipeline.runOne(flakyTest(calls, 10), "csd3");
  EXPECT_FALSE(result.passed);
  EXPECT_EQ(calls->load(), 3);  // initial + 2 retries
}

TEST_F(RetryFixture, ConfigurationErrorsNeverRetried) {
  auto calls = std::make_shared<std::atomic<int>>(0);
  PipelineOptions options;
  options.retry.maxRetries = 5;
  Pipeline pipeline(systems_, repo_, options);
  RegressionTest test = flakyTest(calls, 0);
  test.spackSpec = "no-such-package";
  const TestRunResult result = pipeline.runOne(test, "csd3");
  EXPECT_FALSE(result.passed);
  EXPECT_EQ(result.failure.stage, "concretize");
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(calls->load(), 0);  // never even ran
}

TEST(EnvironmentCapture, RenderConfigIsCompleteAndShareable) {
  const SystemRegistry systems = builtinSystems();
  const std::string config =
      systems.get("archer2").environment.renderConfig();
  EXPECT_TRUE(str::contains(config, "system: archer2"));
  EXPECT_TRUE(str::contains(config, "gcc@11.2.0"));
  EXPECT_TRUE(str::contains(config, "cray-mpich@8.1.23"));
  EXPECT_TRUE(str::contains(config, "origin: cray-mpich/8.1.23"));
  EXPECT_TRUE(str::contains(config, "mpi: [cray-mpich]"));
  EXPECT_TRUE(str::contains(config, "# module: PrgEnv-gnu/8.3.3"));
}

TEST(EnvironmentCapture, EveryBuiltinSystemRenders) {
  const SystemRegistry systems = builtinSystems();
  for (const std::string& name : systems.systemNames()) {
    const std::string config =
        systems.get(name).environment.renderConfig();
    EXPECT_TRUE(str::contains(config, "system: " + name));
    EXPECT_TRUE(str::contains(config, "compilers:"));
  }
}

}  // namespace
}  // namespace rebench
