#include "core/util/strings.hpp"

#include <gtest/gtest.h>

namespace rebench::str {
namespace {

TEST(Split, BasicFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Split, EmptyFieldsPreserved) {
  EXPECT_EQ(split("a||b", '|'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitWhitespace, CollapsesRuns) {
  EXPECT_EQ(splitWhitespace("  foo \t bar\nbaz "),
            (std::vector<std::string>{"foo", "bar", "baz"}));
  EXPECT_TRUE(splitWhitespace("   ").empty());
  EXPECT_TRUE(splitWhitespace("").empty());
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("\t\n"), "");
}

TEST(Join, RoundTripsSplit) {
  const std::vector<std::string> parts{"one", "two", "three"};
  EXPECT_EQ(join(parts, ","), "one,two,three");
  EXPECT_EQ(split(join(parts, ","), ','), parts);
  EXPECT_EQ(join({}, ","), "");
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(toLower("GCc@9.2.0"), "gcc@9.2.0");
}

TEST(StartsEndsContains, Basics) {
  EXPECT_TRUE(startsWith("archer2:compute", "archer2"));
  EXPECT_FALSE(startsWith("ar", "archer2"));
  EXPECT_TRUE(endsWith("perflog.log", ".log"));
  EXPECT_FALSE(endsWith("log", "perflog"));
  EXPECT_TRUE(contains("a|b|c", "|b|"));
  EXPECT_FALSE(contains("abc", "z"));
}

TEST(ReplaceAll, NonOverlapping) {
  EXPECT_EQ(replaceAll("a%b%c", "%", "%25"), "a%25b%25c");
  EXPECT_EQ(replaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replaceAll("x", "", "y"), "x");
}

TEST(Fixed, StableWidth) {
  EXPECT_EQ(fixed(24.0, 1), "24.0");
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(-1.5, 0), "-2");  // round-half-away for printf
}

TEST(Pad, LeftAndRight) {
  EXPECT_EQ(padLeft("7", 3), "  7");
  EXPECT_EQ(padRight("7", 3), "7  ");
  EXPECT_EQ(padLeft("1234", 3), "1234");  // never truncates
}

}  // namespace
}  // namespace rebench::str
