// Unit tests for the statistical inference engine (rebench::infer):
// series estimation, EDM changepoint detection, the controller's
// window-growth rule and the CI-significance band of the history gate.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/history/history.hpp"
#include "core/infer/changepoint_edm.hpp"
#include "core/infer/controller.hpp"
#include "core/infer/estimator.hpp"

namespace rebench::infer {
namespace {

TEST(EstimatorTest, EmptyAndSingleSampleHaveInfiniteCi) {
  const SeriesEstimate empty = estimateSeries({});
  EXPECT_EQ(empty.n, 0);
  EXPECT_TRUE(std::isinf(empty.ciHalfwidth));
  EXPECT_TRUE(std::isinf(empty.ciRelative));

  const std::vector<double> one{100.0};
  const SeriesEstimate single = estimateSeries(one);
  EXPECT_EQ(single.n, 1);
  EXPECT_DOUBLE_EQ(single.mean, 100.0);
  EXPECT_DOUBLE_EQ(single.ess, 1.0);
  EXPECT_TRUE(std::isinf(single.ciHalfwidth));
}

TEST(EstimatorTest, ConstantSeriesHasZeroHalfwidth) {
  const std::vector<double> samples(8, 250.0);
  const SeriesEstimate est = estimateSeries(samples);
  EXPECT_EQ(est.n, 8);
  EXPECT_DOUBLE_EQ(est.mean, 250.0);
  EXPECT_DOUBLE_EQ(est.stddev, 0.0);
  EXPECT_DOUBLE_EQ(est.ciHalfwidth, 0.0);
  EXPECT_DOUBLE_EQ(est.ciRelative, 0.0);
  EXPECT_DOUBLE_EQ(est.ess, 8.0);  // zero variance carries no act signal
  EXPECT_FALSE(est.drift);
}

TEST(EstimatorTest, ShortSeriesMatchesTextbookTInterval) {
  // {1, 2, 3}: mean 2, sample stddev 1; n < 4 keeps ess = n, so the CI
  // is the plain t(0.975, df=2) * 1 / sqrt(3) = 4.303 / sqrt(3).
  const std::vector<double> samples{1.0, 2.0, 3.0};
  const SeriesEstimate est = estimateSeries(samples);
  EXPECT_DOUBLE_EQ(est.mean, 2.0);
  EXPECT_DOUBLE_EQ(est.stddev, 1.0);
  EXPECT_DOUBLE_EQ(est.ess, 3.0);
  EXPECT_NEAR(est.ciHalfwidth, 4.303 / std::sqrt(3.0), 1e-9);
  EXPECT_NEAR(est.ciRelative, est.ciHalfwidth / 2.0, 1e-12);
}

TEST(EstimatorTest, AnticorrelatedNoiseKeepsFullSampleSize) {
  // Alternating values: negative lag-1 autocorrelation, so Geyer's
  // initial-positive-sequence rule truncates immediately and ess == n.
  const std::vector<double> samples{10.0, 12.0, 9.0, 12.0,
                                    9.0,  12.0, 9.0, 12.0};
  const SeriesEstimate est = estimateSeries(samples);
  EXPECT_LT(est.autocorr, 0.0);
  EXPECT_DOUBLE_EQ(est.ess, 8.0);
  EXPECT_NEAR(est.ciHalfwidth, tQuantile975(7) * est.stddev / std::sqrt(8.0),
              1e-12);
  EXPECT_FALSE(est.drift);
}

TEST(EstimatorTest, PositiveAutocorrelationShrinksEss) {
  // A slowly oscillating series: adjacent samples are close, so the
  // correlated-sample correction must report fewer effective samples —
  // and a wider CI — than the raw count suggests.  The two halves are
  // identical, so the drift guard stays quiet.
  const std::vector<double> samples{10.0, 11.0, 12.0, 13.0, 13.0, 12.0,
                                    11.0, 10.0, 10.0, 11.0, 12.0, 13.0,
                                    13.0, 12.0, 11.0, 10.0};
  const SeriesEstimate est = estimateSeries(samples);
  EXPECT_GT(est.autocorr, 0.0);
  EXPECT_LT(est.ess, static_cast<double>(est.n));
  EXPECT_GT(est.ciHalfwidth,
            tQuantile975(est.n - 1) * est.stddev / std::sqrt(est.n));
  EXPECT_FALSE(est.drift);
}

TEST(EstimatorTest, HalfSplitDriftGuardFlagsWarmupTrend) {
  // First half around 10, second around 20: the CI over the pooled
  // series can look tight per-half, but the halves disagree far beyond
  // their combined standard error.
  const std::vector<double> noisy{10.0, 10.2, 9.8,  10.1, 9.9,  10.0,
                                  20.0, 20.2, 19.8, 20.1, 19.9, 20.0};
  EXPECT_TRUE(estimateSeries(noisy).drift);

  // Degenerate flavour: both halves constant (zero SE) but unequal.
  const std::vector<double> step{10.0, 10.0, 10.0, 10.0, 10.0, 10.0,
                                 20.0, 20.0, 20.0, 20.0, 20.0, 20.0};
  EXPECT_TRUE(estimateSeries(step).drift);

  // Steady series: no drift.
  const std::vector<double> steady{10.0, 10.2, 9.8, 10.1, 9.9, 10.0};
  EXPECT_FALSE(estimateSeries(steady).drift);
}

TEST(EstimatorTest, TQuantileTableEndpoints) {
  EXPECT_DOUBLE_EQ(tQuantile975(-3), 12.706);  // clamped to df = 1
  EXPECT_DOUBLE_EQ(tQuantile975(0), 12.706);
  EXPECT_DOUBLE_EQ(tQuantile975(1), 12.706);
  EXPECT_DOUBLE_EQ(tQuantile975(2), 4.303);
  EXPECT_DOUBLE_EQ(tQuantile975(30), 2.042);
  EXPECT_DOUBLE_EQ(tQuantile975(31), 1.96);
  EXPECT_DOUBLE_EQ(tQuantile975(1000), 1.96);
}

TEST(EdmTest, MedianOfOddEvenAndEmpty) {
  EXPECT_DOUBLE_EQ(medianOf({}), 0.0);
  const std::vector<double> odd{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(medianOf(odd), 2.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(medianOf(even), 2.5);
}

TEST(EdmTest, SeriesShorterThanTwoMinSegmentsYieldsNothing) {
  EXPECT_TRUE(detectChangepointsEdm({}).empty());
  const std::vector<double> shifted{100.0, 100.0, 50.0, 50.0, 50.0};
  EXPECT_TRUE(detectChangepointsEdm(shifted).empty());  // 5 < 2 * 3
}

TEST(EdmTest, ConstantAndFlatNoisySeriesYieldNothing) {
  EXPECT_TRUE(
      detectChangepointsEdm(std::vector<double>(12, 100.0)).empty());
  // ±1% wobble: any split's median shift stays under the 2% relative
  // floor, so no changepoint regardless of the scaled statistic.
  const std::vector<double> noisy{100.0, 101.0, 100.0, 99.0, 100.0, 101.0,
                                  99.0,  100.0, 100.0, 101.0, 99.0, 100.0};
  EXPECT_TRUE(detectChangepointsEdm(noisy).empty());
}

TEST(EdmTest, SeededStepIsLocatedExactly) {
  std::vector<double> series(6, 100.0);
  series.insert(series.end(), 6, 50.0);
  const std::vector<EdmChangepoint> flags = detectChangepointsEdm(series);
  ASSERT_EQ(flags.size(), 1u);
  EXPECT_EQ(flags[0].index, 6u);
  EXPECT_DOUBLE_EQ(flags[0].medianBefore, 100.0);
  EXPECT_DOUBLE_EQ(flags[0].medianAfter, 50.0);
  EXPECT_GT(flags[0].statistic, EdmOptions{}.threshold);
}

TEST(EdmTest, OutlierRepeatDoesNotFoolTheMedians) {
  // One wild outlier inside an otherwise flat series: means-based scans
  // see a shift, medians do not.
  const std::vector<double> series{100.0, 100.0, 100.0, 100.0, 500.0, 100.0,
                                   100.0, 100.0, 100.0, 100.0, 100.0, 100.0};
  EXPECT_TRUE(detectChangepointsEdm(series).empty());
}

TEST(ControllerGrowthTest, ConvergedSeriesSchedulesMinimalProbe) {
  SeriesEstimate worst;
  worst.n = 5;
  worst.ciRelative = 0.01;
  EXPECT_EQ(nextWindowGrowth(worst, 0.05, 5), 1);
}

TEST(ControllerGrowthTest, GrowthIsProjectedFromInverseSquareRoot) {
  // ciRelative 0.06 at n = 20 with target 0.05: required n scales by
  // (0.06/0.05)^2 = 1.44 -> ceil(28.8) = 29, so 9 more repeats.
  SeriesEstimate worst;
  worst.n = 20;
  worst.ciRelative = 0.06;
  EXPECT_EQ(nextWindowGrowth(worst, 0.05, 20), 9);
}

TEST(ControllerGrowthTest, GrowthAtMostDoublesPerRound) {
  // A wildly noisy early estimate projects hundreds of repeats; the
  // clamp schedules at most `executed` more (doubling).
  SeriesEstimate worst;
  worst.n = 4;
  worst.ciRelative = 0.5;
  EXPECT_EQ(nextWindowGrowth(worst, 0.05, 4), 4);
}

TEST(ControllerGrowthTest, UnderdeterminedSeriesBootstrapsToTwoSamples) {
  SeriesEstimate worst;  // n = 0, infinite CI
  worst.ciHalfwidth = HUGE_VAL;
  worst.ciRelative = HUGE_VAL;
  EXPECT_EQ(nextWindowGrowth(worst, 0.05, 1), 1);
  EXPECT_EQ(nextWindowGrowth(worst, 0.05, 4), 2);
}

TEST(ControllerGrowthTest, DriftForcesAFullExtraWindow) {
  SeriesEstimate worst;
  worst.n = 6;
  worst.ciRelative = 0.01;  // CI already met — drift alone blocks
  worst.drift = true;
  EXPECT_EQ(nextWindowGrowth(worst, 0.05, 6), 6);
}

history::HistoryRecord gateRecord(std::uint64_t seq, double mean) {
  history::HistoryRecord record;
  record.seq = seq;
  record.test = "stream_triad";
  record.target = "archer2:compute";
  record.fom = "triad_gbs";
  record.mean = mean;
  record.min = mean;
  record.max = mean;
  record.repeats = 3;
  return record;
}

TEST(GateSignificanceTest, WobbleBeyondThresholdButWithinCiStaysClean) {
  // Baseline means {100, 90, 110, 92, 108}: mean 100, wide CI.  The
  // latest 93 drops 7% — past the 5% threshold — but stays inside the
  // baseline window's own confidence band, so no regression.
  std::vector<history::HistoryRecord> records;
  const std::vector<double> means{100.0, 90.0, 110.0, 92.0, 108.0, 93.0};
  for (std::size_t i = 0; i < means.size(); ++i) {
    records.push_back(gateRecord(i, means[i]));
  }
  const auto verdicts = history::checkRegression(records, {});
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_FALSE(verdicts[0].regression);
  EXPECT_FALSE(verdicts[0].significant);
  EXPECT_LT(verdicts[0].delta, -0.05);
  EXPECT_GT(verdicts[0].baselineCi, 0.0);
  EXPECT_NE(verdicts[0].justification.find("not significant"),
            std::string::npos);
}

TEST(GateSignificanceTest, GenuineDropIsASignificantRegression) {
  // Tight baseline {100, 101, 99, 100, 101}, latest 90: both the
  // threshold and the significance band are cleared.
  std::vector<history::HistoryRecord> records;
  const std::vector<double> means{100.0, 101.0, 99.0, 100.0, 101.0, 90.0};
  for (std::size_t i = 0; i < means.size(); ++i) {
    records.push_back(gateRecord(i, means[i]));
  }
  const auto verdicts = history::checkRegression(records, {});
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_TRUE(verdicts[0].regression);
  EXPECT_TRUE(verdicts[0].significant);
  EXPECT_NE(verdicts[0].justification.find("exceeds threshold"),
            std::string::npos);
  EXPECT_NE(verdicts[0].justification.find("below baseline-CI"),
            std::string::npos);
}

TEST(GateSignificanceTest, SustainedShiftReportsEdmChangepoint) {
  // Six campaigns at 100 then six at 70: by the newest record the
  // rolling baseline has absorbed the new regime (delta 0, no
  // regression event now), but the EDM scan pins the historical shift.
  std::vector<history::HistoryRecord> records;
  for (std::uint64_t i = 0; i < 12; ++i) {
    records.push_back(gateRecord(i, i < 6 ? 100.0 : 70.0));
  }
  const auto verdicts = history::checkRegression(records, {});
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_FALSE(verdicts[0].regression);
  EXPECT_TRUE(verdicts[0].changepoint);
  EXPECT_EQ(verdicts[0].changepointIndex, 6u);
  EXPECT_NE(verdicts[0].justification.find("EDM changepoint at seq 6"),
            std::string::npos);
}

TEST(GateSignificanceTest, SingleRecordIsInsufficient) {
  const std::vector<history::HistoryRecord> records{gateRecord(0, 100.0)};
  const auto verdicts = history::checkRegression(records, {});
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_TRUE(verdicts[0].insufficient);
  EXPECT_NE(verdicts[0].justification.find("insufficient history"),
            std::string::npos);
}

}  // namespace
}  // namespace rebench::infer
