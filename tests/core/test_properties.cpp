// Property-based test sweeps: randomised inputs driven through invariants,
// parameterised over seeds (TEST_P) so each seed is an independent case.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <functional>

#include "core/concretizer/concretizer.hpp"
#include "core/spec/spec.hpp"
#include "core/util/error.hpp"
#include "core/framework/perflog.hpp"
#include "core/postproc/dataframe.hpp"
#include "core/sched/scheduler.hpp"
#include "core/sysconfig/system_config.hpp"
#include "core/util/rng.hpp"
#include "core/util/version.hpp"

namespace rebench {
namespace {

// ---------------------------------------------------------------------------
// Version ordering is a strict total order consistent with prefixes.
// ---------------------------------------------------------------------------

class VersionOrderProperty : public ::testing::TestWithParam<int> {};

Version randomVersion(Rng& rng) {
  std::string text = std::to_string(rng.below(20));
  const std::uint64_t components = rng.below(3);
  for (std::uint64_t i = 0; i < components; ++i) {
    text += "." + std::to_string(rng.below(30));
  }
  if (rng.uniform() < 0.15) text += "rc" + std::to_string(rng.below(3));
  return Version::parse(text);
}

TEST_P(VersionOrderProperty, TotalOrderAxioms) {
  Rng rng(GetParam());
  std::vector<Version> versions;
  for (int i = 0; i < 24; ++i) versions.push_back(randomVersion(rng));

  for (const Version& a : versions) {
    EXPECT_FALSE(a < a);  // irreflexive
    for (const Version& b : versions) {
      // Trichotomy: exactly one of <, ==, > holds.
      const int relations = (a < b) + (a == b) + (b < a);
      EXPECT_EQ(relations, 1) << a.toString() << " vs " << b.toString();
      for (const Version& c : versions) {
        if (a < b && b < c) {
          EXPECT_LT(a, c);  // transitivity
        }
      }
    }
  }
}

TEST_P(VersionOrderProperty, SortThenCheckMonotone) {
  Rng rng(GetParam() + 1000);
  std::vector<Version> versions;
  for (int i = 0; i < 50; ++i) versions.push_back(randomVersion(rng));
  std::sort(versions.begin(), versions.end());
  for (std::size_t i = 1; i < versions.size(); ++i) {
    EXPECT_FALSE(versions[i] < versions[i - 1]);
  }
}

TEST_P(VersionOrderProperty, PrefixImpliesRangeMembership) {
  Rng rng(GetParam() + 2000);
  for (int i = 0; i < 30; ++i) {
    const Version v = randomVersion(rng);
    // Any version satisfies the exact-constraint of its own text.
    EXPECT_TRUE(
        VersionConstraint::parse(v.toString()).satisfiedBy(v));
    // And the unbounded ranges on either side of itself.
    EXPECT_TRUE(
        VersionConstraint::parse(v.toString() + ":").satisfiedBy(v));
    EXPECT_TRUE(
        VersionConstraint::parse(":" + v.toString()).satisfiedBy(v));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VersionOrderProperty,
                         ::testing::Range(1, 6));

// ---------------------------------------------------------------------------
// Scheduler invariants under random job streams.
// ---------------------------------------------------------------------------

class SchedulerProperty : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerProperty, RandomStreamInvariants) {
  Rng rng(GetParam() * 7919);
  ClusterOptions cluster;
  cluster.numNodes = 3 + static_cast<int>(rng.below(4));
  cluster.coresPerNode = 8;
  SchedulerSim sim(cluster);

  std::vector<JobId> jobs;
  const int jobCount = 25;
  for (int i = 0; i < jobCount; ++i) {
    JobRequest request;
    request.name = "job" + std::to_string(i);
    request.numTasks = 1 + static_cast<int>(rng.below(4));
    request.numTasksPerNode = 1;
    request.numCpusPerTask = 1 + static_cast<int>(rng.below(4));
    const double runtime = 1.0 + rng.uniform(0.0, 30.0);
    request.timeLimit = 25.0;  // some jobs will exceed this
    request.payload = [runtime](const Allocation&) {
      return JobOutcome{true, runtime, "done\n"};
    };
    try {
      jobs.push_back(sim.submit(std::move(request)));
    } catch (const SchedulerError&) {
      // Oversized for this random cluster: a legitimate rejection.
    }
  }
  sim.drain();

  int running = 0;
  for (JobId id : jobs) {
    const JobInfo& job = sim.query(id);
    // 1. Every accepted job reaches a terminal state.
    EXPECT_NE(job.state, JobState::kPending);
    running += job.state == JobState::kRunning;
    // 2. Causality: submit <= start <= end.
    if (job.startTime >= 0.0) {
      EXPECT_GE(job.startTime, job.submitTime);
      EXPECT_GE(job.endTime, job.startTime);
      // 3. Timeout jobs ran exactly their limit.
      if (job.state == JobState::kTimeout) {
        EXPECT_NEAR(job.endTime - job.startTime, 25.0, 1e-9);
      }
      // 4. Allocation within cluster bounds.
      EXPECT_LE(static_cast<int>(job.allocation.nodeIds.size()),
                cluster.numNodes);
      for (int node : job.allocation.nodeIds) {
        EXPECT_GE(node, 0);
        EXPECT_LT(node, cluster.numNodes);
      }
    }
  }
  EXPECT_EQ(running, 0);
  // 5. Conservation: all cores free after drain.
  EXPECT_EQ(sim.idleCores(), sim.totalCores());
}

TEST_P(SchedulerProperty, NoOverlappingAllocationsOverTime) {
  // Advance in small steps and verify the core accounting never goes
  // negative or above capacity.
  Rng rng(GetParam() * 104729);
  SchedulerSim sim({.numNodes = 2, .coresPerNode = 4});
  for (int i = 0; i < 12; ++i) {
    JobRequest request;
    request.name = "j" + std::to_string(i);
    request.numTasks = 1;
    request.numTasksPerNode = 1;
    request.numCpusPerTask = 1 + static_cast<int>(rng.below(4));
    const double runtime = rng.uniform(0.5, 8.0);
    request.payload = [runtime](const Allocation&) {
      return JobOutcome{true, runtime, ""};
    };
    sim.submit(std::move(request));
  }
  for (int step = 0; step < 200; ++step) {
    sim.advance(0.5);
    EXPECT_GE(sim.idleCores(), 0);
    EXPECT_LE(sim.idleCores(), sim.totalCores());
  }
  sim.drain();
  EXPECT_EQ(sim.idleCores(), sim.totalCores());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// DataFrame algebra on random frames.
// ---------------------------------------------------------------------------

class DataFrameProperty : public ::testing::TestWithParam<int> {};

DataFrame randomFrame(Rng& rng, std::size_t rows) {
  DataFrame::StringColumn group, label;
  DataFrame::NumericColumn value;
  for (std::size_t i = 0; i < rows; ++i) {
    group.push_back("g" + std::to_string(rng.below(4)));
    label.push_back("l" + std::to_string(rng.below(3)));
    value.push_back(rng.uniform(-100.0, 100.0));
  }
  DataFrame frame;
  frame.addStrings("group", std::move(group));
  frame.addStrings("label", std::move(label));
  frame.addNumeric("value", std::move(value));
  return frame;
}

TEST_P(DataFrameProperty, CsvRoundTripPreservesEverything) {
  Rng rng(GetParam() * 31);
  const DataFrame frame = randomFrame(rng, 40);
  const DataFrame reparsed = DataFrame::fromCsv(frame.toCsv());
  ASSERT_EQ(reparsed.rowCount(), frame.rowCount());
  ASSERT_EQ(reparsed.columnNames(), frame.columnNames());
  for (std::size_t i = 0; i < frame.rowCount(); ++i) {
    EXPECT_EQ(reparsed.strings("group")[i], frame.strings("group")[i]);
    EXPECT_NEAR(reparsed.numeric("value")[i], frame.numeric("value")[i],
                1e-5);
  }
}

TEST_P(DataFrameProperty, GroupSumsPartitionTotal) {
  Rng rng(GetParam() * 37);
  const DataFrame frame = randomFrame(rng, 60);
  double total = 0.0;
  for (double v : frame.numeric("value")) total += v;
  const std::array<std::string, 1> keys{"group"};
  const DataFrame grouped = frame.groupBy(keys, "value", Agg::kSum);
  double groupedTotal = 0.0;
  for (double v : grouped.numeric("value")) groupedTotal += v;
  EXPECT_NEAR(total, groupedTotal, 1e-9);
}

TEST_P(DataFrameProperty, PivotCellsCoverEveryObservedPair) {
  Rng rng(GetParam() * 41);
  const DataFrame frame = randomFrame(rng, 50);
  const PivotTable pivot = frame.pivot("group", "label", "value");
  // Every row of the frame must land in a non-empty pivot cell.
  for (std::size_t i = 0; i < frame.rowCount(); ++i) {
    const auto& rows = pivot.rowLabels;
    const auto& cols = pivot.colLabels;
    const auto r = std::find(rows.begin(), rows.end(),
                             frame.strings("group")[i]) -
                   rows.begin();
    const auto c = std::find(cols.begin(), cols.end(),
                             frame.strings("label")[i]) -
                   cols.begin();
    ASSERT_LT(static_cast<std::size_t>(r), rows.size());
    ASSERT_LT(static_cast<std::size_t>(c), cols.size());
    EXPECT_TRUE(pivot.cells[r][c].has_value());
  }
}

TEST_P(DataFrameProperty, FilterPartitionsRows) {
  Rng rng(GetParam() * 43);
  const DataFrame frame = randomFrame(rng, 50);
  const auto& values = frame.numeric("value");
  const DataFrame pos =
      frame.filter([&](std::size_t i) { return values[i] >= 0.0; });
  const DataFrame neg =
      frame.filter([&](std::size_t i) { return values[i] < 0.0; });
  EXPECT_EQ(pos.rowCount() + neg.rowCount(), frame.rowCount());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DataFrameProperty, ::testing::Range(1, 7));

// ---------------------------------------------------------------------------
// Perflog serialization is injective and total over nasty strings.
// ---------------------------------------------------------------------------

class PerflogProperty : public ::testing::TestWithParam<int> {};

std::string randomNasty(Rng& rng) {
  static constexpr char kAlphabet[] =
      "abc|=%\n\t ,\"'\\0123<>&^~+@:$";
  std::string out;
  const std::uint64_t length = rng.below(24);
  for (std::uint64_t i = 0; i < length; ++i) {
    out += kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
  }
  return out;
}

TEST_P(PerflogProperty, RoundTripArbitraryContent) {
  Rng rng(GetParam() * 53);
  for (int i = 0; i < 20; ++i) {
    PerfLogEntry entry;
    entry.timestamp = randomNasty(rng);
    entry.system = randomNasty(rng);
    entry.partition = randomNasty(rng);
    entry.testName = randomNasty(rng);
    entry.spec = randomNasty(rng);
    entry.fomName = randomNasty(rng);
    entry.value = rng.uniform(-1e6, 1e6);
    entry.unit = Unit::kGBperSec;
    entry.result = "pass";
    entry.extras[ "k" + std::to_string(i)] = randomNasty(rng);

    const std::string line = entry.serialize();
    EXPECT_EQ(line.find('\n'), std::string::npos);
    const PerfLogEntry parsed = PerfLogEntry::parse(line);
    EXPECT_EQ(parsed.system, entry.system);
    EXPECT_EQ(parsed.testName, entry.testName);
    EXPECT_EQ(parsed.spec, entry.spec);
    EXPECT_EQ(parsed.extras, entry.extras);
    EXPECT_NEAR(parsed.value, entry.value, 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PerflogProperty, ::testing::Range(1, 5));

// ---------------------------------------------------------------------------
// Spec grammar: parse/print round-trips on randomly generated specs.
// ---------------------------------------------------------------------------

class SpecRoundTripProperty : public ::testing::TestWithParam<int> {};

Spec randomSpec(Rng& rng) {
  static constexpr const char* kNames[] = {"hpgmg", "babelstream", "hpcg",
                                           "openmpi", "kokkos", "python"};
  Spec spec(kNames[rng.below(std::size(kNames))]);
  if (rng.uniform() < 0.6) {
    spec.setVersions(VersionConstraint::parse(
        std::to_string(rng.below(10)) + "." + std::to_string(rng.below(10))));
  }
  if (rng.uniform() < 0.5) {
    CompilerSpec comp;
    comp.name = rng.uniform() < 0.5 ? "gcc" : "oneapi";
    if (rng.uniform() < 0.5) {
      comp.versions = VersionConstraint::parse(
          std::to_string(rng.below(13)) + ":");
    }
    spec.setCompiler(comp);
  }
  if (rng.uniform() < 0.5) spec.setVariant("omp", rng.uniform() < 0.5);
  if (rng.uniform() < 0.3) {
    spec.setVariant("model", std::string(rng.uniform() < 0.5 ? "omp"
                                                             : "cuda"));
  }
  const std::uint64_t deps = rng.below(3);
  for (std::uint64_t i = 0; i < deps; ++i) {
    Spec dep(kNames[rng.below(std::size(kNames))]);
    if (rng.uniform() < 0.5) {
      dep.setVersions(VersionConstraint::parse(
          std::to_string(rng.below(9)) + ":"));
    }
    spec.addDependency(std::move(dep));
  }
  return spec;
}

TEST_P(SpecRoundTripProperty, ToStringParsesBackIdentically) {
  Rng rng(GetParam() * 61);
  for (int i = 0; i < 40; ++i) {
    const Spec spec = randomSpec(rng);
    const std::string text = spec.toString();
    const Spec reparsed = Spec::parse(text);
    // Fixed point after one round: print(parse(print(s))) == print(s).
    EXPECT_EQ(reparsed.toString(), text) << text;
    EXPECT_EQ(reparsed.name(), spec.name());
    EXPECT_EQ(reparsed.variants(), spec.variants());
    EXPECT_EQ(reparsed.dependencies().size(), spec.dependencies().size());
  }
}

TEST_P(SpecRoundTripProperty, EverySpecSatisfiesItself) {
  Rng rng(GetParam() * 67);
  for (int i = 0; i < 40; ++i) {
    const Spec spec = randomSpec(rng);
    EXPECT_TRUE(spec.satisfies(Spec::parse(spec.name()))) << spec.toString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpecRoundTripProperty,
                         ::testing::Range(1, 5));

// ---------------------------------------------------------------------------
// Concretizer: determinism and soundness across every system.
// ---------------------------------------------------------------------------

class ConcretizerProperty
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ConcretizerProperty, SoundAndDeterministicEverywhere) {
  const PackageRepository repo = builtinRepository();
  const SystemRegistry systems = builtinSystems();
  const SystemConfig& sys = systems.get(GetParam());

  for (const char* specText :
       {"hpgmg%gcc", "babelstream model=omp", "hpcg operator=matrix-free",
        "osu-micro-benchmarks", "stream"}) {
    const Spec abstract = Spec::parse(specText);
    Concretizer concretizer(repo, sys.environment);
    const auto first = concretizer.concretize(abstract);
    const auto second = concretizer.concretize(abstract);

    // Determinism: identical DAG hashes.
    EXPECT_EQ(first.root->dagHash(), second.root->dagHash()) << specText;
    // Soundness: the concrete root satisfies the abstract request.
    EXPECT_TRUE(first.root->satisfiesNode(abstract)) << specText;
    // Completeness: every node has a pinned version, and non-external
    // nodes have a compiler.
    std::function<void(const ConcreteSpec&)> walk =
        [&](const ConcreteSpec& node) {
          EXPECT_FALSE(node.version.toString().empty()) << node.name;
          if (!node.external) {
            EXPECT_FALSE(node.compilerName.empty()) << node.name;
          }
          for (const auto& [name, dep] : node.dependencies) walk(*dep);
        };
    walk(*first.root);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSystems, ConcretizerProperty,
                         ::testing::Values("archer2", "cosma8", "csd3",
                                           "isambard", "isambard-macs",
                                           "noctua2", "local"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace rebench
