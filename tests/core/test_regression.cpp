#include "core/postproc/regression.hpp"

#include <gtest/gtest.h>

#include "core/util/error.hpp"
#include "core/util/rng.hpp"
#include "core/util/strings.hpp"

namespace rebench {
namespace {

PerfLogEntry makeEntry(const std::string& timestamp, double value,
                       const std::string& system = "archer2",
                       const std::string& fom = "Triad") {
  PerfLogEntry entry;
  entry.timestamp = timestamp;
  entry.system = system;
  entry.partition = "compute";
  entry.testName = "BabelstreamTest_omp";
  entry.fomName = fom;
  entry.value = value;
  entry.unit = Unit::kMBperSec;
  entry.result = "pass";
  entry.binaryId = "bin-" + timestamp;
  return entry;
}

SeriesKey defaultKey() {
  return {"archer2", "compute", "BabelstreamTest_omp", "Triad"};
}

TEST(PerfHistory, CollectsSeriesByKey) {
  PerfHistory history;
  history.add(makeEntry("T0", 100.0));
  history.add(makeEntry("T1", 101.0));
  history.add(makeEntry("T0", 55.0, "csd3"));
  ASSERT_EQ(history.keys().size(), 2u);
  EXPECT_EQ(history.series(defaultKey()).size(), 2u);
  EXPECT_THROW(
      history.series({"nowhere", "p", "t", "f"}), NotFoundError);
}

TEST(PerfHistory, ErrorEntriesIgnored) {
  PerfHistory history;
  PerfLogEntry bad = makeEntry("T0", 0.0);
  bad.result = "error";
  history.add(bad);
  EXPECT_TRUE(history.keys().empty());
}

TEST(Detector, QuietHistoryRaisesNothing) {
  PerfHistory history;
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    history.add(makeEntry("T" + std::to_string(i),
                          100.0 * rng.noiseFactor(0.01)));
  }
  EXPECT_TRUE(history.detect().empty());
}

TEST(Detector, InjectedSlowdownIsFlagged) {
  PerfHistory history;
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    // 10% regression from run 12 onwards (a quietly-degraded system).
    const double base = i < 12 ? 100.0 : 90.0;
    history.add(makeEntry("T" + std::to_string(i),
                          base * rng.noiseFactor(0.01)));
  }
  const auto events = history.detect();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().kind, RegressionKind::kDropBelowBand);
  EXPECT_EQ(events.front().pointIndex, 12u);
  EXPECT_LT(events.front().deviation, -0.05);
  EXPECT_TRUE(str::contains(events.front().detail, "archer2"));
}

TEST(Detector, SuspiciousImprovementAlsoFlagged) {
  // Bailey's tricks cut both ways: a sudden "improvement" often means the
  // benchmark silently changed (wrong size, wrong build).
  PerfHistory history;
  Rng rng(9);
  for (int i = 0; i < 15; ++i) {
    const double base = i < 10 ? 100.0 : 150.0;
    history.add(makeEntry("T" + std::to_string(i),
                          base * rng.noiseFactor(0.01)));
  }
  const auto events = history.detect();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().kind, RegressionKind::kRiseAboveBand);
}

TEST(Detector, MinHistoryRespected) {
  PerfHistory history;
  history.add(makeEntry("T0", 100.0));
  history.add(makeEntry("T1", 10.0));  // huge drop, but history too short
  DetectorOptions options;
  options.minHistory = 4;
  EXPECT_TRUE(history.detect(options).empty());
}

TEST(Detector, MinBandFractionAbsorbsTinyNoise) {
  // A perfectly flat history has sigma == 0; without the band floor every
  // subsequent point at 100.3 would be "3 sigma out".
  PerfHistory history;
  for (int i = 0; i < 10; ++i) {
    history.add(makeEntry("T" + std::to_string(i), 100.0));
  }
  history.add(makeEntry("T10", 100.3));
  EXPECT_TRUE(history.detect().empty());
}

TEST(Detector, SeriesAreIndependent) {
  PerfHistory history;
  Rng rng(11);
  for (int i = 0; i < 16; ++i) {
    history.add(makeEntry("T" + std::to_string(i),
                          100.0 * rng.noiseFactor(0.01)));          // healthy
    const double base = i < 10 ? 200.0 : 160.0;                    // broken
    history.add(makeEntry("T" + std::to_string(i), base, "csd3"));
  }
  const auto events = history.detect();
  ASSERT_FALSE(events.empty());
  for (const RegressionEvent& event : events) {
    EXPECT_EQ(event.key.system, "csd3");
  }
}

TEST(ReferenceCheck, WithinBandIsClean) {
  PerfHistory history;
  history.add(makeEntry("T0", 98.0));
  EXPECT_FALSE(history.checkAgainstReference(defaultKey(), 100.0, -0.05,
                                             0.05));
}

TEST(ReferenceCheck, OutsideBandFlagsLatestPoint) {
  PerfHistory history;
  history.add(makeEntry("T0", 100.0));
  history.add(makeEntry("T1", 80.0));
  const auto event =
      history.checkAgainstReference(defaultKey(), 100.0, -0.05, 0.05);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->kind, RegressionKind::kDropBelowBand);
  EXPECT_EQ(event->pointIndex, 1u);
  EXPECT_NEAR(event->deviation, -0.2, 1e-9);
}

TEST(HistoryPlot, MarksFlaggedPoints) {
  PerfHistory history;
  for (int i = 0; i < 12; ++i) {
    history.add(makeEntry("T" + std::to_string(i), i < 8 ? 100.0 : 80.0));
  }
  const auto events = history.detect();
  const std::string plot = renderHistoryPlot(
      history.series(defaultKey()), events, "Triad history");
  EXPECT_TRUE(str::contains(plot, "Triad history"));
  EXPECT_TRUE(str::contains(plot, "*"));
  EXPECT_TRUE(str::contains(plot, "!"));
}

TEST(HistoryPlot, ShortHistoryHandled) {
  EXPECT_TRUE(str::contains(
      renderHistoryPlot({}, {}, "empty"), "insufficient history"));
}

}  // namespace
}  // namespace rebench
