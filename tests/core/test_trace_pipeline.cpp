// Pipeline instrumentation: span structure, metric coverage, retry
// visibility and trace determinism — the observability half of the
// reproducibility story.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>

#include "core/framework/pipeline.hpp"
#include "core/obs/trace.hpp"
#include "core/obs/trace_reader.hpp"
#include "core/postproc/trace_report.hpp"
#include "core/util/strings.hpp"

namespace rebench {
namespace {

RegressionTest passingTest() {
  RegressionTest test;
  test.name = "TracedStream";
  test.spackSpec = "stream%gcc";
  test.numTasks = 1;
  test.numTasksPerNode = 1;
  test.sanityPattern = "Solution Validates";
  test.perfPatterns = {{"Triad", R"(Triad:\s+([0-9.]+))", Unit::kMBperSec}};
  test.run = [](const RunContext& ctx) {
    std::string out = "Triad: " +
                      std::to_string(100000.0 +
                                     1000.0 * ctx.allocation.cpusPerTask) +
                      " MB/s\nSolution Validates\n";
    return RunOutput{out, /*elapsedSeconds=*/12.0};
  };
  return test;
}

RegressionTest flakyTest(std::shared_ptr<std::atomic<int>> calls,
                         int failuresBeforeSuccess) {
  RegressionTest test = passingTest();
  test.name = "FlakyTraced";
  test.sanityPattern = "OK";
  test.perfPatterns = {{"rate", R"(rate ([0-9.]+))", Unit::kGBperSec}};
  test.run = [calls, failuresBeforeSuccess](const RunContext&) {
    const int attempt = calls->fetch_add(1);
    if (attempt < failuresBeforeSuccess) {
      return RunOutput{"NODE FAILURE xid 62\n", 1.0};
    }
    return RunOutput{"OK\nrate 42.0\n", 1.0};
  };
  return test;
}

const obs::SpanRecord* findSpan(const obs::Tracer& tracer,
                                std::string_view name) {
  for (const obs::SpanRecord& span : tracer.spans()) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

std::size_t countSpans(const obs::Tracer& tracer, std::string_view name) {
  return static_cast<std::size_t>(
      std::count_if(tracer.spans().begin(), tracer.spans().end(),
                    [&](const obs::SpanRecord& s) { return s.name == name; }));
}

class TracedPipeline : public ::testing::Test {
 protected:
  TracedPipeline() : systems_(builtinSystems()), repo_(builtinRepository()) {}

  TestRunResult run(const RegressionTest& test, std::string_view target,
                    PerfLog* perflog = nullptr, int maxRetries = 0) {
    PipelineOptions options;
    options.retry.maxRetries = maxRetries;
    options.tracer = &tracer_;
    options.metrics = &metrics_;
    Pipeline pipeline(systems_, repo_, options);
    return pipeline.runOne(test, target, perflog);
  }

  SystemRegistry systems_;
  PackageRepository repo_;
  obs::Tracer tracer_;
  obs::MetricsRegistry metrics_;
};

TEST_F(TracedPipeline, EmitsOneSpanPerStageUnderTestRun) {
  const TestRunResult result = run(passingTest(), "archer2");
  ASSERT_TRUE(result.passed) << result.failure.detail;
  EXPECT_EQ(tracer_.openSpans(), 0u);

  const obs::SpanRecord* root = findSpan(tracer_, "test_run");
  const obs::SpanRecord* attempt = findSpan(tracer_, "attempt");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(attempt, nullptr);
  EXPECT_EQ(root->parent, "");
  EXPECT_EQ(attempt->parent, root->id);
  EXPECT_EQ(root->attrs.at("test"), "TracedStream");
  EXPECT_EQ(root->attrs.at("outcome"), "pass");
  EXPECT_EQ(attempt->attrs.at("attempt"), "1");
  EXPECT_EQ(attempt->attrs.at("result"), "pass");

  for (const char* stage : {"concretize", "build", "submit", "run", "sanity",
                            "performance", "telemetry"}) {
    const obs::SpanRecord* span = findSpan(tracer_, stage);
    ASSERT_NE(span, nullptr) << stage;
    EXPECT_EQ(span->parent, attempt->id) << stage;
    EXPECT_GE(span->start, attempt->start) << stage;
    EXPECT_LE(span->end, attempt->end) << stage;
  }
  // Simulated build seconds flow into the build span's duration.
  EXPECT_GT(findSpan(tracer_, "build")->duration(), 1.0);
  // Queue wait + execution flows into the run span's duration.
  EXPECT_GT(findSpan(tracer_, "run")->duration(), 1.0);
}

TEST_F(TracedPipeline, PopulatesPipelineAndSchedulerMetrics) {
  run(passingTest(), "archer2");
  EXPECT_EQ(metrics_.counter("pipeline.runs").value(), 1u);
  EXPECT_EQ(metrics_.counter("sched.submitted").value(), 1u);
  EXPECT_EQ(metrics_.counter("sched.completed").value(), 1u);
  EXPECT_GE(metrics_.counter("concretizer.decisions").value(), 1u);
  EXPECT_GE(metrics_.gauge("sched.queue_depth").max(), 1.0);
  EXPECT_EQ(metrics_
                .histogram("pipeline.stage_seconds/build",
                           obs::stageSecondsBounds())
                .count(),
            1u);
  EXPECT_EQ(metrics_
                .histogram("sched.wait_seconds", obs::stageSecondsBounds())
                .count(),
            1u);
}

TEST_F(TracedPipeline, ConcretizerDecisionsLandAsEvents) {
  run(passingTest(), "archer2");
  bool sawDecision = false;
  for (const obs::EventRecord& event : tracer_.events()) {
    if (event.name == "concretize.decision") {
      sawDecision = true;
      EXPECT_FALSE(event.attrs.at("decision").empty());
      EXPECT_EQ(event.span, findSpan(tracer_, "concretize")->id);
    }
  }
  EXPECT_TRUE(sawDecision);
  // The compatibility view still carries the same rendered lines.
  // (migrated to emit through the tracer, kept as a field)
}

TEST_F(TracedPipeline, RetriesShowAsSiblingAttemptSpansAndPerflogRows) {
  auto calls = std::make_shared<std::atomic<int>>(0);
  PerfLog perflog;
  const TestRunResult result =
      run(flakyTest(calls, 1), "csd3", &perflog, /*maxRetries=*/2);
  ASSERT_TRUE(result.passed) << result.failure.detail;
  EXPECT_EQ(result.attempts, 2);

  ASSERT_EQ(countSpans(tracer_, "attempt"), 2u);
  const obs::SpanRecord* root = findSpan(tracer_, "test_run");
  std::vector<const obs::SpanRecord*> attempts;
  for (const obs::SpanRecord& span : tracer_.spans()) {
    if (span.name == "attempt") attempts.push_back(&span);
  }
  EXPECT_EQ(attempts[0]->parent, root->id);
  EXPECT_EQ(attempts[1]->parent, root->id);
  EXPECT_EQ(attempts[0]->attrs.at("result"), "fail");
  EXPECT_EQ(attempts[0]->attrs.at("failure_stage"), "sanity");
  EXPECT_EQ(attempts[1]->attrs.at("result"), "pass");
  EXPECT_EQ(root->attrs.at("attempts"), "2");

  // The failed attempt is perflog data too: stage, reason, attempt number.
  const auto entries = PerfLog::parseLines(perflog.lines());
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].fomName, "sanity");
  EXPECT_EQ(entries[0].result, "error");
  EXPECT_EQ(entries[0].extras.at("attempt"), "1");
  EXPECT_FALSE(entries[0].extras.at("error").empty());
  EXPECT_EQ(entries[1].fomName, "rate");
  EXPECT_EQ(entries[1].result, "pass");
  EXPECT_EQ(entries[1].extras.at("attempt"), "2");
  EXPECT_EQ(metrics_.counter("pipeline.retries").value(), 1u);
}

TEST_F(TracedPipeline, SuccessfulRunKeepsOnePerflogEntryPerFom) {
  PerfLog perflog;
  run(passingTest(), "archer2", &perflog);
  const auto entries = PerfLog::parseLines(perflog.lines());
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].extras.at("attempt"), "1");
  EXPECT_EQ(metrics_.counter("pipeline.perflog_lines").value(), 1u);
}

TEST_F(TracedPipeline, StageTableRendersEveryStageRow) {
  run(passingTest(), "archer2");
  const obs::TraceFile trace =
      obs::parseTraceJsonl(tracer_.toJsonl(&metrics_));
  EXPECT_TRUE(obs::lintTrace(trace).empty());
  const std::string table = renderStageTable(trace);
  for (const char* stage :
       {"concretize", "build", "run", "sanity", "performance"}) {
    EXPECT_TRUE(str::contains(table, stage)) << table;
  }
  const DataFrame frame = traceToDataFrame(trace);
  EXPECT_EQ(frame.rowCount(), trace.spans.size());
  EXPECT_TRUE(str::contains(renderTraceTree(trace), "test_run"));
  EXPECT_TRUE(
      str::contains(renderMetricsReport(trace), "pipeline.runs"));
}

TEST(TraceDeterminism, TwoIdenticalSimulatedRunsAreByteIdentical) {
  const SystemRegistry systems = builtinSystems();
  const PackageRepository repo = builtinRepository();
  auto runTraced = [&]() {
    obs::Tracer tracer;
    obs::MetricsRegistry metrics;
    PipelineOptions options;
    options.tracer = &tracer;
    options.metrics = &metrics;
    Pipeline pipeline(systems, repo, options);
    PerfLog perflog;
    pipeline.runOne(passingTest(), "archer2", &perflog);
    pipeline.runOne(passingTest(), "isambard-macs:cascadelake", &perflog);
    return tracer.toJsonl(&metrics);
  };
  const std::string first = runTraced();
  const std::string second = runTraced();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace rebench
