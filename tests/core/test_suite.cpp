#include "suite/builtin_suite.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/framework/pipeline.hpp"

namespace rebench {
namespace {

TEST(TestSuiteClass, AddAndSelectAll) {
  TestSuite suite;
  RegressionTest a;
  a.name = "TestA";
  RegressionTest b;
  b.name = "TestB";
  suite.add(a, {"x"});
  suite.add(b, {"y"});
  EXPECT_EQ(suite.size(), 2u);
  EXPECT_EQ(suite.select().size(), 2u);
}

TEST(TestSuiteClass, TagFilter) {
  TestSuite suite;
  RegressionTest a;
  a.name = "TestA";
  suite.add(a, {"omp", "babelstream"});
  RegressionTest b;
  b.name = "TestB";
  suite.add(b, {"cuda", "babelstream"});
  EXPECT_EQ(suite.select("omp").size(), 1u);
  EXPECT_EQ(suite.select("babelstream").size(), 2u);
  EXPECT_TRUE(suite.select("mpi").empty());
}

TEST(TestSuiteClass, PaperStyleNameSelection) {
  // Appendix A.1.2: reframe ... -n HPCG_ -x HPCG_Intel.
  TestSuite suite;
  for (const char* name :
       {"HPCG_Original", "HPCG_Intel", "HPCG_MatrixFree", "OtherTest"}) {
    RegressionTest test;
    test.name = name;
    suite.add(test);
  }
  const auto selected = suite.select("", "HPCG_", "HPCG_Intel");
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0].name, "HPCG_Original");
  EXPECT_EQ(selected[1].name, "HPCG_MatrixFree");
}

TEST(BuiltinSuite, CoversAllThreeCaseStudies) {
  const TestSuite suite = builtinSuite();
  EXPECT_EQ(suite.select("babelstream").size(), 9u);  // Fig. 2 rows
  EXPECT_EQ(suite.select("hpcg").size(), 4u);         // Table 2 rows
  EXPECT_EQ(suite.select("hpgmg").size(), 1u);        // Table 4
  EXPECT_EQ(suite.select("osu").size(), 3u);          // MPI micro-benchmarks
  EXPECT_EQ(suite.size(), 17u);
}

TEST(BuiltinSuite, PerModelTags) {
  const TestSuite suite = builtinSuite();
  EXPECT_EQ(suite.select("omp").size(), 1u);
  EXPECT_EQ(suite.select("std-ranges").size(), 1u);
  EXPECT_EQ(suite.select("matrix-free").size(), 1u);
}

TEST(BuiltinSuite, NamesAreUnique) {
  const auto names = builtinSuite().testNames();
  auto sorted = names;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
}

TEST(BuiltinSuite, TagSelectionRunsThroughPipeline) {
  // The paper's §3.1 invocation shape: select by tag, run on one system.
  const SystemRegistry systems = builtinSystems();
  const PackageRepository repo = builtinRepository();
  Pipeline pipeline(systems, repo);
  const auto tests = builtinSuite().select("omp");
  ASSERT_EQ(tests.size(), 1u);
  const std::vector<std::string> targets{"noctua2"};
  const auto results = pipeline.runAll(tests, targets);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].passed) << results[0].failure.detail;
}

}  // namespace
}  // namespace rebench
