// Integration tests of the full Figure-1 pipeline:
// concretize -> build -> schedule/run -> sanity -> FOM -> perflog.
#include "core/framework/pipeline.hpp"

#include <gtest/gtest.h>

#include <array>

#include "babelstream/testcase.hpp"
#include "core/postproc/perflog_reader.hpp"
#include "core/util/strings.hpp"
#include "hpcg/testcase.hpp"
#include "hpgmg/testcase.hpp"

namespace rebench {
namespace {

class PipelineFixture : public ::testing::Test {
 protected:
  PipelineFixture()
      : systems_(builtinSystems()),
        repo_(builtinRepository()),
        pipeline_(systems_, repo_) {}

  SystemRegistry systems_;
  PackageRepository repo_;
  Pipeline pipeline_;
};

RegressionTest syntheticTest() {
  RegressionTest test;
  test.name = "SyntheticTest";
  test.spackSpec = "stream";
  test.numTasks = 1;
  test.numTasksPerNode = 1;
  test.sanityPattern = "RESULT OK";
  test.perfPatterns = {{"rate", R"(rate\s+([0-9.]+))", Unit::kGBperSec}};
  test.run = [](const RunContext&) {
    return RunOutput{"RESULT OK\nrate 123.5 GB/s\n", 2.0};
  };
  return test;
}

TEST_F(PipelineFixture, SyntheticTestPassesEndToEnd) {
  PerfLog log;
  const TestRunResult result =
      pipeline_.runOne(syntheticTest(), "archer2", &log);
  EXPECT_TRUE(result.passed) << result.failure.stage << ": "
                             << result.failure.detail;
  EXPECT_TRUE(result.sanityPassed);
  EXPECT_EQ(result.jobState, JobState::kCompleted);
  EXPECT_NEAR(result.foms.at("rate"), 123.5, 1e-9);
  EXPECT_EQ(log.size(), 1u);

  // The perflog entry is a complete provenance record (P3/P4/P5).
  const PerfLogEntry entry = PerfLogEntry::parse(log.lines()[0]);
  EXPECT_EQ(entry.system, "archer2");
  EXPECT_EQ(entry.environ, "gcc@11.2.0");
  EXPECT_FALSE(entry.specHash.empty());
  EXPECT_FALSE(entry.binaryId.empty());
  EXPECT_TRUE(entry.extras.contains("launch"));
  EXPECT_TRUE(str::startsWith(entry.extras.at("launch"), "srun"));

  // The Principle-5 artefact: a replayable batch script for the run.
  EXPECT_TRUE(str::startsWith(result.jobScript, "#!/bin/bash"));
  EXPECT_TRUE(str::contains(result.jobScript, "#SBATCH --account=ec999"));
  EXPECT_TRUE(str::contains(result.jobScript, result.launchCommand));
}

TEST_F(PipelineFixture, SanityFailureStopsPipeline) {
  RegressionTest test = syntheticTest();
  test.run = [](const RunContext&) {
    return RunOutput{"RESULT BAD\nrate 1.0\n", 1.0};
  };
  const TestRunResult result = pipeline_.runOne(test, "archer2");
  EXPECT_FALSE(result.passed);
  EXPECT_EQ(result.failure.stage, "sanity");
}

TEST_F(PipelineFixture, MissingFomIsPerformanceFailure) {
  RegressionTest test = syntheticTest();
  test.run = [](const RunContext&) {
    return RunOutput{"RESULT OK\nno numbers here\n", 1.0};
  };
  const TestRunResult result = pipeline_.runOne(test, "archer2");
  EXPECT_FALSE(result.passed);
  EXPECT_EQ(result.failure.stage, "performance");
}

TEST_F(PipelineFixture, ReferenceViolationFlagged) {
  RegressionTest test = syntheticTest();
  test.references["archer2:compute"]["rate"] = {200.0, -0.1, 0.1};
  const TestRunResult result = pipeline_.runOne(test, "archer2");
  EXPECT_FALSE(result.passed);
  EXPECT_EQ(result.failure.stage, "reference");
  EXPECT_FALSE(result.fomWithinReference.at("rate"));
}

TEST_F(PipelineFixture, ReferenceWithinBoundsPasses) {
  RegressionTest test = syntheticTest();
  test.references["archer2:compute"]["rate"] = {120.0, -0.1, 0.1};
  const TestRunResult result = pipeline_.runOne(test, "archer2");
  EXPECT_TRUE(result.passed);
}

TEST_F(PipelineFixture, UnknownSpecFailsAtConcretize) {
  RegressionTest test = syntheticTest();
  test.spackSpec = "no-such-package";
  const TestRunResult result = pipeline_.runOne(test, "archer2");
  EXPECT_FALSE(result.passed);
  EXPECT_EQ(result.failure.stage, "concretize");
}

TEST_F(PipelineFixture, ConcretizationTraceIsAuditable) {
  const TestRunResult result =
      pipeline_.runOne(syntheticTest(), "csd3");
  EXPECT_FALSE(result.concretizationTrace.empty());
  ASSERT_NE(result.concreteSpec, nullptr);
  EXPECT_EQ(result.concreteSpec->name, "stream");
}

TEST_F(PipelineFixture, BabelstreamOnModeledPlatform) {
  PerfLog log;
  babelstream::BabelstreamTestOptions options;
  options.model = "omp";
  options.ntimes = 10;
  const TestRunResult result = pipeline_.runOne(
      babelstream::makeBabelstreamTest(options),
      "isambard-macs:cascadelake", &log);
  EXPECT_TRUE(result.passed) << result.failure.stage << ": "
                             << result.failure.detail;
  EXPECT_GT(result.foms.at("Triad"), 0.0);
  // Triad GB/s must be below Table 1 peak for the platform.
  EXPECT_LT(result.foms.at("Triad") / 1000.0, 282.0);
  EXPECT_EQ(log.size(), 5u);  // five kernels
}

TEST_F(PipelineFixture, BabelstreamUnsupportedModelRecordsFailure) {
  PerfLog log;
  babelstream::BabelstreamTestOptions options;
  options.model = "cuda";
  options.ntimes = 5;
  const TestRunResult result = pipeline_.runOne(
      babelstream::makeBabelstreamTest(options),
      "isambard-macs:cascadelake", &log);
  EXPECT_FALSE(result.passed);
  EXPECT_EQ(result.failure.stage, "run");
  EXPECT_TRUE(str::contains(result.failure.detail, "NVIDIA GPU"));
  // Failed combinations still land in the perflog (Fig. 2's "*" cells).
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(PerfLogEntry::parse(log.lines()[0]).result, "error");
}

TEST_F(PipelineFixture, BabelstreamNativeOnLocalSystem) {
  babelstream::BabelstreamTestOptions options;
  options.model = "serial";
  options.ntimes = 3;
  options.nativeArraySize = 1 << 16;
  const TestRunResult result = pipeline_.runOne(
      babelstream::makeBabelstreamTest(options), "local");
  EXPECT_TRUE(result.passed) << result.failure.detail;
  EXPECT_GT(result.foms.at("Triad"), 0.0);
}

TEST_F(PipelineFixture, HpcgVariantNaOnRomeIsRunFailure) {
  hpcg::HpcgTestOptions options;
  options.variant = hpcg::Variant::kCsrOpt;
  options.numTasks = 8;
  const TestRunResult result =
      pipeline_.runOne(hpcg::makeHpcgTest(options), "archer2");
  EXPECT_FALSE(result.passed);
  EXPECT_EQ(result.failure.stage, "run");
  EXPECT_TRUE(str::contains(result.failure.detail, "N/A"));
}

TEST_F(PipelineFixture, HpgmgAppendixGeometryRunsOnAllFourSystems) {
  PerfLog log;
  const RegressionTest test = hpgmg::makeHpgmgTest({});
  for (const char* target : {"archer2", "cosma8", "csd3", "isambard-macs"}) {
    const TestRunResult result = pipeline_.runOne(test, target, &log);
    EXPECT_TRUE(result.passed)
        << target << ": " << result.failure.stage << " "
        << result.failure.detail;
    EXPECT_GT(result.foms.at("l0"), 0.0);
    EXPECT_GT(result.foms.at("l1"), 0.0);
    EXPECT_GT(result.foms.at("l2"), 0.0);
  }
  // 4 systems x 3 FOMs.
  EXPECT_EQ(log.size(), 12u);
  const DataFrame frame =
      perflogToDataFrame(PerfLog::parseLines(log.lines()));
  EXPECT_EQ(frame.rowCount(), 12u);
}

TEST_F(PipelineFixture, RunAllSkipsNonMatchingTargets) {
  RegressionTest test = syntheticTest();
  test.validSystems = {"archer2"};
  const std::array<RegressionTest, 1> tests{test};
  const std::array<std::string, 2> targets{"archer2", "csd3"};
  const auto results = pipeline_.runAll(tests, targets);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].system, "archer2");
}

TEST_F(PipelineFixture, RepeatsProduceOneResultEach) {
  PipelineOptions options;
  options.numRepeats = 3;
  Pipeline pipeline(systems_, repo_, options);
  const std::array<RegressionTest, 1> tests{syntheticTest()};
  const std::array<std::string, 1> targets{"csd3"};
  PerfLog log;
  const auto results = pipeline.runAll(tests, targets, &log);
  EXPECT_EQ(results.size(), 3u);
  EXPECT_EQ(log.size(), 3u);
}

TEST_F(PipelineFixture, AccountMissingFailsSubmitStage) {
  PipelineOptions options;
  options.account = "";  // ARCHER2 requires -J'--account=...'
  Pipeline pipeline(systems_, repo_, options);
  const TestRunResult result = pipeline.runOne(syntheticTest(), "archer2");
  EXPECT_FALSE(result.passed);
  EXPECT_EQ(result.failure.stage, "submit");
  EXPECT_TRUE(str::contains(result.failure.detail, "Invalid account"));
}

}  // namespace
}  // namespace rebench
