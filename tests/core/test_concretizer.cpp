#include "core/concretizer/concretizer.hpp"

#include <gtest/gtest.h>

#include "core/sysconfig/system_config.hpp"
#include "core/util/error.hpp"

namespace rebench {
namespace {

class ConcretizerFixture : public ::testing::Test {
 protected:
  ConcretizerFixture()
      : repo_(builtinRepository()), systems_(builtinSystems()) {}

  ConcretizationResult concretizeOn(std::string_view system,
                                    std::string_view specText,
                                    ConcretizerOptions opts = {}) {
    const SystemConfig& sys = systems_.get(system);
    Concretizer c(repo_, sys.environment, opts);
    return c.concretize(Spec::parse(specText));
  }

  PackageRepository repo_;
  SystemRegistry systems_;
};

TEST_F(ConcretizerFixture, PinsEverythingOnSimpleSpec) {
  const auto result = concretizeOn("archer2", "babelstream +omp");
  ASSERT_NE(result.root, nullptr);
  EXPECT_EQ(result.root->name, "babelstream");
  EXPECT_EQ(result.root->version.toString(), "4.0");  // newest
  EXPECT_EQ(result.root->compilerName, "gcc");
  EXPECT_EQ(result.root->compilerVersion.toString(), "11.2.0");
  EXPECT_EQ(std::get<bool>(result.root->variants.at("omp")), true);
}

TEST_F(ConcretizerFixture, DefaultVariantsApplied) {
  const auto result = concretizeOn("archer2", "babelstream");
  EXPECT_EQ(std::get<std::string>(result.root->variants.at("model")), "omp");
}

TEST_F(ConcretizerFixture, CompilerConstraintRespected) {
  const auto result =
      concretizeOn("isambard-macs", "babelstream%gcc@9.2.0 model=omp");
  EXPECT_EQ(result.root->compilerVersion.toString(), "9.2.0");
}

TEST_F(ConcretizerFixture, MissingCompilerVersionFails) {
  EXPECT_THROW(concretizeOn("archer2", "babelstream%gcc@13:"),
               ConcretizationError);
}

TEST_F(ConcretizerFixture, UnknownVariantFails) {
  EXPECT_THROW(concretizeOn("archer2", "babelstream +nonexistent"),
               ConcretizationError);
}

TEST_F(ConcretizerFixture, DisallowedVariantValueFails) {
  EXPECT_THROW(concretizeOn("archer2", "babelstream model=fortran"),
               ConcretizationError);
}

TEST_F(ConcretizerFixture, VirtualMpiResolvesToSystemPreference) {
  const auto result = concretizeOn("archer2", "hpgmg%gcc");
  const ConcreteSpec* mpi = result.root->find("cray-mpich");
  ASSERT_NE(mpi, nullptr);
  EXPECT_TRUE(mpi->external);
  EXPECT_EQ(mpi->version.toString(), "8.1.23");
}

TEST_F(ConcretizerFixture, ExternalsReusedUnderDefaultPolicy) {
  const auto result = concretizeOn("csd3", "hpgmg%gcc");
  const ConcreteSpec* python = result.root->find("python");
  ASSERT_NE(python, nullptr);
  EXPECT_TRUE(python->external);
  EXPECT_EQ(python->version.toString(), "3.8.2");
}

TEST_F(ConcretizerFixture, PreferNewestBuildsFromSource) {
  ConcretizerOptions opts;
  opts.reuse = ReusePolicy::kPreferNewest;
  const auto result = concretizeOn("csd3", "hpgmg%gcc", opts);
  const ConcreteSpec* python = result.root->find("python");
  ASSERT_NE(python, nullptr);
  EXPECT_FALSE(python->external);
  EXPECT_EQ(python->version.toString(), "3.11.4");  // repo newest
}

TEST_F(ConcretizerFixture, UserDependencyConstraintApplies) {
  const auto result = concretizeOn("csd3", "hpgmg%gcc ^python@:3.7");
  // No 3.7-or-older python external on CSD3, so it must be built: newest
  // repo version satisfying :3.7 is 3.7.5.
  const ConcreteSpec* python = result.root->find("python");
  ASSERT_NE(python, nullptr);
  EXPECT_EQ(python->version.toString(), "3.7.5");
  EXPECT_FALSE(python->external);
}

TEST_F(ConcretizerFixture, ConflictingUserConstraintFails) {
  EXPECT_THROW(
      concretizeOn("csd3", "hpgmg%gcc ^python@4: ^python@:3"),
      ConcretizationError);
}

TEST_F(ConcretizerFixture, ConditionalDependencyActivates) {
  const auto withCuda =
      concretizeOn("isambard-macs", "babelstream model=cuda");
  EXPECT_NE(withCuda.root->find("cuda"), nullptr);
  const auto withoutCuda =
      concretizeOn("isambard-macs", "babelstream model=omp");
  EXPECT_EQ(withoutCuda.root->find("cuda"), nullptr);
}

TEST_F(ConcretizerFixture, AnonymousSpecRejected) {
  const SystemConfig& sys = systems_.get("archer2");
  Concretizer c(repo_, sys.environment);
  EXPECT_THROW(c.concretize(Spec::parse("+omp")), ConcretizationError);
}

TEST_F(ConcretizerFixture, TraceRecordsDecisions) {
  const auto result = concretizeOn("archer2", "hpgmg%gcc");
  bool sawVirtual = false, sawExternal = false, sawBuild = false;
  for (const std::string& line : result.trace) {
    if (line.find("virtual 'mpi'") != std::string::npos) sawVirtual = true;
    if (line.find("reused external") != std::string::npos) sawExternal = true;
    if (line.find("build hpgmg") != std::string::npos) sawBuild = true;
  }
  EXPECT_TRUE(sawVirtual);
  EXPECT_TRUE(sawExternal);
  EXPECT_TRUE(sawBuild);
}

TEST_F(ConcretizerFixture, DeterministicAcrossRuns) {
  const auto a = concretizeOn("archer2", "hpgmg%gcc");
  const auto b = concretizeOn("archer2", "hpgmg%gcc");
  EXPECT_EQ(a.root->dagHash(), b.root->dagHash());
}

TEST_F(ConcretizerFixture, DeclaredConflictsEnforced) {
  // §3.1's footnote became a recipe conflict: OpenCL + gcc >= 10.
  EXPECT_THROW(concretizeOn("csd3", "babelstream model=ocl"),
               ConcretizationError);  // csd3's gcc is 11.2.0
  // With gcc 9.2.0 the same spec concretizes fine.
  EXPECT_NO_THROW(concretizeOn("isambard-macs", "babelstream model=ocl"));
  // The error message carries the recipe's reason.
  try {
    concretizeOn("csd3", "babelstream model=ocl");
    FAIL() << "expected ConcretizationError";
  } catch (const ConcretizationError& e) {
    EXPECT_NE(std::string(e.what()).find("OpenCL build breaks"),
              std::string::npos);
  }
}

TEST_F(ConcretizerFixture, ConflictOnlyFiresWhenConditionHolds) {
  // model=omp is unaffected by the OpenCL conflict even with gcc 11.
  EXPECT_NO_THROW(concretizeOn("csd3", "babelstream model=omp"));
  // intel-tbb conflicts on aarch64 only.
  EXPECT_THROW(concretizeOn("csd3", "intel-tbb arch=aarch64"),
               ConcretizationError);
  EXPECT_NO_THROW(concretizeOn("csd3", "intel-tbb arch=x86_64"));
}

// --- The Table 3 reproduction, as unit assertions ------------------------

struct Table3Row {
  const char* system;
  const char* gcc;
  const char* python;
  const char* mpiPackage;
  const char* mpiVersion;
};

class Table3Test : public ConcretizerFixture,
                   public ::testing::WithParamInterface<Table3Row> {};

TEST_P(Table3Test, ConcretizedDependenciesMatchPaper) {
  const Table3Row& row = GetParam();
  const auto result = concretizeOn(row.system, "hpgmg%gcc");
  EXPECT_EQ(result.root->compilerVersion.toString(), row.gcc) << row.system;
  const ConcreteSpec* python = result.root->find("python");
  ASSERT_NE(python, nullptr);
  EXPECT_EQ(python->version.toString(), row.python) << row.system;
  const ConcreteSpec* mpi = result.root->find(row.mpiPackage);
  ASSERT_NE(mpi, nullptr) << row.system;
  EXPECT_EQ(mpi->version.toString(), row.mpiVersion) << row.system;
}

INSTANTIATE_TEST_SUITE_P(
    Table3, Table3Test,
    ::testing::Values(
        Table3Row{"archer2", "11.2.0", "3.10.12", "cray-mpich", "8.1.23"},
        Table3Row{"cosma8", "11.1.0", "2.7.15", "mvapich", "2.3.6"},
        Table3Row{"csd3", "11.2.0", "3.8.2", "openmpi", "4.0.4"},
        Table3Row{"isambard-macs", "9.2.0", "3.7.5", "openmpi", "4.0.3"}),
    [](const ::testing::TestParamInfo<Table3Row>& info) {
      std::string name = info.param.system;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace rebench
