#include "core/postproc/plot.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/util/strings.hpp"

namespace rebench {
namespace {

PivotTable samplePivot() {
  PivotTable table;
  table.rowLabels = {"omp", "cuda"};
  table.colLabels = {"clx", "v100"};
  table.cells = {{0.75, std::nullopt}, {std::nullopt, 0.95}};
  return table;
}

TEST(BarChart, ContainsLabelsAndValues) {
  const std::string out = renderBarChart(
      {"archer2", "csd3"}, {95.36, 126.10},
      {.title = "HPGMG l0", .width = 40, .valueSuffix = " MDOF/s"});
  EXPECT_TRUE(str::contains(out, "HPGMG l0"));
  EXPECT_TRUE(str::contains(out, "archer2"));
  EXPECT_TRUE(str::contains(out, "95.36 MDOF/s"));
  EXPECT_TRUE(str::contains(out, "126.10 MDOF/s"));
}

TEST(BarChart, LargestValueGetsLongestBar) {
  const std::string out =
      renderBarChart({"small", "large"}, {1.0, 10.0}, {.width = 20});
  const auto lines = str::split(out, '\n');
  const auto hashes = [](const std::string& s) {
    return std::count(s.begin(), s.end(), '#');
  };
  EXPECT_LT(hashes(lines[0]), hashes(lines[1]));
  EXPECT_EQ(hashes(lines[1]), 20);
}

TEST(BarChart, EmptyData) {
  EXPECT_TRUE(str::contains(renderBarChart({}, {}), "(no data)"));
}

TEST(Heatmap, MissingCellsShowMarker) {
  const std::string out = renderHeatmap(samplePivot(), {.title = "fig2"});
  EXPECT_TRUE(str::contains(out, "75.0%"));
  EXPECT_TRUE(str::contains(out, "95.0%"));
  EXPECT_TRUE(str::contains(out, "*"));
  EXPECT_TRUE(str::contains(out, "omp"));
  EXPECT_TRUE(str::contains(out, "v100"));
}

TEST(Heatmap, NonPercentMode) {
  const std::string out =
      renderHeatmap(samplePivot(), {.asPercent = false});
  EXPECT_TRUE(str::contains(out, "0.75"));
  EXPECT_FALSE(str::contains(out, "%"));
}

TEST(HeatmapSvg, WellFormedAndComplete) {
  const std::string svg =
      renderHeatmapSvg(samplePivot(), {.title = "Figure 2"});
  EXPECT_TRUE(str::startsWith(svg, "<svg"));
  EXPECT_TRUE(str::contains(svg, "</svg>"));
  // 2x2 cells -> 4 rects.
  std::size_t rects = 0, pos = 0;
  while ((pos = svg.find("<rect", pos)) != std::string::npos) {
    ++rects;
    pos += 5;
  }
  EXPECT_EQ(rects, 4u);
  EXPECT_TRUE(str::contains(svg, "Figure 2"));
  EXPECT_TRUE(str::contains(svg, "75%"));
}

TEST(BarChartSvg, WellFormed) {
  const std::string svg = renderBarChartSvg(
      {"a", "b"}, {1.0, 2.0}, {.title = "t", .valueSuffix = " GB/s"});
  EXPECT_TRUE(str::startsWith(svg, "<svg"));
  EXPECT_TRUE(str::contains(svg, "</svg>"));
  EXPECT_TRUE(str::contains(svg, " GB/s"));
}

TEST(SvgEscaping, AngleBracketsEscaped) {
  PivotTable table;
  table.rowLabels = {"a<b>"};
  table.colLabels = {"c&d"};
  table.cells = {{0.5}};
  const std::string svg = renderHeatmapSvg(table);
  EXPECT_TRUE(str::contains(svg, "a&lt;b&gt;"));
  EXPECT_TRUE(str::contains(svg, "c&amp;d"));
}

TEST(ScalingPlot, RendersSeriesAndLegend) {
  Series s1{"ideal", {1, 2, 4, 8}, {1, 2, 4, 8}};
  Series s2{"actual", {1, 2, 4, 8}, {1, 1.9, 3.5, 6.0}};
  const std::string out = renderScalingPlot({s1, s2}, "strong scaling");
  EXPECT_TRUE(str::contains(out, "strong scaling"));
  EXPECT_TRUE(str::contains(out, "legend: *=ideal o=actual"));
  EXPECT_TRUE(str::contains(out, "*"));
  EXPECT_TRUE(str::contains(out, "o"));
}

TEST(ScalingPlot, DegenerateDataHandled) {
  EXPECT_TRUE(str::contains(renderScalingPlot({}, "empty"), "(no data)"));
  Series flat{"flat", {1, 1}, {2, 2}};
  EXPECT_TRUE(str::contains(renderScalingPlot({flat}, "flat"), "(no data)"));
}

}  // namespace
}  // namespace rebench
