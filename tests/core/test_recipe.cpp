#include "core/pkg/recipe.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/util/error.hpp"

namespace rebench {
namespace {

TEST(PackageRecipe, VersionsSortedDescending) {
  PackageRecipe p("demo");
  p.version("1.0").version("3.0").version("2.0");
  ASSERT_EQ(p.versions().size(), 3u);
  EXPECT_EQ(p.versions()[0].toString(), "3.0");
  EXPECT_EQ(p.versions()[2].toString(), "1.0");
}

TEST(PackageRecipe, BestVersionHonoursConstraint) {
  PackageRecipe p("demo");
  p.version("9.2.0").version("10.3.0").version("11.2.0");
  EXPECT_EQ(p.bestVersion(VersionConstraint::any())->toString(), "11.2.0");
  EXPECT_EQ(p.bestVersion(VersionConstraint::parse(":10"))->toString(),
            "10.3.0");
  EXPECT_EQ(p.bestVersion(VersionConstraint::parse("9.2"))->toString(),
            "9.2.0");
  EXPECT_FALSE(p.bestVersion(VersionConstraint::parse("12:")).has_value());
}

TEST(PackageRecipe, FindVariant) {
  PackageRecipe p("demo");
  p.variant({"model", std::string("omp"), {"omp", "cuda"}, ""});
  EXPECT_NE(p.findVariant("model"), nullptr);
  EXPECT_EQ(p.findVariant("nope"), nullptr);
}

TEST(PackageRepository, GetAndHas) {
  PackageRepository repo;
  PackageRecipe p("demo");
  p.version("1.0");
  repo.add(std::move(p));
  EXPECT_TRUE(repo.has("demo"));
  EXPECT_FALSE(repo.has("other"));
  EXPECT_EQ(repo.get("demo").name(), "demo");
  EXPECT_THROW(repo.get("other"), NotFoundError);
}

TEST(PackageRepository, VirtualProviders) {
  PackageRepository repo;
  PackageRecipe a("openmpi");
  a.provides("mpi");
  PackageRecipe b("mpich");
  b.provides("mpi");
  repo.add(std::move(a));
  repo.add(std::move(b));
  EXPECT_TRUE(repo.isVirtual("mpi"));
  EXPECT_FALSE(repo.isVirtual("openmpi"));
  const auto providers = repo.providersOf("mpi");
  ASSERT_EQ(providers.size(), 2u);
  EXPECT_EQ(providers[0], "openmpi");
}

TEST(BuiltinRepository, ContainsPaperPackages) {
  const PackageRepository repo = builtinRepository();
  for (const char* name : {"gcc", "python", "openmpi", "cray-mpich",
                           "mvapich", "babelstream", "hpcg", "hpgmg"}) {
    EXPECT_TRUE(repo.has(name)) << name;
  }
  EXPECT_TRUE(repo.isVirtual("mpi"));
}

TEST(BuiltinRepository, VersionsCoverTable3) {
  const PackageRepository repo = builtinRepository();
  // Table 3 reports these concrete dependency versions.
  EXPECT_TRUE(repo.get("gcc").bestVersion(VersionConstraint::parse("11.2.0")));
  EXPECT_TRUE(repo.get("gcc").bestVersion(VersionConstraint::parse("11.1.0")));
  EXPECT_TRUE(repo.get("gcc").bestVersion(VersionConstraint::parse("9.2.0")));
  EXPECT_TRUE(
      repo.get("python").bestVersion(VersionConstraint::parse("3.10.12")));
  EXPECT_TRUE(
      repo.get("python").bestVersion(VersionConstraint::parse("2.7.15")));
  EXPECT_TRUE(repo.get("cray-mpich")
                  .bestVersion(VersionConstraint::parse("8.1.23")));
  EXPECT_TRUE(
      repo.get("mvapich").bestVersion(VersionConstraint::parse("2.3.6")));
  EXPECT_TRUE(
      repo.get("openmpi").bestVersion(VersionConstraint::parse("4.0.4")));
  EXPECT_TRUE(
      repo.get("openmpi").bestVersion(VersionConstraint::parse("4.0.3")));
}

TEST(BuiltinRepository, HpgmgDependsOnMpiAndPython) {
  const PackageRepository repo = builtinRepository();
  const PackageRecipe& hpgmg = repo.get("hpgmg");
  const auto& deps = hpgmg.dependencies();
  const bool hasMpi = std::any_of(
      deps.begin(), deps.end(),
      [](const DependencyDef& d) { return d.spec.name() == "mpi"; });
  const bool hasPython = std::any_of(
      deps.begin(), deps.end(), [](const DependencyDef& d) {
        return d.spec.name() == "python" && d.kind == DepKind::kBuild;
      });
  EXPECT_TRUE(hasMpi);
  EXPECT_TRUE(hasPython);
}

TEST(BuiltinRepository, BabelstreamModelsMatchFigure2Rows) {
  const PackageRepository repo = builtinRepository();
  const VariantDef* model = repo.get("babelstream").findVariant("model");
  ASSERT_NE(model, nullptr);
  for (const char* m : {"omp", "kokkos", "cuda", "ocl", "sycl", "tbb",
                        "std-data", "std-indices", "std-ranges"}) {
    EXPECT_TRUE(std::find(model->allowedValues.begin(),
                          model->allowedValues.end(),
                          m) != model->allowedValues.end())
        << m;
  }
}

TEST(BuiltinRepository, ConditionalDependencies) {
  const PackageRepository repo = builtinRepository();
  const auto& deps = repo.get("babelstream").dependencies();
  // The cuda dependency only applies when model=cuda.
  const auto it = std::find_if(
      deps.begin(), deps.end(),
      [](const DependencyDef& d) { return d.spec.name() == "cuda"; });
  ASSERT_NE(it, deps.end());
  ASSERT_TRUE(it->when.has_value());
  EXPECT_EQ(it->when->first, "model");
  EXPECT_EQ(std::get<std::string>(it->when->second), "cuda");
}

}  // namespace
}  // namespace rebench
