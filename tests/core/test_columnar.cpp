// Unit tests for the columnar engine underneath DataFrame: column
// primitives, zone-map skipping, schema-checked concatenation, the
// on-disk colframe cache and the streaming perflog merge.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/framework/perflog.hpp"
#include "core/obs/trace.hpp"
#include "core/obs/trace_reader.hpp"
#include "core/postproc/columnar/arena.hpp"
#include "core/postproc/columnar/colfile.hpp"
#include "core/postproc/columnar/column.hpp"
#include "core/postproc/columnar/kernels.hpp"
#include "core/postproc/columnar/merge.hpp"
#include "core/postproc/columnar/table.hpp"
#include "core/postproc/perflog_reader.hpp"
#include "core/store/object_store.hpp"
#include "core/util/error.hpp"
#include "core/util/strings.hpp"

namespace rebench {
namespace {

namespace fs = std::filesystem;
using columnar::kChunkRows;
using columnar::kNullCode;

std::string tempPath(const std::string& leaf) {
  const fs::path path = fs::path(::testing::TempDir()) / leaf;
  fs::remove_all(path);  // hermetic across reruns: TempDir() is stable
  return path.string();
}

// ---- layer 0: column primitives -----------------------------------------

TEST(NullBitmap, AllValidRunsCostNoStorage) {
  columnar::NullBitmap bitmap;
  bitmap.appendRun(1000, true);
  EXPECT_EQ(bitmap.size(), 1000u);
  EXPECT_TRUE(bitmap.empty());  // never materialized
  EXPECT_EQ(bitmap.nullCount(), 0u);
  EXPECT_TRUE(bitmap.valid(0));
  EXPECT_TRUE(bitmap.valid(999));
}

TEST(NullBitmap, FirstNullBackfillsEarlierRowsAsValid) {
  columnar::NullBitmap bitmap;
  bitmap.appendRun(70, true);  // crosses a word boundary before tracking
  bitmap.append(false);
  bitmap.append(true);
  EXPECT_EQ(bitmap.size(), 72u);
  EXPECT_FALSE(bitmap.empty());
  EXPECT_EQ(bitmap.nullCount(), 1u);
  for (std::size_t i = 0; i < 70; ++i) EXPECT_TRUE(bitmap.valid(i));
  EXPECT_FALSE(bitmap.valid(70));
  EXPECT_TRUE(bitmap.valid(71));
}

TEST(NullBitmap, RoundTripsThroughRawWords) {
  columnar::NullBitmap bitmap;
  bitmap.append(true);
  bitmap.append(false);
  bitmap.append(false);
  bitmap.append(true);
  const columnar::NullBitmap copy =
      columnar::NullBitmap::fromWords(bitmap.words(), bitmap.size());
  EXPECT_EQ(copy.nullCount(), 2u);
  EXPECT_TRUE(copy.valid(0));
  EXPECT_FALSE(copy.valid(1));
  EXPECT_FALSE(copy.valid(2));
  EXPECT_TRUE(copy.valid(3));
}

TEST(Dictionary, AssignsCodesInFirstSeenOrder) {
  columnar::Dictionary dict;
  EXPECT_EQ(dict.encode("csd3"), 0u);
  EXPECT_EQ(dict.encode("archer2"), 1u);
  EXPECT_EQ(dict.encode("csd3"), 0u);  // repeat reuses the code
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.at(1), "archer2");
  ASSERT_TRUE(dict.find("archer2").has_value());
  EXPECT_EQ(*dict.find("archer2"), 1u);
  EXPECT_FALSE(dict.find("cirrus").has_value());
}

TEST(TaggedColumnBuilder, CommitsNumericOnlyWhenEveryCellParses) {
  columnar::TaggedColumnBuilder numeric;
  numeric.add("1.5");
  numeric.add("-2e3");
  EXPECT_TRUE(numeric.numeric());

  columnar::TaggedColumnBuilder mixed;
  mixed.add("1.5");
  mixed.add("1.5 seconds");  // partial parse is not numeric
  EXPECT_FALSE(mixed.numeric());

  columnar::TaggedColumnBuilder empty;
  EXPECT_FALSE(empty.numeric());  // no evidence -> strings
}

TEST(TaggedColumnBuilder, NullsKeepNumericEligibility) {
  columnar::TaggedColumnBuilder builder;
  builder.add("4.0");
  builder.addNull();
  builder.add("8.0");
  EXPECT_TRUE(builder.numeric());
  EXPECT_EQ(builder.nullCount(), 1u);
  columnar::DoubleColumn col = builder.takeNumeric();
  ASSERT_EQ(col.values.size(), 3u);
  EXPECT_DOUBLE_EQ(col.values[0], 4.0);
  EXPECT_DOUBLE_EQ(col.values[2], 8.0);
  EXPECT_FALSE(col.validity.valid(1));
  EXPECT_EQ(col.nullCount(), 1u);
}

TEST(TaggedColumnBuilder, TakeStringsEncodesNullsAsSentinel) {
  columnar::TaggedColumnBuilder builder;
  builder.add("alpha");
  builder.addNull();
  builder.add("alpha");
  EXPECT_FALSE(builder.numeric());
  columnar::StringColumn col = builder.takeStrings();
  ASSERT_EQ(col.codes.size(), 3u);
  EXPECT_EQ(col.codes[0], 0u);
  EXPECT_EQ(col.codes[1], kNullCode);
  EXPECT_EQ(col.codes[2], 0u);
  EXPECT_EQ(col.nullCount(), 1u);
  const auto& decoded = col.materialize();
  EXPECT_EQ(decoded[1], "");  // nulls decode to ""
}

// ---- layer 2: zone-map skipping -----------------------------------------

TEST(ZoneMaps, EqualityProbeSkipsChunksOutsideCodeRange) {
  // Two full chunks: the first holds only "early", the second only "late".
  columnar::StringColumn col;
  for (std::size_t i = 0; i < kChunkRows; ++i) {
    columnar::appendString(col, "early");
  }
  for (std::size_t i = 0; i < kChunkRows; ++i) {
    columnar::appendString(col, "late");
  }
  columnar::Arena arena;
  columnar::KernelStats stats;
  const auto hits =
      columnar::selectEquals(col, "late", arena, &stats);
  EXPECT_EQ(hits.size(), kChunkRows);
  EXPECT_EQ(hits.front(), kChunkRows);
  EXPECT_EQ(stats.chunks, 2u);
  EXPECT_EQ(stats.skippedChunks, 1u);  // the all-"early" chunk
  EXPECT_EQ(stats.rows, 2 * kChunkRows);
}

TEST(ZoneMaps, ProbeAbsentFromDictionarySkipsEveryChunk) {
  columnar::StringColumn col;
  for (std::size_t i = 0; i < kChunkRows + 10; ++i) {
    columnar::appendString(col, "only");
  }
  columnar::Arena arena;
  columnar::KernelStats stats;
  const auto hits = columnar::selectEquals(col, "missing", arena, &stats);
  EXPECT_TRUE(hits.empty());
  EXPECT_EQ(stats.skippedChunks, stats.chunks);
}

TEST(ZoneMaps, RangeProbeSkipsChunksOutsideValueRange) {
  columnar::DoubleColumn col;
  for (std::size_t i = 0; i < kChunkRows; ++i) {
    columnar::appendDouble(col, static_cast<double>(i % 100));
  }
  for (std::size_t i = 0; i < kChunkRows; ++i) {
    columnar::appendDouble(col, 1000.0 + static_cast<double>(i % 100));
  }
  columnar::Arena arena;
  columnar::KernelStats stats;
  const auto hits = columnar::selectRange(col, 1000.0, 1010.0, arena, &stats);
  EXPECT_FALSE(hits.empty());
  EXPECT_EQ(stats.chunks, 2u);
  EXPECT_EQ(stats.skippedChunks, 1u);
  for (const std::uint32_t row : hits) EXPECT_GE(row, kChunkRows);
}

TEST(ZoneMaps, NumericZonesIgnoreNullSlots) {
  columnar::DoubleColumn col;
  columnar::appendDouble(col, 5.0);
  columnar::appendDoubleNull(col);  // NaN slot must not poison min/max
  columnar::appendDouble(col, 7.0);
  const auto& zones = col.zones();
  ASSERT_EQ(zones.size(), 1u);
  EXPECT_EQ(zones[0].count, 3u);
  EXPECT_EQ(zones[0].nulls, 1u);
  EXPECT_DOUBLE_EQ(zones[0].min, 5.0);
  EXPECT_DOUBLE_EQ(zones[0].max, 7.0);
}

TEST(SortedPercentile, LinearInterpolationMatchesStatsFormula) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(columnar::sortedPercentile(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(columnar::sortedPercentile(sorted, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(columnar::sortedPercentile(sorted, 50.0), 2.5);
}

// ---- layer 3: concat / appender -----------------------------------------

columnar::Table twoColumnChunk(const std::string& name0,
                               const std::string& name1, bool secondNumeric) {
  columnar::Table table;
  columnar::StringColumn s;
  columnar::appendString(s, "x");
  table.columns.push_back({name0, std::move(s)});
  if (secondNumeric) {
    columnar::DoubleColumn d;
    columnar::appendDouble(d, 1.0);
    table.columns.push_back({name1, std::move(d)});
  } else {
    columnar::StringColumn t;
    columnar::appendString(t, "y");
    table.columns.push_back({name1, std::move(t)});
  }
  table.rows = 1;
  return table;
}

TEST(TableAppender, NamesFirstMismatchingColumnByName) {
  columnar::TableAppender appender;
  appender.append(twoColumnChunk("system", "value", true));
  try {
    appender.append(twoColumnChunk("system", "different", true));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()),
              "cannot concat frames: column 2 is 'different' in frame 2 "
              "but 'value' in frame 1");
  }
}

TEST(TableAppender, NamesFirstMismatchingColumnByType) {
  columnar::TableAppender appender;
  appender.append(twoColumnChunk("system", "value", true));
  try {
    appender.append(twoColumnChunk("system", "value", false));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()),
              "cannot concat frames: column 'value' is string in frame 2 "
              "but numeric in frame 1");
  }
}

TEST(TableAppender, ReportsColumnCountMismatch) {
  columnar::TableAppender appender;
  appender.append(twoColumnChunk("system", "value", true));
  columnar::Table narrow;
  columnar::StringColumn s;
  columnar::appendString(s, "x");
  narrow.columns.push_back({"system", std::move(s)});
  narrow.rows = 1;
  try {
    appender.append(narrow);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()),
              "cannot concat frames: frame 2 has 1 column(s), frame 1 has 2");
  }
}

TEST(TableAppender, TracksPeakBufferedRowsAcrossChunks) {
  columnar::TableAppender appender;
  for (int chunk = 0; chunk < 3; ++chunk) {
    columnar::Table t;
    columnar::DoubleColumn d;
    for (int i = 0; i <= chunk; ++i) columnar::appendDouble(d, i);
    t.columns.push_back({"v", std::move(d)});
    t.rows = static_cast<std::size_t>(chunk + 1);
    appender.append(t);
  }
  EXPECT_EQ(appender.stats().inputs, 3u);
  EXPECT_EQ(appender.stats().rows, 6u);
  EXPECT_EQ(appender.stats().peakBufferedRows, 3u);
  const columnar::Table out = appender.take();
  EXPECT_EQ(out.rows, 6u);
}

TEST(ConcatTables, TranslatesDictionaryCodesAcrossInputs) {
  // The same label set encoded in different orders must decode the same.
  columnar::Table a;
  {
    columnar::StringColumn s;
    columnar::appendString(s, "one");
    columnar::appendString(s, "two");
    a.columns.push_back({"k", std::move(s)});
    a.rows = 2;
  }
  columnar::Table b;
  {
    columnar::StringColumn s;
    columnar::appendString(s, "two");  // code 0 here, code 1 in `a`
    columnar::appendString(s, "one");
    b.columns.push_back({"k", std::move(s)});
    b.rows = 2;
  }
  const columnar::Table* inputs[] = {&a, &b};
  const columnar::Table merged = columnar::concatTables(inputs);
  const auto& decoded = merged.columns[0].strs().materialize();
  EXPECT_EQ(decoded, (std::vector<std::string>{"one", "two", "two", "one"}));
}

// ---- colframe cache -----------------------------------------------------

columnar::Table losslessFixture() {
  std::vector<PerfLogEntry> entries;
  for (int i = 0; i < 3; ++i) {
    PerfLogEntry entry;
    entry.timestamp = std::to_string(100 + i);
    entry.system = i < 2 ? "archer2" : "csd3";
    entry.partition = "standard";
    entry.environ = "gcc@11.2.0";
    entry.testName = "stream";
    entry.spec = "stream@1.0";
    entry.specHash = "abc123";
    entry.binaryId = "bin456";
    entry.jobId = std::to_string(9000 + i);
    entry.fomName = "triad";
    entry.value = 100.0 + i;
    entry.unit = Unit::kGBperSec;
    if (i == 1) entry.reference = 105.0;  // ref only on one row
    entry.lowerThresh = -0.05;
    entry.upperThresh = 0.05;
    entry.result = "pass";
    if (i != 2) entry.extras["num_tasks"] = std::to_string(4 * (i + 1));
    if (i == 2) entry.extras["array_size"] = "1048576";
    entries.push_back(entry);
  }
  return entriesToTable(entries);
}

TEST(ColFrame, RoundTripsThroughTheObjectStore) {
  store::ObjectStore store(tempPath("colframe_rt"));
  const columnar::Table table = losslessFixture();
  const std::string footer = columnar::writeColFrame(store, table);
  const auto loaded = columnar::readColFrame(store, footer);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->columns.size(), table.columns.size());
  EXPECT_EQ(loaded->rows, table.rows);
  for (std::size_t c = 0; c < table.columns.size(); ++c) {
    SCOPED_TRACE(table.columns[c].name);
    EXPECT_EQ(loaded->columns[c].name, table.columns[c].name);
    ASSERT_EQ(loaded->columns[c].isNumeric(), table.columns[c].isNumeric());
    if (table.columns[c].isNumeric()) {
      const auto& want = table.columns[c].doubles();
      const auto& got = loaded->columns[c].doubles();
      ASSERT_EQ(got.values.size(), want.values.size());
      EXPECT_EQ(got.nullCount(), want.nullCount());
      for (std::size_t i = 0; i < want.values.size(); ++i) {
        if (!want.validity.valid(i)) {
          EXPECT_FALSE(got.validity.valid(i));
        } else {
          EXPECT_DOUBLE_EQ(got.values[i], want.values[i]);
        }
      }
    } else {
      EXPECT_EQ(loaded->columns[c].strs().materialize(),
                table.columns[c].strs().materialize());
      EXPECT_EQ(loaded->columns[c].strs().nullCount(),
                table.columns[c].strs().nullCount());
    }
  }
}

TEST(ColFrame, WriteIsDeterministic) {
  store::ObjectStore a(tempPath("colframe_det_a"));
  store::ObjectStore b(tempPath("colframe_det_b"));
  EXPECT_EQ(columnar::writeColFrame(a, losslessFixture()),
            columnar::writeColFrame(b, losslessFixture()));
}

TEST(ColFrame, AttachesFooterZoneMapsOnRead) {
  store::ObjectStore store(tempPath("colframe_zones"));
  const std::string footer =
      columnar::writeColFrame(store, losslessFixture());
  const auto loaded = columnar::readColFrame(store, footer);
  ASSERT_TRUE(loaded.has_value());
  const columnar::Column* value = loaded->find("value");
  ASSERT_NE(value, nullptr);
  const auto& zones = value->doubles().zones();
  ASSERT_EQ(zones.size(), 1u);
  EXPECT_EQ(zones[0].count, 3u);
  EXPECT_DOUBLE_EQ(zones[0].min, 100.0);
  EXPECT_DOUBLE_EQ(zones[0].max, 102.0);
}

TEST(ColFrame, CorruptColumnBlobReadsAsAbsent) {
  store::ObjectStore store(tempPath("colframe_corrupt"));
  const columnar::Table table = losslessFixture();
  const std::string footer = columnar::writeColFrame(store, table);

  // Truncate every object except the footer; the verified get must fail
  // for whichever column blob is touched first.
  const auto footerBytes = store.get(footer);
  ASSERT_TRUE(footerBytes.has_value());
  std::size_t corrupted = 0;
  for (const auto& entry :
       fs::directory_iterator(fs::path(store.dir()) / "objects")) {
    if (entry.path().filename() == footer) continue;
    std::ofstream(entry.path(), std::ios::trunc) << "garbage";
    ++corrupted;
  }
  ASSERT_GT(corrupted, 0u);
  EXPECT_FALSE(columnar::readColFrame(store, footer).has_value());
}

TEST(ColFrame, MissingFooterReadsAsAbsent) {
  store::ObjectStore store(tempPath("colframe_missing"));
  EXPECT_FALSE(
      columnar::readColFrame(store, "0123456789abcdef").has_value());
}

// ---- perflog cache + merge ----------------------------------------------

std::string writePerflog(const std::string& leaf,
                         const std::vector<PerfLogEntry>& entries) {
  const std::string path = tempPath(leaf);
  std::ofstream out(path, std::ios::trunc);
  for (const PerfLogEntry& entry : entries) out << entry.serialize() << "\n";
  return path;
}

PerfLogEntry simpleEntry(const std::string& stamp, const std::string& system,
                         double value) {
  PerfLogEntry entry;
  entry.timestamp = stamp;
  entry.system = system;
  entry.partition = "standard";
  entry.environ = "gcc@11.2.0";
  entry.testName = "stream";
  entry.spec = "stream@1.0";
  entry.specHash = "h";
  entry.binaryId = "b";
  entry.jobId = "j";
  entry.fomName = "triad";
  entry.value = value;
  entry.unit = Unit::kSeconds;
  entry.result = "pass";
  return entry;
}

TEST(FrameCache, ConvertsOnceThenHitsByContentHash) {
  const std::string path = writePerflog(
      "cache_hit.log", {simpleEntry("1", "archer2", 1.0),
                        simpleEntry("2", "archer2", 2.0)});
  store::ObjectStore store(tempPath("cache_hit_store"));

  const FrameCacheResult first = loadOrConvertPerflog(store, path);
  EXPECT_FALSE(first.cacheHit);
  EXPECT_EQ(first.table.rows, 2u);

  const FrameCacheResult second = loadOrConvertPerflog(store, path);
  EXPECT_TRUE(second.cacheHit);
  EXPECT_EQ(second.table.rows, 2u);
  EXPECT_EQ(tableToPerflogEntries(second.table)[1].serialize(),
            simpleEntry("2", "archer2", 2.0).serialize());
}

TEST(FrameCache, ChangedFileMissesTheOldEntry) {
  const std::string path =
      writePerflog("cache_change.log", {simpleEntry("1", "archer2", 1.0)});
  store::ObjectStore store(tempPath("cache_change_store"));
  (void)loadOrConvertPerflog(store, path);

  std::ofstream(path, std::ios::app)
      << simpleEntry("2", "csd3", 2.0).serialize() << "\n";
  const FrameCacheResult reread = loadOrConvertPerflog(store, path);
  EXPECT_FALSE(reread.cacheHit);  // new content hash, new conversion
  EXPECT_EQ(reread.table.rows, 2u);
}

TEST(FrameCache, CorruptCacheDegradesToReparse) {
  const std::string path =
      writePerflog("cache_corrupt.log", {simpleEntry("1", "archer2", 1.0)});
  store::ObjectStore store(tempPath("cache_corrupt_store"));
  (void)loadOrConvertPerflog(store, path);

  // Smash every cached object; the verified read fails and the loader
  // must fall back to parsing the perflog again.
  for (const auto& entry :
       fs::directory_iterator(fs::path(store.dir()) / "objects")) {
    std::ofstream(entry.path(), std::ios::trunc) << "garbage";
  }
  const FrameCacheResult reread = loadOrConvertPerflog(store, path);
  EXPECT_FALSE(reread.cacheHit);
  EXPECT_EQ(reread.table.rows, 1u);
  EXPECT_EQ(tableToPerflogEntries(reread.table)[0].serialize(),
            simpleEntry("1", "archer2", 1.0).serialize());
}

TEST(LosslessTable, RoundTripsEntriesIncludingExtrasAndReference) {
  std::vector<PerfLogEntry> entries;
  entries.push_back(simpleEntry("10", "archer2", 1.5));
  entries.back().extras["num_tasks"] = "8";
  entries.push_back(simpleEntry("11", "csd3", 2.5));
  entries.back().reference = 2.0;
  entries.back().extras["array_size"] = "4096";
  entries.back().result = "fail";

  const columnar::Table table = entriesToTable(entries);
  const std::vector<PerfLogEntry> back = tableToPerflogEntries(table);
  ASSERT_EQ(back.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(back[i].serialize(), entries[i].serialize());
  }
  // Each extras key appears exactly once in sorted order, with nulls on
  // the rows that lack it.
  const columnar::Column* tasks = table.find("x:num_tasks");
  ASSERT_NE(tasks, nullptr);
  EXPECT_EQ(tasks->strs().nullCount(), 1u);
}

TEST(LosslessTable, AnalysisProjectionMatchesDirectConversion) {
  std::vector<PerfLogEntry> entries = {simpleEntry("1", "archer2", 1.0),
                                       simpleEntry("2", "csd3", 2.0)};
  entries[0].extras["num_tasks"] = "4";
  const DataFrame direct = perflogToDataFrame(entries);
  const DataFrame projected = analysisFrameFromTable(entriesToTable(entries));
  EXPECT_EQ(projected.toCsv(), direct.toCsv());
}

TEST(MergePerflogs, OrdersNumericStampsNumerically) {
  // Lexicographic order would put "9" after "10"; numeric order must not.
  const std::string a = writePerflog(
      "merge_a.log",
      {simpleEntry("9", "archer2", 1.0), simpleEntry("100", "archer2", 3.0)});
  const std::string b = writePerflog(
      "merge_b.log",
      {simpleEntry("10", "csd3", 2.0), simpleEntry("200", "csd3", 4.0)});
  const std::vector<std::string> paths = {a, b};
  const columnar::Table merged = mergePerflogsByTime(paths);
  const std::vector<PerfLogEntry> rows = tableToPerflogEntries(merged);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].timestamp, "9");
  EXPECT_EQ(rows[1].timestamp, "10");
  EXPECT_EQ(rows[2].timestamp, "100");
  EXPECT_EQ(rows[3].timestamp, "200");
}

TEST(MergePerflogs, TiesKeepInputOrderAndTextStampsSortLast) {
  const std::string a = writePerflog(
      "merge_tie_a.log",
      {simpleEntry("5", "archer2", 1.0), simpleEntry("T2", "archer2", 9.0)});
  const std::string b = writePerflog(
      "merge_tie_b.log",
      {simpleEntry("5", "csd3", 2.0), simpleEntry("T1", "csd3", 8.0)});
  const std::vector<std::string> paths = {a, b};
  const std::vector<PerfLogEntry> rows =
      tableToPerflogEntries(mergePerflogsByTime(paths));
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].system, "archer2");  // tie at "5": input 0 first
  EXPECT_EQ(rows[1].system, "csd3");
  EXPECT_EQ(rows[2].timestamp, "T1");  // non-numeric: lexicographic, last
  EXPECT_EQ(rows[3].timestamp, "T2");
}

TEST(MergePerflogs, BuffersAtMostOneChunkPerInput) {
  std::vector<PerfLogEntry> a, b;
  for (int i = 0; i < 20; ++i) {
    a.push_back(simpleEntry(std::to_string(2 * i), "archer2", i));
    b.push_back(simpleEntry(std::to_string(2 * i + 1), "csd3", i));
  }
  const std::vector<std::string> paths = {writePerflog("merge_mem_a.log", a),
                                          writePerflog("merge_mem_b.log", b)};
  MergeStats stats;
  const columnar::Table merged =
      mergePerflogsByTime(paths, /*chunkRows=*/4, nullptr, &stats);
  EXPECT_EQ(merged.rows, 40u);
  EXPECT_EQ(stats.inputs, 2u);
  EXPECT_EQ(stats.rows, 40u);
  EXPECT_LE(stats.peakBufferedRows, 2u * 4u);  // inputs x chunkRows

  // Perfectly interleaved stamps come out globally sorted.
  const std::vector<PerfLogEntry> rows = tableToPerflogEntries(merged);
  for (std::size_t i = 0; i + 1 < rows.size(); ++i) {
    EXPECT_LT(std::stod(rows[i].timestamp), std::stod(rows[i + 1].timestamp));
  }
}

TEST(MergePerflogs, UnreadableInputThrows) {
  const std::vector<std::string> paths = {tempPath("merge_nope.log")};
  EXPECT_THROW(mergePerflogsByTime(paths), Error);
}

// ---- observability spans ------------------------------------------------

TEST(ColumnarSpans, KernelSpansCarryTheLintContract) {
  DataFrame frame;
  frame.addStrings("system", {"a", "a", "b"});
  frame.addNumeric("value", {1.0, 2.0, 3.0});
  obs::Tracer tracer;
  frame.setTracer(&tracer);

  const std::vector<std::string> keys = {"system"};
  (void)frame.groupBy(keys, "value", Agg::kMean);
  (void)frame.filterEquals("system", "a");
  (void)frame.sortBy("value", false);
  (void)frame.describe();

  const obs::TraceFile trace = obs::parseTraceJsonl(tracer.toJsonl());
  EXPECT_TRUE(obs::lintTrace(trace).empty());
  std::size_t kernelSpans = 0;
  for (const auto& span : trace.spans) {
    if (span.name != "postproc.columnar.kernel") continue;
    ++kernelSpans;
    EXPECT_NE(span.attrs.find("kernel"), span.attrs.end());
    EXPECT_NE(span.attrs.find("rows"), span.attrs.end());
    EXPECT_NE(span.attrs.find("skipped_chunks"), span.attrs.end());
  }
  EXPECT_EQ(kernelSpans, 4u);
}

TEST(ColumnarSpans, AssimilateAndConvertSpansLintClean) {
  const std::string a =
      writePerflog("span_a.log", {simpleEntry("1", "archer2", 1.0)});
  const std::string b =
      writePerflog("span_b.log", {simpleEntry("2", "csd3", 2.0)});
  obs::Tracer tracer;
  const std::vector<std::string> paths = {a, b};
  const DataFrame merged = assimilatePerflogs(paths, &tracer);
  EXPECT_EQ(merged.rowCount(), 2u);

  store::ObjectStore store(tempPath("span_store"));
  (void)loadOrConvertPerflog(store, a, &tracer);  // converted
  (void)loadOrConvertPerflog(store, a, &tracer);  // hit

  const obs::TraceFile trace = obs::parseTraceJsonl(tracer.toJsonl());
  EXPECT_TRUE(obs::lintTrace(trace).empty());
  std::size_t mergeSpans = 0, convertSpans = 0;
  std::vector<std::string> outcomes;
  for (const auto& span : trace.spans) {
    if (span.name == "postproc.columnar.merge") {
      ++mergeSpans;
      EXPECT_EQ(span.attrs.at("inputs"), "2");
      EXPECT_EQ(span.attrs.at("rows"), "2");
    } else if (span.name == "postproc.columnar.convert") {
      ++convertSpans;
      outcomes.push_back(span.attrs.at("outcome"));
    }
  }
  EXPECT_EQ(mergeSpans, 1u);
  EXPECT_EQ(convertSpans, 2u);
  EXPECT_EQ(outcomes, (std::vector<std::string>{"converted", "hit"}));
}

}  // namespace
}  // namespace rebench
