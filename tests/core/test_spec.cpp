#include "core/spec/spec.hpp"

#include <gtest/gtest.h>

#include "core/util/error.hpp"

namespace rebench {
namespace {

TEST(SpecParse, NameOnly) {
  const Spec s = Spec::parse("hpgmg");
  EXPECT_EQ(s.name(), "hpgmg");
  EXPECT_TRUE(s.versions().isAny());
  EXPECT_FALSE(s.compiler().has_value());
  EXPECT_TRUE(s.variants().empty());
}

TEST(SpecParse, PaperBabelstreamSpec) {
  // Appendix A.1.1: babelstream%gcc@9.2.0 +omp
  const Spec s = Spec::parse("babelstream%gcc@9.2.0 +omp");
  EXPECT_EQ(s.name(), "babelstream");
  ASSERT_TRUE(s.compiler().has_value());
  EXPECT_EQ(s.compiler()->name, "gcc");
  EXPECT_TRUE(
      s.compiler()->versions.satisfiedBy(Version::parse("9.2.0")));
  ASSERT_TRUE(s.variants().contains("omp"));
  EXPECT_EQ(std::get<bool>(s.variants().at("omp")), true);
}

TEST(SpecParse, PaperHpgmgSpec) {
  // Appendix A.1.3: hpgmg%gcc
  const Spec s = Spec::parse("hpgmg%gcc");
  EXPECT_EQ(s.name(), "hpgmg");
  ASSERT_TRUE(s.compiler().has_value());
  EXPECT_EQ(s.compiler()->name, "gcc");
  EXPECT_TRUE(s.compiler()->versions.isAny());
}

TEST(SpecParse, VersionConstraint) {
  const Spec s = Spec::parse("openmpi@4.0:4.9");
  EXPECT_TRUE(s.versions().satisfiedBy(Version::parse("4.0.4")));
  EXPECT_FALSE(s.versions().satisfiedBy(Version::parse("3.1.6")));
}

TEST(SpecParse, NegativeVariantAndStringVariant) {
  const Spec s = Spec::parse("hpcg~csr operator=matrix-free");
  EXPECT_EQ(std::get<bool>(s.variants().at("csr")), false);
  EXPECT_EQ(std::get<std::string>(s.variants().at("operator")),
            "matrix-free");
}

TEST(SpecParse, Dependencies) {
  const Spec s = Spec::parse("hpgmg%gcc ^openmpi@4.0.4 ^python@3.8:");
  ASSERT_EQ(s.dependencies().size(), 2u);
  EXPECT_EQ(s.dependencies()[0].name(), "openmpi");
  EXPECT_TRUE(s.dependencies()[0].versions().satisfiedBy(
      Version::parse("4.0.4")));
  EXPECT_EQ(s.dependencies()[1].name(), "python");
}

TEST(SpecParse, DependencyWithVariants) {
  const Spec s = Spec::parse("babelstream ^kokkos@3.6: backend=openmp");
  ASSERT_EQ(s.dependencies().size(), 1u);
  const Spec& dep = s.dependencies()[0];
  EXPECT_EQ(dep.name(), "kokkos");
  EXPECT_EQ(std::get<std::string>(dep.variants().at("backend")), "openmp");
}

TEST(SpecParse, Errors) {
  EXPECT_THROW(Spec::parse(""), ParseError);
  EXPECT_THROW(Spec::parse("   "), ParseError);
  EXPECT_THROW(Spec::parse("pkg ^"), ParseError);
  EXPECT_THROW(Spec::parse("pkg +"), ParseError);
  EXPECT_THROW(Spec::parse("pkg foo"), ParseError);  // bare word, no '='
}

TEST(SpecToString, RoundTrips) {
  for (const char* text :
       {"babelstream@4.0%gcc@9.2.0 +omp", "hpgmg%gcc ^openmpi@4.0.4",
        "hpcg operator=lfric ^mpi"}) {
    const Spec s = Spec::parse(text);
    const Spec reparsed = Spec::parse(s.toString());
    EXPECT_EQ(reparsed.toString(), s.toString()) << text;
  }
}

TEST(SpecSatisfies, NameAndVariant) {
  const Spec tight = Spec::parse("babelstream@4.0%gcc +omp");
  EXPECT_TRUE(tight.satisfies(Spec::parse("babelstream")));
  EXPECT_TRUE(tight.satisfies(Spec::parse("babelstream +omp")));
  EXPECT_FALSE(tight.satisfies(Spec::parse("babelstream ~omp")));
  EXPECT_FALSE(tight.satisfies(Spec::parse("hpcg")));
  EXPECT_FALSE(Spec::parse("babelstream")
                   .satisfies(Spec::parse("babelstream@4.0")));
}

TEST(SpecConstrain, MergesAndDetectsConflicts) {
  Spec s = Spec::parse("hpcg@3.1");
  s.constrain(Spec::parse("hpcg +mg"));
  EXPECT_EQ(std::get<bool>(s.variants().at("mg")), true);
  EXPECT_THROW(s.constrain(Spec::parse("hpcg ~mg")), ConcretizationError);
  EXPECT_THROW(s.constrain(Spec::parse("hpgmg")), ConcretizationError);
}

TEST(SpecConstrain, CompilerConflict) {
  Spec s = Spec::parse("hpcg%gcc");
  EXPECT_THROW(s.constrain(Spec::parse("hpcg%oneapi")), ConcretizationError);
}

TEST(ConcreteSpec, DagHashStableAndSensitive) {
  ConcreteSpec a;
  a.name = "hpgmg";
  a.version = Version::parse("0.4");
  a.compilerName = "gcc";
  a.compilerVersion = Version::parse("11.2.0");

  ConcreteSpec b = a;
  EXPECT_EQ(a.dagHash(), b.dagHash());

  b.version = Version::parse("0.3");
  EXPECT_NE(a.dagHash(), b.dagHash());

  ConcreteSpec c = a;
  auto dep = std::make_shared<ConcreteSpec>();
  dep->name = "openmpi";
  dep->version = Version::parse("4.0.4");
  c.dependencies["openmpi"] = dep;
  EXPECT_NE(a.dagHash(), c.dagHash());
}

TEST(ConcreteSpec, SatisfiesNode) {
  ConcreteSpec node;
  node.name = "openmpi";
  node.version = Version::parse("4.0.4");
  node.compilerName = "gcc";
  node.compilerVersion = Version::parse("11.2.0");
  EXPECT_TRUE(node.satisfiesNode(Spec::parse("openmpi@4.0:")));
  EXPECT_TRUE(node.satisfiesNode(Spec::parse("openmpi%gcc@11:")));
  EXPECT_FALSE(node.satisfiesNode(Spec::parse("openmpi@4.1:")));
  EXPECT_FALSE(node.satisfiesNode(Spec::parse("openmpi%oneapi")));
}

TEST(ConcreteSpec, FindSearchesTransitively) {
  auto mpi = std::make_shared<ConcreteSpec>();
  mpi->name = "cray-mpich";
  mpi->version = Version::parse("8.1.23");
  ConcreteSpec root;
  root.name = "hpgmg";
  root.version = Version::parse("0.4");
  root.dependencies["cray-mpich"] = mpi;
  ASSERT_NE(root.find("cray-mpich"), nullptr);
  EXPECT_EQ(root.find("cray-mpich")->version.toString(), "8.1.23");
  EXPECT_EQ(root.find("nothere"), nullptr);
  EXPECT_EQ(root.find("hpgmg"), &root);
}

TEST(ConcreteSpec, TreeRendering) {
  auto dep = std::make_shared<ConcreteSpec>();
  dep->name = "python";
  dep->version = Version::parse("3.10.12");
  dep->external = true;
  dep->externalOrigin = "cray-python/3.10.12";
  ConcreteSpec root;
  root.name = "hpgmg";
  root.version = Version::parse("0.4");
  root.compilerName = "gcc";
  root.compilerVersion = Version::parse("11.2.0");
  root.dependencies["python"] = dep;
  const std::string tree = root.tree();
  EXPECT_NE(tree.find("hpgmg@0.4%gcc@11.2.0"), std::string::npos);
  EXPECT_NE(tree.find("^python@3.10.12"), std::string::npos);
  EXPECT_NE(tree.find("[external: cray-python/3.10.12]"), std::string::npos);
}

}  // namespace
}  // namespace rebench
