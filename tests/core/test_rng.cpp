#include "core/util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rebench {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, FromKeyIsDeterministic) {
  Rng a = Rng::fromKey("fig2:omp:clx-6230:iter0");
  Rng b = Rng::fromKey("fig2:omp:clx-6230:iter0");
  EXPECT_EQ(a.next(), b.next());
  Rng c = Rng::fromKey("fig2:omp:clx-6230:iter1");
  Rng d = Rng::fromKey("fig2:omp:clx-6230:iter0");
  EXPECT_NE(c.next(), d.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0.0, sumSq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumSq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumSq / n, 1.0, 0.05);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(10), 10u);
  }
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, NoiseFactorNearOneAndPositive) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const double f = rng.noiseFactor(0.02);
    EXPECT_GT(f, 0.0);
    EXPECT_NEAR(f, 1.0, 0.2);
  }
}

}  // namespace
}  // namespace rebench
