#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace rebench {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.wait();  // must not hang
  SUCCEED();
}

TEST(ParallelFor, TouchesEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  parallelFor(pool, 0, touched.size(),
              [&](std::size_t i) { touched[i].fetch_add(1); });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ParallelFor, DynamicScheduleTouchesEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(777);
  parallelFor(
      pool, 0, touched.size(),
      [&](std::size_t i) { touched[i].fetch_add(1); }, Schedule::kDynamic,
      10);
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallelFor(pool, 5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForBlocked, BlocksPartitionRange) {
  ThreadPool pool(3);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> blocks;
  parallelForBlocked(pool, 0, 100, [&](std::size_t lo, std::size_t hi) {
    std::lock_guard lock(m);
    blocks.emplace_back(lo, hi);
  });
  std::sort(blocks.begin(), blocks.end());
  std::size_t expected = 0;
  for (const auto& [lo, hi] : blocks) {
    EXPECT_EQ(lo, expected);
    EXPECT_GT(hi, lo);
    expected = hi;
  }
  EXPECT_EQ(expected, 100u);
}

TEST(ParallelReduce, MatchesSerialSum) {
  ThreadPool pool(4);
  const std::size_t n = 100000;
  std::vector<double> data(n);
  std::iota(data.begin(), data.end(), 1.0);
  const double parallel =
      parallelReduceSum(pool, 0, n, [&](std::size_t i) { return data[i]; });
  const double serial = std::accumulate(data.begin(), data.end(), 0.0);
  EXPECT_DOUBLE_EQ(parallel, serial);
}

TEST(ParallelReduce, BlockedMatchesSerial) {
  ThreadPool pool(4);
  const double result = parallelReduceSumBlocked(
      pool, 0, 1000, [](std::size_t lo, std::size_t hi) {
        double sum = 0.0;
        for (std::size_t i = lo; i < hi; ++i) sum += static_cast<double>(i);
        return sum;
      });
  EXPECT_DOUBLE_EQ(result, 999.0 * 1000.0 / 2.0);
}

TEST(ParallelReduce, EmptyRangeIsZero) {
  ThreadPool pool(2);
  EXPECT_DOUBLE_EQ(
      parallelReduceSum(pool, 10, 10, [](std::size_t) { return 1.0; }), 0.0);
}

TEST(ThreadPool, GlobalSingletonStable) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace rebench
