#include "parallel/minimpi.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace rebench::minimpi {
namespace {

TEST(MiniMpi, RanksSeeCorrectRankAndSize) {
  std::atomic<int> rankSum{0};
  run(4, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), 4);
    rankSum.fetch_add(comm.rank());
  });
  EXPECT_EQ(rankSum.load(), 0 + 1 + 2 + 3);
}

TEST(MiniMpi, PointToPointRoundTrip) {
  run(2, [](Comm& comm) {
    std::vector<double> buf(16);
    if (comm.rank() == 0) {
      std::iota(buf.begin(), buf.end(), 0.0);
      comm.send<double>(1, 7, buf);
    } else {
      comm.recv<double>(0, 7, buf);
      for (int i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(buf[i], i);
    }
  });
}

TEST(MiniMpi, MessagesWithDifferentTagsDoNotMix) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> a{1.0}, b{2.0};
      comm.send<double>(1, /*tag=*/10, a);
      comm.send<double>(1, /*tag=*/20, b);
    } else {
      std::vector<double> b(1), a(1);
      // Receive in reverse tag order: tags must demultiplex.
      comm.recv<double>(0, 20, b);
      comm.recv<double>(0, 10, a);
      EXPECT_DOUBLE_EQ(a[0], 1.0);
      EXPECT_DOUBLE_EQ(b[0], 2.0);
    }
  });
}

TEST(MiniMpi, NonOvertakingSameTag) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        const std::vector<double> msg{static_cast<double>(i)};
        comm.send<double>(1, 5, msg);
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        std::vector<double> msg(1);
        comm.recv<double>(0, 5, msg);
        EXPECT_DOUBLE_EQ(msg[0], i);
      }
    }
  });
}

TEST(MiniMpi, SizeMismatchThrows) {
  EXPECT_THROW(run(2,
                   [](Comm& comm) {
                     if (comm.rank() == 0) {
                       const std::vector<double> msg{1.0, 2.0};
                       comm.send<double>(1, 1, msg);
                     } else {
                       std::vector<double> tooSmall(1);
                       comm.recv<double>(0, 1, tooSmall);
                     }
                   }),
               std::runtime_error);
}

TEST(MiniMpi, AllreduceSumMinMax) {
  run(5, [](Comm& comm) {
    const double mine = comm.rank() + 1.0;  // 1..5
    EXPECT_DOUBLE_EQ(comm.allreduce(mine, Op::kSum), 15.0);
    EXPECT_DOUBLE_EQ(comm.allreduce(mine, Op::kMin), 1.0);
    EXPECT_DOUBLE_EQ(comm.allreduce(mine, Op::kMax), 5.0);
  });
}

TEST(MiniMpi, RepeatedAllreducesDoNotInterfere) {
  run(3, [](Comm& comm) {
    for (int iter = 0; iter < 50; ++iter) {
      const double sum =
          comm.allreduce(static_cast<double>(comm.rank() + iter), Op::kSum);
      EXPECT_DOUBLE_EQ(sum, 3.0 * iter + 3.0);
    }
  });
}

TEST(MiniMpi, Allgather) {
  run(4, [](Comm& comm) {
    const auto all = comm.allgather(comm.rank() * 10.0);
    ASSERT_EQ(all.size(), 4u);
    for (int r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(all[r], r * 10.0);
  });
}

TEST(MiniMpi, Broadcast) {
  run(4, [](Comm& comm) {
    std::vector<double> data(8, 0.0);
    if (comm.rank() == 2) {
      std::iota(data.begin(), data.end(), 100.0);
    }
    comm.broadcast(data, /*root=*/2);
    for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(data[i], 100.0 + i);
  });
}

TEST(MiniMpi, BarrierSynchronises) {
  std::atomic<int> phase1{0};
  std::atomic<bool> violation{false};
  run(4, [&](Comm& comm) {
    phase1.fetch_add(1);
    comm.barrier();
    if (phase1.load() != 4) violation.store(true);
  });
  EXPECT_FALSE(violation.load());
}

TEST(MiniMpi, RankExceptionPropagates) {
  EXPECT_THROW(run(3,
                   [](Comm& comm) {
                     if (comm.rank() == 1) {
                       throw std::runtime_error("rank 1 died");
                     }
                   }),
               std::runtime_error);
}

TEST(MiniMpi, ReduceDeliversToRootOnly) {
  run(4, [](Comm& comm) {
    const double result =
        comm.reduce(static_cast<double>(comm.rank() + 1), Op::kSum, 2);
    if (comm.rank() == 2) {
      EXPECT_DOUBLE_EQ(result, 10.0);
    } else {
      EXPECT_DOUBLE_EQ(result, 0.0);
    }
  });
}

TEST(MiniMpi, GatherDeliversToRootOnly) {
  run(3, [](Comm& comm) {
    const auto gathered = comm.gather(comm.rank() * 2.0, /*root=*/1);
    if (comm.rank() == 1) {
      ASSERT_EQ(gathered.size(), 3u);
      EXPECT_DOUBLE_EQ(gathered[0], 0.0);
      EXPECT_DOUBLE_EQ(gathered[2], 4.0);
    } else {
      EXPECT_TRUE(gathered.empty());
    }
  });
}

TEST(MiniMpi, ExscanIsExclusivePrefixSum) {
  run(5, [](Comm& comm) {
    // values 1,2,3,4,5 -> exscan 0,1,3,6,10
    const double prefix = comm.exscan(comm.rank() + 1.0);
    const double expected[] = {0.0, 1.0, 3.0, 6.0, 10.0};
    EXPECT_DOUBLE_EQ(prefix, expected[comm.rank()]);
  });
}

TEST(MiniMpi, IrecvWaitCompletesTransfer) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> buf(4, 0.0);
      Comm::Request request = comm.irecv<double>(1, 9, buf);
      EXPECT_TRUE(request.valid());
      comm.wait(request);
      EXPECT_FALSE(request.valid());
      for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(buf[i], i + 1.0);
    } else {
      const std::vector<double> msg{1.0, 2.0, 3.0, 4.0};
      comm.send<double>(0, 9, msg);
    }
  });
}

TEST(MiniMpi, WaitallCompletesMultipleRequests) {
  // Rank 0 posts receives from every other rank before any arrive.
  run(4, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::vector<double>> bufs(3, std::vector<double>(1));
      std::vector<Comm::Request> requests;
      for (int src = 1; src < 4; ++src) {
        requests.push_back(
            comm.irecv<double>(src, 11, std::span<double>(bufs[src - 1])));
      }
      comm.waitall(requests);
      for (int src = 1; src < 4; ++src) {
        EXPECT_DOUBLE_EQ(bufs[src - 1][0], src * 10.0);
      }
    } else {
      const std::vector<double> msg{comm.rank() * 10.0};
      comm.send<double>(0, 11, msg);
    }
  });
}

TEST(DimsCreate, FactorisationsAreBalanced) {
  EXPECT_EQ(dimsCreate3D(8), (std::array<int, 3>{2, 2, 2}));
  EXPECT_EQ(dimsCreate3D(64), (std::array<int, 3>{4, 4, 4}));
  EXPECT_EQ(dimsCreate3D(1), (std::array<int, 3>{1, 1, 1}));
  const auto d12 = dimsCreate3D(12);
  EXPECT_EQ(d12[0] * d12[1] * d12[2], 12);
  EXPECT_EQ(d12, (std::array<int, 3>{3, 2, 2}));
  const auto d40 = dimsCreate3D(40);  // HPCG CLX geometry
  EXPECT_EQ(d40[0] * d40[1] * d40[2], 40);
  const auto d128 = dimsCreate3D(128);  // HPCG Rome geometry
  EXPECT_EQ(d128[0] * d128[1] * d128[2], 128);
}

TEST(Cart3D, CoordsRoundTrip) {
  const std::array<int, 3> dims{2, 3, 4};
  for (int r = 0; r < 24; ++r) {
    const auto coords = Cart3D::rankToCoords(r, dims);
    EXPECT_EQ(Cart3D::coordsToRank(coords, dims), r);
    for (int a = 0; a < 3; ++a) {
      EXPECT_GE(coords[a], 0);
      EXPECT_LT(coords[a], dims[a]);
    }
  }
}

TEST(Cart3D, NeighborsInsideAndOutside) {
  run(8, [](Comm& comm) {
    Cart3D cart(comm, {2, 2, 2});
    const auto coords = cart.coords();
    for (int axis = 0; axis < 3; ++axis) {
      const int plus = cart.neighbor(axis, +1);
      const int minus = cart.neighbor(axis, -1);
      if (coords[axis] == 0) {
        EXPECT_EQ(minus, -1);
        EXPECT_GE(plus, 0);
      } else {
        EXPECT_EQ(plus, -1);
        EXPECT_GE(minus, 0);
      }
    }
  });
}

TEST(Cart3D, HaloExchangePattern) {
  // Every rank exchanges its rank id with each face neighbour; the value
  // received must equal that neighbour's id.
  run(8, [](Comm& comm) {
    Cart3D cart(comm, {2, 2, 2});
    for (int axis = 0; axis < 3; ++axis) {
      for (int dir : {-1, +1}) {
        const int nbr = cart.neighbor(axis, dir);
        if (nbr < 0) continue;
        const std::vector<double> mine{static_cast<double>(comm.rank())};
        std::vector<double> theirs(1);
        const int tag = 100 + axis;
        comm.send<double>(nbr, tag, mine);
        comm.recv<double>(nbr, tag, theirs);
        EXPECT_DOUBLE_EQ(theirs[0], nbr);
      }
    }
  });
}

}  // namespace
}  // namespace rebench::minimpi
