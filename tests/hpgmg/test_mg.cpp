#include "hpgmg/mg.hpp"

#include <gtest/gtest.h>

#include "hpgmg/driver.hpp"

namespace rebench::hpgmg {
namespace {

TEST(MgSolver, HierarchyDepth) {
  MgSolver solver(32);
  // 32 -> 16 -> 8 -> 4 with the default bottom of 4.
  EXPECT_EQ(solver.numLevels(), 4);
  EXPECT_EQ(solver.fineLevel().n, 32);
}

TEST(MgSolver, VCyclesConvergeAtMultigridRate) {
  MgSolver solver(32);
  fillManufacturedRhs(solver.fineLevel());
  const auto residuals = solver.iterate(6);
  ASSERT_EQ(residuals.size(), 6u);
  // Every cycle should knock the residual down by at least ~5x (textbook
  // multigrid gives ~10x for this problem).
  for (std::size_t i = 1; i < residuals.size(); ++i) {
    if (residuals[i] < 1e-11) break;  // hit floating-point floor
    EXPECT_LT(residuals[i], residuals[i - 1] / 5.0) << "cycle " << i;
  }
}

TEST(MgSolver, FmgReachesDiscretisationAccuracy) {
  // One FMG pass must produce error at the truncation level O(h^2).
  for (int n : {16, 32}) {
    MgSolver solver(n);
    fillManufacturedRhs(solver.fineLevel());
    solver.fmgSolve();
    const double err = manufacturedError(solver.fineLevel());
    EXPECT_LT(err, 10.0 / (n * n)) << "n=" << n;
  }
}

TEST(MgSolver, FmgErrorShrinksSecondOrder) {
  double prev = 0.0;
  for (int n : {8, 16, 32}) {
    MgSolver solver(n);
    fillManufacturedRhs(solver.fineLevel());
    solver.fmgSolve();
    const double err = manufacturedError(solver.fineLevel());
    if (prev > 0.0) EXPECT_GT(prev / err, 2.5) << "n=" << n;
    prev = err;
  }
}

TEST(MgSolver, CountersTrackCycles) {
  MgSolver solver(16);
  fillManufacturedRhs(solver.fineLevel());
  solver.iterate(3);
  EXPECT_EQ(solver.counters().vCycles, 3);
  EXPECT_GT(solver.counters().smootherSweeps, 3 * 2);
  solver.resetCounters();
  EXPECT_EQ(solver.counters().vCycles, 0);
}

TEST(HpgmgDriver, NativeRunProducesThreeFoms) {
  const HpgmgResult result = runNative(32);
  ASSERT_EQ(result.foms.size(), 3u);
  EXPECT_EQ(result.foms[0].name, "l0");
  EXPECT_EQ(result.foms[0].dof, 32u * 32 * 32);
  EXPECT_EQ(result.foms[1].dof, 16u * 16 * 16);
  EXPECT_EQ(result.foms[2].dof, 8u * 8 * 8);
  EXPECT_TRUE(result.validated);
  for (const LevelFom& fom : result.foms) {
    EXPECT_GT(fom.mdofPerSec, 0.0);
    EXPECT_GT(fom.seconds, 0.0);
  }
}

TEST(HpgmgDriver, GlobalDofMatchesPaperArgs) {
  // "7 8" with 8 ranks: 128^3 cells/box x 8 boxes x 8 ranks = 2^27 x 2^3.
  HpgmgConfig config;
  config.log2BoxDim = 7;
  config.targetBoxesPerRank = 8;
  config.numRanks = 8;
  EXPECT_EQ(globalDof(config), (std::size_t{1} << 21) * 64);
}

TEST(HpgmgDriver, ModeledFomsFollowPlatformEfficiency) {
  const MachineModel& rome = builtinMachines().get("rome-7742");
  HpgmgConfig config;
  const HpgmgResult fast = runModeled(config, rome, 0.4, 30e-6, 16);
  const HpgmgResult slow = runModeled(config, rome, 0.1, 30e-6, 16);
  EXPECT_GT(fast.foms[0].mdofPerSec, 2.0 * slow.foms[0].mdofPerSec);
}

TEST(HpgmgDriver, SmallerScalesLoseToOverheads) {
  // Table 4's l0 > l2 pattern: fixed per-launch overheads dominate the
  // smaller problems.
  const MachineModel& clxModel = builtinMachines().get("clx-8276");
  HpgmgConfig config;
  const HpgmgResult result =
      runModeled(config, clxModel, 0.2, 200e-6, 16);
  EXPECT_GT(result.foms[0].mdofPerSec, result.foms[2].mdofPerSec);
}

TEST(HpgmgDriver, OutputParsesWithFrameworkRegexes) {
  const HpgmgResult result = runNative(16);
  const std::string out = formatOutput(result);
  EXPECT_NE(out.find("l0: "), std::string::npos);
  EXPECT_NE(out.find("l1: "), std::string::npos);
  EXPECT_NE(out.find("l2: "), std::string::npos);
  EXPECT_NE(out.find("MDOF/s"), std::string::npos);
  EXPECT_NE(out.find("Validation: PASSED"), std::string::npos);
}

TEST(HpgmgDriver, ModeledDeterministic) {
  const MachineModel& rome = builtinMachines().get("rome-7742");
  HpgmgConfig config;
  const double a = runModeled(config, rome, 0.12, 60e-6, 16).foms[0].mdofPerSec;
  const double b = runModeled(config, rome, 0.12, 60e-6, 16).foms[0].mdofPerSec;
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace rebench::hpgmg
