// Threaded multigrid kernels: a multi-worker pool must produce exactly
// the results of the serial path (GSRB colours are independent; residual
// reduction differs only by summation order).
#include <gtest/gtest.h>

#include "core/pkg/recipe.hpp"
#include "hpgmg/mg.hpp"

namespace rebench::hpgmg {
namespace {

TEST(ThreadedKernels, ApplyOperatorMatchesSerial) {
  ThreadPool pool(4);
  Level serial(16), threaded(16);
  fillManufacturedRhs(serial);
  fillManufacturedRhs(threaded);
  serial.u = serial.f;  // any non-trivial field
  threaded.u = threaded.f;
  WorkCounters c1, c2;
  std::vector<double> outSerial(serial.cells()), outThreaded(serial.cells());
  applyOperator(serial, serial.u, outSerial, c1);
  applyOperator(threaded, threaded.u, outThreaded, c2, &pool);
  for (std::size_t i = 0; i < outSerial.size(); ++i) {
    EXPECT_DOUBLE_EQ(outSerial[i], outThreaded[i]);
  }
  EXPECT_DOUBLE_EQ(c1.bytes, c2.bytes);  // counters thread-invariant
}

TEST(ThreadedKernels, GsrbSweepMatchesSerialExactly) {
  // Red-black updates within one colour never read each other, so the
  // threaded sweep is bit-identical to the serial one.
  ThreadPool pool(4);
  Level serial(16), threaded(16);
  fillManufacturedRhs(serial);
  fillManufacturedRhs(threaded);
  WorkCounters c1, c2;
  for (int s = 0; s < 4; ++s) {
    smoothGSRB(serial, c1);
    smoothGSRB(threaded, c2, &pool);
  }
  for (std::size_t i = 0; i < serial.cells(); ++i) {
    EXPECT_DOUBLE_EQ(serial.u[i], threaded.u[i]) << i;
  }
}

TEST(ThreadedKernels, ResidualMatchesSerialWithinRounding) {
  ThreadPool pool(4);
  Level serial(16), threaded(16);
  fillManufacturedRhs(serial);
  fillManufacturedRhs(threaded);
  WorkCounters c1, c2;
  smoothGSRB(serial, c1);
  smoothGSRB(threaded, c2, &pool);
  const double normSerial = computeResidual(serial, c1);
  const double normThreaded = computeResidual(threaded, c2, &pool);
  // The residual field is identical; only the norm's summation order
  // differs across blocks.
  for (std::size_t i = 0; i < serial.cells(); ++i) {
    EXPECT_DOUBLE_EQ(serial.r[i], threaded.r[i]);
  }
  EXPECT_NEAR(normThreaded, normSerial, 1e-10 * normSerial);
}

TEST(ThreadedKernels, FullFmgSolveMatchesSerialAccuracy) {
  ThreadPool pool(3);
  MgOptions threadedOptions;
  threadedOptions.pool = &pool;
  MgSolver serial(32);
  MgSolver threaded(32, threadedOptions);
  fillManufacturedRhs(serial.fineLevel());
  fillManufacturedRhs(threaded.fineLevel());
  serial.fmgSolve();
  threaded.fmgSolve();
  const double errSerial = manufacturedError(serial.fineLevel());
  const double errThreaded = manufacturedError(threaded.fineLevel());
  EXPECT_LT(errThreaded, 10.0 / (32 * 32));
  EXPECT_NEAR(errThreaded, errSerial, 1e-9);
}

TEST(RepositoryMerge, LocalShadowsUpstream) {
  const PackageRepository upstream = builtinRepository();
  PackageRepository local;
  // A site-local recipe for an app not in upstream...
  PackageRecipe site("my-weather-model");
  site.version("1.0");
  site.dependsOn("mpi");
  local.add(std::move(site));
  // ...and a local override of an upstream recipe.
  PackageRecipe pinnedPython("python");
  pinnedPython.version("3.9.7");
  local.add(std::move(pinnedPython));

  const PackageRepository merged = mergeRepositories(upstream, local);
  EXPECT_TRUE(merged.has("my-weather-model"));
  EXPECT_TRUE(merged.has("hpgmg"));  // upstream preserved
  // The local python (single version 3.9.7) shadows upstream's set.
  EXPECT_EQ(merged.get("python").versions().size(), 1u);
  EXPECT_EQ(merged.get("python").versions()[0].toString(), "3.9.7");
  // Virtual index survives the merge.
  EXPECT_TRUE(merged.isVirtual("mpi"));
  EXPECT_EQ(merged.size(), upstream.size() + 1);
}

}  // namespace
}  // namespace rebench::hpgmg
