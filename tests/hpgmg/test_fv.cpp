#include "hpgmg/fv.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/util/rng.hpp"
#include "hpgmg/mg.hpp"

namespace rebench::hpgmg {
namespace {

std::vector<double> randomField(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

TEST(LevelStruct, AllocationAndIndexing) {
  Level level(8);
  EXPECT_EQ(level.cells(), 512u);
  EXPECT_DOUBLE_EQ(level.h, 0.125);
  EXPECT_EQ(level.index(0, 0, 0), 0u);
  EXPECT_EQ(level.index(7, 7, 7), 511u);
  EXPECT_EQ(level.index(1, 2, 3), 1u + 8u * (2u + 8u * 3u));
  EXPECT_EQ(level.bx.size(), level.cells());
}

TEST(FvOperator, SymmetricPositiveDefinite) {
  Level level(8);
  WorkCounters counters;
  const auto u = randomField(level.cells(), 1);
  const auto v = randomField(level.cells(), 2);
  std::vector<double> Au(level.cells()), Av(level.cells());
  applyOperator(level, u, Au, counters);
  applyOperator(level, v, Av, counters);
  double uAv = 0.0, vAu = 0.0, uAu = 0.0;
  for (std::size_t i = 0; i < level.cells(); ++i) {
    uAv += u[i] * Av[i];
    vAu += v[i] * Au[i];
    uAu += u[i] * Au[i];
  }
  EXPECT_NEAR(uAv, vAu, 1e-8 * std::abs(uAv));
  EXPECT_GT(uAu, 0.0);
}

TEST(FvOperator, SecondOrderTruncationOnManufacturedSolution) {
  // || A u* - f || should shrink ~4x per refinement.
  using std::numbers::pi;
  double previous = 0.0;
  for (int n : {8, 16, 32}) {
    Level level(n);
    fillManufacturedRhs(level);
    std::vector<double> uExact(level.cells());
    for (int k = 0; k < n; ++k) {
      for (int j = 0; j < n; ++j) {
        for (int i = 0; i < n; ++i) {
          const double x = (i + 0.5) * level.h;
          const double y = (j + 0.5) * level.h;
          const double z = (k + 0.5) * level.h;
          uExact[level.index(i, j, k)] =
              std::sin(pi * x) * std::sin(pi * y) * std::sin(pi * z);
        }
      }
    }
    WorkCounters counters;
    std::vector<double> Au(level.cells());
    applyOperator(level, uExact, Au, counters);
    double errInf = 0.0;
    for (std::size_t i = 0; i < level.cells(); ++i) {
      errInf = std::max(errInf, std::abs(Au[i] - level.f[i]));
    }
    if (previous > 0.0) {
      EXPECT_GT(previous / errInf, 3.0) << "n=" << n;  // ~4 expected
    }
    previous = errInf;
  }
}

TEST(FvSmoother, GsrbReducesResidual) {
  // Gauss-Seidel damps smooth error slowly (that is why multigrid
  // exists), so use a coarse level where even the smooth modes decay.
  Level level(8);
  WorkCounters counters;
  fillManufacturedRhs(level);
  const double r0 = computeResidual(level, counters);
  for (int s = 0; s < 5; ++s) smoothGSRB(level, counters);
  const double r5 = computeResidual(level, counters);
  EXPECT_LT(r5, 0.75 * r0);
  for (int s = 0; s < 45; ++s) smoothGSRB(level, counters);
  const double r50 = computeResidual(level, counters);
  EXPECT_LT(r50, 0.05 * r0);
  EXPECT_EQ(counters.smootherSweeps, 50);
}

TEST(FvSmoother, FixedPointIsTheSolution) {
  // If u solves A u = f exactly, a sweep must not change it (GS property).
  Level level(8);
  WorkCounters counters;
  // Build an f consistent with a random u: f = A u.
  const auto u = randomField(level.cells(), 3);
  std::vector<double> f(level.cells());
  applyOperator(level, u, f, counters);
  level.u.assign(u.begin(), u.end());
  level.f = f;
  smoothGSRB(level, counters);
  for (std::size_t i = 0; i < level.cells(); ++i) {
    EXPECT_NEAR(level.u[i], u[i], 1e-10);
  }
}

TEST(FvRestriction, PreservesConstants) {
  Level fine(8), coarse(4);
  WorkCounters counters;
  std::fill(fine.r.begin(), fine.r.end(), 3.5);
  restrictResidual(fine, coarse, counters);
  for (double v : coarse.f) EXPECT_DOUBLE_EQ(v, 3.5);
}

TEST(FvRestriction, AveragesChildren) {
  Level fine(4), coarse(2);
  WorkCounters counters;
  // Children of coarse cell (0,0,0) are the 8 fine cells in [0,1]^3.
  for (int dk = 0; dk < 2; ++dk) {
    for (int dj = 0; dj < 2; ++dj) {
      for (int di = 0; di < 2; ++di) {
        fine.r[fine.index(di, dj, dk)] =
            static_cast<double>(di + 2 * dj + 4 * dk);
      }
    }
  }
  restrictResidual(fine, coarse, counters);
  EXPECT_DOUBLE_EQ(coarse.f[0], (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7) / 8.0);
}

TEST(FvProlongation, ConstantInjection) {
  Level fine(8), coarse(4);
  WorkCounters counters;
  std::fill(coarse.u.begin(), coarse.u.end(), 2.0);
  std::fill(fine.u.begin(), fine.u.end(), 1.0);
  prolongCorrection(coarse, fine, counters);
  for (double v : fine.u) EXPECT_DOUBLE_EQ(v, 3.0);
}

TEST(FvInterpolation, ReproducesLinearInteriorFields) {
  // Trilinear interpolation is exact for linear functions away from the
  // Dirichlet-ghost boundary treatment.
  Level fine(16), coarse(8);
  WorkCounters counters;
  for (int K = 0; K < coarse.n; ++K) {
    for (int J = 0; J < coarse.n; ++J) {
      for (int I = 0; I < coarse.n; ++I) {
        const double x = (I + 0.5) * coarse.h;
        coarse.u[coarse.index(I, J, K)] = 2.0 * x;  // linear in x
      }
    }
  }
  interpolateSolution(coarse, fine, counters);
  for (int k = 4; k < 12; ++k) {
    for (int j = 4; j < 12; ++j) {
      for (int i = 4; i < 12; ++i) {  // interior only
        const double x = (i + 0.5) * fine.h;
        EXPECT_NEAR(fine.u[fine.index(i, j, k)], 2.0 * x, 1e-12);
      }
    }
  }
}

TEST(FvCounters, AccumulateAcrossKernels) {
  Level level(8);
  WorkCounters counters;
  fillManufacturedRhs(level);
  smoothGSRB(level, counters);
  computeResidual(level, counters);
  EXPECT_GT(counters.flops, 0.0);
  EXPECT_GT(counters.bytes, counters.flops);
  EXPECT_EQ(counters.kernelLaunches, 3);  // 2 GSRB colours + residual
}

}  // namespace
}  // namespace rebench::hpgmg
