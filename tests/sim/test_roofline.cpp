#include "sim/roofline.hpp"

#include <gtest/gtest.h>

namespace rebench {
namespace {

const MachineModel& clx() { return builtinMachines().get("clx-6230"); }
const MachineModel& v100() { return builtinMachines().get("v100"); }

KernelProfile triadProfile(std::size_t n) {
  // Triad: a[i] = b[i] + s*c[i] — 2 reads + 1 write, 2 flops per element.
  KernelProfile p;
  p.bytesRead = 2.0 * 8.0 * n;
  p.bytesWritten = 8.0 * n;
  p.flops = 2.0 * n;
  return p;
}

TEST(KernelProfile, IntensityComputed) {
  const KernelProfile p = triadProfile(1000);
  EXPECT_NEAR(p.intensity(), 2.0 / 24.0, 1e-12);
  EXPECT_NEAR(p.totalBytes(), 24000.0, 1e-9);
  EXPECT_NEAR(KernelProfile{}.intensity(), 0.0, 1e-12);
}

TEST(Roofline, StreamingKernelIsMemoryBound) {
  const auto t = simulateKernel(clx(), triadProfile(1 << 25));
  EXPECT_TRUE(t.memoryBound);
  EXPECT_GT(t.seconds, 0.0);
  // Achieved bandwidth can't exceed peak.
  EXPECT_LE(t.achievedBandwidthGBs, clx().peakBandwidthGBs);
  // ... and a full-machine run should land near stream efficiency.
  EXPECT_GT(t.achievedBandwidthGBs,
            clx().peakBandwidthGBs * clx().streamEfficiency * 0.9);
}

TEST(Roofline, ComputeHeavyKernelIsComputeBound) {
  KernelProfile p;
  p.bytesRead = 1024;
  p.flops = 1e12;
  const auto t = simulateKernel(clx(), p);
  EXPECT_FALSE(t.memoryBound);
  EXPECT_LE(t.achievedGFlops, clx().peakGFlops());
}

TEST(Roofline, DeterministicWithoutNoise) {
  const auto a = simulateKernel(clx(), triadProfile(1 << 20));
  const auto b = simulateKernel(clx(), triadProfile(1 << 20));
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
}

TEST(Roofline, NoiseIsDeterministicPerKey) {
  const auto a = simulateKernel(clx(), triadProfile(1 << 20), {}, "key-1");
  const auto b = simulateKernel(clx(), triadProfile(1 << 20), {}, "key-1");
  const auto c = simulateKernel(clx(), triadProfile(1 << 20), {}, "key-2");
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
  EXPECT_NE(a.seconds, c.seconds);
  // Noise is small.
  EXPECT_NEAR(a.seconds / c.seconds, 1.0, 0.15);
}

TEST(Roofline, SingleCoreBackendBoundBySingleCoreBandwidth) {
  // std-ranges in Figure 2: one core cannot saturate the socket.
  ExecutionEfficiency eff;
  eff.coresUsed = 1;
  const auto t = simulateKernel(clx(), triadProfile(1 << 25), eff);
  EXPECT_LE(t.achievedBandwidthGBs, clx().singleCoreBandwidthGBs * 1.01);
  const auto full = simulateKernel(clx(), triadProfile(1 << 25));
  EXPECT_GT(full.achievedBandwidthGBs, 5.0 * t.achievedBandwidthGBs);
}

TEST(Roofline, BandwidthFractionScalesTime) {
  ExecutionEfficiency half;
  half.bandwidthFraction = 0.5;
  const auto base = simulateKernel(clx(), triadProfile(1 << 25));
  const auto derated = simulateKernel(clx(), triadProfile(1 << 25), half);
  EXPECT_NEAR(derated.seconds / base.seconds, 2.0, 0.05);
}

TEST(Roofline, GpuFasterThanCpuOnStreaming) {
  const auto cpu = simulateKernel(clx(), triadProfile(1 << 25));
  const auto gpu = simulateKernel(v100(), triadProfile(1 << 25));
  // V100 at 900 GB/s vs CLX at 282: roughly 3-4x faster.
  EXPECT_GT(cpu.seconds / gpu.seconds, 2.5);
  EXPECT_LT(cpu.seconds / gpu.seconds, 5.0);
}

TEST(Roofline, LaunchLatencyDominatesTinyKernels) {
  const auto tiny = simulateKernel(v100(), triadProfile(16));
  EXPECT_GE(tiny.seconds, v100().launchLatency);
}

TEST(Roofline, ExtraLatencyAdds) {
  ExecutionEfficiency eff;
  eff.extraLatency = 1.0e-3;
  const auto base = simulateKernel(clx(), triadProfile(1 << 20));
  const auto delayed = simulateKernel(clx(), triadProfile(1 << 20), eff);
  EXPECT_NEAR(delayed.seconds - base.seconds, 1.0e-3, 1e-6);
}

}  // namespace
}  // namespace rebench
