#include "sim/machine.hpp"

#include <gtest/gtest.h>

#include "core/util/error.hpp"

namespace rebench {
namespace {

TEST(MachineRegistry, ContainsAllPaperPlatforms) {
  const MachineRegistry& reg = builtinMachines();
  for (const char* id : {"clx-6230", "clx-8276", "rome-7742", "rome-7h12",
                         "milan-7763", "thunderx2", "v100"}) {
    EXPECT_TRUE(reg.has(id)) << id;
  }
  EXPECT_FALSE(reg.has("a64fx"));
  EXPECT_THROW(reg.get("a64fx"), NotFoundError);
}

TEST(MachineRegistry, PeakBandwidthsMatchTable1) {
  const MachineRegistry& reg = builtinMachines();
  // Table 1: Cascade Lake 2 x 140.784 = 282 GB/s (truncated in print).
  EXPECT_NEAR(reg.get("clx-6230").peakBandwidthGBs, 281.568, 1e-3);
  // ThunderX2: 288 GB/s.
  EXPECT_NEAR(reg.get("thunderx2").peakBandwidthGBs, 288.0, 1e-9);
  // Milan: 2 x 204.8 GB/s.
  EXPECT_NEAR(reg.get("milan-7763").peakBandwidthGBs, 409.6, 1e-9);
  // V100: 900 GB/s.
  EXPECT_NEAR(reg.get("v100").peakBandwidthGBs, 900.0, 1e-9);
}

TEST(MachineRegistry, CoreCountsMatchTable1) {
  const MachineRegistry& reg = builtinMachines();
  EXPECT_EQ(reg.get("clx-6230").totalCores(), 40);   // 2x20
  EXPECT_EQ(reg.get("thunderx2").totalCores(), 64);  // 2x32
  EXPECT_EQ(reg.get("milan-7763").totalCores(), 128);  // 2x64
  EXPECT_EQ(reg.get("v100").totalCores(), 80);       // 80 SMs
}

TEST(MachineModel, PeakFlopsPlausible) {
  const MachineRegistry& reg = builtinMachines();
  // CLX 6230: 40 cores x 2.1 GHz x 32 flops = 2688 GF.
  EXPECT_NEAR(reg.get("clx-6230").peakGFlops(), 2688.0, 1.0);
  // V100 ~ 7 TF DP (80 x 1.245 x 64 = 6374 GF, PCIe clocks).
  EXPECT_GT(reg.get("v100").peakGFlops(), 6000.0);
  EXPECT_LT(reg.get("v100").peakGFlops(), 8000.0);
}

TEST(MachineModel, LlcDecidesPaperArraySizeRule) {
  // §3.1: 2^29 doubles (4.3 GB) needed on Milan (512 MB L3); 2^25 (268 MB)
  // suffices elsewhere, e.g. CLX with 55 MB L3.  Check the inputs to that
  // reasoning are encoded: array of 2^25 doubles > CLX LLC but NOT > 4x
  // Milan LLC (the paper's margin rule), while 2^29 clears Milan too.
  const MachineRegistry& reg = builtinMachines();
  const double small = 8.0 * (1 << 25) / 1e6;  // MB
  const double large = 8.0 * (1ull << 29) / 1e6;
  EXPECT_GT(small, reg.get("clx-6230").llcMegabytes);
  EXPECT_LT(small, 4.0 * reg.get("milan-7763").llcMegabytes);
  EXPECT_GT(large, 4.0 * reg.get("milan-7763").llcMegabytes);
}

TEST(MachineModel, GpuFlagged) {
  const MachineRegistry& reg = builtinMachines();
  EXPECT_EQ(reg.get("v100").device, DeviceType::kGpu);
  EXPECT_EQ(reg.get("clx-6230").device, DeviceType::kCpu);
}

TEST(MachineRegistry, IdsEnumerates) {
  const auto ids = builtinMachines().ids();
  EXPECT_GE(ids.size(), 7u);
}

TEST(MachineRegistry, AddOverridesById) {
  MachineRegistry reg;
  MachineModel m;
  m.id = "test";
  m.peakBandwidthGBs = 100.0;
  reg.add(m);
  m.peakBandwidthGBs = 200.0;
  reg.add(m);
  EXPECT_NEAR(reg.get("test").peakBandwidthGBs, 200.0, 1e-9);
}

}  // namespace
}  // namespace rebench
