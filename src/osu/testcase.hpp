// Framework test description for the OSU micro-benchmarks.
#pragma once

#include "core/framework/regression_test.hpp"
#include "osu/osu.hpp"

namespace rebench::osu {

struct OsuTestOptions {
  OsuBenchmark benchmark = OsuBenchmark::kLatency;
  int numRanks = 8;  // allreduce only; pt2pt uses 2
  /// Lighter iteration counts for native runs on a laptop-class host.
  int nativeIterations = 50;
};

/// Spec "osu-micro-benchmarks"; sanity "# complete"; FOMs are the 8 B and
/// 1 MiB points ("small" in us or MB/s, "large" likewise).
RegressionTest makeOsuTest(const OsuTestOptions& options);

}  // namespace rebench::osu
