// OSU-style MPI micro-benchmarks over minimpi: point-to-point latency,
// point-to-point bandwidth and allreduce latency.
//
// These are the fourth benchmark family of the suite (the builtin
// package repository already carries the osu-micro-benchmarks recipe);
// they exercise the message-passing substrate directly, and their
// modelled path uses each system's interconnect character
// (netLatencySeconds / netBandwidthGBs) instead of the memory roofline.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rebench::osu {

enum class OsuBenchmark { kLatency, kBandwidth, kAllreduce };

std::string_view osuBenchmarkName(OsuBenchmark b);

struct SizePoint {
  std::size_t messageBytes = 0;
  /// Latency tests report microseconds; bandwidth tests report MB/s.
  double value = 0.0;
};

struct OsuResult {
  OsuBenchmark benchmark = OsuBenchmark::kLatency;
  int numRanks = 2;
  std::vector<SizePoint> points;
  double totalSeconds = 0.0;

  /// Value at the given message size; throws NotFoundError when absent.
  double at(std::size_t messageBytes) const;
};

struct OsuConfig {
  OsuBenchmark benchmark = OsuBenchmark::kLatency;
  std::size_t minBytes = 8;
  std::size_t maxBytes = 1 << 20;
  /// Iterations per message size (halved for large messages, like OSU).
  int iterations = 200;
  /// Ranks for the allreduce test (pt2pt tests always use 2).
  int numRanks = 8;
};

/// Runs natively on minimpi threads (measures this host's in-process
/// message passing — a real measurement of the substrate).
OsuResult runNative(const OsuConfig& config);

/// Interconnect character for modelled runs.
struct NetworkModel {
  double latencySeconds = 1.5e-6;
  double bandwidthGBs = 12.5;
};

/// Models the benchmark on a network: pt2pt time(s) = latency + s/bw;
/// allreduce(s) = 2*ceil(log2(ranks)) * (latency + s/bw) (tree).
/// Deterministic noise keyed on `noiseKey`.
OsuResult runModeled(const OsuConfig& config, const NetworkModel& network,
                     const std::string& noiseKey);

/// OSU-style stdout rendering ("# OSU MPI Latency Test" + size/value
/// table), parseable by the framework regexes.
std::string formatOutput(const OsuResult& result);

}  // namespace rebench::osu
