#include "osu/testcase.hpp"

namespace rebench::osu {

RegressionTest makeOsuTest(const OsuTestOptions& options) {
  RegressionTest test;
  test.name = "Osu_" + std::string(osuBenchmarkName(options.benchmark));
  test.spackSpec = "osu-micro-benchmarks";
  test.numTasks =
      options.benchmark == OsuBenchmark::kAllreduce ? options.numRanks : 2;
  // Pack by default so single-node systems (incl. "local") can host the
  // job; the modelled path prices the partition's interconnect regardless
  // of placement, mirroring OSU runs pinned across nodes.
  test.numTasksPerNode = 0;
  test.sanityPattern = R"(# complete)";
  test.perfPatterns = {
      {"small", R"(\n8\s+([0-9]+\.[0-9]+))", Unit::kNone},
      {"large", R"(\n1048576\s+([0-9]+\.[0-9]+))", Unit::kNone},
  };

  test.run = [options](const RunContext& ctx) -> RunOutput {
    OsuConfig config;
    config.benchmark = options.benchmark;
    config.numRanks = options.numRanks;

    RunOutput out;
    if (ctx.partition->machineModel.empty()) {
      config.iterations = options.nativeIterations;
      const OsuResult result = runNative(config);
      out.stdoutText = formatOutput(result);
      out.elapsedSeconds = result.totalSeconds;
      return out;
    }
    NetworkModel network;
    network.latencySeconds = ctx.partition->netLatencySeconds;
    network.bandwidthGBs = ctx.partition->netBandwidthGBs;
    const std::string salt =
        ctx.repeatIndex > 0 ? ":rep" + std::to_string(ctx.repeatIndex) : "";
    const OsuResult result =
        runModeled(config, network, ctx.system->name + salt);
    out.stdoutText = formatOutput(result);
    out.elapsedSeconds = std::max(result.totalSeconds, 1.0);
    return out;
  };
  return test;
}

}  // namespace rebench::osu
