#include "osu/osu.hpp"

#include <cmath>
#include <mutex>

#include "core/util/error.hpp"
#include "core/util/rng.hpp"
#include "core/util/strings.hpp"
#include "core/util/timer.hpp"
#include "parallel/minimpi.hpp"

namespace rebench::osu {

std::string_view osuBenchmarkName(OsuBenchmark b) {
  switch (b) {
    case OsuBenchmark::kLatency: return "osu_latency";
    case OsuBenchmark::kBandwidth: return "osu_bw";
    case OsuBenchmark::kAllreduce: return "osu_allreduce";
  }
  return "?";
}

double OsuResult::at(std::size_t messageBytes) const {
  for (const SizePoint& point : points) {
    if (point.messageBytes == messageBytes) return point.value;
  }
  throw NotFoundError("no data point for message size " +
                      std::to_string(messageBytes));
}

namespace {

std::vector<std::size_t> messageSizes(const OsuConfig& config) {
  std::vector<std::size_t> sizes;
  for (std::size_t s = config.minBytes; s <= config.maxBytes; s *= 4) {
    sizes.push_back(s);
  }
  // The sweep always reports the requested maximum, even when the 4x
  // progression steps over it (the FOM regexes anchor on it).
  if (sizes.empty() || sizes.back() != config.maxBytes) {
    sizes.push_back(config.maxBytes);
  }
  return sizes;
}

int iterationsFor(const OsuConfig& config, std::size_t bytes) {
  // OSU halves iteration counts for large messages.
  return bytes > 65536 ? std::max(10, config.iterations / 10)
                       : config.iterations;
}

}  // namespace

OsuResult runNative(const OsuConfig& config) {
  OsuResult result;
  result.benchmark = config.benchmark;
  result.numRanks =
      config.benchmark == OsuBenchmark::kAllreduce ? config.numRanks : 2;
  REBENCH_REQUIRE(result.numRanks >= 2);

  std::mutex resultMutex;
  WallTimer total;
  minimpi::run(result.numRanks, [&](minimpi::Comm& comm) {
    for (const std::size_t bytes : messageSizes(config)) {
      const int iters = iterationsFor(config, bytes);
      const std::size_t doubles = std::max<std::size_t>(1, bytes / 8);
      std::vector<double> sendBuf(doubles, 1.0), recvBuf(doubles, 0.0);
      comm.barrier();
      WallTimer timer;

      if (config.benchmark == OsuBenchmark::kLatency) {
        // Classic ping-pong between ranks 0 and 1.
        for (int i = 0; i < iters; ++i) {
          if (comm.rank() == 0) {
            comm.send<double>(1, 1, sendBuf);
            comm.recv<double>(1, 2, std::span<double>(recvBuf));
          } else if (comm.rank() == 1) {
            comm.recv<double>(0, 1, std::span<double>(recvBuf));
            comm.send<double>(0, 2, sendBuf);
          }
        }
        const double seconds = timer.elapsed();
        if (comm.rank() == 0) {
          std::lock_guard lock(resultMutex);
          // One-way latency: half the round trip.
          result.points.push_back(
              {bytes, seconds / iters / 2.0 * 1.0e6});
        }
      } else if (config.benchmark == OsuBenchmark::kBandwidth) {
        // Streaming window of sends, then one ack.
        constexpr int kWindow = 16;
        for (int i = 0; i < iters / kWindow + 1; ++i) {
          if (comm.rank() == 0) {
            for (int w = 0; w < kWindow; ++w) {
              comm.send<double>(1, 3, sendBuf);
            }
            std::vector<double> ack(1);
            comm.recv<double>(1, 4, std::span<double>(ack));
          } else if (comm.rank() == 1) {
            for (int w = 0; w < kWindow; ++w) {
              comm.recv<double>(0, 3, std::span<double>(recvBuf));
            }
            const std::vector<double> ack{1.0};
            comm.send<double>(0, 4, ack);
          }
        }
        const double seconds = timer.elapsed();
        if (comm.rank() == 0) {
          const double messages =
              static_cast<double>(iters / kWindow + 1) * kWindow;
          const double mbps = messages * static_cast<double>(bytes) /
                              seconds / 1.0e6;
          std::lock_guard lock(resultMutex);
          result.points.push_back({bytes, mbps});
        }
      } else {
        // Allreduce latency across all ranks (per-element sum is enough
        // to time the collective; minimpi reduces scalars).
        for (int i = 0; i < iters; ++i) {
          comm.allreduce(static_cast<double>(i), minimpi::Op::kSum);
        }
        const double seconds = timer.elapsed();
        if (comm.rank() == 0) {
          std::lock_guard lock(resultMutex);
          result.points.push_back({bytes, seconds / iters * 1.0e6});
        }
      }
    }
  });
  result.totalSeconds = total.elapsed();
  return result;
}

OsuResult runModeled(const OsuConfig& config, const NetworkModel& network,
                     const std::string& noiseKey) {
  REBENCH_REQUIRE(network.latencySeconds > 0.0 &&
                  network.bandwidthGBs > 0.0);
  OsuResult result;
  result.benchmark = config.benchmark;
  result.numRanks =
      config.benchmark == OsuBenchmark::kAllreduce ? config.numRanks : 2;

  for (const std::size_t bytes : messageSizes(config)) {
    Rng rng = Rng::fromKey("osu:" + noiseKey + ":" +
                           std::string(osuBenchmarkName(config.benchmark)) +
                           ":" + std::to_string(bytes));
    const double transfer =
        network.latencySeconds +
        static_cast<double>(bytes) / (network.bandwidthGBs * 1.0e9);
    double value = 0.0;
    switch (config.benchmark) {
      case OsuBenchmark::kLatency:
        value = transfer * 1.0e6;  // one-way microseconds
        break;
      case OsuBenchmark::kBandwidth: {
        // Pipelined window: bandwidth approaches the link rate for large
        // messages, latency-dominated for small ones.
        const double perMessage =
            std::max(static_cast<double>(bytes) /
                         (network.bandwidthGBs * 1.0e9),
                     network.latencySeconds / 4.0);
        value = static_cast<double>(bytes) / perMessage / 1.0e6;  // MB/s
        break;
      }
      case OsuBenchmark::kAllreduce: {
        const double hops = 2.0 * std::ceil(std::log2(result.numRanks));
        value = hops * transfer * 1.0e6;
        break;
      }
    }
    value *= rng.noiseFactor(0.02);
    result.points.push_back({bytes, value});
    result.totalSeconds +=
        transfer * iterationsFor(config, bytes);
  }
  return result;
}

std::string formatOutput(const OsuResult& result) {
  std::string out;
  switch (result.benchmark) {
    case OsuBenchmark::kLatency:
      out += "# OSU MPI Latency Test (rebench reproduction)\n";
      out += "# Size          Latency (us)\n";
      break;
    case OsuBenchmark::kBandwidth:
      out += "# OSU MPI Bandwidth Test (rebench reproduction)\n";
      out += "# Size          Bandwidth (MB/s)\n";
      break;
    case OsuBenchmark::kAllreduce:
      out += "# OSU MPI Allreduce Latency Test (rebench reproduction), " +
             std::to_string(result.numRanks) + " processes\n";
      out += "# Size          Avg Latency (us)\n";
      break;
  }
  for (const SizePoint& point : result.points) {
    out += str::padRight(std::to_string(point.messageBytes), 16) +
           str::fixed(point.value, 2) + "\n";
  }
  out += "# complete\n";
  return out;
}

}  // namespace rebench::osu
