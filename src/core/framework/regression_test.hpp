// ReFrame-style regression-test description (§2.3).
//
// A RegressionTest describes *what* to benchmark: the spec to build, the
// job geometry, the sanity condition and the FOM extraction patterns.
// Where the benchmark runs (scheduler, launcher, environment) lives in the
// SystemConfig — the separation the paper identifies as the key abstraction
// enabling portable benchmarks.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/sched/scheduler.hpp"
#include "core/spec/spec.hpp"
#include "core/sysconfig/system_config.hpp"
#include "core/util/units.hpp"

namespace rebench {

/// Extraction rule: `pattern` is an ECMAScript regex whose first capture
/// group is parsed as the FOM value.
struct PerfPattern {
  std::string fomName;
  std::string pattern;
  Unit unit = Unit::kNone;
};

/// Expected performance on a given system (ReFrame-style reference tuple).
struct ReferenceValue {
  double value = 0.0;
  double lowerFrac = -0.25;  // accept value*(1+lowerFrac) ..
  double upperFrac = 0.25;   //        .. value*(1+upperFrac)
};

/// Everything the "benchmark binary" sees when it runs.
struct RunContext {
  const SystemConfig* system = nullptr;
  const PartitionConfig* partition = nullptr;
  Allocation allocation;
  std::shared_ptr<const ConcreteSpec> spec;
  std::string binaryId;
  std::vector<std::string> args;
  /// 0 on the first run; repeats get 1, 2, ... so modelled runs draw
  /// fresh (but still deterministic) run-to-run noise.
  int repeatIndex = 0;
};

/// What the benchmark body reports: its textual output (parsed for sanity
/// and FOMs) and its simulated duration (native runs report wall time).
struct RunOutput {
  std::string stdoutText;
  double elapsedSeconds = 0.0;
  bool launchFailed = false;  // e.g. model unsupported on this platform
  std::string failureReason;
};

struct RegressionTest {
  std::string name;
  /// Target filters, "system[:partition]" or "*" for anywhere.
  std::vector<std::string> validSystems = {"*"};
  /// Abstract spec to concretize and build (Principles 2-4).
  std::string spackSpec;
  /// Job geometry (appendix: num_tasks / num_tasks_per_node / cpus_per_task).
  int numTasks = 1;
  int numTasksPerNode = 0;  // 0 = pack
  int numCpusPerTask = 1;
  /// When true and numCpusPerTask==0-like behaviour is wanted: use all the
  /// cores of a node per task (BabelStream's default in the framework).
  bool useAllCoresPerTask = false;
  double timeLimit = 3600.0;
  std::vector<std::string> executableOpts;
  /// Regex that must match the output for the run to be valid.
  std::string sanityPattern;
  std::vector<PerfPattern> perfPatterns;
  /// References keyed by "system:partition" then FOM name.
  std::map<std::string, std::map<std::string, ReferenceValue>> references;
  /// The benchmark body (stands in for the built binary).
  std::function<RunOutput(const RunContext&)> run;

  bool matchesTarget(std::string_view system,
                     std::string_view partition) const;
};

}  // namespace rebench
