// The benchmarking pipeline — Figure 1 of the paper as code.
//
//   concretize -> build -> submit/run -> sanity -> performance -> perflog
//
// Each stage's artefacts (concrete spec, build record, launch command, job
// accounting) are retained on the result object so that a run is fully
// auditable after the fact.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/concretizer/concretizer.hpp"
#include "core/fault/failure.hpp"
#include "core/fault/fault.hpp"
#include "core/fault/journal.hpp"
#include "core/fault/quarantine.hpp"
#include "core/fault/retry.hpp"
#include "core/framework/perflog.hpp"
#include "core/framework/regression_test.hpp"
#include "core/framework/telemetry.hpp"
#include "core/pkg/build_plan.hpp"
#include "core/pkg/recipe.hpp"
#include "core/sched/launcher.hpp"
#include "core/store/build_cache.hpp"
#include "core/sysconfig/system_config.hpp"

namespace rebench {

namespace obs {
class Tracer;
class MetricsRegistry;
}  // namespace obs

struct PipelineOptions {
  /// Principle 3; disabling reuses cached binaries (ablation only).
  bool rebuildEveryRun = true;
  ReusePolicy reuse = ReusePolicy::kPreferExternal;
  /// Account passed to schedulers that require one (-J'--account=...').
  std::string account = "ec999";
  /// Number of times to re-run the measurement (first-class repeats; the
  /// perflog records every repeat).
  int numRepeats = 1;
  /// Capture system-state telemetry (energy, background load) for each
  /// run on modelled platforms — the paper's §4 future work.
  bool captureTelemetry = true;
  /// Retry policy for transiently-failed attempts: per-stage budgets and
  /// exponential backoff with deterministic jitter (replaces ReFrame's
  /// flat --max-retries).  Only FailureClass::kTransient failures are
  /// retried; backoff waits consume simulated time and appear as
  /// `backoff` spans in the trace.
  RetryPolicy retry;
  /// Deterministic fault injection (all-zero probabilities = off).
  FaultConfig faults;
  /// Circuit-breaker thresholds used by runAll to quarantine (test,
  /// target) pairs / whole partitions after consecutive infrastructure
  /// failures.
  BreakerOptions breaker;
  /// Optional observability hooks (rebench::obs, both nullable, not
  /// owned).  With a tracer attached, every runOne emits one `test_run`
  /// root span with `attempt` children wrapping the
  /// concretize/build/submit/run/sanity/performance/telemetry stage
  /// spans; the tracer's clock is advanced by simulated build/queue/run
  /// seconds so traces of modelled runs are deterministic.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional content-addressed artifact store (not owned).  When set
  /// (and cacheBuilds is true) the build stage consults a provenance-
  /// keyed cache before executing: reuse happens only on an exact
  /// hash(concretized spec + system environment + recipe) match, so any
  /// drift forces a rebuild — P3's "rebuild every run" strengthened to
  /// "re-concretize every run, reuse only verified-identical builds".
  store::ObjectStore* store = nullptr;
  /// --no-cache: keep recording to the store but never reuse from it.
  bool cacheBuilds = true;
};

/// Everything that happened for one (test, system:partition) execution.
struct TestRunResult {
  std::string testName;
  std::string system;
  std::string partition;
  std::string environ;

  std::shared_ptr<const ConcreteSpec> concreteSpec;
  std::vector<std::string> concretizationTrace;
  BuildRecord build;
  std::string launchCommand;
  /// The batch script that reproduces this run (Principle 5 artefact).
  std::string jobScript;
  JobId jobId = 0;
  JobState jobState = JobState::kPending;
  std::string stdoutText;

  bool sanityPassed = false;
  /// Extracted FOM values by name (last repeat).
  std::map<std::string, double> foms;
  /// Per-FOM pass/fail against references (true when no reference exists).
  std::map<std::string, bool> fomWithinReference;

  bool passed = false;
  /// Classified failure (stage empty on success).
  FailureInfo failure;
  /// True when the run never executed because its (test, target) pair or
  /// partition was quarantined by the circuit breaker.
  bool quarantined = false;
  /// Scheduler-level preemption/requeue count for the final attempt.
  int requeues = 0;
  /// 1 + number of retries consumed.
  int attempts = 1;

  /// System-state samples covering the job (empty when telemetry is off
  /// or the partition has no machine model).
  TelemetrySeries telemetry;
  /// Sample indices where background traffic may have perturbed the run.
  std::vector<std::size_t> contentionFlags;

  double simulatedPipelineSeconds = 0.0;  // build + queue + run
};

/// Campaign-level accounting produced by runAll (all fields additive to
/// the returned results; quarantined entries also appear as results).
struct CampaignReport {
  std::size_t executed = 0;
  /// Tuples skipped because the run journal already contains them.
  std::size_t skippedJournaled = 0;
  /// Tuples skipped by the circuit breaker.
  std::size_t quarantined = 0;
  /// Breaker keys ("test@system:partition" or "system:partition") whose
  /// circuit opened during the campaign, in open order.
  std::vector<std::string> quarantinedKeys;
};

/// Drives regression tests through the full pipeline on simulated systems.
class Pipeline {
 public:
  Pipeline(const SystemRegistry& systems, const PackageRepository& repo,
           PipelineOptions options = {});

  /// Runs one test on "system[:partition]", honouring the retry policy.
  /// `repeatIndex` feeds the benchmark's run-to-run noise stream.
  TestRunResult runOne(const RegressionTest& test, std::string_view target,
                       PerfLog* perflog = nullptr, int repeatIndex = 0);

  /// Runs every test on every matching target; skips non-matching pairs.
  /// With a `journal`, already-recorded (test, target, repeat) tuples are
  /// skipped and completed ones appended — the --resume mechanism.  A
  /// circuit breaker (options.breaker) quarantines pairs/partitions after
  /// consecutive infrastructure failures; quarantined tuples yield
  /// results with failure.stage == "quarantine" instead of executing.
  std::vector<TestRunResult> runAll(std::span<const RegressionTest> tests,
                                    std::span<const std::string> targets,
                                    PerfLog* perflog = nullptr,
                                    RunJournal* journal = nullptr,
                                    CampaignReport* report = nullptr);

  /// Monotone stamp used for perflog timestamps (deterministic).
  std::string nextTimestamp();

  /// The store-backed build cache, when a store is attached and caching
  /// is enabled (hit/miss stats for campaign summaries); else null.
  const store::BuildCache* buildCache() const {
    return buildCache_ ? &*buildCache_ : nullptr;
  }

 private:
  /// `attempt` is 1-based (1 + retries consumed so far); recorded on the
  /// attempt span and as an `attempt` perflog extra.
  TestRunResult runOnce(const RegressionTest& test, std::string_view target,
                        PerfLog* perflog, int repeatIndex, int attempt);

  const SystemRegistry& systems_;
  const PackageRepository& repo_;
  PipelineOptions options_;
  Builder builder_;
  std::optional<store::BuildCache> buildCache_;
  std::optional<FaultInjector> injector_;
  std::uint64_t logicalTime_ = 0;
};

}  // namespace rebench
