// The benchmarking pipeline — Figure 1 of the paper as code.
//
//   concretize -> build -> submit/run -> sanity -> performance -> perflog
//
// Each stage's artefacts (concrete spec, build record, launch command, job
// accounting) are retained on the result object so that a run is fully
// auditable after the fact.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/concretizer/concretizer.hpp"
#include "core/fault/failure.hpp"
#include "core/fault/fault.hpp"
#include "core/fault/journal.hpp"
#include "core/fault/quarantine.hpp"
#include "core/fault/retry.hpp"
#include "core/fault/watchdog.hpp"
#include "core/framework/perflog.hpp"
#include "core/framework/regression_test.hpp"
#include "core/framework/telemetry.hpp"
#include "core/pkg/build_plan.hpp"
#include "core/pkg/recipe.hpp"
#include "core/sched/launcher.hpp"
#include "core/store/build_cache.hpp"
#include "core/sysconfig/system_config.hpp"
#include "core/telemetry/probe.hpp"

namespace rebench {

namespace telemetry {
class EventBus;
}  // namespace telemetry

namespace obs {
class Tracer;
class MetricsRegistry;
}  // namespace obs

struct PipelineOptions {
  /// Principle 3; disabling reuses cached binaries (ablation only).
  bool rebuildEveryRun = true;
  ReusePolicy reuse = ReusePolicy::kPreferExternal;
  /// Account passed to schedulers that require one (-J'--account=...').
  std::string account = "ec999";
  /// Number of times to re-run the measurement (first-class repeats; the
  /// perflog records every repeat).
  int numRepeats = 1;
  /// Capture system-state telemetry (energy, background load) for each
  /// run on modelled platforms — the paper's §4 future work.
  bool captureTelemetry = true;
  /// Retry policy for transiently-failed attempts: per-stage budgets and
  /// exponential backoff with deterministic jitter (replaces ReFrame's
  /// flat --max-retries).  Only FailureClass::kTransient failures are
  /// retried; backoff waits consume simulated time and appear as
  /// `backoff` spans in the trace.
  RetryPolicy retry;
  /// Deterministic fault injection (all-zero probabilities = off).
  FaultConfig faults;
  /// Per-stage deadlines in simulated seconds (--stage-timeout; disabled
  /// by default).  A stage that exceeds its deadline — or a retry ladder
  /// whose cumulative backoff would — fails as kInfrastructure: never
  /// retried in place, counted by the circuit breaker, and visible as a
  /// `fault.watchdog` trace event.
  WatchdogPolicy watchdog;
  /// Circuit-breaker thresholds used by runAll to quarantine (test,
  /// target) pairs / whole partitions after consecutive infrastructure
  /// failures.
  BreakerOptions breaker;
  /// Optional observability hooks (rebench::obs, both nullable, not
  /// owned).  With a tracer attached, every runOne emits one `test_run`
  /// root span with `attempt` children wrapping the
  /// concretize/build/submit/run/sanity/performance/telemetry stage
  /// spans; the tracer's clock is advanced by simulated build/queue/run
  /// seconds so traces of modelled runs are deterministic.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional content-addressed artifact store (not owned).  When set
  /// (and cacheBuilds is true) the build stage consults a provenance-
  /// keyed cache before executing: reuse happens only on an exact
  /// hash(concretized spec + system environment + recipe) match, so any
  /// drift forces a rebuild — P3's "rebuild every run" strengthened to
  /// "re-concretize every run, reuse only verified-identical builds".
  store::ObjectStore* store = nullptr;
  /// --no-cache: keep recording to the store but never reuse from it.
  bool cacheBuilds = true;
  /// Campaign-level parallelism for runAll: up to `jobs` independent
  /// (test, target, repeat) campaigns execute concurrently, stages
  /// overlapped.  Perflog, trace and manifest bytes are identical for
  /// every value — parallelism is an implementation detail, not an
  /// output-visible mode.  1 = in-line execution.
  int jobs = 1;
  /// Width of the canonical virtual-lane schedule the executor stamps
  /// into every `exec.worker` span (`lane` + `sim_seconds` attributes)
  /// for trace profiling (`rebench profile`).  Deliberately independent
  /// of `jobs`: the stamped profile is a property of the campaign, not
  /// of the worker count it happened to execute with, so trace bytes
  /// stay identical across --jobs values.  (--lanes)
  int profileLanes = 8;
  /// Per-stage resource accounting around build/run (--probe): off by
  /// default; sim mode is a deterministic synthetic source (byte-stable
  /// at any --jobs), real mode reads getrusage//proc/self/statm.
  telemetry::ProbeMode probe = telemetry::ProbeMode::kOff;
  /// Live telemetry event bus (not owned, nullable).  Publishing never
  /// changes byte-deterministic artifacts — events only feed the serve
  /// daemon's status endpoint and crash flight recorder.
  telemetry::EventBus* bus = nullptr;
};

/// Execution context threaded through one campaign: where observability
/// and perflog records go (per-campaign shards under the parallel
/// executor, the pipeline's own hooks otherwise), plus the single-flight
/// protocol the executor uses so each unique build key builds exactly
/// once across concurrent campaigns.
struct CampaignExecContext {
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Perflog records accumulate here *untimestamped*; they are stamped
  /// and appended in canonical suite order once the campaign's place is
  /// settled.  Null = no perflog requested.
  std::vector<PerfLogEntry>* perfBuffer = nullptr;

  /// How a campaign participates in the build of its cache key.
  enum class BuildRole {
    kDirect,    // no executor coordination: probe the cache directly
    kLeader,    // first user of a cold key: builds it, others wait
    kFollower,  // concurrent user of a cold key: waits for the leader
    kCached,    // key was warm before the campaign started: plain lookup
  };
  /// Resolves this campaign's role (executor-provided; null in direct
  /// mode).  Writes the single-flight epoch observed at resolution time;
  /// a follower whose awaitBuilt() returns false (leader abandoned)
  /// re-resolves — possibly becoming the new leader.
  std::function<BuildRole(std::uint64_t*)> resolveBuildRole;
  store::SingleFlight* singleFlight = nullptr;
};

/// Everything that happened for one (test, system:partition) execution.
struct TestRunResult {
  std::string testName;
  std::string system;
  std::string partition;
  std::string environ;

  std::shared_ptr<const ConcreteSpec> concreteSpec;
  std::vector<std::string> concretizationTrace;
  BuildRecord build;
  std::string launchCommand;
  /// The batch script that reproduces this run (Principle 5 artefact).
  std::string jobScript;
  JobId jobId = 0;
  JobState jobState = JobState::kPending;
  std::string stdoutText;

  bool sanityPassed = false;
  /// Extracted FOM values by name (last repeat).
  std::map<std::string, double> foms;
  /// Per-FOM pass/fail against references (true when no reference exists).
  std::map<std::string, bool> fomWithinReference;

  bool passed = false;
  /// Classified failure (stage empty on success).
  FailureInfo failure;
  /// True when the run never executed because its (test, target) pair or
  /// partition was quarantined by the circuit breaker.
  bool quarantined = false;
  /// Scheduler-level preemption/requeue count for the final attempt.
  int requeues = 0;
  /// 1 + number of retries consumed.
  int attempts = 1;

  /// System-state samples covering the job (empty when telemetry is off
  /// or the partition has no machine model).
  TelemetrySeries telemetry;
  /// Sample indices where background traffic may have perturbed the run.
  std::vector<std::size_t> contentionFlags;

  /// Per-stage resource deltas ("build", "run") when a ResourceProbe is
  /// active; empty otherwise.
  std::map<std::string, telemetry::ResourceSample> stageResources;

  double simulatedPipelineSeconds = 0.0;  // build + queue + run
};

/// Campaign-level accounting produced by runAll (all fields additive to
/// the returned results; quarantined entries also appear as results).
struct CampaignReport {
  std::size_t executed = 0;
  /// Tuples skipped because the run journal already contains them.
  std::size_t skippedJournaled = 0;
  /// Tuples skipped by the circuit breaker.
  std::size_t quarantined = 0;
  /// Breaker keys ("test@system:partition" or "system:partition") whose
  /// circuit opened during the campaign, in open order.
  std::vector<std::string> quarantinedKeys;
  /// Distinct cold build keys that built during the campaign (one build
  /// per key — the single-flight invariant).
  std::size_t uniqueBuilds = 0;
  /// Builds avoided because a concurrent campaign shared a leader's
  /// build instead of rebuilding the same key.
  std::size_t dedupedBuilds = 0;
  /// Sum of executed campaigns' simulated pipeline seconds — the serial
  /// campaign cost.
  double simulatedSerialSeconds = 0.0;
  /// Simulated campaign makespan under `jobs` workers (greedy list
  /// schedule over the executed campaigns in canonical order).
  double simulatedMakespanSeconds = 0.0;
  /// Distinct ThreadPool worker lanes observed executing campaigns
  /// (diagnostic — scheduling-dependent, never part of output bytes;
  /// helpers draining the queue count as one extra "caller" lane).
  std::size_t workerLanesTouched = 0;
};

/// Half-open repeat range for one (test, target) pair — the adaptive
/// run-length controller's unit of scheduling (rebench::infer).
struct RepeatWindow {
  int begin = 0;
  int end = 0;  // exclusive
};

/// Drives regression tests through the full pipeline on simulated systems.
class Pipeline {
 public:
  Pipeline(const SystemRegistry& systems, const PackageRepository& repo,
           PipelineOptions options = {});

  /// Runs one test on "system[:partition]", honouring the retry policy.
  /// `repeatIndex` feeds the benchmark's run-to-run noise stream.
  TestRunResult runOne(const RegressionTest& test, std::string_view target,
                       PerfLog* perflog = nullptr, int repeatIndex = 0);

  /// Runs every test on every matching target; skips non-matching pairs.
  /// With a `journal`, already-recorded (test, target, repeat) tuples are
  /// skipped and completed ones appended — the --resume mechanism.  A
  /// circuit breaker (options.breaker) quarantines pairs/partitions after
  /// consecutive infrastructure failures; quarantined tuples yield
  /// results with failure.stage == "quarantine" instead of executing.
  /// Campaigns execute on options.jobs workers (see CampaignExecutor);
  /// output bytes are independent of the job count.
  std::vector<TestRunResult> runAll(std::span<const RegressionTest> tests,
                                    std::span<const std::string> targets,
                                    PerfLog* perflog = nullptr,
                                    RunJournal* journal = nullptr,
                                    CampaignReport* report = nullptr);

  /// runAll restricted to explicit per-pair repeat windows: each
  /// (test, target) pair runs repeats [begin, end) from `windows`
  /// (keyed "test@system:partition"); pairs without an entry fall back
  /// to `defaultWindow` when provided and are skipped entirely
  /// otherwise.  The adaptive run-length controller (rebench::infer)
  /// grows sampling round by round through this; every executor
  /// guarantee (canonical merge order, byte-identical output at any
  /// --jobs width) holds per call, and timestamps stay monotone across
  /// calls because the logical clock lives on the pipeline.
  std::vector<TestRunResult> runWindows(
      std::span<const RegressionTest> tests,
      std::span<const std::string> targets,
      const std::map<std::string, RepeatWindow>& windows,
      std::optional<RepeatWindow> defaultWindow = std::nullopt,
      PerfLog* perflog = nullptr, RunJournal* journal = nullptr,
      CampaignReport* report = nullptr);

  /// Monotone stamp used for perflog timestamps (deterministic).
  std::string nextTimestamp();

  /// Observability hooks from the options (nullable) — exposed so the
  /// adaptive controller can emit `infer.*` spans and gauges into the
  /// same canonical stream the executor merges into.
  obs::Tracer* tracer() const { return options_.tracer; }
  obs::MetricsRegistry* metrics() const { return options_.metrics; }

  /// The store-backed build cache, when a store is attached and caching
  /// is enabled (hit/miss stats for campaign summaries); else null.
  const store::BuildCache* buildCache() const {
    return buildCache_ ? &*buildCache_ : nullptr;
  }

 private:
  friend class CampaignExecutor;

  /// One full campaign — the retry loop around runOnce — reporting into
  /// `ctx` instead of the pipeline's own observability hooks.
  TestRunResult runCampaign(const RegressionTest& test,
                            std::string_view target, int repeatIndex,
                            const CampaignExecContext& ctx);
  /// `attempt` is 1-based (1 + retries consumed so far); recorded on the
  /// attempt span and as an `attempt` perflog extra.
  TestRunResult runOnce(const RegressionTest& test, std::string_view target,
                        const CampaignExecContext& ctx, int repeatIndex,
                        int attempt);
  /// The build stage's cache path: resolves the campaign's single-flight
  /// role (when an executor coordinates) and either force-builds as the
  /// leader or performs a verified lookup.
  BuildRecord buildViaCache(const BuildPlan& plan,
                            const SystemEnvironment& env,
                            const CampaignExecContext& ctx, int attempt);
  /// Stamps buffered perflog records with monotone timestamps and
  /// appends them; no-op with a null perflog.
  void flushPerfBuffer(std::vector<PerfLogEntry>& buffer, PerfLog* perflog);

  const SystemRegistry& systems_;
  const PackageRepository& repo_;
  PipelineOptions options_;
  Builder builder_;
  std::optional<store::BuildCache> buildCache_;
  std::optional<FaultInjector> injector_;
  std::uint64_t logicalTime_ = 0;
};

}  // namespace rebench
