#include "core/framework/regression_test.hpp"

#include "core/util/strings.hpp"

namespace rebench {

bool RegressionTest::matchesTarget(std::string_view system,
                                   std::string_view partition) const {
  const std::string full = std::string(system) + ":" + std::string(partition);
  for (const std::string& filter : validSystems) {
    if (filter == "*") return true;
    if (filter == system) return true;
    if (filter == full) return true;
    if (str::endsWith(filter, ":*") &&
        filter.substr(0, filter.size() - 2) == system) {
      return true;
    }
  }
  return false;
}

}  // namespace rebench
