#include "core/framework/telemetry.hpp"

#include <algorithm>
#include <cmath>

#include "core/util/error.hpp"
#include "core/util/rng.hpp"

namespace rebench {

double TelemetrySeries::duration() const {
  return samples.empty() ? 0.0 : samples.back().timeSeconds;
}

double TelemetrySeries::energyJoules() const {
  double joules = 0.0;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    const double dt = samples[i].timeSeconds - samples[i - 1].timeSeconds;
    joules += 0.5 * (samples[i].powerWatts + samples[i - 1].powerWatts) * dt;
  }
  return joules;
}

double TelemetrySeries::meanPowerWatts() const {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (const TelemetrySample& s : samples) sum += s.powerWatts;
  return sum / static_cast<double>(samples.size());
}

double TelemetrySeries::maxNetworkMBs() const {
  double best = 0.0;
  for (const TelemetrySample& s : samples) {
    best = std::max(best, s.networkMBs);
  }
  return best;
}

double TelemetrySeries::maxFilesystemMBs() const {
  double best = 0.0;
  for (const TelemetrySample& s : samples) {
    best = std::max(best, s.filesystemMBs);
  }
  return best;
}

TelemetrySeries sampleTelemetry(const MachineModel& machine,
                                const WorkloadProfile& profile,
                                double durationSeconds,
                                const std::string& noiseKey,
                                const TelemetryOptions& options) {
  REBENCH_REQUIRE(durationSeconds >= 0.0 && options.intervalSeconds > 0.0);
  TelemetrySeries series;
  series.intervalSeconds = options.intervalSeconds;
  Rng rng = Rng::fromKey("telemetry:" + noiseKey);

  const int count =
      std::max(2, static_cast<int>(durationSeconds /
                                   options.intervalSeconds) + 1);
  const double idle = machine.idlePowerWatts();
  const double peak = machine.maxPowerWatts();
  series.samples.reserve(count);
  for (int i = 0; i < count; ++i) {
    TelemetrySample s;
    s.timeSeconds = i * options.intervalSeconds;
    // The job's own footprint, with small sampling jitter.
    s.cpuUtilisation = std::clamp(
        profile.cpuIntensity * rng.noiseFactor(0.02), 0.0, 1.0);
    s.memoryBandwidthUtil = std::clamp(
        profile.memoryIntensity * rng.noiseFactor(0.03), 0.0, 1.0);
    // Background traffic: bursty, shared-system character.  A slow swell
    // plus occasional spikes.
    const double swell =
        options.backgroundLoad *
        (1.0 + 0.5 * std::sin(0.37 * i + rng.uniform() * 0.2));
    const bool spike = rng.uniform() < 0.05;
    s.networkMBs = profile.networkMBs +
                   swell * 800.0 * rng.noiseFactor(0.2) +
                   (spike ? rng.uniform(400.0, 1200.0) : 0.0);
    s.filesystemMBs = swell * 500.0 * rng.noiseFactor(0.3) +
                      (spike ? rng.uniform(100.0, 600.0) : 0.0);
    // Package power follows utilisation between idle and TDP; memory-bound
    // phases draw a bit less than compute-bound full load.
    const double load =
        0.7 * s.cpuUtilisation + 0.3 * s.memoryBandwidthUtil;
    s.powerWatts = idle + (peak - idle) * std::clamp(load, 0.0, 1.0) *
                              rng.noiseFactor(0.02);
    series.samples.push_back(s);
  }
  return series;
}

std::vector<std::size_t> contendedSamples(const TelemetrySeries& series,
                                          double networkThresholdMBs,
                                          double fsThresholdMBs) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < series.samples.size(); ++i) {
    const TelemetrySample& s = series.samples[i];
    if (s.networkMBs > networkThresholdMBs ||
        s.filesystemMBs > fsThresholdMBs) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace rebench
