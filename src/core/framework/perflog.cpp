#include "core/framework/perflog.hpp"

#include <fstream>

#include "core/util/error.hpp"
#include "core/util/strings.hpp"

namespace rebench {

namespace {

// '|' and '=' structure the record; newline ends it.  Escape with URL-ish
// percent encoding so arbitrary test output can round-trip.
std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '|' || c == '=' || c == '%' || c == '\n') {
      static constexpr char kHex[] = "0123456789abcdef";
      out += '%';
      out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xf];
      out += kHex[static_cast<unsigned char>(c) & 0xf];
    } else {
      out += c;
    }
  }
  return out;
}

int hexVal(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw ParseError("bad escape in perflog line");
}

std::string unescape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] == '%') {
      if (i + 2 >= raw.size()) throw ParseError("truncated escape");
      out += static_cast<char>(hexVal(raw[i + 1]) * 16 + hexVal(raw[i + 2]));
      i += 2;
    } else {
      out += raw[i];
    }
  }
  return out;
}

void put(std::string& line, std::string_view key, std::string_view value) {
  if (!line.empty()) line += '|';
  line += escape(key);
  line += '=';
  line += escape(value);
}

}  // namespace

std::string PerfLogEntry::serialize() const {
  std::string line;
  put(line, "ts", timestamp);
  put(line, "version", frameworkVersion);
  put(line, "system", system);
  put(line, "partition", partition);
  put(line, "environ", environ);
  put(line, "test", testName);
  put(line, "spec", spec);
  put(line, "spec_hash", specHash);
  put(line, "binary_id", binaryId);
  put(line, "job_id", jobId);
  put(line, "fom", fomName);
  put(line, "value", str::fixed(value, 6));
  put(line, "unit", unitName(unit));
  if (reference) {
    put(line, "ref", str::fixed(*reference, 6));
    put(line, "lower", str::fixed(lowerThresh, 4));
    put(line, "upper", str::fixed(upperThresh, 4));
  }
  put(line, "result", result);
  for (const auto& [key, val] : extras) {
    put(line, "x:" + key, val);
  }
  return line;
}

PerfLogEntry PerfLogEntry::parse(const std::string& line) {
  PerfLogEntry entry;
  for (const std::string& field : str::split(line, '|')) {
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      throw ParseError("malformed perflog field: '" + field + "'");
    }
    const std::string key = unescape(field.substr(0, eq));
    const std::string value = unescape(field.substr(eq + 1));
    if (key == "ts") entry.timestamp = value;
    else if (key == "version") entry.frameworkVersion = value;
    else if (key == "system") entry.system = value;
    else if (key == "partition") entry.partition = value;
    else if (key == "environ") entry.environ = value;
    else if (key == "test") entry.testName = value;
    else if (key == "spec") entry.spec = value;
    else if (key == "spec_hash") entry.specHash = value;
    else if (key == "binary_id") entry.binaryId = value;
    else if (key == "job_id") entry.jobId = value;
    else if (key == "fom") entry.fomName = value;
    else if (key == "value") entry.value = std::stod(value);
    else if (key == "unit") entry.unit = unitFromName(value);
    else if (key == "ref") entry.reference = std::stod(value);
    else if (key == "lower") entry.lowerThresh = std::stod(value);
    else if (key == "upper") entry.upperThresh = std::stod(value);
    else if (key == "result") entry.result = value;
    else if (str::startsWith(key, "x:")) entry.extras[key.substr(2)] = value;
    else throw ParseError("unknown perflog key: '" + key + "'");
  }
  return entry;
}

PerfLog::PerfLog(std::string path) : path_(std::move(path)) {}

void PerfLog::append(const PerfLogEntry& entry) {
  lines_.push_back(entry.serialize());
  if (!path_.empty()) {
    std::ofstream out(path_, std::ios::app);
    if (!out) throw Error("cannot open perflog file '" + path_ + "'");
    out << lines_.back() << '\n';
  }
}

std::vector<PerfLogEntry> PerfLog::readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot read perflog file '" + path + "'");
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!str::trim(line).empty()) lines.push_back(line);
  }
  return parseLines(lines);
}

std::vector<PerfLogEntry> PerfLog::parseLines(
    const std::vector<std::string>& lines) {
  std::vector<PerfLogEntry> out;
  out.reserve(lines.size());
  for (const std::string& line : lines) {
    out.push_back(PerfLogEntry::parse(line));
  }
  return out;
}

PerfLog::LenientParse PerfLog::readFileLenient(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot read perflog file '" + path + "'");
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!str::trim(line).empty()) lines.push_back(line);
  }
  return parseLinesLenient(lines);
}

PerfLog::LenientParse PerfLog::parseLinesLenient(
    const std::vector<std::string>& lines) {
  LenientParse out;
  out.entries.reserve(lines.size());
  for (const std::string& line : lines) {
    try {
      out.entries.push_back(PerfLogEntry::parse(line));
    } catch (const std::exception&) {
      // stod() throws std::invalid_argument, parse() throws ParseError;
      // either way the line is damaged, not the file.
      ++out.corruptLines;
    }
  }
  return out;
}

}  // namespace rebench
