// The benchmark suite: a named, tag-filterable collection of regression
// tests — the shape of the paper's `reframe -c benchmarks/apps/... -r
// --tag omp -n HPCG_ -x HPCG_Intel` selection interface.
#pragma once

#include <string>
#include <vector>

#include "core/framework/regression_test.hpp"

namespace rebench {

struct TaggedTest {
  RegressionTest test;
  std::vector<std::string> tags;
};

class TestSuite {
 public:
  void add(RegressionTest test, std::vector<std::string> tags = {});

  std::size_t size() const { return tests_.size(); }
  const std::vector<TaggedTest>& all() const { return tests_; }

  /// ReFrame-style selection: keep tests carrying `tag` (empty = all),
  /// whose name contains `namePattern` (-n), and whose name does not
  /// contain `excludePattern` (-x).
  std::vector<RegressionTest> select(std::string_view tag = {},
                                     std::string_view namePattern = {},
                                     std::string_view excludePattern = {}) const;

  std::vector<std::string> testNames() const;

 private:
  std::vector<TaggedTest> tests_;
};

}  // namespace rebench
