// The benchmark suite: a named, tag-filterable collection of regression
// tests — the shape of the paper's `reframe -c benchmarks/apps/... -r
// --tag omp -n HPCG_ -x HPCG_Intel` selection interface.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/framework/pipeline.hpp"
#include "core/framework/regression_test.hpp"

namespace rebench {

namespace obs {
class Tracer;
class MetricsRegistry;
}  // namespace obs

struct TaggedTest {
  RegressionTest test;
  std::vector<std::string> tags;
};

class TestSuite {
 public:
  void add(RegressionTest test, std::vector<std::string> tags = {});

  std::size_t size() const { return tests_.size(); }
  const std::vector<TaggedTest>& all() const { return tests_; }

  /// ReFrame-style selection: keep tests carrying `tag` (empty = all),
  /// whose name contains `namePattern` (-n), and whose name does not
  /// contain `excludePattern` (-x).  When observability hooks are passed
  /// (both nullable) the selection is wrapped in a `suite.select` span and
  /// kept/filtered counts land in the registry.
  std::vector<RegressionTest> select(std::string_view tag = {},
                                     std::string_view namePattern = {},
                                     std::string_view excludePattern = {},
                                     obs::Tracer* tracer = nullptr,
                                     obs::MetricsRegistry* metrics = nullptr) const;

  std::vector<std::string> testNames() const;

 private:
  std::vector<TaggedTest> tests_;
};

/// Outcome counts over one campaign's results (quarantined entries are a
/// separate bucket — they failed without running).
struct CampaignSummary {
  std::size_t total = 0;
  std::size_t passed = 0;
  std::size_t failed = 0;       // executed and failed
  std::size_t quarantined = 0;  // skipped by the circuit breaker
};

CampaignSummary summarizeCampaign(std::span<const TestRunResult> results);

/// One-paragraph human summary; includes resume/quarantine lines when a
/// CampaignReport is given and they apply.
std::string renderCampaignSummary(const CampaignSummary& summary,
                                  const CampaignReport* report = nullptr);

}  // namespace rebench
