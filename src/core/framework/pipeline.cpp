#include "core/framework/pipeline.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <regex>

#include "core/obs/trace.hpp"
#include "core/telemetry/bus.hpp"
#include "core/util/error.hpp"
#include "core/util/strings.hpp"
#include "sim/machine.hpp"

namespace rebench {

namespace {

// libstdc++'s regex compiler lazily fills the classic locale's global
// ctype narrow cache with plain (unsynchronized) byte stores, so two
// campaign workers compiling patterns concurrently are a data race.
// Compilation is rare (one regex per sanity/perf check) — serialize it.
std::regex compileRegex(const std::string& pattern) {
  static std::mutex mutex;
  std::lock_guard lock(mutex);
  return std::regex(pattern);
}

}  // namespace

Pipeline::Pipeline(const SystemRegistry& systems,
                   const PackageRepository& repo, PipelineOptions options)
    : systems_(systems),
      repo_(repo),
      options_(std::move(options)),
      builder_(options_.rebuildEveryRun) {
  if (options_.store != nullptr) {
    options_.store->setObservability(options_.tracer, options_.metrics);
    if (options_.cacheBuilds) {
      buildCache_.emplace(*options_.store, options_.tracer,
                          options_.metrics);
    }
  }
  if (options_.faults.enabled()) injector_.emplace(options_.faults);
}

std::string Pipeline::nextTimestamp() {
  return "T" + std::to_string(logicalTime_++);
}

void Pipeline::flushPerfBuffer(std::vector<PerfLogEntry>& buffer,
                               PerfLog* perflog) {
  if (perflog == nullptr) return;
  for (PerfLogEntry& entry : buffer) {
    entry.timestamp = nextTimestamp();
    perflog->append(entry);
  }
}

TestRunResult Pipeline::runOne(const RegressionTest& test,
                               std::string_view target, PerfLog* perflog,
                               int repeatIndex) {
  std::vector<PerfLogEntry> buffer;
  CampaignExecContext ctx;
  ctx.tracer = options_.tracer;
  ctx.metrics = options_.metrics;
  ctx.perfBuffer = perflog != nullptr ? &buffer : nullptr;
  TestRunResult result = runCampaign(test, target, repeatIndex, ctx);
  flushPerfBuffer(buffer, perflog);
  return result;
}

TestRunResult Pipeline::runCampaign(const RegressionTest& test,
                                    std::string_view target, int repeatIndex,
                                    const CampaignExecContext& ctx) {
  obs::ScopedSpan root(ctx.tracer, "test_run");
  root.attr("test", test.name);
  root.attr("target", target);
  root.attr("repeat", std::to_string(repeatIndex));
  if (ctx.metrics != nullptr) {
    ctx.metrics->counter("pipeline.runs").inc();
  }

  TestRunResult result = runOnce(test, target, ctx, repeatIndex, 1);
  int attempts = 1;
  // Only transient failures are retried, each stage against its own
  // budget, with exponentially growing (deterministically jittered)
  // backoff that consumes simulated time.
  std::map<std::string, int> retriesPerStage;
  std::map<std::string, double> backoffPerStage;
  double backoffTotal = 0.0;
  while (!result.passed &&
         result.failure.klass == FailureClass::kTransient) {
    const std::string stage = result.failure.stage;
    int& used = retriesPerStage[stage];
    if (used >= options_.retry.budgetFor(stage)) break;
    ++used;
    const std::string backoffKey = test.name + "|" + std::string(target) +
                                   "|" + std::to_string(repeatIndex) + "|" +
                                   stage;
    const double wait = options_.retry.backoffSeconds(backoffKey, used);
    // Watchdog cap on the ladder itself: when the cumulative backoff for
    // this stage would blow its deadline, the stage is effectively hung —
    // promote the transient failure to infrastructure instead of backing
    // off forever.
    const double stageLimit = options_.watchdog.limitFor(stage);
    if (stageLimit > 0.0 && backoffPerStage[stage] + wait > stageLimit) {
      const double elapsed = backoffPerStage[stage] + wait;
      if (ctx.tracer != nullptr) {
        ctx.tracer->event("fault.watchdog",
                          {{"stage", stage},
                           {"limit_seconds", str::fixed(stageLimit, 6)},
                           {"elapsed_seconds", str::fixed(elapsed, 6)}});
      }
      if (ctx.metrics != nullptr) {
        ctx.metrics->counter("fault.watchdog_fired").inc();
        ctx.metrics->counter("fault.watchdog_fired/" + stage).inc();
      }
      result.failure.klass = FailureClass::kInfrastructure;
      result.failure.detail = "watchdog: retry backoff for stage '" + stage +
                              "' exceeded its " + str::fixed(stageLimit, 1) +
                              "s deadline";
      break;
    }
    backoffPerStage[stage] += wait;
    {
      obs::ScopedSpan backoff(ctx.tracer, "backoff");
      backoff.attr("attempt", std::to_string(attempts + 1));
      backoff.attr("stage", stage);
      backoff.attr("seconds", str::fixed(wait, 6));
      if (ctx.tracer != nullptr) {
        ctx.tracer->clock().advance(wait);
      }
    }
    backoffTotal += wait;
    if (ctx.metrics != nullptr) {
      ctx.metrics->counter("pipeline.retries").inc();
      ctx.metrics
          ->histogram("pipeline.backoff_seconds", obs::stageSecondsBounds())
          .observe(wait);
    }
    result = runOnce(test, target, ctx, repeatIndex, attempts + 1);
    ++attempts;
  }
  result.attempts = attempts;
  result.simulatedPipelineSeconds += backoffTotal;

  root.attr("attempts", std::to_string(attempts));
  root.attr("outcome", result.passed ? "pass" : "fail");
  if (!result.passed) {
    root.attr("failure_stage", result.failure.stage);
    root.attr("failure_class",
              std::string(failureClassName(result.failure.klass)));
    if (ctx.metrics != nullptr) {
      ctx.metrics->counter("pipeline.failures").inc();
      ctx.metrics
          ->counter("pipeline.failures/" +
                    std::string(failureClassName(result.failure.klass)))
          .inc();
    }
  }
  return result;
}

TestRunResult Pipeline::runOnce(const RegressionTest& test,
                                std::string_view target,
                                const CampaignExecContext& ctx,
                                int repeatIndex, int attempt) {
  obs::Tracer* tracer = ctx.tracer;
  obs::MetricsRegistry* metrics = ctx.metrics;
  auto stageHistogram = [metrics](std::string_view stage) -> obs::Histogram* {
    if (metrics == nullptr) return nullptr;
    return &metrics->histogram("pipeline.stage_seconds/" + std::string(stage),
                               obs::stageSecondsBounds());
  };

  obs::ScopedSpan attemptSpan(tracer, "attempt");
  attemptSpan.attr("attempt", std::to_string(attempt));

  TestRunResult result;
  result.testName = test.name;

  const auto [system, partition] = systems_.resolve(target);
  result.system = system->name;
  result.partition = partition->name;

  // Key identifying this attempt for the fault injector: every draw is a
  // pure function of (seed, site, key), so traces replay byte-identically.
  const std::string faultKey = test.name + "|" + std::string(target) + "|" +
                               std::to_string(repeatIndex) + "|" +
                               std::to_string(attempt);
  const FaultInjector* injector =
      injector_.has_value() ? &*injector_ : nullptr;
  auto noteInjected = [tracer, metrics, &faultKey](std::string_view kind) {
    if (tracer != nullptr) {
      tracer->event("fault.inject",
                    {{"kind", std::string(kind)}, {"key", faultKey}});
    }
    if (metrics != nullptr) {
      metrics->counter("fault.injected").inc();
      metrics->counter("fault.injected/" + std::string(kind)).inc();
    }
  };

  auto noteWatchdog = [tracer, metrics](const WatchdogFire& fire) {
    if (tracer != nullptr) {
      tracer->event("fault.watchdog",
                    {{"stage", fire.stage},
                     {"limit_seconds", str::fixed(fire.limitSeconds, 6)},
                     {"elapsed_seconds", str::fixed(fire.elapsedSeconds, 6)}});
    }
    if (metrics != nullptr) {
      metrics->counter("fault.watchdog_fired").inc();
      metrics->counter("fault.watchdog_fired/" + fire.stage).inc();
    }
  };

  auto fail = [&result, &attemptSpan](
                  std::string stage, std::string detail,
                  std::optional<FailureClass> klass = std::nullopt) {
    attemptSpan.attr("result", "fail");
    attemptSpan.attr("failure_stage", stage);
    result.failure.klass = klass ? *klass : classifyFailure(stage, detail);
    attemptSpan.attr("failure_class",
                     std::string(failureClassName(result.failure.klass)));
    result.failure.stage = std::move(stage);
    result.failure.detail = std::move(detail);
    result.passed = false;
    return result;
  };
  auto appendPerflog = [&ctx, metrics](const PerfLogEntry& entry) {
    ctx.perfBuffer->push_back(entry);
    if (metrics != nullptr) {
      metrics->counter("pipeline.perflog_lines").inc();
    }
  };

  // Per-stage resource accounting (--probe): a sample around build/run,
  // surfaced as a telemetry.probe span, rebench_stage_* gauges and (via
  // result.stageResources) x:rusage_* perflog extras + manifest facets.
  // Sim-mode samples are a pure function of faultKey + simulated
  // seconds, so probed campaigns stay byte-identical at any --jobs.
  const telemetry::ResourceProbe probe(options_.probe);
  auto noteProbe = [&](std::string_view stage,
                       const telemetry::ResourceProbe::Mark& mark,
                       double simSeconds) {
    if (!probe.active()) return;
    const std::string stageName(stage);
    const telemetry::ResourceSample sample =
        probe.delta(mark, faultKey + "|" + stageName, simSeconds);
    result.stageResources[stageName] = sample;
    if (tracer != nullptr) {
      obs::ScopedSpan span(tracer, "telemetry.probe");
      span.attr("stage", stageName);
      span.attr("rusage_user_ms", str::fixed(sample.userMs, 3));
      span.attr("rusage_sys_ms", str::fixed(sample.sysMs, 3));
      span.attr("rusage_maxrss_kb", std::to_string(sample.maxRssKb));
      span.attr("rusage_minflt", std::to_string(sample.minorFaults));
      span.attr("rusage_io_blocks", std::to_string(sample.ioBlocks));
    }
    if (metrics != nullptr) {
      metrics->gauge("stage.rusage_user_ms/" + stageName).set(sample.userMs);
      metrics->gauge("stage.rusage_sys_ms/" + stageName).set(sample.sysMs);
      metrics->gauge("stage.rusage_maxrss_kb/" + stageName)
          .set(static_cast<double>(sample.maxRssKb));
    }
    if (options_.bus != nullptr) {
      options_.bus->publish(
          "exec", "", "probe:" + stageName,
          {{"campaign", faultKey},
           {"rusage_user_ms", str::fixed(sample.userMs, 3)},
           {"rusage_maxrss_kb", std::to_string(sample.maxRssKb)}});
    }
  };

  // --- Stage 1: concretize (Principle 4) -------------------------------
  std::shared_ptr<const ConcreteSpec> concrete;
  {
    obs::ScopedSpan span(tracer, "concretize", stageHistogram("concretize"));
    try {
      const Spec abstract = Spec::parse(test.spackSpec);
      Concretizer concretizer(repo_, system->environment,
                              {options_.reuse, tracer, metrics});
      ConcretizationResult cres = concretizer.concretize(abstract);
      concrete = cres.root;
      result.concretizationTrace = std::move(cres.trace);
      span.attr("decisions",
                std::to_string(result.concretizationTrace.size()));
    } catch (const Error& e) {
      span.attr("result", "error");
      return fail("concretize", e.what());
    }
  }
  result.concreteSpec = concrete;
  result.environ = concrete->compilerName.empty()
                       ? system->environment.defaultCompiler
                       : concrete->compilerName + "@" +
                             concrete->compilerVersion.toString();

  // --- Stage 2: build (Principles 2 & 3) --------------------------------
  const BuildPlan plan = makeBuildPlan(*concrete);
  const telemetry::ResourceProbe::Mark buildMark = probe.mark();
  {
    obs::ScopedSpan span(tracer, "build", stageHistogram("build"));
    if (buildCache_) {
      result.build =
          buildViaCache(plan, system->environment, ctx, attempt);
      if (result.build.stepsReusedFromCache > 0) {
        span.attr("reused", "store");
      }
    } else {
      result.build = builder_.build(plan);
    }
    result.simulatedPipelineSeconds += result.build.buildSeconds;
    // Simulated build time flows into the trace clock so the span is as
    // long as the build it records.
    if (tracer != nullptr) tracer->clock().advance(result.build.buildSeconds);
    span.attr("binary_id", result.build.binaryId.substr(0, 16));
    span.attr("steps", std::to_string(plan.steps.size()));
    if (injector != nullptr && injector->buildFlake(faultKey)) {
      noteInjected("build_flake");
      span.attr("result", "error");
      return fail("build", "injected transient build failure",
                  FailureClass::kTransient);
    }
    if (auto fired = checkStageDeadline(options_.watchdog, "build",
                                        result.build.buildSeconds)) {
      noteWatchdog(*fired);
      span.attr("result", "error");
      return fail("build", fired->failure().detail,
                  FailureClass::kInfrastructure);
    }
  }
  noteProbe("build", buildMark, result.build.buildSeconds);

  // --- Stage 3: run through the scheduler (Principle 5) ------------------
  ClusterOptions cluster;
  cluster.numNodes = partition->numNodes;
  cluster.coresPerNode = partition->processor.totalCores();
  cluster.requireAccount = partition->requiresAccount;
  cluster.validQos = {"standard"};
  SchedulerSim scheduler(cluster);
  // The scheduler's own timeline starts at zero; anchor its trace events
  // at the current trace time.
  const double schedBase = tracer != nullptr ? tracer->clock().peek() : 0.0;
  scheduler.setObservability(tracer, metrics, schedBase);

  int cpusPerTask = test.numCpusPerTask;
  if (test.useAllCoresPerTask) {
    cpusPerTask = partition->processor.totalCores();
  }

  RunContext runCtx;
  runCtx.system = system;
  runCtx.partition = partition;
  runCtx.spec = concrete;
  runCtx.binaryId = result.build.binaryId;
  runCtx.args = test.executableOpts;
  runCtx.repeatIndex = repeatIndex;

  RunOutput output;
  JobRequest request;
  request.name = test.name;
  request.numTasks = test.numTasks;
  request.numTasksPerNode = test.numTasksPerNode;
  request.numCpusPerTask = cpusPerTask;
  request.timeLimit = test.timeLimit;
  request.account = partition->requiresAccount ? options_.account : "";

  // At most one scheduler/job-level fault per attempt; node failures and
  // preemptions are executed by the scheduler, crashes by the payload.
  bool injectCrash = false;
  if (injector != nullptr) {
    const JobFaultDecision jobFault = injector->jobFault(faultKey);
    using Kind = JobFaultDecision::Kind;
    if (jobFault.kind == Kind::kNodeFailure) {
      request.fault = InjectedJobFault{InjectedJobFault::Kind::kNodeFailure,
                                       jobFault.atFraction};
      noteInjected("node_failure");
    } else if (jobFault.kind == Kind::kPreemption) {
      request.fault = InjectedJobFault{InjectedJobFault::Kind::kPreemption,
                                       jobFault.atFraction};
      noteInjected("preemption");
    } else if (jobFault.kind == Kind::kCrash) {
      injectCrash = true;
      noteInjected("job_crash");
    }
  }

  request.payload = [&](const Allocation& alloc) {
    runCtx.allocation = alloc;
    output = test.run(runCtx);
    JobOutcome outcome;
    outcome.success = !output.launchFailed && !injectCrash;
    outcome.runtimeSeconds = output.elapsedSeconds;
    outcome.stdoutText = output.stdoutText;
    return outcome;
  };

  JobId jobId = 0;
  {
    obs::ScopedSpan span(tracer, "submit", stageHistogram("submit"));
    try {
      jobId = scheduler.submit(request);
    } catch (const SchedulerError& e) {
      span.attr("result", "error");
      return fail("submit", e.what());
    }
    span.attr("job", std::to_string(jobId));
  }

  const JobInfo* job = nullptr;
  const telemetry::ResourceProbe::Mark runMark = probe.mark();
  {
    obs::ScopedSpan span(tracer, "run", stageHistogram("run"));
    scheduler.drain();
    job = &scheduler.query(jobId);
    // Queue wait + execution happened on the scheduler's simulated
    // timeline; move the trace clock to the job's end.
    if (tracer != nullptr) {
      tracer->clock().advanceTo(schedBase + job->endTime);
    }
    span.attr("job_state", std::string(jobStateName(job->state)));
    result.jobId = jobId;
    result.jobState = job->state;
    result.requeues = job->requeues;
    if (job->requeues > 0) {
      span.attr("requeues", std::to_string(job->requeues));
    }
    result.stdoutText = output.stdoutText;
    result.simulatedPipelineSeconds += job->endTime - job->submitTime;
    if (injector != nullptr && job->state == JobState::kCompleted &&
        injector->corruptStdout(faultKey)) {
      // A truncated/garbled log: the run "succeeded" but its output did
      // not survive — sanity and FOM extraction see the corrupted text.
      result.stdoutText = injector->corruptText(result.stdoutText, faultKey);
      noteInjected("stdout_corruption");
    }
  }
  noteProbe("run", runMark, job->endTime - job->submitTime);
  result.launchCommand = renderLaunchCommand(
      partition->launcher, job->allocation, test.name, test.executableOpts);
  {
    JobScriptRequest script;
    script.jobName = test.name;
    script.numTasks = job->allocation.numTasks;
    script.tasksPerNode = job->allocation.tasksPerNode;
    script.cpusPerTask = job->allocation.cpusPerTask;
    script.timeLimitSeconds = test.timeLimit;
    script.account = request.account;
    for (const BuildStep& step : plan.steps) {
      if (step.external) {
        // "module load X" -> module name.
        script.moduleLoads.push_back(step.command.substr(12));
      }
    }
    script.launchCommand = result.launchCommand;
    result.jobScript = renderJobScript(*partition, script);
  }

  // Shared provenance for every perflog record of this attempt.  The
  // timestamp stays empty here: records are stamped in canonical order
  // when the buffer is flushed, which keeps the numbering identical
  // however campaigns were scheduled.
  auto provenancedEntry = [&]() {
    PerfLogEntry entry;
    entry.system = result.system;
    entry.partition = result.partition;
    entry.environ = result.environ;
    entry.testName = test.name;
    entry.spec = concrete->shortForm();
    entry.specHash = concrete->dagHash();
    entry.binaryId = result.build.binaryId;
    entry.jobId = std::to_string(jobId);
    entry.extras["attempt"] = std::to_string(attempt);
    return entry;
  };
  // Failed attempts are data, not gaps: the failure stage, class, reason
  // and attempt number all land in the perflog so retries are auditable.
  auto logFailure = [&](const std::string& stage, const std::string& detail,
                        FailureClass klass) {
    if (ctx.perfBuffer == nullptr) return;
    PerfLogEntry entry = provenancedEntry();
    entry.fomName = stage;
    entry.value = 0.0;
    entry.unit = Unit::kNone;
    entry.result = "error";
    entry.extras["error"] = detail;
    entry.extras["failure_class"] = std::string(failureClassName(klass));
    appendPerflog(entry);
  };

  // A hung simulated stage: queue wait + execution blew the run deadline.
  if (auto fired = checkStageDeadline(options_.watchdog, "run",
                                      job->endTime - job->submitTime)) {
    noteWatchdog(*fired);
    const std::string detail = fired->failure().detail;
    logFailure("run", detail, FailureClass::kInfrastructure);
    return fail("run", detail, FailureClass::kInfrastructure);
  }

  // --- Telemetry capture (paper §4 future work) ---------------------------
  bool telemetryDropped = false;
  if (injector != nullptr && injector->dropTelemetry(faultKey)) {
    telemetryDropped = true;
    noteInjected("telemetry_dropout");
  }
  if (options_.captureTelemetry && !telemetryDropped &&
      !partition->machineModel.empty() && job->startTime >= 0.0) {
    obs::ScopedSpan span(tracer, "telemetry", stageHistogram("telemetry"));
    const MachineModel& machine =
        builtinMachines().get(partition->machineModel);
    WorkloadProfile profile;
    profile.cpuIntensity =
        std::min(1.0, static_cast<double>(job->allocation.tasksPerNode *
                                          job->allocation.cpusPerTask) /
                          partition->processor.totalCores());
    profile.memoryIntensity = 0.85;  // the suite is bandwidth-dominated
    profile.networkMBs = 20.0 * job->allocation.numTasks;
    const double duration = std::max(job->endTime - job->startTime, 1.0);
    result.telemetry = sampleTelemetry(
        machine, profile, duration,
        result.testName + ":" + result.system + ":" + result.partition,
        {.intervalSeconds = std::max(duration / 64.0, 0.25)});
    result.contentionFlags = contendedSamples(result.telemetry);
    span.attr("samples", std::to_string(result.telemetry.samples.size()));
    span.attr("contended", std::to_string(result.contentionFlags.size()));
  }

  if (job->state != JobState::kCompleted) {
    const std::string detail = output.launchFailed
                                   ? output.failureReason
                                   : std::string(jobStateName(job->state));
    // Launch failures (unsupported model, missing hardware) are permanent
    // configuration facts; scheduler-side job states classify by name.
    const FailureClass klass = output.launchFailed
                                   ? FailureClass::kPermanent
                                   : classifyFailure("run", detail);
    // Record the failure in the perflog too: failed combinations are data
    // (the white "*" boxes of Figure 2), not gaps.
    logFailure("run", detail, klass);
    return fail("run", detail, klass);
  }

  // --- Stage 4: sanity ----------------------------------------------------
  {
    obs::ScopedSpan span(tracer, "sanity", stageHistogram("sanity"));
    if (!test.sanityPattern.empty()) {
      const std::regex sanity = compileRegex(test.sanityPattern);
      if (!std::regex_search(result.stdoutText, sanity)) {
        span.attr("result", "fail");
        const std::string detail =
            "pattern '" + test.sanityPattern + "' not found in output";
        logFailure("sanity", detail, FailureClass::kTransient);
        return fail("sanity", detail);
      }
    }
    result.sanityPassed = true;
  }

  // --- Stage 5: performance (Principle 1/6) -------------------------------
  obs::ScopedSpan perfSpan(tracer, "performance",
                           stageHistogram("performance"));
  const std::string targetKey = result.system + ":" + result.partition;
  bool allWithinReference = true;
  for (const PerfPattern& pattern : test.perfPatterns) {
    const std::regex re = compileRegex(pattern.pattern);
    std::smatch match;
    if (!std::regex_search(result.stdoutText, match, re) ||
        match.size() < 2) {
      perfSpan.attr("result", "fail");
      const std::string detail = "FOM '" + pattern.fomName +
                                 "' not found via /" + pattern.pattern + "/";
      logFailure("performance", detail, FailureClass::kTransient);
      return fail("performance", detail);
    }
    double value = 0.0;
    try {
      value = std::stod(match[1].str());
    } catch (const std::exception&) {
      perfSpan.attr("result", "fail");
      const std::string detail = "FOM '" + pattern.fomName +
                                 "' captured non-numeric '" +
                                 match[1].str() + "'";
      logFailure("performance", detail, FailureClass::kTransient);
      return fail("performance", detail);
    }
    result.foms[pattern.fomName] = value;
    if (metrics != nullptr) {
      // Canonical shard merge keeps "last set wins" deterministic, so the
      // exported gauge is the last repeat in suite order at any --jobs.
      metrics
          ->gauge("fom/" + test.name + "/" + targetKey + "/" +
                  pattern.fomName)
          .set(value);
    }

    std::optional<ReferenceValue> ref;
    if (auto sysIt = test.references.find(targetKey);
        sysIt != test.references.end()) {
      if (auto fomIt = sysIt->second.find(pattern.fomName);
          fomIt != sysIt->second.end()) {
        ref = fomIt->second;
      }
    }
    bool within = true;
    if (ref) {
      const double lo = ref->value * (1.0 + ref->lowerFrac);
      const double hi = ref->value * (1.0 + ref->upperFrac);
      within = value >= lo && value <= hi;
      if (!within) allWithinReference = false;
    }
    result.fomWithinReference[pattern.fomName] = within;

    if (ctx.perfBuffer != nullptr) {
      PerfLogEntry entry = provenancedEntry();
      entry.fomName = pattern.fomName;
      entry.value = value;
      entry.unit = pattern.unit;
      if (ref) {
        entry.reference = ref->value;
        entry.lowerThresh = ref->lowerFrac;
        entry.upperThresh = ref->upperFrac;
      }
      entry.result = within ? "pass" : "fail";
      entry.extras["num_tasks"] = std::to_string(test.numTasks);
      entry.extras["launch"] = result.launchCommand;
      if (!result.telemetry.empty()) {
        entry.extras["energy_j"] =
            str::fixed(result.telemetry.energyJoules(), 1);
        entry.extras["mean_power_w"] =
            str::fixed(result.telemetry.meanPowerWatts(), 1);
        entry.extras["contended_samples"] =
            std::to_string(result.contentionFlags.size());
      }
      if (!result.stageResources.empty()) {
        // Aggregated across probed stages: CPU times and faults add,
        // peak RSS is the max.  Serialized as x:rusage_* columns.
        double userMs = 0.0;
        double sysMs = 0.0;
        long maxRssKb = 0;
        long minorFaults = 0;
        for (const auto& [stage, sample] : result.stageResources) {
          userMs += sample.userMs;
          sysMs += sample.sysMs;
          maxRssKb = std::max(maxRssKb, sample.maxRssKb);
          minorFaults += sample.minorFaults;
        }
        entry.extras["rusage_user_ms"] = str::fixed(userMs, 3);
        entry.extras["rusage_sys_ms"] = str::fixed(sysMs, 3);
        entry.extras["rusage_maxrss_kb"] = std::to_string(maxRssKb);
        entry.extras["rusage_minflt"] = std::to_string(minorFaults);
      }
      appendPerflog(entry);
    }
  }
  perfSpan.attr("foms", std::to_string(result.foms.size()));
  perfSpan.end();

  result.passed = allWithinReference;
  if (!allWithinReference) {
    result.failure.stage = "reference";
    result.failure.klass = FailureClass::kPermanent;
    result.failure.detail = "one or more FOMs outside reference bounds";
    attemptSpan.attr("result", "fail");
    attemptSpan.attr("failure_stage", result.failure.stage);
  } else {
    attemptSpan.attr("result", "pass");
  }
  return result;
}

BuildRecord Pipeline::buildViaCache(const BuildPlan& plan,
                                    const SystemEnvironment& env,
                                    const CampaignExecContext& ctx,
                                    int attempt) {
  const std::string key = store::BuildCache::cacheKey(
      plan.rootHash, store::BuildCache::environmentFingerprint(env),
      plan.planHash());
  using Role = CampaignExecContext::BuildRole;
  Role role = Role::kDirect;
  if (ctx.resolveBuildRole) {
    std::uint64_t epoch = 0;
    role = ctx.resolveBuildRole(&epoch);
    // A follower waits for its leader's publication.  awaitBuilt returns
    // false when that leader abandoned (skipped or crashed before
    // building); re-resolving then elects a new leader — possibly us.
    while (role == Role::kFollower) {
      if (ctx.singleFlight->awaitBuilt(key, epoch)) {
        if (attempt == 1 && ctx.metrics != nullptr) {
          ctx.metrics->counter("store.singleflight_dedup").inc();
        }
        break;
      }
      role = ctx.resolveBuildRole(&epoch);
    }
    // The span is emitted once the role has settled, so its bytes depend
    // only on the canonical role, not on how many re-elections happened.
    obs::ScopedSpan sf(ctx.tracer, "store.singleflight");
    sf.attr("key", key);
    sf.attr("role", role == Role::kLeader     ? "leader"
                    : role == Role::kFollower ? "follower"
                                              : "cached");
  }

  if (role == Role::kLeader && attempt == 1) {
    // The leader of a cold key *knows* the store has no verified record;
    // record the miss without probing so concurrent followers never see a
    // half-published entry, then build and publish.
    buildCache_->recordMiss(key, ctx.tracer, ctx.metrics);
    BuildRecord record = builder_.build(plan);
    buildCache_->insert(key, record, ctx.tracer);
    if (ctx.singleFlight != nullptr) ctx.singleFlight->publish(key);
    return record;
  }

  if (std::optional<BuildRecord> hit =
          buildCache_->lookup(key, plan, ctx.tracer, ctx.metrics)) {
    return *hit;
  }
  BuildRecord record = builder_.build(plan);
  buildCache_->insert(key, record, ctx.tracer);
  return record;
}

}  // namespace rebench
