#include "core/framework/executor.hpp"

#include <algorithm>
#include <set>

#include "core/obs/trace.hpp"
#include "core/telemetry/bus.hpp"
#include "core/util/error.hpp"
#include "core/util/strings.hpp"
#include "parallel/thread_pool.hpp"

namespace rebench {

std::vector<TestRunResult> Pipeline::runAll(
    std::span<const RegressionTest> tests,
    std::span<const std::string> targets, PerfLog* perflog,
    RunJournal* journal, CampaignReport* report) {
  CampaignExecutor executor(*this, options_.jobs);
  return executor.run(tests, targets, perflog, journal, report);
}

std::vector<TestRunResult> Pipeline::runWindows(
    std::span<const RegressionTest> tests,
    std::span<const std::string> targets,
    const std::map<std::string, RepeatWindow>& windows,
    std::optional<RepeatWindow> defaultWindow, PerfLog* perflog,
    RunJournal* journal, CampaignReport* report) {
  CampaignExecutor executor(*this, options_.jobs);
  executor.setWindows(&windows, defaultWindow);
  return executor.run(tests, targets, perflog, journal, report);
}

void CampaignExecutor::setWindows(
    const std::map<std::string, RepeatWindow>* windows,
    std::optional<RepeatWindow> defaultWindow) {
  windows_ = windows;
  defaultWindow_ = defaultWindow;
  windowed_ = true;
}

CampaignExecutor::CampaignExecutor(Pipeline& pipeline, int jobs)
    : pipeline_(pipeline),
      jobs_(std::max(1, jobs)),
      pairBreaker_(pipeline.options_.breaker.pairThreshold),
      partitionBreaker_(pipeline.options_.breaker.partitionThreshold) {}

void CampaignExecutor::enumerate(std::span<const RegressionTest> tests,
                                 std::span<const std::string> targets) {
  for (const std::string& target : targets) {
    const auto [system, partition] = pipeline_.systems_.resolve(target);
    const std::string partitionKey = system->name + ":" + partition->name;
    for (const RegressionTest& test : tests) {
      if (!test.matchesTarget(system->name, partition->name)) continue;
      int repeatBegin = 0;
      int repeatEnd = pipeline_.options_.numRepeats;
      if (windowed_) {
        const auto window = windows_->find(test.name + "@" + partitionKey);
        if (window != windows_->end()) {
          repeatBegin = window->second.begin;
          repeatEnd = window->second.end;
        } else if (defaultWindow_) {
          repeatBegin = defaultWindow_->begin;
          repeatEnd = defaultWindow_->end;
        } else {
          continue;
        }
      }
      for (int repeat = repeatBegin; repeat < repeatEnd; ++repeat) {
        if (journal_ != nullptr &&
            journal_->contains(test.name, target, repeat)) {
          ++report_->skippedJournaled;
          continue;
        }
        Unit unit;
        unit.index = units_.size();
        unit.test = &test;
        unit.target = target;
        unit.systemName = system->name;
        unit.partitionName = partition->name;
        unit.partitionKey = partitionKey;
        unit.pairKey = test.name + "@" + partitionKey;
        unit.repeat = repeat;
        units_.push_back(std::move(unit));
      }
    }
  }
}

void CampaignExecutor::classifyBuildKeys() {
  if (!pipeline_.buildCache_) return;
  // Silent pre-pass: concretize each (test, system) once — no spans, no
  // metrics, no store touches — to learn every campaign's provenance key
  // before anything runs.  Keys already verified in the store are warm
  // (plain cache hits, no single-flight); cold keys get leader election.
  std::map<std::string, std::optional<BuildPlan>> planMemo;
  std::map<std::string, std::string> envFpMemo;
  for (Unit& unit : units_) {
    const auto [system, partition] = pipeline_.systems_.resolve(unit.target);
    const std::string memoKey = unit.test->name + "|" + system->name;
    auto planIt = planMemo.find(memoKey);
    if (planIt == planMemo.end()) {
      std::optional<BuildPlan> plan;
      try {
        const Spec abstract = Spec::parse(unit.test->spackSpec);
        Concretizer concretizer(pipeline_.repo_, system->environment,
                                {pipeline_.options_.reuse});
        plan = makeBuildPlan(*concretizer.concretize(abstract).root);
      } catch (const Error&) {
        // The campaign itself will fail at its concretize stage; leave
        // the key empty so no one waits on a build that cannot start.
      }
      planIt = planMemo.emplace(memoKey, std::move(plan)).first;
    }
    if (!planIt->second) continue;
    const BuildPlan& plan = *planIt->second;
    auto envIt = envFpMemo.find(system->name);
    if (envIt == envFpMemo.end()) {
      envIt = envFpMemo
                  .emplace(system->name,
                           store::BuildCache::environmentFingerprint(
                               system->environment))
                  .first;
    }
    unit.buildKey = store::BuildCache::cacheKey(plan.rootHash,
                                                envIt->second,
                                                plan.planHash());
    std::vector<std::size_t>& users = users_[unit.buildKey];
    if (users.empty() &&
        pipeline_.buildCache_->peek(unit.buildKey, plan)) {
      warmKeys_.insert(unit.buildKey);
    }
    users.push_back(unit.index);
  }
}

bool CampaignExecutor::allowedLocked(const Unit& unit) const {
  return pairBreaker_.allows(unit.pairKey) &&
         partitionBreaker_.allows(unit.partitionKey);
}

CampaignExecContext::BuildRole CampaignExecutor::roleForLocked(
    const Unit& unit) const {
  using Role = CampaignExecContext::BuildRole;
  if (unit.buildKey.empty()) return Role::kDirect;
  if (warmKeys_.contains(unit.buildKey)) return Role::kCached;
  // First live user in canonical order leads; everyone later follows.
  // Units run in canonical order too (FIFO pool), so a follower's leader
  // has always at least started — no waiting on a never-scheduled build.
  for (const std::size_t index : users_.at(unit.buildKey)) {
    const Unit& candidate = units_[index];
    if (candidate.status == Unit::Status::kSkipped) continue;
    return index == unit.index ? Role::kLeader : Role::kFollower;
  }
  return Role::kLeader;
}

void CampaignExecutor::reconcileLocked() {
  while (frontier_ < units_.size()) {
    Unit& unit = units_[frontier_];
    if (unit.status == Unit::Status::kPending ||
        unit.status == Unit::Status::kRunning) {
      return;
    }
    const bool skipped = unit.status == Unit::Status::kSkipped;
    if (skipped && unit.crashed) {
      // Crash: the exception is propagating out of run(); nothing is
      // journaled, the frontier just moves past the wreck.
      ++frontier_;
      continue;
    }
    if (skipped || !allowedLocked(unit)) {
      // Quarantined under the canonical schedule.  A speculatively
      // executed result (status kDone) is discarded: the serial
      // executor would never have run it.
      unit.quarantined = true;
      unit.openKey = pairBreaker_.allows(unit.pairKey) ? unit.partitionKey
                                                       : unit.pairKey;
      ++report_->quarantined;
      if (journal_ != nullptr) {
        journal_->record(unit.test->name, unit.target, unit.repeat,
                         "quarantined", "quarantine", 0);
      }
    } else {
      ++report_->executed;
      const bool infra =
          !unit.result.passed &&
          unit.result.failure.klass == FailureClass::kInfrastructure;
      if (infra) {
        if (pairBreaker_.recordFailure(unit.pairKey)) {
          report_->quarantinedKeys.push_back(unit.pairKey);
        }
        if (partitionBreaker_.recordFailure(unit.partitionKey)) {
          report_->quarantinedKeys.push_back(unit.partitionKey);
        }
      } else {
        pairBreaker_.recordSuccess(unit.pairKey);
        partitionBreaker_.recordSuccess(unit.partitionKey);
      }
      if (journal_ != nullptr) {
        journal_->record(unit.test->name, unit.target, unit.repeat,
                         unit.result.passed ? "pass" : "fail",
                         unit.result.failure.stage, unit.result.attempts);
      }
    }
    ++frontier_;
  }
}

void CampaignExecutor::runUnit(Unit& unit, bool forceLeader) {
  unit.tracer = std::make_unique<obs::Tracer>();
  unit.metrics = std::make_unique<obs::MetricsRegistry>();
  unit.perfBuffer.clear();

  CampaignExecContext ctx;
  ctx.tracer = unit.tracer.get();
  ctx.metrics = unit.metrics.get();
  ctx.perfBuffer = perflog_ != nullptr ? &unit.perfBuffer : nullptr;
  if (!unit.buildKey.empty()) {
    ctx.singleFlight = &singleFlight_;
    if (forceLeader) {
      ctx.resolveBuildRole = [](std::uint64_t* epoch) {
        *epoch = 0;
        return CampaignExecContext::BuildRole::kLeader;
      };
    } else {
      ctx.resolveBuildRole = [this, &unit](std::uint64_t* epoch) {
        std::lock_guard lock(mutex_);
        const auto role = roleForLocked(unit);
        unit.executedRole = role;
        *epoch = singleFlight_.epoch(unit.buildKey);
        return role;
      };
    }
  }

  obs::ScopedSpan worker(ctx.tracer, "exec.worker");
  unit.workerSpanId = worker.id();
  unit.observedLane = ThreadPool::currentLane();
  worker.attr("campaign", std::to_string(unit.index));
  worker.attr("test", unit.test->name);
  worker.attr("target", unit.target);
  worker.attr("repeat", std::to_string(unit.repeat));
  // Live telemetry only: bus events never land in campaign artifacts,
  // so publishing from any worker at any interleaving is safe.
  telemetry::EventBus* bus = pipeline_.options_.bus;
  if (bus != nullptr) {
    bus->publish("exec", "", "campaign-start",
                 {{"test", unit.test->name},
                  {"target", unit.target},
                  {"repeat", std::to_string(unit.repeat)}});
  }
  unit.result = pipeline_.runCampaign(*unit.test, unit.target, unit.repeat,
                                      ctx);
  if (bus != nullptr) {
    bus->publish("exec", "", "campaign-finish",
                 {{"test", unit.test->name},
                  {"target", unit.target},
                  {"repeat", std::to_string(unit.repeat)},
                  {"outcome", unit.result.passed ? "pass" : "fail"}});
  }
  worker.end();
  if (ctx.metrics != nullptr) {
    ctx.metrics->counter("exec.campaigns").inc();
  }
}

void CampaignExecutor::executeUnit(Unit& unit) {
  {
    std::lock_guard lock(mutex_);
    reconcileLocked();
    if (frontier_ == unit.index && !allowedLocked(unit)) {
      // Authoritative skip: every earlier unit is reconciled, so the
      // breaker state is canonical and this tuple is quarantined for
      // real — never executed, and its key (if led by us) re-elected.
      unit.status = Unit::Status::kSkipped;
      if (!unit.buildKey.empty()) singleFlight_.abandon(unit.buildKey);
      reconcileLocked();
      return;
    }
    unit.status = Unit::Status::kRunning;
  }
  try {
    runUnit(unit, /*forceLeader=*/false);
  } catch (...) {
    std::lock_guard lock(mutex_);
    unit.status = Unit::Status::kSkipped;
    unit.crashed = true;
    if (!unit.buildKey.empty()) singleFlight_.abandon(unit.buildKey);
    reconcileLocked();
    throw;
  }
  std::lock_guard lock(mutex_);
  unit.status = Unit::Status::kDone;
  reconcileLocked();
}

void CampaignExecutor::stampProfileLanes() {
  // Same greedy list schedule the makespan model uses, but over the
  // jobs-invariant profileLanes width: each executed campaign, in
  // canonical order, lands on the virtual lane that frees up first.
  // The stamped attributes let `rebench profile` reconstruct the
  // schedule (lane chaining), its utilization and its critical path
  // from the trace alone.
  const std::size_t lanes = static_cast<std::size_t>(
      std::max(1, pipeline_.options_.profileLanes));
  std::vector<double> laneFree(lanes, 0.0);
  for (Unit& unit : units_) {
    if (unit.status != Unit::Status::kDone || unit.quarantined) continue;
    const auto earliest = std::min_element(laneFree.begin(), laneFree.end());
    const std::size_t lane =
        static_cast<std::size_t>(earliest - laneFree.begin());
    *earliest += unit.result.simulatedPipelineSeconds;
    if (!unit.tracer || unit.workerSpanId.empty()) continue;
    unit.tracer->annotateCompleted(unit.workerSpanId, "lane",
                                   std::to_string(lane));
    unit.tracer->annotateCompleted(
        unit.workerSpanId, "sim_seconds",
        str::fixed(unit.result.simulatedPipelineSeconds, 6));
  }
}

void CampaignExecutor::repairLeaderRoles() {
  using Role = CampaignExecContext::BuildRole;
  for (const auto& [key, userIndices] : users_) {
    if (warmKeys_.contains(key)) continue;
    // The canonical leader is the first accepted user.  A speculative
    // schedule may have let it run as a follower (its runtime leader was
    // later discarded as quarantined); re-execute it with a forced
    // leader role so its shard carries the bytes the serial schedule
    // would have produced.  Follower/cached shards are leader-agnostic,
    // so no one else needs repair.
    for (const std::size_t index : userIndices) {
      Unit& unit = units_[index];
      if (unit.status != Unit::Status::kDone || unit.quarantined) continue;
      if (unit.executedRole != Role::kLeader) {
        runUnit(unit, /*forceLeader=*/true);
      }
      break;
    }
  }
}

std::vector<TestRunResult> CampaignExecutor::run(
    std::span<const RegressionTest> tests,
    std::span<const std::string> targets, PerfLog* perflog,
    RunJournal* journal, CampaignReport* report) {
  CampaignReport local;
  perflog_ = perflog;
  journal_ = journal;
  report_ = report != nullptr ? report : &local;

  enumerate(tests, targets);
  classifyBuildKeys();

  // Workers record into per-campaign shards; the pipeline's store hooks
  // are detached for the duration so no store event can race onto the
  // main tracer mid-campaign (evictions re-surface after the merge).
  PipelineOptions& options = pipeline_.options_;
  if (options.store != nullptr) {
    options.store->setObservability(nullptr, nullptr);
  }

  if (jobs_ == 1 || units_.size() <= 1) {
    for (Unit& unit : units_) executeUnit(unit);
  } else {
    ThreadPool pool(std::min<std::size_t>(
        static_cast<std::size_t>(jobs_), units_.size()));
    TaskGroup group(pool);
    for (Unit& unit : units_) {
      group.run([this, &unit] { executeUnit(unit); });
    }
    group.wait();  // rethrows the first campaign crash, like serial did
  }
  repairLeaderRoles();
  stampProfileLanes();

  // ---- Canonical emission (single-threaded, suite order) ----------------
  std::vector<TestRunResult> results;
  results.reserve(units_.size());
  for (Unit& unit : units_) {
    if (unit.quarantined) {
      TestRunResult skipped;
      skipped.testName = unit.test->name;
      skipped.system = unit.systemName;
      skipped.partition = unit.partitionName;
      skipped.quarantined = true;
      skipped.passed = false;
      skipped.attempts = 0;
      skipped.failure = {"quarantine", FailureClass::kInfrastructure,
                         "circuit open for " + unit.openKey +
                             " after consecutive infrastructure failures"};
      if (options.tracer != nullptr) {
        options.tracer->event("fault.quarantine",
                              {{"key", unit.openKey},
                               {"test", unit.test->name},
                               {"target", unit.target}});
      }
      if (options.metrics != nullptr) {
        options.metrics->counter("fault.quarantined").inc();
      }
      results.push_back(std::move(skipped));
      continue;
    }
    if (options.tracer != nullptr && unit.tracer) {
      options.tracer->absorb(*unit.tracer);
    }
    if (options.metrics != nullptr && unit.metrics) {
      options.metrics->merge(*unit.metrics);
    }
    pipeline_.flushPerfBuffer(unit.perfBuffer, perflog_);
    results.push_back(std::move(unit.result));
  }

  if (options.store != nullptr) {
    options.store->setObservability(options.tracer, options.metrics);
  }

  // ---- Campaign-level accounting ----------------------------------------
  std::uint64_t deduped = 0;
  for (const auto& [key, userIndices] : users_) {
    if (warmKeys_.contains(key)) continue;
    std::size_t accepted = 0;
    for (const std::size_t index : userIndices) {
      const Unit& unit = units_[index];
      if (unit.status == Unit::Status::kDone && !unit.quarantined) {
        ++accepted;
      }
    }
    if (accepted == 0) continue;
    ++report_->uniqueBuilds;
    deduped += accepted - 1;
  }
  report_->dedupedBuilds += deduped;
  if (pipeline_.buildCache_ && deduped > 0) {
    pipeline_.buildCache_->noteSingleFlightDeduped(deduped);
  }
  // Simulated makespan: greedy list schedule of the executed campaigns
  // over `jobs` virtual workers, in canonical order.  The container this
  // runs in may have a single hardware core, so speedup claims are made
  // on the simulated timeline the pipeline already models.
  std::vector<double> workerBusy(static_cast<std::size_t>(jobs_), 0.0);
  for (const Unit& unit : units_) {
    if (unit.status != Unit::Status::kDone || unit.quarantined) continue;
    report_->simulatedSerialSeconds += unit.result.simulatedPipelineSeconds;
    auto earliest = std::min_element(workerBusy.begin(), workerBusy.end());
    *earliest += unit.result.simulatedPipelineSeconds;
  }
  report_->simulatedMakespanSeconds =
      *std::max_element(workerBusy.begin(), workerBusy.end());
  // Diagnostic only: which physical pool lanes the campaigns actually
  // landed on (−1 = a helping caller thread).  Scheduling-dependent by
  // nature, hence reported but never serialized.
  std::set<int> lanesSeen;
  for (const Unit& unit : units_) {
    if (unit.status != Unit::Status::kDone || unit.quarantined) continue;
    lanesSeen.insert(unit.observedLane);
  }
  report_->workerLanesTouched = lanesSeen.size();

  return results;
}

}  // namespace rebench
