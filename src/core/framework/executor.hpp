// Parallel campaign executor — stage-overlapped execution of independent
// (test, target, repeat) campaigns with deterministic, byte-identical
// output.
//
// Pipeline::runAll delegates here for every job count.  Campaigns are
// enumerated in canonical suite order (targets → matching tests →
// repeats) and executed on up to `jobs` workers; each campaign records
// into its *own* tracer/metrics/perflog shard, and the shards are merged
// back in canonical order once execution finishes.  Perflog, trace and
// manifest bytes are therefore independent of the job count and of the
// actual interleaving — parallelism never leaks into artefacts.
//
// Three mechanisms make that hold under adversarial scheduling:
//
//  * Single-flight builds.  A pre-pass concretizes every campaign
//    silently and groups campaigns by provenance cache key.  The first
//    live user of a cold key is its *leader* (builds once, publishes);
//    the rest are *followers* (block on the publication).  A leader that
//    is skipped or crashes abandons the key, which wakes followers to
//    re-elect.  Keys already verified in the store are *cached* — plain
//    lookups, no coordination.
//
//  * Canonical reconciliation.  Circuit-breaker decisions, journal
//    records and report counters are folded at a frontier that advances
//    strictly in suite order; campaigns that executed speculatively but
//    would have been quarantined under the canonical schedule are
//    discarded and replaced by synthesized quarantine results.
//
//  * Role repair.  When a speculative leader is later discarded, the
//    canonical leader (first accepted user of the key) re-executes with
//    a forced leader role so its shard carries leader-shaped bytes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "core/framework/pipeline.hpp"

namespace rebench {

class CampaignExecutor {
 public:
  /// `pipeline` must outlive the executor; `jobs` < 1 reads as 1.
  CampaignExecutor(Pipeline& pipeline, int jobs);

  /// Executes the full campaign; semantics and output bytes match
  /// Pipeline::runAll's contract for every job count.
  std::vector<TestRunResult> run(std::span<const RegressionTest> tests,
                                 std::span<const std::string> targets,
                                 PerfLog* perflog, RunJournal* journal,
                                 CampaignReport* report);

  /// Restricts enumeration to per-pair repeat windows (see
  /// Pipeline::runWindows).  Must be called before run(); `windows`
  /// must outlive it.  Pairs without an entry use `defaultWindow` when
  /// set and are skipped otherwise.
  void setWindows(const std::map<std::string, RepeatWindow>* windows,
                  std::optional<RepeatWindow> defaultWindow);

 private:
  struct Unit {
    std::size_t index = 0;
    const RegressionTest* test = nullptr;
    std::string target;
    std::string systemName;
    std::string partitionName;
    std::string pairKey;       // "test@system:partition"
    std::string partitionKey;  // "system:partition"
    int repeat = 0;
    std::string buildKey;  // provenance cache key; empty = no coordination

    enum class Status { kPending, kRunning, kDone, kSkipped };
    Status status = Status::kPending;
    bool crashed = false;      // skipped by exception, not by the breaker
    bool quarantined = false;  // canonical decision, set at reconcile time
    std::string openKey;       // breaker key that quarantined this unit
    CampaignExecContext::BuildRole executedRole =
        CampaignExecContext::BuildRole::kDirect;
    std::string workerSpanId;  // shard id of the exec.worker span
    int observedLane = -1;     // ThreadPool lane that ran us (diagnostic)

    // Per-campaign observability shards, merged canonically afterwards.
    std::unique_ptr<obs::Tracer> tracer;
    std::unique_ptr<obs::MetricsRegistry> metrics;
    std::vector<PerfLogEntry> perfBuffer;
    TestRunResult result;
  };

  void enumerate(std::span<const RegressionTest> tests,
                 std::span<const std::string> targets);
  void classifyBuildKeys();
  /// Stamps the canonical virtual-lane schedule (`lane`, `sim_seconds`)
  /// onto each executed unit's exec.worker span — the attribute contract
  /// `rebench profile` and trace_lint consume.  Runs single-threaded
  /// after the pool drains, before shards are absorbed; the schedule is
  /// a greedy list schedule over options.profileLanes virtual lanes in
  /// canonical order, so the stamps are independent of --jobs.
  void stampProfileLanes();
  void executeUnit(Unit& unit);
  void runUnit(Unit& unit, bool forceLeader);
  void repairLeaderRoles();
  /// Advances the canonical frontier over finished units, replaying the
  /// circuit breaker and writing journal/report entries in suite order.
  void reconcileLocked();
  bool allowedLocked(const Unit& unit) const;
  CampaignExecContext::BuildRole roleForLocked(const Unit& unit) const;

  Pipeline& pipeline_;
  int jobs_;
  const std::map<std::string, RepeatWindow>* windows_ = nullptr;
  std::optional<RepeatWindow> defaultWindow_;
  bool windowed_ = false;

  std::mutex mutex_;
  std::vector<Unit> units_;
  std::size_t frontier_ = 0;
  CircuitBreaker pairBreaker_;
  CircuitBreaker partitionBreaker_;
  store::SingleFlight singleFlight_;
  std::map<std::string, std::vector<std::size_t>> users_;  // key -> units
  std::set<std::string> warmKeys_;
  PerfLog* perflog_ = nullptr;
  RunJournal* journal_ = nullptr;
  CampaignReport* report_ = nullptr;
};

}  // namespace rebench
