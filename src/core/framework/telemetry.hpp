// System-state telemetry during benchmark runs — the paper's stated
// future work ("capture relevant parameters of the system state during
// the runtime of the benchmarks, such as network or filesystem usage
// levels or energy consumption", §4).
//
// A TelemetrySampler produces a deterministic time series of node-level
// state for a job: CPU utilisation, memory-interface pressure, network
// and filesystem background load, and package power.  On real systems
// this would wrap counters (RAPL, fabric/OST stats); here the series is
// synthesised from the machine model, the job's character and a
// noise stream keyed on the run — so every run's telemetry replays
// exactly, and the analysis code paths (summaries, perflog capture,
// contention flags) are fully exercised.
#pragma once

#include <string>
#include <vector>

#include "sim/machine.hpp"

namespace rebench {

/// One sample of node state.
struct TelemetrySample {
  double timeSeconds = 0.0;
  double cpuUtilisation = 0.0;      // 0..1
  double memoryBandwidthUtil = 0.0; // 0..1, fraction of stream-achievable
  double networkMBs = 0.0;          // background fabric traffic
  double filesystemMBs = 0.0;       // background parallel-FS traffic
  double powerWatts = 0.0;          // package power, whole node
};

struct TelemetrySeries {
  std::vector<TelemetrySample> samples;
  double intervalSeconds = 1.0;

  bool empty() const { return samples.empty(); }
  double duration() const;
  /// Trapezoidal integral of power over the series, joules.
  double energyJoules() const;
  double meanPowerWatts() const;
  double maxNetworkMBs() const;
  double maxFilesystemMBs() const;
};

/// Character of the job being sampled, used to shape the series.
struct WorkloadProfile {
  /// Fraction of time the job saturates the memory interface (streaming
  /// benchmarks ~0.9, compute-bound solvers lower).
  double memoryIntensity = 0.8;
  /// Fraction of cores the job keeps busy.
  double cpuIntensity = 1.0;
  /// MB/s of MPI traffic the job itself generates.
  double networkMBs = 0.0;
};

struct TelemetryOptions {
  double intervalSeconds = 1.0;
  /// Background (other users') load level, 0..1; models a shared system.
  double backgroundLoad = 0.1;
};

/// Samples `durationSeconds` of simulated node state for a job on
/// `machine`.  Identical (machine, profile, key) inputs give identical
/// series.
TelemetrySeries sampleTelemetry(const MachineModel& machine,
                                const WorkloadProfile& profile,
                                double durationSeconds,
                                const std::string& noiseKey,
                                const TelemetryOptions& options = {});

/// Flags samples where background traffic was high enough to perturb the
/// measurement — the audit signal the paper wants captured alongside
/// results.  Returns indices of contended samples.
std::vector<std::size_t> contendedSamples(const TelemetrySeries& series,
                                          double networkThresholdMBs = 500.0,
                                          double fsThresholdMBs = 300.0);

}  // namespace rebench
