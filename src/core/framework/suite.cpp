#include "core/framework/suite.hpp"

#include "core/util/strings.hpp"

namespace rebench {

void TestSuite::add(RegressionTest test, std::vector<std::string> tags) {
  tests_.push_back(TaggedTest{std::move(test), std::move(tags)});
}

std::vector<RegressionTest> TestSuite::select(
    std::string_view tag, std::string_view namePattern,
    std::string_view excludePattern) const {
  std::vector<RegressionTest> out;
  for (const TaggedTest& entry : tests_) {
    if (!tag.empty()) {
      bool tagged = false;
      for (const std::string& t : entry.tags) tagged |= t == tag;
      if (!tagged) continue;
    }
    if (!namePattern.empty() &&
        !str::contains(entry.test.name, namePattern)) {
      continue;
    }
    if (!excludePattern.empty() &&
        str::contains(entry.test.name, excludePattern)) {
      continue;
    }
    out.push_back(entry.test);
  }
  return out;
}

std::vector<std::string> TestSuite::testNames() const {
  std::vector<std::string> out;
  out.reserve(tests_.size());
  for (const TaggedTest& entry : tests_) out.push_back(entry.test.name);
  return out;
}

}  // namespace rebench
