#include "core/framework/suite.hpp"

#include "core/obs/trace.hpp"
#include "core/util/strings.hpp"

namespace rebench {

void TestSuite::add(RegressionTest test, std::vector<std::string> tags) {
  tests_.push_back(TaggedTest{std::move(test), std::move(tags)});
}

std::vector<RegressionTest> TestSuite::select(
    std::string_view tag, std::string_view namePattern,
    std::string_view excludePattern, obs::Tracer* tracer,
    obs::MetricsRegistry* metrics) const {
  obs::ScopedSpan span(tracer, "suite.select");
  span.attr("tag", tag);
  span.attr("name_pattern", namePattern);
  span.attr("exclude_pattern", excludePattern);

  std::vector<RegressionTest> out;
  for (const TaggedTest& entry : tests_) {
    bool keep = true;
    if (!tag.empty()) {
      bool tagged = false;
      for (const std::string& t : entry.tags) tagged |= t == tag;
      keep = tagged;
    }
    if (keep && !namePattern.empty() &&
        !str::contains(entry.test.name, namePattern)) {
      keep = false;
    }
    if (keep && !excludePattern.empty() &&
        str::contains(entry.test.name, excludePattern)) {
      keep = false;
    }
    if (metrics != nullptr) {
      metrics->counter(keep ? "suite.selected" : "suite.filtered_out").inc();
    }
    if (keep) out.push_back(entry.test);
  }
  span.attr("selected", std::to_string(out.size()));
  return out;
}

std::vector<std::string> TestSuite::testNames() const {
  std::vector<std::string> out;
  out.reserve(tests_.size());
  for (const TaggedTest& entry : tests_) out.push_back(entry.test.name);
  return out;
}

CampaignSummary summarizeCampaign(std::span<const TestRunResult> results) {
  CampaignSummary summary;
  summary.total = results.size();
  for (const TestRunResult& result : results) {
    if (result.quarantined) {
      ++summary.quarantined;
    } else if (result.passed) {
      ++summary.passed;
    } else {
      ++summary.failed;
    }
  }
  return summary;
}

std::string renderCampaignSummary(const CampaignSummary& summary,
                                  const CampaignReport* report) {
  std::string out = std::to_string(summary.passed) + "/" +
                    std::to_string(summary.total) + " passed\n";
  if (summary.quarantined > 0) {
    out += "quarantined: " + std::to_string(summary.quarantined) +
           " run(s) skipped by the circuit breaker";
    if (report != nullptr && !report->quarantinedKeys.empty()) {
      out += " (";
      for (std::size_t i = 0; i < report->quarantinedKeys.size(); ++i) {
        if (i > 0) out += ", ";
        out += report->quarantinedKeys[i];
      }
      out += ")";
    }
    out += "\n";
  }
  if (report != nullptr && report->skippedJournaled > 0) {
    out += "resume: " + std::to_string(report->skippedJournaled) +
           " tuple(s) already journaled, " +
           std::to_string(report->executed) + " executed\n";
  }
  return out;
}

}  // namespace rebench
