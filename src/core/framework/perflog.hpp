// Performance logs ("perflogs", §2.4).
//
// Every (test, system, partition, FOM) measurement is appended as one line
// of `key=value|key=value|...` records.  The format is append-only,
// greppable, and machine-parseable — the property Principle 6 needs so that
// assimilation of results from isolated systems is a concatenation, not a
// transcription.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/util/units.hpp"

namespace rebench {

struct PerfLogEntry {
  std::string timestamp;       // ISO-like or simulated-seconds stamp
  std::string frameworkVersion = "rebench-1.0.0";
  std::string system;
  std::string partition;
  std::string environ;         // "gcc@11.2.0"
  std::string testName;
  std::string spec;            // concretized short form
  std::string specHash;        // DAG hash (Principle 4)
  std::string binaryId;        // build provenance (Principle 3)
  std::string jobId;
  std::string fomName;
  double value = 0.0;
  Unit unit = Unit::kNone;
  std::optional<double> reference;
  double lowerThresh = 0.0;    // fractional, e.g. -0.05
  double upperThresh = 0.0;
  std::string result;          // "pass" | "fail" | "error"
  /// Free-form extras (num_tasks, array_size, ...).
  std::map<std::string, std::string> extras;

  std::string serialize() const;
  static PerfLogEntry parse(const std::string& line);
};

/// Collects perflog lines in memory and/or appends them to a file.
class PerfLog {
 public:
  PerfLog() = default;
  /// When `path` is non-empty every append is also written to the file.
  explicit PerfLog(std::string path);

  void append(const PerfLogEntry& entry);
  const std::vector<std::string>& lines() const { return lines_; }
  std::size_t size() const { return lines_.size(); }

  /// Reads a perflog file back into entries.
  static std::vector<PerfLogEntry> readFile(const std::string& path);
  static std::vector<PerfLogEntry> parseLines(
      const std::vector<std::string>& lines);

  /// Lenient variants for perflogs that survived crashes or corrupted
  /// stdout: unparseable lines are skipped and counted instead of
  /// aborting the whole read (the hygiene audit reports the count).
  struct LenientParse {
    std::vector<PerfLogEntry> entries;
    std::size_t corruptLines = 0;
  };
  static LenientParse readFileLenient(const std::string& path);
  static LenientParse parseLinesLenient(
      const std::vector<std::string>& lines);

 private:
  std::string path_;
  std::vector<std::string> lines_;
};

}  // namespace rebench
