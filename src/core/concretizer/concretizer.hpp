// The concretizer: turns an abstract Spec into a fully-pinned ConcreteSpec
// DAG against a package repository and a system environment.
//
// Behavioural model (the subset of Spack semantics the paper exercises):
//   * nodes are unified by package name across the DAG,
//   * virtuals ("mpi", "blas") are resolved via system preference, then
//     external availability, then repository registration order,
//   * under ReusePolicy::kPreferExternal a satisfying system external wins
//     over building a newer version from source — this is what makes
//     Table 3 come out with cray-mpich 8.1.23 on ARCHER2 rather than a
//     freshly built newest openmpi,
//   * every decision is appended to a human-readable trace, providing the
//     "archaeological reproducibility" of §2.2.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/concretizer/environment.hpp"
#include "core/pkg/recipe.hpp"
#include "core/spec/spec.hpp"

namespace rebench {

namespace obs {
class Tracer;
class MetricsRegistry;
}  // namespace obs

enum class ReusePolicy {
  kPreferExternal,  // Spack default on the paper's systems
  kPreferNewest,    // always build the newest satisfying version
};

struct ConcretizerOptions {
  ReusePolicy reuse = ReusePolicy::kPreferExternal;
  /// Optional observability hooks (both nullable): every decision is
  /// emitted as a `concretize.decision` trace event and counted per kind
  /// in the registry, in addition to the rendered trace below.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

struct ConcretizationResult {
  std::shared_ptr<const ConcreteSpec> root;
  /// One line per decision, in resolution order.
  std::vector<std::string> trace;
};

class Concretizer {
 public:
  Concretizer(const PackageRepository& repo, const SystemEnvironment& env,
              ConcretizerOptions options = {});

  /// Throws ConcretizationError when constraints cannot be met.
  ConcretizationResult concretize(const Spec& abstract) const;

 private:
  const PackageRepository& repo_;
  const SystemEnvironment& env_;
  ConcretizerOptions options_;
};

}  // namespace rebench
