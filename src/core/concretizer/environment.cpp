#include "core/concretizer/environment.hpp"

#include <algorithm>

#include "core/util/error.hpp"
#include "core/util/strings.hpp"

namespace rebench {

std::optional<CompilerEntry> SystemEnvironment::bestCompiler(
    std::string_view name, const VersionConstraint& c) const {
  std::optional<CompilerEntry> best;
  for (const CompilerEntry& entry : compilers) {
    if (entry.name != name || !c.satisfiedBy(entry.version)) continue;
    if (!best || best->version < entry.version) best = entry;
  }
  return best;
}

std::vector<const ExternalEntry*> SystemEnvironment::externalsNamed(
    std::string_view name) const {
  std::vector<const ExternalEntry*> out;
  for (const ExternalEntry& entry : externals) {
    if (entry.name == name) out.push_back(&entry);
  }
  std::sort(out.begin(), out.end(),
            [](const ExternalEntry* a, const ExternalEntry* b) {
              return b->version < a->version;
            });
  return out;
}

std::string SystemEnvironment::renderConfig() const {
  std::string out = "# rebench system environment (shareable, Principle 4)\n";
  out += "system: " + systemName + "\n";
  out += "default_compiler: " + defaultCompiler + "\n";
  out += "compilers:\n";
  for (const CompilerEntry& c : compilers) {
    out += "  - " + c.name + "@" + c.version.toString();
    if (!c.modules.empty()) out += "    # module: " + c.modules;
    out += "\n";
  }
  out += "externals:\n";
  for (const ExternalEntry& e : externals) {
    out += "  - spec: " + e.name + "@" + e.version.toString();
    if (!e.compilerName.empty()) {
      out += "%" + e.compilerName + "@" + e.compilerVersion.toString();
    }
    out += "\n    origin: " + e.origin + "\n";
  }
  if (!preferredProviders.empty()) {
    out += "preferred_providers:\n";
    for (const auto& [virtualName, providers] : preferredProviders) {
      out += "  " + virtualName + ": [";
      for (std::size_t i = 0; i < providers.size(); ++i) {
        if (i != 0) out += ", ";
        out += providers[i];
      }
      out += "]\n";
    }
  }
  return out;
}

SystemEnvironment parseEnvironmentConfig(const std::string& text) {
  SystemEnvironment env;
  enum class Section { kNone, kCompilers, kExternals, kProviders };
  Section section = Section::kNone;
  ExternalEntry* currentExternal = nullptr;

  auto parseCompilerSpec = [](std::string_view specText, std::string& name,
                              Version& version) {
    const std::size_t at = specText.find('@');
    if (at == std::string_view::npos) {
      throw ParseError("compiler entry missing '@version': '" +
                       std::string(specText) + "'");
    }
    name = std::string(specText.substr(0, at));
    version = Version::parse(specText.substr(at + 1));
  };

  for (const std::string& rawLine : str::split(text, '\n')) {
    // Strip comments ("# module: ..." decorations are informative).
    std::string comment;
    std::string line = rawLine;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      comment = std::string(str::trim(line.substr(hash + 1)));
      line = line.substr(0, hash);
    }
    const std::string_view trimmed = str::trim(line);
    if (trimmed.empty()) continue;

    if (str::startsWith(trimmed, "system:")) {
      env.systemName = std::string(str::trim(trimmed.substr(7)));
      section = Section::kNone;
    } else if (str::startsWith(trimmed, "default_compiler:")) {
      env.defaultCompiler = std::string(str::trim(trimmed.substr(17)));
      section = Section::kNone;
    } else if (trimmed == "compilers:") {
      section = Section::kCompilers;
    } else if (trimmed == "externals:") {
      section = Section::kExternals;
    } else if (trimmed == "preferred_providers:") {
      section = Section::kProviders;
    } else if (str::startsWith(trimmed, "- ") ||
               str::startsWith(trimmed, "-")) {
      std::string_view item = str::trim(trimmed.substr(1));
      if (section == Section::kCompilers) {
        CompilerEntry entry;
        parseCompilerSpec(item, entry.name, entry.version);
        if (str::startsWith(comment, "module:")) {
          entry.modules = std::string(str::trim(comment.substr(7)));
        }
        env.compilers.push_back(std::move(entry));
      } else if (section == Section::kExternals) {
        if (!str::startsWith(item, "spec:")) {
          throw ParseError("external entry must start with 'spec:'");
        }
        const std::string specText(str::trim(item.substr(5)));
        ExternalEntry entry;
        const std::size_t percent = specText.find('%');
        const std::string base = percent == std::string::npos
                                     ? specText
                                     : specText.substr(0, percent);
        parseCompilerSpec(base, entry.name, entry.version);
        if (percent != std::string::npos) {
          parseCompilerSpec(specText.substr(percent + 1),
                            entry.compilerName, entry.compilerVersion);
        }
        env.externals.push_back(std::move(entry));
        currentExternal = &env.externals.back();
      } else {
        throw ParseError("list item outside a section: '" +
                         std::string(trimmed) + "'");
      }
    } else if (str::startsWith(trimmed, "origin:")) {
      if (currentExternal == nullptr) {
        throw ParseError("'origin:' with no preceding external");
      }
      currentExternal->origin = std::string(str::trim(trimmed.substr(7)));
    } else if (section == Section::kProviders) {
      const std::size_t colon = trimmed.find(':');
      if (colon == std::string_view::npos) {
        throw ParseError("malformed provider line: '" +
                         std::string(trimmed) + "'");
      }
      const std::string virtualName(str::trim(trimmed.substr(0, colon)));
      std::string_view rest = str::trim(trimmed.substr(colon + 1));
      if (rest.size() < 2 || rest.front() != '[' || rest.back() != ']') {
        throw ParseError("provider list must be [a, b]: '" +
                         std::string(trimmed) + "'");
      }
      rest = rest.substr(1, rest.size() - 2);
      std::vector<std::string> providers;
      for (const std::string& provider : str::split(rest, ',')) {
        const std::string_view cleaned = str::trim(provider);
        if (!cleaned.empty()) providers.emplace_back(cleaned);
      }
      env.preferredProviders[virtualName] = std::move(providers);
    } else {
      throw ParseError("unrecognised environment line: '" +
                       std::string(trimmed) + "'");
    }
  }
  return env;
}

}  // namespace rebench
