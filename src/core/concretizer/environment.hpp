// The per-system software environment visible to the concretizer:
// installed compilers, external packages (modules / vendor stacks), and
// provider preferences.  This is the C++ analogue of the per-system Spack
// configuration files the Benchmarking Framework ships (Principle 4).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/spec/spec.hpp"
#include "core/util/version.hpp"

namespace rebench {

/// A compiler installed on the system (module or OS toolchain).
struct CompilerEntry {
  std::string name;     // "gcc", "oneapi", "cce", ...
  Version version;
  std::string modules;  // informational, e.g. "PrgEnv-gnu/8.3.3"
};

/// A package pre-installed on the system the concretizer may reuse instead
/// of building.  Externals are opaque: they carry no dependency subtree.
struct ExternalEntry {
  std::string name;
  Version version;
  std::map<std::string, VariantValue> variants;
  std::string origin;  // module name or prefix, e.g. "cray-mpich/8.1.23"
  /// Compiler the external was built with, when known.
  std::string compilerName;
  Version compilerVersion;
};

/// Complete environment for one system (or partition).
struct SystemEnvironment {
  std::string systemName;
  std::vector<CompilerEntry> compilers;
  std::vector<ExternalEntry> externals;
  /// Provider preference per virtual, e.g. {"mpi" -> {"cray-mpich"}}.
  std::map<std::string, std::vector<std::string>> preferredProviders;
  /// Compiler used when the spec names none.
  std::string defaultCompiler = "gcc";

  /// Highest installed version of compiler `name` satisfying `c`.
  std::optional<CompilerEntry> bestCompiler(std::string_view name,
                                            const VersionConstraint& c) const;

  /// Externals with package name `name`, best (highest) version first.
  std::vector<const ExternalEntry*> externalsNamed(
      std::string_view name) const;

  /// Renders the environment as a shareable, YAML-shaped configuration
  /// document — the per-system Spack-configuration artefact the
  /// Benchmarking Framework ships (Principle 4's "captured steps").
  std::string renderConfig() const;
};

/// Parses a document produced by renderConfig() (adding a system without
/// recompiling: write the file, load it, benchmark).  Round-trip
/// guarantee: parse(render(env)) == env for the captured fields.
/// Throws ParseError on malformed input.
SystemEnvironment parseEnvironmentConfig(const std::string& text);

}  // namespace rebench
