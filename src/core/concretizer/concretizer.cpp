#include "core/concretizer/concretizer.hpp"

#include <algorithm>

#include "core/obs/trace.hpp"
#include "core/util/error.hpp"

namespace rebench {

namespace {

/// One concretization run; holds the per-run memo tables.
class Solver {
 public:
  Solver(const PackageRepository& repo, const SystemEnvironment& env,
         const ConcretizerOptions& options)
      : repo_(repo), env_(env), options_(options) {}

  ConcretizationResult solve(const Spec& abstract) {
    // User ^constraints apply to the named node wherever it appears.
    for (const Spec& dep : abstract.dependencies()) {
      auto [it, inserted] = userConstraints_.try_emplace(dep.name(), dep);
      if (!inserted) it->second.constrain(dep);
    }

    Spec rootRequest = abstract;  // without altering caller's object
    auto root = resolve(rootRequest, /*inheritedCompiler=*/nullptr);

    // ^constraints that no dependency edge reached become direct deps of
    // the root (Spack attaches unreached user deps the same way).
    for (const auto& [name, constraint] : userConstraints_) {
      if (resolved_.find(resolveVirtualName(name)) == resolved_.end() &&
          resolved_.find(name) == resolved_.end()) {
        Spec request = constraint;
        auto node = resolve(request, &rootCompilerPin_);
        std::const_pointer_cast<ConcreteSpec>(root)->dependencies[node->name] =
            node;
        decide("concretizer.user_deps", "attached user dependency ^" + node->shortForm());
      }
    }
    return ConcretizationResult{root, std::move(trace_)};
  }

 private:
  /// Records one concretizer decision: appended to the rendered trace
  /// (the compatibility view on TestRunResult) and, when observability is
  /// attached, emitted as a trace event and counted per decision kind.
  void decide(std::string_view kindCounter, std::string line) {
    if (options_.metrics != nullptr) {
      options_.metrics->counter("concretizer.decisions").inc();
      options_.metrics->counter(kindCounter).inc();
    }
    if (options_.tracer != nullptr) {
      options_.tracer->event("concretize.decision", {{"decision", line}});
    }
    trace_.push_back(std::move(line));
  }

  std::string resolveVirtualName(const std::string& name) const {
    if (!repo_.isVirtual(name)) return name;
    // Preference order: system preference, then (under kPreferExternal)
    // a provider with a system external, then registration order.
    const std::vector<std::string> candidates = repo_.providersOf(name);
    auto pref = env_.preferredProviders.find(name);
    if (pref != env_.preferredProviders.end()) {
      for (const std::string& wanted : pref->second) {
        if (std::find(candidates.begin(), candidates.end(), wanted) !=
            candidates.end()) {
          return wanted;
        }
      }
    }
    if (options_.reuse == ReusePolicy::kPreferExternal) {
      for (const std::string& candidate : candidates) {
        if (!env_.externalsNamed(candidate).empty()) return candidate;
      }
    }
    if (candidates.empty()) {
      throw ConcretizationError("no provider for virtual '" + name + "'");
    }
    return candidates.front();
  }

  /// Chooses the concrete compiler for a node.
  CompilerEntry chooseCompiler(const Spec& effective,
                               const CompilerSpec* inherited,
                               const std::string& forPackage) {
    CompilerSpec want;
    if (effective.compiler()) {
      want = *effective.compiler();
    } else if (inherited) {
      want = *inherited;
    } else {
      want.name = env_.defaultCompiler;
    }
    auto best = env_.bestCompiler(want.name, want.versions);
    if (!best) {
      throw ConcretizationError(
          "no installed compiler satisfies %" + want.name +
          (want.versions.isAny() ? "" : "@" + want.versions.toString()) +
          " for package '" + forPackage + "' on system '" + env_.systemName +
          "'");
    }
    return *best;
  }

  /// Tries to reuse a system external for `effective`; null when none fits.
  std::shared_ptr<ConcreteSpec> tryExternal(const Spec& effective,
                                            const std::string& name) {
    if (options_.reuse != ReusePolicy::kPreferExternal) return nullptr;
    for (const ExternalEntry* ext : env_.externalsNamed(name)) {
      if (!effective.versions().satisfiedBy(ext->version)) continue;
      bool variantsOk = true;
      for (const auto& [key, value] : effective.variants()) {
        auto it = ext->variants.find(key);
        if (it == ext->variants.end() || it->second != value) {
          variantsOk = false;
          break;
        }
      }
      if (!variantsOk) continue;
      if (effective.compiler() && !ext->compilerName.empty()) {
        if (ext->compilerName != effective.compiler()->name ||
            !effective.compiler()->versions.satisfiedBy(
                ext->compilerVersion)) {
          continue;
        }
      }
      auto node = std::make_shared<ConcreteSpec>();
      node->name = name;
      node->version = ext->version;
      node->variants = ext->variants;
      node->external = true;
      node->externalOrigin = ext->origin;
      node->compilerName = ext->compilerName;
      node->compilerVersion = ext->compilerVersion;
      decide("concretizer.externals_reused", "reused external " +
                                                 node->shortForm() + " (" +
                                                 ext->origin + ")");
      return node;
    }
    return nullptr;
  }

  std::shared_ptr<const ConcreteSpec> resolve(
      const Spec& request, const CompilerSpec* inheritedCompiler) {
    const std::string name = resolveVirtualName(request.name());
    if (name != request.name()) {
      decide("concretizer.virtual_resolutions",
             "virtual '" + request.name() + "' -> provider '" + name + "'");
    }

    Spec effective = request;
    // Renaming a virtual request: rebuild with the provider name.
    if (name != request.name()) {
      Spec renamed(name);
      renamed.setVersions(request.versions());
      if (request.compiler()) renamed.setCompiler(*request.compiler());
      for (const auto& [key, value] : request.variants()) {
        renamed.setVariant(key, value);
      }
      effective = std::move(renamed);
    }
    if (auto it = userConstraints_.find(name); it != userConstraints_.end()) {
      effective.constrain(it->second);
    }

    if (auto it = resolved_.find(name); it != resolved_.end()) {
      if (!it->second->satisfiesNode(effective)) {
        throw ConcretizationError(
            "package '" + name + "' already concretized as " +
            it->second->shortForm() + " which does not satisfy '" +
            effective.toString() + "'");
      }
      return it->second;
    }

    if (std::find(stack_.begin(), stack_.end(), name) != stack_.end()) {
      throw ConcretizationError("dependency cycle through '" + name + "'");
    }
    stack_.push_back(name);

    std::shared_ptr<ConcreteSpec> node = tryExternal(effective, name);
    if (!node) {
      const PackageRecipe& recipe = repo_.get(name);
      const CompilerEntry compiler =
          chooseCompiler(effective, inheritedCompiler, name);

      auto version = recipe.bestVersion(effective.versions());
      if (!version) {
        throw ConcretizationError(
            "no version of '" + name + "' satisfies @" +
            effective.versions().toString());
      }

      node = std::make_shared<ConcreteSpec>();
      node->name = name;
      node->version = *version;
      node->compilerName = compiler.name;
      node->compilerVersion = compiler.version;

      // Variants: recipe defaults, overridden by the request.
      for (const VariantDef& def : recipe.variants()) {
        node->variants[def.name] = def.defaultValue;
      }
      for (const auto& [key, value] : effective.variants()) {
        const VariantDef* def = recipe.findVariant(key);
        if (def == nullptr) {
          throw ConcretizationError("package '" + name +
                                    "' has no variant '" + key + "'");
        }
        if (const std::string* s = std::get_if<std::string>(&value)) {
          if (!def->allowedValues.empty() &&
              std::find(def->allowedValues.begin(), def->allowedValues.end(),
                        *s) == def->allowedValues.end()) {
            throw ConcretizationError("value '" + *s +
                                      "' not allowed for variant '" + key +
                                      "' of '" + name + "'");
          }
        }
        node->variants[key] = value;
      }

      // Declared incompatibilities (Spack conflicts()): a node that
      // satisfies the conflict spec cannot be built.
      for (const ConflictDef& conflict : recipe.conflicts()) {
        if (node->satisfiesNode(conflict.when)) {
          throw ConcretizationError("package '" + name + "' conflicts with " +
                                    conflict.when.toString() + ": " +
                                    conflict.reason);
        }
      }

      decide("concretizer.builds", "build " + node->shortForm());

      // Register before descending so children unify with this node.
      resolved_[name] = node;

      CompilerSpec pin{compiler.name,
                       VersionConstraint::exactly(compiler.version)};
      if (stack_.size() == 1) rootCompilerPin_ = pin;

      for (const DependencyDef& dep : recipe.dependencies()) {
        if (dep.when) {
          auto it = node->variants.find(dep.when->first);
          if (it == node->variants.end() || it->second != dep.when->second) {
            continue;
          }
        }
        auto child = resolve(dep.spec, &pin);
        node->dependencies[child->name] = child;
      }
    } else {
      resolved_[name] = node;
      if (stack_.size() == 1 && !node->compilerName.empty()) {
        rootCompilerPin_ =
            CompilerSpec{node->compilerName,
                         VersionConstraint::exactly(node->compilerVersion)};
      }
    }

    stack_.pop_back();
    return node;
  }

  const PackageRepository& repo_;
  const SystemEnvironment& env_;
  const ConcretizerOptions& options_;
  std::map<std::string, Spec> userConstraints_;
  std::map<std::string, std::shared_ptr<ConcreteSpec>> resolved_;
  std::vector<std::string> stack_;
  std::vector<std::string> trace_;
  CompilerSpec rootCompilerPin_;
};

}  // namespace

Concretizer::Concretizer(const PackageRepository& repo,
                         const SystemEnvironment& env,
                         ConcretizerOptions options)
    : repo_(repo), env_(env), options_(options) {}

ConcretizationResult Concretizer::concretize(const Spec& abstract) const {
  if (abstract.name().empty()) {
    throw ConcretizationError("cannot concretize an anonymous spec");
  }
  Solver solver(repo_, env_, options_);
  return solver.solve(abstract);
}

}  // namespace rebench
