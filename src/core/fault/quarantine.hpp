// Circuit breaker / quarantine (rebench::fault).
//
// When a (test, target) pair — or a whole partition — keeps dying of
// infrastructure failures, rerunning the remaining work only burns
// allocation and floods the campaign with cascading errors.  The breaker
// counts *consecutive* infrastructure failures per key and opens once a
// threshold is reached; callers skip open keys and report them as
// quarantined entries instead of failures.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace rebench {

struct BreakerOptions {
  /// Consecutive infrastructure failures before a (test, target) pair is
  /// quarantined.
  int pairThreshold = 3;
  /// Consecutive infrastructure failures (across all tests) before a
  /// whole system:partition is quarantined.
  int partitionThreshold = 8;
};

/// Generic consecutive-failure breaker over string keys.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(int threshold) : threshold_(threshold) {}

  /// False once `key` has accumulated `threshold` consecutive failures.
  bool allows(std::string_view key) const;

  /// Records an infrastructure failure; returns true when this failure
  /// opened the circuit for `key`.
  bool recordFailure(std::string_view key);

  /// Any non-infrastructure outcome resets the consecutive counter.
  void recordSuccess(std::string_view key);

  int consecutiveFailures(std::string_view key) const;

  /// Keys whose circuit is open, in lexicographic order.
  std::vector<std::string> openKeys() const;

  int threshold() const { return threshold_; }

 private:
  int threshold_;
  std::map<std::string, int, std::less<>> consecutive_;
};

}  // namespace rebench
