#include "core/fault/failure.hpp"

#include "core/util/strings.hpp"

namespace rebench {

std::string_view failureClassName(FailureClass klass) {
  switch (klass) {
    case FailureClass::kTransient: return "transient";
    case FailureClass::kPermanent: return "permanent";
    case FailureClass::kInfrastructure: return "infrastructure";
  }
  return "?";
}

FailureClass classifyFailure(std::string_view stage, std::string_view detail) {
  // Configuration bugs: the same inputs will fail the same way forever.
  if (stage == "concretize" || stage == "submit") {
    return FailureClass::kPermanent;
  }
  // Simulated builds only fail when the injector flakes them; a real
  // build system would distinguish compiler ICEs (transient) from
  // compile errors (permanent) here.
  if (stage == "build") {
    return str::contains(detail, "injected") ? FailureClass::kTransient
                                             : FailureClass::kPermanent;
  }
  if (stage == "run") {
    // Scheduler-side failures carry the final job-state name.
    if (str::contains(detail, "NODE_FAIL") ||
        str::contains(detail, "TIMEOUT") ||
        str::contains(detail, "CANCELLED")) {
      return FailureClass::kInfrastructure;
    }
    // A crashed payload (job state FAILED) is worth another attempt;
    // anything else — launch failures such as an unsupported programming
    // model, unschedulable geometry — is permanent.
    if (detail == "FAILED") return FailureClass::kTransient;
    return FailureClass::kPermanent;
  }
  // Sanity/performance-pattern failures are output-parsing problems:
  // truncated or corrupted stdout, partial logs.  Retry.
  if (stage == "sanity" || stage == "performance") {
    return FailureClass::kTransient;
  }
  // Out-of-reference FOMs are data, not noise — never retried away.
  if (stage == "reference") return FailureClass::kPermanent;
  if (stage == "quarantine") return FailureClass::kInfrastructure;
  return FailureClass::kPermanent;
}

}  // namespace rebench
