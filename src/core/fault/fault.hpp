// Deterministic fault injection (rebench::fault).
//
// A FaultInjector turns a seeded FaultConfig into per-site, per-key fault
// decisions.  Every decision is drawn from an Rng derived from
// (seed, site, key) alone — never from shared mutable state — so the
// decisions are independent of evaluation order and identical seed +
// config yields byte-identical traces and perflogs, which is what makes
// resilience behaviour testable at all.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rebench {

/// Probabilities of each modelled failure mode, all in [0, 1].
/// All-zero (the default) disables injection entirely.
struct FaultConfig {
  std::uint64_t seed = 0;
  /// Transient job crash: the payload dies mid-run (job state FAILED).
  double jobCrashProb = 0.0;
  /// Node failure: kills the running job and drains the node.
  double nodeFailProb = 0.0;
  /// Scheduler preemption: the job is requeued once and rerun.
  double preemptProb = 0.0;
  /// Transient build failure (flaky compiler / filesystem).
  double buildFlakeProb = 0.0;
  /// Corrupts the job's stdout at a random offset (sanity/FOM loss).
  double stdoutCorruptProb = 0.0;
  /// Drops the telemetry capture for the run.
  double telemetryDropProb = 0.0;

  bool enabled() const {
    return jobCrashProb > 0.0 || nodeFailProb > 0.0 || preemptProb > 0.0 ||
           buildFlakeProb > 0.0 || stdoutCorruptProb > 0.0 ||
           telemetryDropProb > 0.0;
  }

  /// Parses "seed=42,crash=0.2,node=0.1,preempt=0.1,build=0.2,
  /// corrupt=0.1,teldrop=0.1" (any subset; unknown keys throw ParseError,
  /// probabilities outside [0,1] throw ParseError).
  static FaultConfig parse(std::string_view spec);
};

/// Resolves --faults arguments: if `arg` names a readable file its
/// contents are parsed (one or more key=value lines, '#' comments),
/// otherwise `arg` itself is parsed as an inline spec.
FaultConfig loadFaultConfig(const std::string& arg);

/// What (if anything) happens to a submitted job.  At most one job-level
/// fault fires per attempt; the probabilities partition one uniform draw.
struct JobFaultDecision {
  enum class Kind { kNone, kNodeFailure, kPreemption, kCrash };
  Kind kind = Kind::kNone;
  /// Fraction of the job's runtime at which the fault strikes.
  double atFraction = 0.5;
};

std::string_view jobFaultKindName(JobFaultDecision::Kind kind);

class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config) : config_(config) {}

  const FaultConfig& config() const { return config_; }

  /// `key` identifies the attempt: "test|target|repeat|attempt".  Each
  /// site draws from its own stream, so adding a new site never perturbs
  /// existing decisions.
  bool buildFlake(std::string_view key) const;
  JobFaultDecision jobFault(std::string_view key) const;
  bool corruptStdout(std::string_view key) const;
  bool dropTelemetry(std::string_view key) const;

  /// Deterministically corrupts `text`: truncates at a key-derived offset
  /// and appends a corruption marker, modelling a half-written log.
  std::string corruptText(const std::string& text,
                          std::string_view key) const;

 private:
  double draw(std::string_view site, std::string_view key) const;

  FaultConfig config_;
};

}  // namespace rebench
