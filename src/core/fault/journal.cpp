#include "core/fault/journal.hpp"

#include <filesystem>
#include <fstream>

#include "core/obs/json.hpp"
#include "core/util/error.hpp"
#include "core/util/strings.hpp"

namespace rebench {

std::string RunJournal::pathFor(const std::string& dir) {
  return (std::filesystem::path(dir) / "journal.jsonl").string();
}

std::string RunJournal::key(std::string_view test, std::string_view target,
                            int repeat) {
  return std::string(test) + "\x1f" + std::string(target) + "\x1f" +
         std::to_string(repeat);
}

RunJournal::RunJournal(const std::string& dir) : path_(pathFor(dir)) {
  std::filesystem::create_directories(dir);
  if (!std::filesystem::exists(path_)) {
    std::ofstream out(path_);
    if (!out) throw Error("cannot create run journal '" + path_ + "'");
    out << "{\"kind\":\"meta\",\"schema\":"
        << obs::json::quote(kJournalSchema) << "}\n";
    return;
  }
  std::ifstream in(path_);
  if (!in) throw Error("cannot read run journal '" + path_ + "'");
  std::string line;
  while (std::getline(in, line)) {
    if (str::trim(line).empty()) continue;
    obs::json::Value record;
    try {
      record = obs::json::parse(line);
    } catch (const ParseError&) {
      // A killed campaign may leave a truncated final line; skipping it
      // just reruns that one tuple.
      ++corruptLines_;
      continue;
    }
    if (!record.isObject() || record.stringOr("kind", "") != "run") continue;
    keys_.insert(key(record.stringOr("test", ""),
                     record.stringOr("target", ""),
                     static_cast<int>(record.numberOr("repeat", 0))));
  }
}

bool RunJournal::contains(std::string_view test, std::string_view target,
                          int repeat) const {
  return keys_.count(key(test, target, repeat)) > 0;
}

void RunJournal::record(std::string_view test, std::string_view target,
                        int repeat, std::string_view outcome,
                        std::string_view stage, int attempts) {
  std::ofstream out(path_, std::ios::app);
  if (!out) throw Error("cannot append to run journal '" + path_ + "'");
  out << "{\"kind\":\"run\",\"test\":" << obs::json::quote(test)
      << ",\"target\":" << obs::json::quote(target)
      << ",\"repeat\":" << repeat
      << ",\"outcome\":" << obs::json::quote(outcome)
      << ",\"stage\":" << obs::json::quote(stage)
      << ",\"attempts\":" << attempts << "}\n";
  keys_.insert(key(test, target, repeat));
}

}  // namespace rebench
