#include "core/fault/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <vector>

#include "core/obs/json.hpp"
#include "core/util/error.hpp"
#include "core/util/strings.hpp"

namespace rebench {

namespace {

/// Writes all of `bytes` to `fd`, retrying short writes.
void writeAll(int fd, const std::string& path, std::string_view bytes) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      ::close(fd);
      throw Error("cannot write journal '" + path + "'");
    }
    written += static_cast<std::size_t>(n);
  }
}

}  // namespace

void durableAppendLine(const std::string& path, std::string_view line) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw Error("cannot open journal '" + path + "' for append");
  }
  std::string bytes(line);
  if (bytes.empty() || bytes.back() != '\n') bytes += '\n';
  writeAll(fd, path, bytes);
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw Error("cannot fsync journal '" + path + "'");
  }
  ::close(fd);
}

void durableWriteFile(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw Error("cannot create file '" + tmp + "'");
  writeAll(fd, tmp, bytes);
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw Error("cannot fsync file '" + tmp + "'");
  }
  ::close(fd);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw Error("cannot rename '" + tmp + "' to '" + path +
                "': " + ec.message());
  }
}

std::string RunJournal::pathFor(const std::string& dir) {
  return (std::filesystem::path(dir) / "journal.jsonl").string();
}

std::string RunJournal::key(std::string_view test, std::string_view target,
                            int repeat) {
  return std::string(test) + "\x1f" + std::string(target) + "\x1f" +
         std::to_string(repeat);
}

RunJournal::RunJournal(const std::string& dir) : path_(pathFor(dir)) {
  std::filesystem::create_directories(dir);
  if (!std::filesystem::exists(path_)) {
    durableAppendLine(path_, "{\"kind\":\"meta\",\"schema\":" +
                                 obs::json::quote(kJournalSchema) + "}");
    return;
  }
  std::ifstream in(path_);
  if (!in) throw Error("cannot read run journal '" + path_ + "'");
  std::string line;
  std::vector<std::string> intact;
  while (std::getline(in, line)) {
    if (str::trim(line).empty()) continue;
    obs::json::Value record;
    try {
      record = obs::json::parse(line);
    } catch (const ParseError&) {
      // A killed campaign may leave a truncated final line; dropping it
      // just reruns that one tuple.
      ++corruptLines_;
      continue;
    }
    intact.push_back(line);
    if (!record.isObject() || record.stringOr("kind", "") != "run") continue;
    keys_.insert(key(record.stringOr("test", ""),
                     record.stringOr("target", ""),
                     static_cast<int>(record.numberOr("repeat", 0))));
  }
  in.close();
  if (corruptLines_ > 0) {
    // Truncate the torn tail so the file is parseable end to end again;
    // the next append lands after the last intact record.
    std::string rewritten;
    for (const std::string& keep : intact) {
      rewritten += keep;
      rewritten += '\n';
    }
    durableWriteFile(path_, rewritten);
  }
}

bool RunJournal::contains(std::string_view test, std::string_view target,
                          int repeat) const {
  return keys_.count(key(test, target, repeat)) > 0;
}

void RunJournal::record(std::string_view test, std::string_view target,
                        int repeat, std::string_view outcome,
                        std::string_view stage, int attempts) {
  durableAppendLine(
      path_, "{\"kind\":\"run\",\"test\":" + obs::json::quote(test) +
                 ",\"target\":" + obs::json::quote(target) +
                 ",\"repeat\":" + std::to_string(repeat) +
                 ",\"outcome\":" + obs::json::quote(outcome) +
                 ",\"stage\":" + obs::json::quote(stage) +
                 ",\"attempts\":" + std::to_string(attempts) + "}");
  keys_.insert(key(test, target, repeat));
}

}  // namespace rebench
