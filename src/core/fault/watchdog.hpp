// Deadline watchdogs (rebench::fault).
//
// A permanently hung stage — a job the scheduler never finishes, a build
// that spins forever — must not block an executor lane (or the serve
// daemon) indefinitely, and it must not be *retried*: retrying a hang
// just hangs again.  The watchdog therefore turns a stage that exceeds
// its (simulated) wall-clock deadline into a classified
// FailureClass::kInfrastructure failure, which the retry ladder refuses
// to retry and the circuit breaker counts toward quarantine.  The same
// policy caps the retry ladder itself: when the cumulative backoff for a
// stage would blow its deadline, the transient failure is promoted to
// infrastructure instead of backing off forever.
//
// Deadlines are expressed in simulated seconds (the only clock modelled
// runs have), so watchdog decisions are byte-deterministic like every
// other pipeline outcome.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "core/fault/failure.hpp"

namespace rebench {

struct WatchdogPolicy {
  /// Default simulated-seconds deadline per pipeline stage; <= 0 means no
  /// deadline.  (--stage-timeout)
  double stageTimeoutSeconds = -1.0;
  /// Per-stage overrides keyed by stage name ("build", "run", ...).
  std::map<std::string, double, std::less<>> stageOverrides;

  bool enabled() const;
  /// Deadline for `stage` (override, else default); <= 0 = none.
  double limitFor(std::string_view stage) const;
};

/// One deadline violation.
struct WatchdogFire {
  std::string stage;
  double limitSeconds = 0.0;
  double elapsedSeconds = 0.0;

  /// The classified failure a fired watchdog becomes: infrastructure —
  /// the platform hung, not the test — so it is never retried in place
  /// and feeds the quarantine circuit breaker.
  FailureInfo failure() const;
};

/// Checks one stage's elapsed simulated seconds against the policy;
/// nullopt when the stage finished within its deadline (or has none).
std::optional<WatchdogFire> checkStageDeadline(const WatchdogPolicy& policy,
                                               std::string_view stage,
                                               double elapsedSeconds);

/// Stateful wrapper counting fires — the serve daemon's health snapshot
/// reports how often its watchdogs tripped.
class StageWatchdog {
 public:
  explicit StageWatchdog(WatchdogPolicy policy) : policy_(std::move(policy)) {}

  std::optional<WatchdogFire> check(std::string_view stage,
                                    double elapsedSeconds);

  std::size_t fires() const { return fires_; }
  const WatchdogPolicy& policy() const { return policy_; }

 private:
  WatchdogPolicy policy_;
  std::size_t fires_ = 0;
};

}  // namespace rebench
