// Failure taxonomy (rebench::fault).
//
// Real benchmarking campaigns fail in qualitatively different ways: a
// mistyped spec will fail forever, a flaky build or a garbled stdout line
// will succeed on retry, and a dying node says nothing about the test but
// a lot about the partition.  The pipeline therefore records *classified*
// failures instead of bare strings: only transients are worth retrying,
// and only infrastructure failures feed the quarantine circuit breaker.
#pragma once

#include <string>
#include <string_view>

namespace rebench {

enum class FailureClass {
  /// Retrying may succeed: job crash, flaky build, corrupted output.
  kTransient,
  /// Retrying cannot succeed: configuration bugs, unsupported targets,
  /// genuine performance regressions.
  kPermanent,
  /// The platform, not the test, is at fault: node failures, timeouts,
  /// cancelled jobs.  Not retried in place; counted by the circuit
  /// breaker so a sick partition is quarantined instead of hammered.
  kInfrastructure,
};

std::string_view failureClassName(FailureClass klass);

/// Structured replacement for the old failureStage/failureDetail strings
/// on TestRunResult.
struct FailureInfo {
  std::string stage;  // empty on success; else concretize|build|submit|
                      // run|sanity|performance|reference|quarantine
  FailureClass klass = FailureClass::kPermanent;
  std::string detail;

  bool empty() const { return stage.empty(); }
};

/// Default per-stage classification.  `detail` disambiguates the run
/// stage, where the final JobState name (NODE_FAIL, TIMEOUT, FAILED, ...)
/// is recorded as the detail for scheduler-side failures.
FailureClass classifyFailure(std::string_view stage, std::string_view detail);

}  // namespace rebench
