#include "core/fault/quarantine.hpp"

namespace rebench {

bool CircuitBreaker::allows(std::string_view key) const {
  if (threshold_ <= 0) return true;  // breaker disabled
  auto it = consecutive_.find(key);
  return it == consecutive_.end() || it->second < threshold_;
}

bool CircuitBreaker::recordFailure(std::string_view key) {
  auto [it, inserted] = consecutive_.try_emplace(std::string(key), 0);
  ++it->second;
  return threshold_ > 0 && it->second == threshold_;
}

void CircuitBreaker::recordSuccess(std::string_view key) {
  auto it = consecutive_.find(key);
  if (it != consecutive_.end()) it->second = 0;
}

int CircuitBreaker::consecutiveFailures(std::string_view key) const {
  auto it = consecutive_.find(key);
  return it == consecutive_.end() ? 0 : it->second;
}

std::vector<std::string> CircuitBreaker::openKeys() const {
  std::vector<std::string> keys;
  if (threshold_ <= 0) return keys;
  for (const auto& [key, count] : consecutive_) {
    if (count >= threshold_) keys.push_back(key);
  }
  return keys;
}

}  // namespace rebench
