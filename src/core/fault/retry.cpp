#include "core/fault/retry.hpp"

#include <algorithm>
#include <cmath>

#include "core/util/rng.hpp"

namespace rebench {

int RetryPolicy::budgetFor(std::string_view stage) const {
  auto it = stageBudgets.find(std::string(stage));
  return it != stageBudgets.end() ? it->second : maxRetries;
}

double RetryPolicy::backoffSeconds(std::string_view key,
                                   int retryIndex) const {
  const int exponent = std::max(0, retryIndex - 1);
  double wait = backoffBase * std::pow(backoffMultiplier, exponent);
  wait = std::min(wait, backoffMax);
  if (jitterFrac > 0.0 && wait > 0.0) {
    Rng rng = Rng::fromKey("backoff:" + std::to_string(seed) + ":" +
                           std::string(key) + ":" +
                           std::to_string(retryIndex));
    wait *= 1.0 + jitterFrac * (2.0 * rng.uniform() - 1.0);
  }
  return std::max(0.0, wait);
}

}  // namespace rebench
