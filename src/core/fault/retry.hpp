// Retry policy (rebench::fault): exponential backoff with deterministic
// jitter and per-stage retry budgets.
//
// Replaces the flat ReFrame-style --max-retries counter: each pipeline
// stage owns its own budget (a flaky sanity pattern should not eat the
// retries a crashing job needs), and the wait between attempts grows
// exponentially with a seed-derived jitter so that retry storms decorrelate
// — while staying byte-reproducible across identical invocations.  Backoff
// consumes *simulated* time: the pipeline advances the trace clock by the
// computed wait, making every backoff visible as a span.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace rebench {

struct RetryPolicy {
  /// Default retry budget per stage (0 = never retry, ReFrame default).
  int maxRetries = 0;
  /// Per-stage overrides, keyed by stage name ("run", "sanity", ...).
  std::map<std::string, int> stageBudgets;

  /// attempt 1 waits base seconds, attempt n waits base * mult^(n-1),
  /// clamped to backoffMax — then jittered by ±jitterFrac.
  double backoffBase = 1.0;
  double backoffMultiplier = 2.0;
  double backoffMax = 60.0;
  double jitterFrac = 0.1;
  /// Mixed into the jitter stream; CLI sets it to the fault seed.
  std::uint64_t seed = 0;

  /// Retry budget for `stage` (override or default).
  int budgetFor(std::string_view stage) const;

  /// Simulated seconds to wait before retry number `retryIndex` (1-based)
  /// of the attempt identified by `key`.  Deterministic in
  /// (seed, key, retryIndex).
  double backoffSeconds(std::string_view key, int retryIndex) const;
};

}  // namespace rebench
