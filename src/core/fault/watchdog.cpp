#include "core/fault/watchdog.hpp"

#include "core/util/strings.hpp"

namespace rebench {

bool WatchdogPolicy::enabled() const {
  if (stageTimeoutSeconds > 0.0) return true;
  for (const auto& [stage, limit] : stageOverrides) {
    if (limit > 0.0) return true;
  }
  return false;
}

double WatchdogPolicy::limitFor(std::string_view stage) const {
  if (auto it = stageOverrides.find(stage); it != stageOverrides.end()) {
    return it->second;
  }
  return stageTimeoutSeconds;
}

FailureInfo WatchdogFire::failure() const {
  FailureInfo info;
  info.stage = stage;
  info.klass = FailureClass::kInfrastructure;
  info.detail = "watchdog: stage '" + stage + "' exceeded its " +
                str::fixed(limitSeconds, 1) + "s deadline (ran " +
                str::fixed(elapsedSeconds, 1) + "s)";
  return info;
}

std::optional<WatchdogFire> checkStageDeadline(const WatchdogPolicy& policy,
                                               std::string_view stage,
                                               double elapsedSeconds) {
  const double limit = policy.limitFor(stage);
  if (limit <= 0.0 || elapsedSeconds <= limit) return std::nullopt;
  WatchdogFire fire;
  fire.stage = std::string(stage);
  fire.limitSeconds = limit;
  fire.elapsedSeconds = elapsedSeconds;
  return fire;
}

std::optional<WatchdogFire> StageWatchdog::check(std::string_view stage,
                                                 double elapsedSeconds) {
  auto fired = checkStageDeadline(policy_, stage, elapsedSeconds);
  if (fired) ++fires_;
  return fired;
}

}  // namespace rebench
