#include "core/fault/fault.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/util/error.hpp"
#include "core/util/rng.hpp"
#include "core/util/strings.hpp"

namespace rebench {

namespace {

double parseProb(std::string_view key, const std::string& value) {
  double prob = 0.0;
  try {
    prob = std::stod(value);
  } catch (const std::exception&) {
    throw ParseError("fault spec: '" + std::string(key) +
                     "' expects a number, got '" + value + "'");
  }
  if (prob < 0.0 || prob > 1.0) {
    throw ParseError("fault spec: '" + std::string(key) +
                     "' must be in [0,1], got '" + value + "'");
  }
  return prob;
}

}  // namespace

FaultConfig FaultConfig::parse(std::string_view spec) {
  FaultConfig config;
  for (const std::string& field : str::split(std::string(spec), ',')) {
    const std::string trimmed{str::trim(field)};
    if (trimmed.empty()) continue;
    const std::size_t eq = trimmed.find('=');
    if (eq == std::string::npos) {
      throw ParseError("fault spec: expected key=value, got '" + trimmed +
                       "'");
    }
    const std::string key{str::trim(trimmed.substr(0, eq))};
    const std::string value{str::trim(trimmed.substr(eq + 1))};
    if (key == "seed") {
      try {
        config.seed = std::stoull(value);
      } catch (const std::exception&) {
        throw ParseError("fault spec: 'seed' expects an integer, got '" +
                         value + "'");
      }
    } else if (key == "crash") {
      config.jobCrashProb = parseProb(key, value);
    } else if (key == "node") {
      config.nodeFailProb = parseProb(key, value);
    } else if (key == "preempt") {
      config.preemptProb = parseProb(key, value);
    } else if (key == "build") {
      config.buildFlakeProb = parseProb(key, value);
    } else if (key == "corrupt") {
      config.stdoutCorruptProb = parseProb(key, value);
    } else if (key == "teldrop") {
      config.telemetryDropProb = parseProb(key, value);
    } else {
      throw ParseError("fault spec: unknown key '" + key +
                       "' (expected seed, crash, node, preempt, build, "
                       "corrupt or teldrop)");
    }
  }
  if (config.nodeFailProb + config.preemptProb + config.jobCrashProb > 1.0) {
    throw ParseError(
        "fault spec: node + preempt + crash probabilities exceed 1");
  }
  return config;
}

FaultConfig loadFaultConfig(const std::string& arg) {
  std::error_code ec;
  if (!std::filesystem::is_regular_file(arg, ec)) {
    return FaultConfig::parse(arg);
  }
  std::ifstream in(arg);
  if (!in) throw Error("cannot read fault config file '" + arg + "'");
  std::string joined;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (str::trim(line).empty()) continue;
    if (!joined.empty()) joined += ',';
    joined += str::trim(line);
  }
  return FaultConfig::parse(joined);
}

std::string_view jobFaultKindName(JobFaultDecision::Kind kind) {
  switch (kind) {
    case JobFaultDecision::Kind::kNone: return "none";
    case JobFaultDecision::Kind::kNodeFailure: return "node_failure";
    case JobFaultDecision::Kind::kPreemption: return "preemption";
    case JobFaultDecision::Kind::kCrash: return "job_crash";
  }
  return "?";
}

double FaultInjector::draw(std::string_view site,
                           std::string_view key) const {
  Rng rng = Rng::fromKey("fault:" + std::to_string(config_.seed) + ":" +
                         std::string(site) + ":" + std::string(key));
  return rng.uniform();
}

bool FaultInjector::buildFlake(std::string_view key) const {
  return config_.buildFlakeProb > 0.0 &&
         draw("build", key) < config_.buildFlakeProb;
}

JobFaultDecision FaultInjector::jobFault(std::string_view key) const {
  JobFaultDecision decision;
  const double u = draw("job", key);
  double acc = config_.nodeFailProb;
  if (u < acc) {
    decision.kind = JobFaultDecision::Kind::kNodeFailure;
  } else if (u < (acc += config_.preemptProb)) {
    decision.kind = JobFaultDecision::Kind::kPreemption;
  } else if (u < (acc += config_.jobCrashProb)) {
    decision.kind = JobFaultDecision::Kind::kCrash;
  } else {
    return decision;
  }
  // Independent stream for the strike point, clamped away from the job
  // boundaries so the fault always lands mid-run.
  decision.atFraction = 0.05 + 0.9 * draw("job-at", key);
  return decision;
}

bool FaultInjector::corruptStdout(std::string_view key) const {
  return config_.stdoutCorruptProb > 0.0 &&
         draw("stdout", key) < config_.stdoutCorruptProb;
}

bool FaultInjector::dropTelemetry(std::string_view key) const {
  return config_.telemetryDropProb > 0.0 &&
         draw("telemetry", key) < config_.telemetryDropProb;
}

std::string FaultInjector::corruptText(const std::string& text,
                                       std::string_view key) const {
  if (text.empty()) return text;
  Rng rng = Rng::fromKey("fault:" + std::to_string(config_.seed) +
                         ":stdout-cut:" + std::string(key));
  const std::size_t cut =
      static_cast<std::size_t>(rng.below(text.size()));
  return text.substr(0, cut) + "\n#### CORRUPTED OUTPUT ####\n";
}

}  // namespace rebench
