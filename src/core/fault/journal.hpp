// Run journal (rebench::fault): resumable campaigns.
//
// A suite run appends one JSONL record per completed (test, target,
// repeat) tuple to DIR/journal.jsonl; a killed campaign restarted with
// --resume DIR loads the journal and executes only the tuples that are
// not yet recorded.  Appends happen one fsync-sized line at a time, and
// the loader tolerates a truncated final line (the crash that motivates
// resuming is exactly what produces one).
//
// Schema (one JSON object per line):
//   {"kind":"meta","schema":"rebench.journal/1"}
//   {"kind":"run","test":T,"target":"sys:part","repeat":N,
//    "outcome":"pass"|"fail"|"quarantined","stage":S,"attempts":A}
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <string_view>

namespace rebench {

inline constexpr std::string_view kJournalSchema = "rebench.journal/1";

class RunJournal {
 public:
  /// Opens DIR/journal.jsonl, creating DIR and the meta line when absent,
  /// and loads already-recorded tuples.  Throws rebench::Error when the
  /// directory or file cannot be created/read.
  explicit RunJournal(const std::string& dir);

  static std::string pathFor(const std::string& dir);

  bool contains(std::string_view test, std::string_view target,
                int repeat) const;

  /// Appends one completed tuple (crash-safe: open/append/close).
  void record(std::string_view test, std::string_view target, int repeat,
              std::string_view outcome, std::string_view stage,
              int attempts);

  /// Number of completed tuples currently journaled.
  std::size_t size() const { return keys_.size(); }

  /// Unparseable lines skipped while loading (e.g. a truncated tail).
  std::size_t corruptLines() const { return corruptLines_; }

  const std::string& path() const { return path_; }

 private:
  static std::string key(std::string_view test, std::string_view target,
                         int repeat);

  std::string path_;
  std::set<std::string> keys_;
  std::size_t corruptLines_ = 0;
};

}  // namespace rebench
