// Run journal (rebench::fault): resumable campaigns.
//
// A suite run appends one JSONL record per completed (test, target,
// repeat) tuple to DIR/journal.jsonl; a killed campaign restarted with
// --resume DIR loads the journal and executes only the tuples that are
// not yet recorded.  Appends are *durable*: each line is written and
// fsynced before record() returns, so a crash can lose at most the line
// being written — never a previously acknowledged one (losing an
// acknowledged tuple would double-execute it on resume).  The loader
// tolerates a torn final line (the crash that motivates resuming is
// exactly what produces one) and truncates it away so the file is clean
// again for the next append.
//
// Schema (one JSON object per line):
//   {"kind":"meta","schema":"rebench.journal/1"}
//   {"kind":"run","test":T,"target":"sys:part","repeat":N,
//    "outcome":"pass"|"fail"|"quarantined","stage":S,"attempts":A}
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <string_view>

namespace rebench {

inline constexpr std::string_view kJournalSchema = "rebench.journal/1";

/// Appends `line` (a trailing '\n' is added when missing) to `path` and
/// flushes it to stable storage (write + fsync) before returning, so an
/// acknowledged journal record survives a crash.  Creates the file when
/// absent.  Throws rebench::Error on I/O failure.
void durableAppendLine(const std::string& path, std::string_view line);

/// Writes `bytes` to `path` durably and atomically: the content lands in
/// `path + ".tmp"`, is fsynced, and is renamed over `path`, so readers
/// observe either the old file or the complete new one — never a torn
/// write.  Throws rebench::Error on I/O failure.
void durableWriteFile(const std::string& path, std::string_view bytes);

class RunJournal {
 public:
  /// Opens DIR/journal.jsonl, creating DIR and the meta line when absent,
  /// and loads already-recorded tuples.  A corrupt tail (torn lines from
  /// a crash mid-append) is counted in corruptLines() and truncated away:
  /// the file is rewritten (tmp + atomic rename) holding only the intact
  /// lines.  Throws rebench::Error when the directory or file cannot be
  /// created/read.
  explicit RunJournal(const std::string& dir);

  static std::string pathFor(const std::string& dir);

  bool contains(std::string_view test, std::string_view target,
                int repeat) const;

  /// Appends one completed tuple durably (write + fsync per line).
  void record(std::string_view test, std::string_view target, int repeat,
              std::string_view outcome, std::string_view stage,
              int attempts);

  /// Number of completed tuples currently journaled.
  std::size_t size() const { return keys_.size(); }

  /// Unparseable lines dropped while loading (e.g. a truncated tail).
  std::size_t corruptLines() const { return corruptLines_; }

  const std::string& path() const { return path_; }

 private:
  static std::string key(std::string_view test, std::string_view target,
                         int repeat);

  std::string path_;
  std::set<std::string> keys_;
  std::size_t corruptLines_ = 0;
};

}  // namespace rebench
