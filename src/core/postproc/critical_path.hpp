// Critical-path extraction (rebench::postproc) — the longest dependent
// chain through a campaign trace, with per-span self-time vs child-time
// attribution.
//
// Under the canonical lane schedule a campaign can only wait on the
// campaign before it on the same lane, so the longest dependent chain is
// the busiest lane's unit sequence and its length *is* the simulated
// makespan the campaign report prints.  Within each campaign on the
// chain, attribution descends through the dominant child at every level
// (the stage subtree that contributed most wall time), splitting each
// span's duration into self time (not covered by children) and child
// time.
#pragma once

#include <string>
#include <vector>

#include "core/obs/trace_reader.hpp"
#include "core/postproc/profile.hpp"

namespace rebench::postproc {

/// One span on a campaign's dominant-descent attribution chain.
struct SpanAttribution {
  std::string id;
  std::string name;
  int depth = 0;         // 0 = the campaign's own span
  double totalSeconds = 0.0;
  double selfSeconds = 0.0;   // total - sum(direct children)
  double childSeconds = 0.0;  // sum(direct children)
};

/// The critical path: the busiest lane's campaigns in schedule order,
/// each with its attribution chain.
struct CriticalPathReport {
  struct Step {
    ProfiledUnit unit;
    std::vector<SpanAttribution> attribution;
  };
  std::vector<Step> steps;
  int lane = 0;
  /// Sum of the steps' simulated seconds == the profile's makespan (per-
  /// lane chaining leaves no idle gaps on the busiest lane).
  double lengthSeconds = 0.0;
};

/// Extracts the critical path of `profile` (as computed by profileTrace
/// over the same trace).  Ties between equally-busy lanes resolve to the
/// lowest lane number.
CriticalPathReport extractCriticalPath(const obs::TraceFile& trace,
                                       const TraceProfile& profile);

std::string renderCriticalPath(const CriticalPathReport& report);

/// JSON object fragment shared by `profile --json`.
std::string criticalPathJson(const CriticalPathReport& report);

}  // namespace rebench::postproc
