// Trace profiling engine (rebench::postproc) — reconstructs the
// canonical campaign schedule from a trace's `exec.worker` spans and
// derives worker-lane utilization, the ASCII Gantt view, and trace
// diffs.  Fronts `rebench profile`.
//
// The executor stamps every worker span with the canonical virtual-lane
// schedule (`lane`, `sim_seconds` — see CampaignExecutor::
// stampProfileLanes), which is a pure function of the campaign in
// canonical order: the profile of a trace is therefore identical across
// --jobs values, and `profileTrace` only has to *replay* the stamps by
// chaining units per lane (start = time the lane last freed up).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/obs/trace_reader.hpp"

namespace rebench::postproc {

/// One scheduled campaign unit — an `exec.worker` span, or a `test_run`
/// root when profiling a run-mode trace (which has no executor layer;
/// such units chain sequentially on lane 0).
struct ProfiledUnit {
  std::string spanId;
  std::string label;  // "test@system:partition r<repeat>"
  int lane = 0;
  double simSeconds = 0.0;  // stamped simulated pipeline seconds
  double start = 0.0;       // schedule-relative lane start
  double end = 0.0;
  /// Time spent blocked behind another campaign's build — the summed
  /// duration of descendant store.singleflight spans with role=follower.
  double blockedSeconds = 0.0;
};

/// Busy/idle/blocked accounting for one virtual lane.
struct LaneStats {
  int lane = 0;
  std::size_t units = 0;
  double busySeconds = 0.0;
  double idleSeconds = 0.0;  // makespan - busy
  double blockedSeconds = 0.0;
};

/// A reconstructed campaign schedule.
struct TraceProfile {
  std::vector<ProfiledUnit> units;  // canonical (file) order
  std::vector<LaneStats> lanes;     // ascending lane number
  double makespanSeconds = 0.0;     // max lane end
  double serialSeconds = 0.0;       // sum of unit simSeconds
  /// True when the schedule came from stamped exec.worker spans; false
  /// for the run-mode test_run fallback.
  bool fromWorkerSpans = false;
};

/// Reconstructs the schedule.  Throws rebench::Error when the trace has
/// exec.worker spans without the lane/sim_seconds stamps (a trace from a
/// build predating the profiling contract) and when it has no profilable
/// spans at all.
TraceProfile profileTrace(const obs::TraceFile& trace);

/// ASCII Gantt of the lanes plus per-lane busy/idle/blocked percentages
/// and the unit table.
std::string renderProfile(const TraceProfile& profile);

/// JSON object fragment ({"makespan":...}) shared by `profile --json`.
std::string profileJson(const TraceProfile& profile);

// ---- trace diff ---------------------------------------------------------

/// Two traces aligned by span name-path (span names joined root→span
/// with '/'), with per-path count and total-duration deltas.
struct TraceDiff {
  struct PathDelta {
    std::string path;
    std::size_t countA = 0;
    std::size_t countB = 0;
    double totalA = 0.0;
    double totalB = 0.0;
    /// B's total grew beyond the relative threshold (or appeared).
    bool regression = false;
  };
  struct CounterDelta {
    std::string name;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
  };
  std::vector<PathDelta> paths;  // A's first-appearance order, then B-only
  std::vector<CounterDelta> counters;  // differing counters only (sorted)
  double threshold = 0.05;

  std::size_t regressions() const;
  /// No count, duration or counter deltas at all (self-diff is identical).
  bool identical() const;
};

/// Aligns `a` (baseline) and `b` (candidate); a path regresses when its
/// total duration grows by more than `threshold` (relative), or appears
/// only in `b`.
TraceDiff diffTraces(const obs::TraceFile& a, const obs::TraceFile& b,
                     double threshold = 0.05);

std::string renderDiff(const TraceDiff& diff);
std::string diffJson(const TraceDiff& diff);

}  // namespace rebench::postproc
