// Benchmarking-hygiene audit — Bailey's "Twelve Ways to Fool the Masses"
// and Hoefler & Belli's rules, turned into checks a perflog either passes
// or fails.
//
// The paper frames its Principles as defences against exactly these
// pitfalls; this module closes the loop by auditing collected data for
// the violations the pipeline can detect mechanically:
//
//   * FOMs without units (uninterpretable numbers),
//   * single-sample series (no statistical basis; H&B rule: report
//     enough runs to quantify variability),
//   * series mixing binary ids (comparing different builds as if they
//     were one benchmark — Bailey's "secretly optimised code"),
//   * cross-system comparisons with mismatched specs (not like-for-like),
//   * FOMs without reference values (unanchored results),
//   * a high failed-run ratio (cherry-picking survivors).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/framework/perflog.hpp"
#include "core/store/manifest.hpp"

namespace rebench {

enum class HygieneRule {
  kMissingUnit,
  kSingleSample,
  kMixedBinaries,
  kNotLikeForLike,
  kNoReference,
  kHighFailureRate,
  kCorruptLines,
  kStaleArtifact,
};

std::string_view hygieneRuleName(HygieneRule rule);

struct HygieneFinding {
  HygieneRule rule;
  /// The series or scope the finding refers to.
  std::string subject;
  std::string detail;
};

struct HygieneOptions {
  /// Minimum samples per (system, test, fom) series before kSingleSample
  /// stops firing.
  std::size_t minSamples = 3;
  /// kHighFailureRate fires above this fraction of error entries.
  double maxFailureFraction = 0.25;
  /// Suppress kNoReference (reference-free exploratory studies).
  bool requireReferences = false;
};

/// Audits a perflog; findings are ordered by rule then subject.
std::vector<HygieneFinding> auditPerflog(
    std::span<const PerfLogEntry> entries,
    const HygieneOptions& options = {});

/// Reads `path` leniently (PerfLog::readFileLenient) and audits what
/// parsed; corrupt lines become a kCorruptLines finding instead of a
/// fatal parse error, so a crash-truncated perflog is still auditable.
std::vector<HygieneFinding> auditPerflogFile(
    const std::string& path, const HygieneOptions& options = {});

/// Cross-checks perflog entries against a campaign manifest's recorded
/// provenance: a non-error entry whose binary id or spec hash does not
/// match what the manifest vouches for on the same test@target was
/// reported from a *stale artifact* (e.g. a number kept after the code
/// or environment changed underneath it) — kStaleArtifact per tuple.
std::vector<HygieneFinding> auditAgainstManifest(
    std::span<const PerfLogEntry> entries,
    const store::CampaignManifest& manifest);

/// Renders findings as a human-readable report ("clean" when empty).
std::string renderHygieneReport(std::span<const HygieneFinding> findings);

}  // namespace rebench
