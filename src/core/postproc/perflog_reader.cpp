#include "core/postproc/perflog_reader.hpp"

#include <fstream>
#include <iterator>
#include <map>
#include <queue>
#include <utility>

#include "core/obs/trace.hpp"
#include "core/postproc/columnar/colfile.hpp"
#include "core/postproc/columnar/merge.hpp"
#include "core/util/error.hpp"
#include "core/util/strings.hpp"

namespace rebench {

namespace {

/// Incrementally builds the lossless table form (entriesToTable and the
/// k-way merge both feed rows through this).  An extras key first seen at
/// row N gets a column backfilled with N nulls; rows lacking a known key
/// append a null.
class EntryTableBuilder {
 public:
  void add(const PerfLogEntry& entry) {
    columnar::appendString(ts_, entry.timestamp);
    columnar::appendString(version_, entry.frameworkVersion);
    columnar::appendString(system_, entry.system);
    columnar::appendString(partition_, entry.partition);
    columnar::appendString(environ_, entry.environ);
    columnar::appendString(test_, entry.testName);
    columnar::appendString(spec_, entry.spec);
    columnar::appendString(specHash_, entry.specHash);
    columnar::appendString(binaryId_, entry.binaryId);
    columnar::appendString(jobId_, entry.jobId);
    columnar::appendString(fom_, entry.fomName);
    columnar::appendDouble(value_, entry.value);
    columnar::appendString(unit_, unitName(entry.unit));
    if (entry.reference) {
      columnar::appendDouble(ref_, *entry.reference);
    } else {
      columnar::appendDoubleNull(ref_);
    }
    columnar::appendDouble(lower_, entry.lowerThresh);
    columnar::appendDouble(upper_, entry.upperThresh);
    columnar::appendString(result_, entry.result);

    for (auto& [key, col] : extras_) {
      const auto it = entry.extras.find(key);
      if (it != entry.extras.end()) {
        columnar::appendString(col, it->second);
      } else {
        columnar::appendStringNull(col);
      }
    }
    for (const auto& [key, val] : entry.extras) {
      if (extras_.find(key) != extras_.end()) continue;
      columnar::StringColumn col;
      for (std::size_t i = 0; i < rows_; ++i) columnar::appendStringNull(col);
      columnar::appendString(col, val);
      extras_.emplace(key, std::move(col));
    }
    ++rows_;
  }

  std::size_t rows() const { return rows_; }

  columnar::Table take() {
    columnar::Table table;
    table.rows = rows_;
    table.columns.push_back({"ts", std::move(ts_)});
    table.columns.push_back({"version", std::move(version_)});
    table.columns.push_back({"system", std::move(system_)});
    table.columns.push_back({"partition", std::move(partition_)});
    table.columns.push_back({"environ", std::move(environ_)});
    table.columns.push_back({"test", std::move(test_)});
    table.columns.push_back({"spec", std::move(spec_)});
    table.columns.push_back({"spec_hash", std::move(specHash_)});
    table.columns.push_back({"binary_id", std::move(binaryId_)});
    table.columns.push_back({"job_id", std::move(jobId_)});
    table.columns.push_back({"fom", std::move(fom_)});
    table.columns.push_back({"value", std::move(value_)});
    table.columns.push_back({"unit", std::move(unit_)});
    table.columns.push_back({"ref", std::move(ref_)});
    table.columns.push_back({"lower", std::move(lower_)});
    table.columns.push_back({"upper", std::move(upper_)});
    table.columns.push_back({"result", std::move(result_)});
    for (auto& [key, col] : extras_) {  // std::map: sorted key order
      table.columns.push_back({"x:" + key, std::move(col)});
    }
    *this = {};
    return table;
  }

 private:
  columnar::StringColumn ts_, version_, system_, partition_, environ_, test_,
      spec_, specHash_, binaryId_, jobId_, fom_, unit_, result_;
  columnar::DoubleColumn value_, ref_, lower_, upper_;
  std::map<std::string, columnar::StringColumn> extras_;
  std::size_t rows_ = 0;
};

std::size_t chunksOf(std::size_t rows) {
  return (rows + columnar::kChunkRows - 1) / columnar::kChunkRows;
}

void emitConvertSpan(obs::Tracer* tracer, const columnar::Table& table,
                     std::string_view outcome) {
  if (tracer == nullptr) return;
  obs::ScopedSpan span(tracer, "postproc.columnar.convert");
  span.attr("rows", std::to_string(table.rows));
  span.attr("chunks", std::to_string(chunksOf(table.rows)));
  span.attr("columns", std::to_string(table.columns.size()));
  span.attr("outcome", std::string(outcome));
}

const columnar::StringColumn& requireStrings(const columnar::Table& table,
                                             std::string_view name) {
  const columnar::Column* col = table.find(name);
  REBENCH_REQUIRE(col != nullptr && !col->isNumeric());
  return col->strs();
}

const columnar::DoubleColumn& requireDoubles(const columnar::Table& table,
                                             std::string_view name) {
  const columnar::Column* col = table.find(name);
  REBENCH_REQUIRE(col != nullptr && col->isNumeric());
  return col->doubles();
}

std::string stringCell(const columnar::StringColumn& col, std::size_t row) {
  const std::uint32_t code = col.codes[row];
  return code == columnar::kNullCode ? std::string() : col.dict->at(code);
}

}  // namespace

DataFrame perflogToDataFrame(std::span<const PerfLogEntry> entries) {
  DataFrame::StringColumn system, partition, environ, test, spec, fom, unit,
      result;
  DataFrame::NumericColumn value;
  for (const PerfLogEntry& entry : entries) {
    system.push_back(entry.system);
    partition.push_back(entry.partition);
    environ.push_back(entry.environ);
    test.push_back(entry.testName);
    spec.push_back(entry.spec);
    fom.push_back(entry.fomName);
    unit.push_back(std::string(unitName(entry.unit)));
    result.push_back(entry.result);
    value.push_back(entry.value);
  }
  DataFrame frame;
  frame.addStrings("system", std::move(system));
  frame.addStrings("partition", std::move(partition));
  frame.addStrings("environ", std::move(environ));
  frame.addStrings("test", std::move(test));
  frame.addStrings("spec", std::move(spec));
  frame.addStrings("fom", std::move(fom));
  frame.addStrings("unit", std::move(unit));
  frame.addStrings("result", std::move(result));
  frame.addNumeric("value", std::move(value));
  return frame;
}

DataFrame perflogToDataFrame(std::span<const PerfLogEntry> entries,
                             const PerflogFrameOptions& options) {
  DataFrame base = perflogToDataFrame(entries);
  if (!options.includeExtras) return base;

  // Tagged single-pass sniffing per key: each present value attempts its
  // numeric parse on arrival; the type commits once all rows are seen.
  std::map<std::string, columnar::TaggedColumnBuilder> builders;
  std::size_t row = 0;
  for (const PerfLogEntry& entry : entries) {
    for (auto& [key, builder] : builders) {
      const auto it = entry.extras.find(key);
      if (it != entry.extras.end()) {
        builder.add(it->second);
      } else {
        builder.addNull();
      }
    }
    for (const auto& [key, val] : entry.extras) {
      if (builders.find(key) != builders.end()) continue;
      columnar::TaggedColumnBuilder builder;
      for (std::size_t i = 0; i < row; ++i) builder.addNull();
      builder.add(val);
      builders.emplace(key, std::move(builder));
    }
    ++row;
  }

  columnar::Table table = base.table();
  for (auto& [key, builder] : builders) {
    columnar::Column col;
    col.name = "x_" + key;
    if (builder.numeric() && builder.nullCount() == 0) {
      col.data = builder.takeNumeric();
    } else {
      col.data = builder.takeStrings();
    }
    table.columns.push_back(std::move(col));
  }
  return DataFrame::fromTable(std::move(table));
}

DataFrame assimilatePerflogs(std::span<const std::string> paths,
                             obs::Tracer* tracer) {
  columnar::TableAppender appender;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) throw Error("cannot read perflog file '" + path + "'");
    std::vector<PerfLogEntry> batch;
    batch.reserve(columnar::kChunkRows);
    bool emitted = false;
    std::string line;
    while (std::getline(in, line)) {
      if (str::trim(line).empty()) continue;
      batch.push_back(PerfLogEntry::parse(line));
      if (batch.size() == columnar::kChunkRows) {
        appender.append(perflogToDataFrame(batch).table());
        batch.clear();
        emitted = true;
      }
    }
    // An empty shard still contributes its (empty) 9-column schema, like
    // the old per-file concat did.
    if (!batch.empty() || !emitted) {
      appender.append(perflogToDataFrame(batch).table());
    }
  }
  const columnar::ConcatStats stats = appender.stats();
  columnar::Table merged = appender.take();
  if (tracer != nullptr) {
    obs::ScopedSpan span(tracer, "postproc.columnar.merge");
    span.attr("inputs", std::to_string(stats.inputs));
    span.attr("rows", std::to_string(stats.rows));
    span.attr("chunks", std::to_string(stats.chunks));
    span.attr("peak_buffered_rows", std::to_string(stats.peakBufferedRows));
  }
  return DataFrame::fromTable(std::move(merged));
}

columnar::Table entriesToTable(std::span<const PerfLogEntry> entries) {
  EntryTableBuilder builder;
  for (const PerfLogEntry& entry : entries) builder.add(entry);
  return builder.take();
}

std::vector<PerfLogEntry> tableToPerflogEntries(const columnar::Table& table) {
  const columnar::StringColumn& ts = requireStrings(table, "ts");
  const columnar::StringColumn& version = requireStrings(table, "version");
  const columnar::StringColumn& system = requireStrings(table, "system");
  const columnar::StringColumn& partition = requireStrings(table, "partition");
  const columnar::StringColumn& environ = requireStrings(table, "environ");
  const columnar::StringColumn& test = requireStrings(table, "test");
  const columnar::StringColumn& spec = requireStrings(table, "spec");
  const columnar::StringColumn& specHash = requireStrings(table, "spec_hash");
  const columnar::StringColumn& binaryId = requireStrings(table, "binary_id");
  const columnar::StringColumn& jobId = requireStrings(table, "job_id");
  const columnar::StringColumn& fom = requireStrings(table, "fom");
  const columnar::DoubleColumn& value = requireDoubles(table, "value");
  const columnar::StringColumn& unit = requireStrings(table, "unit");
  const columnar::DoubleColumn& ref = requireDoubles(table, "ref");
  const columnar::DoubleColumn& lower = requireDoubles(table, "lower");
  const columnar::DoubleColumn& upper = requireDoubles(table, "upper");
  const columnar::StringColumn& result = requireStrings(table, "result");

  std::vector<std::pair<std::string, const columnar::StringColumn*>> extras;
  for (const columnar::Column& col : table.columns) {
    if (str::startsWith(col.name, "x:")) {
      REBENCH_REQUIRE(!col.isNumeric());
      extras.emplace_back(col.name.substr(2), &col.strs());
    }
  }

  std::vector<PerfLogEntry> out;
  out.reserve(table.rows);
  for (std::size_t i = 0; i < table.rows; ++i) {
    PerfLogEntry entry;
    entry.timestamp = stringCell(ts, i);
    entry.frameworkVersion = stringCell(version, i);
    entry.system = stringCell(system, i);
    entry.partition = stringCell(partition, i);
    entry.environ = stringCell(environ, i);
    entry.testName = stringCell(test, i);
    entry.spec = stringCell(spec, i);
    entry.specHash = stringCell(specHash, i);
    entry.binaryId = stringCell(binaryId, i);
    entry.jobId = stringCell(jobId, i);
    entry.fomName = stringCell(fom, i);
    entry.value = value.values[i];
    entry.unit = unitFromName(stringCell(unit, i));
    if (ref.validity.valid(i)) entry.reference = ref.values[i];
    entry.lowerThresh = lower.values[i];
    entry.upperThresh = upper.values[i];
    entry.result = stringCell(result, i);
    for (const auto& [key, col] : extras) {
      if (col->codes[i] != columnar::kNullCode) {
        entry.extras[key] = col->dict->at(col->codes[i]);
      }
    }
    out.push_back(std::move(entry));
  }
  return out;
}

DataFrame analysisFrameFromTable(const columnar::Table& table) {
  static constexpr std::string_view kAnalysisColumns[] = {
      "system", "partition", "environ", "test", "spec",
      "fom",    "unit",      "result",  "value"};
  columnar::Table out;
  out.rows = table.rows;
  for (const std::string_view name : kAnalysisColumns) {
    const columnar::Column* col = table.find(name);
    REBENCH_REQUIRE(col != nullptr);
    out.columns.push_back(*col);
  }
  return DataFrame::fromTable(std::move(out));
}

FrameCacheResult loadOrConvertPerflog(store::ObjectStore& store,
                                      const std::string& path,
                                      obs::Tracer* tracer) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot read perflog file '" + path + "'");
  const std::string bytes{std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>()};
  const std::string refName =
      "colframe/" + store::ObjectStore::hashBytes(bytes);

  FrameCacheResult out;
  if (const std::optional<std::string> footer = store.ref(refName)) {
    if (std::optional<columnar::Table> cached =
            columnar::readColFrame(store, *footer)) {
      out.table = std::move(*cached);
      out.cacheHit = true;
      emitConvertSpan(tracer, out.table, "hit");
      return out;
    }
  }

  std::vector<std::string> lines;
  for (const std::string& line : str::split(bytes, '\n')) {
    if (!str::trim(line).empty()) lines.push_back(line);
  }
  out.table = entriesToTable(PerfLog::parseLines(lines));
  store.setRef(refName, columnar::writeColFrame(store, out.table));
  emitConvertSpan(tracer, out.table, "converted");
  return out;
}

namespace {

/// Timestamp sort key: fully numeric stamps order as numbers and sort
/// before non-numeric ones (which order lexicographically).
struct TsKey {
  bool numeric = false;
  double num = 0.0;
  std::string text;
};

TsKey tsKey(const std::string& ts) {
  try {
    std::size_t used = 0;
    const double v = std::stod(ts, &used);
    if (used == ts.size()) return {true, v, {}};
  } catch (const std::exception&) {
  }
  return {false, 0.0, ts};
}

bool keyBefore(const TsKey& a, std::size_t inputA, const TsKey& b,
               std::size_t inputB) {
  if (a.numeric != b.numeric) return a.numeric;
  if (a.numeric) {
    if (a.num != b.num) return a.num < b.num;
  } else {
    if (a.text != b.text) return a.text < b.text;
  }
  return inputA < inputB;  // ties keep input order (then file order)
}

struct MergeInput {
  std::ifstream in;
  std::vector<PerfLogEntry> buffer;
  std::size_t pos = 0;
  TsKey frontKey;
};

/// Reads up to `chunkRows` parsed entries; returns rows added.
std::size_t refill(MergeInput& input, std::size_t chunkRows) {
  input.buffer.clear();
  input.pos = 0;
  std::string line;
  while (input.buffer.size() < chunkRows && std::getline(input.in, line)) {
    if (str::trim(line).empty()) continue;
    input.buffer.push_back(PerfLogEntry::parse(line));
  }
  return input.buffer.size();
}

}  // namespace

columnar::Table mergePerflogsByTime(std::span<const std::string> paths,
                                    std::size_t chunkRows,
                                    obs::Tracer* tracer, MergeStats* stats) {
  REBENCH_REQUIRE(chunkRows > 0);
  MergeStats local;
  local.inputs = paths.size();

  std::vector<MergeInput> inputs(paths.size());
  std::size_t buffered = 0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    inputs[i].in.open(paths[i]);
    if (!inputs[i].in) {
      throw Error("cannot read perflog file '" + paths[i] + "'");
    }
    buffered += refill(inputs[i], chunkRows);
    if (!inputs[i].buffer.empty()) {
      inputs[i].frontKey = tsKey(inputs[i].buffer.front().timestamp);
    }
  }
  local.peakBufferedRows = buffered;

  const auto heapCmp = [&](std::size_t a, std::size_t b) {
    // priority_queue pops the largest; invert for a min-heap.
    return keyBefore(inputs[b].frontKey, b, inputs[a].frontKey, a);
  };
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      decltype(heapCmp)>
      heap(heapCmp);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (!inputs[i].buffer.empty()) heap.push(i);
  }

  EntryTableBuilder builder;
  while (!heap.empty()) {
    const std::size_t i = heap.top();
    heap.pop();
    MergeInput& input = inputs[i];
    builder.add(input.buffer[input.pos]);
    ++input.pos;
    --buffered;
    if (input.pos == input.buffer.size()) {
      buffered += refill(input, chunkRows);
      if (buffered > local.peakBufferedRows) local.peakBufferedRows = buffered;
    }
    if (input.pos < input.buffer.size()) {
      input.frontKey = tsKey(input.buffer[input.pos].timestamp);
      heap.push(i);
    }
  }

  local.rows = builder.rows();
  local.chunks = chunksOf(local.rows);
  columnar::Table out = builder.take();
  if (tracer != nullptr) {
    obs::ScopedSpan span(tracer, "postproc.columnar.merge");
    span.attr("inputs", std::to_string(local.inputs));
    span.attr("rows", std::to_string(local.rows));
    span.attr("chunks", std::to_string(local.chunks));
    span.attr("peak_buffered_rows", std::to_string(local.peakBufferedRows));
  }
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace rebench
