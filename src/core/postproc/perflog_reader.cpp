#include "core/postproc/perflog_reader.hpp"

namespace rebench {

DataFrame perflogToDataFrame(std::span<const PerfLogEntry> entries) {
  DataFrame::StringColumn system, partition, environ, test, spec, fom, unit,
      result;
  DataFrame::NumericColumn value;
  for (const PerfLogEntry& entry : entries) {
    system.push_back(entry.system);
    partition.push_back(entry.partition);
    environ.push_back(entry.environ);
    test.push_back(entry.testName);
    spec.push_back(entry.spec);
    fom.push_back(entry.fomName);
    unit.push_back(std::string(unitName(entry.unit)));
    result.push_back(entry.result);
    value.push_back(entry.value);
  }
  DataFrame frame;
  frame.addStrings("system", std::move(system));
  frame.addStrings("partition", std::move(partition));
  frame.addStrings("environ", std::move(environ));
  frame.addStrings("test", std::move(test));
  frame.addStrings("spec", std::move(spec));
  frame.addStrings("fom", std::move(fom));
  frame.addStrings("unit", std::move(unit));
  frame.addStrings("result", std::move(result));
  frame.addNumeric("value", std::move(value));
  return frame;
}

DataFrame assimilatePerflogs(std::span<const std::string> paths) {
  std::vector<DataFrame> frames;
  frames.reserve(paths.size());
  for (const std::string& path : paths) {
    const std::vector<PerfLogEntry> entries = PerfLog::readFile(path);
    frames.push_back(perflogToDataFrame(entries));
  }
  return DataFrame::concat(frames);
}

}  // namespace rebench
