#include "core/postproc/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/util/error.hpp"
#include "core/util/strings.hpp"

namespace rebench {

namespace {

/// Two-sided 97.5% t-distribution quantiles for small samples; converges
/// to the normal 1.96 for large n.
double tQuantile975(std::size_t degreesOfFreedom) {
  static constexpr double kTable[] = {
      0.0,   12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
      2.306, 2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
      2.120, 2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
      2.064, 2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
  if (degreesOfFreedom == 0) return 0.0;
  if (degreesOfFreedom < std::size(kTable)) {
    return kTable[degreesOfFreedom];
  }
  return 1.96 + 2.5 / static_cast<double>(degreesOfFreedom);
}

}  // namespace

double percentile(std::span<const double> samples, double p) {
  REBENCH_REQUIRE(!samples.empty() && p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

SummaryStats summarize(std::span<const double> samples) {
  if (samples.empty()) throw Error("cannot summarize an empty sample");
  SummaryStats stats;
  stats.count = samples.size();
  double sum = 0.0;
  stats.min = samples[0];
  stats.max = samples[0];
  for (double v : samples) {
    sum += v;
    stats.min = std::min(stats.min, v);
    stats.max = std::max(stats.max, v);
  }
  stats.mean = sum / static_cast<double>(stats.count);
  if (stats.count > 1) {
    double ss = 0.0;
    for (double v : samples) ss += (v - stats.mean) * (v - stats.mean);
    stats.stddev = std::sqrt(ss / static_cast<double>(stats.count - 1));
    stats.ci95 = tQuantile975(stats.count - 1) * stats.stddev /
                 std::sqrt(static_cast<double>(stats.count));
  }
  stats.median = percentile(samples, 50.0);
  stats.q1 = percentile(samples, 25.0);
  stats.q3 = percentile(samples, 75.0);
  stats.cv = stats.mean != 0.0 ? stats.stddev / std::abs(stats.mean) : 0.0;
  return stats;
}

std::string renderStats(const SummaryStats& stats, int digits) {
  std::string out = "median " + str::fixed(stats.median, digits) + " [q1 " +
                    str::fixed(stats.q1, digits) + ", q3 " +
                    str::fixed(stats.q3, digits) + "], mean " +
                    str::fixed(stats.mean, digits);
  if (stats.count > 1) {
    out += " +/- " + str::fixed(stats.ci95, digits) + " (95% CI, n=" +
           std::to_string(stats.count) + ", CV " +
           str::fixed(stats.cv * 100.0, 1) + "%)";
  } else {
    out += " (n=1: NOT statistically reportable)";
  }
  return out;
}

bool isReportable(const SummaryStats& stats, std::size_t minRuns,
                  double maxCv) {
  return stats.count >= minRuns && stats.cv <= maxCv;
}

}  // namespace rebench
