// Chrome trace-event (catapult) export (rebench::postproc).
//
// Converts a rebench trace into the JSON array format chrome://tracing
// and Perfetto load, so campaign schedules can be inspected in a real
// timeline UI.  Two process groups are emitted:
//
//   pid 1 "recorded timeline"  — every span as an X (complete) event on
//                                the thread of its root campaign (tid =
//                                leading root number of the span id),
//                                plus trace events as instant events;
//   pid 2 "scheduled lanes"    — one X event per profiled campaign on
//                                its canonical virtual lane (tid = lane),
//                                the Gantt view `rebench profile` prints.
//
// Timestamps are microseconds (llround(seconds * 1e6)); serialization is
// fully deterministic so exports byte-compare across --jobs values.
#pragma once

#include <string>

#include "core/obs/trace_reader.hpp"
#include "core/postproc/profile.hpp"

namespace rebench::postproc {

/// Renders the catapult JSON document ({"traceEvents":[...]}).
std::string renderChromeTrace(const obs::TraceFile& trace,
                              const TraceProfile& profile);

}  // namespace rebench::postproc
