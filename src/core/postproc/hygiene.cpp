#include "core/postproc/hygiene.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace rebench {

std::string_view hygieneRuleName(HygieneRule rule) {
  switch (rule) {
    case HygieneRule::kMissingUnit: return "missing-unit";
    case HygieneRule::kSingleSample: return "single-sample";
    case HygieneRule::kMixedBinaries: return "mixed-binaries";
    case HygieneRule::kNotLikeForLike: return "not-like-for-like";
    case HygieneRule::kNoReference: return "no-reference";
    case HygieneRule::kHighFailureRate: return "high-failure-rate";
    case HygieneRule::kCorruptLines: return "corrupt-lines";
    case HygieneRule::kStaleArtifact: return "stale-artifact";
  }
  return "?";
}

namespace {

std::string seriesName(const PerfLogEntry& entry) {
  return entry.system + ":" + entry.partition + "/" + entry.testName + "/" +
         entry.fomName;
}

}  // namespace

std::vector<HygieneFinding> auditPerflog(
    std::span<const PerfLogEntry> entries, const HygieneOptions& options) {
  std::vector<HygieneFinding> findings;

  // Pass 1: per-entry checks and per-series aggregation.
  std::map<std::string, std::size_t> sampleCounts;
  std::map<std::string, std::set<std::string>> binariesPerSeries;
  // For like-for-like: (test, fom) -> set of spec short forms with the
  // system-specific compiler part stripped (the benchmark + its variants
  // must agree across systems; the toolchain may differ).
  std::map<std::string, std::set<std::string>> specsPerTest;
  std::set<std::string> missingUnitSeries;
  std::set<std::string> missingReferenceSeries;
  std::size_t errors = 0;

  auto stripCompiler = [](const std::string& spec) {
    const std::size_t percent = spec.find('%');
    if (percent == std::string::npos) return spec;
    // Remove "%name@version" up to the next variant sigil or end.
    std::size_t end = percent + 1;
    while (end < spec.size() && spec[end] != '+' && spec[end] != '~' &&
           spec[end] != ' ') {
      ++end;
    }
    return spec.substr(0, percent) + spec.substr(end);
  };

  for (const PerfLogEntry& entry : entries) {
    if (entry.result == "error") {
      ++errors;
      continue;
    }
    const std::string series = seriesName(entry);
    ++sampleCounts[series];
    if (!entry.binaryId.empty()) {
      binariesPerSeries[series].insert(entry.binaryId);
    }
    if (entry.unit == Unit::kNone) missingUnitSeries.insert(series);
    if (!entry.reference.has_value()) {
      missingReferenceSeries.insert(series);
    }
    specsPerTest[entry.testName + "/" + entry.fomName].insert(
        stripCompiler(entry.spec));
  }

  for (const std::string& series : missingUnitSeries) {
    findings.push_back({HygieneRule::kMissingUnit, series,
                        "figure of merit recorded without a unit"});
  }
  for (const auto& [series, count] : sampleCounts) {
    if (count < options.minSamples) {
      findings.push_back(
          {HygieneRule::kSingleSample, series,
           std::to_string(count) + " sample(s); need >= " +
               std::to_string(options.minSamples) +
               " to quantify run-to-run variability"});
    }
  }
  for (const auto& [series, binaries] : binariesPerSeries) {
    if (binaries.size() > 1) {
      findings.push_back(
          {HygieneRule::kMixedBinaries, series,
           std::to_string(binaries.size()) +
               " distinct binaries mixed in one series — results are not "
               "comparable run-to-run"});
    }
  }
  for (const auto& [test, specs] : specsPerTest) {
    if (specs.size() > 1) {
      findings.push_back(
          {HygieneRule::kNotLikeForLike, test,
           "cross-system comparison mixes " + std::to_string(specs.size()) +
               " distinct problem specs (beyond the toolchain)"});
    }
  }
  if (options.requireReferences) {
    for (const std::string& series : missingReferenceSeries) {
      findings.push_back({HygieneRule::kNoReference, series,
                          "no reference value to anchor the result"});
    }
  }
  if (!entries.empty()) {
    const double failureFraction =
        static_cast<double>(errors) / static_cast<double>(entries.size());
    if (failureFraction > options.maxFailureFraction) {
      findings.push_back(
          {HygieneRule::kHighFailureRate, "(whole perflog)",
           std::to_string(errors) + "/" + std::to_string(entries.size()) +
               " runs failed — survivors may be a biased sample"});
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const HygieneFinding& a, const HygieneFinding& b) {
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.subject < b.subject;
            });
  return findings;
}

std::vector<HygieneFinding> auditPerflogFile(const std::string& path,
                                             const HygieneOptions& options) {
  const PerfLog::LenientParse parsed = PerfLog::readFileLenient(path);
  std::vector<HygieneFinding> findings = auditPerflog(parsed.entries, options);
  if (parsed.corruptLines > 0) {
    findings.push_back(
        {HygieneRule::kCorruptLines, path,
         std::to_string(parsed.corruptLines) +
             " unparseable line(s) skipped — the log may be truncated or "
             "corrupted"});
  }
  return findings;
}

std::vector<HygieneFinding> auditAgainstManifest(
    std::span<const PerfLogEntry> entries,
    const store::CampaignManifest& manifest) {
  // Provenance the manifest vouches for, per test@target tuple.
  std::map<std::string, std::set<std::string>> binaries;
  std::map<std::string, std::set<std::string>> specs;
  for (const store::RunManifest& run : manifest.runs) {
    const std::string key = run.test + "@" + run.target;
    if (!run.binaryId.empty()) binaries[key].insert(run.binaryId);
    if (!run.specHash.empty()) specs[key].insert(run.specHash);
  }

  std::vector<HygieneFinding> findings;
  std::set<std::string> reported;
  for (const PerfLogEntry& entry : entries) {
    if (entry.result == "error") continue;
    const std::string key =
        entry.testName + "@" + entry.system + ":" + entry.partition;
    const auto recordedBinaries = binaries.find(key);
    // Tuples the manifest never ran are out of scope, not stale.
    if (recordedBinaries == binaries.end()) continue;
    const bool staleBinary = !entry.binaryId.empty() &&
                             !recordedBinaries->second.contains(entry.binaryId);
    const auto recordedSpecs = specs.find(key);
    const bool staleSpec = recordedSpecs != specs.end() &&
                           !entry.specHash.empty() &&
                           !recordedSpecs->second.contains(entry.specHash);
    if ((staleBinary || staleSpec) && reported.insert(key).second) {
      findings.push_back(
          {HygieneRule::kStaleArtifact, key,
           "result reported from a stale artifact: perflog " +
               (staleBinary ? "binary id " + entry.binaryId
                            : "spec hash " + entry.specHash) +
               " does not match the campaign manifest"});
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const HygieneFinding& a, const HygieneFinding& b) {
              return a.subject < b.subject;
            });
  return findings;
}

std::string renderHygieneReport(std::span<const HygieneFinding> findings) {
  if (findings.empty()) {
    return "hygiene audit: clean (no Bailey/Hoefler-Belli violations "
           "detected)\n";
  }
  std::string out = "hygiene audit: " + std::to_string(findings.size()) +
                    " finding(s)\n";
  for (const HygieneFinding& finding : findings) {
    out += "  [" + std::string(hygieneRuleName(finding.rule)) + "] " +
           finding.subject + ": " + finding.detail + "\n";
  }
  return out;
}

}  // namespace rebench
