// Summary statistics for repeated measurements — the reporting discipline
// of Hoefler & Belli that the paper builds on: never a bare number, always
// enough runs to quantify variability, medians and nonparametric spread
// for skewed timing distributions, and a confidence interval for means.
#pragma once

#include <span>
#include <string>

namespace rebench {

struct SummaryStats {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;    // sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double q1 = 0.0;        // 25th percentile
  double q3 = 0.0;        // 75th percentile
  /// Half-width of the 95% confidence interval of the mean
  /// (t-distribution for small n).
  double ci95 = 0.0;
  /// Coefficient of variation, stddev/mean (0 when mean == 0).
  double cv = 0.0;
};

/// Computes the summary; throws Error on an empty sample.
SummaryStats summarize(std::span<const double> samples);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::span<const double> samples, double p);

/// One-line rendering: "median 12.3 [q1 11.9, q3 12.8], mean 12.4 ± 0.3
/// (95% CI, n=10, CV 2.1%)".
std::string renderStats(const SummaryStats& stats, int digits = 2);

/// True when the sample is reportable by H&B standards: enough runs and
/// variability below `maxCv`.
bool isReportable(const SummaryStats& stats, std::size_t minRuns = 5,
                  double maxCv = 0.10);

}  // namespace rebench
