#include "core/postproc/columnar/colfile.hpp"

#include <cstring>
#include <stdexcept>

#include "core/obs/json.hpp"
#include "core/service/journal.hpp"
#include "core/util/error.hpp"

namespace rebench::columnar {

namespace {

constexpr std::uint32_t kEndianTag = 0x01020304;

template <typename T>
void putRaw(std::string& out, T value) {
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out.append(buf, sizeof(T));
}

template <typename T>
bool getRaw(std::string_view bytes, std::size_t& cursor, T& value) {
  if (cursor + sizeof(T) > bytes.size()) return false;
  std::memcpy(&value, bytes.data() + cursor, sizeof(T));
  cursor += sizeof(T);
  return true;
}

std::string encodeDoubleBlob(const DoubleColumn& col) {
  std::string out;
  const std::size_t rows = col.values.size();
  out.reserve(rows * sizeof(double) +
              (col.nullCount() > 0 ? (rows + 63) / 64 * 8 : 0));
  out.append(reinterpret_cast<const char*>(col.values.data()),
             rows * sizeof(double));
  if (col.nullCount() > 0) {
    out.append(reinterpret_cast<const char*>(col.validity.words().data()),
               col.validity.words().size() * sizeof(std::uint64_t));
  }
  return out;
}

std::string encodeStringBlob(const StringColumn& col) {
  std::string out;
  putRaw(out, static_cast<std::uint64_t>(col.dict->size()));
  for (const std::string& value : col.dict->values()) {
    putRaw(out, static_cast<std::uint32_t>(value.size()));
    out.append(value);
  }
  out.append(reinterpret_cast<const char*>(col.codes.data()),
             col.codes.size() * sizeof(std::uint32_t));
  return out;
}

std::string zoneJson(const std::vector<NumericZone>& zones) {
  std::string out = "[";
  for (std::size_t i = 0; i < zones.size(); ++i) {
    if (i != 0) out += ',';
    out += "{\"count\":" + std::to_string(zones[i].count) +
           ",\"nulls\":" + std::to_string(zones[i].nulls) +
           ",\"min\":" + service::formatExact(zones[i].min) +
           ",\"max\":" + service::formatExact(zones[i].max) + "}";
  }
  return out + "]";
}

std::string zoneJson(const std::vector<CodeZone>& zones) {
  std::string out = "[";
  for (std::size_t i = 0; i < zones.size(); ++i) {
    if (i != 0) out += ',';
    out += "{\"count\":" + std::to_string(zones[i].count) +
           ",\"nulls\":" + std::to_string(zones[i].nulls) +
           ",\"min_code\":" + std::to_string(zones[i].minCode) +
           ",\"max_code\":" + std::to_string(zones[i].maxCode) + "}";
  }
  return out + "]";
}

std::size_t expectedChunks(std::size_t rows) {
  return (rows + kChunkRows - 1) / kChunkRows;
}

bool decodeDoubleColumn(const obs::json::Value& meta, std::string_view blob,
                        std::size_t rows, DoubleColumn& out) {
  const auto nullCount =
      static_cast<std::size_t>(meta.numberOr("null_count", 0.0));
  std::size_t expected = rows * sizeof(double);
  const std::size_t words = (rows + 63) / 64;
  if (nullCount > 0) expected += words * sizeof(std::uint64_t);
  if (blob.size() != expected) return false;

  out.values.resize(rows);
  std::memcpy(out.values.data(), blob.data(), rows * sizeof(double));
  if (nullCount > 0) {
    std::vector<std::uint64_t> bits(words);
    std::memcpy(bits.data(), blob.data() + rows * sizeof(double),
                words * sizeof(std::uint64_t));
    out.validity = NullBitmap::fromWords(std::move(bits), rows);
    if (out.validity.nullCount() != nullCount) return false;
  } else {
    out.validity.appendRun(rows, true);
  }

  const auto& zones = meta.at("zones").array;
  if (zones.size() != expectedChunks(rows)) return false;
  std::vector<NumericZone> loaded;
  loaded.reserve(zones.size());
  for (const obs::json::Value& z : zones) {
    NumericZone zone;
    zone.count = static_cast<std::uint32_t>(z.numberOr("count", 0.0));
    zone.nulls = static_cast<std::uint32_t>(z.numberOr("nulls", 0.0));
    zone.min = z.numberOr("min", 0.0);
    zone.max = z.numberOr("max", 0.0);
    loaded.push_back(zone);
  }
  out.setZones(std::move(loaded));
  return true;
}

bool decodeStringColumn(const obs::json::Value& meta, std::string_view blob,
                        std::size_t rows, StringColumn& out) {
  const auto nullCount =
      static_cast<std::size_t>(meta.numberOr("null_count", 0.0));
  std::size_t cursor = 0;
  std::uint64_t dictCount = 0;
  if (!getRaw(blob, cursor, dictCount)) return false;
  auto dict = std::make_shared<Dictionary>();
  for (std::uint64_t d = 0; d < dictCount; ++d) {
    std::uint32_t len = 0;
    if (!getRaw(blob, cursor, len)) return false;
    if (cursor + len > blob.size()) return false;
    dict->encode(blob.substr(cursor, len));
    cursor += len;
  }
  // A blob whose dictionary held duplicate entries would decode to fewer
  // codes than the footer promises — refuse it.
  if (dict->size() != dictCount) return false;
  if (blob.size() - cursor != rows * sizeof(std::uint32_t)) return false;
  out.codes.resize(rows);
  std::memcpy(out.codes.data(), blob.data() + cursor,
              rows * sizeof(std::uint32_t));
  out.dict = std::move(dict);

  std::size_t nulls = 0;
  for (const std::uint32_t c : out.codes) {
    if (c == kNullCode) {
      ++nulls;
    } else if (c >= dictCount) {
      return false;
    }
  }
  if (nulls != nullCount) return false;
  out.setNullCount(nulls);

  const auto& zones = meta.at("zones").array;
  if (zones.size() != expectedChunks(rows)) return false;
  std::vector<CodeZone> loaded;
  loaded.reserve(zones.size());
  for (const obs::json::Value& z : zones) {
    CodeZone zone;
    zone.count = static_cast<std::uint32_t>(z.numberOr("count", 0.0));
    zone.nulls = static_cast<std::uint32_t>(z.numberOr("nulls", 0.0));
    zone.minCode = static_cast<std::uint32_t>(z.numberOr("min_code", 0.0));
    zone.maxCode = static_cast<std::uint32_t>(z.numberOr("max_code", 0.0));
    loaded.push_back(zone);
  }
  out.setZones(std::move(loaded));
  return true;
}

}  // namespace

std::string writeColFrame(store::ObjectStore& store, const Table& table) {
  std::string footer = "{\"schema\":\"" + std::string(kColFrameSchema) +
                       "\",\"rows\":" + std::to_string(table.rows) +
                       ",\"chunk_rows\":" + std::to_string(kChunkRows) +
                       ",\"endian\":" + std::to_string(kEndianTag) +
                       ",\"columns\":[";
  for (std::size_t c = 0; c < table.columns.size(); ++c) {
    const Column& col = table.columns[c];
    if (c != 0) footer += ',';
    std::string blob;
    std::string type;
    std::string zones;
    std::size_t nullCount = 0;
    if (col.isNumeric()) {
      type = "f64";
      blob = encodeDoubleBlob(col.doubles());
      zones = zoneJson(col.doubles().zones());
      nullCount = col.doubles().nullCount();
    } else {
      type = "dict";
      blob = encodeStringBlob(col.strs());
      zones = zoneJson(col.strs().zones());
      nullCount = col.strs().nullCount();
    }
    const std::string hash = store.put(blob);
    footer += "{\"name\":" + obs::json::quote(col.name) + ",\"type\":\"" +
              type + "\",\"blob\":\"" + hash +
              "\",\"null_count\":" + std::to_string(nullCount) +
              ",\"zones\":" + zones + "}";
  }
  footer += "]}";
  return store.put(footer);
}

std::optional<Table> readColFrame(store::ObjectStore& store,
                                  const std::string& footerHash) {
  const std::optional<std::string> footerBytes = store.get(footerHash);
  if (!footerBytes) return std::nullopt;
  obs::json::Value footer;
  try {
    footer = obs::json::parse(*footerBytes);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (!footer.isObject() ||
      footer.stringOr("schema", "") != kColFrameSchema ||
      static_cast<std::uint32_t>(footer.numberOr("endian", 0.0)) !=
          kEndianTag ||
      !footer.contains("columns") || !footer.at("columns").isArray()) {
    return std::nullopt;
  }
  // Zone maps are chunked at write-time granularity; a frame written with
  // a different chunk size would mislabel chunks, so refuse it (the cache
  // then falls back to a re-parse and rewrite at the current size).
  if (static_cast<std::size_t>(footer.numberOr("chunk_rows", 0.0)) !=
      kChunkRows) {
    return std::nullopt;
  }

  Table table;
  table.rows = static_cast<std::size_t>(footer.numberOr("rows", 0.0));
  for (const obs::json::Value& meta : footer.at("columns").array) {
    if (!meta.isObject() || !meta.contains("zones") ||
        !meta.at("zones").isArray()) {
      return std::nullopt;
    }
    const std::string blobHash = meta.stringOr("blob", "");
    const std::optional<std::string> blob = store.get(blobHash);
    if (!blob) return std::nullopt;
    const std::string type = meta.stringOr("type", "");
    Column col;
    col.name = meta.stringOr("name", "");
    try {
      if (type == "f64") {
        DoubleColumn data;
        if (!decodeDoubleColumn(meta, *blob, table.rows, data)) {
          return std::nullopt;
        }
        col.data = std::move(data);
      } else if (type == "dict") {
        StringColumn data;
        if (!decodeStringColumn(meta, *blob, table.rows, data)) {
          return std::nullopt;
        }
        col.data = std::move(data);
      } else {
        return std::nullopt;
      }
    } catch (const std::exception&) {
      return std::nullopt;
    }
    table.columns.push_back(std::move(col));
  }
  return table;
}

}  // namespace rebench::columnar
