// Column collection (rebench::columnar layer 1).
//
// A Table is an ordered list of named, typed columns with a shared row
// count — the engine behind the public DataFrame façade.  Type and
// existence errors are thrown by the façade (to keep the row engine's
// exact messages); the Table itself offers lookups and builders only.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "core/postproc/columnar/column.hpp"

namespace rebench::columnar {

struct Column {
  std::string name;
  std::variant<DoubleColumn, StringColumn> data;

  bool isNumeric() const {
    return std::holds_alternative<DoubleColumn>(data);
  }
  const DoubleColumn& doubles() const { return std::get<DoubleColumn>(data); }
  DoubleColumn& doubles() { return std::get<DoubleColumn>(data); }
  const StringColumn& strs() const { return std::get<StringColumn>(data); }
  StringColumn& strs() { return std::get<StringColumn>(data); }
};

struct Table {
  std::vector<Column> columns;
  std::size_t rows = 0;

  /// First column with `name`; nullptr when absent (first match wins,
  /// like the row engine's linear scan).
  const Column* find(std::string_view name) const {
    for (const Column& col : columns) {
      if (col.name == name) return &col;
    }
    return nullptr;
  }
  Column* find(std::string_view name) {
    for (Column& col : columns) {
      if (col.name == name) return &col;
    }
    return nullptr;
  }

  std::vector<std::string> columnNames() const {
    std::vector<std::string> out;
    out.reserve(columns.size());
    for (const Column& col : columns) out.push_back(col.name);
    return out;
  }
};

/// Single-pass column-type sniffing (the CSV / extras ingest fix): each
/// cell is parsed as double exactly once on arrival and buffered tagged
/// (raw text + parsed value); the column type is committed only at end of
/// input.  The old reader classified with one full parse pass and then
/// re-parsed every cell to load it.
class TaggedColumnBuilder {
 public:
  /// Buffers one cell, attempting the numeric parse immediately (skipped
  /// once the column is known non-numeric).
  void add(std::string cell);
  /// Buffers a null cell; the column stays eligible for numeric commit.
  void addNull();

  std::size_t size() const { return raw_.size(); }
  std::size_t nullCount() const { return nulls_; }
  /// Commit-time decision: numeric iff non-empty and every non-null cell
  /// parsed fully as double (matches the row engine's rule).
  bool numeric() const { return allNumeric_ && !raw_.empty(); }

  /// Destructive extraction; call exactly one of these per builder.
  DoubleColumn takeNumeric();
  StringColumn takeStrings();

 private:
  std::vector<std::string> raw_;
  std::vector<double> nums_;
  std::vector<bool> isNull_;
  std::size_t nulls_ = 0;
  bool allNumeric_ = true;
};

/// Appends a value (or a null) to either column flavour; used by the
/// perflog and CSV ingest paths.
void appendDouble(DoubleColumn& col, double value);
void appendDoubleNull(DoubleColumn& col);
void appendString(StringColumn& col, std::string_view value);
void appendStringNull(StringColumn& col);

}  // namespace rebench::columnar
