// Concatenation and streaming assimilation (rebench::columnar layer 3).
//
// Cross-system assimilation (Principle 6) is a row-wise concatenation of
// per-shard frames.  The TableAppender folds chunks into one output table
// as they arrive — schema-checked against the first chunk with an error
// naming the first mismatching column — so the perflog reader can stream
// a file in kChunkRows slices and never buffer more than one chunk of
// parsed input per source.  Dictionary codes are translated per chunk
// (O(dictionary), not O(rows)) instead of re-encoding strings row by row.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/postproc/columnar/table.hpp"

namespace rebench::columnar {

struct ConcatStats {
  std::size_t inputs = 0;           // chunks appended
  std::size_t rows = 0;             // total rows folded in
  std::size_t chunks = 0;           // == inputs (naming for span attrs)
  std::size_t peakBufferedRows = 0; // largest single appended chunk
};

class TableAppender {
 public:
  /// Folds `chunk` into the output.  The first chunk fixes the schema;
  /// later chunks must match it (names and types, in order) or an Error
  /// naming the first mismatching column is thrown.
  void append(const Table& chunk);

  /// Finalizes and returns the accumulated table (appender resets).
  Table take();

  const ConcatStats& stats() const { return stats_; }

 private:
  Table out_;
  bool first_ = true;
  ConcatStats stats_;
};

/// Throws rebench::Error describing the first mismatch between the
/// schemas of frame 1 and frame `otherIndex` (1-based, for messages).
/// Checks column count, then names, then types.
void requireSameSchema(const Table& first, const Table& other,
                       std::size_t otherIndex);

/// Row-wise concatenation with the row engine's error precedence (all
/// name mismatches reported before type mismatches).
Table concatTables(std::span<const Table* const> tables,
                   ConcatStats* stats = nullptr);

}  // namespace rebench::columnar
