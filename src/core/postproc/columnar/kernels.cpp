#include "core/postproc/columnar/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "core/util/error.hpp"

namespace rebench::columnar {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// First-seen-order group index over composite string keys.  Group ids
/// are assigned in row-scan order, so the output ordering is identical to
/// the row engine's first-seen map+order bookkeeping — but the lookup is
/// a dense array (or a hash on a packed integer) over dictionary codes,
/// never a per-row vector<string> key.
struct GroupIndex {
  std::vector<std::uint32_t> groupOfRow;
  std::vector<std::uint32_t> firstRow;  // first-seen row per group
  std::size_t groups() const { return firstRow.size(); }
};

constexpr std::uint64_t kDenseLimit = std::uint64_t{1} << 22;

GroupIndex buildGroups(std::size_t rows,
                       std::span<const StringColumn* const> keys) {
  GroupIndex index;
  index.groupOfRow.resize(rows);
  if (keys.empty()) {
    // Single group holding every row (the row engine's empty-key case).
    if (rows > 0) index.firstRow.push_back(0);
    return index;
  }

  // Mixed-radix packing: code kNullCode maps to the extra radix slot so
  // null keys form their own group.
  std::vector<std::uint64_t> radix(keys.size());
  bool packable = true;
  std::uint64_t product = 1;
  for (std::size_t j = 0; j < keys.size(); ++j) {
    radix[j] = keys[j]->dict->size() + 1;
    if (packable && product > std::numeric_limits<std::uint64_t>::max() /
                                  radix[j]) {
      packable = false;
    } else if (packable) {
      product *= radix[j];
    }
  }

  auto slotOf = [&](const StringColumn& key, std::size_t row) {
    const std::uint32_t c = key.codes[row];
    return c == kNullCode ? static_cast<std::uint64_t>(key.dict->size())
                          : static_cast<std::uint64_t>(c);
  };

  if (packable && product <= kDenseLimit) {
    std::vector<std::uint32_t> slot(static_cast<std::size_t>(product),
                                    kNullCode);
    for (std::size_t i = 0; i < rows; ++i) {
      std::uint64_t id = 0;
      for (std::size_t j = 0; j < keys.size(); ++j) {
        id = id * radix[j] + slotOf(*keys[j], i);
      }
      std::uint32_t g = slot[static_cast<std::size_t>(id)];
      if (g == kNullCode) {
        g = static_cast<std::uint32_t>(index.firstRow.size());
        slot[static_cast<std::size_t>(id)] = g;
        index.firstRow.push_back(static_cast<std::uint32_t>(i));
      }
      index.groupOfRow[i] = g;
    }
  } else if (packable) {
    std::unordered_map<std::uint64_t, std::uint32_t> slot;
    slot.reserve(1024);
    for (std::size_t i = 0; i < rows; ++i) {
      std::uint64_t id = 0;
      for (std::size_t j = 0; j < keys.size(); ++j) {
        id = id * radix[j] + slotOf(*keys[j], i);
      }
      auto [it, inserted] = slot.try_emplace(
          id, static_cast<std::uint32_t>(index.firstRow.size()));
      if (inserted) index.firstRow.push_back(static_cast<std::uint32_t>(i));
      index.groupOfRow[i] = it->second;
    }
  } else {
    // Astronomically wide dictionaries: fall back to a byte-composite key.
    std::unordered_map<std::string, std::uint32_t> slot;
    std::string key(keys.size() * sizeof(std::uint32_t), '\0');
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < keys.size(); ++j) {
        const std::uint32_t c = keys[j]->codes[i];
        std::memcpy(key.data() + j * sizeof(c), &c, sizeof(c));
      }
      auto [it, inserted] = slot.try_emplace(
          key, static_cast<std::uint32_t>(index.firstRow.size()));
      if (inserted) index.firstRow.push_back(static_cast<std::uint32_t>(i));
      index.groupOfRow[i] = it->second;
    }
  }
  return index;
}

/// Key columns of a grouped output: first-seen rows gathered from the
/// input key columns, dictionaries shared.
void emitKeyColumns(Table& out, std::span<const std::string> keyNames,
                    std::span<const StringColumn* const> keys,
                    std::span<const std::uint32_t> firstRow) {
  for (std::size_t j = 0; j < keys.size(); ++j) {
    StringColumn col;
    col.dict = keys[j]->dict;
    col.codes.reserve(firstRow.size());
    std::size_t nulls = 0;
    for (const std::uint32_t row : firstRow) {
      const std::uint32_t c = keys[j]->codes[row];
      if (c == kNullCode) ++nulls;
      col.codes.push_back(c);
    }
    col.setNullCount(nulls);
    out.columns.push_back({keyNames[j], std::move(col)});
  }
}

void fillStats(KernelStats* stats, std::size_t rows) {
  if (stats == nullptr) return;
  stats->rows = rows;
  stats->chunks = (rows + kChunkRows - 1) / kChunkRows;
}

}  // namespace

std::span<const std::uint32_t> selectEquals(const StringColumn& col,
                                            std::string_view value,
                                            Arena& arena,
                                            KernelStats* stats) {
  const std::size_t rows = col.codes.size();
  const std::vector<CodeZone>& zones = col.zones();
  if (stats != nullptr) {
    stats->rows = rows;
    stats->chunks = zones.size();
  }
  const std::optional<std::uint32_t> probe = col.dict->find(value);
  if (!probe) {
    if (stats != nullptr) stats->skippedChunks = zones.size();
    return {};
  }
  const std::uint32_t c = *probe;
  std::span<std::uint32_t> out = arena.alloc<std::uint32_t>(rows);
  std::size_t n = 0;
  for (std::size_t z = 0; z < zones.size(); ++z) {
    const CodeZone& zone = zones[z];
    const bool allNull = zone.nulls == zone.count;
    if (allNull || c < zone.minCode || c > zone.maxCode) {
      if (stats != nullptr) ++stats->skippedChunks;
      continue;
    }
    const std::size_t base = z * kChunkRows;
    const std::size_t end = base + zone.count;
    for (std::size_t i = base; i < end; ++i) {
      if (col.codes[i] == c) out[n++] = static_cast<std::uint32_t>(i);
    }
  }
  return out.subspan(0, n);
}

std::span<const std::uint32_t> selectRange(const DoubleColumn& col,
                                           double lo, double hi, Arena& arena,
                                           KernelStats* stats) {
  const std::size_t rows = col.values.size();
  const std::vector<NumericZone>& zones = col.zones();
  if (stats != nullptr) {
    stats->rows = rows;
    stats->chunks = zones.size();
  }
  std::span<std::uint32_t> out = arena.alloc<std::uint32_t>(rows);
  std::size_t n = 0;
  for (std::size_t z = 0; z < zones.size(); ++z) {
    const NumericZone& zone = zones[z];
    const bool allNull = zone.nulls == zone.count;
    if (allNull || zone.max < lo || zone.min > hi) {
      if (stats != nullptr) ++stats->skippedChunks;
      continue;
    }
    const std::size_t base = z * kChunkRows;
    const std::size_t end = base + zone.count;
    const bool hasNulls = zone.nulls != 0;
    for (std::size_t i = base; i < end; ++i) {
      const double v = col.values[i];
      if (v >= lo && v <= hi && (!hasNulls || col.validity.valid(i))) {
        out[n++] = static_cast<std::uint32_t>(i);
      }
    }
  }
  return out.subspan(0, n);
}

std::span<const std::uint32_t> selectPredicate(
    std::size_t rows, const std::function<bool(std::size_t)>& predicate,
    Arena& arena) {
  std::span<std::uint32_t> out = arena.alloc<std::uint32_t>(rows);
  std::size_t n = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    if (predicate(i)) out[n++] = static_cast<std::uint32_t>(i);
  }
  return out.subspan(0, n);
}

Table gather(const Table& in, std::span<const std::uint32_t> selection) {
  Table out;
  out.rows = selection.size();
  out.columns.reserve(in.columns.size());
  for (const Column& col : in.columns) {
    if (col.isNumeric()) {
      const DoubleColumn& src = col.doubles();
      DoubleColumn dst;
      dst.values.reserve(selection.size());
      for (const std::uint32_t i : selection) dst.values.push_back(src.values[i]);
      if (src.validity.empty()) {
        dst.validity.appendRun(selection.size(), true);
      } else {
        for (const std::uint32_t i : selection) {
          dst.validity.append(src.validity.valid(i));
        }
      }
      out.columns.push_back({col.name, std::move(dst)});
    } else {
      const StringColumn& src = col.strs();
      StringColumn dst;
      dst.dict = src.dict;
      dst.codes.reserve(selection.size());
      std::size_t nulls = 0;
      for (const std::uint32_t i : selection) {
        const std::uint32_t c = src.codes[i];
        if (c == kNullCode) ++nulls;
        dst.codes.push_back(c);
      }
      dst.setNullCount(nulls);
      out.columns.push_back({col.name, std::move(dst)});
    }
  }
  return out;
}

std::vector<std::uint32_t> sortOrder(const Column& col, std::size_t rows,
                                     bool ascending) {
  std::vector<std::uint32_t> order(rows);
  std::iota(order.begin(), order.end(), std::uint32_t{0});
  if (col.isNumeric()) {
    const std::vector<double>& v = col.doubles().values;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return ascending ? v[a] < v[b] : v[b] < v[a];
                     });
  } else {
    // Rank the dictionary once (distinct strings, so a strict order) and
    // compare integer ranks per row — order-equivalent to comparing the
    // strings, so stable_sort yields the identical permutation.
    const StringColumn& sc = col.strs();
    const std::vector<std::string>& dict = sc.dict->values();
    std::vector<std::uint32_t> byString(dict.size());
    std::iota(byString.begin(), byString.end(), std::uint32_t{0});
    std::sort(byString.begin(), byString.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return dict[a] < dict[b];
              });
    std::vector<std::uint32_t> rankOf(dict.size());
    for (std::uint32_t r = 0; r < byString.size(); ++r) {
      rankOf[byString[r]] = r;
    }
    auto rank = [&](std::uint32_t row) {
      const std::uint32_t c = sc.codes[row];
      return c == kNullCode ? kNullCode : rankOf[c];
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return ascending ? rank(a) < rank(b)
                                        : rank(b) < rank(a);
                     });
  }
  return order;
}

namespace {

struct Accumulator {
  bool any = false;
  double sum = 0.0;
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double first = 0.0;

  void add(double v) {
    // Row-order streaming: sum grows left-to-right exactly like the row
    // engine's std::accumulate over the group's value vector.
    if (!any) {
      min = max = first = v;
      any = true;
    } else {
      min = std::min(min, v);
      max = std::max(max, v);
    }
    sum += v;
    ++count;
  }

  double result(Agg agg) const {
    switch (agg) {
      case Agg::kMean:
        return any ? sum / static_cast<double>(count) : kNaN;
      case Agg::kMin: return any ? min : kNaN;
      case Agg::kMax: return any ? max : kNaN;
      case Agg::kSum: return sum;
      case Agg::kCount: return static_cast<double>(count);
      case Agg::kFirst: return any ? first : kNaN;
    }
    throw InternalError("unhandled aggregation");
  }
};

}  // namespace

Table groupAggregate(const Table& in, std::span<const std::string> keys,
                     std::string_view valueColumn, Agg agg,
                     KernelStats* stats) {
  fillStats(stats, in.rows);
  const DoubleColumn& values = in.find(valueColumn)->doubles();
  std::vector<const StringColumn*> keyCols;
  keyCols.reserve(keys.size());
  for (const std::string& key : keys) keyCols.push_back(&in.find(key)->strs());

  const GroupIndex index = buildGroups(in.rows, keyCols);
  std::vector<Accumulator> acc(index.groups());
  const bool hasNulls = !values.validity.empty();
  for (std::size_t i = 0; i < in.rows; ++i) {
    if (hasNulls && !values.validity.valid(i)) continue;
    acc[index.groupOfRow[i]].add(values.values[i]);
  }

  Table out;
  out.rows = index.groups();
  emitKeyColumns(out, keys, keyCols, index.firstRow);
  DoubleColumn aggCol;
  aggCol.values.reserve(index.groups());
  for (const Accumulator& a : acc) aggCol.values.push_back(a.result(agg));
  aggCol.validity.appendRun(aggCol.values.size(), true);
  out.columns.push_back({std::string(valueColumn), std::move(aggCol)});
  return out;
}

double sortedPercentile(std::span<const double> sorted, double p) {
  REBENCH_REQUIRE(!sorted.empty() && p >= 0.0 && p <= 100.0);
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

namespace {

/// Exact percentile by selection instead of a full sort: nth_element
/// places the lo-th order statistic, and the partition guarantee makes
/// the (lo+1)-th the minimum of the upper tail.  The selected values are
/// the same values a sort would put there and the interpolation is the
/// same expression as sortedPercentile, so the result is bit-identical
/// to sort-then-interpolate — at O(n) per percentile instead of
/// O(n log n) per group.
double selectPercentile(std::span<double> slice, double p) {
  REBENCH_REQUIRE(!slice.empty() && p >= 0.0 && p <= 100.0);
  if (slice.size() == 1) return slice[0];
  const double rank = p / 100.0 * static_cast<double>(slice.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, slice.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  std::nth_element(slice.begin(), slice.begin() + static_cast<long>(lo),
                   slice.end());
  const double loVal = slice[lo];
  const double hiVal =
      hi == lo ? loVal
               : *std::min_element(slice.begin() + static_cast<long>(lo) + 1,
                                   slice.end());
  return loVal * (1.0 - frac) + hiVal * frac;
}

}  // namespace

Table groupPercentilesKernel(const Table& in,
                             std::span<const std::string> keys,
                             std::string_view valueColumn,
                             std::span<const double> percentiles,
                             std::span<const std::string> labels,
                             KernelStats* stats) {
  REBENCH_REQUIRE(percentiles.size() == labels.size());
  fillStats(stats, in.rows);
  const DoubleColumn& values = in.find(valueColumn)->doubles();
  std::vector<const StringColumn*> keyCols;
  keyCols.reserve(keys.size());
  for (const std::string& key : keys) keyCols.push_back(&in.find(key)->strs());

  const GroupIndex index = buildGroups(in.rows, keyCols);
  const std::size_t groups = index.groups();
  const bool hasNulls = !values.validity.empty();

  // Counting sort into per-group slices of one contiguous buffer: valid
  // values land grouped but still in row order, then each percentile is
  // selected from its slice without ever fully sorting it.
  std::vector<std::size_t> counts(groups, 0);
  for (std::size_t i = 0; i < in.rows; ++i) {
    if (hasNulls && !values.validity.valid(i)) continue;
    ++counts[index.groupOfRow[i]];
  }
  std::vector<std::size_t> offsets(groups + 1, 0);
  for (std::size_t g = 0; g < groups; ++g) {
    offsets[g + 1] = offsets[g] + counts[g];
  }
  std::vector<double> buffer(offsets[groups]);
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (std::size_t i = 0; i < in.rows; ++i) {
    if (hasNulls && !values.validity.valid(i)) continue;
    buffer[cursor[index.groupOfRow[i]]++] = values.values[i];
  }

  Table out;
  out.rows = groups;
  emitKeyColumns(out, keys, keyCols, index.firstRow);
  std::vector<DoubleColumn> pcols(percentiles.size());
  for (DoubleColumn& col : pcols) col.values.reserve(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    std::span<double> slice(buffer.data() + offsets[g],
                            offsets[g + 1] - offsets[g]);
    for (std::size_t p = 0; p < percentiles.size(); ++p) {
      pcols[p].values.push_back(
          slice.empty() ? kNaN : selectPercentile(slice, percentiles[p]));
    }
  }
  for (std::size_t p = 0; p < percentiles.size(); ++p) {
    pcols[p].validity.appendRun(pcols[p].values.size(), true);
    out.columns.push_back({labels[p], std::move(pcols[p])});
  }
  return out;
}

PivotCells pivotAggregate(const StringColumn& rowCol,
                          const StringColumn& colCol,
                          const DoubleColumn& values, Agg agg,
                          KernelStats* stats) {
  const std::size_t rows = rowCol.codes.size();
  fillStats(stats, rows);
  PivotCells out;
  // code -> label index maps (extra slot for the null sentinel), filled
  // in first-seen row order like the row engine's linear indexOf.
  std::vector<std::uint32_t> rowLabelOf(rowCol.dict->size() + 1, kNullCode);
  std::vector<std::uint32_t> colLabelOf(colCol.dict->size() + 1, kNullCode);
  std::vector<std::vector<Accumulator>> grid;
  const bool hasNulls = !values.validity.empty();

  auto labelSlot = [](const StringColumn& col, std::size_t i) {
    const std::uint32_t c = col.codes[i];
    return c == kNullCode ? col.dict->size() : static_cast<std::size_t>(c);
  };
  auto labelText = [](const StringColumn& col, std::size_t slot) {
    return slot == col.dict->size() ? std::string()
                                    : col.dict->at(
                                          static_cast<std::uint32_t>(slot));
  };

  for (std::size_t i = 0; i < rows; ++i) {
    const std::size_t rSlot = labelSlot(rowCol, i);
    const std::size_t cSlot = labelSlot(colCol, i);
    std::uint32_t r = rowLabelOf[rSlot];
    if (r == kNullCode) {
      r = static_cast<std::uint32_t>(out.rowLabels.size());
      rowLabelOf[rSlot] = r;
      out.rowLabels.push_back(labelText(rowCol, rSlot));
      grid.emplace_back(out.colLabels.size());
    }
    std::uint32_t c = colLabelOf[cSlot];
    if (c == kNullCode) {
      c = static_cast<std::uint32_t>(out.colLabels.size());
      colLabelOf[cSlot] = c;
      out.colLabels.push_back(labelText(colCol, cSlot));
      for (auto& gridRow : grid) gridRow.emplace_back();
    }
    if (!hasNulls || values.validity.valid(i)) {
      grid[r][c].add(values.values[i]);
    }
  }

  out.cells.assign(out.rowLabels.size(),
                   std::vector<std::optional<double>>(out.colLabels.size(),
                                                      std::nullopt));
  for (std::size_t r = 0; r < grid.size(); ++r) {
    for (std::size_t c = 0; c < grid[r].size(); ++c) {
      if (grid[r][c].any) out.cells[r][c] = grid[r][c].result(agg);
    }
  }
  return out;
}

Table describeTable(const Table& in, KernelStats* stats) {
  fillStats(stats, in.rows);
  StringColumn names;
  DoubleColumn count, mean, stddev, minimum, median, maximum;
  std::vector<double> scratch;
  for (const Column& col : in.columns) {
    if (!col.isNumeric()) continue;
    const DoubleColumn& nums = col.doubles();
    scratch.clear();
    const bool hasNulls = !nums.validity.empty();
    for (std::size_t i = 0; i < nums.values.size(); ++i) {
      if (hasNulls && !nums.validity.valid(i)) continue;
      scratch.push_back(nums.values[i]);
    }
    // Empty and all-null columns are skipped alike: no valid sample, no
    // describe row.
    if (scratch.empty()) continue;

    // The same accumulation order as stats::summarize (sum and min/max in
    // one row-order pass, two-pass stddev), so the bits match the row
    // engine; the three percentile() sorts collapse into one.
    double sum = 0.0;
    double mn = scratch[0];
    double mx = scratch[0];
    for (const double v : scratch) {
      sum += v;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    const double n = static_cast<double>(scratch.size());
    const double mu = sum / n;
    double sd = 0.0;
    if (scratch.size() > 1) {
      double ss = 0.0;
      for (const double v : scratch) ss += (v - mu) * (v - mu);
      sd = std::sqrt(ss / (n - 1.0));
    }
    std::sort(scratch.begin(), scratch.end());
    names.codes.push_back(names.dict->encode(col.name));
    count.values.push_back(n);
    mean.values.push_back(mu);
    stddev.values.push_back(sd);
    minimum.values.push_back(mn);
    median.values.push_back(sortedPercentile(scratch, 50.0));
    maximum.values.push_back(mx);
  }
  Table out;
  out.rows = names.codes.size();
  for (DoubleColumn* col :
       {&count, &mean, &stddev, &minimum, &median, &maximum}) {
    col->validity.appendRun(col->values.size(), true);
  }
  out.columns.push_back({"column", std::move(names)});
  out.columns.push_back({"count", std::move(count)});
  out.columns.push_back({"mean", std::move(mean)});
  out.columns.push_back({"std", std::move(stddev)});
  out.columns.push_back({"min", std::move(minimum)});
  out.columns.push_back({"median", std::move(median)});
  out.columns.push_back({"max", std::move(maximum)});
  return out;
}

}  // namespace rebench::columnar
