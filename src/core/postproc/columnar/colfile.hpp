// On-disk columnar frame layout (`rebench.colframe/1`).
//
// A converted frame is stored in the ObjectStore as one blob per column
// plus a JSON footer that carries the schema and the per-chunk zone maps:
//
//   footer   {"schema":"rebench.colframe/1","rows":R,"chunk_rows":65536,
//             "endian":16909060,"columns":[
//               {"name":"value","type":"f64","blob":"<hash>",
//                "null_count":0,"zones":[{"count":..,"nulls":..,
//                                         "min":..,"max":..},..]},
//               {"name":"system","type":"dict","blob":"<hash>",
//                "null_count":0,"zones":[{"count":..,"nulls":..,
//                                         "min_code":..,"max_code":..},..]}]}
//   f64 blob  raw doubles (rows*8 bytes) [+ validity words when nulls > 0]
//   dict blob u64 entry count, then (u32 len, bytes) per entry, then raw
//             u32 codes (rows*4 bytes)
//
// Column data is a contiguous array at a fixed offset — the layout is
// mmap-friendly — and zone maps live in the footer, so a predicate can
// decide which chunks matter before any column blob is even fetched.
// Zone-map doubles are serialized with shortest-round-trip formatting
// (service::formatExact): a lossy rendering could widen or *narrow* a
// chunk's [min,max] and make a skip unsafe.
//
// Reads are verified twice over: the ObjectStore re-hashes every blob,
// and the decoder cross-checks sizes, code ranges and null counts against
// the footer.  Any mismatch reads as "absent" — the cache degrades to a
// re-parse, never to a wrong frame (the BuildCache discipline).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "core/postproc/columnar/table.hpp"
#include "core/store/object_store.hpp"

namespace rebench::columnar {

inline constexpr std::string_view kColFrameSchema = "rebench.colframe/1";

/// Serializes `table` into the store (one blob per column + footer) and
/// returns the footer hash.  Deterministic: the same table yields the
/// same bytes and therefore the same hashes.
std::string writeColFrame(store::ObjectStore& store, const Table& table);

/// Verified load; nullopt when the footer or any column blob is missing,
/// corrupt, or inconsistent with the footer metadata.  Zone maps from the
/// footer are attached to the loaded columns, so predicates skip chunks
/// without a rebuild pass.
std::optional<Table> readColFrame(store::ObjectStore& store,
                                  const std::string& footerHash);

}  // namespace rebench::columnar
