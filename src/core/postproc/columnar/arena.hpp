// Bump arena for kernel scratch space (rebench::columnar).
//
// The vectorized kernels need short-lived selection vectors and translation
// tables sized by the input, often several per operation.  Allocating each
// from the heap dominates small-frame latency and fragments large-frame
// runs, so kernels draw from a bump arena instead: allocation is a pointer
// increment, and the whole arena is released at once when the operation
// ends.  Blocks grow geometrically; an oversized request gets a dedicated
// block.  Trivially-destructible element types only — the arena never runs
// destructors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace rebench::columnar {

class Arena {
 public:
  explicit Arena(std::size_t initialBytes = 1 << 16)
      : nextBlockBytes_(initialBytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage for `count` elements of T, aligned for T.
  template <typename T>
  std::span<T> alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    const std::size_t bytes = count * sizeof(T);
    std::byte* p = allocBytes(bytes, alignof(T));
    return {reinterpret_cast<T*>(p), count};
  }

  /// Bytes handed out since construction / the last reset.
  std::size_t allocatedBytes() const { return allocated_; }
  /// Bytes owned by the arena's blocks (capacity, not usage).
  std::size_t reservedBytes() const { return reserved_; }

  /// Releases every allocation but keeps the largest block for reuse.
  void reset() {
    if (blocks_.size() > 1) {
      Block keep = std::move(blocks_.back());
      blocks_.clear();
      reserved_ = keep.size;
      blocks_.push_back(std::move(keep));
    }
    cursor_ = 0;
    allocated_ = 0;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  std::byte* allocBytes(std::size_t bytes, std::size_t align) {
    if (blocks_.empty() || !fits(bytes, align)) grow(bytes + align);
    Block& block = blocks_.back();
    std::size_t aligned = (cursor_ + align - 1) & ~(align - 1);
    cursor_ = aligned + bytes;
    allocated_ += bytes;
    return block.data.get() + aligned;
  }

  bool fits(std::size_t bytes, std::size_t align) const {
    const Block& block = blocks_.back();
    const std::size_t aligned = (cursor_ + align - 1) & ~(align - 1);
    return aligned + bytes <= block.size;
  }

  void grow(std::size_t atLeast) {
    std::size_t size = nextBlockBytes_;
    while (size < atLeast) size *= 2;
    nextBlockBytes_ = size * 2;
    blocks_.push_back({std::make_unique<std::byte[]>(size), size});
    reserved_ += size;
    cursor_ = 0;
  }

  std::vector<Block> blocks_;
  std::size_t cursor_ = 0;
  std::size_t nextBlockBytes_;
  std::size_t allocated_ = 0;
  std::size_t reserved_ = 0;
};

}  // namespace rebench::columnar
