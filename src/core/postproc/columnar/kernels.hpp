// Vectorized kernels over contiguous columns (rebench::columnar layer 2).
//
// Each kernel works on selection vectors (row-index arrays drawn from a
// bump Arena) instead of materializing row copies; string work happens on
// dictionary codes, so group-by and pivot never touch a `std::string` per
// row.  Zone maps let equality / range predicates skip whole chunks whose
// [min,max] excludes the probe.
//
// Determinism contract (the PR-4 invariant): every kernel reproduces the
// row engine's results bit-for-bit —
//   * group-by / pivot emit groups and labels in first-seen row order and
//     accumulate sums in row order, so kMean equals the row engine's
//     left-to-right std::accumulate exactly;
//   * sort uses std::stable_sort with an order-equivalent comparator
//     (string columns compare precomputed dictionary ranks), yielding the
//     identical permutation;
//   * percentiles select their order statistics from one scratch copy
//     (sortedPercentile's exact interpolation over the exact values a
//     sort would yield), so the same bits as stats::percentile.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/postproc/columnar/arena.hpp"
#include "core/postproc/columnar/table.hpp"

namespace rebench::columnar {

enum class Agg { kMean, kMin, kMax, kSum, kCount, kFirst };

/// Work accounting a kernel reports into its observability span.
struct KernelStats {
  std::size_t rows = 0;           // input rows processed
  std::size_t chunks = 0;         // zone chunks covering the input
  std::size_t skippedChunks = 0;  // chunks excluded by zone maps
};

// ---- selection ----------------------------------------------------------

/// Rows where `col == value`, in row order.  Chunks whose code zone
/// excludes the probe (or a value absent from the dictionary entirely)
/// are skipped without scanning.  The result lives in `arena`.
std::span<const std::uint32_t> selectEquals(const StringColumn& col,
                                            std::string_view value,
                                            Arena& arena,
                                            KernelStats* stats = nullptr);

/// Rows where `lo <= col <= hi` (nulls excluded), skipping chunks whose
/// numeric zone lies outside the range.
std::span<const std::uint32_t> selectRange(const DoubleColumn& col,
                                           double lo, double hi, Arena& arena,
                                           KernelStats* stats = nullptr);

/// Rows where an arbitrary predicate holds; no chunk skipping.
std::span<const std::uint32_t> selectPredicate(
    std::size_t rows, const std::function<bool(std::size_t)>& predicate,
    Arena& arena);

/// Materializes the selected rows of every column.  String columns share
/// the input dictionary (codes are copied, strings are not).
Table gather(const Table& in, std::span<const std::uint32_t> selection);

// ---- sort ---------------------------------------------------------------

/// Stable permutation ordering `rows` rows by `col`.  Equivalent to the
/// row engine's stable_sort on cell values.
std::vector<std::uint32_t> sortOrder(const Column& col, std::size_t rows,
                                     bool ascending);

// ---- aggregation --------------------------------------------------------

/// Hash-aggregation on dictionary codes: groups on string key columns in
/// first-seen order and aggregates `valueColumn`.  Output columns: keys
/// (sharing input dictionaries), then the aggregate under the value
/// column's name.  Null values are excluded from the aggregate; a group
/// with no valid value aggregates to NaN (0 for kSum / kCount).
Table groupAggregate(const Table& in, std::span<const std::string> keys,
                     std::string_view valueColumn, Agg agg,
                     KernelStats* stats = nullptr);

/// Per-group percentiles by O(n) selection (nth_element, never a full
/// sort) — bit-identical to sorting first, since the selected order
/// statistics are the same values.  Emits the key columns followed by
/// one numeric column per requested percentile, named by `labels` (same
/// length as `percentiles`).
Table groupPercentilesKernel(const Table& in,
                             std::span<const std::string> keys,
                             std::string_view valueColumn,
                             std::span<const double> percentiles,
                             std::span<const std::string> labels,
                             KernelStats* stats = nullptr);

struct PivotCells {
  std::vector<std::string> rowLabels;
  std::vector<std::string> colLabels;
  std::vector<std::vector<std::optional<double>>> cells;
};

/// (row,col) -> aggregate matrix; labels in first-seen order, cells with
/// no data (or only nulls) are nullopt.
PivotCells pivotAggregate(const StringColumn& rowCol,
                          const StringColumn& colCol,
                          const DoubleColumn& values, Agg agg,
                          KernelStats* stats = nullptr);

/// describe(): one row per numeric column with at least one valid value —
/// column/count/mean/std/min/median/max, matching stats::summarize
/// bit-for-bit (single sort instead of three).
Table describeTable(const Table& in, KernelStats* stats = nullptr);

/// Linear-interpolated percentile over an already-sorted sample; the same
/// formula as stats::percentile after its sort.
double sortedPercentile(std::span<const double> sorted, double p);

}  // namespace rebench::columnar
