#include "core/postproc/columnar/merge.hpp"

#include <algorithm>

#include "core/util/error.hpp"

namespace rebench::columnar {

namespace {

std::string typeName(const Column& col) {
  return col.isNumeric() ? "numeric" : "string";
}

/// Appends one chunk's string column into the output column, translating
/// dictionary codes.  Shared dictionaries copy codes verbatim; foreign
/// dictionaries get a per-chunk translation table (O(dictionary size)).
void appendStringChunk(StringColumn& out, const StringColumn& chunk) {
  out.setNullCount(out.nullCount() + chunk.nullCount());
  if (out.dict == chunk.dict) {
    out.codes.insert(out.codes.end(), chunk.codes.begin(), chunk.codes.end());
    return;
  }
  std::vector<std::uint32_t> translate(chunk.dict->size());
  for (std::uint32_t c = 0; c < translate.size(); ++c) {
    translate[c] = out.dict->encode(chunk.dict->at(c));
  }
  out.codes.reserve(out.codes.size() + chunk.codes.size());
  for (const std::uint32_t c : chunk.codes) {
    out.codes.push_back(c == kNullCode ? kNullCode : translate[c]);
  }
}

void appendDoubleChunk(DoubleColumn& out, const DoubleColumn& chunk) {
  out.values.insert(out.values.end(), chunk.values.begin(),
                    chunk.values.end());
  if (chunk.validity.empty()) {
    out.validity.appendRun(chunk.values.size(), true);
  } else {
    for (std::size_t i = 0; i < chunk.values.size(); ++i) {
      out.validity.append(chunk.validity.valid(i));
    }
  }
}

}  // namespace

void requireSameSchema(const Table& first, const Table& other,
                       std::size_t otherIndex) {
  if (other.columns.size() != first.columns.size()) {
    throw Error("cannot concat frames: frame " + std::to_string(otherIndex) +
                " has " + std::to_string(other.columns.size()) +
                " column(s), frame 1 has " +
                std::to_string(first.columns.size()));
  }
  for (std::size_t c = 0; c < first.columns.size(); ++c) {
    if (other.columns[c].name != first.columns[c].name) {
      throw Error("cannot concat frames: column " + std::to_string(c + 1) +
                  " is '" + other.columns[c].name + "' in frame " +
                  std::to_string(otherIndex) + " but '" +
                  first.columns[c].name + "' in frame 1");
    }
  }
  for (std::size_t c = 0; c < first.columns.size(); ++c) {
    if (other.columns[c].isNumeric() != first.columns[c].isNumeric()) {
      throw Error("cannot concat frames: column '" + first.columns[c].name +
                  "' is " + typeName(other.columns[c]) + " in frame " +
                  std::to_string(otherIndex) + " but " +
                  typeName(first.columns[c]) + " in frame 1");
    }
  }
}

void TableAppender::append(const Table& chunk) {
  ++stats_.inputs;
  ++stats_.chunks;
  stats_.rows += chunk.rows;
  stats_.peakBufferedRows = std::max(stats_.peakBufferedRows, chunk.rows);
  if (first_) {
    out_ = chunk;  // deep copy of codes/values; dictionaries shared
    for (Column& col : out_.columns) {
      if (col.isNumeric()) {
        col.doubles().invalidate();
      } else {
        col.strs().invalidate();
      }
    }
    first_ = false;
    return;
  }
  requireSameSchema(out_, chunk, stats_.inputs);
  for (std::size_t c = 0; c < out_.columns.size(); ++c) {
    if (out_.columns[c].isNumeric()) {
      appendDoubleChunk(out_.columns[c].doubles(), chunk.columns[c].doubles());
    } else {
      appendStringChunk(out_.columns[c].strs(), chunk.columns[c].strs());
    }
  }
  out_.rows += chunk.rows;
}

Table TableAppender::take() {
  Table out = std::move(out_);
  out_ = Table{};
  first_ = true;
  return out;
}

Table concatTables(std::span<const Table* const> tables, ConcatStats* stats) {
  if (tables.empty()) return {};
  // Row-engine error precedence: every frame's column names are validated
  // before any type is, so a name mismatch in frame 3 outranks a type
  // mismatch in frame 2.
  const Table& first = *tables.front();
  for (std::size_t f = 1; f < tables.size(); ++f) {
    const Table& other = *tables[f];
    if (other.columns.size() != first.columns.size()) {
      requireSameSchema(first, other, f + 1);
    }
    for (std::size_t c = 0; c < first.columns.size(); ++c) {
      if (other.columns[c].name != first.columns[c].name) {
        requireSameSchema(first, other, f + 1);
      }
    }
  }
  TableAppender appender;
  for (const Table* table : tables) appender.append(*table);
  if (stats != nullptr) *stats = appender.stats();
  return appender.take();
}

}  // namespace rebench::columnar
