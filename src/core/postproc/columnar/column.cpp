#include "core/postproc/columnar/column.hpp"

#include <algorithm>

namespace rebench::columnar {

void NullBitmap::append(bool valid) {
  if (!valid && !tracked_) materialize();
  if (tracked_) {
    if ((size_ & 63) == 0) words_.push_back(0);
    if (valid) words_[size_ >> 6] |= std::uint64_t{1} << (size_ & 63);
  }
  if (!valid) ++nullCount_;
  ++size_;
}

void NullBitmap::appendRun(std::size_t count, bool valid) {
  if (valid && !tracked_) {
    size_ += count;
    return;
  }
  for (std::size_t i = 0; i < count; ++i) append(valid);
}

void NullBitmap::materialize() {
  // Backfill: every row appended so far was valid.  Bits past size_ stay
  // clear so serialized bitmaps are deterministic.
  words_.assign((size_ + 63) / 64, ~std::uint64_t{0});
  if (size_ % 64 != 0) {
    words_.back() = (std::uint64_t{1} << (size_ % 64)) - 1;
  }
  tracked_ = true;
}

NullBitmap NullBitmap::fromWords(std::vector<std::uint64_t> words,
                                 std::size_t size) {
  NullBitmap out;
  out.words_ = std::move(words);
  out.size_ = size;
  out.tracked_ = true;
  std::size_t valid = 0;
  for (std::size_t i = 0; i < size; ++i) {
    if (out.valid(i)) ++valid;
  }
  out.nullCount_ = size - valid;
  return out;
}

std::uint32_t Dictionary::encode(std::string_view value) {
  auto it = index_.find(value);
  if (it != index_.end()) return it->second;
  const auto code = static_cast<std::uint32_t>(values_.size());
  values_.emplace_back(value);
  index_.emplace(values_.back(), code);
  return code;
}

std::optional<std::uint32_t> Dictionary::find(std::string_view value) const {
  auto it = index_.find(value);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::vector<NumericZone>& DoubleColumn::zones() const {
  if (!zones_) {
    auto built = std::make_shared<std::vector<NumericZone>>();
    built->reserve(values.size() / kChunkRows + 1);
    for (std::size_t base = 0; base < values.size(); base += kChunkRows) {
      const std::size_t end = std::min(base + kChunkRows, values.size());
      NumericZone zone;
      zone.count = static_cast<std::uint32_t>(end - base);
      bool any = false;
      for (std::size_t i = base; i < end; ++i) {
        if (!validity.valid(i)) {
          ++zone.nulls;
          continue;
        }
        const double v = values[i];
        if (!any) {
          zone.min = zone.max = v;
          any = true;
        } else {
          zone.min = std::min(zone.min, v);
          zone.max = std::max(zone.max, v);
        }
      }
      built->push_back(zone);
    }
    zones_ = std::move(built);
  }
  return *zones_;
}

void DoubleColumn::setZones(std::vector<NumericZone> zones) const {
  zones_ = std::make_shared<const std::vector<NumericZone>>(std::move(zones));
}

const std::vector<CodeZone>& StringColumn::zones() const {
  if (!zones_) {
    auto built = std::make_shared<std::vector<CodeZone>>();
    built->reserve(codes.size() / kChunkRows + 1);
    for (std::size_t base = 0; base < codes.size(); base += kChunkRows) {
      const std::size_t end = std::min(base + kChunkRows, codes.size());
      CodeZone zone;
      zone.count = static_cast<std::uint32_t>(end - base);
      bool any = false;
      for (std::size_t i = base; i < end; ++i) {
        const std::uint32_t c = codes[i];
        if (c == kNullCode) {
          ++zone.nulls;
          continue;
        }
        if (!any) {
          zone.minCode = zone.maxCode = c;
          any = true;
        } else {
          zone.minCode = std::min(zone.minCode, c);
          zone.maxCode = std::max(zone.maxCode, c);
        }
      }
      built->push_back(zone);
    }
    zones_ = std::move(built);
  }
  return *zones_;
}

void StringColumn::setZones(std::vector<CodeZone> zones) const {
  zones_ = std::make_shared<const std::vector<CodeZone>>(std::move(zones));
}

const std::vector<std::string>& StringColumn::materialize() const {
  if (!cache_) {
    auto built = std::make_shared<std::vector<std::string>>();
    built->reserve(codes.size());
    for (const std::uint32_t c : codes) {
      built->push_back(c == kNullCode ? std::string() : dict->at(c));
    }
    cache_ = std::move(built);
  }
  return *cache_;
}

}  // namespace rebench::columnar
