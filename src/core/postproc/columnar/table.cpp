#include "core/postproc/columnar/table.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace rebench::columnar {

void TaggedColumnBuilder::add(std::string cell) {
  if (allNumeric_) {
    bool parsed = false;
    try {
      std::size_t used = 0;
      const double v = std::stod(cell, &used);
      if (used == cell.size()) {
        nums_.push_back(v);
        parsed = true;
      }
    } catch (const std::exception&) {
      // falls through to the non-numeric commit below
    }
    if (!parsed) {
      allNumeric_ = false;
      nums_.clear();
      nums_.shrink_to_fit();
    }
  }
  raw_.push_back(std::move(cell));
  isNull_.push_back(false);
}

void TaggedColumnBuilder::addNull() {
  if (allNumeric_) nums_.push_back(std::numeric_limits<double>::quiet_NaN());
  raw_.emplace_back();
  isNull_.push_back(true);
  ++nulls_;
}

DoubleColumn TaggedColumnBuilder::takeNumeric() {
  DoubleColumn col;
  col.values = std::move(nums_);
  for (const bool null : isNull_) col.validity.append(!null);
  return col;
}

StringColumn TaggedColumnBuilder::takeStrings() {
  StringColumn col;
  col.codes.reserve(raw_.size());
  for (std::size_t i = 0; i < raw_.size(); ++i) {
    if (isNull_[i]) {
      col.codes.push_back(kNullCode);
    } else {
      col.codes.push_back(col.dict->encode(raw_[i]));
    }
  }
  col.setNullCount(nulls_);
  return col;
}

void appendDouble(DoubleColumn& col, double value) {
  col.values.push_back(value);
  col.validity.append(true);
  col.invalidate();
}

void appendDoubleNull(DoubleColumn& col) {
  col.values.push_back(std::numeric_limits<double>::quiet_NaN());
  col.validity.append(false);
  col.invalidate();
}

void appendString(StringColumn& col, std::string_view value) {
  col.codes.push_back(col.dict->encode(value));
  col.invalidate();
}

void appendStringNull(StringColumn& col) {
  col.codes.push_back(kNullCode);
  col.setNullCount(col.nullCount() + 1);
  col.invalidate();
}

}  // namespace rebench::columnar
