// Typed column store (rebench::columnar layer 0).
//
// The row-oriented DataFrame kept every cell as an owned value —
// `vector<string>` per string column — which made million-row perflog
// frames allocation-bound.  The columnar engine stores one contiguous
// buffer per column instead:
//
//   numeric  : contiguous `double` values (+ a null bitmap; null slots
//              hold NaN so plain kernels need no branches)
//   string   : dictionary-encoded `uint32_t` codes into an append-only,
//              first-seen-order dictionary shared across derived frames
//              (filter/sort/gather copy codes, never strings); the code
//              0xffffffff is the null sentinel
//
// Every column lazily carries per-chunk zone maps (min/max/count over
// kChunkRows rows) so equality and range predicates can skip chunks whose
// range excludes the probe — see kernels.hpp.  Zone maps and the string
// materialization cache are memoized on the column; builders must call
// invalidate() after appending.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rebench::columnar {

/// Rows per zone-map chunk.  Matches the streaming-merge chunk size so a
/// converted shard's zones line up with its read granularity.
inline constexpr std::size_t kChunkRows = 65536;

/// Dictionary code reserved for null string cells.
inline constexpr std::uint32_t kNullCode =
    std::numeric_limits<std::uint32_t>::max();

/// Validity bitmap: bit i set means row i holds a real value.  An empty
/// bitmap (size 0) means "all rows valid" — the common perflog case costs
/// no memory and no branches.
class NullBitmap {
 public:
  void append(bool valid);
  /// Appends `count` rows of the same validity; O(1) for valid runs on an
  /// untracked bitmap (the bulk-concat fast path).
  void appendRun(std::size_t count, bool valid);
  /// Valid when no bitmap is tracked or the bit is set.
  bool valid(std::size_t i) const {
    return !tracked_ || ((words_[i >> 6] >> (i & 63)) & 1) != 0;
  }
  std::size_t size() const { return size_; }
  /// True while every row is valid (no bitmap storage allocated).
  bool empty() const { return !tracked_; }
  std::size_t nullCount() const { return nullCount_; }
  const std::vector<std::uint64_t>& words() const { return words_; }

  /// Rebuilds from raw words (colfile reads).
  static NullBitmap fromWords(std::vector<std::uint64_t> words,
                              std::size_t size);

 private:
  void materialize();  // backfills all-valid words when first null arrives

  bool tracked_ = false;
  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
  std::size_t nullCount_ = 0;
};

/// Per-chunk statistics for a numeric column; min/max ignore null slots.
struct NumericZone {
  std::uint32_t count = 0;
  std::uint32_t nulls = 0;
  double min = 0.0;
  double max = 0.0;
};

/// Per-chunk statistics for a dictionary column; min/max over codes.
struct CodeZone {
  std::uint32_t count = 0;
  std::uint32_t nulls = 0;
  std::uint32_t minCode = 0;
  std::uint32_t maxCode = 0;
};

/// Append-only string dictionary; codes are assigned in first-seen order,
/// which is what keeps group-by / pivot label order identical to the row
/// engine's first-seen scan.
class Dictionary {
 public:
  std::uint32_t encode(std::string_view value);
  std::optional<std::uint32_t> find(std::string_view value) const;
  const std::string& at(std::uint32_t code) const { return values_[code]; }
  std::size_t size() const { return values_.size(); }
  const std::vector<std::string>& values() const { return values_; }

 private:
  std::vector<std::string> values_;
  std::map<std::string, std::uint32_t, std::less<>> index_;
};

struct DoubleColumn {
  std::vector<double> values;
  NullBitmap validity;  // empty -> all valid

  std::size_t nullCount() const { return validity.nullCount(); }
  /// Lazily built, cached zone maps (one per kChunkRows rows).
  const std::vector<NumericZone>& zones() const;
  void setZones(std::vector<NumericZone> zones) const;
  void invalidate() { zones_.reset(); }

 private:
  mutable std::shared_ptr<const std::vector<NumericZone>> zones_;
};

struct StringColumn {
  std::vector<std::uint32_t> codes;
  std::shared_ptr<Dictionary> dict = std::make_shared<Dictionary>();

  std::size_t nullCount() const { return nullCount_; }
  void setNullCount(std::size_t n) { nullCount_ = n; }

  const std::vector<CodeZone>& zones() const;
  void setZones(std::vector<CodeZone> zones) const;

  /// Decoded `vector<string>` view, built on first use and cached — this
  /// is what keeps `DataFrame::strings()` returning a reference without
  /// storing row-wise strings on the hot path.  Null cells decode to "".
  const std::vector<std::string>& materialize() const;
  void invalidate() {
    zones_.reset();
    cache_.reset();
  }

 private:
  std::size_t nullCount_ = 0;
  mutable std::shared_ptr<const std::vector<CodeZone>> zones_;
  mutable std::shared_ptr<const std::vector<std::string>> cache_;
};

}  // namespace rebench::columnar
