// A small column-typed data frame — the Pandas stand-in of §2.4.
//
// Columns are either numeric (double) or string; rows are implicit.  The
// operations provided are exactly those the paper's post-processing
// pipeline needs: concatenating perflogs from isolated systems, filtering,
// group-by aggregation, sorting, pivoting to (row,col)->value matrices for
// heatmaps, and CSV round-tripping.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

namespace rebench {

enum class Agg { kMean, kMin, kMax, kSum, kCount, kFirst };

/// Pivoted matrix, e.g. programming-model × platform for Figure 2.
struct PivotTable {
  std::vector<std::string> rowLabels;
  std::vector<std::string> colLabels;
  /// cells[r][c]; nullopt where no data exists (the white boxes of Fig. 2).
  std::vector<std::vector<std::optional<double>>> cells;
};

class DataFrame {
 public:
  using NumericColumn = std::vector<double>;
  using StringColumn = std::vector<std::string>;
  using Column = std::variant<NumericColumn, StringColumn>;

  DataFrame() = default;

  void addNumeric(std::string name, NumericColumn values);
  void addStrings(std::string name, StringColumn values);

  std::size_t rowCount() const { return rows_; }
  std::size_t columnCount() const { return columns_.size(); }
  bool empty() const { return rows_ == 0; }

  bool hasColumn(std::string_view name) const;
  bool isNumeric(std::string_view name) const;
  std::vector<std::string> columnNames() const;

  /// Throws NotFoundError / InternalError on missing or mistyped columns.
  const NumericColumn& numeric(std::string_view name) const;
  const StringColumn& strings(std::string_view name) const;

  /// Cell rendered as text regardless of column type.
  std::string cellText(std::string_view name, std::size_t row) const;

  // ---- relational operations -------------------------------------------
  DataFrame filter(const std::function<bool(std::size_t)>& rowPredicate) const;
  DataFrame filterEquals(std::string_view column,
                         std::string_view value) const;
  DataFrame selectColumns(std::span<const std::string> names) const;
  DataFrame sortBy(std::string_view column, bool ascending = true) const;

  /// Row-wise concatenation; requires identical schemas (names and types in
  /// order) — the cross-platform assimilation step of Principle 6.
  static DataFrame concat(std::span<const DataFrame> frames);

  /// Groups on string key columns and aggregates one numeric column.
  /// Output columns: keys..., then `valueColumn` holding the aggregate.
  DataFrame groupBy(std::span<const std::string> keyColumns,
                    std::string_view valueColumn, Agg agg) const;

  PivotTable pivot(std::string_view rowKey, std::string_view colKey,
                   std::string_view valueColumn, Agg agg = Agg::kMean) const;

  /// Pandas-style describe(): one row per numeric column with columns
  /// column/count/mean/std/min/median/max.
  DataFrame describe() const;

  // ---- serialization ------------------------------------------------------
  std::string toCsv() const;
  /// All-string parse except columns where every value parses as double.
  static DataFrame fromCsv(const std::string& text);

 private:
  const Column& column(std::string_view name) const;
  DataFrame takeRows(const std::vector<std::size_t>& indices) const;

  std::vector<std::pair<std::string, Column>> columns_;
  std::size_t rows_ = 0;
};

}  // namespace rebench
