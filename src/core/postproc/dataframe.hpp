// A small column-typed data frame — the Pandas stand-in of §2.4.
//
// Columns are either numeric (double) or string; rows are implicit.  The
// operations provided are exactly those the paper's post-processing
// pipeline needs: concatenating perflogs from isolated systems, filtering,
// group-by aggregation, sorting, pivoting to (row,col)->value matrices for
// heatmaps, and CSV round-tripping.
//
// Since the columnar refactor this class is a façade: storage and kernels
// live in rebench::columnar (contiguous doubles, dictionary-encoded
// strings, selection vectors, zone maps — see columnar/kernels.hpp), and
// every operation reproduces the original row engine bit-for-bit (the
// `legacy::RowFrame` in legacy_rowframe.hpp, which the byte-identity
// ctest gate diffs against).  `strings()` decodes the dictionary into a
// cached `vector<string>` on first use, so the accessor API is unchanged.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "core/postproc/columnar/kernels.hpp"
#include "core/postproc/columnar/table.hpp"

namespace rebench::obs {
class Tracer;
}  // namespace rebench::obs

namespace rebench {

using Agg = columnar::Agg;

/// Pivoted matrix, e.g. programming-model × platform for Figure 2.
struct PivotTable {
  std::vector<std::string> rowLabels;
  std::vector<std::string> colLabels;
  /// cells[r][c]; nullopt where no data exists (the white boxes of Fig. 2).
  std::vector<std::vector<std::optional<double>>> cells;
};

class DataFrame {
 public:
  using NumericColumn = std::vector<double>;
  using StringColumn = std::vector<std::string>;
  using Column = std::variant<NumericColumn, StringColumn>;

  DataFrame() = default;

  void addNumeric(std::string name, NumericColumn values);
  void addStrings(std::string name, StringColumn values);
  /// Numeric column with explicit validity (false = null).  Nulls are
  /// excluded from aggregates and describe(); `numeric()` exposes them as
  /// NaN placeholders.
  void addNumericWithNulls(std::string name, NumericColumn values,
                           const std::vector<bool>& valid);

  std::size_t rowCount() const { return table_.rows; }
  std::size_t columnCount() const { return table_.columns.size(); }
  bool empty() const { return table_.rows == 0; }

  bool hasColumn(std::string_view name) const;
  bool isNumeric(std::string_view name) const;
  std::vector<std::string> columnNames() const;

  /// Throws NotFoundError / InternalError on missing or mistyped columns.
  const NumericColumn& numeric(std::string_view name) const;
  const StringColumn& strings(std::string_view name) const;

  /// Cell rendered as text regardless of column type.
  std::string cellText(std::string_view name, std::size_t row) const;

  // ---- relational operations -------------------------------------------
  DataFrame filter(const std::function<bool(std::size_t)>& rowPredicate) const;
  DataFrame filterEquals(std::string_view column,
                         std::string_view value) const;
  /// Rows with `lo <= column <= hi` (inclusive; nulls excluded) — the
  /// zone-mapped range predicate.
  DataFrame filterRange(std::string_view column, double lo, double hi) const;
  DataFrame selectColumns(std::span<const std::string> names) const;
  DataFrame sortBy(std::string_view column, bool ascending = true) const;

  /// Row-wise concatenation; requires identical schemas (names and types in
  /// order) — the cross-platform assimilation step of Principle 6.  The
  /// error names the first mismatching column.
  static DataFrame concat(std::span<const DataFrame> frames);

  /// Groups on string key columns and aggregates one numeric column.
  /// Output columns: keys..., then `valueColumn` holding the aggregate.
  DataFrame groupBy(std::span<const std::string> keyColumns,
                    std::string_view valueColumn, Agg agg) const;

  /// Per-group percentiles (O(n) selection, no full sort): keys..., then
  /// one column per requested percentile named "p50", "p99.9", ...
  DataFrame groupPercentiles(std::span<const std::string> keyColumns,
                             std::string_view valueColumn,
                             std::span<const double> percentiles) const;

  PivotTable pivot(std::string_view rowKey, std::string_view colKey,
                   std::string_view valueColumn, Agg agg = Agg::kMean) const;

  /// Pandas-style describe(): one row per numeric column with columns
  /// column/count/mean/std/min/median/max.  Empty and all-null numeric
  /// columns are skipped alike.
  DataFrame describe() const;

  // ---- serialization ------------------------------------------------------
  std::string toCsv() const;
  /// All-string parse except columns where every value parses as double.
  /// Single-pass: each cell is parsed once into a tagged buffer and the
  /// column type commits at end of input.
  static DataFrame fromCsv(const std::string& text);

  // ---- engine access ------------------------------------------------------
  /// Wraps a columnar table directly (the perflog cache / merge paths).
  static DataFrame fromTable(columnar::Table table);
  const columnar::Table& table() const { return table_; }

  /// Optional observability: when set, kernels emit
  /// `postproc.columnar.kernel` spans (rows / chunks / skipped_chunks)
  /// and concat emits `postproc.columnar.merge`.  The tracer is borrowed,
  /// not owned, and propagates to derived frames.
  void setTracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

 private:
  const columnar::Column& columnRef(std::string_view name) const;
  const columnar::DoubleColumn& numericCol(std::string_view name) const;
  const columnar::StringColumn& stringCol(std::string_view name) const;
  DataFrame wrap(columnar::Table table) const;  // keeps the tracer

  columnar::Table table_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace rebench
