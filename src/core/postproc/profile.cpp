#include "core/postproc/profile.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "core/obs/json.hpp"
#include "core/util/error.hpp"
#include "core/util/strings.hpp"
#include "core/util/table.hpp"

namespace rebench::postproc {

namespace {

std::string attrOr(const obs::SpanRecord& span, const std::string& key,
                   std::string fallback) {
  const auto it = span.attrs.find(key);
  return it == span.attrs.end() ? std::move(fallback) : it->second;
}

std::string unitLabel(const obs::SpanRecord& span) {
  return attrOr(span, "test", "?") + "@" + attrOr(span, "target", "?") +
         " r" + attrOr(span, "repeat", "0");
}

/// Summed duration of `store.singleflight` descendants of `rootId` with
/// role=follower — the time this campaign spent parked behind another
/// campaign's build.
double followerBlockedSeconds(const obs::TraceFile& trace,
                              const std::string& rootId) {
  const std::string prefix = rootId + ".";
  double blocked = 0.0;
  for (const obs::SpanRecord& span : trace.spans) {
    if (span.name != "store.singleflight") continue;
    if (!str::startsWith(span.id, prefix)) continue;
    if (attrOr(span, "role", "") == "follower") blocked += span.duration();
  }
  return blocked;
}

}  // namespace

TraceProfile profileTrace(const obs::TraceFile& trace) {
  TraceProfile profile;
  for (const obs::SpanRecord& span : trace.spans) {
    if (span.name != "exec.worker") continue;
    const auto lane = span.attrs.find("lane");
    const auto sim = span.attrs.find("sim_seconds");
    if (lane == span.attrs.end() || sim == span.attrs.end()) {
      throw Error("profile: exec.worker span '" + span.id +
                  "' lacks the lane/sim_seconds stamps - the trace "
                  "predates the profiling contract; re-run the campaign");
    }
    ProfiledUnit unit;
    unit.spanId = span.id;
    unit.label = unitLabel(span);
    unit.lane = std::stoi(lane->second);
    unit.simSeconds = std::stod(sim->second);
    unit.blockedSeconds = followerBlockedSeconds(trace, span.id);
    profile.units.push_back(std::move(unit));
  }
  profile.fromWorkerSpans = !profile.units.empty();

  if (!profile.fromWorkerSpans) {
    // Run-mode trace: no executor layer, so campaigns are the test_run
    // roots and they executed strictly in sequence on one lane.  Span
    // durations stand in for the (unstamped) simulated seconds.
    for (const obs::SpanRecord& span : trace.spans) {
      if (span.name != "test_run" || !span.parent.empty()) continue;
      ProfiledUnit unit;
      unit.spanId = span.id;
      unit.label = unitLabel(span);
      unit.lane = 0;
      unit.simSeconds = span.duration();
      unit.blockedSeconds = followerBlockedSeconds(trace, span.id);
      profile.units.push_back(std::move(unit));
    }
  }
  if (profile.units.empty()) {
    throw Error(
        "profile: trace has no exec.worker or test_run spans to profile");
  }

  // Replay the stamped schedule: units chain per lane in file (canonical)
  // order, each starting the moment its lane last freed up — exactly how
  // the executor's greedy list schedule laid them out.
  int maxLane = 0;
  for (const ProfiledUnit& unit : profile.units) {
    maxLane = std::max(maxLane, unit.lane);
  }
  std::vector<double> laneFree(static_cast<std::size_t>(maxLane) + 1, 0.0);
  std::vector<LaneStats> lanes(laneFree.size());
  for (ProfiledUnit& unit : profile.units) {
    const auto lane = static_cast<std::size_t>(unit.lane);
    unit.start = laneFree[lane];
    unit.end = unit.start + unit.simSeconds;
    laneFree[lane] = unit.end;
    lanes[lane].lane = unit.lane;
    ++lanes[lane].units;
    lanes[lane].busySeconds += unit.simSeconds;
    lanes[lane].blockedSeconds += unit.blockedSeconds;
    profile.serialSeconds += unit.simSeconds;
  }
  profile.makespanSeconds =
      *std::max_element(laneFree.begin(), laneFree.end());
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    lanes[i].lane = static_cast<int>(i);
    lanes[i].idleSeconds = profile.makespanSeconds - lanes[i].busySeconds;
  }
  profile.lanes = std::move(lanes);
  return profile;
}

namespace {

std::string percent(double seconds, double total) {
  return str::fixed(total > 0.0 ? seconds / total * 100.0 : 0.0, 1) + "%";
}

/// One Gantt row: units drawn to scale with alternating glyphs so
/// adjacent campaigns stay distinguishable; '.' is idle time.
std::string ganttRow(const TraceProfile& profile, int lane, int width) {
  std::string row(static_cast<std::size_t>(width), '.');
  bool alternate = false;
  for (const ProfiledUnit& unit : profile.units) {
    if (unit.lane != lane) continue;
    const double scale = width / profile.makespanSeconds;
    auto begin = static_cast<std::size_t>(std::floor(unit.start * scale));
    auto end = static_cast<std::size_t>(std::lround(unit.end * scale));
    begin = std::min(begin, static_cast<std::size_t>(width) - 1);
    end = std::clamp(end, begin + 1, static_cast<std::size_t>(width));
    for (std::size_t col = begin; col < end; ++col) {
      row[col] = alternate ? '=' : '#';
    }
    alternate = !alternate;
  }
  return row;
}

}  // namespace

std::string renderProfile(const TraceProfile& profile) {
  constexpr int kGanttWidth = 48;
  std::string out = "lane schedule (makespan " +
                    str::fixed(profile.makespanSeconds, 6) + " s, serial " +
                    str::fixed(profile.serialSeconds, 6) + " s, " +
                    std::to_string(profile.lanes.size()) + " lane(s)";
  if (!profile.fromWorkerSpans) out += ", run-mode trace";
  out += "):\n";
  for (const LaneStats& lane : profile.lanes) {
    out += "  lane " + std::to_string(lane.lane) + " |" +
           (profile.makespanSeconds > 0.0
                ? ganttRow(profile, lane.lane, kGanttWidth)
                : std::string(kGanttWidth, '.')) +
           "| busy " + percent(lane.busySeconds, profile.makespanSeconds) +
           "  idle " + percent(lane.idleSeconds, profile.makespanSeconds) +
           "  blocked " +
           percent(lane.blockedSeconds, profile.makespanSeconds) + "\n";
  }

  AsciiTable table("scheduled campaigns:");
  table.setHeader({"lane", "start s", "end s", "sim s", "blocked s",
                   "campaign"});
  for (const ProfiledUnit& unit : profile.units) {
    table.addRow({std::to_string(unit.lane), str::fixed(unit.start, 6),
                  str::fixed(unit.end, 6), str::fixed(unit.simSeconds, 6),
                  str::fixed(unit.blockedSeconds, 6), unit.label});
  }
  out += table.render();
  return out;
}

std::string profileJson(const TraceProfile& profile) {
  using obs::json::quote;
  std::ostringstream out;
  out << "{\"makespan_s\":" << str::fixed(profile.makespanSeconds, 6)
      << ",\"serial_s\":" << str::fixed(profile.serialSeconds, 6)
      << ",\"from_worker_spans\":"
      << (profile.fromWorkerSpans ? "true" : "false") << ",\"lanes\":[";
  for (std::size_t i = 0; i < profile.lanes.size(); ++i) {
    const LaneStats& lane = profile.lanes[i];
    if (i > 0) out << ",";
    out << "{\"lane\":" << lane.lane << ",\"units\":" << lane.units
        << ",\"busy_s\":" << str::fixed(lane.busySeconds, 6)
        << ",\"idle_s\":" << str::fixed(lane.idleSeconds, 6)
        << ",\"blocked_s\":" << str::fixed(lane.blockedSeconds, 6) << "}";
  }
  out << "],\"units\":[";
  for (std::size_t i = 0; i < profile.units.size(); ++i) {
    const ProfiledUnit& unit = profile.units[i];
    if (i > 0) out << ",";
    out << "{\"span\":" << quote(unit.spanId)
        << ",\"label\":" << quote(unit.label) << ",\"lane\":" << unit.lane
        << ",\"start_s\":" << str::fixed(unit.start, 6)
        << ",\"end_s\":" << str::fixed(unit.end, 6)
        << ",\"sim_s\":" << str::fixed(unit.simSeconds, 6)
        << ",\"blocked_s\":" << str::fixed(unit.blockedSeconds, 6) << "}";
  }
  out << "]}";
  return out.str();
}

// ---- trace diff ---------------------------------------------------------

namespace {

/// Name-paths ("root/child/span") per span, memoized because spans are
/// serialized in *end* order, so a parent may appear after its children.
std::map<std::string, std::string> namePaths(const obs::TraceFile& trace) {
  std::map<std::string, const obs::SpanRecord*> byId;
  for (const obs::SpanRecord& span : trace.spans) byId[span.id] = &span;
  std::map<std::string, std::string> paths;
  auto resolve = [&](auto&& self, const std::string& id) -> std::string {
    if (auto it = paths.find(id); it != paths.end()) return it->second;
    const auto span = byId.find(id);
    if (span == byId.end()) return "?";  // orphan parent; lint reports it
    std::string path = span->second->parent.empty()
                           ? span->second->name
                           : self(self, span->second->parent) + "/" +
                                 span->second->name;
    return paths.emplace(id, std::move(path)).first->second;
  };
  for (const obs::SpanRecord& span : trace.spans) resolve(resolve, span.id);
  return paths;
}

struct PathStats {
  std::size_t count = 0;
  double total = 0.0;
};

void aggregate(const obs::TraceFile& trace,
               std::map<std::string, PathStats>& stats,
               std::vector<std::string>& order) {
  const auto paths = namePaths(trace);
  for (const obs::SpanRecord& span : trace.spans) {
    auto [it, inserted] = stats.try_emplace(paths.at(span.id));
    if (inserted) order.push_back(it->first);
    ++it->second.count;
    it->second.total += span.duration();
  }
}

}  // namespace

std::size_t TraceDiff::regressions() const {
  std::size_t n = 0;
  for (const PathDelta& delta : paths) {
    if (delta.regression) ++n;
  }
  return n;
}

bool TraceDiff::identical() const {
  for (const PathDelta& delta : paths) {
    if (delta.countA != delta.countB || delta.totalA != delta.totalB) {
      return false;
    }
  }
  return counters.empty();
}

TraceDiff diffTraces(const obs::TraceFile& a, const obs::TraceFile& b,
                     double threshold) {
  TraceDiff diff;
  diff.threshold = threshold;

  std::map<std::string, PathStats> statsA, statsB;
  std::vector<std::string> orderA, orderB;
  aggregate(a, statsA, orderA);
  aggregate(b, statsB, orderB);

  // Alignment order: baseline's first-appearance order, then candidate-
  // only paths in the candidate's order — deterministic for both inputs.
  std::vector<std::string> order = orderA;
  for (const std::string& path : orderB) {
    if (!statsA.contains(path)) order.push_back(path);
  }
  for (const std::string& path : order) {
    TraceDiff::PathDelta delta;
    delta.path = path;
    if (auto it = statsA.find(path); it != statsA.end()) {
      delta.countA = it->second.count;
      delta.totalA = it->second.total;
    }
    if (auto it = statsB.find(path); it != statsB.end()) {
      delta.countB = it->second.count;
      delta.totalB = it->second.total;
    }
    if (delta.totalB > delta.totalA) {
      const double grew = delta.totalB - delta.totalA;
      delta.regression = delta.totalA > 0.0
                             ? grew / delta.totalA > threshold
                             : true;  // path appeared (or went 0 -> >0)
    }
    diff.paths.push_back(std::move(delta));
  }

  // Counters: both maps are sorted; report every differing name.
  auto itA = a.counters.begin();
  auto itB = b.counters.begin();
  while (itA != a.counters.end() || itB != b.counters.end()) {
    TraceDiff::CounterDelta delta;
    if (itB == b.counters.end() ||
        (itA != a.counters.end() && itA->first < itB->first)) {
      delta = {itA->first, itA->second, 0};
      ++itA;
    } else if (itA == a.counters.end() || itB->first < itA->first) {
      delta = {itB->first, 0, itB->second};
      ++itB;
    } else {
      delta = {itA->first, itA->second, itB->second};
      ++itA;
      ++itB;
    }
    if (delta.a != delta.b) diff.counters.push_back(std::move(delta));
  }
  return diff;
}

std::string renderDiff(const TraceDiff& diff) {
  AsciiTable table("trace diff (threshold " +
                   str::fixed(diff.threshold * 100.0, 1) + "%):");
  table.setHeader({"stage path", "count A", "count B", "total A s",
                   "total B s", "delta", "verdict"});
  for (const TraceDiff::PathDelta& delta : diff.paths) {
    std::string change = "-";
    if (delta.totalA > 0.0) {
      change = str::fixed(
                   (delta.totalB - delta.totalA) / delta.totalA * 100.0, 1) +
               "%";
    } else if (delta.totalB > 0.0) {
      change = "new";
    }
    std::string verdict = "ok";
    if (delta.regression) {
      verdict = "REGRESSION";
    } else if (delta.countA != delta.countB) {
      verdict = "count";
    } else if (delta.totalB < delta.totalA) {
      verdict = "faster";
    }
    table.addRow({delta.path, std::to_string(delta.countA),
                  std::to_string(delta.countB), str::fixed(delta.totalA, 6),
                  str::fixed(delta.totalB, 6), change, verdict});
  }
  std::string out = table.render();
  if (!diff.counters.empty()) {
    AsciiTable counters("counter deltas:");
    counters.setHeader({"counter", "A", "B"});
    for (const TraceDiff::CounterDelta& delta : diff.counters) {
      counters.addRow({delta.name, std::to_string(delta.a),
                       std::to_string(delta.b)});
    }
    out += counters.render();
  }
  out += "diff: " + std::to_string(diff.paths.size()) + " stage path(s), " +
         std::to_string(diff.regressions()) + " regression(s)";
  out += diff.identical() ? " - traces identical\n" : "\n";
  return out;
}

std::string diffJson(const TraceDiff& diff) {
  using obs::json::quote;
  std::ostringstream out;
  out << "{\"threshold\":" << str::fixed(diff.threshold, 6)
      << ",\"identical\":" << (diff.identical() ? "true" : "false")
      << ",\"regressions\":" << diff.regressions() << ",\"paths\":[";
  for (std::size_t i = 0; i < diff.paths.size(); ++i) {
    const TraceDiff::PathDelta& delta = diff.paths[i];
    if (i > 0) out << ",";
    out << "{\"path\":" << quote(delta.path)
        << ",\"count_a\":" << delta.countA
        << ",\"count_b\":" << delta.countB
        << ",\"total_a_s\":" << str::fixed(delta.totalA, 6)
        << ",\"total_b_s\":" << str::fixed(delta.totalB, 6)
        << ",\"regression\":" << (delta.regression ? "true" : "false")
        << "}";
  }
  out << "],\"counters\":[";
  for (std::size_t i = 0; i < diff.counters.size(); ++i) {
    const TraceDiff::CounterDelta& delta = diff.counters[i];
    if (i > 0) out << ",";
    out << "{\"name\":" << quote(delta.name) << ",\"a\":" << delta.a
        << ",\"b\":" << delta.b << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace rebench::postproc
