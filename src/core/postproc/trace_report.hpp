// Trace post-processing: DataFrame assimilation and ASCII rendering of
// rebench::obs traces — per-stage timing tables, a flame-style span tree,
// and the metrics dump.  Fronts `rebench trace-report`.
#pragma once

#include <string>

#include "core/obs/trace_reader.hpp"
#include "core/postproc/dataframe.hpp"

namespace rebench {

/// One row per span: id/parent/name (string), start/end/duration
/// (numeric, seconds) — programmatic assimilation of a trace (P6).
DataFrame traceToDataFrame(const obs::TraceFile& trace);

/// Per-stage timing table aggregated over spans sharing a name, in order
/// of first appearance: count, total/mean/min/max seconds.
std::string renderStageTable(const obs::TraceFile& trace);

/// ASCII flame view: the span tree indented by depth, with a duration bar
/// scaled to each root span.
std::string renderTraceTree(const obs::TraceFile& trace);

/// Counters, gauges and histograms recorded in the trace.
std::string renderMetricsReport(const obs::TraceFile& trace);

/// JSON array fragment of the per-stage aggregation (same numbers as
/// renderStageTable) — the shared machine-readable renderer behind
/// `trace-report --json` and `rebench profile --json`.
std::string stageTableJson(const obs::TraceFile& trace);

/// JSON object fragment of the recorded counters/gauges/histograms.
std::string metricsJson(const obs::TraceFile& trace);

}  // namespace rebench
