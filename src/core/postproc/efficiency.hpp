// Efficiency metrics (Principle 1) and the performance-portability metric
// of Pennycook et al. that the paper's analysis builds on.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

namespace rebench {

/// Architectural efficiency: achieved / theoretical peak, in [0, ~1].
double architecturalEfficiency(double achieved, double peak);

/// Application efficiency against the best-known implementation
/// (Equation 1 of the paper generalises this: E = VAR / ORIG).
double applicationEfficiency(double variant, double original);

/// Pennycook's performance-portability metric: the harmonic mean of the
/// per-platform efficiencies when the application runs everywhere in H,
/// and 0 when any platform is unsupported (nullopt entry).
double performancePortability(
    std::span<const std::optional<double>> efficiencies);

/// One (platform, efficiency) observation for PP reporting.
struct EfficiencyObservation {
  std::string platform;
  std::optional<double> efficiency;  // nullopt: does not run
};

struct PortabilityReport {
  double pp = 0.0;              // harmonic-mean metric
  double minEfficiency = 0.0;   // worst supported platform
  double maxEfficiency = 0.0;
  std::size_t supportedPlatforms = 0;
  std::size_t totalPlatforms = 0;
};

PortabilityReport analyzePortability(
    std::span<const EfficiencyObservation> observations);

}  // namespace rebench
