#include "core/postproc/critical_path.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "core/obs/json.hpp"
#include "core/util/strings.hpp"

namespace rebench::postproc {

namespace {

/// Children indices per span id, in file order (= span end order, which
/// is deterministic), plus id -> index.
struct SpanIndex {
  std::map<std::string, std::vector<std::size_t>> children;
  std::map<std::string, std::size_t> byId;

  explicit SpanIndex(const obs::TraceFile& trace) {
    for (std::size_t i = 0; i < trace.spans.size(); ++i) {
      byId[trace.spans[i].id] = i;
      if (!trace.spans[i].parent.empty()) {
        children[trace.spans[i].parent].push_back(i);
      }
    }
  }
};

/// Dominant-child descent from `rootId`: at each level, record the
/// self/child split and step into the child with the largest duration
/// (first in file order on ties).
std::vector<SpanAttribution> attribute(const obs::TraceFile& trace,
                                       const SpanIndex& index,
                                       const std::string& rootId) {
  std::vector<SpanAttribution> chain;
  const auto at = index.byId.find(rootId);
  if (at == index.byId.end()) return chain;
  std::size_t current = at->second;
  int depth = 0;
  while (true) {
    const obs::SpanRecord& span = trace.spans[current];
    SpanAttribution attr;
    attr.id = span.id;
    attr.name = span.name;
    attr.depth = depth;
    attr.totalSeconds = span.duration();

    const auto kids = index.children.find(span.id);
    std::size_t dominant = current;
    double dominantDuration = -1.0;
    if (kids != index.children.end()) {
      for (const std::size_t child : kids->second) {
        const double duration = trace.spans[child].duration();
        attr.childSeconds += duration;
        if (duration > dominantDuration) {
          dominantDuration = duration;
          dominant = child;
        }
      }
    }
    attr.selfSeconds =
        std::max(0.0, attr.totalSeconds - attr.childSeconds);
    chain.push_back(std::move(attr));
    if (dominant == current) break;  // leaf
    current = dominant;
    ++depth;
  }
  return chain;
}

}  // namespace

CriticalPathReport extractCriticalPath(const obs::TraceFile& trace,
                                       const TraceProfile& profile) {
  CriticalPathReport report;
  // Busiest lane = the one whose last unit ends at the makespan; ties
  // resolve to the lowest lane (profile.lanes is ascending).
  double latest = -1.0;
  for (const LaneStats& lane : profile.lanes) {
    if (lane.busySeconds > latest) {
      latest = lane.busySeconds;
      report.lane = lane.lane;
    }
  }
  const SpanIndex index(trace);
  for (const ProfiledUnit& unit : profile.units) {
    if (unit.lane != report.lane) continue;
    CriticalPathReport::Step step;
    step.unit = unit;
    step.attribution = attribute(trace, index, unit.spanId);
    report.lengthSeconds += unit.simSeconds;
    report.steps.push_back(std::move(step));
  }
  return report;
}

std::string renderCriticalPath(const CriticalPathReport& report) {
  std::string out = "critical path (lane " + std::to_string(report.lane) +
                    "): " + std::to_string(report.steps.size()) +
                    " campaign(s), " +
                    str::fixed(report.lengthSeconds, 6) + " s\n";
  std::size_t number = 0;
  for (const CriticalPathReport::Step& step : report.steps) {
    out += "  [" + std::to_string(++number) + "] " + step.unit.label +
           "  (start " + str::fixed(step.unit.start, 6) + " s, sim " +
           str::fixed(step.unit.simSeconds, 6) + " s)\n";
    for (const SpanAttribution& attr : step.attribution) {
      std::string label(static_cast<std::size_t>(attr.depth) * 2, ' ');
      label += attr.name;
      out += "      " + str::padRight(label, 28) + " total " +
             str::padLeft(str::fixed(attr.totalSeconds, 6), 12) +
             "  self " +
             str::padLeft(str::fixed(attr.selfSeconds, 6), 12) +
             "  children " +
             str::padLeft(str::fixed(attr.childSeconds, 6), 12) + "\n";
    }
  }
  return out;
}

std::string criticalPathJson(const CriticalPathReport& report) {
  using obs::json::quote;
  std::ostringstream out;
  out << "{\"lane\":" << report.lane
      << ",\"length_s\":" << str::fixed(report.lengthSeconds, 6)
      << ",\"steps\":[";
  for (std::size_t i = 0; i < report.steps.size(); ++i) {
    const CriticalPathReport::Step& step = report.steps[i];
    if (i > 0) out << ",";
    out << "{\"label\":" << quote(step.unit.label)
        << ",\"span\":" << quote(step.unit.spanId)
        << ",\"start_s\":" << str::fixed(step.unit.start, 6)
        << ",\"sim_s\":" << str::fixed(step.unit.simSeconds, 6)
        << ",\"attribution\":[";
    for (std::size_t j = 0; j < step.attribution.size(); ++j) {
      const SpanAttribution& attr = step.attribution[j];
      if (j > 0) out << ",";
      out << "{\"name\":" << quote(attr.name) << ",\"depth\":" << attr.depth
          << ",\"total_s\":" << str::fixed(attr.totalSeconds, 6)
          << ",\"self_s\":" << str::fixed(attr.selfSeconds, 6)
          << ",\"child_s\":" << str::fixed(attr.childSeconds, 6) << "}";
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

}  // namespace rebench::postproc
