#include "core/postproc/chrome_export.hpp"

#include <cmath>
#include <cstdint>
#include <set>
#include <sstream>

#include "core/obs/json.hpp"
#include "core/util/strings.hpp"

namespace rebench::postproc {

namespace {

using obs::json::quote;

std::int64_t micros(double seconds) {
  return static_cast<std::int64_t>(std::llround(seconds * 1e6));
}

/// Leading root number of a hierarchical span id ("3.1.2" -> 3); the
/// recorded-timeline thread a record lands on.  0 for unowned events.
int rootNumber(const std::string& id) {
  int value = 0;
  for (const char c : id) {
    if (c < '0' || c > '9') break;
    value = value * 10 + (c - '0');
  }
  return value;
}

void appendArgs(std::ostringstream& out, const obs::AttrMap& attrs) {
  out << ",\"args\":{";
  bool first = true;
  for (const auto& [key, value] : attrs) {
    if (!first) out << ",";
    first = false;
    out << quote(key) << ":" << quote(value);
  }
  out << "}";
}

void metadata(std::ostringstream& out, bool& first, int pid, int tid,
              const char* kind, const std::string& name) {
  if (!first) out << ",\n";
  first = false;
  out << "{\"name\":" << quote(kind) << ",\"ph\":\"M\",\"pid\":" << pid;
  if (tid >= 0) out << ",\"tid\":" << tid;
  out << ",\"args\":{\"name\":" << quote(name) << "}}";
}

}  // namespace

std::string renderChromeTrace(const obs::TraceFile& trace,
                              const TraceProfile& profile) {
  constexpr int kRecordedPid = 1;
  constexpr int kScheduledPid = 2;
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;

  metadata(out, first, kRecordedPid, -1, "process_name",
           "recorded timeline");
  metadata(out, first, kScheduledPid, -1, "process_name",
           "scheduled lanes");
  // Thread names: one per root campaign (recorded) and per lane
  // (scheduled).  std::set keeps both deterministic and sorted.
  std::set<int> roots;
  for (const obs::SpanRecord& span : trace.spans) {
    roots.insert(rootNumber(span.id));
  }
  for (const int root : roots) {
    metadata(out, first, kRecordedPid, root, "thread_name",
             "campaign " + std::to_string(root));
  }
  for (const LaneStats& lane : profile.lanes) {
    metadata(out, first, kScheduledPid, lane.lane, "thread_name",
             "lane " + std::to_string(lane.lane));
  }

  for (const obs::SpanRecord& span : trace.spans) {
    out << ",\n{\"name\":" << quote(span.name)
        << ",\"ph\":\"X\",\"pid\":" << kRecordedPid
        << ",\"tid\":" << rootNumber(span.id)
        << ",\"ts\":" << micros(span.start)
        << ",\"dur\":" << micros(span.duration());
    appendArgs(out, span.attrs);
    out << "}";
  }
  for (const obs::EventRecord& event : trace.events) {
    out << ",\n{\"name\":" << quote(event.name)
        << ",\"ph\":\"i\",\"s\":\"t\",\"pid\":" << kRecordedPid
        << ",\"tid\":" << rootNumber(event.span)
        << ",\"ts\":" << micros(event.time);
    appendArgs(out, event.attrs);
    out << "}";
  }
  for (const ProfiledUnit& unit : profile.units) {
    out << ",\n{\"name\":" << quote(unit.label)
        << ",\"ph\":\"X\",\"pid\":" << kScheduledPid
        << ",\"tid\":" << unit.lane << ",\"ts\":" << micros(unit.start)
        << ",\"dur\":" << micros(unit.simSeconds)
        << ",\"args\":{\"span\":" << quote(unit.spanId)
        << ",\"blocked_s\":" << quote(str::fixed(unit.blockedSeconds, 6))
        << "}}";
  }
  out << "\n]}\n";
  return out.str();
}

}  // namespace rebench::postproc
