// The pre-columnar row-oriented DataFrame, frozen verbatim.
//
// This is the reference implementation the columnar engine must match
// bit-for-bit: the byte-identity ctest gate renders the same corpus
// through both engines and diffs CSV / table / pivot / JSON bytes, and
// `bench/ablation_dataframe` uses it as the row-engine baseline.  It is
// not part of the public API — production code uses DataFrame, which is
// a façade over rebench::columnar.
//
// Do not "improve" this file; its value is that it never changes.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "core/framework/perflog.hpp"
#include "core/postproc/dataframe.hpp"  // Agg, PivotTable

namespace rebench::legacy {

class RowFrame {
 public:
  using NumericColumn = std::vector<double>;
  using StringColumn = std::vector<std::string>;
  using Column = std::variant<NumericColumn, StringColumn>;

  RowFrame() = default;

  void addNumeric(std::string name, NumericColumn values);
  void addStrings(std::string name, StringColumn values);

  std::size_t rowCount() const { return rows_; }
  std::size_t columnCount() const { return columns_.size(); }
  bool empty() const { return rows_ == 0; }

  bool hasColumn(std::string_view name) const;
  bool isNumeric(std::string_view name) const;
  std::vector<std::string> columnNames() const;

  const NumericColumn& numeric(std::string_view name) const;
  const StringColumn& strings(std::string_view name) const;

  std::string cellText(std::string_view name, std::size_t row) const;

  RowFrame filter(const std::function<bool(std::size_t)>& rowPredicate) const;
  RowFrame filterEquals(std::string_view column,
                        std::string_view value) const;
  RowFrame selectColumns(std::span<const std::string> names) const;
  RowFrame sortBy(std::string_view column, bool ascending = true) const;

  static RowFrame concat(std::span<const RowFrame> frames);

  RowFrame groupBy(std::span<const std::string> keyColumns,
                   std::string_view valueColumn, Agg agg) const;

  PivotTable pivot(std::string_view rowKey, std::string_view colKey,
                   std::string_view valueColumn, Agg agg = Agg::kMean) const;

  RowFrame describe() const;

  std::string toCsv() const;
  static RowFrame fromCsv(const std::string& text);

 private:
  const Column& column(std::string_view name) const;
  RowFrame takeRows(const std::vector<std::size_t>& indices) const;

  std::vector<std::pair<std::string, Column>> columns_;
  std::size_t rows_ = 0;
};

/// The row engine's perflog bridge (9 analysis columns), kept for the
/// identity gate and the ablation baseline.
RowFrame rowFrameFromPerflog(std::span<const PerfLogEntry> entries);

}  // namespace rebench::legacy
