// Bridges perflogs into DataFrames (the "assimilate" step of Principle 6).
//
// Three layers:
//   * perflogToDataFrame — entries to the 9-column analysis frame
//     (system/partition/environ/test/spec/fom/unit/result strings + value);
//     extras are ragged across rows, so they are opt-in via
//     PerflogFrameOptions and appear as `x_<key>` columns.
//   * assimilatePerflogs — streams each file in kChunkRows slices through
//     a TableAppender, so a million-row shard never holds more than one
//     chunk of parsed rows in memory; output is byte-identical to the old
//     read-everything-then-concat path.
//   * the colframe cache — entriesToTable serializes the FULL record
//     (every PerfLogEntry field plus sorted `x:<key>` columns with nulls
//     for absent extras) so the cached form is lossless;
//     tableToPerflogEntries reconstructs the exact entries and
//     loadOrConvertPerflog keys the cache by the perflog file's content
//     hash in the ObjectStore.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/framework/perflog.hpp"
#include "core/postproc/dataframe.hpp"
#include "core/store/object_store.hpp"

namespace rebench::obs {
class Tracer;
}  // namespace rebench::obs

namespace rebench {

struct PerflogFrameOptions {
  /// Adds one column per extras key (sorted), named `x_<key>`.  A column
  /// is numeric iff the key is present on every row and every value
  /// parses fully as double; otherwise strings, "" where absent.
  bool includeExtras = false;
};

/// Converts parsed perflog entries into a frame with columns:
///   system, partition, environ, test, spec, fom, unit, result (strings)
///   and value (numeric).
DataFrame perflogToDataFrame(std::span<const PerfLogEntry> entries);
DataFrame perflogToDataFrame(std::span<const PerfLogEntry> entries,
                             const PerflogFrameOptions& options);

/// Reads several perflog files (one per system, as generated on isolated
/// machines) and concatenates them into one analysis frame.  Streaming:
/// at most one kChunkRows slice of parsed rows is buffered per file.
/// With a tracer, emits a `postproc.columnar.merge` span.
DataFrame assimilatePerflogs(std::span<const std::string> paths,
                             obs::Tracer* tracer = nullptr);

// ---- lossless columnar form (the colframe cache) ------------------------

/// Full-fidelity table: ts, version, system, partition, environ, test,
/// spec, spec_hash, binary_id, job_id, fom, value (f64), unit, ref (f64,
/// null when absent), lower, upper, result, then one `x:<key>` string
/// column per extras key in sorted order (null where a row lacks the key).
columnar::Table entriesToTable(std::span<const PerfLogEntry> entries);

/// Inverse of entriesToTable: reconstructs the exact entries (struct-level
/// lossless; re-serialization is byte-identical for rebench-written logs).
std::vector<PerfLogEntry> tableToPerflogEntries(const columnar::Table& table);

/// The 9-column analysis frame as a cheap projection of the full table
/// (codes copied, dictionaries shared — no strings touched).
DataFrame analysisFrameFromTable(const columnar::Table& table);

struct FrameCacheResult {
  columnar::Table table;  // lossless form; project with analysisFrameFromTable
  bool cacheHit = false;
};

/// Content-hash-keyed colframe cache: hashes the perflog file's bytes,
/// looks up ref `colframe/<hash>` in the store and verifies the cached
/// frame; on miss (or corruption, which reads as a miss) parses the file,
/// writes the columnar form back and installs the ref.  With a tracer,
/// emits a `postproc.columnar.convert` span (rows, chunks, columns,
/// outcome=hit|converted).
FrameCacheResult loadOrConvertPerflog(store::ObjectStore& store,
                                      const std::string& path,
                                      obs::Tracer* tracer = nullptr);

struct MergeStats {
  std::size_t inputs = 0;
  std::size_t rows = 0;
  std::size_t chunks = 0;
  std::size_t peakBufferedRows = 0;  // max parsed rows buffered at once
};

/// K-way merge of perflog files ordered by timestamp (numeric stamps
/// compare as numbers and sort before non-numeric ones, which compare
/// lexicographically; ties keep input order, then file order).  Holds at
/// most one `chunkRows` slice of parsed rows per input — merging N shards
/// of R rows each buffers O(N * chunkRows), not O(N * R).  Returns the
/// lossless table form.  With a tracer, emits `postproc.columnar.merge`.
columnar::Table mergePerflogsByTime(std::span<const std::string> paths,
                                    std::size_t chunkRows = columnar::kChunkRows,
                                    obs::Tracer* tracer = nullptr,
                                    MergeStats* stats = nullptr);

}  // namespace rebench
