// Bridges perflogs into DataFrames (the "assimilate" step of Principle 6).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/framework/perflog.hpp"
#include "core/postproc/dataframe.hpp"

namespace rebench {

/// Converts parsed perflog entries into a frame with columns:
///   system, partition, environ, test, spec, fom, unit, result (strings)
///   value, and any numeric extras prefixed "x_".
DataFrame perflogToDataFrame(std::span<const PerfLogEntry> entries);

/// Reads several perflog files (one per system, as generated on isolated
/// machines) and concatenates them into one frame.
DataFrame assimilatePerflogs(std::span<const std::string> paths);

}  // namespace rebench
