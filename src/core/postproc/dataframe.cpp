#include "core/postproc/dataframe.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "core/obs/trace.hpp"
#include "core/postproc/columnar/merge.hpp"
#include "core/service/journal.hpp"
#include "core/util/error.hpp"
#include "core/util/strings.hpp"

namespace rebench {

namespace {

void emitKernelSpan(obs::Tracer* tracer, std::string_view kernel,
                    const columnar::KernelStats& stats) {
  if (tracer == nullptr) return;
  obs::ScopedSpan span(tracer, "postproc.columnar.kernel");
  span.attr("kernel", std::string(kernel));
  span.attr("rows", std::to_string(stats.rows));
  span.attr("chunks", std::to_string(stats.chunks));
  span.attr("skipped_chunks", std::to_string(stats.skippedChunks));
}

}  // namespace

void DataFrame::addNumeric(std::string name, NumericColumn values) {
  if (!table_.columns.empty() && values.size() != table_.rows) {
    throw Error("column '" + name + "' has " + std::to_string(values.size()) +
                " rows, frame has " + std::to_string(table_.rows));
  }
  table_.rows = values.size();
  columnar::DoubleColumn col;
  col.values = std::move(values);
  col.validity.appendRun(col.values.size(), true);
  table_.columns.push_back({std::move(name), std::move(col)});
}

void DataFrame::addStrings(std::string name, StringColumn values) {
  if (!table_.columns.empty() && values.size() != table_.rows) {
    throw Error("column '" + name + "' has " + std::to_string(values.size()) +
                " rows, frame has " + std::to_string(table_.rows));
  }
  table_.rows = values.size();
  columnar::StringColumn col;
  col.codes.reserve(values.size());
  for (const std::string& value : values) {
    col.codes.push_back(col.dict->encode(value));
  }
  table_.columns.push_back({std::move(name), std::move(col)});
}

void DataFrame::addNumericWithNulls(std::string name, NumericColumn values,
                                    const std::vector<bool>& valid) {
  REBENCH_REQUIRE(values.size() == valid.size());
  if (!table_.columns.empty() && values.size() != table_.rows) {
    throw Error("column '" + name + "' has " + std::to_string(values.size()) +
                " rows, frame has " + std::to_string(table_.rows));
  }
  table_.rows = values.size();
  columnar::DoubleColumn col;
  col.values = std::move(values);
  for (std::size_t i = 0; i < col.values.size(); ++i) {
    if (!valid[i]) {
      col.values[i] = std::numeric_limits<double>::quiet_NaN();
    }
    col.validity.append(valid[i]);
  }
  table_.columns.push_back({std::move(name), std::move(col)});
}

bool DataFrame::hasColumn(std::string_view name) const {
  return table_.find(name) != nullptr;
}

const columnar::Column& DataFrame::columnRef(std::string_view name) const {
  const columnar::Column* col = table_.find(name);
  if (col == nullptr) {
    throw NotFoundError("no column '" + std::string(name) + "'");
  }
  return *col;
}

const columnar::DoubleColumn& DataFrame::numericCol(
    std::string_view name) const {
  const columnar::Column& col = columnRef(name);
  if (!col.isNumeric()) {
    throw Error("column '" + std::string(name) + "' is not numeric");
  }
  return col.doubles();
}

const columnar::StringColumn& DataFrame::stringCol(
    std::string_view name) const {
  const columnar::Column& col = columnRef(name);
  if (col.isNumeric()) {
    throw Error("column '" + std::string(name) + "' is not a string column");
  }
  return col.strs();
}

bool DataFrame::isNumeric(std::string_view name) const {
  return columnRef(name).isNumeric();
}

std::vector<std::string> DataFrame::columnNames() const {
  return table_.columnNames();
}

const DataFrame::NumericColumn& DataFrame::numeric(
    std::string_view name) const {
  return numericCol(name).values;
}

const DataFrame::StringColumn& DataFrame::strings(
    std::string_view name) const {
  return stringCol(name).materialize();
}

std::string DataFrame::cellText(std::string_view name,
                                std::size_t row) const {
  REBENCH_REQUIRE(row < table_.rows);
  const columnar::Column& col = columnRef(name);
  if (col.isNumeric()) {
    return str::fixed(col.doubles().values[row], 6);
  }
  const std::uint32_t code = col.strs().codes[row];
  return code == columnar::kNullCode ? std::string()
                                     : col.strs().dict->at(code);
}

DataFrame DataFrame::wrap(columnar::Table table) const {
  DataFrame out;
  out.table_ = std::move(table);
  out.tracer_ = tracer_;
  return out;
}

DataFrame DataFrame::filter(
    const std::function<bool(std::size_t)>& rowPredicate) const {
  columnar::Arena arena;
  const auto selection =
      columnar::selectPredicate(table_.rows, rowPredicate, arena);
  return wrap(columnar::gather(table_, selection));
}

DataFrame DataFrame::filterEquals(std::string_view column,
                                  std::string_view value) const {
  const columnar::StringColumn& col = stringCol(column);
  columnar::Arena arena;
  columnar::KernelStats stats;
  const auto selection = columnar::selectEquals(col, value, arena, &stats);
  DataFrame out = wrap(columnar::gather(table_, selection));
  emitKernelSpan(tracer_, "filter_equals", stats);
  return out;
}

DataFrame DataFrame::filterRange(std::string_view column, double lo,
                                 double hi) const {
  const columnar::DoubleColumn& col = numericCol(column);
  columnar::Arena arena;
  columnar::KernelStats stats;
  const auto selection = columnar::selectRange(col, lo, hi, arena, &stats);
  DataFrame out = wrap(columnar::gather(table_, selection));
  emitKernelSpan(tracer_, "filter_range", stats);
  return out;
}

DataFrame DataFrame::selectColumns(std::span<const std::string> names) const {
  columnar::Table out;
  for (const std::string& name : names) {
    out.columns.push_back(columnRef(name));
  }
  out.rows = table_.rows;
  return wrap(std::move(out));
}

DataFrame DataFrame::sortBy(std::string_view column, bool ascending) const {
  const columnar::Column& col = columnRef(column);
  columnar::KernelStats stats;
  stats.rows = table_.rows;
  stats.chunks =
      (table_.rows + columnar::kChunkRows - 1) / columnar::kChunkRows;
  const std::vector<std::uint32_t> order =
      columnar::sortOrder(col, table_.rows, ascending);
  DataFrame out = wrap(columnar::gather(table_, order));
  emitKernelSpan(tracer_, "sort", stats);
  return out;
}

DataFrame DataFrame::concat(std::span<const DataFrame> frames) {
  if (frames.empty()) return {};
  std::vector<const columnar::Table*> tables;
  tables.reserve(frames.size());
  obs::Tracer* tracer = nullptr;
  for (const DataFrame& frame : frames) {
    tables.push_back(&frame.table_);
    if (tracer == nullptr) tracer = frame.tracer_;
  }
  columnar::ConcatStats stats;
  columnar::Table merged = columnar::concatTables(tables, &stats);
  if (tracer != nullptr) {
    obs::ScopedSpan span(tracer, "postproc.columnar.merge");
    span.attr("inputs", std::to_string(stats.inputs));
    span.attr("rows", std::to_string(stats.rows));
    span.attr("chunks", std::to_string(stats.chunks));
    span.attr("peak_buffered_rows", std::to_string(stats.peakBufferedRows));
  }
  DataFrame out;
  out.table_ = std::move(merged);
  out.tracer_ = tracer;
  return out;
}

DataFrame DataFrame::groupBy(std::span<const std::string> keyColumns,
                             std::string_view valueColumn, Agg agg) const {
  // Validate in the row engine's order: value column first, then keys.
  (void)numericCol(valueColumn);
  for (const std::string& key : keyColumns) (void)stringCol(key);
  columnar::KernelStats stats;
  columnar::Table out =
      columnar::groupAggregate(table_, keyColumns, valueColumn, agg, &stats);
  DataFrame result = wrap(std::move(out));
  emitKernelSpan(tracer_, "group_by", stats);
  return result;
}

DataFrame DataFrame::groupPercentiles(
    std::span<const std::string> keyColumns, std::string_view valueColumn,
    std::span<const double> percentiles) const {
  (void)numericCol(valueColumn);
  for (const std::string& key : keyColumns) (void)stringCol(key);
  std::vector<std::string> labels;
  labels.reserve(percentiles.size());
  for (const double p : percentiles) {
    labels.push_back("p" + service::formatExact(p));
  }
  columnar::KernelStats stats;
  columnar::Table out = columnar::groupPercentilesKernel(
      table_, keyColumns, valueColumn, percentiles, labels, &stats);
  DataFrame result = wrap(std::move(out));
  emitKernelSpan(tracer_, "group_percentiles", stats);
  return result;
}

PivotTable DataFrame::pivot(std::string_view rowKey, std::string_view colKey,
                            std::string_view valueColumn, Agg agg) const {
  const columnar::StringColumn& rows = stringCol(rowKey);
  const columnar::StringColumn& cols = stringCol(colKey);
  const columnar::DoubleColumn& values = numericCol(valueColumn);
  columnar::KernelStats stats;
  columnar::PivotCells cells =
      columnar::pivotAggregate(rows, cols, values, agg, &stats);
  emitKernelSpan(tracer_, "pivot", stats);
  PivotTable table;
  table.rowLabels = std::move(cells.rowLabels);
  table.colLabels = std::move(cells.colLabels);
  table.cells = std::move(cells.cells);
  return table;
}

DataFrame DataFrame::describe() const {
  columnar::KernelStats stats;
  columnar::Table out = columnar::describeTable(table_, &stats);
  DataFrame result = wrap(std::move(out));
  emitKernelSpan(tracer_, "describe", stats);
  return result;
}

std::string DataFrame::toCsv() const {
  std::string out = str::join(columnNames(), ",") + "\n";
  // The row engine rendered cells via name lookup, so a duplicated column
  // name rendered its first occurrence each time; precompute that mapping.
  std::vector<const columnar::Column*> source;
  source.reserve(table_.columns.size());
  for (const columnar::Column& col : table_.columns) {
    source.push_back(table_.find(col.name));
  }
  for (std::size_t i = 0; i < table_.rows; ++i) {
    for (std::size_t c = 0; c < source.size(); ++c) {
      if (c != 0) out += ',';
      const columnar::Column& col = *source[c];
      std::string cell;
      if (col.isNumeric()) {
        cell = str::fixed(col.doubles().values[i], 6);
      } else {
        const std::uint32_t code = col.strs().codes[i];
        if (code != columnar::kNullCode) cell = col.strs().dict->at(code);
      }
      if (cell.find(',') != std::string::npos ||
          cell.find('"') != std::string::npos) {
        cell = '"' + str::replaceAll(cell, "\"", "\"\"") + '"';
      }
      out += cell;
    }
    out += '\n';
  }
  return out;
}

DataFrame DataFrame::fromCsv(const std::string& text) {
  std::vector<std::string> lines;
  for (const std::string& line : str::split(text, '\n')) {
    if (!str::trim(line).empty()) lines.push_back(line);
  }
  if (lines.empty()) return {};

  // Minimal CSV: supports quoted cells with doubled quotes.
  auto parseLine = [](const std::string& line) {
    std::vector<std::string> cells;
    std::string cell;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (quoted) {
        if (c == '"' && i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else if (c == '"') {
          quoted = false;
        } else {
          cell += c;
        }
      } else if (c == '"') {
        quoted = true;
      } else if (c == ',') {
        cells.push_back(std::move(cell));
        cell.clear();
      } else {
        cell += c;
      }
    }
    cells.push_back(std::move(cell));
    return cells;
  };

  const std::vector<std::string> header = parseLine(lines[0]);
  std::vector<columnar::TaggedColumnBuilder> builders(header.size());
  for (std::size_t r = 1; r < lines.size(); ++r) {
    std::vector<std::string> cells = parseLine(lines[r]);
    if (cells.size() != header.size()) {
      throw ParseError("CSV row " + std::to_string(r) + " has " +
                       std::to_string(cells.size()) + " cells, expected " +
                       std::to_string(header.size()));
    }
    for (std::size_t c = 0; c < cells.size(); ++c) {
      builders[c].add(std::move(cells[c]));
    }
  }

  DataFrame out;
  out.table_.rows = lines.size() - 1;
  for (std::size_t c = 0; c < header.size(); ++c) {
    columnar::Column col;
    col.name = header[c];
    if (builders[c].numeric()) {
      col.data = builders[c].takeNumeric();
    } else {
      col.data = builders[c].takeStrings();
    }
    out.table_.columns.push_back(std::move(col));
  }
  return out;
}

DataFrame DataFrame::fromTable(columnar::Table table) {
  DataFrame out;
  out.table_ = std::move(table);
  return out;
}

}  // namespace rebench
