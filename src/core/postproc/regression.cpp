#include "core/postproc/regression.hpp"

#include <algorithm>
#include <cmath>

#include "core/util/error.hpp"
#include "core/util/strings.hpp"

namespace rebench {

std::string SeriesKey::toString() const {
  return system + ":" + partition + "/" + testName + "/" + fomName;
}

void PerfHistory::add(const PerfLogEntry& entry) {
  if (entry.result == "error") return;  // failed runs carry no FOM
  SeriesKey key{entry.system, entry.partition, entry.testName,
                entry.fomName};
  series_[key].push_back(
      HistoryPoint{entry.timestamp, entry.value, entry.binaryId});
}

void PerfHistory::addAll(std::span<const PerfLogEntry> entries) {
  for (const PerfLogEntry& entry : entries) add(entry);
}

std::vector<SeriesKey> PerfHistory::keys() const {
  std::vector<SeriesKey> out;
  out.reserve(series_.size());
  for (const auto& [key, points] : series_) out.push_back(key);
  return out;
}

bool PerfHistory::has(const SeriesKey& key) const {
  return series_.contains(key);
}

const std::vector<HistoryPoint>& PerfHistory::series(
    const SeriesKey& key) const {
  auto it = series_.find(key);
  if (it == series_.end()) {
    throw NotFoundError("no history for series " + key.toString());
  }
  return it->second;
}

std::vector<RegressionEvent> PerfHistory::detect(
    const DetectorOptions& options) const {
  REBENCH_REQUIRE(options.window >= 2 && options.minHistory >= 2);
  std::vector<RegressionEvent> events;
  for (const auto& [key, points] : series_) {
    for (std::size_t i = options.minHistory; i < points.size(); ++i) {
      // Rolling stats over the window strictly before point i.
      const std::size_t begin =
          i > options.window ? i - options.window : 0;
      double sum = 0.0, sumSq = 0.0;
      const double count = static_cast<double>(i - begin);
      for (std::size_t j = begin; j < i; ++j) {
        sum += points[j].value;
        sumSq += points[j].value * points[j].value;
      }
      const double mean = sum / count;
      const double variance =
          std::max(0.0, sumSq / count - mean * mean);
      const double band =
          std::max(options.sigmas * std::sqrt(variance),
                   options.minBandFraction * std::abs(mean));

      const double value = points[i].value;
      RegressionKind kind = RegressionKind::kNone;
      if (value < mean - band) kind = RegressionKind::kDropBelowBand;
      if (value > mean + band) kind = RegressionKind::kRiseAboveBand;
      if (kind == RegressionKind::kNone) continue;

      RegressionEvent event;
      event.key = key;
      event.pointIndex = i;
      event.point = points[i];
      event.kind = kind;
      event.expected = mean;
      event.deviation = mean != 0.0 ? (value - mean) / mean : 0.0;
      event.detail = key.toString() + " @" + points[i].timestamp + ": " +
                     str::fixed(value, 2) + " vs rolling " +
                     str::fixed(mean, 2) + " +/- " + str::fixed(band, 2);
      events.push_back(std::move(event));
    }
  }
  return events;
}

std::optional<RegressionEvent> PerfHistory::checkAgainstReference(
    const SeriesKey& key, double reference, double lowerFrac,
    double upperFrac) const {
  const auto& points = series(key);
  REBENCH_REQUIRE(!points.empty());
  const HistoryPoint& latest = points.back();
  const double lo = reference * (1.0 + lowerFrac);
  const double hi = reference * (1.0 + upperFrac);
  if (latest.value >= lo && latest.value <= hi) return std::nullopt;

  RegressionEvent event;
  event.key = key;
  event.pointIndex = points.size() - 1;
  event.point = latest;
  event.kind = latest.value < lo ? RegressionKind::kDropBelowBand
                                 : RegressionKind::kRiseAboveBand;
  event.expected = reference;
  event.deviation = (latest.value - reference) / reference;
  event.detail = key.toString() + ": " + str::fixed(latest.value, 2) +
                 " outside reference [" + str::fixed(lo, 2) + ", " +
                 str::fixed(hi, 2) + "]";
  return event;
}

std::string renderHistoryPlot(const std::vector<HistoryPoint>& points,
                              std::span<const RegressionEvent> events,
                              const std::string& title, int width,
                              int height) {
  std::string out = title + "\n";
  if (points.size() < 2) return out + "(insufficient history)\n";
  double lo = points[0].value, hi = points[0].value;
  for (const HistoryPoint& p : points) {
    lo = std::min(lo, p.value);
    hi = std::max(hi, p.value);
  }
  if (hi <= lo) hi = lo + 1.0;

  std::vector<std::string> grid(height, std::string(width, ' '));
  auto column = [&](std::size_t i) {
    return static_cast<int>(i * (width - 1) / (points.size() - 1));
  };
  for (std::size_t i = 0; i < points.size(); ++i) {
    const int row = static_cast<int>(
        std::round((points[i].value - lo) / (hi - lo) * (height - 1)));
    grid[height - 1 - row][column(i)] = '*';
  }
  for (const RegressionEvent& event : events) {
    if (event.pointIndex >= points.size()) continue;
    const int row = static_cast<int>(std::round(
        (points[event.pointIndex].value - lo) / (hi - lo) * (height - 1)));
    grid[height - 1 - row][column(event.pointIndex)] = '!';
  }
  out += str::fixed(hi, 2) + "\n";
  for (const std::string& line : grid) out += "|" + line + "\n";
  out += str::fixed(lo, 2) + " (oldest -> newest; '!' = flagged)\n";
  return out;
}

}  // namespace rebench
