// Performance-history tracking and regression detection — the CI-pipeline
// capability the paper's conclusion calls for ("making changes in
// performance as important as changes in answers", "measure and track the
// performance portability of applications over time").
//
// A PerfHistory is the ordered series of FOM values one (test, system,
// partition, fom) key produced across runs; detectors flag points that
// fall outside either a fixed reference band (ReFrame-style) or a rolling
// statistical band learned from the history itself.
#pragma once

#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/framework/perflog.hpp"

namespace rebench {

/// Identity of one tracked series.
struct SeriesKey {
  std::string system;
  std::string partition;
  std::string testName;
  std::string fomName;

  auto operator<=>(const SeriesKey&) const = default;
  std::string toString() const;
};

struct HistoryPoint {
  std::string timestamp;
  double value = 0.0;
  std::string binaryId;  // provenance: *what* produced this point
};

enum class RegressionKind {
  kNone,
  kDropBelowBand,   // performance fell below the expected band
  kRiseAboveBand,   // suspicious improvement (config change? wrong size?)
};

struct RegressionEvent {
  SeriesKey key;
  std::size_t pointIndex = 0;
  HistoryPoint point;
  RegressionKind kind = RegressionKind::kNone;
  double expected = 0.0;   // band centre at that point
  double deviation = 0.0;  // fractional deviation from the centre
  std::string detail;
};

struct DetectorOptions {
  /// Points used to learn the rolling band (older points only; the point
  /// under test never contributes to its own band).
  std::size_t window = 8;
  /// Minimum history before detection starts.
  std::size_t minHistory = 4;
  /// Band half-width as a multiple of the rolling standard deviation.
  double sigmas = 3.0;
  /// ... but never narrower than this fraction of the rolling mean
  /// (guards against a freakishly quiet history flagging normal noise).
  double minBandFraction = 0.05;
};

/// Performance history database, filled from perflog entries.
class PerfHistory {
 public:
  void add(const PerfLogEntry& entry);
  void addAll(std::span<const PerfLogEntry> entries);

  std::vector<SeriesKey> keys() const;
  const std::vector<HistoryPoint>& series(const SeriesKey& key) const;
  bool has(const SeriesKey& key) const;

  /// Runs the rolling-band detector over every series.
  std::vector<RegressionEvent> detect(
      const DetectorOptions& options = {}) const;

  /// Fixed-band check of the latest point of one series against a
  /// reference value (ReFrame semantics: value in
  /// [ref*(1+lower), ref*(1+upper)]).
  std::optional<RegressionEvent> checkAgainstReference(
      const SeriesKey& key, double reference, double lowerFrac,
      double upperFrac) const;

 private:
  std::map<SeriesKey, std::vector<HistoryPoint>> series_;
};

/// Renders an ASCII time-series with the flagged points marked — the
/// "time-series regression plot" of §2.4.
std::string renderHistoryPlot(const std::vector<HistoryPoint>& points,
                              std::span<const RegressionEvent> events,
                              const std::string& title, int width = 64,
                              int height = 12);

}  // namespace rebench
