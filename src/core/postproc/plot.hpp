// Plot renderers for the analysis step of Figure 1.
//
// Three output media: ASCII (terminal-readable, what the bench binaries
// print), SVG (publication-shaped heatmaps/bars, mirrors the paper's Bokeh
// proof-of-concept), and CSV (for external tooling).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/postproc/dataframe.hpp"

namespace rebench {

struct BarChartOptions {
  std::string title;
  int width = 50;            // characters for the longest bar
  std::string valueSuffix;   // e.g. " GB/s"
  std::optional<double> maxValue;  // default: data max
};

/// Horizontal ASCII bar chart from (label, value) pairs.
std::string renderBarChart(const std::vector<std::string>& labels,
                           const std::vector<double>& values,
                           const BarChartOptions& options = {});

struct HeatmapOptions {
  std::string title;
  /// Values are fractions in [0,1] (efficiencies); cells print as percent.
  bool asPercent = true;
  /// Marker for missing cells (Fig. 2 uses "*" for unsupported combos).
  std::string missingMarker = "*";
};

/// ASCII heatmap of a PivotTable; missing cells render the marker.
std::string renderHeatmap(const PivotTable& table,
                          const HeatmapOptions& options = {});

/// SVG heatmap (one <rect> per cell with a perceptual single-hue ramp).
std::string renderHeatmapSvg(const PivotTable& table,
                             const HeatmapOptions& options = {});

/// SVG grouped bar chart for (label, value) pairs.
std::string renderBarChartSvg(const std::vector<std::string>& labels,
                              const std::vector<double>& values,
                              const BarChartOptions& options = {});

/// Scaling / time-series ASCII plot: one line per series.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};
std::string renderScalingPlot(const std::vector<Series>& series,
                              const std::string& title, int width = 60,
                              int height = 16);

}  // namespace rebench
