#include "core/postproc/efficiency.hpp"

#include <algorithm>

#include "core/util/error.hpp"

namespace rebench {

double architecturalEfficiency(double achieved, double peak) {
  if (peak <= 0.0) throw Error("peak must be positive");
  return achieved / peak;
}

double applicationEfficiency(double variant, double original) {
  if (original <= 0.0) throw Error("original FOM must be positive");
  return variant / original;
}

double performancePortability(
    std::span<const std::optional<double>> efficiencies) {
  if (efficiencies.empty()) return 0.0;
  double invSum = 0.0;
  for (const std::optional<double>& e : efficiencies) {
    if (!e || *e <= 0.0) return 0.0;  // Pennycook: any unsupported => 0
    invSum += 1.0 / *e;
  }
  return static_cast<double>(efficiencies.size()) / invSum;
}

PortabilityReport analyzePortability(
    std::span<const EfficiencyObservation> observations) {
  PortabilityReport report;
  report.totalPlatforms = observations.size();
  std::vector<std::optional<double>> efficiencies;
  efficiencies.reserve(observations.size());
  double minE = 1e300, maxE = -1e300;
  for (const EfficiencyObservation& obs : observations) {
    efficiencies.push_back(obs.efficiency);
    if (obs.efficiency) {
      ++report.supportedPlatforms;
      minE = std::min(minE, *obs.efficiency);
      maxE = std::max(maxE, *obs.efficiency);
    }
  }
  if (report.supportedPlatforms > 0) {
    report.minEfficiency = minE;
    report.maxEfficiency = maxE;
  }
  report.pp = performancePortability(efficiencies);
  return report;
}

}  // namespace rebench
