#include "core/postproc/plot.hpp"

#include <algorithm>
#include <cmath>

#include "core/util/error.hpp"
#include "core/util/strings.hpp"

namespace rebench {

std::string renderBarChart(const std::vector<std::string>& labels,
                           const std::vector<double>& values,
                           const BarChartOptions& options) {
  REBENCH_REQUIRE(labels.size() == values.size());
  std::string out;
  if (!options.title.empty()) out += options.title + "\n";
  if (labels.empty()) return out + "(no data)\n";

  double maxValue = options.maxValue.value_or(
      *std::max_element(values.begin(), values.end()));
  if (maxValue <= 0.0) maxValue = 1.0;
  std::size_t labelWidth = 0;
  for (const std::string& label : labels) {
    labelWidth = std::max(labelWidth, label.size());
  }
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const int bar = static_cast<int>(
        std::round(options.width * std::clamp(values[i] / maxValue, 0.0, 1.0)));
    out += str::padRight(labels[i], labelWidth) + " |" +
           std::string(bar, '#') + " " + str::fixed(values[i], 2) +
           options.valueSuffix + "\n";
  }
  return out;
}

std::string renderHeatmap(const PivotTable& table,
                          const HeatmapOptions& options) {
  std::string out;
  if (!options.title.empty()) out += options.title + "\n";
  std::size_t rowWidth = 0;
  for (const std::string& label : table.rowLabels) {
    rowWidth = std::max(rowWidth, label.size());
  }
  const std::size_t cellWidth = std::max<std::size_t>(
      7, [&] {
        std::size_t w = 0;
        for (const std::string& label : table.colLabels) {
          w = std::max(w, label.size());
        }
        return w;
      }());

  out += str::padRight("", rowWidth);
  for (const std::string& col : table.colLabels) {
    out += "  " + str::padLeft(col, cellWidth);
  }
  out += "\n";
  for (std::size_t r = 0; r < table.rowLabels.size(); ++r) {
    out += str::padRight(table.rowLabels[r], rowWidth);
    for (std::size_t c = 0; c < table.colLabels.size(); ++c) {
      std::string cell = options.missingMarker;
      if (table.cells[r][c]) {
        cell = options.asPercent
                   ? str::fixed(*table.cells[r][c] * 100.0, 1) + "%"
                   : str::fixed(*table.cells[r][c], 2);
      }
      out += "  " + str::padLeft(cell, cellWidth);
    }
    out += "\n";
  }
  return out;
}

namespace {

std::string svgEscape(const std::string& text) {
  std::string out = str::replaceAll(text, "&", "&amp;");
  out = str::replaceAll(out, "<", "&lt;");
  out = str::replaceAll(out, ">", "&gt;");
  return out;
}

/// Single-hue ramp from near-white to a deep blue, linear in value.
std::string rampColor(double t) {
  t = std::clamp(t, 0.0, 1.0);
  const int r = static_cast<int>(std::round(247 - t * (247 - 8)));
  const int g = static_cast<int>(std::round(251 - t * (251 - 48)));
  const int b = static_cast<int>(std::round(255 - t * (255 - 107)));
  char buf[8];
  std::snprintf(buf, sizeof(buf), "#%02x%02x%02x", r, g, b);
  return buf;
}

}  // namespace

std::string renderHeatmapSvg(const PivotTable& table,
                             const HeatmapOptions& options) {
  constexpr int kCell = 54;
  constexpr int kLeft = 190;
  constexpr int kTop = 70;
  const int width = kLeft + kCell * static_cast<int>(table.colLabels.size()) + 20;
  const int height = kTop + kCell * static_cast<int>(table.rowLabels.size()) + 20;

  std::string svg = "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
                    std::to_string(width) + "\" height=\"" +
                    std::to_string(height) + "\" font-family=\"sans-serif\">\n";
  svg += "<text x=\"10\" y=\"22\" font-size=\"15\">" +
         svgEscape(options.title) + "</text>\n";
  for (std::size_t c = 0; c < table.colLabels.size(); ++c) {
    const int x = kLeft + static_cast<int>(c) * kCell + kCell / 2;
    svg += "<text x=\"" + std::to_string(x) + "\" y=\"" +
           std::to_string(kTop - 10) +
           "\" font-size=\"10\" text-anchor=\"middle\">" +
           svgEscape(table.colLabels[c]) + "</text>\n";
  }
  for (std::size_t r = 0; r < table.rowLabels.size(); ++r) {
    const int y = kTop + static_cast<int>(r) * kCell + kCell / 2 + 4;
    svg += "<text x=\"" + std::to_string(kLeft - 8) + "\" y=\"" +
           std::to_string(y) +
           "\" font-size=\"10\" text-anchor=\"end\">" +
           svgEscape(table.rowLabels[r]) + "</text>\n";
    for (std::size_t c = 0; c < table.colLabels.size(); ++c) {
      const int x = kLeft + static_cast<int>(c) * kCell;
      const int yy = kTop + static_cast<int>(r) * kCell;
      const auto& cell = table.cells[r][c];
      const std::string fill = cell ? rampColor(*cell) : "#ffffff";
      svg += "<rect x=\"" + std::to_string(x) + "\" y=\"" +
             std::to_string(yy) + "\" width=\"" + std::to_string(kCell - 2) +
             "\" height=\"" + std::to_string(kCell - 2) +
             "\" fill=\"" + fill + "\" stroke=\"#999\"/>\n";
      const std::string label =
          cell ? (options.asPercent ? str::fixed(*cell * 100.0, 0) + "%"
                                    : str::fixed(*cell, 2))
               : options.missingMarker;
      const std::string textFill = (cell && *cell > 0.55) ? "#fff" : "#333";
      svg += "<text x=\"" + std::to_string(x + kCell / 2 - 1) + "\" y=\"" +
             std::to_string(yy + kCell / 2 + 4) +
             "\" font-size=\"11\" text-anchor=\"middle\" fill=\"" + textFill +
             "\">" + svgEscape(label) + "</text>\n";
    }
  }
  svg += "</svg>\n";
  return svg;
}

std::string renderBarChartSvg(const std::vector<std::string>& labels,
                              const std::vector<double>& values,
                              const BarChartOptions& options) {
  REBENCH_REQUIRE(labels.size() == values.size());
  constexpr int kRow = 26;
  constexpr int kLeft = 180;
  constexpr int kTop = 46;
  constexpr int kBarMax = 420;
  const int width = kLeft + kBarMax + 120;
  const int height = kTop + kRow * static_cast<int>(labels.size()) + 16;
  double maxValue = options.maxValue.value_or(
      values.empty() ? 1.0 : *std::max_element(values.begin(), values.end()));
  if (maxValue <= 0.0) maxValue = 1.0;

  std::string svg = "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
                    std::to_string(width) + "\" height=\"" +
                    std::to_string(height) + "\" font-family=\"sans-serif\">\n";
  svg += "<text x=\"10\" y=\"22\" font-size=\"15\">" +
         svgEscape(options.title) + "</text>\n";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const int y = kTop + kRow * static_cast<int>(i);
    const int bar = static_cast<int>(
        std::round(kBarMax * std::clamp(values[i] / maxValue, 0.0, 1.0)));
    svg += "<text x=\"" + std::to_string(kLeft - 8) + "\" y=\"" +
           std::to_string(y + 14) +
           "\" font-size=\"11\" text-anchor=\"end\">" + svgEscape(labels[i]) +
           "</text>\n";
    svg += "<rect x=\"" + std::to_string(kLeft) + "\" y=\"" +
           std::to_string(y) + "\" width=\"" + std::to_string(bar) +
           "\" height=\"18\" fill=\"#08306b\"/>\n";
    svg += "<text x=\"" + std::to_string(kLeft + bar + 6) + "\" y=\"" +
           std::to_string(y + 14) + "\" font-size=\"11\">" +
           str::fixed(values[i], 2) + svgEscape(options.valueSuffix) +
           "</text>\n";
  }
  svg += "</svg>\n";
  return svg;
}

std::string renderScalingPlot(const std::vector<Series>& series,
                              const std::string& title, int width,
                              int height) {
  std::string out = title + "\n";
  double xMin = 1e300, xMax = -1e300, yMin = 1e300, yMax = -1e300;
  for (const Series& s : series) {
    REBENCH_REQUIRE(s.x.size() == s.y.size());
    for (double v : s.x) {
      xMin = std::min(xMin, v);
      xMax = std::max(xMax, v);
    }
    for (double v : s.y) {
      yMin = std::min(yMin, v);
      yMax = std::max(yMax, v);
    }
  }
  if (xMax <= xMin || series.empty()) return out + "(no data)\n";
  if (yMax <= yMin) yMax = yMin + 1.0;

  std::vector<std::string> grid(height, std::string(width, ' '));
  static constexpr char kMarks[] = "*o+x#@";
  for (std::size_t s = 0; s < series.size(); ++s) {
    const char mark = kMarks[s % (sizeof(kMarks) - 1)];
    for (std::size_t i = 0; i < series[s].x.size(); ++i) {
      const int col = static_cast<int>(std::round(
          (series[s].x[i] - xMin) / (xMax - xMin) * (width - 1)));
      const int row = static_cast<int>(std::round(
          (series[s].y[i] - yMin) / (yMax - yMin) * (height - 1)));
      grid[height - 1 - row][col] = mark;
    }
  }
  out += str::fixed(yMax, 2) + "\n";
  for (const std::string& line : grid) {
    out += "|" + line + "\n";
  }
  out += str::fixed(yMin, 2) + " " + std::string(width - 8, '-') + " " +
         str::fixed(xMax, 2) + "\n";
  std::string legend = "legend:";
  for (std::size_t s = 0; s < series.size(); ++s) {
    legend += std::string(" ") + kMarks[s % (sizeof(kMarks) - 1)] + "=" +
              series[s].name;
  }
  return out + legend + "\n";
}

}  // namespace rebench
