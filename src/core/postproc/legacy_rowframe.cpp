// Frozen copy of the row-oriented DataFrame (see legacy_rowframe.hpp).
#include "core/postproc/legacy_rowframe.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>

#include "core/postproc/stats.hpp"
#include "core/util/error.hpp"
#include "core/util/strings.hpp"

namespace rebench::legacy {

namespace {

double aggregate(std::span<const double> values, Agg agg) {
  REBENCH_REQUIRE(!values.empty());
  switch (agg) {
    case Agg::kMean:
      return std::accumulate(values.begin(), values.end(), 0.0) /
             static_cast<double>(values.size());
    case Agg::kMin: return *std::min_element(values.begin(), values.end());
    case Agg::kMax: return *std::max_element(values.begin(), values.end());
    case Agg::kSum:
      return std::accumulate(values.begin(), values.end(), 0.0);
    case Agg::kCount: return static_cast<double>(values.size());
    case Agg::kFirst: return values.front();
  }
  throw InternalError("unhandled aggregation");
}

}  // namespace

void RowFrame::addNumeric(std::string name, NumericColumn values) {
  if (!columns_.empty() && values.size() != rows_) {
    throw Error("column '" + name + "' has " + std::to_string(values.size()) +
                " rows, frame has " + std::to_string(rows_));
  }
  rows_ = values.size();
  columns_.emplace_back(std::move(name), std::move(values));
}

void RowFrame::addStrings(std::string name, StringColumn values) {
  if (!columns_.empty() && values.size() != rows_) {
    throw Error("column '" + name + "' has " + std::to_string(values.size()) +
                " rows, frame has " + std::to_string(rows_));
  }
  rows_ = values.size();
  columns_.emplace_back(std::move(name), std::move(values));
}

bool RowFrame::hasColumn(std::string_view name) const {
  for (const auto& [colName, col] : columns_) {
    if (colName == name) return true;
  }
  return false;
}

const RowFrame::Column& RowFrame::column(std::string_view name) const {
  for (const auto& [colName, col] : columns_) {
    if (colName == name) return col;
  }
  throw NotFoundError("no column '" + std::string(name) + "'");
}

bool RowFrame::isNumeric(std::string_view name) const {
  return std::holds_alternative<NumericColumn>(column(name));
}

std::vector<std::string> RowFrame::columnNames() const {
  std::vector<std::string> out;
  out.reserve(columns_.size());
  for (const auto& [name, col] : columns_) out.push_back(name);
  return out;
}

const RowFrame::NumericColumn& RowFrame::numeric(
    std::string_view name) const {
  const Column& col = column(name);
  const auto* values = std::get_if<NumericColumn>(&col);
  if (values == nullptr) {
    throw Error("column '" + std::string(name) + "' is not numeric");
  }
  return *values;
}

const RowFrame::StringColumn& RowFrame::strings(
    std::string_view name) const {
  const Column& col = column(name);
  const auto* values = std::get_if<StringColumn>(&col);
  if (values == nullptr) {
    throw Error("column '" + std::string(name) + "' is not a string column");
  }
  return *values;
}

std::string RowFrame::cellText(std::string_view name,
                               std::size_t row) const {
  REBENCH_REQUIRE(row < rows_);
  const Column& col = column(name);
  if (const auto* nums = std::get_if<NumericColumn>(&col)) {
    return str::fixed((*nums)[row], 6);
  }
  return std::get<StringColumn>(col)[row];
}

RowFrame RowFrame::takeRows(const std::vector<std::size_t>& indices) const {
  RowFrame out;
  for (const auto& [name, col] : columns_) {
    if (const auto* nums = std::get_if<NumericColumn>(&col)) {
      NumericColumn values;
      values.reserve(indices.size());
      for (std::size_t i : indices) values.push_back((*nums)[i]);
      out.addNumeric(name, std::move(values));
    } else {
      const auto& strs = std::get<StringColumn>(col);
      StringColumn values;
      values.reserve(indices.size());
      for (std::size_t i : indices) values.push_back(strs[i]);
      out.addStrings(name, std::move(values));
    }
  }
  out.rows_ = indices.size();
  return out;
}

RowFrame RowFrame::filter(
    const std::function<bool(std::size_t)>& rowPredicate) const {
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < rows_; ++i) {
    if (rowPredicate(i)) keep.push_back(i);
  }
  return takeRows(keep);
}

RowFrame RowFrame::filterEquals(std::string_view columnName,
                                std::string_view value) const {
  const StringColumn& col = strings(columnName);
  return filter([&](std::size_t i) { return col[i] == value; });
}

RowFrame RowFrame::selectColumns(std::span<const std::string> names) const {
  RowFrame out;
  for (const std::string& name : names) {
    const Column& col = column(name);
    if (const auto* nums = std::get_if<NumericColumn>(&col)) {
      out.addNumeric(name, *nums);
    } else {
      out.addStrings(name, std::get<StringColumn>(col));
    }
  }
  out.rows_ = rows_;
  return out;
}

RowFrame RowFrame::sortBy(std::string_view columnName,
                          bool ascending) const {
  std::vector<std::size_t> order(rows_);
  std::iota(order.begin(), order.end(), std::size_t{0});
  const Column& col = column(columnName);
  auto cmp = [&](std::size_t a, std::size_t b) {
    if (const auto* nums = std::get_if<NumericColumn>(&col)) {
      return ascending ? (*nums)[a] < (*nums)[b] : (*nums)[b] < (*nums)[a];
    }
    const auto& strs = std::get<StringColumn>(col);
    return ascending ? strs[a] < strs[b] : strs[b] < strs[a];
  };
  std::stable_sort(order.begin(), order.end(), cmp);
  return takeRows(order);
}

RowFrame RowFrame::concat(std::span<const RowFrame> frames) {
  if (frames.empty()) return {};
  const RowFrame& first = frames.front();
  for (const RowFrame& frame : frames.subspan(1)) {
    if (frame.columnNames() != first.columnNames()) {
      throw Error("cannot concat frames with different schemas");
    }
  }
  RowFrame out;
  for (std::size_t c = 0; c < first.columns_.size(); ++c) {
    const std::string& name = first.columns_[c].first;
    if (std::holds_alternative<NumericColumn>(first.columns_[c].second)) {
      NumericColumn merged;
      for (const RowFrame& frame : frames) {
        if (!frame.isNumeric(name)) {
          throw Error("column '" + name + "' changes type across frames");
        }
        const auto& values = frame.numeric(name);
        merged.insert(merged.end(), values.begin(), values.end());
      }
      out.addNumeric(name, std::move(merged));
    } else {
      StringColumn merged;
      for (const RowFrame& frame : frames) {
        if (frame.isNumeric(name)) {
          throw Error("column '" + name + "' changes type across frames");
        }
        const auto& values = frame.strings(name);
        merged.insert(merged.end(), values.begin(), values.end());
      }
      out.addStrings(name, std::move(merged));
    }
  }
  return out;
}

RowFrame RowFrame::groupBy(std::span<const std::string> keyColumns,
                           std::string_view valueColumn, Agg agg) const {
  const NumericColumn& values = numeric(valueColumn);
  std::vector<const StringColumn*> keys;
  keys.reserve(keyColumns.size());
  for (const std::string& key : keyColumns) keys.push_back(&strings(key));

  // Group rows by composite key, preserving first-seen order.
  std::map<std::vector<std::string>, std::vector<double>> groups;
  std::vector<std::vector<std::string>> order;
  for (std::size_t i = 0; i < rows_; ++i) {
    std::vector<std::string> key;
    key.reserve(keys.size());
    for (const StringColumn* col : keys) key.push_back((*col)[i]);
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) order.push_back(key);
    it->second.push_back(values[i]);
  }

  RowFrame out;
  for (std::size_t k = 0; k < keyColumns.size(); ++k) {
    StringColumn col;
    col.reserve(order.size());
    for (const auto& key : order) col.push_back(key[k]);
    out.addStrings(keyColumns[k], std::move(col));
  }
  NumericColumn aggValues;
  aggValues.reserve(order.size());
  for (const auto& key : order) {
    aggValues.push_back(aggregate(groups.at(key), agg));
  }
  out.addNumeric(std::string(valueColumn), std::move(aggValues));
  return out;
}

PivotTable RowFrame::pivot(std::string_view rowKey, std::string_view colKey,
                           std::string_view valueColumn, Agg agg) const {
  const StringColumn& rowCol = strings(rowKey);
  const StringColumn& colCol = strings(colKey);
  const NumericColumn& values = numeric(valueColumn);

  PivotTable table;
  auto indexOf = [](std::vector<std::string>& labels,
                    const std::string& label) {
    auto it = std::find(labels.begin(), labels.end(), label);
    if (it != labels.end()) {
      return static_cast<std::size_t>(it - labels.begin());
    }
    labels.push_back(label);
    return labels.size() - 1;
  };

  std::map<std::pair<std::size_t, std::size_t>, std::vector<double>> buckets;
  for (std::size_t i = 0; i < rows_; ++i) {
    const std::size_t r = indexOf(table.rowLabels, rowCol[i]);
    const std::size_t c = indexOf(table.colLabels, colCol[i]);
    buckets[{r, c}].push_back(values[i]);
  }
  table.cells.assign(table.rowLabels.size(),
                     std::vector<std::optional<double>>(
                         table.colLabels.size(), std::nullopt));
  for (const auto& [key, bucket] : buckets) {
    table.cells[key.first][key.second] = aggregate(bucket, agg);
  }
  return table;
}

RowFrame RowFrame::describe() const {
  StringColumn names;
  NumericColumn count, mean, std, minimum, median, maximum;
  for (const auto& [name, col] : columns_) {
    const auto* nums = std::get_if<NumericColumn>(&col);
    if (nums == nullptr || nums->empty()) continue;
    const SummaryStats stats = summarize(*nums);
    names.push_back(name);
    count.push_back(static_cast<double>(stats.count));
    mean.push_back(stats.mean);
    std.push_back(stats.stddev);
    minimum.push_back(stats.min);
    median.push_back(stats.median);
    maximum.push_back(stats.max);
  }
  RowFrame out;
  out.addStrings("column", std::move(names));
  out.addNumeric("count", std::move(count));
  out.addNumeric("mean", std::move(mean));
  out.addNumeric("std", std::move(std));
  out.addNumeric("min", std::move(minimum));
  out.addNumeric("median", std::move(median));
  out.addNumeric("max", std::move(maximum));
  return out;
}

std::string RowFrame::toCsv() const {
  std::string out = str::join(columnNames(), ",") + "\n";
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c != 0) out += ',';
      std::string cell = cellText(columns_[c].first, i);
      if (cell.find(',') != std::string::npos ||
          cell.find('"') != std::string::npos) {
        cell = '"' + str::replaceAll(cell, "\"", "\"\"") + '"';
      }
      out += cell;
    }
    out += '\n';
  }
  return out;
}

RowFrame RowFrame::fromCsv(const std::string& text) {
  std::vector<std::string> lines;
  for (const std::string& line : str::split(text, '\n')) {
    if (!str::trim(line).empty()) lines.push_back(line);
  }
  if (lines.empty()) return {};

  // Minimal CSV: supports quoted cells with doubled quotes.
  auto parseLine = [](const std::string& line) {
    std::vector<std::string> cells;
    std::string cell;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (quoted) {
        if (c == '"' && i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else if (c == '"') {
          quoted = false;
        } else {
          cell += c;
        }
      } else if (c == '"') {
        quoted = true;
      } else if (c == ',') {
        cells.push_back(std::move(cell));
        cell.clear();
      } else {
        cell += c;
      }
    }
    cells.push_back(std::move(cell));
    return cells;
  };

  const std::vector<std::string> header = parseLine(lines[0]);
  std::vector<StringColumn> raw(header.size());
  for (std::size_t r = 1; r < lines.size(); ++r) {
    const std::vector<std::string> cells = parseLine(lines[r]);
    if (cells.size() != header.size()) {
      throw ParseError("CSV row " + std::to_string(r) + " has " +
                       std::to_string(cells.size()) + " cells, expected " +
                       std::to_string(header.size()));
    }
    for (std::size_t c = 0; c < cells.size(); ++c) raw[c].push_back(cells[c]);
  }

  RowFrame out;
  for (std::size_t c = 0; c < header.size(); ++c) {
    bool allNumeric = !raw[c].empty();
    NumericColumn nums;
    nums.reserve(raw[c].size());
    for (const std::string& cell : raw[c]) {
      try {
        std::size_t used = 0;
        const double v = std::stod(cell, &used);
        if (used != cell.size()) {
          allNumeric = false;
          break;
        }
        nums.push_back(v);
      } catch (const std::exception&) {
        allNumeric = false;
        break;
      }
    }
    if (allNumeric) {
      out.addNumeric(header[c], std::move(nums));
    } else {
      out.addStrings(header[c], std::move(raw[c]));
    }
  }
  return out;
}

RowFrame rowFrameFromPerflog(std::span<const PerfLogEntry> entries) {
  RowFrame::StringColumn system, partition, environ, test, spec, fom, unit,
      result;
  RowFrame::NumericColumn value;
  for (const PerfLogEntry& entry : entries) {
    system.push_back(entry.system);
    partition.push_back(entry.partition);
    environ.push_back(entry.environ);
    test.push_back(entry.testName);
    spec.push_back(entry.spec);
    fom.push_back(entry.fomName);
    unit.push_back(std::string(unitName(entry.unit)));
    result.push_back(entry.result);
    value.push_back(entry.value);
  }
  RowFrame frame;
  frame.addStrings("system", std::move(system));
  frame.addStrings("partition", std::move(partition));
  frame.addStrings("environ", std::move(environ));
  frame.addStrings("test", std::move(test));
  frame.addStrings("spec", std::move(spec));
  frame.addStrings("fom", std::move(fom));
  frame.addStrings("unit", std::move(unit));
  frame.addStrings("result", std::move(result));
  frame.addNumeric("value", std::move(value));
  return frame;
}

}  // namespace rebench::legacy
