#include "core/postproc/trace_report.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "core/obs/json.hpp"
#include "core/obs/metrics.hpp"
#include "core/util/strings.hpp"
#include "core/util/table.hpp"

namespace rebench {

DataFrame traceToDataFrame(const obs::TraceFile& trace) {
  DataFrame::StringColumn ids, parents, names;
  DataFrame::NumericColumn starts, ends, durations;
  for (const obs::SpanRecord& span : trace.spans) {
    ids.push_back(span.id);
    parents.push_back(span.parent);
    names.push_back(span.name);
    starts.push_back(span.start);
    ends.push_back(span.end);
    durations.push_back(span.duration());
  }
  DataFrame frame;
  frame.addStrings("id", std::move(ids));
  frame.addStrings("parent", std::move(parents));
  frame.addStrings("name", std::move(names));
  frame.addNumeric("start", std::move(starts));
  frame.addNumeric("end", std::move(ends));
  frame.addNumeric("duration", std::move(durations));
  return frame;
}

namespace {

struct StageStats {
  std::size_t count = 0;
  double total = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Aggregates span durations by name; `order` is first-appearance order.
/// One collector feeds the ASCII table and the JSON fragment so the two
/// renderings can never drift apart.
std::map<std::string, StageStats> collectStageStats(
    const obs::TraceFile& trace, std::vector<std::string>& order) {
  std::map<std::string, StageStats> stats;
  const DataFrame frame = traceToDataFrame(trace);
  if (!frame.empty()) {
    const auto& names = frame.strings("name");
    const auto& durations = frame.numeric("duration");
    for (std::size_t i = 0; i < frame.rowCount(); ++i) {
      auto [it, inserted] = stats.try_emplace(names[i]);
      if (inserted) {
        order.push_back(names[i]);
        it->second.min = durations[i];
        it->second.max = durations[i];
      }
      StageStats& s = it->second;
      ++s.count;
      s.total += durations[i];
      s.min = std::min(s.min, durations[i]);
      s.max = std::max(s.max, durations[i]);
    }
  }
  return stats;
}

}  // namespace

std::string renderStageTable(const obs::TraceFile& trace) {
  std::vector<std::string> order;
  const std::map<std::string, StageStats> stats =
      collectStageStats(trace, order);

  AsciiTable table("per-stage timing:");
  table.setHeader({"stage", "spans", "total s", "mean s", "min s", "max s"});
  for (const std::string& name : order) {
    const StageStats& s = stats.at(name);
    table.addRow({name, std::to_string(s.count), str::fixed(s.total, 6),
                  str::fixed(s.total / static_cast<double>(s.count), 6),
                  str::fixed(s.min, 6), str::fixed(s.max, 6)});
  }
  return table.render();
}

namespace {

void renderSpanSubtree(
    const obs::TraceFile& trace,
    const std::map<std::string, std::vector<std::size_t>>& children,
    std::size_t index, int depth, double rootDuration, std::string& out) {
  constexpr int kBarWidth = 24;
  const obs::SpanRecord& span = trace.spans[index];
  const double fraction =
      rootDuration > 0.0
          ? std::clamp(span.duration() / rootDuration, 0.0, 1.0)
          : 0.0;
  const int bar = static_cast<int>(std::lround(fraction * kBarWidth));
  std::string label(static_cast<std::size_t>(depth) * 2, ' ');
  label += span.name;
  out += str::padRight(label, 32);
  out += str::padLeft(str::fixed(span.duration(), 6), 12) + " s  |";
  out += std::string(static_cast<std::size_t>(bar), '#');
  out += std::string(static_cast<std::size_t>(kBarWidth - bar), ' ');
  out += "|  " + span.id + "\n";
  if (auto it = children.find(span.id); it != children.end()) {
    for (std::size_t child : it->second) {
      renderSpanSubtree(trace, children, child, depth + 1, rootDuration, out);
    }
  }
}

}  // namespace

std::string renderTraceTree(const obs::TraceFile& trace) {
  // Index spans by parent, children ordered by start time.
  std::map<std::string, std::vector<std::size_t>> children;
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    const obs::SpanRecord& span = trace.spans[i];
    if (span.parent.empty()) {
      roots.push_back(i);
    } else {
      children[span.parent].push_back(i);
    }
  }
  auto byStart = [&trace](std::size_t a, std::size_t b) {
    return trace.spans[a].start < trace.spans[b].start;
  };
  std::sort(roots.begin(), roots.end(), byStart);
  for (auto& [parent, kids] : children) std::sort(kids.begin(), kids.end(), byStart);

  std::string out = "span tree:\n";
  for (std::size_t root : roots) {
    renderSpanSubtree(trace, children, root, 0,
                      trace.spans[root].duration(), out);
  }
  return out;
}

std::string renderMetricsReport(const obs::TraceFile& trace) {
  std::string out;
  if (!trace.counters.empty()) {
    AsciiTable table("counters:");
    table.setHeader({"name", "value"});
    for (const auto& [name, value] : trace.counters) {
      table.addRow({name, std::to_string(value)});
    }
    out += table.render();
  }
  if (!trace.gauges.empty()) {
    AsciiTable table("gauges:");
    table.setHeader({"name", "value", "max"});
    for (const auto& [name, gauge] : trace.gauges) {
      table.addRow({name, str::fixed(gauge.value, 2),
                    str::fixed(gauge.max, 2)});
    }
    out += table.render();
  }
  if (!trace.histograms.empty()) {
    AsciiTable table("histograms:");
    table.setHeader({"name", "count", "sum", "mean", "buckets"});
    for (const auto& [name, hist] : trace.histograms) {
      std::string buckets;
      for (std::size_t i = 0; i < hist.counts.size(); ++i) {
        if (hist.counts[i] == 0) continue;
        if (!buckets.empty()) buckets += " ";
        buckets += (i < hist.bounds.size()
                        ? "le" + str::fixed(hist.bounds[i], 3)
                        : std::string("inf")) +
                   ":" + std::to_string(hist.counts[i]);
      }
      const double mean =
          hist.count == 0 ? 0.0 : hist.sum / static_cast<double>(hist.count);
      table.addRow({name, std::to_string(hist.count),
                    str::fixed(hist.sum, 4), str::fixed(mean, 4), buckets});
    }
    out += table.render();
  }
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

std::string stageTableJson(const obs::TraceFile& trace) {
  using obs::json::quote;
  std::vector<std::string> order;
  const std::map<std::string, StageStats> stats =
      collectStageStats(trace, order);
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < order.size(); ++i) {
    const StageStats& s = stats.at(order[i]);
    if (i > 0) out << ",";
    out << "{\"stage\":" << quote(order[i]) << ",\"spans\":" << s.count
        << ",\"total_s\":" << str::fixed(s.total, 6) << ",\"mean_s\":"
        << str::fixed(s.total / static_cast<double>(s.count), 6)
        << ",\"min_s\":" << str::fixed(s.min, 6)
        << ",\"max_s\":" << str::fixed(s.max, 6) << "}";
  }
  out << "]";
  return out.str();
}

std::string metricsJson(const obs::TraceFile& trace) {
  using obs::json::quote;
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : trace.counters) {
    if (!first) out << ",";
    first = false;
    out << quote(name) << ":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : trace.gauges) {
    if (!first) out << ",";
    first = false;
    out << quote(name) << ":{\"value\":" << str::fixed(gauge.value, 6)
        << ",\"max\":" << str::fixed(gauge.max, 6) << "}";
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : trace.histograms) {
    if (!first) out << ",";
    first = false;
    out << quote(name) << ":{\"count\":" << hist.count
        << ",\"sum\":" << str::fixed(hist.sum, 6) << ",\"bounds\":[";
    for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
      if (i > 0) out << ",";
      out << str::fixed(hist.bounds[i], 6);
    }
    out << "],\"counts\":[";
    for (std::size_t i = 0; i < hist.counts.size(); ++i) {
      if (i > 0) out << ",";
      out << hist.counts[i];
    }
    out << "],\"quantiles\":{";
    // Shared estimator + shared `%.6g` formatter: these bytes cannot
    // drift from `profile --json` or the OpenMetrics exporter.
    for (std::size_t i = 0; i < std::size(obs::kReportedQuantiles); ++i) {
      if (i > 0) out << ",";
      const double q = obs::kReportedQuantiles[i];
      out << quote(obs::formatMetricValue(q)) << ":"
          << obs::formatMetricValue(
                 obs::histogramQuantile(hist.bounds, hist.counts, hist.count, q));
    }
    out << "}}";
  }
  out << "}}";
  return out.str();
}

}  // namespace rebench
