#include "core/sysconfig/system_config.hpp"

#include "core/util/error.hpp"
#include "core/util/strings.hpp"

namespace rebench {

const PartitionConfig* SystemConfig::findPartition(
    std::string_view partition) const {
  for (const PartitionConfig& p : partitions) {
    if (p.name == partition) return &p;
  }
  return nullptr;
}

void SystemRegistry::add(SystemConfig config) {
  systems_.push_back(std::move(config));
}

const SystemConfig& SystemRegistry::get(std::string_view systemName) const {
  for (const SystemConfig& sys : systems_) {
    if (sys.name == systemName) return sys;
  }
  throw NotFoundError("unknown system '" + std::string(systemName) + "'");
}

bool SystemRegistry::has(std::string_view systemName) const {
  for (const SystemConfig& sys : systems_) {
    if (sys.name == systemName) return true;
  }
  return false;
}

std::vector<std::string> SystemRegistry::systemNames() const {
  std::vector<std::string> out;
  out.reserve(systems_.size());
  for (const SystemConfig& sys : systems_) out.push_back(sys.name);
  return out;
}

std::pair<const SystemConfig*, const PartitionConfig*> SystemRegistry::resolve(
    std::string_view target) const {
  const std::size_t colon = target.find(':');
  const std::string_view systemName =
      colon == std::string_view::npos ? target : target.substr(0, colon);
  const SystemConfig& sys = get(systemName);
  if (colon == std::string_view::npos) {
    if (sys.partitions.empty()) {
      throw NotFoundError("system '" + std::string(systemName) +
                          "' has no partitions");
    }
    return {&sys, &sys.partitions.front()};
  }
  const std::string_view partName = target.substr(colon + 1);
  const PartitionConfig* part = sys.findPartition(partName);
  if (part == nullptr) {
    throw NotFoundError("system '" + std::string(systemName) +
                        "' has no partition '" + std::string(partName) + "'");
  }
  return {&sys, part};
}

}  // namespace rebench
