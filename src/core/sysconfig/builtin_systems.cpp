// Builtin system configurations: the seven systems of the paper (Table 5)
// plus "local", the host the test-suite runs on natively.
//
// The environments encode exactly the externals the paper reports:
// Table 3's concretized dependencies are *derived* from these entries by
// the concretizer, not hard-coded anywhere else.
#include "core/sysconfig/system_config.hpp"

namespace rebench {

namespace {

ExternalEntry external(std::string name, std::string version,
                       std::string origin, std::string compilerName = {},
                       std::string compilerVersion = {}) {
  ExternalEntry e;
  e.name = std::move(name);
  e.version = Version::parse(version);
  e.origin = std::move(origin);
  e.compilerName = std::move(compilerName);
  if (!compilerVersion.empty()) {
    e.compilerVersion = Version::parse(compilerVersion);
  }
  return e;
}

CompilerEntry compiler(std::string name, std::string version,
                       std::string modules = {}) {
  return CompilerEntry{std::move(name), Version::parse(version),
                       std::move(modules)};
}

SystemConfig makeArcher2() {
  SystemConfig sys;
  sys.name = "archer2";
  sys.description = "ARCHER2 UK National Supercomputing Service (HPE Cray EX)";

  PartitionConfig compute;
  compute.name = "compute";
  compute.scheduler = SchedulerKind::kSlurm;
  compute.launcher = LauncherKind::kSrun;
  compute.processor = {"AMD", "EPYC 7742 (Rome)", "x86_64", false, 2, 64,
                       2.25};
  compute.numNodes = 1024;  // simulated subset of the 5,860-node machine
  compute.machineModel = "rome-7742";
  // Calibrated against Table 4 (ARCHER2 row): see EXPERIMENTS.md.
  compute.platformEfficiency = 0.0458;
  compute.launchOverheadSeconds = 5.35e-6;
  // HPE Slingshot-10.
  compute.netLatencySeconds = 1.7e-6;
  compute.netBandwidthGBs = 12.5;
  compute.accessOptions = {"--qos=standard"};
  compute.requiresAccount = true;
  sys.partitions.push_back(compute);

  sys.environment.systemName = sys.name;
  sys.environment.defaultCompiler = "gcc";
  sys.environment.compilers = {
      compiler("gcc", "11.2.0", "PrgEnv-gnu/8.3.3"),
      compiler("gcc", "10.3.0", "gcc/10.3.0"),
      compiler("cce", "15.0.0", "PrgEnv-cray/8.3.3"),
  };
  sys.environment.externals = {
      external("cray-mpich", "8.1.23", "cray-mpich/8.1.23", "gcc", "11.2.0"),
      external("python", "3.10.12", "cray-python/3.10.12"),
      external("cmake", "3.25.1", "cmake/3.25.1"),
  };
  sys.environment.preferredProviders["mpi"] = {"cray-mpich"};
  return sys;
}

SystemConfig makeCosma8() {
  SystemConfig sys;
  sys.name = "cosma8";
  sys.description = "DiRAC COSMA8 (Durham) — dual AMD Rome 7H12";

  PartitionConfig compute;
  compute.name = "compute";
  compute.scheduler = SchedulerKind::kSlurm;
  compute.launcher = LauncherKind::kMpirun;
  compute.processor = {"AMD", "EPYC 7H12 (Rome)", "x86_64", false, 2, 64,
                       2.6};
  compute.numNodes = 360;
  compute.machineModel = "rome-7h12";
  // Calibrated against Table 4 (COSMA8 row): see EXPERIMENTS.md.
  compute.platformEfficiency = 0.0396;
  compute.launchOverheadSeconds = 1.0e-6;
  // Mellanox HDR200 InfiniBand.
  compute.netLatencySeconds = 1.1e-6;
  compute.netBandwidthGBs = 25.0;
  compute.requiresAccount = true;
  sys.partitions.push_back(compute);

  sys.environment.systemName = sys.name;
  sys.environment.compilers = {
      compiler("gcc", "11.1.0", "gnu_comp/11.1.0"),
      compiler("gcc", "9.3.0", "gnu_comp/9.3.0"),
  };
  sys.environment.externals = {
      external("mvapich", "2.3.6", "mvapich2/2.3.6", "gcc", "11.1.0"),
      external("python", "2.7.15", "python/2.7.15"),
  };
  sys.environment.preferredProviders["mpi"] = {"mvapich"};
  return sys;
}

SystemConfig makeCsd3() {
  SystemConfig sys;
  sys.name = "csd3";
  sys.description =
      "Cambridge Service for Data Driven Discovery — Cascade Lake partition";

  PartitionConfig compute;
  compute.name = "cclake";
  compute.scheduler = SchedulerKind::kSlurm;
  compute.launcher = LauncherKind::kMpirun;
  compute.processor = {"Intel", "Xeon Platinum 8276 (Cascade Lake)", "x86_64",
                       false, 2, 28, 2.2};
  compute.numNodes = 672;
  compute.machineModel = "clx-8276";
  // Calibrated against Table 4 (CSD3 row): see EXPERIMENTS.md.
  compute.platformEfficiency = 0.0953;
  compute.launchOverheadSeconds = 1.24e-5;
  // HDR100 InfiniBand.
  compute.netLatencySeconds = 1.3e-6;
  compute.netBandwidthGBs = 12.5;
  compute.requiresAccount = true;
  sys.partitions.push_back(compute);

  sys.environment.systemName = sys.name;
  sys.environment.compilers = {
      compiler("gcc", "11.2.0", "gcc/11.2.0"),
      compiler("oneapi", "2022.2.0", "intel-oneapi-compilers/2022.2.0"),
  };
  sys.environment.externals = {
      external("openmpi", "4.0.4", "openmpi/4.0.4", "gcc", "11.2.0"),
      external("python", "3.8.2", "python/3.8.2"),
  };
  sys.environment.preferredProviders["mpi"] = {"openmpi"};
  return sys;
}

SystemConfig makeIsambard() {
  SystemConfig sys;
  sys.name = "isambard";
  sys.description = "Isambard 2 XCI — Marvell ThunderX2 (Arm)";

  PartitionConfig xci;
  xci.name = "xci";
  xci.scheduler = SchedulerKind::kPbs;
  xci.launcher = LauncherKind::kAprun;
  xci.processor = {"Marvell", "ThunderX2 CN9980", "aarch64", false, 2, 32,
                   2.5};
  xci.numNodes = 329;
  xci.machineModel = "thunderx2";
  xci.platformEfficiency = 0.025;
  xci.launchOverheadSeconds = 2.0e-5;
  // Cray Aries.
  xci.netLatencySeconds = 1.9e-6;
  xci.netBandwidthGBs = 10.0;
  sys.partitions.push_back(xci);

  sys.environment.systemName = sys.name;
  sys.environment.compilers = {
      compiler("gcc", "10.3.0", "gcc/10.3.0"),
      compiler("gcc", "9.2.0", "gcc/9.2.0"),
  };
  sys.environment.externals = {
      external("openmpi", "4.0.3", "openmpi/4.0.3", "gcc", "9.2.0"),
      external("python", "3.7.5", "python/3.7.5"),
  };
  sys.environment.preferredProviders["mpi"] = {"openmpi"};
  return sys;
}

SystemConfig makeIsambardMacs() {
  SystemConfig sys;
  sys.name = "isambard-macs";
  sys.description = "Isambard Multi-Architecture Comparison System";

  PartitionConfig clx;
  clx.name = "cascadelake";
  clx.scheduler = SchedulerKind::kPbs;
  clx.launcher = LauncherKind::kMpirun;
  clx.processor = {"Intel", "Xeon Gold 6230 (Cascade Lake)", "x86_64", false,
                   2, 20, 2.1};
  clx.numNodes = 4;
  clx.machineModel = "clx-6230";
  // Calibrated against Table 4 (Isambard CLX row): see EXPERIMENTS.md.
  clx.platformEfficiency = 0.0232;
  clx.launchOverheadSeconds = 2.49e-5;
  // EDR InfiniBand.
  clx.netLatencySeconds = 1.5e-6;
  clx.netBandwidthGBs = 12.0;
  sys.partitions.push_back(clx);

  PartitionConfig volta;
  volta.name = "volta";
  volta.scheduler = SchedulerKind::kPbs;
  volta.launcher = LauncherKind::kLocal;
  volta.processor = {"NVIDIA", "Tesla V100 PCIe 16GB", "sm_70", true, 1, 80,
                     1.245};
  volta.numNodes = 1;
  volta.machineModel = "v100";
  sys.partitions.push_back(volta);

  sys.environment.systemName = sys.name;
  // The paper pins GCC 9.2.0 here: "the build system has conflicts with
  // newer versions" (§3.1) — so 9.2.0 is the *only* gcc on this system.
  sys.environment.compilers = {
      compiler("gcc", "9.2.0", "gcc/9.2.0"),
      compiler("oneapi", "2023.1.0", "oneapi/2023.1.0"),
      compiler("nvhpc", "22.11", "nvhpc/22.11"),
  };
  sys.environment.externals = {
      external("openmpi", "4.0.3", "openmpi/4.0.3", "gcc", "9.2.0"),
      external("python", "3.7.5", "python/3.7.5"),
      external("cuda", "11.2.2", "cuda/11.2.2"),
      external("intel-tbb", "2021.4.0", "oneapi/tbb/2021.4.0"),
  };
  sys.environment.preferredProviders["mpi"] = {"openmpi"};
  return sys;
}

SystemConfig makeNoctua2() {
  SystemConfig sys;
  sys.name = "noctua2";
  sys.description = "Noctua 2 (Paderborn PC2) — AMD Milan 7763";

  PartitionConfig compute;
  compute.name = "normal";
  compute.scheduler = SchedulerKind::kSlurm;
  compute.launcher = LauncherKind::kSrun;
  compute.processor = {"AMD", "EPYC 7763 (Milan)", "x86_64", false, 2, 64,
                       2.45};
  compute.numNodes = 990;
  compute.machineModel = "milan-7763";
  compute.platformEfficiency = 0.075;
  compute.launchOverheadSeconds = 1.0e-5;
  // HDR200 InfiniBand.
  compute.netLatencySeconds = 1.1e-6;
  compute.netBandwidthGBs = 25.0;
  compute.requiresAccount = true;
  sys.partitions.push_back(compute);

  sys.environment.systemName = sys.name;
  sys.environment.compilers = {
      compiler("gcc", "12.1.0", "gcc/12.1.0"),
      compiler("oneapi", "2023.1.0", "oneapi/2023.1.0"),
  };
  sys.environment.externals = {
      external("openmpi", "4.1.4", "openmpi/4.1.4", "gcc", "12.1.0"),
      external("python", "3.11.4", "python/3.11.4"),
      external("intel-tbb", "2021.9.0", "oneapi/tbb/2021.9.0"),
  };
  sys.environment.preferredProviders["mpi"] = {"openmpi"};
  return sys;
}

SystemConfig makeLocal() {
  SystemConfig sys;
  sys.name = "local";
  sys.description = "The host this process runs on (native execution)";

  PartitionConfig part;
  part.name = "default";
  part.scheduler = SchedulerKind::kLocal;
  part.launcher = LauncherKind::kLocal;
  // Thread-backed ranks oversubscribe happily; expose a few logical
  // CPUs so small MPI jobs (OSU pt2pt, 2-rank solvers) fit on the node.
  part.processor = {"generic", "host CPU", "native", false, 1, 4, 0.0};
  part.numNodes = 1;
  part.machineModel = "";  // native timing, no model
  sys.partitions.push_back(part);

  sys.environment.systemName = sys.name;
  sys.environment.compilers = {compiler("gcc", "12.2.0", "system")};
  sys.environment.externals = {
      external("openmpi", "4.1.4", "system", "gcc", "12.2.0"),
      external("python", "3.11.4", "system"),
      external("cmake", "3.25.1", "system"),
  };
  sys.environment.preferredProviders["mpi"] = {"openmpi"};
  return sys;
}

}  // namespace

SystemRegistry builtinSystems() {
  SystemRegistry reg;
  reg.add(makeArcher2());
  reg.add(makeCosma8());
  reg.add(makeCsd3());
  reg.add(makeIsambard());
  reg.add(makeIsambardMacs());
  reg.add(makeNoctua2());
  reg.add(makeLocal());
  return reg;
}

}  // namespace rebench
