// System and partition descriptions — the ReFrame-style configuration that
// separates *where* a benchmark runs from *what* the benchmark is (§2.3).
// The builtin registry encodes the seven systems of the paper (Table 5),
// including their software environments (Table 3's externals).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/concretizer/environment.hpp"

namespace rebench {

/// Hardware description of a partition's node type (paper Tables 1 & 5).
struct ProcessorInfo {
  std::string vendor;       // "Intel", "AMD", "Marvell", "NVIDIA"
  std::string model;        // "Xeon Platinum 8276 (Cascade Lake)"
  std::string arch;         // "x86_64", "aarch64", "sm_70"
  bool isGpu = false;
  int sockets = 2;
  int coresPerSocket = 0;   // CUs for GPUs
  double baseClockGhz = 0.0;

  int totalCores() const { return sockets * coresPerSocket; }
};

enum class SchedulerKind { kLocal, kSlurm, kPbs };
enum class LauncherKind { kLocal, kSrun, kMpirun, kAprun };

/// One scheduler partition of a system.
struct PartitionConfig {
  std::string name;                    // "compute", "cascadelake", ...
  SchedulerKind scheduler = SchedulerKind::kSlurm;
  LauncherKind launcher = LauncherKind::kSrun;
  ProcessorInfo processor;
  int numNodes = 1;
  /// Key of the machine model in the sim registry driving modelled runs;
  /// empty for native-only partitions (the "local" system).
  std::string machineModel;
  /// Scheduler access options every job must carry (qos/account flags the
  /// appendix documents, e.g. "-J--qos=standard" on ARCHER2).
  std::vector<std::string> accessOptions;
  bool requiresAccount = false;
  /// Default wall-clock limit for jobs, seconds (simulated time).
  double defaultTimeLimit = 3600.0;
  /// Fraction of the machine model's achievable performance this
  /// *platform* (software stack, MPI library, filesystem, BIOS tuning...)
  /// sustains in practice.  §3.3's point: the same architecture on two
  /// systems performs very differently; this knob is where that
  /// platform-not-architecture character lives.
  double platformEfficiency = 1.0;
  /// Fixed overhead per kernel launch / communication step on this
  /// platform, seconds (MPI latency, jitter).
  double launchOverheadSeconds = 30.0e-6;
  /// Interconnect character (for MPI micro-benchmark modelling): one-way
  /// small-message latency and per-link streaming bandwidth.
  double netLatencySeconds = 1.5e-6;
  double netBandwidthGBs = 12.5;
};

/// A complete system: partitions + software environment.
struct SystemConfig {
  std::string name;         // "archer2", "isambard-macs", ...
  std::string description;
  std::vector<PartitionConfig> partitions;
  SystemEnvironment environment;

  const PartitionConfig* findPartition(std::string_view partition) const;
};

/// Registry of known systems, addressable as "system" or
/// "system:partition" exactly like ReFrame's --system flag.
class SystemRegistry {
 public:
  void add(SystemConfig config);

  const SystemConfig& get(std::string_view systemName) const;
  bool has(std::string_view systemName) const;
  std::vector<std::string> systemNames() const;

  /// Resolves "system[:partition]"; when the partition is omitted the
  /// system's first partition is returned.  Throws NotFoundError.
  std::pair<const SystemConfig*, const PartitionConfig*> resolve(
      std::string_view target) const;

 private:
  std::vector<SystemConfig> systems_;
};

/// The systems used in the paper plus "local" (this host).
SystemRegistry builtinSystems();

}  // namespace rebench
