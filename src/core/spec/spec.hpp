// Spack-like spec grammar.
//
// An *abstract* Spec is a constraint written by the user, e.g.
//
//   babelstream@4.0%gcc@9.2.0 +omp ^openmpi@4.0.3
//
//   name        package name ("babelstream")
//   @...        version constraint
//   %name@...   compiler constraint
//   +v / ~v     boolean variant on/off
//   key=value   string variant
//   ^spec       constraint on a (transitive) dependency
//
// A *ConcreteSpec* is the concretizer's output: every version pinned, every
// variant valued, every dependency resolved to another ConcreteSpec, plus
// provenance (built from source vs reused system external) and a DAG hash.
// This mirrors the split Spack itself makes and is what lets the framework
// uphold Principle 4: the concrete DAG *is* the record of the build.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "core/util/version.hpp"

namespace rebench {

/// Variant values are booleans (+omp/~omp) or strings (backend=cuda).
using VariantValue = std::variant<bool, std::string>;

std::string variantToString(std::string_view name, const VariantValue& value);

/// Compiler constraint attached with '%'.
struct CompilerSpec {
  std::string name;
  VersionConstraint versions;

  std::string toString() const;
  bool operator==(const CompilerSpec&) const = default;
};

/// An abstract (possibly underconstrained) spec.
class Spec {
 public:
  Spec() = default;
  explicit Spec(std::string name) : name_(std::move(name)) {}

  /// Parses the textual grammar above; throws ParseError on bad input.
  static Spec parse(std::string_view text);

  const std::string& name() const { return name_; }
  const VersionConstraint& versions() const { return versions_; }
  const std::optional<CompilerSpec>& compiler() const { return compiler_; }
  const std::map<std::string, VariantValue>& variants() const {
    return variants_;
  }
  const std::vector<Spec>& dependencies() const { return dependencies_; }

  Spec& setVersions(VersionConstraint c);
  Spec& setCompiler(CompilerSpec c);
  Spec& setVariant(std::string name, VariantValue value);
  Spec& addDependency(Spec dep);

  /// True when every constraint in `other` is implied by this spec
  /// (anonymous `other` name matches anything).
  bool satisfies(const Spec& other) const;

  /// Merges the constraints of `other` into this spec; throws
  /// ConcretizationError when they conflict (e.g. disjoint versions).
  void constrain(const Spec& other);

  /// Canonical round-trippable text form.
  std::string toString() const;

 private:
  std::string name_;
  VersionConstraint versions_;
  std::optional<CompilerSpec> compiler_;
  std::map<std::string, VariantValue> variants_;
  std::vector<Spec> dependencies_;
};

/// Fully-resolved spec; nodes are shared within a concretized DAG.
struct ConcreteSpec {
  std::string name;
  Version version;
  std::string compilerName;
  Version compilerVersion;
  std::map<std::string, VariantValue> variants;
  std::map<std::string, std::shared_ptr<const ConcreteSpec>> dependencies;

  /// True when the package was reused from the system installation rather
  /// than (virtually) built from source.
  bool external = false;
  /// Module/prefix the external came from; informational.
  std::string externalOrigin;

  /// Stable hash over the full DAG (name, version, compiler, variants,
  /// dependency hashes).  Equal hashes == reproducibly identical builds.
  std::string dagHash() const;

  /// Short "name@version%compiler" form.
  std::string shortForm() const;

  /// Full multi-line tree rendering, Spack "spack spec" style.
  std::string tree() const;

  /// Whether this concrete node satisfies an abstract constraint
  /// (ignores the abstract spec's dependency constraints).
  bool satisfiesNode(const Spec& abstract) const;

  /// Depth-first search for a dependency by name (includes self).
  const ConcreteSpec* find(std::string_view depName) const;
};

}  // namespace rebench
