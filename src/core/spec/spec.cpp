#include "core/spec/spec.hpp"

#include <algorithm>
#include <cctype>

#include "core/util/error.hpp"
#include "core/util/hash.hpp"
#include "core/util/strings.hpp"

namespace rebench {

namespace {

bool isNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_' ||
         c == '.';
}

// Reads a package/variant/compiler identifier starting at `i`.
std::string readName(std::string_view text, std::size_t& i) {
  const std::size_t start = i;
  while (i < text.size() && isNameChar(text[i])) ++i;
  if (i == start) {
    throw ParseError("expected identifier at position " +
                     std::to_string(start) + " in '" + std::string(text) +
                     "'");
  }
  return std::string(text.substr(start, i - start));
}

// Reads the version text after '@' (digits, dots, ':', '=', suffix chars).
std::string readVersionText(std::string_view text, std::size_t& i) {
  const std::size_t start = i;
  while (i < text.size() &&
         (std::isalnum(static_cast<unsigned char>(text[i])) ||
          text[i] == '.' || text[i] == ':' || text[i] == '=' ||
          text[i] == '-' || text[i] == '_')) {
    ++i;
  }
  return std::string(text.substr(start, i - start));
}

// Parses the sigil-suffixed parts of one spec token into `spec`, starting
// from position `i` (the name, if any, has already been consumed).
void parseAnchors(std::string_view token, std::size_t& i, Spec& spec) {
  while (i < token.size()) {
    const char c = token[i];
    if (c == '@') {
      ++i;
      spec.setVersions(VersionConstraint::parse(readVersionText(token, i)));
    } else if (c == '%') {
      ++i;
      CompilerSpec comp;
      comp.name = readName(token, i);
      if (i < token.size() && token[i] == '@') {
        ++i;
        comp.versions = VersionConstraint::parse(readVersionText(token, i));
      }
      spec.setCompiler(std::move(comp));
    } else if (c == '+' || c == '~') {
      ++i;
      spec.setVariant(readName(token, i), c == '+');
    } else if (isNameChar(c)) {
      // key=value variant
      std::string key = readName(token, i);
      if (i >= token.size() || token[i] != '=') {
        throw ParseError("expected '=' after variant '" + key + "' in '" +
                         std::string(token) + "'");
      }
      ++i;
      const std::size_t start = i;
      while (i < token.size() && token[i] != ' ') ++i;
      spec.setVariant(std::move(key),
                      std::string(token.substr(start, i - start)));
    } else {
      throw ParseError("unexpected character '" + std::string(1, c) +
                       "' in spec '" + std::string(token) + "'");
    }
  }
}

}  // namespace

std::string variantToString(std::string_view name, const VariantValue& value) {
  if (const bool* b = std::get_if<bool>(&value)) {
    return (*b ? "+" : "~") + std::string(name);
  }
  return std::string(name) + "=" + std::get<std::string>(value);
}

std::string CompilerSpec::toString() const {
  std::string out = "%" + name;
  if (!versions.isAny()) out += "@" + versions.toString();
  return out;
}

Spec Spec::parse(std::string_view text) {
  const std::string_view trimmed = str::trim(text);
  if (trimmed.empty()) throw ParseError("empty spec");

  Spec root;
  std::vector<Spec> deps;
  Spec* current = &root;
  bool first = true;
  for (const std::string& rawToken : str::splitWhitespace(trimmed)) {
    std::string_view token = rawToken;
    std::size_t i = 0;
    if (token.front() == '^') {
      i = 1;
      if (i >= token.size() || !isNameChar(token[i])) {
        throw ParseError("dependency sigil '^' must be followed by a name: '" +
                         rawToken + "'");
      }
      deps.emplace_back();
      current = &deps.back();
      current->name_ = readName(token, i);
    } else if (first && isNameChar(token.front()) &&
               token.find('=') == std::string_view::npos) {
      // The first token names the root package (unless anonymous).
      root.name_ = readName(token, i);
    }
    parseAnchors(token, i, *current);
    first = false;
  }
  for (Spec& dep : deps) root.addDependency(std::move(dep));
  return root;
}

Spec& Spec::setVersions(VersionConstraint c) {
  versions_ = std::move(c);
  return *this;
}

Spec& Spec::setCompiler(CompilerSpec c) {
  compiler_ = std::move(c);
  return *this;
}

Spec& Spec::setVariant(std::string name, VariantValue value) {
  variants_[std::move(name)] = std::move(value);
  return *this;
}

Spec& Spec::addDependency(Spec dep) {
  dependencies_.push_back(std::move(dep));
  return *this;
}

bool Spec::satisfies(const Spec& other) const {
  if (!other.name_.empty() && other.name_ != name_) return false;
  if (!other.versions_.isAny()) {
    // An abstract spec satisfies another only if its constraint is at least
    // as tight; we approximate with non-empty intersection + exactness.
    auto meet = versions_.intersect(other.versions_);
    if (!meet) return false;
    if (versions_.isAny()) return false;
  }
  if (other.compiler_) {
    if (!compiler_ || compiler_->name != other.compiler_->name) return false;
    if (!other.compiler_->versions.isAny()) {
      if (!compiler_->versions.intersect(other.compiler_->versions)) {
        return false;
      }
    }
  }
  for (const auto& [key, value] : other.variants_) {
    auto it = variants_.find(key);
    if (it == variants_.end() || it->second != value) return false;
  }
  return true;
}

void Spec::constrain(const Spec& other) {
  if (!other.name_.empty()) {
    if (name_.empty()) {
      name_ = other.name_;
    } else if (name_ != other.name_) {
      throw ConcretizationError("cannot constrain '" + name_ + "' with '" +
                                other.name_ + "'");
    }
  }
  if (!other.versions_.isAny()) {
    auto meet = versions_.intersect(other.versions_);
    if (!meet) {
      throw ConcretizationError(
          "conflicting version constraints on '" + name_ + "': @" +
          versions_.toString() + " vs @" + other.versions_.toString());
    }
    versions_ = *meet;
  }
  if (other.compiler_) {
    if (!compiler_) {
      compiler_ = other.compiler_;
    } else {
      if (compiler_->name != other.compiler_->name) {
        throw ConcretizationError("conflicting compilers on '" + name_ +
                                  "': %" + compiler_->name + " vs %" +
                                  other.compiler_->name);
      }
      auto meet = compiler_->versions.intersect(other.compiler_->versions);
      if (!meet) {
        throw ConcretizationError("conflicting compiler versions on '" +
                                  name_ + "'");
      }
      compiler_->versions = *meet;
    }
  }
  for (const auto& [key, value] : other.variants_) {
    auto it = variants_.find(key);
    if (it != variants_.end() && it->second != value) {
      throw ConcretizationError("conflicting values for variant '" + key +
                                "' on '" + name_ + "'");
    }
    variants_[key] = value;
  }
  for (const Spec& dep : other.dependencies_) {
    addDependency(dep);
  }
}

std::string Spec::toString() const {
  std::string out = name_;
  if (!versions_.isAny()) out += "@" + versions_.toString();
  if (compiler_) out += compiler_->toString();
  for (const auto& [key, value] : variants_) {
    out += " " + variantToString(key, value);
  }
  for (const Spec& dep : dependencies_) {
    out += " ^" + dep.toString();
  }
  return out;
}

std::string ConcreteSpec::dagHash() const {
  Hasher h;
  h.update(name).update(version.toString());
  h.update(compilerName).update(compilerVersion.toString());
  for (const auto& [key, value] : variants) {
    h.update(variantToString(key, value));
  }
  for (const auto& [depName, dep] : dependencies) {
    h.update(depName).update(dep->dagHash());
  }
  h.update(external ? std::uint64_t{1} : std::uint64_t{0});
  return h.shortHash();
}

std::string ConcreteSpec::shortForm() const {
  std::string out = name + "@" + version.toString();
  if (!compilerName.empty()) {
    out += "%" + compilerName + "@" + compilerVersion.toString();
  }
  for (const auto& [key, value] : variants) {
    if (const bool* b = std::get_if<bool>(&value)) {
      out += (*b ? "+" : "~") + key;
    } else {
      out += " " + key + "=" + std::get<std::string>(value);
    }
  }
  return out;
}

namespace {
void renderTree(const ConcreteSpec& node, int depth, std::string& out) {
  out.append(static_cast<std::size_t>(depth) * 4, ' ');
  if (depth > 0) out += "^";
  out += node.shortForm();
  if (node.external) out += "  [external: " + node.externalOrigin + "]";
  out += "  /" + node.dagHash();
  out += "\n";
  for (const auto& [name, dep] : node.dependencies) {
    renderTree(*dep, depth + 1, out);
  }
}
}  // namespace

std::string ConcreteSpec::tree() const {
  std::string out;
  renderTree(*this, 0, out);
  return out;
}

bool ConcreteSpec::satisfiesNode(const Spec& abstract) const {
  if (!abstract.name().empty() && abstract.name() != name) return false;
  if (!abstract.versions().satisfiedBy(version)) return false;
  if (abstract.compiler()) {
    if (abstract.compiler()->name != compilerName) return false;
    if (!abstract.compiler()->versions.satisfiedBy(compilerVersion)) {
      return false;
    }
  }
  for (const auto& [key, value] : abstract.variants()) {
    auto it = variants.find(key);
    if (it == variants.end() || it->second != value) return false;
  }
  return true;
}

const ConcreteSpec* ConcreteSpec::find(std::string_view depName) const {
  if (name == depName) return this;
  for (const auto& [childName, dep] : dependencies) {
    if (const ConcreteSpec* hit = dep->find(depName)) return hit;
  }
  return nullptr;
}

}  // namespace rebench
