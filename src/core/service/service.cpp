#include "core/service/service.hpp"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <set>
#include <sstream>
#include <thread>

#include "core/fault/journal.hpp"
#include "core/fault/quarantine.hpp"
#include "core/framework/pipeline.hpp"
#include "core/history/history.hpp"
#include "core/obs/json.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/trace.hpp"
#include "core/service/journal.hpp"
#include "core/service/queue.hpp"
#include "core/service/record.hpp"
#include "core/store/object_store.hpp"
#include "core/store/run_cache.hpp"
#include "core/telemetry/bus.hpp"
#include "core/telemetry/http.hpp"
#include "core/telemetry/plane.hpp"
#include "core/util/error.hpp"
#include "core/util/strings.hpp"

namespace rebench::service {

namespace fs = std::filesystem;

namespace {

std::atomic<bool> g_shutdownRequested{false};

/// Everything one daemon run shares across submissions.
struct RunContextState {
  const ServeOptions& options;
  store::ObjectStore& store;
  store::RunCache& runCache;
  ServiceJournal& journal;
  CircuitBreaker& breaker;
  ServeReport& report;
  telemetry::TelemetryPlane& plane;
};

void writeHealthSnapshot(const ServeOptions& options,
                         const ServeReport& report,
                         const CircuitBreaker& breaker);

/// Unanswered submissions right now (scanned live, unlike the report's
/// exit-time queueDepth).
int liveQueueDepth(const std::string& queueDir) {
  int depth = 0;
  for (const Submission& sub : scanQueue(queueDir)) {
    if (!fs::exists(verdictPath(queueDir, sub.id))) ++depth;
  }
  return depth;
}

/// Mirrors the report counters into the telemetry plane and atomically
/// refreshes QUEUE/health.json.  Runs at startup and after every filed
/// verdict, so health.json is live, not just a drain-time artifact.
void refreshHealth(const RunContextState& ctx) {
  ServeReport snapshot = ctx.report;
  snapshot.queueDepth = liveQueueDepth(ctx.options.queueDir);
  writeHealthSnapshot(ctx.options, snapshot, ctx.breaker);
  telemetry::TelemetryPlane& plane = ctx.plane;
  plane.setStat("processed", snapshot.processed);
  plane.setStat("cached", snapshot.cached);
  plane.setStat("executed", snapshot.executed);
  plane.setStat("clean", snapshot.clean);
  plane.setStat("regressed", snapshot.regressed);
  plane.setStat("failed", snapshot.failed);
  plane.setStat("quarantined", snapshot.quarantined);
  plane.setStat("degraded", snapshot.degraded);
  plane.setStat("malformed", snapshot.malformed);
  plane.setStat("watchdog_fires", snapshot.watchdogFires);
  plane.setQueueDepth(snapshot.queueDepth);
  plane.setQuarantinedKeys(ctx.breaker.openKeys());
}

/// The crash-after test hook: mark the report crashed and dump the bus
/// ring, exactly as the real crash path would before the process dies.
void simulateCrash(const RunContextState& ctx) {
  ctx.report.crashed = true;
  telemetry::dumpFlightRecord(ctx.options.queueDir, ctx.plane.bus());
}

VerdictRecord toRecord(const Verdict& verdict) {
  VerdictRecord record;
  record.verdict = verdict.verdict;
  record.key = verdict.key;
  record.manifestHash = verdict.manifestHash;
  record.degraded = verdict.degraded;
  record.detail = verdict.detail;
  return record;
}

/// Tallies a filed verdict into the report.
void countVerdict(ServeReport& report, const Verdict& verdict) {
  if (verdict.verdict == "cached") {
    ++report.cached;
  } else if (verdict.verdict == "ran:clean") {
    ++report.clean;
  } else if (verdict.verdict == "ran:regressed") {
    ++report.regressed;
  } else {
    ++report.failed;
  }
  if (verdict.degraded) ++report.degraded;
}

/// Post-hoc serve.submission span + progress line: emitted after the
/// work so campaign execution never nests under an open serve span
/// (Tracer::absorb requires none).
void noteVerdict(const RunContextState& ctx, const Verdict& verdict) {
  ctx.plane.noteVerdict(verdict.submission, verdict.verdict,
                        verdict.degraded, verdict.detail);
  ctx.plane.clearInflight();
  if (verdict.verdict.rfind("failed:", 0) == 0) {
    // Failure post-mortems get the same flight record a crash would.
    telemetry::dumpFlightRecord(ctx.options.queueDir, ctx.plane.bus());
  }
  if (ctx.options.tracer != nullptr) {
    obs::ScopedSpan span(ctx.options.tracer, "serve.submission");
    span.attr("submission", verdict.submission);
    span.attr("verdict", verdict.verdict);
    if (!verdict.key.empty()) span.attr("key", verdict.key);
    span.attr("degraded", verdict.degraded ? "true" : "false");
  }
  if (ctx.options.metrics != nullptr) {
    ctx.options.metrics->counter("serve.submissions").inc();
  }
  if (ctx.options.log != nullptr) {
    *ctx.options.log << verdict.submission << " " << verdict.verdict
                     << (verdict.degraded ? " (degraded)" : "");
    if (!verdict.detail.empty()) {
      *ctx.options.log << " - " << verdict.detail;
    }
    *ctx.options.log << "\n";
  }
  refreshHealth(ctx);
}

/// Files a verdict that bypasses the journal (malformed submissions,
/// quarantine refusals): re-deriving it is trivially deterministic, so
/// checkpoints would buy nothing.
void fileDirectVerdict(const RunContextState& ctx, Verdict verdict) {
  writeVerdict(ctx.options.queueDir, verdict);
  countVerdict(ctx.report, verdict);
  noteVerdict(ctx, verdict);
}

void processSubmission(const RunContextState& ctx,
                       const SystemRegistry& systems,
                       const PackageRepository& repo,
                       const TestResolver& resolver, const Submission& sub) {
  ++ctx.report.processed;
  Verdict verdict;
  verdict.submission = sub.id;

  if (!sub.valid) {
    ++ctx.report.malformed;
    ctx.plane.noteStage(sub.id, "service", "malformed",
                        {{"error", sub.error}});
    verdict.verdict = "failed:permanent";
    verdict.detail = sub.error;
    fileDirectVerdict(ctx, std::move(verdict));
    return;
  }

  store::CampaignInvocation inv = sub.invocation;
  if (inv.stageTimeout <= 0.0 && ctx.options.stageTimeout > 0.0) {
    inv.stageTimeout = ctx.options.stageTimeout;
  }

  std::vector<RegressionTest> tests;
  try {
    tests = resolver(inv);
    if (tests.empty()) throw Error("no tests match the submission");
    verdict.key = runKeyFor(inv, systems, repo, tests);
    ctx.plane.noteStage(sub.id, "service", "accepted",
                        {{"key", verdict.key}});
  } catch (const Error& e) {
    verdict.verdict = "failed:permanent";
    verdict.detail = e.what();
    fileDirectVerdict(ctx, std::move(verdict));
    return;
  }

  // Crash-loop quarantine: a submission whose claims keep dying without
  // journal progress has been killing the daemon — refuse it.
  const int crashes = ctx.journal.crashedClaims(sub.id);
  for (int i = 0; i < crashes; ++i) ctx.breaker.recordFailure(sub.id);
  if (!ctx.breaker.allows(sub.id)) {
    ++ctx.report.quarantined;
    ctx.plane.noteStage(sub.id, "service", "quarantine",
                        {{"crashes", std::to_string(crashes)}});
    if (ctx.options.tracer != nullptr) {
      ctx.options.tracer->event("fault.quarantine", {{"key", sub.id}});
    }
    if (ctx.options.metrics != nullptr) {
      ctx.options.metrics->counter("serve.quarantined").inc();
    }
    verdict.verdict = "failed:quarantined";
    verdict.detail = "submission crashed the daemon " +
                     std::to_string(crashes) + " time(s); refusing to retry";
    fileDirectVerdict(ctx, std::move(verdict));
    return;
  }

  // Mid-flight resume: the verdict was already decided — re-file its
  // exact bytes without touching anything else.
  if (ctx.journal.state(sub.id) == ServiceJournal::State::kVerdict) {
    ctx.plane.noteStage(sub.id, "journal", "resume-verdict");
    const VerdictRecord* record = ctx.journal.verdictOf(sub.id);
    verdict.verdict = record->verdict;
    verdict.key = record->key;
    verdict.manifestHash = record->manifestHash;
    verdict.degraded = record->degraded;
    verdict.detail = record->detail;
    writeVerdict(ctx.options.queueDir, verdict);
    ctx.journal.recordDone(sub.id);
    countVerdict(ctx.report, verdict);
    noteVerdict(ctx, verdict);
    return;
  }

  ExecutedRecord outcome;
  bool degraded = false;
  std::string degradedDetail;

  if (ctx.journal.state(sub.id) == ServiceJournal::State::kExecuted) {
    // Exactly-once: the campaign ran before the crash; everything the
    // verdict needs was journaled, so nothing re-executes.
    outcome = *ctx.journal.executed(sub.id);
    if (!outcome.key.empty()) verdict.key = outcome.key;
    ctx.plane.noteStage(sub.id, "journal", "resume-executed");
  } else {
    store::RunCache::Lookup lookup = ctx.runCache.lookup(verdict.key);
    ctx.plane.noteRunCache(lookup.hit());
    if (lookup.hit()) {
      ctx.plane.noteStage(sub.id, "runcache", "hit",
                          {{"key", verdict.key}});
      verdict.verdict = "cached";
      verdict.manifestHash = lookup.record->manifestHash;
      verdict.detail = "first ran " + lookup.record->verdict;
      ctx.journal.recordVerdict(sub.id, toRecord(verdict));
      ctx.plane.noteStage(sub.id, "journal", "verdict",
                          {{"verdict", verdict.verdict}});
      if (ctx.options.crashAfter == "verdict") {
        simulateCrash(ctx);
        return;
      }
      writeVerdict(ctx.options.queueDir, verdict);
      ctx.journal.recordDone(sub.id);
      if (ctx.options.metrics != nullptr) {
        ctx.options.metrics->counter("serve.cache_hit").inc();
      }
      countVerdict(ctx.report, verdict);
      noteVerdict(ctx, verdict);
      ctx.breaker.recordSuccess(sub.id);
      return;
    }
    if (lookup.outcome == store::RunCache::Outcome::kCorrupt) {
      // Degraded mode: the memo failed verification.  Re-execute (the
      // store already disposed of the bad record) and say so.
      degraded = true;
      degradedDetail = "run-cache record failed verification; re-executed";
    }
    if (ctx.options.metrics != nullptr) {
      ctx.options.metrics->counter("serve.cache_miss").inc();
    }

    ctx.journal.recordClaim(sub.id, verdict.key);
    ctx.plane.noteStage(sub.id, "journal", "claim", {{"key", verdict.key}});
    if (ctx.options.crashAfter == "claim") {
      simulateCrash(ctx);
      return;
    }

    PipelineOptions pipelineOptions = pipelineOptionsFor(inv);
    pipelineOptions.jobs = std::max(1, ctx.options.jobs);
    pipelineOptions.tracer = ctx.options.tracer;
    pipelineOptions.metrics = ctx.options.metrics;
    pipelineOptions.store = &ctx.store;
    pipelineOptions.cacheBuilds = inv.cache;
    pipelineOptions.bus = &ctx.plane.bus();
    Pipeline pipeline(systems, repo, pipelineOptions);
    PerfLog perflog;
    const std::vector<std::string> targets{inv.system};
    CampaignReport campaignReport;
    ctx.plane.noteStage(sub.id, "exec", "campaign",
                        {{"tests", std::to_string(tests.size())}});
    const CampaignExecution execution = executeCampaign(
        pipeline, tests, targets, inv, &perflog, nullptr, &campaignReport);
    const std::vector<TestRunResult>& results = execution.results;
    ++ctx.report.executed;
    for (const TestRunResult& result : results) {
      if (result.failure.detail.rfind("watchdog:", 0) == 0) {
        ++ctx.report.watchdogFires;
        ctx.plane.noteWatchdogFire();
      }
    }

    const std::vector<history::FomAggregate> foms =
        history::aggregateFoms(results);
    const std::string perflog_bytes = perflogBytes(perflog);
    const ManifestWrite manifest = writeCampaignManifest(
        ctx.store, inv, results, perflog, nullptr, false);
    outcome = summarizeCampaignOutcome(
        results, foms, manifest.hash,
        store::ObjectStore::hashBytes(perflog_bytes));
    outcome.key = verdict.key;
    ctx.journal.recordExecuted(sub.id, outcome);
    ctx.plane.noteStage(sub.id, "journal", "executed",
                        {{"runs", std::to_string(outcome.runs)}});
    if (ctx.options.crashAfter == "executed") {
      simulateCrash(ctx);
      return;
    }
  }

  verdict.manifestHash = outcome.manifestHash;
  bool memoize = false;
  int regressions = 0;
  if (!outcome.failedStage.empty()) {
    const std::string klass =
        outcome.failureClass.empty() ? "permanent" : outcome.failureClass;
    verdict.verdict = "failed:" + klass;
    verdict.detail = outcome.failedStage + ": " + outcome.failureDetail;
  } else if (ctx.options.submissionTimeout > 0.0 &&
             outcome.simSeconds > ctx.options.submissionTimeout) {
    // Whole-submission watchdog: the campaign "finished" in simulated
    // time, but past the point a live operator would have killed it.
    if (ctx.options.tracer != nullptr) {
      obs::ScopedSpan span(ctx.options.tracer, "serve.watchdog");
      span.attr("stage", "submission");
      span.attr("limit_seconds",
                str::fixed(ctx.options.submissionTimeout, 6));
      span.attr("elapsed_seconds", str::fixed(outcome.simSeconds, 6));
    }
    if (ctx.options.metrics != nullptr) {
      ctx.options.metrics->counter("serve.watchdog_fired").inc();
    }
    ++ctx.report.watchdogFires;
    ctx.plane.noteWatchdogFire();
    ctx.plane.noteStage(
        sub.id, "watchdog", "submission",
        {{"elapsed_seconds", str::fixed(outcome.simSeconds, 6)}});
    verdict.verdict = "failed:infrastructure";
    verdict.detail =
        "watchdog: submission exceeded its " +
        str::fixed(ctx.options.submissionTimeout, 1) + "s deadline (ran " +
        str::fixed(outcome.simSeconds, 1) + "s)";
  } else {
    try {
      // Idempotent under crash/resume: a previous incarnation's append
      // of this manifest hash is detected and skipped.
      appendCampaignHistory(ctx.store, outcome, systems,
                            /*skipIfCited=*/true);
      for (const history::GateResult& gate :
           gateCampaign(ctx.store, outcome, history::GateOptions{},
                        ctx.options.tracer, ctx.options.metrics)) {
        if (gate.regression) ++regressions;
      }
      verdict.verdict = regressions > 0 ? "ran:regressed" : "ran:clean";
      if (regressions > 0) {
        verdict.detail =
            std::to_string(regressions) + " series regressed";
      }
      memoize = true;
    } catch (const Error& e) {
      // Degraded mode: history is unreadable, but the campaign executed
      // and its manifest exists — answer anyway, honestly labelled.
      degraded = true;
      degradedDetail = std::string("history unreadable: ") + e.what();
      verdict.verdict = "ran:clean";
    }
  }

  if (degraded) {
    verdict.degraded = true;
    verdict.detail = verdict.detail.empty()
                         ? degradedDetail
                         : verdict.detail + "; " + degradedDetail;
    // A degraded answer was produced without full verification — never
    // memoize it, so the next pass re-derives under restored guarantees.
    memoize = false;
  }

  if (memoize && verdict.verdict.rfind("ran:", 0) == 0) {
    store::RunRecord record;
    record.key = verdict.key;
    record.verdict = verdict.verdict;
    record.manifestHash = outcome.manifestHash;
    record.perflogHash = outcome.perflogHash;
    record.runs = outcome.runs;
    record.regressions = regressions;
    ctx.runCache.insert(record);
  }

  ctx.journal.recordVerdict(sub.id, toRecord(verdict));
  ctx.plane.noteStage(sub.id, "journal", "verdict",
                      {{"verdict", verdict.verdict}});
  if (ctx.options.crashAfter == "verdict") {
    simulateCrash(ctx);
    return;
  }
  writeVerdict(ctx.options.queueDir, verdict);
  ctx.journal.recordDone(sub.id);
  countVerdict(ctx.report, verdict);
  noteVerdict(ctx, verdict);
  ctx.breaker.recordSuccess(sub.id);
}

void writeHealthSnapshot(const ServeOptions& options,
                         const ServeReport& report,
                         const CircuitBreaker& breaker) {
  std::ostringstream out;
  out << "{\"schema\":\"rebench.serve_health/1\""
      << ",\"processed\":" << report.processed
      << ",\"cached\":" << report.cached
      << ",\"executed\":" << report.executed
      << ",\"clean\":" << report.clean
      << ",\"regressed\":" << report.regressed
      << ",\"failed\":" << report.failed
      << ",\"quarantined\":" << report.quarantined
      << ",\"degraded\":" << report.degraded
      << ",\"malformed\":" << report.malformed
      << ",\"watchdog_fires\":" << report.watchdogFires
      << ",\"queue_depth\":" << report.queueDepth
      << ",\"drained\":" << (report.drained ? "true" : "false")
      << ",\"quarantined_keys\":[";
  const std::vector<std::string> open = breaker.openKeys();
  for (std::size_t i = 0; i < open.size(); ++i) {
    if (i > 0) out << ",";
    out << obs::json::quote(open[i]);
  }
  out << "]}\n";
  durableWriteFile(
      (fs::path(options.queueDir) / "health.json").string(), out.str());
}

}  // namespace

Service::Service(const SystemRegistry& systems, const PackageRepository& repo,
                 ServeOptions options, TestResolver resolver)
    : systems_(systems),
      repo_(repo),
      options_(std::move(options)),
      resolver_(std::move(resolver)) {}

void Service::requestShutdown() {
  g_shutdownRequested.store(true, std::memory_order_relaxed);
}

bool Service::shutdownRequested() {
  return g_shutdownRequested.load(std::memory_order_relaxed);
}

ServeReport Service::run() {
  g_shutdownRequested.store(false, std::memory_order_relaxed);
  if (options_.queueDir.empty()) throw Error("serve: queue directory unset");
  if (options_.storeDir.empty()) throw Error("serve: store directory unset");
  fs::create_directories(options_.queueDir);

  store::ObjectStore store(options_.storeDir);
  store.setObservability(options_.tracer, options_.metrics);
  store::RunCache runCache(store);
  runCache.setObservability(options_.tracer, options_.metrics);
  ServiceJournal journal(options_.queueDir);
  CircuitBreaker breaker(options_.quarantineAfter);
  ServeReport report;
  telemetry::TelemetryPlane plane;
  RunContextState ctx{options_,       store, runCache, journal,
                      breaker, report, plane};
  plane.setWatchdogArms((options_.stageTimeout > 0.0 ? 1 : 0) +
                        (options_.submissionTimeout > 0.0 ? 1 : 0));

  // The status endpoint serves plane snapshots from its own thread; the
  // bound address is discoverable via QUEUE/endpoint.addr.
  std::unique_ptr<telemetry::StatusServer> server;
  if (!options_.listen.empty()) {
    server = std::make_unique<telemetry::StatusServer>(
        [&plane](const telemetry::HttpRequest& request) {
          return plane.handle(request);
        });
    server->start(options_.listen);
    report.endpointAddress = server->boundAddress();
    durableWriteFile(
        (fs::path(options_.queueDir) / "endpoint.addr").string(),
        server->boundAddress() + "\n");
    plane.bus().publish("service", "", "listen",
                        {{"address", server->boundAddress()}});
  }
  refreshHealth(ctx);

  std::set<std::string> processedThisRun;
  bool stop = false;
  while (!stop) {
    bool progressed = false;
    for (const Submission& sub : scanQueue(options_.queueDir)) {
      if (processedThisRun.count(sub.id) > 0) continue;
      if (drainRequested(options_.queueDir) || shutdownRequested()) {
        report.drained = true;
        stop = true;
        break;
      }
      processSubmission(ctx, systems_, repo_, resolver_, sub);
      processedThisRun.insert(sub.id);
      progressed = true;
      if (report.crashed) {
        // Simulated kill -9: no verdict file, no health snapshot, the
        // endpoint.addr file left behind — exactly the state a real
        // crash leaves, except the flight record the crash path dumped.
        if (server != nullptr) {
          report.endpointRequests = server->requestCount();
        }
        return report;
      }
    }
    if (stop) break;
    if (options_.once) break;
    if (drainRequested(options_.queueDir) || shutdownRequested()) {
      report.drained = true;
      break;
    }
    if (!progressed) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  for (const Submission& sub : scanQueue(options_.queueDir)) {
    if (!fs::exists(verdictPath(options_.queueDir, sub.id))) {
      ++report.queueDepth;
    }
  }
  if (options_.metrics != nullptr) {
    options_.metrics->gauge("serve.queue_depth")
        .set(static_cast<double>(report.queueDepth));
  }
  if (server != nullptr) {
    report.endpointRequests = server->requestCount();
    server->stop();
    // Endpoint traffic is wall-clock, so its trace lives next to the
    // queue, never inside byte-deterministic campaign artifacts.
    server->tracer().writeFile(
        (fs::path(options_.queueDir) / "endpoint-trace.jsonl").string());
    std::error_code ec;
    fs::remove(fs::path(options_.queueDir) / "endpoint.addr", ec);
  }
  writeHealthSnapshot(options_, report, breaker);
  return report;
}

}  // namespace rebench::service
