// Filesystem submission queue (rebench::service).
//
// The serve daemon has no socket: work arrives as files in a spool
// directory, the oldest portable IPC there is.  `rebench submit` (or a
// test, or a cron job) renders a campaign invocation into a JSON
// submission body, names the file by the body's content hash and drops
// it in with tmp + atomic rename — so a submission is always observed
// whole, duplicate submissions collapse onto one file, and a reader can
// detect tampering by re-hashing the bytes.  The daemon answers each
// submission with a verdict file in QUEUE/verdicts/, written durably so
// a crash after the verdict cannot lose it.
//
//   QUEUE/sub-<hash>.json        {"schema":"rebench.submission/1",
//                                 "invocation":{...}}
//   QUEUE/verdicts/<hash>.json   {"schema":"rebench.verdict/1", ...}
//   QUEUE/drain                  sentinel: finish current, then stop
//   QUEUE/service-journal.jsonl  write-ahead state (service/journal)
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/store/manifest.hpp"

namespace rebench::service {

inline constexpr std::string_view kSubmissionSchema = "rebench.submission/1";
inline constexpr std::string_view kVerdictSchema = "rebench.verdict/1";

/// One queued submission as scanned from the spool directory.
struct Submission {
  std::string id;    // content hash, also the filename stem suffix
  std::string path;  // full path of the submission file
  store::CampaignInvocation invocation;
  /// False when the file was tampered with (hash mismatch) or malformed;
  /// `error` then says why.  Invalid submissions still get verdicts —
  /// silently dropping work is how queues rot.
  bool valid = true;
  std::string error;
};

/// Renders `inv` into a submission file under `queueDir` (created when
/// absent) via tmp + atomic rename.  Idempotent: the same invocation
/// always lands on the same file.  Returns the submission (id + path).
Submission enqueueSubmission(const std::string& queueDir,
                             const store::CampaignInvocation& inv);

/// Scans `queueDir` for sub-*.json files, sorted by filename so every
/// scan order — and therefore every verdict order — is deterministic.
/// Hash-verifies and parses each file; failures yield valid=false
/// entries rather than being skipped.
std::vector<Submission> scanQueue(const std::string& queueDir);

/// The daemon's answer to one submission.
struct Verdict {
  std::string submission;  // submission id
  /// "cached" | "ran:clean" | "ran:regressed" | "failed:<taxonomy>"
  std::string verdict;
  std::string key;           // run-memoization key ("" when never derived)
  std::string manifestHash;  // campaign manifest hash ("" when never ran)
  bool degraded = false;     // served with reduced guarantees (see DESIGN §14)
  std::string detail;

  /// One-line JSON, deterministic key order.  Deliberately excludes
  /// anything scheduling- or attempt-dependent so a crash-resumed daemon
  /// reproduces verdict bytes exactly.
  std::string serialize() const;
  static Verdict parse(const std::string& text);
};

/// QUEUE/verdicts/<id>.json
std::string verdictPath(const std::string& queueDir, const std::string& id);

/// Durably writes (tmp + fsync + rename) the verdict file.
void writeVerdict(const std::string& queueDir, const Verdict& verdict);

/// Drain sentinel: when QUEUE/drain exists the daemon finishes the
/// submission in flight, snapshots health and exits cleanly.
bool drainRequested(const std::string& queueDir);
void requestDrain(const std::string& queueDir);
void clearDrainRequest(const std::string& queueDir);

}  // namespace rebench::service
