#include "core/service/journal.hpp"

#include <charconv>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/fault/journal.hpp"
#include "core/obs/json.hpp"
#include "core/util/error.hpp"
#include "core/util/strings.hpp"

namespace rebench::service {

namespace {

using obs::json::quote;

std::string renderExecuted(const std::string& submission,
                           const ExecutedRecord& record) {
  std::ostringstream out;
  out << "{\"kind\":\"executed\",\"submission\":" << quote(submission)
      << ",\"key\":" << quote(record.key)
      << ",\"manifest\":" << quote(record.manifestHash)
      << ",\"perflog\":" << quote(record.perflogHash)
      << ",\"runs\":" << record.runs
      << ",\"sim_seconds\":" << formatExact(record.simSeconds)
      << ",\"aggregates\":[";
  for (std::size_t i = 0; i < record.aggregates.size(); ++i) {
    const AggregateRecord& agg = record.aggregates[i];
    if (i > 0) out << ",";
    out << "{\"test\":" << quote(agg.test)
        << ",\"target\":" << quote(agg.target)
        << ",\"fom\":" << quote(agg.fom)
        << ",\"spec\":" << quote(agg.specHash)
        << ",\"mean\":" << formatExact(agg.mean)
        << ",\"min\":" << formatExact(agg.min)
        << ",\"max\":" << formatExact(agg.max)
        << ",\"ci\":" << formatExact(agg.ci)
        << ",\"ess\":" << formatExact(agg.ess)
        << ",\"repeats\":" << agg.repeats << "}";
  }
  out << "],\"failedStage\":" << quote(record.failedStage)
      << ",\"failureClass\":" << quote(record.failureClass)
      << ",\"failureDetail\":" << quote(record.failureDetail) << "}";
  return out.str();
}

ExecutedRecord parseExecuted(const obs::json::Value& value) {
  ExecutedRecord record;
  record.key = value.stringOr("key", "");
  record.manifestHash = value.stringOr("manifest", "");
  record.perflogHash = value.stringOr("perflog", "");
  record.runs = static_cast<int>(value.numberOr("runs", 0));
  record.simSeconds = value.numberOr("sim_seconds", 0.0);
  if (value.contains("aggregates")) {
    for (const obs::json::Value& item : value.at("aggregates").array) {
      AggregateRecord agg;
      agg.test = item.stringOr("test", "");
      agg.target = item.stringOr("target", "");
      agg.fom = item.stringOr("fom", "");
      agg.specHash = item.stringOr("spec", "");
      agg.mean = item.numberOr("mean", 0.0);
      agg.min = item.numberOr("min", 0.0);
      agg.max = item.numberOr("max", 0.0);
      agg.ci = item.numberOr("ci", 0.0);
      agg.ess = item.numberOr("ess", 0.0);
      agg.repeats = static_cast<int>(item.numberOr("repeats", 0));
      record.aggregates.push_back(std::move(agg));
    }
  }
  record.failedStage = value.stringOr("failedStage", "");
  record.failureClass = value.stringOr("failureClass", "");
  record.failureDetail = value.stringOr("failureDetail", "");
  return record;
}

}  // namespace

std::string formatExact(double value) {
  char buffer[32];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec != std::errc()) throw Error("cannot format double");
  return std::string(buffer, ptr);
}

std::string ServiceJournal::pathFor(const std::string& queueDir) {
  return (std::filesystem::path(queueDir) / "service-journal.jsonl")
      .string();
}

ServiceJournal::ServiceJournal(const std::string& queueDir)
    : path_(pathFor(queueDir)) {
  std::filesystem::create_directories(queueDir);
  if (!std::filesystem::exists(path_)) {
    durableAppendLine(path_, "{\"kind\":\"meta\",\"schema\":" +
                                 quote(kServiceJournalSchema) + "}");
    return;
  }
  std::ifstream in(path_);
  if (!in) throw Error("cannot read service journal '" + path_ + "'");
  std::string line;
  std::vector<std::string> intact;
  while (std::getline(in, line)) {
    if (str::trim(line).empty()) continue;
    obs::json::Value record;
    try {
      record = obs::json::parse(line);
    } catch (const ParseError&) {
      // The torn tail a crash mid-append leaves behind; the checkpoint
      // it belonged to never durably happened.
      ++corruptLines_;
      continue;
    }
    intact.push_back(line);
    if (!record.isObject()) continue;
    const std::string kind = record.stringOr("kind", "");
    const std::string id = record.stringOr("submission", "");
    if (id.empty()) continue;
    Entry& entry = entries_[id];
    if (kind == "claim") {
      // A claim while one is already pending means a previous daemon
      // died between claim and executed — a crash loop in the making.
      if (entry.pendingClaim) ++entry.crashedClaims;
      entry.pendingClaim = true;
      entry.state = State::kClaimed;
    } else if (kind == "executed") {
      entry.pendingClaim = false;
      entry.state = State::kExecuted;
      entry.executed = parseExecuted(record);
    } else if (kind == "verdict") {
      entry.pendingClaim = false;
      entry.state = State::kVerdict;
      VerdictRecord verdict;
      verdict.verdict = record.stringOr("verdict", "");
      verdict.key = record.stringOr("key", "");
      verdict.manifestHash = record.stringOr("manifest", "");
      verdict.degraded =
          record.contains("degraded") && record.at("degraded").boolean;
      verdict.detail = record.stringOr("detail", "");
      entry.verdict = verdict;
    } else if (kind == "done") {
      entry.pendingClaim = false;
      entry.state = State::kDone;
    }
  }
  in.close();
  // A claim still pending at end-of-load is the same crash signature.
  for (auto& [id, entry] : entries_) {
    if (entry.pendingClaim) {
      ++entry.crashedClaims;
      entry.pendingClaim = false;
    }
  }
  if (corruptLines_ > 0) {
    std::string rewritten;
    for (const std::string& keep : intact) {
      rewritten += keep;
      rewritten += '\n';
    }
    durableWriteFile(path_, rewritten);
  }
}

ServiceJournal::State ServiceJournal::state(
    const std::string& submission) const {
  auto it = entries_.find(submission);
  return it == entries_.end() ? State::kNone : it->second.state;
}

const ExecutedRecord* ServiceJournal::executed(
    const std::string& submission) const {
  auto it = entries_.find(submission);
  if (it == entries_.end() || !it->second.executed) return nullptr;
  return &*it->second.executed;
}

const VerdictRecord* ServiceJournal::verdictOf(
    const std::string& submission) const {
  auto it = entries_.find(submission);
  if (it == entries_.end() || !it->second.verdict) return nullptr;
  return &*it->second.verdict;
}

int ServiceJournal::crashedClaims(const std::string& submission) const {
  auto it = entries_.find(submission);
  return it == entries_.end() ? 0 : it->second.crashedClaims;
}

void ServiceJournal::recordClaim(const std::string& submission,
                                 const std::string& key) {
  durableAppendLine(path_, "{\"kind\":\"claim\",\"submission\":" +
                               quote(submission) + ",\"key\":" + quote(key) +
                               "}");
  Entry& entry = entries_[submission];
  entry.state = State::kClaimed;
}

void ServiceJournal::recordExecuted(const std::string& submission,
                                    const ExecutedRecord& record) {
  durableAppendLine(path_, renderExecuted(submission, record));
  Entry& entry = entries_[submission];
  entry.state = State::kExecuted;
  entry.executed = record;
}

void ServiceJournal::recordVerdict(const std::string& submission,
                                   const VerdictRecord& record) {
  durableAppendLine(
      path_,
      "{\"kind\":\"verdict\",\"submission\":" + quote(submission) +
          ",\"verdict\":" + quote(record.verdict) +
          ",\"key\":" + quote(record.key) +
          ",\"manifest\":" + quote(record.manifestHash) +
          ",\"degraded\":" + (record.degraded ? "true" : "false") +
          ",\"detail\":" + quote(record.detail) + "}");
  Entry& entry = entries_[submission];
  entry.state = State::kVerdict;
  entry.verdict = record;
}

void ServiceJournal::recordDone(const std::string& submission) {
  durableAppendLine(path_, "{\"kind\":\"done\",\"submission\":" +
                               quote(submission) + "}");
  entries_[submission].state = State::kDone;
}

}  // namespace rebench::service
