#include "core/service/queue.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/fault/journal.hpp"
#include "core/obs/json.hpp"
#include "core/store/object_store.hpp"
#include "core/util/error.hpp"

namespace rebench::service {

namespace fs = std::filesystem;

namespace {

std::string submissionBody(const store::CampaignInvocation& inv) {
  return "{\"schema\":" + obs::json::quote(kSubmissionSchema) +
         ",\"invocation\":" + store::renderInvocation(inv) + "}\n";
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot read '" + path + "'");
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

Submission enqueueSubmission(const std::string& queueDir,
                             const store::CampaignInvocation& inv) {
  fs::create_directories(queueDir);
  const std::string body = submissionBody(inv);
  Submission sub;
  sub.id = store::ObjectStore::hashBytes(body);
  sub.path = (fs::path(queueDir) / ("sub-" + sub.id + ".json")).string();
  sub.invocation = inv;
  // Content-addressed name: re-submitting the same invocation rewrites
  // the same bytes to the same file — harmless, still atomic.
  durableWriteFile(sub.path, body);
  return sub;
}

std::vector<Submission> scanQueue(const std::string& queueDir) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(queueDir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.starts_with("sub-") && name.ends_with(".json")) {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<Submission> result;
  for (const std::string& path : paths) {
    Submission sub;
    sub.path = path;
    const std::string stem = fs::path(path).stem().string();
    sub.id = stem.substr(4);  // drop "sub-"
    try {
      const std::string body = readFile(path);
      if (store::ObjectStore::hashBytes(body) != sub.id) {
        sub.valid = false;
        sub.error = "content hash does not match filename (tampered?)";
      } else {
        const obs::json::Value value = obs::json::parse(body);
        const std::string schema = value.stringOr("schema", "");
        if (schema != kSubmissionSchema) {
          sub.valid = false;
          sub.error = "unsupported submission schema '" + schema + "'";
        } else {
          sub.invocation = store::parseInvocation(value.at("invocation"));
        }
      }
    } catch (const Error& e) {
      sub.valid = false;
      sub.error = e.what();
    }
    result.push_back(std::move(sub));
  }
  return result;
}

std::string Verdict::serialize() const {
  using obs::json::quote;
  std::ostringstream out;
  out << "{\"schema\":" << quote(kVerdictSchema)
      << ",\"submission\":" << quote(submission)
      << ",\"verdict\":" << quote(verdict) << ",\"key\":" << quote(key)
      << ",\"manifest\":" << quote(manifestHash)
      << ",\"degraded\":" << (degraded ? "true" : "false")
      << ",\"detail\":" << quote(detail) << "}\n";
  return out.str();
}

Verdict Verdict::parse(const std::string& text) {
  const obs::json::Value value = obs::json::parse(text);
  if (!value.isObject()) throw Error("verdict is not an object");
  const std::string schema = value.stringOr("schema", "");
  if (schema != kVerdictSchema) {
    throw Error("unsupported verdict schema '" + schema + "'");
  }
  Verdict verdict;
  verdict.submission = value.stringOr("submission", "");
  verdict.verdict = value.stringOr("verdict", "");
  verdict.key = value.stringOr("key", "");
  verdict.manifestHash = value.stringOr("manifest", "");
  verdict.degraded =
      value.contains("degraded") && value.at("degraded").boolean;
  verdict.detail = value.stringOr("detail", "");
  return verdict;
}

std::string verdictPath(const std::string& queueDir, const std::string& id) {
  return (fs::path(queueDir) / "verdicts" / (id + ".json")).string();
}

void writeVerdict(const std::string& queueDir, const Verdict& verdict) {
  fs::create_directories(fs::path(queueDir) / "verdicts");
  durableWriteFile(verdictPath(queueDir, verdict.submission),
                   verdict.serialize());
}

bool drainRequested(const std::string& queueDir) {
  return fs::exists(fs::path(queueDir) / "drain");
}

void requestDrain(const std::string& queueDir) {
  fs::create_directories(queueDir);
  durableWriteFile((fs::path(queueDir) / "drain").string(), "drain\n");
}

void clearDrainRequest(const std::string& queueDir) {
  std::error_code ec;
  fs::remove(fs::path(queueDir) / "drain", ec);
}

}  // namespace rebench::service
