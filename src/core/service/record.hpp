// Campaign execution as a library (rebench::service).
//
// Everything the CLI's run/suite tail used to do inline — expand an
// invocation into pipeline options, write the campaign manifest, append
// history, gate the newest records — factored out so the serve daemon
// and the CLI drive the exact same code paths and therefore produce the
// exact same bytes.  Also home of `runKeyFor`, the run-memoization key:
// a campaign whose key is unchanged would reproduce its recorded
// artifacts byte-for-byte, so serve answers it from the RunCache instead
// of re-executing.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/framework/pipeline.hpp"
#include "core/history/history.hpp"
#include "core/infer/controller.hpp"
#include "core/service/journal.hpp"
#include "core/store/manifest.hpp"

namespace rebench::store {
class ObjectStore;
}  // namespace rebench::store

namespace rebench::service {

/// Expands an invocation into pipeline options; unset sentinel fields
/// (-1 / "") keep the pipeline defaults, so a replayed manifest or a
/// queued submission resolves to exactly the options the original flags
/// did.
PipelineOptions pipelineOptionsFor(const store::CampaignInvocation& inv);

/// The invocation's adaptive run-length settings (--ci-halfwidth /
/// --min-repeats / --max-repeats); inactive (ciHalfwidth 0) when the
/// invocation asked for fixed repeats.
infer::InferenceOptions inferenceOptionsFor(const store::CampaignInvocation& inv);

/// One campaign execution, fixed-repeat or adaptive.
struct CampaignExecution {
  std::vector<TestRunResult> results;
  infer::ControllerReport inference;  // empty unless adaptive
  bool adaptive = false;
};

/// Dispatches the campaign: adaptive invocations run the rebench::infer
/// controller (sample-until-converged, summary perflog rows,
/// infer.controller spans), fixed-repeat ones run Pipeline::runAll.
/// The CLI suite/replay tails and the serve daemon all execute through
/// here so their bytes agree.
CampaignExecution executeCampaign(Pipeline& pipeline,
                                  std::span<const RegressionTest> tests,
                                  std::span<const std::string> targets,
                                  const store::CampaignInvocation& inv,
                                  PerfLog* perflog, RunJournal* journal,
                                  CampaignReport* report);

/// Serializes perflog lines to the byte stream a manifest hashes.
std::string perflogBytes(const PerfLog& perflog);

/// Provenance record for one executed pipeline run; the build plan is
/// re-derived from the concretized spec so the manifest lists the exact
/// reproduction commands without the pipeline threading them through.
store::RunManifest runManifestFor(const TestRunResult& result, int repeat);

/// Outcome of writing a campaign manifest into a store.
struct ManifestWrite {
  std::string hash;  // manifest contentHash
  std::string path;  // DIR/manifests/campaign-<hash>.json
};

/// Stores campaign artifacts and writes the manifest (plus the
/// latest.json convenience copy).  `traceBytes` may be null; when given
/// it is recorded only if `pinTrace` (cache-cold or caching-off
/// campaigns — warm store.* spans are not replayable).
ManifestWrite writeCampaignManifest(store::ObjectStore& store,
                                    const store::CampaignInvocation& inv,
                                    std::span<const TestRunResult> results,
                                    const PerfLog& perflog,
                                    const std::string* traceBytes,
                                    bool pinTrace);

/// Reduces finished campaign results to the journal's executed record:
/// full-precision aggregates, total simulated seconds and the first
/// failure (if any).
ExecutedRecord summarizeCampaignOutcome(std::span<const TestRunResult> results,
                                        std::span<const history::FomAggregate> foms,
                                        const std::string& manifestHash,
                                        const std::string& perflogHash);

struct HistoryAppendResult {
  std::string segment;  // "" when nothing was appended
  int records = 0;
  bool appended = false;
};

/// Appends one history record per aggregate in `outcome`, citing its
/// manifest hash.  With `skipIfCited` (the serve daemon's exactly-once
/// guard) the append is idempotent: when the history already cites this
/// manifest hash nothing is appended.  The CLI passes false — repeated
/// identical campaigns are distinct observations there.  Throws
/// rebench::Error when the history head is unreadable (degraded-mode
/// trigger for serve).
HistoryAppendResult appendCampaignHistory(store::ObjectStore& store,
                                          const ExecutedRecord& outcome,
                                          const SystemRegistry& systems,
                                          bool skipIfCited);

/// Runs the statistically-grounded regression gate over the series this
/// campaign touched: reads the full history and checks each (test,
/// target, fom) series the outcome's aggregates name.  Returns the
/// per-series results (only for touched series).  With a tracer
/// attached, one `infer.changepoint` span per gated series carries the
/// decision evidence (test/target/fom/repeats/ess/ci_halfwidth — the
/// trace_lint contract — plus regression/changepoint flags).  Throws
/// rebench::Error when the history is unreadable.
std::vector<history::GateResult> gateCampaign(
    store::ObjectStore& store, const ExecutedRecord& outcome,
    const history::GateOptions& options, obs::Tracer* tracer = nullptr,
    obs::MetricsRegistry* metrics = nullptr);

/// The run-memoization key: hash(invocation bytes + environment
/// fingerprint + system/partition configuration + concretized spec DAG
/// hashes).  Everything that could change recorded bytes is in here;
/// anything not in here (e.g. --jobs) is byte-invariant by construction.
std::string runKeyFor(const store::CampaignInvocation& inv,
                      const SystemRegistry& systems,
                      const PackageRepository& repo,
                      std::span<const RegressionTest> tests);

}  // namespace rebench::service
