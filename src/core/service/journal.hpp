// Write-ahead service journal (rebench::service).
//
// The daemon's crash-safety spine.  Before any externally visible step
// of processing a submission, the daemon durably appends a checkpoint:
//
//   claim     we are about to execute submission S under run key K
//   executed  the campaign ran; here is everything the verdict and the
//             history append need (manifest/perflog hashes, per-FOM
//             aggregates at full double precision, simulated seconds)
//   verdict   the verdict was decided (and is about to be filed)
//   done      the verdict file exists; S is finished
//
// A daemon killed at any point resumes by replaying the journal: a
// claim without an executed record re-runs the campaign (it never
// observably happened); an executed record without a verdict re-derives
// the verdict from the journal *without* re-executing — exactly-once
// execution — and an un-done verdict is simply re-filed.  Repeated
// claims without progress are how crash loops look from disk; the
// daemon feeds `crashedClaims` to its circuit breaker to quarantine
// submissions that keep killing it.
//
// Doubles are serialized with shortest-round-trip formatting
// (std::to_chars) so a resumed history append reproduces segment bytes
// exactly.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rebench::service {

inline constexpr std::string_view kServiceJournalSchema =
    "rebench.service_journal/1";

/// One per-(test, target, fom) aggregate captured at full precision.
struct AggregateRecord {
  std::string test;
  std::string target;
  std::string fom;
  std::string specHash;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double ci = 0.0;   // 95% CI half-width of the mean (rebench::infer)
  double ess = 0.0;  // effective sample size
  int repeats = 0;
};

/// Everything an `executed` checkpoint preserves about a campaign.
struct ExecutedRecord {
  std::string key;
  std::string manifestHash;
  std::string perflogHash;
  int runs = 0;
  double simSeconds = 0.0;
  std::vector<AggregateRecord> aggregates;
  /// First failure, when the campaign did not fully pass ("" = passed).
  std::string failedStage;
  std::string failureClass;
  std::string failureDetail;
};

/// A `verdict` checkpoint.
struct VerdictRecord {
  std::string verdict;
  std::string key;
  std::string manifestHash;
  bool degraded = false;
  std::string detail;
};

/// Shortest-round-trip double formatting (std::to_chars): parsing the
/// output recovers the exact bits, so journal replay is lossless.
std::string formatExact(double value);

class ServiceJournal {
 public:
  enum class State { kNone, kClaimed, kExecuted, kVerdict, kDone };

  /// Opens (creating when absent) QUEUE/service-journal.jsonl and
  /// replays it.  A torn final line — the crash signature — is counted
  /// and truncated away, like the run journal.
  explicit ServiceJournal(const std::string& queueDir);

  static std::string pathFor(const std::string& queueDir);

  State state(const std::string& submission) const;
  /// The executed checkpoint for `submission`, when one was journaled.
  const ExecutedRecord* executed(const std::string& submission) const;
  /// The verdict checkpoint for `submission`, when one was journaled.
  const VerdictRecord* verdictOf(const std::string& submission) const;
  /// Claims that were never followed by progress before a restart —
  /// the crash-loop counter feeding the circuit breaker.
  int crashedClaims(const std::string& submission) const;

  void recordClaim(const std::string& submission, const std::string& key);
  void recordExecuted(const std::string& submission,
                      const ExecutedRecord& record);
  void recordVerdict(const std::string& submission,
                     const VerdictRecord& record);
  void recordDone(const std::string& submission);

  std::size_t corruptLines() const { return corruptLines_; }
  const std::string& path() const { return path_; }

 private:
  struct Entry {
    State state = State::kNone;
    std::optional<ExecutedRecord> executed;
    std::optional<VerdictRecord> verdict;
    int crashedClaims = 0;
    bool pendingClaim = false;  // replay-time: claim without progress
  };

  std::string path_;
  std::map<std::string, Entry> entries_;
  std::size_t corruptLines_ = 0;
};

}  // namespace rebench::service
