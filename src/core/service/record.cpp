#include "core/service/record.hpp"

#include <algorithm>
#include <filesystem>

#include "core/concretizer/concretizer.hpp"
#include "core/fault/fault.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/trace.hpp"
#include "core/store/build_cache.hpp"
#include "core/store/object_store.hpp"
#include "core/telemetry/probe.hpp"
#include "core/util/hash.hpp"
#include "core/util/strings.hpp"

namespace rebench::service {

PipelineOptions pipelineOptionsFor(const store::CampaignInvocation& inv) {
  PipelineOptions options;
  options.account = inv.account;
  if (inv.repeats > 0) options.numRepeats = inv.repeats;
  if (inv.retries >= 0) options.retry.maxRetries = inv.retries;
  if (inv.backoffBase >= 0.0) options.retry.backoffBase = inv.backoffBase;
  if (inv.backoffMultiplier >= 0.0) {
    options.retry.backoffMultiplier = inv.backoffMultiplier;
  }
  if (inv.backoffMax >= 0.0) options.retry.backoffMax = inv.backoffMax;
  if (!inv.faults.empty()) {
    options.faults = loadFaultConfig(inv.faults);
    // One seed governs both the injected faults and the backoff jitter.
    options.retry.seed = options.faults.seed;
  }
  if (inv.quarantineAfter >= 0) {
    options.breaker.pairThreshold = inv.quarantineAfter;
  }
  if (inv.stageTimeout > 0.0) {
    options.watchdog.stageTimeoutSeconds = inv.stageTimeout;
  }
  if (inv.lanes > 0) options.profileLanes = inv.lanes;
  // Unknown probe names were rejected at the CLI/submission boundary;
  // anything else unparseable degrades to off rather than failing here.
  telemetry::probeModeFromName(inv.probe, &options.probe);
  return options;
}

infer::InferenceOptions inferenceOptionsFor(
    const store::CampaignInvocation& inv) {
  infer::InferenceOptions options;
  options.ciHalfwidth = inv.ciHalfwidth > 0.0 ? inv.ciHalfwidth : 0.0;
  if (inv.minRepeats > 0) options.minRepeats = inv.minRepeats;
  if (inv.maxRepeats > 0) options.maxRepeats = inv.maxRepeats;
  return options;
}

CampaignExecution executeCampaign(Pipeline& pipeline,
                                  std::span<const RegressionTest> tests,
                                  std::span<const std::string> targets,
                                  const store::CampaignInvocation& inv,
                                  PerfLog* perflog, RunJournal* journal,
                                  CampaignReport* report) {
  CampaignExecution execution;
  const infer::InferenceOptions inference = inferenceOptionsFor(inv);
  if (inference.active()) {
    execution.adaptive = true;
    execution.results =
        infer::runAdaptive(pipeline, tests, targets, inference, perflog,
                           journal, report, &execution.inference);
  } else {
    execution.results =
        pipeline.runAll(tests, targets, perflog, journal, report);
  }
  return execution;
}

std::string perflogBytes(const PerfLog& perflog) {
  std::string out;
  for (const std::string& line : perflog.lines()) {
    out += line;
    out += "\n";
  }
  return out;
}

store::RunManifest runManifestFor(const TestRunResult& result, int repeat) {
  store::RunManifest run;
  run.test = result.testName;
  run.target = result.system + ":" + result.partition;
  run.repeat = repeat;
  run.environ = result.environ;
  if (result.concreteSpec != nullptr) {
    run.spec = result.concreteSpec->shortForm();
    run.specHash = result.concreteSpec->dagHash();
    const BuildPlan plan = makeBuildPlan(*result.concreteSpec);
    run.planHash = plan.planHash();
    for (const BuildStep& step : plan.steps) {
      run.buildSteps.push_back(step.command);
    }
  }
  run.binaryId = result.build.binaryId;
  run.launchCommand = result.launchCommand;
  run.jobId = std::to_string(result.jobId);
  run.outcome = result.quarantined ? "quarantined"
                : result.passed   ? "pass"
                                  : "fail";
  run.failureStage = result.failure.stage;
  run.attempts = result.attempts;
  // Resource-accounting facets from an active --probe; absent keys keep
  // unprobed manifest bytes unchanged.
  for (const auto& [stage, sample] : result.stageResources) {
    run.facets["rusage_" + stage + "_user_ms"] = str::fixed(sample.userMs, 3);
    run.facets["rusage_" + stage + "_sys_ms"] = str::fixed(sample.sysMs, 3);
    run.facets["rusage_" + stage + "_maxrss_kb"] =
        std::to_string(sample.maxRssKb);
    run.facets["rusage_" + stage + "_minflt"] =
        std::to_string(sample.minorFaults);
    run.facets["rusage_" + stage + "_io_blocks"] =
        std::to_string(sample.ioBlocks);
  }
  return run;
}

ManifestWrite writeCampaignManifest(store::ObjectStore& store,
                                    const store::CampaignInvocation& inv,
                                    std::span<const TestRunResult> results,
                                    const PerfLog& perflog,
                                    const std::string* traceBytes,
                                    bool pinTrace) {
  store::CampaignManifest manifest;
  manifest.invocation = inv;
  std::map<std::string, int> repeatsSeen;
  for (const TestRunResult& result : results) {
    const std::string pair =
        result.testName + "@" + result.system + ":" + result.partition;
    manifest.runs.push_back(runManifestFor(result, repeatsSeen[pair]++));
  }
  for (const history::FomAggregate& fom : history::aggregateFoms(results)) {
    store::FomManifest record;
    record.test = fom.test;
    record.target = fom.target;
    record.fom = fom.fom;
    record.mean = fom.mean;
    record.ciHalfwidth = fom.ciHalfwidth;
    record.ess = fom.ess;
    record.autocorr = fom.autocorr;
    record.repeats = fom.repeats;
    manifest.foms.push_back(std::move(record));
  }
  auto addArtifact = [&](const std::string& name, const std::string& bytes) {
    store::ArtifactRecord record;
    record.name = name;
    record.hash = store.put(bytes);
    record.bytes = bytes.size();
    manifest.artifacts.push_back(std::move(record));
  };
  addArtifact("perflog", perflogBytes(perflog));
  if (traceBytes != nullptr && pinTrace) {
    addArtifact("trace", *traceBytes);
  }
  const std::filesystem::path dir =
      std::filesystem::path(store.dir()) / "manifests";
  std::filesystem::create_directories(dir);
  ManifestWrite write;
  write.hash = manifest.contentHash();
  write.path = (dir / ("campaign-" + write.hash + ".json")).string();
  manifest.write(write.path);
  manifest.write((dir / "latest.json").string());
  return write;
}

ExecutedRecord summarizeCampaignOutcome(
    std::span<const TestRunResult> results,
    std::span<const history::FomAggregate> foms,
    const std::string& manifestHash, const std::string& perflogHash) {
  ExecutedRecord outcome;
  outcome.manifestHash = manifestHash;
  outcome.perflogHash = perflogHash;
  outcome.runs = static_cast<int>(results.size());
  for (const TestRunResult& result : results) {
    outcome.simSeconds += result.simulatedPipelineSeconds;
    if (!result.passed && outcome.failedStage.empty()) {
      outcome.failedStage = result.failure.stage.empty()
                                ? "unknown"
                                : result.failure.stage;
      outcome.failureClass =
          std::string(failureClassName(result.failure.klass));
      outcome.failureDetail = result.failure.detail;
    }
  }
  for (const history::FomAggregate& fom : foms) {
    AggregateRecord agg;
    agg.test = fom.test;
    agg.target = fom.target;
    agg.fom = fom.fom;
    for (const TestRunResult& result : results) {
      if (result.testName == fom.test &&
          result.system + ":" + result.partition == fom.target &&
          result.concreteSpec != nullptr) {
        agg.specHash = result.concreteSpec->dagHash();
        break;
      }
    }
    agg.mean = fom.mean;
    agg.min = fom.min;
    agg.max = fom.max;
    agg.ci = fom.ciHalfwidth;
    agg.ess = fom.ess;
    agg.repeats = fom.repeats;
    outcome.aggregates.push_back(std::move(agg));
  }
  return outcome;
}

HistoryAppendResult appendCampaignHistory(store::ObjectStore& store,
                                          const ExecutedRecord& outcome,
                                          const SystemRegistry& systems,
                                          bool skipIfCited) {
  HistoryAppendResult result;
  if (outcome.aggregates.empty()) return result;
  history::HistoryIndex index(store);
  if (skipIfCited) {
    // Exactly-once across crash/resume: a resumed daemon whose previous
    // incarnation already appended this campaign must not append twice.
    // readAll also surfaces a broken chain here, before any mutation.
    for (const history::HistoryRecord& record : index.readAll()) {
      if (record.manifestHash == outcome.manifestHash) return result;
    }
  }
  std::vector<history::HistoryRecord> records;
  for (const AggregateRecord& agg : outcome.aggregates) {
    history::HistoryRecord record;
    record.test = agg.test;
    record.target = agg.target;
    record.fom = agg.fom;
    record.manifestHash = outcome.manifestHash;
    record.envFingerprint = store::BuildCache::environmentFingerprint(
        systems.resolve(agg.target).first->environment);
    record.specHash = agg.specHash;
    record.mean = agg.mean;
    record.min = agg.min;
    record.max = agg.max;
    record.ci = agg.ci;
    record.ess = agg.ess;
    record.repeats = agg.repeats;
    record.simTimestamp = outcome.simSeconds;
    records.push_back(std::move(record));
  }
  result.segment = index.appendSegment(records);
  result.records = static_cast<int>(records.size());
  result.appended = true;
  return result;
}

std::vector<history::GateResult> gateCampaign(
    store::ObjectStore& store, const ExecutedRecord& outcome,
    const history::GateOptions& options, obs::Tracer* tracer,
    obs::MetricsRegistry* metrics) {
  history::HistoryIndex index(store);
  const std::vector<history::HistoryRecord> all = index.readAll();
  std::vector<history::GateResult> touched;
  for (const history::GateResult& gate :
       history::checkRegression(all, options)) {
    for (const AggregateRecord& agg : outcome.aggregates) {
      if (gate.series != agg.test + "|" + agg.target + "|" + agg.fom) {
        continue;
      }
      if (tracer != nullptr) {
        tracer->beginSpan("infer.changepoint");
        tracer->setAttr("test", agg.test);
        tracer->setAttr("target", agg.target);
        tracer->setAttr("fom", agg.fom);
        tracer->setAttr("repeats", std::to_string(agg.repeats));
        tracer->setAttr("ess", str::fixed(gate.latestEss, 3));
        tracer->setAttr("ci_halfwidth", str::fixed(gate.latestCi, 6));
        tracer->setAttr("baseline_ci", str::fixed(gate.baselineCi, 6));
        tracer->setAttr("regression", gate.regression ? "true" : "false");
        tracer->setAttr("significant", gate.significant ? "true" : "false");
        tracer->setAttr("changepoint", gate.changepoint ? "true" : "false");
        tracer->endSpan();
      }
      if (metrics != nullptr) {
        metrics->counter("infer.gated_series").inc();
        if (gate.regression) metrics->counter("infer.regressions").inc();
        if (gate.changepoint) metrics->counter("infer.changepoints").inc();
      }
      touched.push_back(gate);
      break;
    }
  }
  return touched;
}

std::string runKeyFor(const store::CampaignInvocation& inv,
                      const SystemRegistry& systems,
                      const PackageRepository& repo,
                      std::span<const RegressionTest> tests) {
  const auto [system, partition] = systems.resolve(inv.system);
  Hasher hasher;
  hasher.update("rebench.runkey/1");
  hasher.update(store::renderInvocation(inv));
  hasher.update(
      store::BuildCache::environmentFingerprint(system->environment));
  // The system/partition configuration facets that shape results: a
  // resized partition or swapped scheduler must miss the memo.
  hasher.update(system->name);
  hasher.update(partition->name);
  hasher.update(static_cast<std::uint64_t>(partition->numNodes));
  hasher.update(partition->processor.model);
  hasher.update(
      static_cast<std::uint64_t>(partition->processor.totalCores()));
  hasher.update(std::string(schedulerName(partition->scheduler)));
  hasher.update(std::string(launcherName(partition->launcher)));
  hasher.update(partition->machineModel);
  // Concretized spec DAG hashes (sorted + deduped: key is a set, not a
  // schedule): any dependency drift re-executes.
  std::vector<std::string> dagHashes;
  for (const RegressionTest& test : tests) {
    Concretizer concretizer(repo, system->environment, {});
    const ConcretizationResult concrete =
        concretizer.concretize(Spec::parse(test.spackSpec));
    dagHashes.push_back(concrete.root->dagHash());
  }
  std::sort(dagHashes.begin(), dagHashes.end());
  dagHashes.erase(std::unique(dagHashes.begin(), dagHashes.end()),
                  dagHashes.end());
  for (const std::string& dagHash : dagHashes) {
    hasher.update(dagHash);
  }
  return hasher.hex();
}

}  // namespace rebench::service
