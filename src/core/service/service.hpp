// The continuous-benchmarking daemon (rebench::service).
//
// `rebench serve --store DIR --queue DIR` drains the filesystem
// submission queue, answering each submission with a verdict file:
//
//   cached           run key warm in the RunCache: nothing re-executed
//   ran:clean        executed; regression gate found nothing
//   ran:regressed    executed; gate flagged at least one touched series
//   failed:<class>   malformed / execution failure / watchdog /
//                    quarantined — the class names the taxonomy bucket
//
// Robustness envelope (ISSUE 7):
//   * write-ahead service journal — a killed daemon resumes in-flight
//     submissions exactly once (see service/journal.hpp)
//   * per-stage + per-submission watchdogs — hung work becomes a
//     classified infrastructure failure, not a stuck daemon
//   * circuit breaker — submissions that repeatedly crash the daemon
//     (claims without progress in the journal) are quarantined
//   * graceful drain — QUEUE/drain sentinel or SIGTERM/SIGINT finishes
//     the submission in flight, snapshots health.json and exits
//   * degraded mode — an unreadable history head or a corrupt RunCache
//     record never stops the daemon: it executes anyway and marks the
//     verdict degraded
//
// Everything the daemon writes (verdicts, history, traces) derives from
// simulated clocks and canonical orders, so a fixed queue processed with
// --once yields byte-identical outputs at any --jobs width — and a
// crash-resumed daemon converges on the same bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/framework/regression_test.hpp"
#include "core/pkg/recipe.hpp"
#include "core/store/manifest.hpp"
#include "core/sysconfig/system_config.hpp"

namespace rebench::obs {
class Tracer;
class MetricsRegistry;
}  // namespace rebench::obs

namespace rebench::service {

/// Maps an invocation to the tests it runs.  Injected by the CLI (which
/// knows the benchmarks and the builtin suite) so the service layer has
/// no benchmark dependencies; tests inject synthetic fixtures.
using TestResolver = std::function<std::vector<RegressionTest>(
    const store::CampaignInvocation&)>;

struct ServeOptions {
  std::string queueDir;
  std::string storeDir;
  /// Process the queue once and exit (the testable mode); false = keep
  /// polling until drain/shutdown.
  bool once = true;
  /// Campaign-level worker count inside each submission (never changes
  /// output bytes).
  int jobs = 1;
  /// Crash-loop quarantine: claims without journal progress before a
  /// submission is refused.
  int quarantineAfter = 3;
  /// Default per-stage deadline applied to submissions that set none.
  double stageTimeout = -1.0;
  /// Whole-submission deadline in simulated seconds; <= 0 = none.
  double submissionTimeout = -1.0;
  /// Test hook: simulate a kill -9 immediately after the named journal
  /// checkpoint ("claim" | "executed" | "verdict"); "" = never.
  std::string crashAfter;
  /// "HOST:PORT" to expose the live status endpoint (rebench serve
  /// --listen); port 0 binds an ephemeral port.  The bound address is
  /// published to QUEUE/endpoint.addr for discovery.  "" = no endpoint.
  /// The endpoint is read-only and never changes campaign output bytes.
  std::string listen;
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Per-submission progress lines ("<id> <verdict>"); null = silent.
  std::ostream* log = nullptr;
};

struct ServeReport {
  int processed = 0;    // submissions visited this run
  int cached = 0;       // answered from the RunCache
  int executed = 0;     // campaigns actually run this process
  int clean = 0;        // ran:clean verdicts
  int regressed = 0;    // ran:regressed verdicts
  int failed = 0;       // failed:* verdicts (incl. malformed + watchdog)
  int quarantined = 0;  // refused by the crash-loop breaker
  int degraded = 0;     // verdicts served with reduced guarantees
  int malformed = 0;    // tampered / unparseable submissions
  int watchdogFires = 0;
  bool drained = false;  // stopped by drain sentinel or shutdown request
  bool crashed = false;  // the crash-after test hook fired
  int queueDepth = 0;    // unanswered submissions at exit
  /// HTTP requests answered by the status endpoint ("" listen = 0).
  std::uint64_t endpointRequests = 0;
  /// Address the status endpoint bound ("" when --listen was not given).
  std::string endpointAddress;
};

class Service {
 public:
  Service(const SystemRegistry& systems, const PackageRepository& repo,
          ServeOptions options, TestResolver resolver);

  /// Drains the queue (once or until drained/shut down) and snapshots
  /// QUEUE/health.json.  Throws rebench::Error only on unusable
  /// queue/store directories — per-submission failures become verdicts.
  ServeReport run();

  /// Signal-handler-safe shutdown request (the CLI's SIGTERM/SIGINT
  /// handler calls this); acts like a drain sentinel.  Cleared when
  /// run() starts.
  static void requestShutdown();
  static bool shutdownRequested();

 private:
  const SystemRegistry& systems_;
  const PackageRepository& repo_;
  ServeOptions options_;
  TestResolver resolver_;
};

}  // namespace rebench::service
