#include "core/obs/clock.hpp"

#include <chrono>

namespace rebench::obs {

namespace {

double steadySeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

}  // namespace

WallClock::WallClock() : epoch_(steadySeconds()) {}

double WallClock::elapsed() const { return steadySeconds() - epoch_; }

}  // namespace rebench::obs
