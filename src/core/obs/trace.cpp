#include "core/obs/trace.hpp"

#include <fstream>
#include <sstream>

#include "core/obs/json.hpp"
#include "core/util/error.hpp"
#include "core/util/strings.hpp"

namespace rebench::obs {

namespace {

void putAttrs(std::ostream& out, const AttrMap& attrs) {
  if (attrs.empty()) return;
  out << ",\"attrs\":{";
  bool first = true;
  for (const auto& [key, value] : attrs) {
    if (!first) out << ",";
    first = false;
    out << json::quote(key) << ":" << json::quote(value);
  }
  out << "}";
}

}  // namespace

Tracer::Tracer(std::unique_ptr<TraceClock> clock)
    : clock_(clock ? std::move(clock) : std::make_unique<SimClock>()) {}

std::string Tracer::beginSpan(std::string name) {
  OpenSpan span;
  if (stack_.empty()) {
    span.record.id = std::to_string(++rootCount_);
  } else {
    OpenSpan& parent = stack_.back();
    span.record.id =
        parent.record.id + "." + std::to_string(++parent.childCount);
    span.record.parent = parent.record.id;
  }
  span.record.name = std::move(name);
  span.record.start = clock_->now();
  stack_.push_back(std::move(span));
  return stack_.back().record.id;
}

void Tracer::setAttr(std::string_view key, std::string_view value) {
  REBENCH_REQUIRE(!stack_.empty());
  stack_.back().record.attrs[std::string(key)] = std::string(value);
}

void Tracer::setAttrOn(std::string_view id, std::string_view key,
                       std::string_view value) {
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
    if (it->record.id == id) {
      it->record.attrs[std::string(key)] = std::string(value);
      return;
    }
  }
  throw InternalError("setAttrOn: span '" + std::string(id) + "' is not open");
}

const SpanRecord& Tracer::endSpan() {
  REBENCH_REQUIRE(!stack_.empty());
  SpanRecord record = std::move(stack_.back().record);
  stack_.pop_back();
  record.end = clock_->now();
  spans_.push_back(std::move(record));
  emitted_.push_back({Emitted::Kind::kSpan, spans_.size() - 1});
  return spans_.back();
}

void Tracer::annotateCompleted(std::string_view id, std::string_view key,
                               std::string_view value) {
  // Completed spans are few per shard and annotation is rare (once per
  // campaign at emission time), so a linear scan beats maintaining an
  // id index on the hot begin/end path.
  for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
    if (it->id == id) {
      it->attrs[std::string(key)] = std::string(value);
      return;
    }
  }
  throw InternalError("annotateCompleted: no completed span '" +
                      std::string(id) + "'");
}

void Tracer::event(std::string name, AttrMap attrs) {
  eventAt(clock_->peek(), std::move(name), std::move(attrs));
}

void Tracer::eventAt(double time, std::string name, AttrMap attrs) {
  // Never step backwards: a component's own timeline (e.g. scheduler
  // simulated seconds) may lag the trace clock by a few micro-ticks.
  clock_->advanceTo(time);
  EventRecord record;
  record.span = currentSpanId();
  record.name = std::move(name);
  record.time = clock_->now();
  record.attrs = std::move(attrs);
  events_.push_back(std::move(record));
  emitted_.push_back({Emitted::Kind::kEvent, events_.size() - 1});
}

void Tracer::absorb(const Tracer& shard) {
  REBENCH_REQUIRE(stack_.empty());
  REBENCH_REQUIRE(shard.stack_.empty());
  const double offset = clock_->peek();
  const int rootBase = rootCount_;
  // Shard span ids are hierarchical ("3", "3.1.2"); shifting the leading
  // root number by rootBase makes them continue our numbering.
  auto remapId = [rootBase](const std::string& id) -> std::string {
    if (id.empty()) return id;
    const std::size_t dot = id.find('.');
    const std::string head = id.substr(0, dot);
    const int root = std::stoi(head) + rootBase;
    if (dot == std::string::npos) return std::to_string(root);
    return std::to_string(root) + id.substr(dot);
  };
  for (const Emitted& emitted : shard.emitted_) {
    if (emitted.kind == Emitted::Kind::kSpan) {
      SpanRecord span = shard.spans_[emitted.index];
      span.id = remapId(span.id);
      span.parent = remapId(span.parent);
      span.start += offset;
      span.end += offset;
      spans_.push_back(std::move(span));
      emitted_.push_back({Emitted::Kind::kSpan, spans_.size() - 1});
    } else {
      EventRecord event = shard.events_[emitted.index];
      event.span = remapId(event.span);
      event.time += offset;
      events_.push_back(std::move(event));
      emitted_.push_back({Emitted::Kind::kEvent, events_.size() - 1});
    }
  }
  rootCount_ += shard.rootCount_;
  clock_->advanceTo(offset + shard.clock_->peek());
}

std::string Tracer::currentSpanId() const {
  return stack_.empty() ? std::string() : stack_.back().record.id;
}

void Tracer::writeJsonl(std::ostream& out,
                        const MetricsRegistry* metrics) const {
  out << "{\"schema\":" << json::quote(kTraceSchema)
      << ",\"kind\":\"meta\",\"tool\":\"rebench\",\"clock\":"
      << json::quote(clock_->kind()) << "}\n";
  for (const Emitted& emitted : emitted_) {
    if (emitted.kind == Emitted::Kind::kSpan) {
      const SpanRecord& span = spans_[emitted.index];
      out << "{\"kind\":\"span\",\"id\":" << json::quote(span.id)
          << ",\"parent\":" << json::quote(span.parent)
          << ",\"name\":" << json::quote(span.name)
          << ",\"start\":" << str::fixed(span.start, 6)
          << ",\"end\":" << str::fixed(span.end, 6);
      putAttrs(out, span.attrs);
      out << "}\n";
    } else {
      const EventRecord& event = events_[emitted.index];
      out << "{\"kind\":\"event\",\"span\":" << json::quote(event.span)
          << ",\"name\":" << json::quote(event.name)
          << ",\"time\":" << str::fixed(event.time, 6);
      putAttrs(out, event.attrs);
      out << "}\n";
    }
  }
  if (metrics == nullptr) return;
  for (const auto& [name, counter] : metrics->counters()) {
    out << "{\"kind\":\"counter\",\"name\":" << json::quote(name)
        << ",\"value\":" << counter.value() << "}\n";
  }
  for (const auto& [name, gauge] : metrics->gauges()) {
    out << "{\"kind\":\"gauge\",\"name\":" << json::quote(name)
        << ",\"value\":" << str::fixed(gauge.value(), 6)
        << ",\"max\":" << str::fixed(gauge.max(), 6) << "}\n";
  }
  for (const auto& [name, histogram] : metrics->histograms()) {
    out << "{\"kind\":\"histogram\",\"name\":" << json::quote(name)
        << ",\"count\":" << histogram.count()
        << ",\"sum\":" << str::fixed(histogram.sum(), 6) << ",\"bounds\":[";
    for (std::size_t i = 0; i < histogram.bounds().size(); ++i) {
      if (i != 0) out << ",";
      out << str::fixed(histogram.bounds()[i], 6);
    }
    out << "],\"counts\":[";
    for (std::size_t i = 0; i < histogram.counts().size(); ++i) {
      if (i != 0) out << ",";
      out << histogram.counts()[i];
    }
    out << "]}\n";
  }
}

std::string Tracer::toJsonl(const MetricsRegistry* metrics) const {
  std::ostringstream out;
  writeJsonl(out, metrics);
  return out.str();
}

void Tracer::writeFile(const std::string& path,
                       const MetricsRegistry* metrics) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw Error("cannot open trace file '" + path + "'");
  writeJsonl(out, metrics);
  if (!out) throw Error("failed writing trace file '" + path + "'");
}

ScopedSpan::ScopedSpan(Tracer* tracer, std::string name,
                       Histogram* durationHistogram)
    : tracer_(tracer), hist_(durationHistogram) {
  if (tracer_ != nullptr) id_ = tracer_->beginSpan(std::move(name));
}

ScopedSpan::~ScopedSpan() { end(); }

void ScopedSpan::attr(std::string_view key, std::string_view value) {
  if (tracer_ != nullptr && !ended_) tracer_->setAttrOn(id_, key, value);
}

void ScopedSpan::end() {
  if (tracer_ == nullptr || ended_) return;
  ended_ = true;
  const SpanRecord& record = tracer_->endSpan();
  REBENCH_REQUIRE(record.id == id_);  // scopes must nest
  if (hist_ != nullptr) hist_->observe(record.duration());
}

}  // namespace rebench::obs
