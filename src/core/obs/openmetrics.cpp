#include "core/obs/openmetrics.hpp"

#include <map>
#include <sstream>

namespace rebench::obs {

namespace {

/// Splits a registry name at the first '/' (the conventional
/// "family/sub" pattern, e.g. "pipeline.stage_seconds/build") and maps
/// the family part onto the OpenMetrics grammar.
struct MappedName {
  std::string family;  // "rebench_pipeline_stage_seconds"
  std::string sub;     // "build" ("" when the name has no '/')
};

MappedName mapName(const std::string& raw) {
  MappedName mapped;
  const std::size_t slash = raw.find('/');
  const std::string base = raw.substr(0, slash);
  mapped.family = "rebench_";
  for (const char c : base) {
    const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    mapped.family += legal ? c : '_';
  }
  if (slash != std::string::npos) mapped.sub = raw.substr(slash + 1);
  return mapped;
}

/// OpenMetrics label-value escaping: backslash, double quote, newline.
std::string escapeLabel(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Renders a label set ({a="x",b="y"}); empty map renders as nothing.
/// std::map keeps label order sorted by name, so output is stable.
std::string labelSet(const std::map<std::string, std::string>& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + escapeLabel(value) + "\"";
  }
  return out + "}";
}

std::map<std::string, std::string> subLabels(const MappedName& name) {
  std::map<std::string, std::string> labels;
  if (!name.sub.empty()) labels["sub"] = name.sub;
  return labels;
}

}  // namespace

std::string renderOpenMetrics(const MetricsRegistry& registry,
                              std::span<const MetricSample> extra) {
  std::ostringstream out;

  // ---- counters ---------------------------------------------------------
  // Names sharing a base ("fault.injected", "fault.injected/crash") fold
  // into one family with distinct sub labels; group first so the # TYPE
  // header is emitted exactly once per family, in family order.
  std::map<std::string, std::vector<std::pair<std::string, std::uint64_t>>>
      counterFamilies;
  for (const auto& [name, counter] : registry.counters()) {
    const MappedName mapped = mapName(name);
    counterFamilies[mapped.family].emplace_back(labelSet(subLabels(mapped)),
                                                counter.value());
  }
  for (const auto& [family, samples] : counterFamilies) {
    out << "# TYPE " << family << " counter\n";
    for (const auto& [labels, value] : samples) {
      out << family << "_total" << labels << " " << value << "\n";
    }
  }

  // ---- gauges -----------------------------------------------------------
  std::map<std::string,
           std::vector<std::pair<std::string, std::pair<double, double>>>>
      gaugeFamilies;
  for (const auto& [name, gauge] : registry.gauges()) {
    const MappedName mapped = mapName(name);
    gaugeFamilies[mapped.family].emplace_back(
        labelSet(subLabels(mapped)),
        std::make_pair(gauge.value(), gauge.max()));
  }
  for (const auto& [family, samples] : gaugeFamilies) {
    out << "# TYPE " << family << " gauge\n";
    for (const auto& [labels, value] : samples) {
      out << family << labels << " " << formatMetricValue(value.first)
          << "\n";
    }
    out << "# TYPE " << family << "_max gauge\n";
    for (const auto& [labels, value] : samples) {
      out << family << "_max" << labels << " "
          << formatMetricValue(value.second) << "\n";
    }
  }

  // ---- histograms -------------------------------------------------------
  struct HistogramSample {
    std::map<std::string, std::string> labels;
    const Histogram* histogram;
  };
  std::map<std::string, std::vector<HistogramSample>> histogramFamilies;
  for (const auto& [name, histogram] : registry.histograms()) {
    const MappedName mapped = mapName(name);
    histogramFamilies[mapped.family].push_back(
        {subLabels(mapped), &histogram});
  }
  for (const auto& [family, samples] : histogramFamilies) {
    out << "# TYPE " << family << " histogram\n";
    for (const HistogramSample& sample : samples) {
      const Histogram& hist = *sample.histogram;
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < hist.counts().size(); ++i) {
        cumulative += hist.counts()[i];
        std::map<std::string, std::string> labels = sample.labels;
        labels["le"] = i < hist.bounds().size()
                           ? formatMetricValue(hist.bounds()[i])
                           : std::string("+Inf");
        out << family << "_bucket" << labelSet(labels) << " " << cumulative
            << "\n";
      }
      out << family << "_sum" << labelSet(sample.labels) << " "
          << formatMetricValue(hist.sum()) << "\n";
      out << family << "_count" << labelSet(sample.labels) << " "
          << hist.count() << "\n";
    }
    // Quantile estimates as a sibling gauge family (histogram sample
    // suffixes are fixed by the spec, so quantiles cannot ride inside).
    out << "# TYPE " << family << "_quantile gauge\n";
    for (const HistogramSample& sample : samples) {
      for (const double q : kReportedQuantiles) {
        std::map<std::string, std::string> labels = sample.labels;
        labels["quantile"] = formatMetricValue(q);
        out << family << "_quantile" << labelSet(labels) << " "
            << formatMetricValue(sample.histogram->quantile(q)) << "\n";
      }
    }
  }

  // ---- extra samples (FOMs) --------------------------------------------
  std::string openFamily;
  for (const MetricSample& sample : extra) {
    if (sample.family != openFamily) {
      out << "# TYPE " << sample.family << " gauge\n";
      openFamily = sample.family;
    }
    out << sample.family << labelSet(sample.labels) << " "
        << formatMetricValue(sample.value) << "\n";
  }

  out << "# EOF\n";
  return out.str();
}

}  // namespace rebench::obs
