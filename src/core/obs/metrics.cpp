#include "core/obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <cstdio>

#include "core/util/error.hpp"

namespace rebench::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  REBENCH_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()));
  counts_.assign(bounds_.size() + 1, 0);
}

std::size_t Histogram::bucketFor(double value) const {
  // First bucket whose inclusive upper bound admits the value.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<std::size_t>(it - bounds_.begin());
}

void Histogram::observe(double value) {
  ++counts_[bucketFor(value)];
  ++count_;
  sum_ += value;
}

namespace {

std::string renderBounds(const std::vector<double>& bounds) {
  std::string out = "[";
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(bounds[i]);
  }
  return out + "]";
}

}  // namespace

void Histogram::merge(const Histogram& other) {
  // Accumulating buckets with different boundaries would silently place
  // observations into the wrong ranges; refuse loudly instead.
  if (bounds_ != other.bounds_) {
    throw Error("histogram merge: mismatched bucket bounds " +
                renderBounds(bounds_) + " vs " + renderBounds(other.bounds_));
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return counters_[std::string(name)];
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return gauges_[std::string(name)];
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      Histogram({bounds.begin(), bounds.end()}))
             .first;
  }
  return it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, counter] : other.counters()) {
    counters_[name].inc(counter.value());
  }
  for (const auto& [name, gauge] : other.gauges()) {
    gauges_[name].merge(gauge);
  }
  for (const auto& [name, histogram] : other.histograms()) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, histogram);
    } else {
      try {
        it->second.merge(histogram);
      } catch (const Error& e) {
        throw Error("metrics merge: histogram '" + name + "': " + e.what());
      }
    }
  }
}

double Histogram::quantile(double q) const {
  return histogramQuantile(bounds_, counts_, count_, q);
}

std::span<const double> stageSecondsBounds() {
  static constexpr std::array<double, 9> kBounds{
      0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 300.0, 1800.0, 7200.0};
  return kBounds;
}

std::string formatMetricValue(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.6g", value);
  return buffer;
}

double histogramQuantile(std::span<const double> bounds,
                         std::span<const std::uint64_t> counts,
                         std::uint64_t count, double q) {
  if (count == 0 || counts.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Target rank in [1, count]; ceil so q=0.5 of 2 observations lands on
  // the first, matching the usual nearest-rank convention.
  const double rank = std::max(1.0, q * static_cast<double>(count));
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double previous = cumulative;
    cumulative += static_cast<double>(counts[i]);
    if (cumulative + 1e-12 < rank) continue;
    if (i >= bounds.size()) {
      // Open overflow bucket: no finite upper edge to interpolate toward.
      return bounds.empty() ? 0.0 : bounds.back();
    }
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    const double upper = bounds[i];
    const double inBucket = static_cast<double>(counts[i]);
    if (inBucket <= 0.0) return upper;
    const double fraction = (rank - previous) / inBucket;
    return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

}  // namespace rebench::obs
