// Metrics registry (rebench::obs).
//
// Counters, gauges and fixed-boundary histograms for the pipeline's
// internals: stage durations, concretizer decisions, scheduler queue
// depths and wait times, retry counts, perflog lines written.  All state
// is plain deterministic arithmetic — a metrics dump from a simulated run
// is as reproducible as the run itself.
//
// Instruments are owned by the registry and handed out by reference;
// handles stay valid for the registry's lifetime (node-based map storage).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace rebench::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// A point-in-time level (queue depth, idle cores); tracks its maximum.
class Gauge {
 public:
  void set(double value) {
    value_ = value;
    if (!seen_ || value > max_) max_ = value;
    seen_ = true;
  }
  double value() const { return value_; }
  double max() const { return max_; }
  bool seen() const { return seen_; }

  /// Folds another gauge in as if its sets happened after ours: its value
  /// wins (when it saw one), maxima combine.
  void merge(const Gauge& other) {
    if (!other.seen_) return;
    set(other.value_);
    if (other.max_ > max_) max_ = other.max_;
  }

 private:
  double value_ = 0.0;
  double max_ = 0.0;
  bool seen_ = false;
};

/// Fixed-boundary histogram.  `bounds` are inclusive upper bounds of the
/// first N buckets (Prometheus "le" semantics); one overflow bucket is
/// implicit, so counts().size() == bounds().size() + 1.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  /// Element-wise accumulation of another histogram; throws
  /// rebench::Error when the bucket bounds differ (merging across
  /// boundaries would silently misplace observations).
  void merge(const Histogram& other);

  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }

  /// Index of the bucket `value` falls into.
  std::size_t bucketFor(double value) const;

  /// Deterministic quantile estimate (see obs::histogramQuantile).
  double quantile(double q) const;

 private:
  std::vector<double> bounds_;         // sorted ascending
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 buckets
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Names instruments and owns them.  Iteration order is lexicographic, so
/// serialized dumps are stable.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` applies on first creation; later lookups reuse the existing
  /// instrument (and ignore the boundaries argument).
  Histogram& histogram(std::string_view name, std::span<const double> bounds);

  const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Gauge, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Folds `other` in: counters add, gauges merge (other's value wins,
  /// maxima combine), histograms accumulate element-wise.  Used by the
  /// campaign executor to merge per-campaign metric shards in canonical
  /// order, so the combined dump is schedule-independent.
  void merge(const MetricsRegistry& other);

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// Bucket boundaries used for pipeline stage durations and scheduler wait
/// times (seconds).
std::span<const double> stageSecondsBounds();

/// The one formatter every metric-value renderer shares (`%.6g`).  Using a
/// single fixed format in `trace-report --json`, `profile --json` and the
/// OpenMetrics exporter means no two renderers can drift byte-wise on the
/// same number.
std::string formatMetricValue(double value);

/// Deterministic quantile estimate from fixed histogram buckets: walks the
/// cumulative counts to the bucket containing rank `q * count` and
/// interpolates linearly inside it (Prometheus `histogram_quantile`
/// semantics).  The open overflow bucket clamps to the last finite bound;
/// an empty histogram reports 0.  `q` is clamped to [0, 1].
double histogramQuantile(std::span<const double> bounds,
                         std::span<const std::uint64_t> counts,
                         std::uint64_t count, double q);

/// The quantiles every histogram renderer reports, in emission order.
inline constexpr double kReportedQuantiles[] = {0.5, 0.9, 0.99};

}  // namespace rebench::obs
