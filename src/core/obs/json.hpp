// Minimal JSON support for the trace subsystem (rebench::obs).
//
// The trace writer emits one flat-ish JSON object per line; the reader
// needs just enough of a parser to load those lines back.  This is a
// strict subset implementation: UTF-8 pass-through, \uXXXX emitted for
// control characters only, objects keyed by std::map so serialization is
// deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace rebench::obs::json {

/// A parsed JSON value.  Tagged struct rather than std::variant so the
/// type can contain itself without indirection gymnastics.
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool isNull() const { return kind == Kind::kNull; }
  bool isBool() const { return kind == Kind::kBool; }
  bool isNumber() const { return kind == Kind::kNumber; }
  bool isString() const { return kind == Kind::kString; }
  bool isArray() const { return kind == Kind::kArray; }
  bool isObject() const { return kind == Kind::kObject; }

  bool contains(std::string_view key) const;
  /// Member access; throws ParseError when absent or not an object.
  const Value& at(std::string_view key) const;
  /// String member with a fallback for absent keys.
  std::string stringOr(std::string_view key, std::string_view fallback) const;
  /// Numeric member with a fallback for absent keys.
  double numberOr(std::string_view key, double fallback) const;
};

/// Parses one JSON document; throws rebench::ParseError on malformed
/// input or trailing garbage.
Value parse(std::string_view text);

/// Escapes `raw` for embedding inside a double-quoted JSON string
/// (quotes not included).
std::string escape(std::string_view raw);

/// Renders a quoted JSON string.
std::string quote(std::string_view raw);

}  // namespace rebench::obs::json
