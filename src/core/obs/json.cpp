#include "core/obs/json.hpp"

#include <cctype>
#include <cstdio>

#include "core/util/error.hpp"

namespace rebench::obs::json {

bool Value::contains(std::string_view key) const {
  return kind == Kind::kObject && object.find(std::string(key)) != object.end();
}

const Value& Value::at(std::string_view key) const {
  if (kind != Kind::kObject) {
    throw ParseError("json: member access '" + std::string(key) +
                     "' on a non-object");
  }
  auto it = object.find(std::string(key));
  if (it == object.end()) {
    throw ParseError("json: missing member '" + std::string(key) + "'");
  }
  return it->second;
}

std::string Value::stringOr(std::string_view key,
                            std::string_view fallback) const {
  if (!contains(key)) return std::string(fallback);
  const Value& v = at(key);
  if (!v.isString()) {
    throw ParseError("json: member '" + std::string(key) + "' is not a string");
  }
  return v.text;
}

double Value::numberOr(std::string_view key, double fallback) const {
  if (!contains(key)) return fallback;
  const Value& v = at(key);
  if (!v.isNumber()) {
    throw ParseError("json: member '" + std::string(key) + "' is not a number");
  }
  return v.number;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value document() {
    Value v = value();
    skipWhitespace();
    if (pos_ != text_.size()) {
      throw ParseError("json: trailing characters at offset " +
                       std::to_string(pos_));
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw ParseError("json: " + what + " at offset " + std::to_string(pos_));
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) fail(std::string("expected '") + c + "'");
  }

  void skipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Value value() {
    skipWhitespace();
    const char c = peek();
    if (c == '{') return objectValue();
    if (c == '[') return arrayValue();
    if (c == '"') {
      Value v;
      v.kind = Value::Kind::kString;
      v.text = string();
      return v;
    }
    if (c == 't' || c == 'f') {
      Value v;
      v.kind = Value::Kind::kBool;
      if (consumeLiteral("true")) {
        v.boolean = true;
      } else if (consumeLiteral("false")) {
        v.boolean = false;
      } else {
        fail("bad literal");
      }
      return v;
    }
    if (c == 'n') {
      if (!consumeLiteral("null")) fail("bad literal");
      return Value{};
    }
    return numberValue();
  }

  Value objectValue() {
    expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    skipWhitespace();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skipWhitespace();
      std::string key = string();
      skipWhitespace();
      expect(':');
      v.object[std::move(key)] = value();
      skipWhitespace();
      const char next = take();
      if (next == '}') return v;
      if (next != ',') fail("expected ',' or '}' in object");
    }
  }

  Value arrayValue() {
    expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    skipWhitespace();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skipWhitespace();
      const char next = take();
      if (next == ']') return v;
      if (next != ',') fail("expected ',' or ']' in array");
    }
  }

  int hexDigit() {
    const char c = take();
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    fail("bad \\u escape digit");
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          int code = 0;
          for (int i = 0; i < 4; ++i) code = code * 16 + hexDigit();
          // The writer only emits \u00XX (control characters); decode the
          // basic-latin range and reject anything the writer cannot have
          // produced rather than implementing full UTF-16 surrogates.
          if (code > 0xff) fail("\\u escape outside the supported range");
          out += static_cast<char>(code);
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Value numberValue() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    Value v;
    v.kind = Value::Kind::kNumber;
    try {
      v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("bad number '" + std::string(text_.substr(start, pos_ - start)) +
           "'");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).document(); }

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string quote(std::string_view raw) {
  return "\"" + escape(raw) + "\"";
}

}  // namespace rebench::obs::json
