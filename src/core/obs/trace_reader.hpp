// Trace JSONL reader and validator (rebench::obs).
//
// Loads a trace written by Tracer::writeJsonl back into typed records —
// the programmatic-assimilation half of the observability story (the
// Principle-6 analogue for traces).  `lintTrace` checks the structural
// invariants the writer guarantees (schema version, monotone timestamps,
// parented spans, no orphans); `tools/trace_lint` fronts it as a CLI and
// ctest gate.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/obs/trace.hpp"

namespace rebench::obs {

/// A fully-parsed trace file.
struct TraceFile {
  std::string schema;     // e.g. "rebench.trace/1"
  std::string clockKind;  // "sim" | "wall"

  std::vector<SpanRecord> spans;    // file order (= span end order)
  std::vector<EventRecord> events;  // file order (= occurrence order)

  struct GaugeDump {
    double value = 0.0;
    double max = 0.0;
  };
  struct HistogramDump {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeDump> gauges;
  std::map<std::string, HistogramDump> histograms;

  /// (kind, ordering timestamp) per span/event line, in file order — the
  /// sequence the monotonicity lint runs over.  Span lines order by their
  /// end time (they are emitted when the span ends).
  struct TimelineEntry {
    std::string kind;
    double time = 0.0;
  };
  std::vector<TimelineEntry> timeline;
};

/// Parses trace JSONL text; throws rebench::ParseError on malformed JSON
/// or records missing required members.  Structural problems (bad
/// parents, non-monotone stamps) are left to lintTrace.
TraceFile parseTraceJsonl(const std::string& text);

/// Reads and parses a trace file; throws rebench::Error when unreadable.
TraceFile readTraceFile(const std::string& path);

/// Validates structural invariants; returns one message per violation
/// (empty = clean):
///   * schema version is known,
///   * span ids unique, parents exist, children nest inside parents,
///   * span end >= start,
///   * record timestamps monotone non-decreasing in file order,
///   * events reference existing spans (no orphans).
std::vector<std::string> lintTrace(const TraceFile& trace);

}  // namespace rebench::obs
