// Span-based tracer (rebench::obs).
//
// One Tracer covers one pipeline invocation.  Spans form a tree with
// hierarchical, deterministic ids ("1", "1.2", "1.2.1"); events are
// point-in-time records attached to the innermost open span.  Time comes
// from a TraceClock — simulated (deterministic) for modelled runs, wall
// for native ones — so a trace of a simulated run is byte-identical
// across repeats.
//
// Serialization is schema-versioned JSONL: a meta line followed by one
// record per line in emission order (spans are emitted when they *end*,
// events when they occur, metrics at the end), which makes the record
// timestamps monotone — a property `tools/trace_lint` checks.
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/obs/clock.hpp"
#include "core/obs/metrics.hpp"

namespace rebench::obs {

/// Trace schema identifier; bump the suffix on breaking record changes.
inline constexpr std::string_view kTraceSchema = "rebench.trace/1";

using AttrMap = std::map<std::string, std::string>;

/// A completed span.
struct SpanRecord {
  std::string id;      // hierarchical: "1", "1.2", "1.2.1", ...
  std::string parent;  // empty for roots
  std::string name;
  double start = 0.0;
  double end = 0.0;
  AttrMap attrs;

  double duration() const { return end - start; }
};

/// A point-in-time occurrence inside (or outside) a span.
struct EventRecord {
  std::string span;  // owning span id; empty when none was open
  std::string name;
  double time = 0.0;
  AttrMap attrs;
};

class Tracer {
 public:
  /// Defaults to a deterministic SimClock; pass a WallClock for native
  /// runs where host durations are wanted.
  explicit Tracer(std::unique_ptr<TraceClock> clock = nullptr);

  TraceClock& clock() { return *clock_; }
  const TraceClock& clock() const { return *clock_; }

  /// Opens a child of the innermost open span (or a new root) and returns
  /// its id.
  std::string beginSpan(std::string name);
  /// Sets an attribute on the innermost open span.
  void setAttr(std::string_view key, std::string_view value);
  /// Sets an attribute on a specific *open* span (ancestors included).
  void setAttrOn(std::string_view id, std::string_view key,
                 std::string_view value);
  /// Closes the innermost open span; returns the completed record.
  const SpanRecord& endSpan();

  /// Sets an attribute on a *completed* span (by id).  Post-hoc
  /// annotation is how the campaign executor stamps schedule-derived
  /// attributes (e.g. the canonical `lane`) that are only known once
  /// every campaign's duration is — call before serialization.  Throws
  /// InternalError when no completed span has that id.
  void annotateCompleted(std::string_view id, std::string_view key,
                         std::string_view value);

  /// Records an event now, attached to the innermost open span.
  void event(std::string name, AttrMap attrs = {});
  /// Records an event at (no earlier than) `time` — used by components
  /// with their own simulated timeline, e.g. the scheduler.  Advances the
  /// clock so later records stay monotone.
  void eventAt(double time, std::string name, AttrMap attrs = {});

  /// Splices a completed shard trace (all spans ended) into this tracer:
  /// the shard's roots are renumbered to follow ours, every record's time
  /// is offset by our current clock position, and our clock advances past
  /// the shard's end.  Absorbing shards in a canonical order therefore
  /// yields bytes independent of the order they were *recorded* in —
  /// the deterministic-merge primitive of the parallel campaign executor.
  /// Requires no open spans on either tracer.
  void absorb(const Tracer& shard);

  std::size_t openSpans() const { return stack_.size(); }
  /// Id of the innermost open span; empty when none is open.
  std::string currentSpanId() const;

  const std::vector<SpanRecord>& spans() const { return spans_; }
  const std::vector<EventRecord>& events() const { return events_; }

  // ---- JSONL serialization ----------------------------------------------
  /// Writes the trace (meta line, records in emission order, then the
  /// metrics dump when `metrics` is non-null).  Open spans are not
  /// written; end them first.
  void writeJsonl(std::ostream& out,
                  const MetricsRegistry* metrics = nullptr) const;
  std::string toJsonl(const MetricsRegistry* metrics = nullptr) const;
  /// Writes to `path`, truncating; throws rebench::Error on I/O failure.
  void writeFile(const std::string& path,
                 const MetricsRegistry* metrics = nullptr) const;

 private:
  struct OpenSpan {
    SpanRecord record;
    int childCount = 0;
  };
  // One entry per serialized line, in emission order: index into spans_
  // (kind==kSpan) or events_ (kind==kEvent).
  struct Emitted {
    enum class Kind { kSpan, kEvent } kind;
    std::size_t index;
  };

  std::unique_ptr<TraceClock> clock_;
  std::vector<OpenSpan> stack_;
  int rootCount_ = 0;
  std::vector<SpanRecord> spans_;    // completed, in end order
  std::vector<EventRecord> events_;  // in occurrence order
  std::vector<Emitted> emitted_;
};

/// RAII span guard, null-tracer safe: every operation is a no-op when the
/// tracer is null, so instrumented code needs no branches.
class ScopedSpan {
 public:
  /// When `durationHistogram` is non-null the span's duration is observed
  /// into it at end time.
  ScopedSpan(Tracer* tracer, std::string name,
             Histogram* durationHistogram = nullptr);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Sets an attribute on this span (valid while it is innermost).
  void attr(std::string_view key, std::string_view value);
  /// Ends the span early (idempotent).
  void end();

  const std::string& id() const { return id_; }

 private:
  Tracer* tracer_;
  Histogram* hist_;
  std::string id_;
  bool ended_ = false;
};

}  // namespace rebench::obs
