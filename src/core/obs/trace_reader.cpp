#include "core/obs/trace_reader.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "core/obs/json.hpp"
#include "core/util/error.hpp"
#include "core/util/strings.hpp"

namespace rebench::obs {

namespace {

AttrMap readAttrs(const json::Value& record) {
  AttrMap attrs;
  if (!record.contains("attrs")) return attrs;
  const json::Value& object = record.at("attrs");
  if (!object.isObject()) throw ParseError("trace: 'attrs' is not an object");
  for (const auto& [key, value] : object.object) {
    if (!value.isString()) {
      throw ParseError("trace: attribute '" + key + "' is not a string");
    }
    attrs[key] = value.text;
  }
  return attrs;
}

}  // namespace

TraceFile parseTraceJsonl(const std::string& text) {
  TraceFile trace;
  std::istringstream in(text);
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (str::trim(line).empty()) continue;
    json::Value record;
    try {
      record = json::parse(line);
    } catch (const ParseError& e) {
      throw ParseError("trace line " + std::to_string(lineNo) + ": " +
                       e.what());
    }
    if (!record.isObject()) {
      throw ParseError("trace line " + std::to_string(lineNo) +
                       ": not a JSON object");
    }
    const std::string kind = record.stringOr("kind", "");
    if (kind == "meta") {
      trace.schema = record.stringOr("schema", "");
      trace.clockKind = record.stringOr("clock", "");
    } else if (kind == "span") {
      SpanRecord span;
      span.id = record.at("id").text;
      span.parent = record.stringOr("parent", "");
      span.name = record.at("name").text;
      span.start = record.at("start").number;
      span.end = record.at("end").number;
      span.attrs = readAttrs(record);
      trace.timeline.push_back({"span", span.end});
      trace.spans.push_back(std::move(span));
    } else if (kind == "event") {
      EventRecord event;
      event.span = record.stringOr("span", "");
      event.name = record.at("name").text;
      event.time = record.at("time").number;
      event.attrs = readAttrs(record);
      trace.timeline.push_back({"event", event.time});
      trace.events.push_back(std::move(event));
    } else if (kind == "counter") {
      trace.counters[record.at("name").text] =
          static_cast<std::uint64_t>(record.at("value").number);
    } else if (kind == "gauge") {
      trace.gauges[record.at("name").text] = {record.at("value").number,
                                              record.numberOr("max", 0.0)};
    } else if (kind == "histogram") {
      TraceFile::HistogramDump dump;
      for (const json::Value& bound : record.at("bounds").array) {
        dump.bounds.push_back(bound.number);
      }
      for (const json::Value& count : record.at("counts").array) {
        dump.counts.push_back(static_cast<std::uint64_t>(count.number));
      }
      dump.count = static_cast<std::uint64_t>(record.at("count").number);
      dump.sum = record.at("sum").number;
      trace.histograms[record.at("name").text] = std::move(dump);
    } else {
      throw ParseError("trace line " + std::to_string(lineNo) +
                       ": unknown record kind '" + kind + "'");
    }
  }
  return trace;
}

TraceFile readTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot read trace file '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return parseTraceJsonl(text.str());
}

std::vector<std::string> lintTrace(const TraceFile& trace) {
  std::vector<std::string> issues;

  if (trace.schema != kTraceSchema) {
    issues.push_back("unknown or missing schema '" + trace.schema +
                     "' (expected '" + std::string(kTraceSchema) + "')");
  }
  if (trace.clockKind != "sim" && trace.clockKind != "wall") {
    issues.push_back("meta line missing a valid clock kind");
  }

  std::set<std::string> ids;
  for (const SpanRecord& span : trace.spans) {
    if (!ids.insert(span.id).second) {
      issues.push_back("duplicate span id '" + span.id + "'");
    }
  }
  std::map<std::string, const SpanRecord*> byId;
  for (const SpanRecord& span : trace.spans) byId[span.id] = &span;

  for (const SpanRecord& span : trace.spans) {
    if (span.end < span.start) {
      issues.push_back("span '" + span.id + "' (" + span.name +
                       ") ends before it starts");
    }
    if (span.parent.empty()) continue;
    auto it = byId.find(span.parent);
    if (it == byId.end()) {
      issues.push_back("span '" + span.id + "' (" + span.name +
                       ") has unknown parent '" + span.parent + "'");
      continue;
    }
    const SpanRecord& parent = *it->second;
    if (span.start < parent.start || span.end > parent.end) {
      issues.push_back("span '" + span.id + "' (" + span.name +
                       ") is not nested inside its parent '" + span.parent +
                       "'");
    }
  }

  for (const EventRecord& event : trace.events) {
    if (!event.span.empty() && byId.find(event.span) == byId.end()) {
      issues.push_back("event '" + event.name + "' references unknown span '" +
                       event.span + "'");
    }
  }

  // Fault-injection records carry a contract of their own: every
  // fault.inject event names what fired and at which attempt key, every
  // fault.quarantine event names the opened breaker key, and every
  // backoff span records which retry it delayed and for how long.
  for (const EventRecord& event : trace.events) {
    if (event.name == "fault.inject") {
      if (event.attrs.find("kind") == event.attrs.end()) {
        issues.push_back("fault.inject event without a 'kind' attribute");
      }
      if (event.attrs.find("key") == event.attrs.end()) {
        issues.push_back("fault.inject event without a 'key' attribute");
      }
    } else if (event.name == "fault.quarantine") {
      if (event.attrs.find("key") == event.attrs.end()) {
        issues.push_back("fault.quarantine event without a 'key' attribute");
      }
    }
  }
  // Store records have an attribute contract too: a lookup span says
  // what key it resolved and how it went, put/evict events name the
  // object they touched.
  for (const EventRecord& event : trace.events) {
    if (event.name == "store.put") {
      if (event.attrs.find("hash") == event.attrs.end()) {
        issues.push_back("store.put event without a 'hash' attribute");
      }
      if (event.attrs.find("bytes") == event.attrs.end()) {
        issues.push_back("store.put event without a 'bytes' attribute");
      }
    } else if (event.name == "store.evict") {
      if (event.attrs.find("hash") == event.attrs.end()) {
        issues.push_back("store.evict event without a 'hash' attribute");
      }
    }
  }
  for (const SpanRecord& span : trace.spans) {
    if (span.name != "backoff") continue;
    if (span.attrs.find("attempt") == span.attrs.end()) {
      issues.push_back("backoff span '" + span.id +
                       "' without an 'attempt' attribute");
    }
    if (span.attrs.find("seconds") == span.attrs.end()) {
      issues.push_back("backoff span '" + span.id +
                       "' without a 'seconds' attribute");
    }
  }
  for (const SpanRecord& span : trace.spans) {
    if (span.name != "store.lookup") continue;
    if (span.attrs.find("key") == span.attrs.end()) {
      issues.push_back("store.lookup span '" + span.id +
                       "' without a 'key' attribute");
    }
    const auto outcome = span.attrs.find("outcome");
    if (outcome == span.attrs.end()) {
      issues.push_back("store.lookup span '" + span.id +
                       "' without an 'outcome' attribute");
    } else if (outcome->second != "hit" && outcome->second != "miss" &&
               outcome->second != "corrupt" && outcome->second != "drift") {
      issues.push_back("store.lookup span '" + span.id +
                       "' has invalid outcome '" + outcome->second + "'");
    }
  }
  // Parallel-executor records: a single-flight span names the build key
  // it coordinated and the role the campaign settled into, and a worker
  // span identifies its campaign completely.
  for (const SpanRecord& span : trace.spans) {
    if (span.name == "store.singleflight") {
      if (span.attrs.find("key") == span.attrs.end()) {
        issues.push_back("store.singleflight span '" + span.id +
                         "' without a 'key' attribute");
      }
      const auto role = span.attrs.find("role");
      if (role == span.attrs.end()) {
        issues.push_back("store.singleflight span '" + span.id +
                         "' without a 'role' attribute");
      } else if (role->second != "leader" && role->second != "follower" &&
                 role->second != "cached") {
        issues.push_back("store.singleflight span '" + span.id +
                         "' has invalid role '" + role->second + "'");
      }
    } else if (span.name == "exec.worker") {
      for (const char* required :
           {"campaign", "test", "target", "repeat", "lane", "sim_seconds"}) {
        if (span.attrs.find(required) == span.attrs.end()) {
          issues.push_back("exec.worker span '" + span.id + "' without a '" +
                           required + "' attribute");
        }
      }
      // The lane is a canonical virtual-lane index (profiling schedule),
      // so it must parse as a non-negative integer.
      if (const auto lane = span.attrs.find("lane");
          lane != span.attrs.end()) {
        const std::string& text = lane->second;
        const bool numeric =
            !text.empty() &&
            text.find_first_not_of("0123456789") == std::string::npos;
        if (!numeric) {
          issues.push_back("exec.worker span '" + span.id +
                           "' has non-numeric lane '" + text + "'");
        }
      }
    } else if (span.name == "history.append" ||
               span.name == "history.query") {
      // History spans identify the series they touched and how many
      // records were involved; `records` must count.
      for (const char* required : {"test", "target", "fom", "records"}) {
        if (span.attrs.find(required) == span.attrs.end()) {
          issues.push_back(span.name + " span '" + span.id + "' without a '" +
                           required + "' attribute");
        }
      }
      if (const auto records = span.attrs.find("records");
          records != span.attrs.end()) {
        const std::string& text = records->second;
        const bool numeric =
            !text.empty() &&
            text.find_first_not_of("0123456789") == std::string::npos;
        if (!numeric) {
          issues.push_back(span.name + " span '" + span.id +
                           "' has non-numeric records '" + text + "'");
        }
      }
    } else if (span.name == "serve.submission") {
      // The daemon's per-submission record names the submission it
      // answered and the verdict it filed.
      for (const char* required : {"submission", "verdict"}) {
        if (span.attrs.find(required) == span.attrs.end()) {
          issues.push_back("serve.submission span '" + span.id +
                           "' without a '" + required + "' attribute");
        }
      }
    } else if (span.name == "serve.watchdog") {
      // A fired serve watchdog records what it guarded and both sides of
      // the comparison that tripped it.
      for (const char* required :
           {"stage", "limit_seconds", "elapsed_seconds"}) {
        if (span.attrs.find(required) == span.attrs.end()) {
          issues.push_back("serve.watchdog span '" + span.id +
                           "' without a '" + required + "' attribute");
        }
      }
    } else if (span.name == "telemetry.probe") {
      // A resource-probe span names the stage it measured and carries
      // the rusage delta: decimal CPU milliseconds plus integer
      // counters.
      for (const char* required :
           {"stage", "rusage_user_ms", "rusage_sys_ms",
            "rusage_maxrss_kb"}) {
        if (span.attrs.find(required) == span.attrs.end()) {
          issues.push_back("telemetry.probe span '" + span.id +
                           "' without a '" + required + "' attribute");
        }
      }
      for (const char* decimalKey : {"rusage_user_ms", "rusage_sys_ms"}) {
        const auto it = span.attrs.find(decimalKey);
        if (it == span.attrs.end()) continue;
        const std::string& text = it->second;
        const bool numeric =
            !text.empty() &&
            text.find_first_not_of("0123456789.") == std::string::npos &&
            std::count(text.begin(), text.end(), '.') <= 1;
        if (!numeric) {
          issues.push_back("telemetry.probe span '" + span.id +
                           "' has non-numeric " + decimalKey + " '" + text +
                           "'");
        }
      }
      if (const auto rss = span.attrs.find("rusage_maxrss_kb");
          rss != span.attrs.end()) {
        const std::string& text = rss->second;
        const bool numeric =
            !text.empty() &&
            text.find_first_not_of("0123456789") == std::string::npos;
        if (!numeric) {
          issues.push_back("telemetry.probe span '" + span.id +
                           "' has non-numeric rusage_maxrss_kb '" + text +
                           "'");
        }
      }
    } else if (span.name == "serve.endpoint") {
      // A status-endpoint request span records the route it answered and
      // the HTTP status it returned.
      for (const char* required : {"route", "status"}) {
        if (span.attrs.find(required) == span.attrs.end()) {
          issues.push_back("serve.endpoint span '" + span.id +
                           "' without a '" + required + "' attribute");
        }
      }
      if (const auto status = span.attrs.find("status");
          status != span.attrs.end()) {
        const std::string& text = status->second;
        const bool numeric =
            !text.empty() &&
            text.find_first_not_of("0123456789") == std::string::npos;
        int code = 0;
        if (numeric) code = std::atoi(text.c_str());
        if (!numeric || code < 100 || code > 599) {
          issues.push_back("serve.endpoint span '" + span.id +
                           "' has invalid status '" + text + "'");
        }
      }
    } else if (span.name == "store.runcache") {
      if (span.attrs.find("key") == span.attrs.end()) {
        issues.push_back("store.runcache span '" + span.id +
                         "' without a 'key' attribute");
      }
      const auto outcome = span.attrs.find("outcome");
      if (outcome == span.attrs.end()) {
        issues.push_back("store.runcache span '" + span.id +
                         "' without an 'outcome' attribute");
      } else if (outcome->second != "hit" && outcome->second != "miss" &&
                 outcome->second != "corrupt" &&
                 outcome->second != "stale") {
        issues.push_back("store.runcache span '" + span.id +
                         "' has invalid outcome '" + outcome->second + "'");
      }
    } else if (span.name == "infer.controller" ||
               span.name == "infer.changepoint") {
      // Inference spans carry the statistical evidence behind a
      // run-length decision (controller) or a gate verdict
      // (changepoint): the series identity plus the estimator outputs.
      for (const char* required :
           {"test", "target", "fom", "repeats", "ess", "ci_halfwidth"}) {
        if (span.attrs.find(required) == span.attrs.end()) {
          issues.push_back(span.name + " span '" + span.id + "' without a '" +
                           required + "' attribute");
        }
      }
      if (const auto repeats = span.attrs.find("repeats");
          repeats != span.attrs.end()) {
        const std::string& text = repeats->second;
        const bool numeric =
            !text.empty() &&
            text.find_first_not_of("0123456789") == std::string::npos;
        if (!numeric) {
          issues.push_back(span.name + " span '" + span.id +
                           "' has non-numeric repeats '" + text + "'");
        }
      }
    } else if (str::startsWith(span.name, "postproc.columnar.")) {
      // Columnar-engine spans account for the work they did: every record
      // counts rows; convert and merge count chunks (merge also names its
      // input count); kernel spans say which kernel ran and how many
      // chunks the zone maps let it skip.
      const auto requireCount = [&issues, &span](const char* key) {
        const auto it = span.attrs.find(key);
        if (it == span.attrs.end()) {
          issues.push_back(span.name + " span '" + span.id + "' without a '" +
                           key + "' attribute");
          return;
        }
        const std::string& text = it->second;
        const bool numeric =
            !text.empty() &&
            text.find_first_not_of("0123456789") == std::string::npos;
        if (!numeric) {
          issues.push_back(span.name + " span '" + span.id +
                           "' has non-numeric " + key + " '" + text + "'");
        }
      };
      requireCount("rows");
      if (span.name == "postproc.columnar.convert" ||
          span.name == "postproc.columnar.merge") {
        requireCount("chunks");
      }
      if (span.name == "postproc.columnar.merge") {
        requireCount("inputs");
      }
      if (span.name == "postproc.columnar.kernel") {
        if (span.attrs.find("kernel") == span.attrs.end()) {
          issues.push_back("postproc.columnar.kernel span '" + span.id +
                           "' without a 'kernel' attribute");
        }
        requireCount("skipped_chunks");
      }
    }
  }

  // Shard-merge contract: Tracer::absorb renumbers shard roots to follow
  // the host tracer's, so in file order the leading root number of every
  // span and event is non-decreasing (and span ids stay unique — checked
  // above).  A violation means a merge scrambled or duplicated shards.
  auto rootNumber = [](const std::string& id) -> long {
    const std::string head = id.substr(0, id.find('.'));
    if (head.empty() ||
        head.find_first_not_of("0123456789") != std::string::npos) {
      return -1;  // malformed; reported by the parent checks
    }
    return std::stol(head);
  };
  long previousRoot = 0;
  std::size_t spanIdx = 0, eventIdx = 0;
  for (const TraceFile::TimelineEntry& entry : trace.timeline) {
    std::string owner;
    if (entry.kind == "span") {
      owner = trace.spans[spanIdx++].id;
    } else {
      owner = trace.events[eventIdx++].span;
      if (owner.empty()) continue;  // unowned events carry no root
    }
    const long root = rootNumber(owner);
    if (root < 0) continue;
    if (root < previousRoot) {
      issues.push_back("non-monotone root ids after merge: record of root " +
                       std::to_string(root) + " follows root " +
                       std::to_string(previousRoot));
    }
    previousRoot = std::max(previousRoot, root);
  }

  double previous = 0.0;
  bool first = true;
  for (const TraceFile::TimelineEntry& entry : trace.timeline) {
    if (!first && entry.time < previous) {
      issues.push_back("non-monotone timestamps: " + entry.kind + " at " +
                       str::fixed(entry.time, 6) + " after " +
                       str::fixed(previous, 6));
    }
    previous = entry.time;
    first = false;
  }

  return issues;
}

}  // namespace rebench::obs
