// Trace clocks (rebench::obs).
//
// Observability must itself be a reproducibility artefact: a trace of a
// simulated pipeline run has to be byte-identical across repeats.  The
// tracer therefore reads time through this interface and never touches
// host clocks in simulated mode.
//
//   * SimClock — a deterministic logical clock.  Coarse simulated seconds
//     are fed in explicitly (build seconds, scheduler queue/run times) via
//     advance()/advanceTo(); every reading additionally consumes one fixed
//     micro-tick so that causally-ordered observations get strictly
//     increasing, reproducible timestamps even when no simulated time
//     passes between them.
//   * WallClock — host steady-clock seconds since construction, for native
//     runs where real durations are the observation of interest.
#pragma once

#include <memory>
#include <string_view>

namespace rebench::obs {

class TraceClock {
 public:
  virtual ~TraceClock() = default;

  /// Returns the current time in seconds and, for logical clocks,
  /// consumes one micro-tick so consecutive readings differ.
  virtual double now() = 0;

  /// Current time without side effects.
  virtual double peek() const = 0;

  /// Adds `seconds` of simulated time (no-op on wall clocks — real time
  /// flows on its own).
  virtual void advance(double seconds) = 0;

  /// Moves the clock forward to at least `seconds`; never backwards.
  virtual void advanceTo(double seconds) = 0;

  /// True when repeated identical runs read identical timestamps.
  virtual bool deterministic() const = 0;

  /// "sim" or "wall"; recorded in the trace meta line.
  virtual std::string_view kind() const = 0;
};

/// Deterministic simulated clock (see file comment).
class SimClock final : public TraceClock {
 public:
  /// `tickSeconds` is the per-reading micro-tick (default 1 microsecond,
  /// the resolution traces are serialized at).
  explicit SimClock(double tickSeconds = 1e-6) : tick_(tickSeconds) {}

  double now() override {
    now_ += tick_;
    return now_;
  }
  double peek() const override { return now_; }
  void advance(double seconds) override {
    if (seconds > 0.0) now_ += seconds;
  }
  void advanceTo(double seconds) override {
    if (seconds > now_) now_ = seconds;
  }
  bool deterministic() const override { return true; }
  std::string_view kind() const override { return "sim"; }

 private:
  double now_ = 0.0;
  double tick_;
};

/// Host steady-clock seconds since construction (native runs).
class WallClock final : public TraceClock {
 public:
  WallClock();

  double now() override { return elapsed(); }
  double peek() const override { return elapsed(); }
  void advance(double) override {}
  void advanceTo(double) override {}
  bool deterministic() const override { return false; }
  std::string_view kind() const override { return "wall"; }

 private:
  double elapsed() const;
  double epoch_;  // steady-clock seconds at construction
};

}  // namespace rebench::obs
