// OpenMetrics / Prometheus text exporter (rebench::obs).
//
// Serializes a MetricsRegistry — counters, gauges, histograms (buckets,
// sum, count, and the shared p50/p90/p99 quantile estimates) — plus
// caller-supplied extra samples (the campaign's FOMs) into the
// OpenMetrics text exposition format.  Everything about the rendering is
// deterministic: metric families are emitted in lexicographic order,
// labels inside a sample are sorted by label name, and every floating
// value goes through obs::formatMetricValue (`%.6g`), so the exported
// bytes are identical at every `--jobs` width and across `rebench
// replay` (the registry itself merges canonically).
//
// Name mapping: a registry name like "fault.injected/crash" becomes the
// family "rebench_fault_injected" with the generic label sub="crash" (the
// part after the first '/'); every other non-[a-zA-Z0-9_:] character is
// replaced by '_'.  Counter samples carry the OpenMetrics "_total"
// suffix; histograms emit cumulative "_bucket{le=...}" samples with a
// final le="+Inf", then "_sum"/"_count", then a "<name>_quantile" gauge
// family with quantile="0.5|0.9|0.99" labels.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/obs/metrics.hpp"

namespace rebench::obs {

/// One extra gauge sample appended after the registry dump (used for
/// per-campaign FOM values, which live on run results rather than in the
/// registry).  Samples are emitted grouped by family name in the order
/// given; callers must pre-sort for byte-stable output.
struct MetricSample {
  std::string family;  // full family name, e.g. "rebench_fom"
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

/// Renders the registry (and `extra` samples) as OpenMetrics text,
/// terminated by the "# EOF" marker the format requires.
std::string renderOpenMetrics(const MetricsRegistry& registry,
                              std::span<const MetricSample> extra = {});

}  // namespace rebench::obs
