#include "core/history/changepoint.hpp"

#include <algorithm>
#include <cmath>
#include <string_view>

namespace rebench::history {

namespace {

double meanOf(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddevOf(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double mean = meanOf(values);
  double squares = 0.0;
  for (const double v : values) squares += (v - mean) * (v - mean);
  return std::sqrt(squares / static_cast<double>(values.size()));
}

}  // namespace

std::vector<Changepoint> detectChangepoints(std::span<const double> values,
                                            const ChangepointOptions& options) {
  std::vector<Changepoint> flags;
  const std::size_t window = std::max<std::size_t>(options.window, 1);
  if (values.size() < 2 * window) return flags;
  for (std::size_t i = window; i + window <= values.size();) {
    const auto before = values.subspan(i - window, window);
    const auto after = values.subspan(i, window);
    const double meanBefore = meanOf(before);
    const double meanAfter = meanOf(after);
    const double shift = meanAfter - meanBefore;
    const double relFloor = options.relThreshold * std::fabs(meanBefore);
    const double noiseFloor = options.minSigmas * stddevOf(before);
    if (std::fabs(shift) > std::max(relFloor, noiseFloor)) {
      flags.push_back({i, meanBefore, meanAfter, shift});
      i += window;  // one regime change, one flag
    } else {
      ++i;
    }
  }
  return flags;
}

double rollingMean(std::span<const double> values, std::size_t index,
                   std::size_t window) {
  if (index >= values.size() || window == 0) return 0.0;
  const std::size_t begin = index + 1 >= window ? index + 1 - window : 0;
  return meanOf(values.subspan(begin, index + 1 - begin));
}

double rollingStddev(std::span<const double> values, std::size_t index,
                     std::size_t window) {
  if (index >= values.size() || window == 0) return 0.0;
  const std::size_t begin = index + 1 >= window ? index + 1 - window : 0;
  return stddevOf(values.subspan(begin, index + 1 - begin));
}

std::string sparkline(std::span<const double> values) {
  static constexpr std::string_view kLevels = " .:-=+*#%@";
  std::string out;
  out.reserve(values.size());
  if (values.empty()) return out;
  const auto [minIt, maxIt] = std::minmax_element(values.begin(), values.end());
  const double lo = *minIt;
  const double span = *maxIt - lo;
  for (const double v : values) {
    // Degenerate (flat) series sits mid-scale instead of at zero, so a
    // steady FOM doesn't render as blank space.
    double unit = span > 0.0 ? (v - lo) / span : 0.5;
    const auto level = static_cast<std::size_t>(
        unit * static_cast<double>(kLevels.size() - 1) + 0.5);
    out += kLevels[std::min(level, kLevels.size() - 1)];
  }
  return out;
}

}  // namespace rebench::history
