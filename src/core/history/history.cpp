#include "core/history/history.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "core/framework/pipeline.hpp"
#include "core/infer/changepoint_edm.hpp"
#include "core/infer/estimator.hpp"
#include "core/obs/json.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/trace.hpp"
#include "core/store/object_store.hpp"
#include "core/util/error.hpp"
#include "core/util/strings.hpp"

namespace rebench::history {

std::vector<FomAggregate> aggregateFoms(
    std::span<const TestRunResult> results) {
  struct Accumulator {
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    int repeats = 0;
    std::vector<double> samples;  // repeat order, for the CI/ESS view
  };
  // Keyed (test, target, fom) so output order is canonical regardless of
  // the (already canonical) result order.
  std::map<std::string, Accumulator> series;
  std::map<std::string, FomAggregate> names;
  for (const TestRunResult& result : results) {
    if (result.quarantined || result.foms.empty()) continue;
    const std::string target = result.system + ":" + result.partition;
    for (const auto& [fom, value] : result.foms) {
      const std::string key = result.testName + "|" + target + "|" + fom;
      Accumulator& acc = series[key];
      if (acc.repeats == 0) {
        acc.min = value;
        acc.max = value;
        names[key] = {result.testName, target, fom, 0.0, 0.0, 0.0, 0};
      }
      acc.sum += value;
      acc.min = std::min(acc.min, value);
      acc.max = std::max(acc.max, value);
      acc.samples.push_back(value);
      ++acc.repeats;
    }
  }
  std::vector<FomAggregate> out;
  out.reserve(series.size());
  for (const auto& [key, acc] : series) {
    FomAggregate aggregate = names.at(key);
    aggregate.mean = acc.sum / acc.repeats;
    aggregate.min = acc.min;
    aggregate.max = acc.max;
    aggregate.repeats = acc.repeats;
    const infer::SeriesEstimate est = infer::estimateSeries(acc.samples);
    // A single repeat has no defined interval; record 0 = "unknown"
    // rather than an unserializable infinity.
    aggregate.ciHalfwidth = est.n >= 2 ? est.ciHalfwidth : 0.0;
    aggregate.ess = est.ess;
    aggregate.autocorr = est.autocorr;
    out.push_back(std::move(aggregate));
  }
  return out;
}

std::string serializeSegment(std::span<const HistoryRecord> records,
                             std::string_view prevHash, std::uint64_t seq,
                             std::uint64_t base) {
  std::ostringstream out;
  out << "{\"kind\":\"meta\",\"schema\":" << obs::json::quote(kHistorySchema)
      << ",\"prev\":" << obs::json::quote(prevHash) << ",\"seq\":" << seq
      << ",\"base\":" << base << ",\"records\":" << records.size() << "}\n";
  for (const HistoryRecord& record : records) {
    out << "{\"kind\":\"record\",\"seq\":" << record.seq
        << ",\"test\":" << obs::json::quote(record.test)
        << ",\"target\":" << obs::json::quote(record.target)
        << ",\"fom\":" << obs::json::quote(record.fom)
        << ",\"manifest\":" << obs::json::quote(record.manifestHash)
        << ",\"env\":" << obs::json::quote(record.envFingerprint)
        << ",\"spec\":" << obs::json::quote(record.specHash)
        << ",\"mean\":" << str::fixed(record.mean, 6)
        << ",\"min\":" << str::fixed(record.min, 6)
        << ",\"max\":" << str::fixed(record.max, 6)
        << ",\"ci\":" << str::fixed(record.ci, 6)
        << ",\"ess\":" << str::fixed(record.ess, 3)
        << ",\"repeats\":" << record.repeats
        << ",\"sim_timestamp\":" << str::fixed(record.simTimestamp, 6)
        << "}\n";
  }
  return out.str();
}

std::vector<HistoryRecord> parseSegment(std::string_view bytes,
                                        std::string* prevHash,
                                        std::uint64_t* seq) {
  std::vector<HistoryRecord> records;
  std::istringstream in{std::string(bytes)};
  std::string line;
  bool sawMeta = false;
  while (std::getline(in, line)) {
    if (str::trim(line).empty()) continue;
    const obs::json::Value value = obs::json::parse(line);
    const std::string kind = value.stringOr("kind", "");
    if (kind == "meta") {
      const std::string schema = value.stringOr("schema", "");
      if (schema != kHistorySchema) {
        throw Error("history segment has schema '" + schema +
                    "' (expected '" + std::string(kHistorySchema) + "')");
      }
      if (prevHash != nullptr) *prevHash = value.stringOr("prev", "");
      if (seq != nullptr) {
        *seq = static_cast<std::uint64_t>(value.numberOr("seq", 0));
      }
      sawMeta = true;
    } else if (kind == "record") {
      HistoryRecord record;
      record.seq = static_cast<std::uint64_t>(value.numberOr("seq", 0));
      record.test = value.stringOr("test", "");
      record.target = value.stringOr("target", "");
      record.fom = value.stringOr("fom", "");
      record.manifestHash = value.stringOr("manifest", "");
      record.envFingerprint = value.stringOr("env", "");
      record.specHash = value.stringOr("spec", "");
      record.mean = value.numberOr("mean", 0);
      record.min = value.numberOr("min", 0);
      record.max = value.numberOr("max", 0);
      record.ci = value.numberOr("ci", 0);
      record.ess = value.numberOr("ess", 0);
      record.repeats = static_cast<int>(value.numberOr("repeats", 0));
      record.simTimestamp = value.numberOr("sim_timestamp", 0);
      records.push_back(std::move(record));
    }
  }
  if (!sawMeta) throw Error("history segment is missing its meta line");
  return records;
}

HistoryIndex::HistoryIndex(store::ObjectStore& store) : store_(store) {}

void HistoryIndex::setObservability(obs::Tracer* tracer,
                                    obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
}

std::string HistoryIndex::appendSegment(
    std::span<const HistoryRecord> records) {
  if (records.empty()) return "";
  std::string prev;
  std::uint64_t seq = 0;
  std::uint64_t base = 0;
  if (const auto head = store_.ref(kHeadRef)) {
    auto bytes = store_.get(*head);
    if (!bytes) {
      throw Error("history head segment '" + *head +
                  "' is missing from the store");
    }
    std::uint64_t headSeq = 0;
    const auto headRecords = parseSegment(*bytes, nullptr, &headSeq);
    prev = *head;
    seq = headSeq + 1;
    base = headRecords.empty() ? 0 : headRecords.back().seq + 1;
  }
  std::vector<HistoryRecord> stamped(records.begin(), records.end());
  for (std::size_t i = 0; i < stamped.size(); ++i) {
    stamped[i].seq = base + i;
  }
  const std::string blob = serializeSegment(stamped, prev, seq, base);
  const std::string hash = store_.put(blob);
  // Pin before publishing the head ref: from the moment the chain can
  // reach this segment, LRU pressure must not be able to evict it.
  store_.pin(hash);
  store_.setRef(kHeadRef, hash);
  if (tracer_ != nullptr) {
    const std::string count = std::to_string(stamped.size());
    for (const HistoryRecord& record : stamped) {
      tracer_->beginSpan("history.append");
      tracer_->setAttr("test", record.test);
      tracer_->setAttr("target", record.target);
      tracer_->setAttr("fom", record.fom);
      tracer_->setAttr("records", count);
      tracer_->endSpan();
    }
  }
  if (metrics_ != nullptr) {
    metrics_->counter("history.append").inc(stamped.size());
  }
  return hash;
}

std::vector<HistoryRecord> HistoryIndex::readAll() const {
  std::vector<std::vector<HistoryRecord>> segments;  // newest first
  auto cursor = store_.ref(kHeadRef);
  std::string hash = cursor.value_or("");
  while (!hash.empty()) {
    auto bytes = store_.get(hash);
    if (!bytes) {
      throw Error("history chain is broken: segment '" + hash +
                  "' is missing from the store");
    }
    std::string prev;
    segments.push_back(parseSegment(*bytes, &prev));
    hash = prev;
  }
  std::vector<HistoryRecord> records;
  for (auto it = segments.rbegin(); it != segments.rend(); ++it) {
    records.insert(records.end(), it->begin(), it->end());
  }
  return records;
}

std::vector<HistoryRecord> HistoryIndex::query(std::string_view test,
                                               std::string_view target,
                                               std::string_view fom) const {
  std::vector<HistoryRecord> out;
  std::vector<HistoryRecord> all = readAll();
  for (HistoryRecord& record : all) {
    if (!test.empty() && record.test != test) continue;
    if (!target.empty() && record.target != target) continue;
    if (!fom.empty() && record.fom != fom) continue;
    out.push_back(std::move(record));
  }
  if (tracer_ != nullptr) {
    tracer_->beginSpan("history.query");
    tracer_->setAttr("test", test.empty() ? "*" : std::string(test));
    tracer_->setAttr("target", target.empty() ? "*" : std::string(target));
    tracer_->setAttr("fom", fom.empty() ? "*" : std::string(fom));
    tracer_->setAttr("records", std::to_string(out.size()));
    tracer_->endSpan();
  }
  if (metrics_ != nullptr) metrics_->counter("history.query").inc();
  return out;
}

std::size_t HistoryIndex::segmentCount() const {
  std::size_t count = 0;
  auto cursor = store_.ref(kHeadRef);
  std::string hash = cursor.value_or("");
  while (!hash.empty()) {
    auto bytes = store_.get(hash);
    if (!bytes) {
      throw Error("history chain is broken: segment '" + hash +
                  "' is missing from the store");
    }
    std::string prev;
    parseSegment(*bytes, &prev);
    hash = prev;
    ++count;
  }
  return count;
}

std::map<std::string, std::vector<HistoryRecord>> groupSeries(
    std::span<const HistoryRecord> records) {
  std::map<std::string, std::vector<HistoryRecord>> series;
  for (const HistoryRecord& record : records) {
    series[record.test + "|" + record.target + "|" + record.fom].push_back(
        record);
  }
  return series;
}

namespace {

std::string renderHistoryText(
    const std::map<std::string, std::vector<HistoryRecord>>& series,
    const RenderOptions& options) {
  std::ostringstream out;
  if (series.empty()) {
    out << "history: no matching records\n";
    return out.str();
  }
  bool first = true;
  for (const auto& [key, records] : series) {
    if (!first) out << "\n";
    first = false;
    const HistoryRecord& head = records.front();
    out << "== " << head.test << " @ " << head.target << " · " << head.fom
        << " (" << records.size() << " record"
        << (records.size() == 1 ? "" : "s") << ") ==\n";
    std::vector<double> means;
    means.reserve(records.size());
    for (const HistoryRecord& record : records) means.push_back(record.mean);
    out << "  trend |" << sparkline(means) << "|\n";
    const auto flags = detectChangepoints(means, options.changepoint);
    out << "  " << std::left << std::setw(6) << "seq" << std::setw(13)
        << "mean" << std::setw(13) << "min" << std::setw(13) << "max"
        << std::setw(8) << "reps" << std::setw(13) << "roll_mean"
        << std::setw(13) << "roll_std" << "flag\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
      const HistoryRecord& record = records[i];
      const bool flagged =
          std::any_of(flags.begin(), flags.end(),
                      [i](const Changepoint& c) { return c.index == i; });
      out << "  " << std::left << std::setw(6) << record.seq << std::setw(13)
          << obs::formatMetricValue(record.mean) << std::setw(13)
          << obs::formatMetricValue(record.min) << std::setw(13)
          << obs::formatMetricValue(record.max) << std::setw(8)
          << record.repeats << std::setw(13)
          << obs::formatMetricValue(rollingMean(means, i, options.window))
          << std::setw(13)
          << obs::formatMetricValue(rollingStddev(means, i, options.window))
          << (flagged ? "*" : "") << "\n";
    }
    if (flags.empty()) {
      out << "  changepoints: none\n";
    } else {
      for (const Changepoint& flag : flags) {
        out << "  changepoint @ seq " << records[flag.index].seq << ": mean "
            << obs::formatMetricValue(flag.meanBefore) << " -> "
            << obs::formatMetricValue(flag.meanAfter) << " (shift "
            << obs::formatMetricValue(flag.shift) << ")\n";
      }
    }
  }
  return out.str();
}

std::string renderHistoryJson(
    const std::map<std::string, std::vector<HistoryRecord>>& series,
    const RenderOptions& options) {
  std::ostringstream out;
  out << "{\"schema\":" << obs::json::quote(kHistorySchema)
      << ",\"series\":[";
  bool firstSeries = true;
  for (const auto& [key, records] : series) {
    if (!firstSeries) out << ",";
    firstSeries = false;
    const HistoryRecord& head = records.front();
    std::vector<double> means;
    means.reserve(records.size());
    for (const HistoryRecord& record : records) means.push_back(record.mean);
    const auto flags = detectChangepoints(means, options.changepoint);
    out << "{\"test\":" << obs::json::quote(head.test)
        << ",\"target\":" << obs::json::quote(head.target)
        << ",\"fom\":" << obs::json::quote(head.fom) << ",\"records\":[";
    for (std::size_t i = 0; i < records.size(); ++i) {
      const HistoryRecord& record = records[i];
      if (i != 0) out << ",";
      const bool flagged =
          std::any_of(flags.begin(), flags.end(),
                      [i](const Changepoint& c) { return c.index == i; });
      out << "{\"seq\":" << record.seq
          << ",\"manifest\":" << obs::json::quote(record.manifestHash)
          << ",\"env\":" << obs::json::quote(record.envFingerprint)
          << ",\"spec\":" << obs::json::quote(record.specHash)
          << ",\"mean\":" << obs::formatMetricValue(record.mean)
          << ",\"min\":" << obs::formatMetricValue(record.min)
          << ",\"max\":" << obs::formatMetricValue(record.max)
          << ",\"ci\":" << obs::formatMetricValue(record.ci)
          << ",\"ess\":" << obs::formatMetricValue(record.ess)
          << ",\"repeats\":" << record.repeats << ",\"sim_timestamp\":"
          << obs::formatMetricValue(record.simTimestamp)
          << ",\"rolling_mean\":"
          << obs::formatMetricValue(rollingMean(means, i, options.window))
          << ",\"rolling_stddev\":"
          << obs::formatMetricValue(rollingStddev(means, i, options.window))
          << ",\"changepoint\":" << (flagged ? "true" : "false") << "}";
    }
    out << "],\"changepoints\":[";
    for (std::size_t i = 0; i < flags.size(); ++i) {
      if (i != 0) out << ",";
      out << "{\"index\":" << flags[i].index
          << ",\"seq\":" << records[flags[i].index].seq << ",\"mean_before\":"
          << obs::formatMetricValue(flags[i].meanBefore) << ",\"mean_after\":"
          << obs::formatMetricValue(flags[i].meanAfter)
          << ",\"shift\":" << obs::formatMetricValue(flags[i].shift) << "}";
    }
    out << "]}";
  }
  out << "]}\n";
  return out.str();
}

}  // namespace

std::string renderHistory(std::span<const HistoryRecord> records,
                          const RenderOptions& options) {
  const auto series = groupSeries(records);
  return options.json ? renderHistoryJson(series, options)
                      : renderHistoryText(series, options);
}

std::vector<GateResult> checkRegression(std::span<const HistoryRecord> records,
                                        const GateOptions& options) {
  std::vector<GateResult> verdicts;
  for (const auto& [key, series] : groupSeries(records)) {
    GateResult verdict;
    verdict.series = key;
    if (series.size() < 2) {
      verdict.insufficient = true;
      verdict.latest = series.empty() ? 0.0 : series.back().mean;
      verdict.justification = "insufficient history (need >= 2 records)";
      verdicts.push_back(std::move(verdict));
      continue;
    }
    const std::size_t window = std::max<std::size_t>(options.window, 1);
    const std::size_t newest = series.size() - 1;
    const std::size_t begin = newest >= window ? newest - window : 0;
    std::vector<double> baselineMeans;
    baselineMeans.reserve(newest - begin);
    for (std::size_t i = begin; i < newest; ++i) {
      baselineMeans.push_back(series[i].mean);
    }
    double sum = 0.0;
    for (double mean : baselineMeans) sum += mean;
    verdict.baseline = sum / static_cast<double>(baselineMeans.size());
    verdict.latest = series[newest].mean;
    verdict.latestCi = series[newest].ci;
    verdict.latestEss = series[newest].ess;
    verdict.delta = verdict.baseline != 0.0
                        ? (verdict.latest - verdict.baseline) / verdict.baseline
                        : 0.0;
    // Higher FOM = better: only a *drop* beyond the threshold can
    // regress (candidate test, the pre-infer behaviour)...
    const bool candidate = verdict.delta < -options.threshold;
    // ...and only when it is also significant: the latest mean must
    // fall below the baseline window's own 95% confidence band.  A
    // single-record baseline has no band — fall back to the candidate
    // test alone, exactly the old semantics.
    const infer::SeriesEstimate baseEst = infer::estimateSeries(baselineMeans);
    if (baseEst.n >= 2) {
      verdict.baselineCi = baseEst.ciHalfwidth;
      verdict.significant =
          verdict.latest < verdict.baseline - verdict.baselineCi;
    } else {
      verdict.significant = candidate;
    }
    verdict.regression = candidate && verdict.significant;

    // EDM changepoint scan over the whole series for justification:
    // the most recent accepted split, if any.
    std::vector<double> means;
    means.reserve(series.size());
    for (const HistoryRecord& record : series) means.push_back(record.mean);
    const auto flags = infer::detectChangepointsEdm(means);
    if (!flags.empty()) {
      verdict.changepoint = true;
      verdict.changepointIndex = flags.back().index;
    }

    std::ostringstream why;
    if (verdict.regression) {
      why << "drop " << str::fixed(-verdict.delta * 100.0, 1)
          << "% exceeds threshold " << str::fixed(options.threshold * 100.0, 1)
          << "% and latest "
          << obs::formatMetricValue(verdict.latest) << " is below baseline-CI "
          << obs::formatMetricValue(verdict.baseline - verdict.baselineCi);
    } else if (candidate) {
      why << "drop " << str::fixed(-verdict.delta * 100.0, 1)
          << "% exceeds threshold but stays within the baseline CI half-width "
          << obs::formatMetricValue(verdict.baselineCi) << " (not significant)";
    } else {
      why << "delta " << str::fixed(verdict.delta * 100.0, 1)
          << "% within threshold "
          << str::fixed(options.threshold * 100.0, 1) << "%";
    }
    if (verdict.changepoint) {
      why << "; EDM changepoint at seq "
          << series[verdict.changepointIndex].seq;
    }
    verdict.justification = why.str();
    verdicts.push_back(std::move(verdict));
  }
  return verdicts;
}

}  // namespace rebench::history
