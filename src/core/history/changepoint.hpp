// Deterministic changepoint detection over FOM series (rebench::history).
//
// A sliding-window mean-shift test: at every candidate boundary the means
// of the `window` points before and after are compared, and a boundary is
// flagged when the shift clears BOTH a relative threshold (fraction of
// the before-mean) and a noise floor expressed in before-window standard
// deviations.  After a flag the scan skips a full window so one regime
// change yields one changepoint, not `window` echoes.  Everything is
// plain arithmetic over the input order — the same series always yields
// the same flags, which is what lets the `cli_history_deterministic`
// gate compare bytes across `--jobs` widths.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace rebench::history {

struct ChangepointOptions {
  std::size_t window = 3;      // points on each side of the boundary
  double relThreshold = 0.05;  // min |shift| as a fraction of |meanBefore|
  double minSigmas = 3.0;      // min |shift| in before-window stddevs
};

struct Changepoint {
  std::size_t index = 0;   // first point of the new regime
  double meanBefore = 0.0;
  double meanAfter = 0.0;
  double shift = 0.0;      // meanAfter - meanBefore
};

std::vector<Changepoint> detectChangepoints(std::span<const double> values,
                                            const ChangepointOptions& options = {});

/// Mean / population standard deviation of the up-to-`window` values
/// ending at `index` (inclusive) — the "rolling" columns of the history
/// table.  An empty effective window reports 0.
double rollingMean(std::span<const double> values, std::size_t index,
                   std::size_t window);
double rollingStddev(std::span<const double> values, std::size_t index,
                     std::size_t window);

/// ASCII sparkline: one character per value, min..max mapped onto
/// " .:-=+*#%@" (a constant series sits mid-scale, all '+').
std::string sparkline(std::span<const double> values);

}  // namespace rebench::history
